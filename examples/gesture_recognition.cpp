/**
 * @file
 * The paper's Section V case study: finger gesture recognition
 * (APP1) running as a 16-kernel pipeline on the Stitch chip, with
 * the real-time deadline analysis of Table I.
 *
 *   ./build/examples/gesture_recognition
 */

#include <cstdio>

#include "apps/app_runner.hh"
#include "power/power_model.hh"

using namespace stitch;

int
main()
{
    std::printf("Building and compiling the gesture pipeline "
                "(FIR -> 6x FFT -> update -> filter -> 6x IFFT -> "
                "SVM)...\n\n");

    auto app = apps::app1Gesture();
    apps::AppRunner runner(4, 12);

    struct Row
    {
        apps::AppMode mode;
        double cycles;
        double powerMw;
    };
    std::vector<Row> rows;
    for (auto mode :
         {apps::AppMode::Baseline, apps::AppMode::Locus,
          apps::AppMode::StitchNoFusion, apps::AppMode::Stitch}) {
        auto res = runner.run(app, mode);
        double mw = 0;
        switch (mode) {
          case apps::AppMode::Baseline:
            mw = power::baselinePowerMw();
            break;
          case apps::AppMode::Locus:
            mw = power::locusPowerMw();
            break;
          case apps::AppMode::StitchNoFusion:
            mw = power::stitchNoFusionPowerMw();
            break;
          case apps::AppMode::Stitch:
            mw = power::stitchPowerMw();
            break;
        }
        rows.push_back({mode, res.perSampleCycles(), mw});

        if (mode == apps::AppMode::Stitch && res.hasPlan) {
            std::printf("Stitch plan (Algorithm 1):\n");
            std::vector<compiler::KernelProfile> names;
            for (std::size_t k = 0; k < app.stageKernels.size(); ++k)
                names.push_back(
                    {app.stageKernels[k] + "#" + std::to_string(k),
                     0,
                     {}});
            std::printf("%s\n",
                        res.plan
                            .describe(names,
                                      core::StitchArch::standard())
                            .c_str());
        }
    }

    double base = rows[0].cycles;
    std::printf("%-18s %14s %9s %9s %11s\n", "architecture",
                "cycles/gesture", "ms", "boost", "perf/watt");
    for (const auto &row : rows) {
        double ms = power::cyclesToMs(row.cycles);
        double boost = base / row.cycles;
        double ppw = boost / (row.powerMw / rows[0].powerMw);
        std::printf("%-18s %14.0f %9.4f %8.2fx %10.2fx\n",
                    appModeName(row.mode), row.cycles, ms, boost,
                    ppw);
    }

    std::printf(
        "\nPaper Table I context: on the authors' full-size workload "
        "only Stitch met\nthe 7.81 ms / 128 Hz gesture deadline "
        "(7.62 ms vs 11.49 ms without fusion and\n13 ms on a quad "
        "Cortex-A7). Our scaled gesture window shows the same "
        "ordering\nof architectures at a smaller absolute size.\n");
    return 0;
}

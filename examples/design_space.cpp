/**
 * @file
 * Using the library as an architecture-exploration tool: define a
 * custom patch placement, check its fusion timing against the RTL
 * model, and compare application throughput against the paper's
 * 8/4/4 layout — the workflow an architect would use to retarget
 * Stitch at a different kernel mix.
 *
 *   ./build/examples/design_space
 */

#include <cstdio>

#include "apps/app_runner.hh"
#include "core/snoc.hh"
#include "core/snoc_timing.hh"

using namespace stitch;
using core::PatchKind;

int
main()
{

    // ---- 1. A custom floorplan: shift-heavy corners, MA spine.
    core::StitchArch custom{{
        PatchKind::ATAS, PatchKind::ATMA, PatchKind::ATMA,
        PatchKind::ATSA,
        PatchKind::ATMA, PatchKind::ATSA, PatchKind::ATAS,
        PatchKind::ATMA,
        PatchKind::ATMA, PatchKind::ATAS, PatchKind::ATSA,
        PatchKind::ATMA,
        PatchKind::ATSA, PatchKind::ATMA, PatchKind::ATMA,
        PatchKind::ATAS,
    }};

    // ---- 2. Static timing sanity: every adjacent pair must fuse
    //         within the 200 MHz budget (core/snoc_timing model).
    int routable = 0;
    double worstNs = 0;
    for (TileId a = 0; a < numTiles; ++a) {
        for (TileId b = 0; b < numTiles; ++b) {
            if (a == b)
                continue;
            core::SnocConfig snoc;
            auto routed = snoc.addFusion(a, custom.kindOf(a), b,
                                         custom.kindOf(b));
            if (!routed)
                continue;
            ++routable;
            worstNs = std::max(
                worstNs, core::fusedCriticalPathNs(
                             custom.kindOf(a), custom.kindOf(b),
                             routed->first.hops(),
                             routed->second.hops()));
        }
    }
    std::printf("custom floorplan: %d routable fusion pairs, worst "
                "path %.2f ns (budget %.1f ns)\n",
                routable, worstNs, core::rtl::clockPeriodNs);

    // ---- 3. Application throughput under both floorplans.
    std::printf("\n%-16s %10s %10s\n", "app", "paper 8/4/4",
                "custom");
    for (const auto &app : apps::allApps()) {
        apps::AppRunner paperRunner(4, 12);
        auto pBase = paperRunner.run(app, apps::AppMode::Baseline);
        auto pFull = paperRunner.run(app, apps::AppMode::Stitch);

        apps::AppRunner customRunner(4, 12);
        customRunner.setArch(custom);
        auto cFull = customRunner.run(app, apps::AppMode::Stitch);

        std::printf("%-16s %9.2fx %9.2fx\n", app.name.c_str(),
                    pBase.perSampleCycles() /
                        pFull.perSampleCycles(),
                    pBase.perSampleCycles() /
                        cFull.perSampleCycles());
        std::fflush(stdout);
    }

    std::printf(
        "\nThe compiler, stitcher, timing model and simulator are "
        "all placement-aware,\nso alternative floorplans are a "
        "one-struct change — the sweep the paper's\nauthors ran to "
        "settle on 8/4/4 (see bench/ablate_patch_mix for the full "
        "grid).\n");
    return 0;
}

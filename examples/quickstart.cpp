/**
 * @file
 * Quickstart: write a tiny kernel in the SW32 assembler eDSL, run the
 * Stitch compiler over it, and execute the accelerated binary on a
 * simulated tile — the whole tool chain of paper Figure 6 in ~100
 * lines.
 *
 *   cmake --build build && ./build/examples/quickstart
 */

#include <cstdio>

#include "compiler/driver.hh"
#include "cpu/patch_handler.hh"
#include "isa/assembler.hh"
#include "mem/addrmap.hh"

using namespace stitch;
using namespace stitch::isa::reg;

int
main()
{
    // ---- 1. Write a kernel: squared-accumulate over a 64-word SPM
    //         array (hot loop = slli/add/lw/mul/add chains, exactly
    //         the operation chains patches accelerate).
    isa::Assembler a("sumsq");
    auto loop = a.newLabel();
    a.li(s2, static_cast<std::int32_t>(mem::spmBase));
    a.li(t0, 0);
    a.li(a0, 0);
    a.bind(loop);
    a.slli(t1, t0, 2);
    a.add(t1, s2, t1);
    a.lw(t2, t1, 0);
    a.mul(t3, t2, t2);
    a.add(a0, a0, t3);
    a.addi(t0, t0, 1);
    a.slti(t4, t0, 64);
    a.bne(t4, zero, loop);
    a.sw(a0, s2, 256); // publish the result
    a.halt();

    auto program = a.finish();
    std::vector<Word> data;
    for (Word i = 0; i < 64; ++i)
        data.push_back(i + 1);
    program.addDataWords(mem::spmBase, data);

    // ---- 2. Compile: profile, identify ISEs, map them onto every
    //         patch flavour and fused pair, rewrite, and measure.
    compiler::KernelInput input;
    input.program = program;
    input.spmBaseRegs = {s2};
    input.outputs = {{mem::spmBase + 256, 4}};
    auto compiled = compiler::compileKernel("sumsq", input);

    std::printf("software:      %llu cycles\n",
                static_cast<unsigned long long>(
                    compiled.softwareCycles));
    for (const auto &v : compiled.variants) {
        if (v.speedup > 1.0)
            std::printf("%-14s %llu cycles (%.2fx)\n",
                        v.target.name().c_str(),
                        static_cast<unsigned long long>(v.cycles),
                        v.speedup);
    }

    // ---- 3. Execute the best variant on a tile with the matching
    //         patch and read the result back from the scratchpad.
    const auto *best = compiled.bestStitch();
    std::printf("\nbest: %s with %d custom instruction(s), %d "
                "fused\n",
                best->target.name().c_str(),
                best->binary.custCount,
                best->binary.fusedCustCount);

    mem::TileMemory memory;
    cpu::LocalPatchHandler patch(best->target.local, memory);
    cpu::Core core(0, memory, &patch, nullptr);
    core.loadProgram(best->binary.program);
    core.runToHalt();

    Word result = memory.spmPeek(256);
    Word expect = 0;
    for (Word i = 1; i <= 64; ++i)
        expect += i * i;
    std::printf("result: %u (expected %u) in %llu cycles, %llu "
                "CUSTs executed\n",
                result, expect,
                static_cast<unsigned long long>(core.time()),
                static_cast<unsigned long long>(
                    core.stats().get("custom_instructions")));
    return result == expect ? 0 : 1;
}

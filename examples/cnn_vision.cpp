/**
 * @file
 * The CNN image-recognition application (APP2, paper Figure 9):
 * thirteen convolution kernels of two sizes, two pooling kernels and
 * a fully-connected layer. This is the paper's showcase for patch
 * exhaustion: seven heavy conv kernels compete for four
 * {AT-AS}+{AT-MA} pairs, so Algorithm 1 falls back to {AT-SA} pairs
 * for the rest — watch the plan output.
 *
 *   ./build/examples/cnn_vision
 */

#include <cstdio>

#include "apps/app_runner.hh"

using namespace stitch;

int
main()
{
    auto app = apps::app2Cnn();
    apps::AppRunner runner(4, 12);

    std::printf("Per-kernel acceleration menu (single core):\n");
    std::printf("%-10s %10s %10s %10s\n", "kernel", "software",
                "best patch", "stitched");
    for (const auto &name :
         {std::string("conv2d"), std::string("conv2d10"),
          std::string("pooling"), std::string("fc")}) {
        const auto &ck = runner.compiledFor(name, {});
        std::printf("%-10s %10llu %9.2fx %9.2fx\n", name.c_str(),
                    static_cast<unsigned long long>(
                        ck.softwareCycles),
                    ck.bestSinglePatch()->speedup,
                    ck.bestStitch()->speedup);
    }

    auto base = runner.run(app, apps::AppMode::Baseline);
    auto full = runner.run(app, apps::AppMode::Stitch);

    std::printf("\nStitch plan:\n");
    std::vector<compiler::KernelProfile> names;
    for (std::size_t k = 0; k < app.stageKernels.size(); ++k)
        names.push_back(
            {app.stageKernels[k] + "#" + std::to_string(k), 0, {}});
    std::printf("%s\n",
                full.plan
                    .describe(names, core::StitchArch::standard())
                    .c_str());

    std::printf("pipeline throughput: %.0f -> %.0f cycles/image "
                "(%.2fx)\n",
                base.perSampleCycles(), full.perSampleCycles(),
                base.perSampleCycles() / full.perSampleCycles());
    std::printf("custom instructions executed: %llu; messages: "
                "%llu\n",
                static_cast<unsigned long long>(
                    full.stats.customInstructions),
                static_cast<unsigned long long>(
                    full.stats.messages));

    std::printf("\nper-tile utilization (Stitch run):\n");
    for (TileId t = 0; t < numTiles; ++t) {
        const auto &ts = full.stats.perTile[static_cast<std::size_t>(t)];
        if (!ts.loaded)
            continue;
        std::printf("  tile%-2d %5.1f%% busy, %7llu instrs, %5llu "
                    "CUSTs\n",
                    t, 100.0 * ts.utilization(full.stats.makespan),
                    static_cast<unsigned long long>(ts.instructions),
                    static_cast<unsigned long long>(
                        ts.customInstructions));
    }
    return 0;
}

#include "power/power_model.hh"

namespace stitch::power
{

double
baselinePowerMw()
{
    // Remove the accelerator fabric's 23% share (Fig. 13); what
    // remains is the 16 cores + caches + inter-core NoC, which the
    // baseline shares with Stitch. This reproduces the paper's 1.77X
    // performance/watt at 2.3X performance.
    return stitchTotalMw * (1.0 - accelPowerShare);
}

double
stitchPowerMw()
{
    return stitchTotalMw;
}

double
stitchNoFusionPowerMw()
{
    return stitchNoFusionMw;
}

double
locusPowerMw(double freqMhz)
{
    // Derived estimate: scale the Stitch accelerator power density
    // (23% of 139.5 mW over 168,568 um^2) to the LOCUS SFU area with
    // a 25% activity factor (the SFU is idle-gated most of the time),
    // and scale dynamic power linearly with frequency.
    double stitchAccelMw = stitchTotalMw * accelPowerShare;
    double density = stitchAccelMw / stitchAccelAreaUm2;
    double locusAccelMw = density * locusAccelAreaUm2 * 0.25;
    double scale = freqMhz / stitchClockMhz;
    return (baselinePowerMw() + locusAccelMw) * scale;
}

double
patchesAreaUm2(const core::StitchArch &arch)
{
    double total = 0.0;
    for (TileId t = 0; t < numTiles; ++t)
        total += core::patchAreaUm2(arch.kindOf(t));
    return total;
}

double
snocAreaUm2()
{
    return core::rtl::switchAreaUm2 * numTiles;
}

double
chipAreaMm2()
{
    return stitchAccelAreaUm2 / stitchAccelAreaShare / 1e6;
}

std::vector<BreakdownRow>
powerBreakdown()
{
    // The paper reports the total (139.5 mW) and the accelerator
    // share (23%); the split of the remaining 77% across cores,
    // caches and the inter-core NoC is derived from typical embedded
    // in-order SoC proportions. The accelerator share itself is split
    // between patches and sNoC in proportion to synthesized area.
    double accel = stitchTotalMw * accelPowerShare;
    double rest = stitchTotalMw - accel;
    double patches = patchesAreaUm2(core::StitchArch::standard());
    double snoc = snocAreaUm2();
    double patchMw = accel * patches / (patches + snoc);
    double snocMw = accel - patchMw;
    std::vector<BreakdownRow> rows = {
        {"cores", rest * 0.52, 0, true},
        {"caches+SPM", rest * 0.33, 0, true},
        {"inter-core NoC", rest * 0.15, 0, true},
        {"patches", patchMw, 0, false},
        {"inter-patch NoC", snocMw, 0, false},
    };
    for (auto &row : rows)
        row.share = row.value / stitchTotalMw;
    return rows;
}

std::vector<BreakdownRow>
accelAreaBreakdown()
{
    auto arch = core::StitchArch::standard();
    std::vector<BreakdownRow> rows;
    double total = patchesAreaUm2(arch) + snocAreaUm2();
    auto add = [&](const char *name, double area) {
        rows.push_back(BreakdownRow{name, area, area / total, false});
    };
    add("8x {AT-MA}", 8 * core::patchAreaUm2(core::PatchKind::ATMA));
    add("4x {AT-AS}", 4 * core::patchAreaUm2(core::PatchKind::ATAS));
    add("4x {AT-SA}", 4 * core::patchAreaUm2(core::PatchKind::ATSA));
    add("16x sNoC switch", snocAreaUm2());
    return rows;
}

double
cyclesToMs(double cycles)
{
    return cycles / (stitchClockMhz * 1e3);
}

EnergyModel
EnergyModel::standard()
{
    // Convert the Fig. 13 chip power into a per-cycle energy budget:
    // mW = pJ/cycle * MHz * 1e-3, so 139.5 mW at 200 MHz is 697.5 pJ
    // per chip cycle. Split it with the same proportions as
    // powerBreakdown(), then spread each component over the 16 tiles.
    double chipPj = stitchTotalMw * 1e3 / stitchClockMhz;
    double accelPj = chipPj * accelPowerShare;
    double restPj = chipPj - accelPj;
    double tileCorePj = restPj * (0.52 + 0.33) / numTiles;
    double tileNocPj = restPj * 0.15 / numTiles;

    // Activity factors within a tile's core+cache budget: a fully
    // issuing pipeline pays the whole budget; ~35% of it (clock tree,
    // leakage, the always-clocked NoC router slice) is paid whenever
    // the tile is powered at all. Stall and blocked cycles keep only
    // part of the datapath active. Derived, not paper-reported.
    double active = tileCorePj * 0.65;
    EnergyModel m;
    m.tileIdlePj = tileCorePj * 0.35 + tileNocPj;
    m.issueExtraPj = active;
    m.stallExtraPj = active * 0.60;   // memory system busy, pipe gated
    m.blockedExtraPj = active * 0.15; // only the NIC poll loop active
    // The accelerator share splits between patches and the sNoC in
    // proportion to synthesized area (Table IV), as in Fig. 13. A
    // patch evaluates one CUST per cycle at full rate, so the
    // per-CUST energy is the per-tile patch slice of that budget; a
    // fused CUST also drives the remote patch's datapath (half the
    // local energy: its sequencer and SPM port stay idle).
    double patches = patchesAreaUm2(core::StitchArch::standard());
    double snoc = snocAreaUm2();
    double patchPj = accelPj * patches / (patches + snoc);
    double snocPj = accelPj - patchPj;
    m.custPj = patchPj / numTiles;
    m.fusedExtraPj = m.custPj * 0.5;
    m.snocHopPj = snocPj / numTiles;
    // Inter-core packet: wormhole dynamic energy across routers and
    // links, roughly two tiles' worth of the NoC per-cycle slice.
    m.nocPacketPj = tileNocPj * 2.0;
    return m;
}

double
averagePowerMw(double energyPj, double cycles)
{
    return cycles <= 0.0
               ? 0.0
               : energyPj / cycles * stitchClockMhz * 1e-3;
}

} // namespace stitch::power

#include "power/power_model.hh"

namespace stitch::power
{

double
baselinePowerMw()
{
    // Remove the accelerator fabric's 23% share (Fig. 13); what
    // remains is the 16 cores + caches + inter-core NoC, which the
    // baseline shares with Stitch. This reproduces the paper's 1.77X
    // performance/watt at 2.3X performance.
    return stitchTotalMw * (1.0 - accelPowerShare);
}

double
stitchPowerMw()
{
    return stitchTotalMw;
}

double
stitchNoFusionPowerMw()
{
    return stitchNoFusionMw;
}

double
locusPowerMw(double freqMhz)
{
    // Derived estimate: scale the Stitch accelerator power density
    // (23% of 139.5 mW over 168,568 um^2) to the LOCUS SFU area with
    // a 25% activity factor (the SFU is idle-gated most of the time),
    // and scale dynamic power linearly with frequency.
    double stitchAccelMw = stitchTotalMw * accelPowerShare;
    double density = stitchAccelMw / stitchAccelAreaUm2;
    double locusAccelMw = density * locusAccelAreaUm2 * 0.25;
    double scale = freqMhz / stitchClockMhz;
    return (baselinePowerMw() + locusAccelMw) * scale;
}

double
patchesAreaUm2(const core::StitchArch &arch)
{
    double total = 0.0;
    for (TileId t = 0; t < numTiles; ++t)
        total += core::patchAreaUm2(arch.kindOf(t));
    return total;
}

double
snocAreaUm2()
{
    return core::rtl::switchAreaUm2 * numTiles;
}

double
chipAreaMm2()
{
    return stitchAccelAreaUm2 / stitchAccelAreaShare / 1e6;
}

std::vector<BreakdownRow>
powerBreakdown()
{
    // The paper reports the total (139.5 mW) and the accelerator
    // share (23%); the split of the remaining 77% across cores,
    // caches and the inter-core NoC is derived from typical embedded
    // in-order SoC proportions. The accelerator share itself is split
    // between patches and sNoC in proportion to synthesized area.
    double accel = stitchTotalMw * accelPowerShare;
    double rest = stitchTotalMw - accel;
    double patches = patchesAreaUm2(core::StitchArch::standard());
    double snoc = snocAreaUm2();
    double patchMw = accel * patches / (patches + snoc);
    double snocMw = accel - patchMw;
    std::vector<BreakdownRow> rows = {
        {"cores", rest * 0.52, 0, true},
        {"caches+SPM", rest * 0.33, 0, true},
        {"inter-core NoC", rest * 0.15, 0, true},
        {"patches", patchMw, 0, false},
        {"inter-patch NoC", snocMw, 0, false},
    };
    for (auto &row : rows)
        row.share = row.value / stitchTotalMw;
    return rows;
}

std::vector<BreakdownRow>
accelAreaBreakdown()
{
    auto arch = core::StitchArch::standard();
    std::vector<BreakdownRow> rows;
    double total = patchesAreaUm2(arch) + snocAreaUm2();
    auto add = [&](const char *name, double area) {
        rows.push_back(BreakdownRow{name, area, area / total, false});
    };
    add("8x {AT-MA}", 8 * core::patchAreaUm2(core::PatchKind::ATMA));
    add("4x {AT-AS}", 4 * core::patchAreaUm2(core::PatchKind::ATAS));
    add("4x {AT-SA}", 4 * core::patchAreaUm2(core::PatchKind::ATSA));
    add("16x sNoC switch", snocAreaUm2());
    return rows;
}

double
cyclesToMs(double cycles)
{
    return cycles / (stitchClockMhz * 1e3);
}

} // namespace stitch::power

/**
 * @file
 * Power, area and platform reference models (paper Sections V/VI-D).
 *
 * Anchored constants come from the paper's 40 nm Synopsys DC
 * synthesis (Table I, Table III, Table IV, Figure 13) and from its
 * measured reference platforms (TI SensorTag, ODROID XU3's quad
 * Cortex-A7). Quantities the paper does not report directly are
 * derived and labelled as such in code comments.
 */

#ifndef STITCH_POWER_POWER_MODEL_HH
#define STITCH_POWER_POWER_MODEL_HH

#include <string>
#include <vector>

#include "core/arch.hh"
#include "core/snoc_timing.hh"

namespace stitch::power
{

/** Clock of the Stitch chip (Section VI-D). */
inline constexpr double stitchClockMhz = 200.0;

/** Total chip power at 200 MHz (Fig. 13 / Table I). */
inline constexpr double stitchTotalMw = 139.5;

/** Share of total power in patches + inter-patch NoC (Fig. 13). */
inline constexpr double accelPowerShare = 0.23;

/** Stitch w/o fusion average power (Table I): the sNoC repeaters and
 *  remote patches stay idle. */
inline constexpr double stitchNoFusionMw = 108.0;

/** Accelerator areas (Table III), um^2. */
inline constexpr double locusAccelAreaUm2 = 1288044.0;
inline constexpr double stitchNoFusionAreaUm2 = 49872.0;
inline constexpr double stitchAccelAreaUm2 = 168568.0;

/** Accelerator share of chip area (Table III): 0.5%. */
inline constexpr double stitchAccelAreaShare = 0.005;

/** Reference platforms (Table I / Fig. 15, measured by the paper). */
struct PlatformRef
{
    const char *name;
    double gestureMs;   ///< time per gesture (APP1)
    double powerMw;
    double freqMhz;
};

inline constexpr PlatformRef sensorTagRef{"TI SensorTag (M3)", 577.0,
                                          8.78, 48.0};
inline constexpr PlatformRef cortexA7Ref{"quad Cortex-A7", 13.0,
                                         469.0, 1200.0};
inline constexpr PlatformRef paperStitchRef{"Stitch (paper)", 7.62,
                                            139.5, 200.0};
inline constexpr PlatformRef paperNoFusionRef{
    "Stitch w/o fusion (paper)", 11.49, 108.0, 200.0};

/** APP1 real-time deadline: 128 Hz sampling (Section V). */
inline constexpr double gestureDeadlineMs = 7.81;

/**
 * Quad-A7 throughput relative to the 16-core 200 MHz baseline.
 * Derived: the paper reports Stitch at 2.3X the baseline and 1.65X
 * the A7, so A7 ~ 2.3/1.65 = 1.394X the baseline.
 */
inline constexpr double a7VsBaselineThroughput = 2.3 / 1.65;

/** Chip-level power numbers per configuration. */
double baselinePowerMw();       ///< cores only: total * (1 - 23%)
double stitchPowerMw();         ///< full chip, fusion active
double stitchNoFusionPowerMw(); ///< Table I
double locusPowerMw(double freqMhz = 200.0); ///< derived estimate

/** Total patch area of a placement (Table IV per-patch areas). */
double patchesAreaUm2(const core::StitchArch &arch);

/** Inter-patch NoC switch area (16 switches, Table IV). */
double snocAreaUm2();

/** Full chip area implied by the 0.5% accelerator share, mm^2. */
double chipAreaMm2();

/** One row of the Fig. 13 style breakdown. */
struct BreakdownRow
{
    std::string component;
    double value;  ///< mW or um^2
    double share;  ///< of total
    bool derived;  ///< true if not directly reported by the paper
};

/** Power breakdown of the Stitch chip (Fig. 13 left). */
std::vector<BreakdownRow> powerBreakdown();

/** Area breakdown of the accelerator fabric (Fig. 13 right). */
std::vector<BreakdownRow> accelAreaBreakdown();

/** Cycles -> milliseconds at the Stitch clock. */
double cyclesToMs(double cycles);

/**
 * Activity-scaled per-event energy constants (pJ), for attributing
 * the Fig. 13 chip power to tiles and kernels from simulated activity
 * counts. All values are *derived* from the paper's anchors — total
 * chip power (139.5 mW at 200 MHz), the 23% accelerator share and the
 * Table IV patch/sNoC synthesis areas — via the powerBreakdown()
 * split; see standard() for the arithmetic. The model is additive:
 *
 *   tile energy = tileIdlePj  * makespan                (if loaded)
 *               + issueExtraPj * (issue + cust cycles)
 *               + stallExtraPj * (cache-miss + SPM stall cycles)
 *               + blockedExtraPj * (SEND + RECV blocked cycles)
 *               + custPj * CUSTs + fusedExtraPj * fused CUSTs
 *               + snocHopPj * sNoC hops + nocPacketPj * msgs sent
 *
 * Unloaded tiles are clock-gated and contribute nothing. The rollup
 * itself lives in src/prof/ (power stays free of sim dependencies).
 */
struct EnergyModel
{
    double tileIdlePj;     ///< per loaded-tile makespan cycle (clock
                           ///< tree, leakage, always-on NoC router)
    double issueExtraPj;   ///< extra per issue/CUST-base cycle
    double stallExtraPj;   ///< extra per cache-miss/SPM stall cycle
    double blockedExtraPj; ///< extra per SEND-/RECV-blocked cycle
    double custPj;         ///< per CUST (local patch evaluation)
    double fusedExtraPj;   ///< extra per fused CUST (remote patch)
    double snocHopPj;      ///< per inter-patch mesh hop
    double nocPacketPj;    ///< per inter-core NoC packet injected

    /** The constants anchored to the paper's Fig. 13 numbers. */
    static EnergyModel standard();
};

/** Average power of `energyPj` dissipated over `cycles` at 200 MHz. */
double averagePowerMw(double energyPj, double cycles);

} // namespace stitch::power

#endif // STITCH_POWER_POWER_MODEL_HH

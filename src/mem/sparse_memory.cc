#include "mem/sparse_memory.hh"

namespace stitch::mem
{

SparseMemory::Page &
SparseMemory::pageForSlow(Addr a)
{
    Addr key = a / pageBytes;
    auto it = pages_.find(key);
    if (it == pages_.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages_.emplace(key, std::move(page)).first;
    }
    cachedKey_ = key;
    cachedPage_ = it->second.get();
    return *cachedPage_;
}

const SparseMemory::Page *
SparseMemory::pageForReadSlow(Addr a) const
{
    Addr key = a / pageBytes;
    auto it = pages_.find(key);
    if (it == pages_.end())
        return nullptr;
    cachedKey_ = key;
    cachedPage_ = it->second.get();
    return cachedPage_;
}

Word
SparseMemory::readWordSlow(Addr a) const
{
    // Page-straddling word: byte-wise across both pages.
    return static_cast<Word>(readByte(a)) |
           (static_cast<Word>(readByte(a + 1)) << 8) |
           (static_cast<Word>(readByte(a + 2)) << 16) |
           (static_cast<Word>(readByte(a + 3)) << 24);
}

void
SparseMemory::writeWordSlow(Addr a, Word v)
{
    writeByte(a, static_cast<std::uint8_t>(v & 0xff));
    writeByte(a + 1, static_cast<std::uint8_t>((v >> 8) & 0xff));
    writeByte(a + 2, static_cast<std::uint8_t>((v >> 16) & 0xff));
    writeByte(a + 3, static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void
SparseMemory::writeBlock(Addr base, const std::vector<std::uint8_t> &bytes)
{
    for (std::size_t i = 0; i < bytes.size(); ++i)
        writeByte(base + static_cast<Addr>(i), bytes[i]);
}

} // namespace stitch::mem

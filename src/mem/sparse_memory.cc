#include "mem/sparse_memory.hh"

namespace stitch::mem
{

SparseMemory::Page &
SparseMemory::pageFor(Addr a)
{
    Addr key = a / pageBytes;
    auto it = pages_.find(key);
    if (it == pages_.end()) {
        auto page = std::make_unique<Page>();
        page->fill(0);
        it = pages_.emplace(key, std::move(page)).first;
    }
    return *it->second;
}

const SparseMemory::Page *
SparseMemory::pageForRead(Addr a) const
{
    auto it = pages_.find(a / pageBytes);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint8_t
SparseMemory::readByte(Addr a) const
{
    const Page *p = pageForRead(a);
    return p ? (*p)[a % pageBytes] : 0;
}

void
SparseMemory::writeByte(Addr a, std::uint8_t v)
{
    pageFor(a)[a % pageBytes] = v;
}

Word
SparseMemory::readWord(Addr a) const
{
    return static_cast<Word>(readByte(a)) |
           (static_cast<Word>(readByte(a + 1)) << 8) |
           (static_cast<Word>(readByte(a + 2)) << 16) |
           (static_cast<Word>(readByte(a + 3)) << 24);
}

void
SparseMemory::writeWord(Addr a, Word v)
{
    writeByte(a, static_cast<std::uint8_t>(v & 0xff));
    writeByte(a + 1, static_cast<std::uint8_t>((v >> 8) & 0xff));
    writeByte(a + 2, static_cast<std::uint8_t>((v >> 16) & 0xff));
    writeByte(a + 3, static_cast<std::uint8_t>((v >> 24) & 0xff));
}

void
SparseMemory::writeBlock(Addr base, const std::vector<std::uint8_t> &bytes)
{
    for (std::size_t i = 0; i < bytes.size(); ++i)
        writeByte(base + static_cast<Addr>(i), bytes[i]);
}

} // namespace stitch::mem

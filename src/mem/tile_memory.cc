#include "mem/tile_memory.hh"

#include "common/logging.hh"

namespace stitch::mem
{

TileMemory::TileMemory(const MemParams &params)
    : params_(params),
      icache_(params.icache),
      dcache_(params.dcache),
      spm_(params.hasSpm ? spmSize : 0, 0),
      spmReads_(stats_.counter("spm_reads")),
      spmWrites_(stats_.counter("spm_writes"))
{
}

void
TileMemory::setTraceTile(int tile)
{
    icache_.setTraceContext(tile, "icache");
    dcache_.setTraceContext(tile, "dcache");
}

void
TileMemory::spmRangeError(Addr a) const
{
    STITCH_ASSERT(!spm_.empty(), "SPM access on a tile without an SPM");
    fatal("SPM access out of range: ", a);
}

MemResult
TileMemory::loadWord(Addr a, Cycles now)
{
    if (isSpmAddr(a)) {
        ++spmReads_;
        // SPM is 1-cycle, which is the base instruction cycle: no
        // extra stall beyond it (spmCycles - 1).
        return MemResult{spmLoadWord(a), params_.spmCycles - 1};
    }
    if (!isDramAddr(a))
        fatal("load from unmapped address ", a);
    Cycles extra = dcacheAccess(a, false, now);
    return MemResult{dram_.readWord(a), extra};
}

MemResult
TileMemory::loadByte(Addr a, Cycles now)
{
    if (isSpmAddr(a)) {
        ++spmReads_;
        const std::uint8_t *p = &spm_[a - spmBase];
        auto v = static_cast<Word>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(*p)));
        return MemResult{v, params_.spmCycles - 1};
    }
    if (!isDramAddr(a))
        fatal("load from unmapped address ", a);
    Cycles extra = dcacheAccess(a, false, now);
    auto v = static_cast<Word>(static_cast<std::int32_t>(
        static_cast<std::int8_t>(dram_.readByte(a))));
    return MemResult{v, extra};
}

Cycles
TileMemory::storeWord(Addr a, Word v, Cycles now)
{
    if (isSpmAddr(a)) {
        ++spmWrites_;
        spmStoreWord(a, v);
        return params_.spmCycles - 1;
    }
    if (!isDramAddr(a))
        fatal("store to unmapped address ", a);
    Cycles extra = dcacheAccess(a, true, now);
    dram_.writeWord(a, v);
    return extra;
}

Cycles
TileMemory::storeByte(Addr a, std::uint8_t v, Cycles now)
{
    if (isSpmAddr(a)) {
        ++spmWrites_;
        spm_[a - spmBase] = v;
        return params_.spmCycles - 1;
    }
    if (!isDramAddr(a))
        fatal("store to unmapped address ", a);
    Cycles extra = dcacheAccess(a, true, now);
    dram_.writeByte(a, v);
    return extra;
}

Cycles
TileMemory::fetch(Addr wa, int words, Cycles now)
{
    Cycles extra = 0;
    Addr first = codeBase + wa * 4;
    Addr last = first + static_cast<Addr>(words - 1) * 4;
    Addr block = params_.icache.blockBytes;
    // One access per block touched (a two-word CUST can straddle).
    for (Addr a = first / block * block; a <= last; a += block) {
        auto res = icache_.access(a, false, now);
        if (!res.hit)
            extra += params_.dramCycles;
    }
    return extra;
}

Word
TileMemory::spmPeek(Addr offset) const
{
    return spmLoadWord(spmBase + offset);
}

void
TileMemory::spmPoke(Addr offset, Word v)
{
    spmStoreWord(spmBase + offset, v);
}

void
TileMemory::flushCaches()
{
    icache_.flush();
    dcache_.flush();
}

void
TileMemory::resetStats()
{
    stats_.reset();
    icache_.stats().reset();
    dcache_.stats().reset();
}

} // namespace stitch::mem

/**
 * @file
 * Set-associative cache timing model (tags + LRU only).
 *
 * Stitch separates function from timing the way gem5's atomic mode
 * does: data always lives in the tile's backing store; the cache model
 * tracks tags and replacement to charge hit/miss latency. With a
 * single in-order core per private memory this is exact.
 */

#ifndef STITCH_MEM_CACHE_HH
#define STITCH_MEM_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace stitch::mem
{

/** Static configuration of one cache. */
struct CacheParams
{
    std::uint32_t sizeBytes = 4096;
    std::uint32_t assoc = 2;
    std::uint32_t blockBytes = 64;
};

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false; ///< a dirty block was evicted
};

/**
 * Tag store with true-LRU replacement and write-back/write-allocate
 * policy (paper Table II: 2-way, 64 B blocks, LRU).
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /** Probe and update state for an access. */
    CacheAccessResult access(Addr a, bool isWrite);

    /** True if `a` currently hits without changing state. */
    bool probe(Addr a) const;

    /** Invalidate everything (program reload). */
    void flush();

    std::uint32_t numSets() const { return numSets_; }
    const CacheParams &params() const { return params_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t setOf(Addr a) const;
    Addr tagOf(Addr a) const;

    CacheParams params_;
    std::uint32_t numSets_;
    std::vector<Line> lines_;    ///< numSets_ x assoc, row major
    std::uint64_t useClock_ = 0;
    StatGroup stats_;
};

} // namespace stitch::mem

#endif // STITCH_MEM_CACHE_HH

/**
 * @file
 * Set-associative cache timing model (tags + LRU only).
 *
 * Stitch separates function from timing the way gem5's atomic mode
 * does: data always lives in the tile's backing store; the cache model
 * tracks tags and replacement to charge hit/miss latency. With a
 * single in-order core per private memory this is exact.
 */

#ifndef STITCH_MEM_CACHE_HH
#define STITCH_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace stitch::mem
{

/** Static configuration of one cache. */
struct CacheParams
{
    std::uint32_t sizeBytes = 4096;
    std::uint32_t assoc = 2;
    std::uint32_t blockBytes = 64;
};

/** Result of a cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false; ///< a dirty block was evicted
};

/**
 * Tag store with true-LRU replacement and write-back/write-allocate
 * policy (paper Table II: 2-way, 64 B blocks, LRU).
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Probe and update state for an access. `now` is the accessing
     * core's local time; it timestamps miss/refill trace events and
     * may be zero when no one is tracing (standalone tools). The hit
     * path lives here so per-access callers inline it; misses take
     * the out-of-line fill path.
     */
    CacheAccessResult
    access(Addr a, bool isWrite, Cycles now = 0)
    {
        ++useClock_;
        std::uint32_t set = setOf(a);
        Addr tag = tagOf(a);
        Line *base =
            &lines_[static_cast<std::size_t>(set) * params_.assoc];
        ++(isWrite ? writes_ : reads_);
        for (std::uint32_t way = 0; way < params_.assoc; ++way) {
            Line &line = base[way];
            if (line.valid && line.tag == tag) {
                line.lastUse = useClock_;
                line.dirty = line.dirty || isWrite;
                ++hits_;
                return CacheAccessResult{true, false};
            }
        }
        return fill(base, tag, isWrite, a, now);
    }

    /**
     * Account `n` reads that are guaranteed hits on blocks already
     * touched since the last access to any other line of their set —
     * the compiled backend's fetch compression (src/jit/): a trace
     * touches its code blocks in monotone address order, so every
     * re-access of an already-touched block precedes the first access
     * of any later block and cannot change LRU victim selection.
     * Counter-equivalent to `n` access() hits; skips the tag probe.
     */
    void
    repeatReadHits(std::uint64_t n)
    {
        useClock_ += n;
        reads_ += n;
        hits_ += n;
    }

    /**
     * Attach this cache to a tile's trace track. `name` ("icache",
     * "dcache") labels the emitted miss events; untagged caches never
     * trace.
     */
    void setTraceContext(int tile, const char *name);

    /** True if `a` currently hits without changing state. */
    bool probe(Addr a) const;

    /** Invalidate everything (program reload). */
    void flush();

    std::uint32_t numSets() const { return numSets_; }
    const CacheParams &params() const { return params_; }
    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    std::uint32_t
    setOf(Addr a) const
    {
        return (a >> blockShift_) & (numSets_ - 1);
    }
    Addr
    tagOf(Addr a) const
    {
        return a >> tagShift_;
    }

    /** Miss path of access(): victim choice, eviction, refill. */
    CacheAccessResult fill(Line *base, Addr tag, bool isWrite, Addr a,
                           Cycles now);

    CacheParams params_;
    std::uint32_t numSets_;
    std::uint32_t blockShift_; ///< log2(blockBytes); both divisors are
    std::uint32_t tagShift_;   ///< blockShift_ + log2(numSets_) (ctor
                               ///< asserts powers of two)
    std::vector<Line> lines_;    ///< numSets_ x assoc, row major
    std::uint64_t useClock_ = 0;
    StatGroup stats_;

    // Cached counter handles: access() runs per load/store, so it
    // must not pay a map lookup per event (see StatGroup::counter).
    Counter &reads_;
    Counter &writes_;
    Counter &hits_;
    Counter &misses_;
    Counter &refills_;
    Counter &writebacks_;

    int traceTile_ = -1; ///< tile track for miss events; -1 = off
    std::string traceMiss_;
    std::string traceWriteback_;
};

} // namespace stitch::mem

#endif // STITCH_MEM_CACHE_HH

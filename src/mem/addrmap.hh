/**
 * @file
 * The SW32 physical address map.
 *
 * Each tile owns a private memory space (Stitch is message passing, so
 * there is no shared memory and no coherence — paper Section III). The
 * scratchpad is an extension of the address space whose accesses are
 * never cached; the sequencer routes by address (Section III-C).
 */

#ifndef STITCH_MEM_ADDRMAP_HH
#define STITCH_MEM_ADDRMAP_HH

#include "common/types.hh"

namespace stitch::mem
{

/** Cached DRAM space: [dramBase, dramBase + dramSize). */
inline constexpr Addr dramBase = 0x00000000u;
inline constexpr Addr dramSize = 512u * 1024u * 1024u;

/** Code image base (instruction fetches hit the I-cache here). */
inline constexpr Addr codeBase = 0x00010000u;

/** Per-tile scratchpad window (4 KB, uncached, 1-cycle). */
inline constexpr Addr spmBase = 0x80000000u;
inline constexpr Addr spmSize = 4096u;

/** Memory-mapped crossbar configuration register (paper Fig. 5). */
inline constexpr Addr xbarConfigAddr = 0x90000000u;

/** True if `a` lies inside the scratchpad window. */
constexpr bool
isSpmAddr(Addr a)
{
    return a >= spmBase && a < spmBase + spmSize;
}

/** True if `a` is the crossbar configuration register. */
constexpr bool
isXbarConfigAddr(Addr a)
{
    return a == xbarConfigAddr;
}

/** True if `a` lies in cached DRAM space. */
constexpr bool
isDramAddr(Addr a)
{
    return a < dramBase + dramSize;
}

} // namespace stitch::mem

#endif // STITCH_MEM_ADDRMAP_HH

/**
 * @file
 * The per-tile memory system: private DRAM behind split I/D caches,
 * plus the 4 KB scratchpad (paper Table II).
 */

#ifndef STITCH_MEM_TILE_MEMORY_HH
#define STITCH_MEM_TILE_MEMORY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/addrmap.hh"
#include "mem/cache.hh"
#include "mem/sparse_memory.hh"

namespace stitch::mem
{

/** Memory-system configuration of one tile. */
struct MemParams
{
    CacheParams icache{8192, 2, 64};  ///< 2-way 8 KB I-cache
    CacheParams dcache{4096, 2, 64};  ///< 2-way 4 KB D-cache
    bool hasSpm = true;               ///< Stitch tiles have the SPM;
                                      ///< the baseline swaps it for a
                                      ///< larger D-cache
    Cycles dramCycles = 30;           ///< DRAM access latency
    Cycles spmCycles = 1;             ///< SPM access latency
};

/** Value + additional stall cycles beyond the base instruction cycle. */
struct MemResult
{
    Word value = 0;
    Cycles extraCycles = 0;
};

/**
 * One tile's memory. The sequencer role of Section III-C lives here:
 * addresses are routed to the SPM window or the cached DRAM space.
 */
class TileMemory
{
  public:
    explicit TileMemory(const MemParams &params = MemParams{});

    /**
     * Data-side accesses (loads charge latency, return data). `now`
     * is the accessing core's local time, used only to timestamp
     * cache trace events; callers without a clock may omit it.
     */
    MemResult loadWord(Addr a, Cycles now = 0);
    MemResult loadByte(Addr a, Cycles now = 0); ///< sign-extended
    Cycles storeWord(Addr a, Word v, Cycles now = 0);
    Cycles storeByte(Addr a, std::uint8_t v, Cycles now = 0);

    /**
     * Instruction-side access: charge the I-cache for fetching
     * `words` instruction words starting at word address `wa`.
     */
    Cycles fetch(Addr wa, int words, Cycles now = 0);

    /** Tag this memory's caches with their tile's trace track. */
    void setTraceTile(int tile);

    /** Zero-latency SPM port used by the patch LMAU (Section III-C). */
    Word spmLoadWord(Addr a) const;
    void spmStoreWord(Addr a, Word v);

    /** Direct (no timing) backing-store access for loaders/checkers. */
    SparseMemory &backing() { return dram_; }
    const SparseMemory &backing() const { return dram_; }

    /** Direct SPM image access for loaders/checkers. */
    Word spmPeek(Addr offset) const;
    void spmPoke(Addr offset, Word v);

    /** Reset caches (fresh program run); memory contents persist. */
    void flushCaches();

    /** Zero this memory's and both caches' counters (fresh run). */
    void resetStats();

    const MemParams &params() const { return params_; }
    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }
    StatGroup &stats() { return stats_; }

  private:
    Cycles dcacheAccess(Addr a, bool isWrite, Cycles now);
    std::uint8_t *spmBytePtr(Addr a);
    const std::uint8_t *spmBytePtr(Addr a) const;

    MemParams params_;
    SparseMemory dram_;
    Cache icache_;
    Cache dcache_;
    std::vector<std::uint8_t> spm_;
    StatGroup stats_;
    Counter &spmReads_;  ///< cached handles; see StatGroup::counter
    Counter &spmWrites_;
};

} // namespace stitch::mem

#endif // STITCH_MEM_TILE_MEMORY_HH

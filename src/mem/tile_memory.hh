/**
 * @file
 * The per-tile memory system: private DRAM behind split I/D caches,
 * plus the 4 KB scratchpad (paper Table II).
 */

#ifndef STITCH_MEM_TILE_MEMORY_HH
#define STITCH_MEM_TILE_MEMORY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/addrmap.hh"
#include "mem/cache.hh"
#include "mem/sparse_memory.hh"

namespace stitch::mem
{

/** Memory-system configuration of one tile. */
struct MemParams
{
    CacheParams icache{8192, 2, 64};  ///< 2-way 8 KB I-cache
    CacheParams dcache{4096, 2, 64};  ///< 2-way 4 KB D-cache
    bool hasSpm = true;               ///< Stitch tiles have the SPM;
                                      ///< the baseline swaps it for a
                                      ///< larger D-cache
    Cycles dramCycles = 30;           ///< DRAM access latency
    Cycles spmCycles = 1;             ///< SPM access latency
};

/** Value + additional stall cycles beyond the base instruction cycle. */
struct MemResult
{
    Word value = 0;
    Cycles extraCycles = 0;
};

/**
 * One tile's memory. The sequencer role of Section III-C lives here:
 * addresses are routed to the SPM window or the cached DRAM space.
 */
class TileMemory
{
  public:
    explicit TileMemory(const MemParams &params = MemParams{});

    /**
     * Data-side accesses (loads charge latency, return data). `now`
     * is the accessing core's local time, used only to timestamp
     * cache trace events; callers without a clock may omit it.
     */
    MemResult loadWord(Addr a, Cycles now = 0);
    MemResult loadByte(Addr a, Cycles now = 0); ///< sign-extended
    Cycles storeWord(Addr a, Word v, Cycles now = 0);
    Cycles storeByte(Addr a, std::uint8_t v, Cycles now = 0);

    /**
     * Instruction-side access: charge the I-cache for fetching
     * `words` instruction words starting at word address `wa`.
     */
    Cycles fetch(Addr wa, int words, Cycles now = 0);

    /** Tag this memory's caches with their tile's trace track. */
    void setTraceTile(int tile);

    // -----------------------------------------------------------------
    // Compiled-backend fast paths (src/jit/). Each is the body of one
    // already-routed arm of the generic accessors above: the caller's
    // inline cache has proven the address class (isSpmAddr /
    // isDramAddr), so the route test is skipped but every counter and
    // range check of the generic path still fires. Byte-equivalent to
    // the generic accessor on in-class addresses by construction.
    // -----------------------------------------------------------------

    /** loadWord's SPM arm: caller has established isSpmAddr(a). */
    MemResult
    spmLoadWordFast(Addr a)
    {
        ++spmReads_;
        return MemResult{spmLoadWord(a), params_.spmCycles - 1};
    }

    /** loadByte's SPM arm: caller has established isSpmAddr(a). */
    MemResult
    spmLoadByteFast(Addr a)
    {
        ++spmReads_;
        const std::uint8_t *p = &spm_[a - spmBase];
        auto v = static_cast<Word>(
            static_cast<std::int32_t>(static_cast<std::int8_t>(*p)));
        return MemResult{v, params_.spmCycles - 1};
    }

    /** storeWord's SPM arm: caller has established isSpmAddr(a). */
    Cycles
    spmStoreWordFast(Addr a, Word v)
    {
        ++spmWrites_;
        spmStoreWord(a, v);
        return params_.spmCycles - 1;
    }

    /** storeByte's SPM arm: caller has established isSpmAddr(a). */
    Cycles
    spmStoreByteFast(Addr a, std::uint8_t v)
    {
        ++spmWrites_;
        spm_[a - spmBase] = v;
        return params_.spmCycles - 1;
    }

    /** loadWord's cached-DRAM arm: caller established isDramAddr(a). */
    MemResult
    dramLoadWordFast(Addr a, Cycles now)
    {
        Cycles extra = dcacheAccess(a, false, now);
        return MemResult{dram_.readWord(a), extra};
    }

    /** loadByte's cached-DRAM arm: caller established isDramAddr(a). */
    MemResult
    dramLoadByteFast(Addr a, Cycles now)
    {
        Cycles extra = dcacheAccess(a, false, now);
        auto v = static_cast<Word>(static_cast<std::int32_t>(
            static_cast<std::int8_t>(dram_.readByte(a))));
        return MemResult{v, extra};
    }

    /** storeWord's cached-DRAM arm: caller established isDramAddr(a). */
    Cycles
    dramStoreWordFast(Addr a, Word v, Cycles now)
    {
        Cycles extra = dcacheAccess(a, true, now);
        dram_.writeWord(a, v);
        return extra;
    }

    /** storeByte's cached-DRAM arm: caller established isDramAddr(a). */
    Cycles
    dramStoreByteFast(Addr a, std::uint8_t v, Cycles now)
    {
        Cycles extra = dcacheAccess(a, true, now);
        dram_.writeByte(a, v);
        return extra;
    }

    /**
     * One I-cache block probe of fetch(), for a trace's first touch of
     * `blockAddr` (byte address, block aligned): the miss stall, 0 on
     * hit.
     */
    Cycles
    icacheBlockFetch(Addr blockAddr, Cycles now)
    {
        return icache_.access(blockAddr, false, now).hit
                   ? 0
                   : params_.dramCycles;
    }

    /** Fetch compression: `n` guaranteed re-hits on the last block. */
    void
    icacheRepeatHits(std::uint64_t n)
    {
        icache_.repeatReadHits(n);
    }

    /** Zero-latency SPM port used by the patch LMAU (Section III-C). */
    Word
    spmLoadWord(Addr a) const
    {
        const std::uint8_t *p = spmBytePtr(a);
        return static_cast<Word>(p[0]) |
               (static_cast<Word>(p[1]) << 8) |
               (static_cast<Word>(p[2]) << 16) |
               (static_cast<Word>(p[3]) << 24);
    }
    void
    spmStoreWord(Addr a, Word v)
    {
        std::uint8_t *p = spmBytePtr(a);
        p[0] = static_cast<std::uint8_t>(v & 0xff);
        p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
        p[2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
        p[3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
    }

    /** Direct (no timing) backing-store access for loaders/checkers. */
    SparseMemory &backing() { return dram_; }
    const SparseMemory &backing() const { return dram_; }

    /** Direct SPM image access for loaders/checkers. */
    Word spmPeek(Addr offset) const;
    void spmPoke(Addr offset, Word v);

    /** Reset caches (fresh program run); memory contents persist. */
    void flushCaches();

    /** Zero this memory's and both caches' counters (fresh run). */
    void resetStats();

    const MemParams &params() const { return params_; }
    Cache &icache() { return icache_; }
    Cache &dcache() { return dcache_; }
    StatGroup &stats() { return stats_; }

  private:
    Cycles
    dcacheAccess(Addr a, bool isWrite, Cycles now)
    {
        auto res = dcache_.access(a, isWrite, now);
        Cycles extra = 0;
        if (!res.hit)
            extra += params_.dramCycles;
        if (res.writeback)
            extra += params_.dramCycles;
        return extra;
    }

    /**
     * SPM byte pointer with range check (inline: this is every SPM
     * access's address path). A user-level range violation — e.g. an
     * injected CUST bit flip feeding an SPM pointer — must terminate
     * the run as a typed Fault like the unmapped-address paths, not
     * abort the process; the out-of-line slow path raises it.
     */
    std::uint8_t *
    spmBytePtr(Addr a)
    {
        // 64-bit offset: an address just below spmBase must fail the
        // bound, not wrap back into range.
        std::uint64_t off =
            static_cast<std::uint64_t>(a) - spmBase;
        if (off + 3 < spm_.size())
            return &spm_[static_cast<std::size_t>(off)];
        spmRangeError(a);
    }
    const std::uint8_t *
    spmBytePtr(Addr a) const
    {
        return const_cast<TileMemory *>(this)->spmBytePtr(a);
    }

    [[noreturn]] void spmRangeError(Addr a) const;

    MemParams params_;
    SparseMemory dram_;
    Cache icache_;
    Cache dcache_;
    std::vector<std::uint8_t> spm_;
    StatGroup stats_;
    Counter &spmReads_;  ///< cached handles; see StatGroup::counter
    Counter &spmWrites_;
};

} // namespace stitch::mem

#endif // STITCH_MEM_TILE_MEMORY_HH

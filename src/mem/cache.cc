#include "mem/cache.hh"

#include "common/logging.hh"
#include "obs/trace.hh"

namespace stitch::mem
{

Cache::Cache(const CacheParams &params)
    : params_(params),
      reads_(stats_.counter("reads")),
      writes_(stats_.counter("writes")),
      hits_(stats_.counter("hits")),
      misses_(stats_.counter("misses")),
      refills_(stats_.counter("refills")),
      writebacks_(stats_.counter("writebacks"))
{
    STITCH_ASSERT(params.blockBytes > 0 &&
                  (params.blockBytes & (params.blockBytes - 1)) == 0,
                  "block size must be a power of two");
    STITCH_ASSERT(params.assoc > 0);
    std::uint32_t blocks = params.sizeBytes / params.blockBytes;
    STITCH_ASSERT(blocks % params.assoc == 0,
                  "cache geometry does not divide evenly");
    numSets_ = blocks / params.assoc;
    STITCH_ASSERT((numSets_ & (numSets_ - 1)) == 0,
                  "set count must be a power of two");
    blockShift_ = 0;
    while ((1u << blockShift_) < params.blockBytes)
        ++blockShift_;
    tagShift_ = blockShift_;
    while ((1u << (tagShift_ - blockShift_)) < numSets_)
        ++tagShift_;
    lines_.resize(static_cast<std::size_t>(numSets_) * params.assoc);
}

CacheAccessResult
Cache::fill(Line *base, Addr tag, bool isWrite, Addr a, Cycles now)
{
    // Miss: fill an invalid way if one exists, else the LRU way
    // (write-allocate).
    ++misses_;
    Line *victim = nullptr;
    for (std::uint32_t way = 0; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (!victim || line.lastUse < victim->lastUse)
            victim = &line;
    }

    bool writeback = victim->valid && victim->dirty;
    if (victim->valid)
        ++refills_;
    if (writeback)
        ++writebacks_;
    if (obs::Tracer::enabled() && traceTile_ >= 0) {
        auto &tracer = obs::Tracer::instance();
        tracer.instant(obs::Tracer::pidTiles, traceTile_,
                       traceMiss_.c_str(), now, {{"addr", a}});
        if (writeback)
            tracer.instant(obs::Tracer::pidTiles, traceTile_,
                           traceWriteback_.c_str(), now,
                           {{"addr", a}});
    }
    victim->valid = true;
    victim->dirty = isWrite;
    victim->tag = tag;
    victim->lastUse = useClock_;
    return CacheAccessResult{false, writeback};
}

void
Cache::setTraceContext(int tile, const char *name)
{
    traceTile_ = tile;
    traceMiss_ = std::string(name) + " miss";
    traceWriteback_ = std::string(name) + " writeback";
}

bool
Cache::probe(Addr a) const
{
    std::uint32_t set = setOf(a);
    Addr tag = tagOf(a);
    const Line *base = &lines_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t way = 0; way < params_.assoc; ++way)
        if (base[way].valid && base[way].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line = Line{};
    useClock_ = 0;
}

} // namespace stitch::mem

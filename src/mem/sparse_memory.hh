/**
 * @file
 * Sparse byte-addressable backing store for the 512 MB DRAM space.
 */

#ifndef STITCH_MEM_SPARSE_MEMORY_HH
#define STITCH_MEM_SPARSE_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace stitch::mem
{

/**
 * Page-granular sparse memory. Pages are allocated zero-filled on
 * first touch, so a 512 MB space costs only what the program uses.
 */
class SparseMemory
{
  public:
    static constexpr Addr pageBytes = 4096;

    std::uint8_t readByte(Addr a) const;
    void writeByte(Addr a, std::uint8_t v);

    /** Little-endian word access; need not be aligned. */
    Word readWord(Addr a) const;
    void writeWord(Addr a, Word v);

    /** Bulk initialization used by the program loader. */
    void writeBlock(Addr base, const std::vector<std::uint8_t> &bytes);

    /** Number of pages currently materialized. */
    std::size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    Page &pageFor(Addr a);
    const Page *pageForRead(Addr a) const;

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace stitch::mem

#endif // STITCH_MEM_SPARSE_MEMORY_HH

/**
 * @file
 * Sparse byte-addressable backing store for the 512 MB DRAM space.
 */

#ifndef STITCH_MEM_SPARSE_MEMORY_HH
#define STITCH_MEM_SPARSE_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace stitch::mem
{

/**
 * Page-granular sparse memory. Pages are allocated zero-filled on
 * first touch, so a 512 MB space costs only what the program uses.
 */
class SparseMemory
{
  public:
    static constexpr Addr pageBytes = 4096;

    std::uint8_t
    readByte(Addr a) const
    {
        const Page *p = pageForRead(a);
        return p ? (*p)[a % pageBytes] : 0;
    }
    void
    writeByte(Addr a, std::uint8_t v)
    {
        pageFor(a)[a % pageBytes] = v;
    }

    /** Little-endian word access; need not be aligned. */
    Word
    readWord(Addr a) const
    {
        Addr off = a % pageBytes;
        if (off + 4 <= pageBytes) {
            const Page *p = pageForRead(a);
            if (!p)
                return 0;
            return static_cast<Word>((*p)[off]) |
                   (static_cast<Word>((*p)[off + 1]) << 8) |
                   (static_cast<Word>((*p)[off + 2]) << 16) |
                   (static_cast<Word>((*p)[off + 3]) << 24);
        }
        return readWordSlow(a);
    }
    void
    writeWord(Addr a, Word v)
    {
        Addr off = a % pageBytes;
        if (off + 4 <= pageBytes) {
            Page &p = pageFor(a);
            p[off] = static_cast<std::uint8_t>(v & 0xff);
            p[off + 1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
            p[off + 2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
            p[off + 3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
            return;
        }
        writeWordSlow(a, v);
    }

    /** Bulk initialization used by the program loader. */
    void writeBlock(Addr base, const std::vector<std::uint8_t> &bytes);

    /** Number of pages currently materialized. */
    std::size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<std::uint8_t, pageBytes>;

    /** Materializing lookup (writes); updates the one-entry cache. */
    Page &
    pageFor(Addr a)
    {
        Addr key = a / pageBytes;
        if (key == cachedKey_)
            return *cachedPage_;
        return pageForSlow(a);
    }
    /** Non-materializing lookup (reads); null if never written. */
    const Page *
    pageForRead(Addr a) const
    {
        Addr key = a / pageBytes;
        if (key == cachedKey_)
            return cachedPage_;
        return pageForReadSlow(a);
    }

    Page &pageForSlow(Addr a);
    const Page *pageForReadSlow(Addr a) const;
    Word readWordSlow(Addr a) const;    ///< page-straddling word
    void writeWordSlow(Addr a, Word v); ///< page-straddling word

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;

    // One-entry lookup cache: pages are never deallocated and live
    // behind stable unique_ptrs, so a raw pointer keyed by page
    // number short-circuits the hash lookup on the (overwhelmingly
    // common) same-page-as-last-time access. The sentinel key can
    // never occur: page numbers fit in Addr / pageBytes bits.
    mutable Addr cachedKey_ = ~Addr{0};
    mutable Page *cachedPage_ = nullptr;
};

} // namespace stitch::mem

#endif // STITCH_MEM_SPARSE_MEMORY_HH

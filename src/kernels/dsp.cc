/**
 * @file
 * Signal-processing kernels: FFT, IFFT (+update post-pass), FIR,
 * spectral filter, and the gesture app's update-feature kernel.
 *
 * All arrays live in the 4 KB scratchpad (paper Section III-C) and
 * are addressed through the s2..s5 base registers, which are declared
 * to the compiler as SPM pointers.
 */

#include "kernels/catalog.hh"

#include "kernels/golden.hh"
#include "mem/addrmap.hh"

namespace stitch::kernels
{

using namespace isa::reg;

namespace
{

constexpr auto spm = static_cast<std::int32_t>(mem::spmBase);

/** Emit the in-place 64-point radix-2 DIT FFT body.
 *  Expects s2=re, s3=im, s4=wre, s5=wim. Clobbers t0..t11, a3..a5. */
void
emitFft64(isa::Assembler &a)
{
    auto outer = a.newLabel();
    auto iloop = a.newLabel();
    auto jloop = a.newLabel();

    a.li(t8, 8);    // len*4
    a.li(t10, 128); // twiddle stride in bytes
    a.bind(outer);
    a.srli(t9, t8, 1); // half*4
    a.li(a4, 0);       // i*4
    a.bind(iloop);
    a.li(a5, 0); // j*4
    a.li(a3, 0); // twiddle byte offset
    a.bind(jloop);
    a.add(t0, a4, a5); // offset of element a
    a.add(t1, t0, t9); // offset of element b
    a.add(t2, s4, a3);
    a.lw(t3, t2, 0); // wr
    a.add(t2, s5, a3);
    a.lw(t4, t2, 0); // wi
    a.add(t2, s2, t1);
    a.lw(t5, t2, 0); // br
    a.add(t2, s3, t1);
    a.lw(t6, t2, 0); // bi
    a.mul(t7, t3, t5);
    a.mul(t11, t4, t6);
    a.sub(t7, t7, t11);
    a.srai(t7, t7, 14); // tr
    a.mul(t11, t3, t6);
    a.mul(t3, t4, t5);
    a.add(t11, t11, t3);
    a.srai(t11, t11, 14); // ti
    a.add(t2, s2, t0);
    a.lw(t4, t2, 0); // ar
    a.add(t2, s3, t0);
    a.lw(t5, t2, 0); // ai
    a.sub(t6, t4, t7);
    a.add(t2, s2, t1);
    a.sw(t6, t2, 0); // re[b] = ar - tr
    a.sub(t6, t5, t11);
    a.add(t2, s3, t1);
    a.sw(t6, t2, 0); // im[b] = ai - ti
    a.add(t6, t4, t7);
    a.add(t2, s2, t0);
    a.sw(t6, t2, 0); // re[a] = ar + tr
    a.add(t6, t5, t11);
    a.add(t2, s3, t0);
    a.sw(t6, t2, 0); // im[a] = ai + ti
    a.add(a3, a3, t10);
    a.addi(a5, a5, 4);
    a.blt(a5, t9, jloop);
    a.add(a4, a4, t8);
    a.addi(t2, zero, 256);
    a.blt(a4, t2, iloop);
    a.slli(t8, t8, 1);
    a.srli(t10, t10, 1);
    a.addi(t2, zero, 256);
    a.bge(t2, t8, outer);
}

compiler::KernelInput
buildFftLike(const std::string &name, const PipelineShape &shape,
             bool inverse)
{
    KernelBuilder kb(name, shape);
    auto &a = kb.a();

    a.li(s2, spm);       // re[64]
    a.li(s3, spm + 256); // im[64]
    a.li(s4, spm + 512); // wre[32]
    a.li(s5, spm + 640); // wim[32]

    kb.beginSample();
    emitFft64(a);

    if (inverse) {
        // Scale by 1/64 and accumulate Q14 magnitudes (the extra
        // update processing that makes IFFT the longer kernel,
        // Section V).
        auto post = a.newLabel();
        a.li(a4, 0);
        a.li(a0, 0);
        a.bind(post);
        a.add(t2, s2, a4);
        a.lw(t0, t2, 0);
        a.srai(t0, t0, 6);
        a.sw(t0, t2, 0);
        a.add(t2, s3, a4);
        a.lw(t1, t2, 0);
        a.srai(t1, t1, 6);
        a.sw(t1, t2, 0);
        a.mul(t3, t0, t0);
        a.mul(t4, t1, t1);
        a.add(t3, t3, t4);
        a.srai(t3, t3, 14);
        a.add(a0, a0, t3);
        a.addi(a4, a4, 4);
        a.addi(t2, zero, 256);
        a.blt(a4, t2, post);
        // Update passes (exponential smoothing of magnitudes, one per
        // sensor axis) — this extra processing is what makes the IFFT
        // kernels longer than the FFT kernels (Section V).
        auto passLoop = a.newLabel();
        auto post2 = a.newLabel();
        a.li(t8, 0);
        a.bind(passLoop);
        a.li(a4, 0);
        a.bind(post2);
        a.add(t2, s2, a4);
        a.lw(t0, t2, 0);
        a.add(t2, s3, a4);
        a.lw(t1, t2, 0);
        a.mul(t3, t0, t0);
        a.mul(t4, t1, t1);
        a.add(t3, t3, t4);
        a.srai(t3, t3, 14); // mag
        a.slli(t4, t0, 3);
        a.sub(t4, t4, t0); // re*7
        a.add(t4, t4, t3);
        a.srai(t4, t4, 3);
        a.add(t2, s2, a4);
        a.sw(t4, t2, 0);
        a.addi(a4, a4, 4);
        a.addi(t2, zero, 256);
        a.blt(a4, t2, post2);
        a.addi(t8, t8, 1);
        a.addi(t2, zero, 3);
        a.blt(t8, t2, passLoop);
        // Publish the accumulator for the output check.
        a.li(t2, spm + 768);
        a.sw(a0, t2, 0);
    } else {
        a.lw(a0, s2, 0);
    }
    kb.endSample(a0);

    auto re = golden::fftInputRe();
    auto im = golden::fftInputIm();
    kb.addDataWords(mem::spmBase, toWords(re));
    kb.addDataWords(mem::spmBase + 256, toWords(im));
    kb.addDataWords(mem::spmBase + 512,
                    toWords(fftTwiddlesRe(32)));
    kb.addDataWords(mem::spmBase + 640,
                    toWords(fftTwiddlesIm(32, inverse)));

    std::vector<compiler::OutputRegion> outputs = {
        {mem::spmBase, 512}};
    if (inverse)
        outputs.push_back({mem::spmBase + 768, 4});
    return kb.finish({s2, s3, s4, s5}, outputs);
}

} // namespace

compiler::KernelInput
buildFft(const PipelineShape &shape)
{
    return buildFftLike("fft", shape, false);
}

compiler::KernelInput
buildIfft(const PipelineShape &shape)
{
    return buildFftLike("ifft", shape, true);
}

compiler::KernelInput
buildFir(const PipelineShape &shape)
{
    KernelBuilder kb("fir", shape);
    auto &a = kb.a();

    a.li(s2, spm);        // x[256]
    a.li(s3, spm + 1024); // h[16]
    a.li(s4, spm + 1088); // y[240]

    kb.beginSample();
    auto nloop = a.newLabel();
    auto kloop = a.newLabel();
    a.li(a4, 0); // n*4
    a.bind(nloop);
    a.li(a0, 0); // acc
    a.li(a5, 0); // k*4
    a.add(t0, s2, a4);
    a.bind(kloop);
    a.add(t2, t0, a5);
    a.lw(t3, t2, 0); // x[n+k]
    a.add(t2, s3, a5);
    a.lw(t4, t2, 0); // h[k]
    a.mul(t5, t3, t4);
    a.add(a0, a0, t5);
    a.addi(a5, a5, 4);
    a.addi(t2, zero, 64);
    a.blt(a5, t2, kloop);
    a.srai(a0, a0, 14);
    a.add(t2, s4, a4);
    a.sw(a0, t2, 0);
    a.addi(a4, a4, 4);
    a.addi(t2, zero, 192); // 48 outputs: one sensor window
    a.blt(a4, t2, nloop);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::firInput()));
    kb.addDataWords(mem::spmBase + 1024, toWords(golden::firCoeffs()));
    return kb.finish({s2, s3, s4},
                     {{mem::spmBase + 1088, 192}});
}

compiler::KernelInput
buildFilter(const PipelineShape &shape)
{
    KernelBuilder kb("filter", shape);
    auto &a = kb.a();

    a.li(s2, spm);       // s[64], in place
    a.li(s3, spm + 256); // g[64]

    kb.beginSample();
    auto loop = a.newLabel();
    a.li(a4, 0);
    a.bind(loop);
    a.add(t2, s2, a4);
    a.lw(t0, t2, 0);
    a.add(t2, s3, a4);
    a.lw(t1, t2, 0);
    a.mul(t0, t0, t1);
    a.srai(t0, t0, 14);
    // Branchless clamp to +/-32767 (min then max).
    a.li(t3, 32767);
    a.sub(t4, t0, t3);
    a.srai(t5, t4, 31);
    a.and_(t4, t4, t5);
    a.add(t0, t3, t4);
    a.add(t4, t0, t3);
    a.srai(t5, t4, 31);
    a.and_(t4, t4, t5);
    a.sub(t0, t0, t4);
    a.add(t2, s2, a4);
    a.sw(t0, t2, 0);
    a.addi(a4, a4, 4);
    a.addi(t2, zero, 256);
    a.blt(a4, t2, loop);
    a.mov(a0, t0);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::filterInput()));
    kb.addDataWords(mem::spmBase + 256, toWords(golden::filterGains()));
    return kb.finish({s2, s3}, {{mem::spmBase, 256}});
}

compiler::KernelInput
buildUpdateFeature(const PipelineShape &shape)
{
    KernelBuilder kb("update", shape);
    auto &a = kb.a();

    a.li(s2, spm);       // feat[64], in place
    a.li(s3, spm + 256); // re[64]
    a.li(s4, spm + 512); // im[64]

    kb.beginSample();
    auto loop = a.newLabel();
    a.li(a4, 0);
    a.bind(loop);
    a.add(t2, s3, a4);
    a.lw(t0, t2, 0);
    a.add(t2, s4, a4);
    a.lw(t1, t2, 0);
    a.mul(t0, t0, t0);
    a.mul(t1, t1, t1);
    a.add(t0, t0, t1);
    a.srai(t0, t0, 14); // mag
    a.add(t2, s2, a4);
    a.lw(t3, t2, 0);
    a.slli(t4, t3, 3);
    a.sub(t4, t4, t3); // feat*7
    a.add(t4, t4, t0);
    a.srai(t4, t4, 3);
    a.add(t2, s2, a4);
    a.sw(t4, t2, 0);
    a.addi(a4, a4, 4);
    a.addi(t2, zero, 256);
    a.blt(a4, t2, loop);
    a.mov(a0, t4);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::updateFeatureInit()));
    kb.addDataWords(mem::spmBase + 256, toWords(golden::updateRe()));
    kb.addDataWords(mem::spmBase + 512, toWords(golden::updateIm()));
    return kb.finish({s2, s3, s4}, {{mem::spmBase, 256}});
}

} // namespace stitch::kernels

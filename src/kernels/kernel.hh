/**
 * @file
 * Infrastructure shared by the wearable kernels (the workload suite
 * standing in for the IoT benchmark kernels [38] of the paper).
 *
 * Kernels are SW32 programs built through the assembler eDSL. Each
 * can be built standalone (one sample, no messages — Fig. 11 studies)
 * or as a pipeline stage (N samples, RECV from upstream tiles and
 * SEND to downstream tiles per the application graphs of Fig. 9).
 * Stage wiring is table driven: tile ids live in a per-tile comm
 * table written by the application runner, so binaries are placement
 * independent.
 *
 * Register conventions:
 *  - s0/s1: pipeline loop bounds/counter (builder owned)
 *  - s2..s5: kernel base pointers (typically SPM arrays)
 *  - t0..t12, a0..a5: kernel body scratch
 *  - s6..s9 (r28..r31): reserved compiler scratch — never used here
 */

#ifndef STITCH_KERNELS_KERNEL_HH
#define STITCH_KERNELS_KERNEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/driver.hh"
#include "isa/assembler.hh"

namespace stitch::kernels
{

/** Pipeline-stage shape of a kernel build. */
struct PipelineShape
{
    int numIn = 0;   ///< upstream channels (recv per sample)
    int numOut = 0;  ///< downstream channels (send per sample)
    int samples = 1; ///< outer-loop iterations

    bool standalone() const { return numIn == 0 && numOut == 0; }
};

/** Comm-table addresses (private DRAM; within a 16-bit immediate). */
inline constexpr Addr commInTableAddr = 0x7000;  ///< word per channel
inline constexpr Addr commOutTableAddr = 0x7100; ///< word per channel

/** Pipeline sample count, read at stage start (poked by the
 *  application runner; 0 still runs one sample, which is what the
 *  compiler's standalone profiling and validation use). */
inline constexpr Addr commSamplesAddr = 0x7200;

/** Where kernel DRAM data lives (clear of the code window). */
inline constexpr Addr dramDataBase = 0x20000;

/**
 * Assembler wrapper that adds the pipeline sample loop around a
 * kernel body.
 *
 * Usage:
 * @code
 *   KernelBuilder kb("fir", shape);
 *   ... setup (pointer loads) using kb.a() ...
 *   kb.beginSample();
 *   ... body ...
 *   kb.endSample(resultReg);
 *   compiler::KernelInput input = kb.finish(spmBaseRegs, outputs);
 * @endcode
 */
class KernelBuilder
{
  public:
    KernelBuilder(const std::string &name, const PipelineShape &shape);

    /** The underlying assembler, for setup and body code. */
    isa::Assembler &a() { return asm_; }

    /** Start the per-sample region (binds the loop head, emits
     *  RECVs). Call exactly once. */
    void beginSample();

    /** End the per-sample region: emit SENDs of `resultReg`, the
     *  loop-back branch, and HALT. */
    void endSample(RegId resultReg);

    /** Attach an initialized data segment. */
    void addDataWords(Addr base, const std::vector<Word> &words);

    /** Produce the compiler input. */
    compiler::KernelInput
    finish(std::vector<RegId> spmBaseRegs,
           std::vector<compiler::OutputRegion> outputs);

  private:
    PipelineShape shape_;
    isa::Assembler asm_;
    isa::Label loop_;
    bool began_ = false;
    bool ended_ = false;
    std::vector<std::pair<Addr, std::vector<Word>>> data_;
};

/** Pack int32 values into data words. */
std::vector<Word> toWords(const std::vector<std::int32_t> &values);

/** Q14 fixed-point cosine/sine twiddle tables for a 2^k FFT. */
std::vector<std::int32_t> fftTwiddlesRe(int half);
std::vector<std::int32_t> fftTwiddlesIm(int half, bool inverse);

/** Bit-reverse permutation of 0..n-1 (n a power of two). */
std::vector<int> bitReverseOrder(int n);

} // namespace stitch::kernels

#endif // STITCH_KERNELS_KERNEL_HH

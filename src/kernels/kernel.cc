#include "kernels/kernel.hh"

#include <cmath>

#include "common/logging.hh"

namespace stitch::kernels
{

using namespace isa::reg;

KernelBuilder::KernelBuilder(const std::string &name,
                             const PipelineShape &shape)
    : shape_(shape), asm_(name)
{
    loop_ = asm_.newLabel();
}

void
KernelBuilder::beginSample()
{
    STITCH_ASSERT(!began_, "beginSample called twice");
    began_ = true;
    if (!shape_.standalone()) {
        // Pipeline stages read their sample count from the comm
        // table so one binary serves any run length.
        asm_.lw(s0, zero,
                static_cast<std::int32_t>(commSamplesAddr));
        asm_.li(s1, 0);
    } else if (shape_.samples > 1) {
        asm_.li(s0, shape_.samples);
        asm_.li(s1, 0);
    }
    asm_.bind(loop_);
    for (int i = 0; i < shape_.numIn; ++i) {
        asm_.lw(t12, zero,
                static_cast<std::int32_t>(commInTableAddr) + 4 * i);
        asm_.recv(t12, t12, 0);
    }
}

void
KernelBuilder::endSample(RegId resultReg)
{
    STITCH_ASSERT(began_ && !ended_, "endSample out of order");
    ended_ = true;
    for (int j = 0; j < shape_.numOut; ++j) {
        asm_.lw(t12, zero,
                static_cast<std::int32_t>(commOutTableAddr) + 4 * j);
        asm_.send(resultReg, t12, 0);
    }
    if (!shape_.standalone() || shape_.samples > 1) {
        asm_.addi(s1, s1, 1);
        asm_.blt(s1, s0, loop_);
    }
    asm_.halt();
}

void
KernelBuilder::addDataWords(Addr base, const std::vector<Word> &words)
{
    data_.emplace_back(base, words);
}

compiler::KernelInput
KernelBuilder::finish(std::vector<RegId> spmBaseRegs,
                      std::vector<compiler::OutputRegion> outputs)
{
    STITCH_ASSERT(ended_, "finish before endSample");
    compiler::KernelInput input;
    input.program = asm_.finish();
    for (auto &[base, words] : data_)
        input.program.addDataWords(base, words);
    input.spmBaseRegs = std::move(spmBaseRegs);
    input.outputs = std::move(outputs);
    return input;
}

std::vector<Word>
toWords(const std::vector<std::int32_t> &values)
{
    std::vector<Word> out;
    out.reserve(values.size());
    for (auto v : values)
        out.push_back(static_cast<Word>(v));
    return out;
}

std::vector<std::int32_t>
fftTwiddlesRe(int half)
{
    std::vector<std::int32_t> out;
    for (int k = 0; k < half; ++k) {
        double angle = -2.0 * M_PI * k / (2.0 * half);
        out.push_back(static_cast<std::int32_t>(
            std::lround(std::cos(angle) * 16384.0)));
    }
    return out;
}

std::vector<std::int32_t>
fftTwiddlesIm(int half, bool inverse)
{
    std::vector<std::int32_t> out;
    for (int k = 0; k < half; ++k) {
        double angle = -2.0 * M_PI * k / (2.0 * half);
        double s = std::sin(angle) * (inverse ? -1.0 : 1.0);
        out.push_back(static_cast<std::int32_t>(
            std::lround(s * 16384.0)));
    }
    return out;
}

std::vector<int>
bitReverseOrder(int n)
{
    int bits = 0;
    while ((1 << bits) < n)
        ++bits;
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        int r = 0;
        for (int b = 0; b < bits; ++b)
            if (i & (1 << b))
                r |= 1 << (bits - 1 - b);
        order[static_cast<std::size_t>(i)] = r;
    }
    return order;
}

} // namespace stitch::kernels

/**
 * @file
 * C++ reference models of every wearable kernel, mirroring the SW32
 * implementations instruction for instruction (same fixed-point
 * shifts, same branchless idioms). Unit tests run the assembly on the
 * simulator and compare final memory against these models; the
 * compiler driver separately checks every accelerated variant against
 * the software run.
 *
 * Input data is produced by deterministic generators (fixed seeds) so
 * the assembly builders and the tests observe identical inputs.
 */

#ifndef STITCH_KERNELS_GOLDEN_HH
#define STITCH_KERNELS_GOLDEN_HH

#include <cstdint>
#include <vector>

namespace stitch::kernels::golden
{

using I32 = std::int32_t;
using Vec = std::vector<I32>;

// ---- FFT / IFFT -----------------------------------------------------

/** 64-point inputs, already bit-reverse permuted. */
Vec fftInputRe();
Vec fftInputIm();

/** In-place 64-point radix-2 DIT FFT with Q14 twiddles. */
void fft64(Vec &re, Vec &im, bool inverse);

/** The IFFT kernel's extra pass: scale by 1/64 and accumulate
 *  Q14 magnitudes; returns the accumulator. */
I32 ifftPost(Vec &re, Vec &im);

// ---- FIR ------------------------------------------------------------

Vec firInput();   ///< 256 samples
Vec firCoeffs();  ///< 16 Q14 taps
Vec fir(const Vec &x, const Vec &h); ///< 240 outputs, >>14

// ---- Spectral filter -------------------------------------------------

Vec filterInput(); ///< 64 bins
Vec filterGains(); ///< 64 Q14 gains
void filter(Vec &s, const Vec &g); ///< in place, clamped to +/-32767

// ---- Update feature ---------------------------------------------------

Vec updateFeatureInit(); ///< 64 features
Vec updateRe();          ///< 64
Vec updateIm();          ///< 64
void updateFeature(Vec &feat, const Vec &re, const Vec &im);

// ---- 2D convolution ----------------------------------------------------

Vec conv2dInput();  ///< 16x16
Vec conv2dKernel(); ///< 3x3 Q12
Vec conv2d(const Vec &in, const Vec &k); ///< 14x14, >>12

/** Size-parameterized variants (APP2's layers differ in size). */
Vec conv2dInputN(int dim);
Vec conv2dN(const Vec &in, const Vec &k, int dim);

// ---- Sobel -------------------------------------------------------------

Vec sobelInput(); ///< 16x16
Vec sobel(const Vec &in); ///< 14x14 |gx|+|gy| (branchless abs)

// ---- 2x2 max pooling -----------------------------------------------------

Vec poolingInput(); ///< 16x16
Vec pooling(const Vec &in); ///< 8x8 (branchless max)

// ---- Matrix multiply -------------------------------------------------

Vec matmulA(); ///< 12x12
Vec matmulB(); ///< 12x12
Vec matmul(const Vec &a, const Vec &b); ///< 12x12, >>8

// ---- Fully connected + ReLU ----------------------------------------------

Vec fcInput();   ///< 32
Vec fcWeights(); ///< 16x32 Q12
Vec fcBias();    ///< 16
Vec fc(const Vec &x, const Vec &w, const Vec &b); ///< 16, >>12, ReLU

// ---- DTW -------------------------------------------------------------

Vec dtwSeqA(); ///< 32
Vec dtwSeqB(); ///< 32
I32 dtw(const Vec &a, const Vec &b); ///< branchless min / abs

// ---- AES-like table cipher ------------------------------------------------

Vec aesTable();    ///< 256-entry T-table
Vec aesRoundKeys(); ///< 44 words
Vec aesInput();    ///< 8 words (2 blocks)
Vec aesEncrypt(const Vec &blocks, const Vec &table, const Vec &rk);

// ---- Histogram --------------------------------------------------------

Vec histogramInput(); ///< 256 samples in [0, 1023]
Vec histogram(const Vec &x); ///< 64 bins

// ---- SVM ---------------------------------------------------------------

Vec svmInput();   ///< 64 features
Vec svmWeights(); ///< 8x64 Q12
Vec svmBias();    ///< 8
/** Returns the 8 scores; scores[i] = (w_i . x) >> 12 + b_i. */
Vec svmScores(const Vec &x, const Vec &w, const Vec &b);

// ---- A* (grid relaxation) ----------------------------------------------

Vec astarCosts(); ///< 16x16 positive costs
/** Distance map after 8 forward relaxation sweeps (branchy min). */
Vec astarDistances(const Vec &costs);

// ---- CRC32 -----------------------------------------------------------

Vec crcTable(); ///< 256 entries
Vec crcInput(); ///< 256 words
I32 crc32(const Vec &words, const Vec &table);

// ---- Viterbi (4-state trellis, branchless max) ---------------------------

namespace viterbi_detail
{
inline constexpr int states = 4;
inline constexpr int steps = 32;
} // namespace viterbi_detail

Vec viterbiTrans(); ///< 4x4 transition scores
Vec viterbiEmit();  ///< 4x4 emission scores
Vec viterbiObs();   ///< 32 observations in [0,3]
/** Final path metrics after 32 steps. */
Vec viterbi(const Vec &trans, const Vec &emit, const Vec &obs);

// ---- K-means assignment (branchless argmin) -----------------------------

Vec kmeansPoints();    ///< 64 2-D points (x,y interleaved)
Vec kmeansCentroids(); ///< 4 2-D centroids
/** Nearest-centroid index per point. */
Vec kmeansAssign(const Vec &pts, const Vec &cents);

// ---- IIR biquad cascade ---------------------------------------------------

Vec iirInput();  ///< 128 samples
Vec iirCoeffs(); ///< 2 stages x 5 Q14 coefficients
/** Output of the 2-stage cascade, >>14 per stage. */
Vec iir(const Vec &x, const Vec &c);

} // namespace stitch::kernels::golden

#endif // STITCH_KERNELS_GOLDEN_HH

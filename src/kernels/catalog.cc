#include "kernels/catalog.hh"

#include "common/logging.hh"

namespace stitch::kernels
{

const std::vector<KernelFactory> &
kernelCatalog()
{
    static const std::vector<KernelFactory> catalog = {
        {"fft", buildFft},
        {"ifft", buildIfft},
        {"fir", buildFir},
        {"filter", buildFilter},
        {"update", buildUpdateFeature},
        {"conv2d", buildConv2d},
        {"conv2d10", buildConv2dSmall},
        {"sobel", buildSobel},
        {"pooling", buildPooling},
        {"matmul", buildMatmul},
        {"fc", buildFc},
        {"dtw", buildDtw},
        {"aes", buildAes},
        {"histogram", buildHistogram},
        {"svm", buildSvm},
        {"astar", buildAstar},
        {"crc", buildCrc},
        {"viterbi", buildViterbi},
        {"kmeans", buildKmeans},
        {"iir", buildIir},
    };
    return catalog;
}

const KernelFactory &
kernelByName(const std::string &name)
{
    for (const auto &factory : kernelCatalog())
        if (factory.name == name)
            return factory;
    fatal("unknown kernel: ", name);
}

} // namespace stitch::kernels

/**
 * @file
 * Vision / neural-network kernels: 2-D convolution, Sobel gradients,
 * 2x2 max pooling, matrix multiply, and a fully-connected layer —
 * the building blocks of the CNN image-recognition application (APP2,
 * paper Figure 9).
 */

#include "kernels/catalog.hh"

#include "common/table.hh"
#include "kernels/golden.hh"
#include "mem/addrmap.hh"

namespace stitch::kernels
{

using namespace isa::reg;

namespace
{
constexpr auto spm = static_cast<std::int32_t>(mem::spmBase);
} // namespace

compiler::KernelInput
buildConv2dSized(const PipelineShape &shape, int dim)
{
    const int outDim = dim - 2;
    const std::int32_t inBytes = dim * dim * 4;
    const std::int32_t outBytes = outDim * outDim * 4;

    KernelBuilder kb(strformat("conv2d%d", dim), shape);
    auto &a = kb.a();

    a.li(s2, spm);                 // in[dim][dim]
    a.li(s3, spm + inBytes);       // k[3][3]
    a.li(s4, spm + inBytes + 36);  // out[outDim][outDim]
    a.li(s5, dim * 4);             // row stride in bytes

    kb.beginSample();
    auto rloop = a.newLabel();
    auto cloop = a.newLabel();
    a.li(a4, 0);       // row
    a.mov(a1, s2);     // &in[r][0]
    a.mov(a2, s4);     // &out[r][0]
    a.bind(rloop);
    a.li(a5, 0); // col
    a.bind(cloop);
    a.slli(t1, a5, 2);
    a.add(t0, a1, t1); // &in[r][c]
    a.li(a0, 0);
    for (int kr = 0; kr < 3; ++kr) {
        for (int kc = 0; kc < 3; ++kc) {
            a.lw(t3, t0, kr * dim * 4 + kc * 4);
            a.lw(t4, s3, (kr * 3 + kc) * 4);
            a.mul(t5, t3, t4);
            a.add(a0, a0, t5);
        }
    }
    a.srai(a0, a0, 12);
    a.add(t1, a2, t1);
    a.sw(a0, t1, 0);
    a.addi(a5, a5, 1);
    a.addi(t2, zero, outDim);
    a.blt(a5, t2, cloop);
    a.add(a1, a1, s5);          // next input row
    a.addi(a2, a2, outDim * 4); // next output row
    a.addi(a4, a4, 1);
    a.addi(t2, zero, outDim);
    a.blt(a4, t2, rloop);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::conv2dInputN(dim)));
    kb.addDataWords(mem::spmBase + static_cast<Addr>(inBytes),
                    toWords(golden::conv2dKernel()));
    return kb.finish(
        {s2, s3, s4},
        {{mem::spmBase + static_cast<Addr>(inBytes) + 36,
          static_cast<Addr>(outBytes)}});
}

compiler::KernelInput
buildConv2d(const PipelineShape &shape)
{
    return buildConv2dSized(shape, 16);
}

compiler::KernelInput
buildConv2dSmall(const PipelineShape &shape)
{
    return buildConv2dSized(shape, 10);
}

compiler::KernelInput
buildSobel(const PipelineShape &shape)
{
    KernelBuilder kb("sobel", shape);
    auto &a = kb.a();

    a.li(s2, spm);        // in[16][16]
    a.li(s3, spm + 1024); // out[14][14]

    kb.beginSample();
    auto rloop = a.newLabel();
    auto cloop = a.newLabel();
    a.li(a4, 0);
    a.bind(rloop);
    a.li(a5, 0);
    a.bind(cloop);
    a.slli(t0, a4, 6);
    a.slli(t1, a5, 2);
    a.add(t0, t0, t1);
    a.add(t0, s2, t0); // &in[r][c]

    // gx
    a.lw(t3, t0, 8);
    a.lw(t4, t0, 0);
    a.sub(t3, t3, t4);
    a.lw(t5, t0, 72);
    a.lw(t6, t0, 64);
    a.sub(t5, t5, t6);
    a.slli(t5, t5, 1);
    a.add(t3, t3, t5);
    a.lw(t5, t0, 136);
    a.lw(t6, t0, 128);
    a.sub(t5, t5, t6);
    a.add(t3, t3, t5);
    // gy
    a.lw(t5, t0, 128);
    a.lw(t6, t0, 0);
    a.sub(t5, t5, t6);
    a.lw(t7, t0, 132);
    a.lw(t1, t0, 4);
    a.sub(t7, t7, t1);
    a.slli(t7, t7, 1);
    a.add(t5, t5, t7);
    a.lw(t7, t0, 136);
    a.lw(t1, t0, 8);
    a.sub(t7, t7, t1);
    a.add(t5, t5, t7);
    // |gx| + |gy| (branchless)
    a.srai(t4, t3, 31);
    a.xor_(t3, t3, t4);
    a.sub(t3, t3, t4);
    a.srai(t4, t5, 31);
    a.xor_(t5, t5, t4);
    a.sub(t5, t5, t4);
    a.add(a0, t3, t5);

    a.slli(t1, a4, 6);
    a.slli(t2, a4, 3);
    a.sub(t1, t1, t2);
    a.slli(t2, a5, 2);
    a.add(t1, t1, t2);
    a.add(t1, s3, t1);
    a.sw(a0, t1, 0);
    a.addi(a5, a5, 1);
    a.addi(t2, zero, 14);
    a.blt(a5, t2, cloop);
    a.addi(a4, a4, 1);
    a.addi(t2, zero, 14);
    a.blt(a4, t2, rloop);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::sobelInput()));
    return kb.finish({s2, s3}, {{mem::spmBase + 1024, 784}});
}

compiler::KernelInput
buildPooling(const PipelineShape &shape)
{
    KernelBuilder kb("pooling", shape);
    auto &a = kb.a();

    a.li(s2, spm);        // in[16][16]
    a.li(s3, spm + 1024); // out[8][8]

    kb.beginSample();
    auto rloop = a.newLabel();
    auto cloop = a.newLabel();
    a.li(a4, 0);
    a.bind(rloop);
    a.li(a5, 0);
    a.bind(cloop);
    a.slli(t0, a4, 7); // 2r * 64 bytes
    a.slli(t1, a5, 3); // 2c * 4 bytes
    a.add(t0, t0, t1);
    a.add(t0, s2, t0);
    a.lw(t3, t0, 0);
    for (int off : {4, 64, 68}) {
        a.lw(t4, t0, off);
        a.sub(t5, t3, t4); // branchless max
        a.srai(t6, t5, 31);
        a.and_(t5, t5, t6);
        a.sub(t3, t3, t5);
    }
    a.slli(t1, a4, 5);
    a.slli(t2, a5, 2);
    a.add(t1, t1, t2);
    a.add(t1, s3, t1);
    a.sw(t3, t1, 0);
    a.addi(a5, a5, 1);
    a.addi(t2, zero, 8);
    a.blt(a5, t2, cloop);
    a.addi(a4, a4, 1);
    a.addi(t2, zero, 8);
    a.blt(a4, t2, rloop);
    a.mov(a0, t3);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::poolingInput()));
    return kb.finish({s2, s3}, {{mem::spmBase + 1024, 256}});
}

compiler::KernelInput
buildMatmul(const PipelineShape &shape)
{
    KernelBuilder kb("matmul", shape);
    auto &a = kb.a();

    a.li(s2, spm);        // a[12][12]
    a.li(s3, spm + 576);  // b[12][12]
    a.li(s4, spm + 1152); // c[12][12]

    kb.beginSample();
    auto iloop = a.newLabel();
    auto jloop = a.newLabel();
    auto kloop = a.newLabel();
    a.li(a4, 0); // i
    a.bind(iloop);
    a.li(a5, 0); // j
    a.bind(jloop);
    a.li(a0, 0);       // acc
    a.slli(t0, a4, 5); // i*48 = i*32 + i*16
    a.slli(t1, a4, 4);
    a.add(t0, t0, t1);
    a.add(t0, s2, t0); // &a[i][0]
    a.slli(t1, a5, 2);
    a.add(t1, s3, t1); // &b[0][j]
    a.li(t8, 0);       // k
    a.bind(kloop);
    a.slli(t2, t8, 2);
    a.add(t2, t0, t2);
    a.lw(t3, t2, 0); // a[i][k]
    a.lw(t4, t1, 0); // b[k][j]
    a.mul(t5, t3, t4);
    a.add(a0, a0, t5);
    a.addi(t1, t1, 48);
    a.addi(t8, t8, 1);
    a.addi(t2, zero, 12);
    a.blt(t8, t2, kloop);
    a.srai(a0, a0, 8);
    a.slli(t1, a4, 5);
    a.slli(t2, a4, 4);
    a.add(t1, t1, t2);
    a.slli(t2, a5, 2);
    a.add(t1, t1, t2);
    a.add(t1, s4, t1);
    a.sw(a0, t1, 0);
    a.addi(a5, a5, 1);
    a.addi(t2, zero, 12);
    a.blt(a5, t2, jloop);
    a.addi(a4, a4, 1);
    a.addi(t2, zero, 12);
    a.blt(a4, t2, iloop);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::matmulA()));
    kb.addDataWords(mem::spmBase + 576, toWords(golden::matmulB()));
    return kb.finish({s2, s3, s4}, {{mem::spmBase + 1152, 576}});
}

compiler::KernelInput
buildFc(const PipelineShape &shape)
{
    KernelBuilder kb("fc", shape);
    auto &a = kb.a();

    a.li(s2, spm);        // x[32]
    a.li(s3, spm + 128);  // w[16][32]
    a.li(s4, spm + 2176); // bias[16]
    a.li(s5, spm + 2240); // y[16]

    kb.beginSample();
    auto oloop = a.newLabel();
    auto iloop = a.newLabel();
    a.li(a4, 0); // output index
    a.bind(oloop);
    a.li(a0, 0);
    a.slli(t0, a4, 7); // o * 32 * 4 bytes
    a.add(t0, s3, t0); // &w[o][0]
    a.li(a5, 0);
    a.bind(iloop);
    a.slli(t1, a5, 2);
    a.add(t2, t0, t1);
    a.lw(t3, t2, 0); // w[o][i]
    a.add(t2, s2, t1);
    a.lw(t4, t2, 0); // x[i]
    a.mul(t5, t3, t4);
    a.add(a0, a0, t5);
    a.addi(a5, a5, 1);
    a.addi(t2, zero, 32);
    a.blt(a5, t2, iloop);
    a.srai(a0, a0, 12);
    a.slli(t1, a4, 2);
    a.add(t2, s4, t1);
    a.lw(t3, t2, 0);
    a.add(a0, a0, t3);
    // Branchless ReLU: v & ~(v >> 31).
    a.srai(t3, a0, 31);
    a.xori(t3, t3, -1);
    a.and_(a0, a0, t3);
    a.add(t2, s5, t1);
    a.sw(a0, t2, 0);
    a.addi(a4, a4, 1);
    a.addi(t2, zero, 16);
    a.blt(a4, t2, oloop);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::fcInput()));
    kb.addDataWords(mem::spmBase + 128, toWords(golden::fcWeights()));
    kb.addDataWords(mem::spmBase + 2176, toWords(golden::fcBias()));
    return kb.finish({s2, s3, s4, s5}, {{mem::spmBase + 2240, 64}});
}

} // namespace stitch::kernels

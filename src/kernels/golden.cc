#include "kernels/golden.hh"

#include <cmath>
#include <limits>

#include "common/rng.hh"
#include "kernels/kernel.hh"

namespace stitch::kernels::golden
{

namespace
{

Vec
randomVec(std::uint64_t seed, std::size_t n, I32 lo, I32 hi)
{
    Rng rng(seed);
    Vec out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(static_cast<I32>(rng.range(lo, hi)));
    return out;
}

/** Branchless min as implemented by the kernels. */
I32
bmin(I32 x, I32 y)
{
    I32 d = x - y;
    return y + (d & (d >> 31));
}

/** Branchless max. */
I32
bmax(I32 x, I32 y)
{
    I32 d = x - y;
    return x - (d & (d >> 31));
}

/** Branchless abs. */
I32
babs(I32 x)
{
    I32 m = x >> 31;
    return (x ^ m) - m;
}

} // namespace

// ---- FFT ------------------------------------------------------------

namespace
{

/**
 * Synthetic accelerometer/gyro window standing in for the paper's
 * 128 Hz sensor traces: low-frequency gesture sinusoids plus jitter,
 * kept within +/-2^9 so the final FFT stage's Q14 twiddle product
 * stays inside 32 bits.
 */
Vec
gestureWindow(std::uint64_t seed, double f1, double f2)
{
    Rng rng(seed);
    Vec raw(64);
    for (int i = 0; i < 64; ++i) {
        double t = static_cast<double>(i);
        double v = 280.0 * std::sin(2.0 * M_PI * f1 * t / 64.0) +
                   140.0 * std::sin(2.0 * M_PI * f2 * t / 64.0 + 0.7);
        v += static_cast<double>(rng.range(-60, 60));
        raw[static_cast<std::size_t>(i)] =
            static_cast<I32>(std::lround(v));
    }
    return raw;
}

} // namespace

Vec
fftInputRe()
{
    // Bit-reverse permuted for the DIT schedule.
    Vec raw = gestureWindow(101, 3.0, 7.0);
    auto order = bitReverseOrder(64);
    Vec out(64);
    for (int i = 0; i < 64; ++i)
        out[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
            raw[static_cast<std::size_t>(i)];
    return out;
}

Vec
fftInputIm()
{
    Vec raw = gestureWindow(102, 2.0, 9.0);
    auto order = bitReverseOrder(64);
    Vec out(64);
    for (int i = 0; i < 64; ++i)
        out[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] =
            raw[static_cast<std::size_t>(i)];
    return out;
}

void
fft64(Vec &re, Vec &im, bool inverse)
{
    Vec wre32 = fftTwiddlesRe(32);
    Vec wim32 = fftTwiddlesIm(32, inverse);
    for (int len = 2; len <= 64; len <<= 1) {
        int half = len / 2;
        int step = 32 / half;
        for (int i = 0; i < 64; i += len) {
            for (int j = 0; j < half; ++j) {
                std::size_t a = static_cast<std::size_t>(i + j);
                std::size_t b = a + static_cast<std::size_t>(half);
                I32 wr = wre32[static_cast<std::size_t>(j * step)];
                I32 wi = wim32[static_cast<std::size_t>(j * step)];
                I32 br = re[b], bi = im[b];
                I32 tr = (wr * br - wi * bi) >> 14;
                I32 ti = (wr * bi + wi * br) >> 14;
                I32 ar = re[a], ai = im[a];
                re[b] = ar - tr;
                im[b] = ai - ti;
                re[a] = ar + tr;
                im[a] = ai + ti;
            }
        }
    }
}

I32
ifftPost(Vec &re, Vec &im)
{
    I32 acc = 0;
    for (std::size_t i = 0; i < 64; ++i) {
        re[i] >>= 6;
        im[i] >>= 6;
        acc += (re[i] * re[i] + im[i] * im[i]) >> 14;
    }
    // The IFFT kernels "incorporate additional processing, such as
    // another Update feature processing" (Section V): exponential
    // smoothing of the time-domain magnitudes, once per sensor axis.
    for (int pass = 0; pass < 3; ++pass) {
        for (std::size_t i = 0; i < 64; ++i) {
            I32 mag = (re[i] * re[i] + im[i] * im[i]) >> 14;
            I32 f = re[i];
            f = ((f * 7) + mag) >> 3;
            re[i] = f;
        }
    }
    return acc;
}

// ---- FIR ------------------------------------------------------------

Vec
firInput()
{
    return randomVec(201, 256, -8192, 8191);
}

Vec
firCoeffs()
{
    return randomVec(202, 16, -4096, 4095);
}

Vec
fir(const Vec &x, const Vec &h)
{
    Vec y(240);
    for (std::size_t n = 0; n < 240; ++n) {
        I32 acc = 0;
        for (std::size_t k = 0; k < 16; ++k)
            acc += h[k] * x[n + k];
        y[n] = acc >> 14;
    }
    return y;
}

// ---- Filter -----------------------------------------------------------

Vec
filterInput()
{
    return randomVec(301, 64, -30000, 30000);
}

Vec
filterGains()
{
    return randomVec(302, 64, 0, 20000);
}

void
filter(Vec &s, const Vec &g)
{
    for (std::size_t i = 0; i < 64; ++i) {
        I32 v = (s[i] * g[i]) >> 14;
        v = bmin(v, 32767);
        v = bmax(v, -32767);
        s[i] = v;
    }
}

// ---- Update feature -----------------------------------------------------

Vec
updateFeatureInit()
{
    return randomVec(401, 64, 0, 4096);
}

Vec
updateRe()
{
    return randomVec(402, 64, -4096, 4095);
}

Vec
updateIm()
{
    return randomVec(403, 64, -4096, 4095);
}

void
updateFeature(Vec &feat, const Vec &re, const Vec &im)
{
    for (std::size_t i = 0; i < 64; ++i) {
        I32 mag = (re[i] * re[i] + im[i] * im[i]) >> 14;
        feat[i] = (feat[i] * 7 + mag) >> 3;
    }
}

// ---- conv2d ------------------------------------------------------------

Vec
conv2dInput()
{
    return conv2dInputN(16);
}

Vec
conv2dKernel()
{
    return randomVec(502, 9, -2048, 2047);
}

Vec
conv2d(const Vec &in, const Vec &k)
{
    return conv2dN(in, k, 16);
}

// ---- Sobel ------------------------------------------------------------

Vec
sobelInput()
{
    return randomVec(601, 256, 0, 255);
}

Vec
sobel(const Vec &in)
{
    Vec out(196);
    auto at = [&](std::size_t r, std::size_t c) {
        return in[r * 16 + c];
    };
    for (std::size_t r = 0; r < 14; ++r) {
        for (std::size_t c = 0; c < 14; ++c) {
            I32 gx = at(r, c + 2) - at(r, c) +
                     ((at(r + 1, c + 2) - at(r + 1, c)) << 1) +
                     at(r + 2, c + 2) - at(r + 2, c);
            I32 gy = at(r + 2, c) - at(r, c) +
                     ((at(r + 2, c + 1) - at(r, c + 1)) << 1) +
                     at(r + 2, c + 2) - at(r, c + 2);
            out[r * 14 + c] = babs(gx) + babs(gy);
        }
    }
    return out;
}

// ---- Pooling -----------------------------------------------------------

Vec
poolingInput()
{
    return randomVec(701, 256, -10000, 10000);
}

Vec
pooling(const Vec &in)
{
    Vec out(64);
    for (std::size_t r = 0; r < 8; ++r) {
        for (std::size_t c = 0; c < 8; ++c) {
            I32 m = bmax(in[(2 * r) * 16 + 2 * c],
                         in[(2 * r) * 16 + 2 * c + 1]);
            m = bmax(m, in[(2 * r + 1) * 16 + 2 * c]);
            m = bmax(m, in[(2 * r + 1) * 16 + 2 * c + 1]);
            out[r * 8 + c] = m;
        }
    }
    return out;
}

// ---- Matmul -------------------------------------------------------------

Vec
matmulA()
{
    return randomVec(801, 144, -1024, 1023);
}

Vec
matmulB()
{
    return randomVec(802, 144, -1024, 1023);
}

Vec
matmul(const Vec &a, const Vec &b)
{
    Vec c(144);
    for (std::size_t i = 0; i < 12; ++i)
        for (std::size_t j = 0; j < 12; ++j) {
            I32 acc = 0;
            for (std::size_t k = 0; k < 12; ++k)
                acc += a[i * 12 + k] * b[k * 12 + j];
            c[i * 12 + j] = acc >> 8;
        }
    return c;
}

// ---- FC -----------------------------------------------------------------

Vec
fcInput()
{
    return randomVec(901, 32, -2048, 2047);
}

Vec
fcWeights()
{
    return randomVec(902, 512, -2048, 2047);
}

Vec
fcBias()
{
    return randomVec(903, 16, -1000, 1000);
}

Vec
fc(const Vec &x, const Vec &w, const Vec &b)
{
    Vec y(16);
    for (std::size_t o = 0; o < 16; ++o) {
        I32 acc = 0;
        for (std::size_t i = 0; i < 32; ++i)
            acc += w[o * 32 + i] * x[i];
        I32 v = (acc >> 12) + b[o];
        y[o] = v & ~(v >> 31); // branchless ReLU
    }
    return y;
}

// ---- DTW ----------------------------------------------------------------

Vec
dtwSeqA()
{
    return randomVec(1001, 32, -5000, 5000);
}

Vec
dtwSeqB()
{
    return randomVec(1002, 32, -5000, 5000);
}

I32
dtw(const Vec &a, const Vec &b)
{
    constexpr I32 inf = 1 << 28;
    Vec prev(33, inf), cur(33, inf);
    prev[0] = 0;
    for (std::size_t i = 1; i <= 32; ++i) {
        cur[0] = inf;
        for (std::size_t j = 1; j <= 32; ++j) {
            I32 cost = babs(a[i - 1] - b[j - 1]);
            I32 best = bmin(bmin(prev[j], cur[j - 1]), prev[j - 1]);
            cur[j] = cost + best;
        }
        std::swap(prev, cur);
    }
    return prev[32];
}

// ---- AES-like ------------------------------------------------------------

Vec
aesTable()
{
    return randomVec(1101, 256,
                     std::numeric_limits<I32>::min() / 2,
                     std::numeric_limits<I32>::max() / 2);
}

Vec
aesRoundKeys()
{
    return randomVec(1102, 44,
                     std::numeric_limits<I32>::min() / 2,
                     std::numeric_limits<I32>::max() / 2);
}

Vec
aesInput()
{
    return randomVec(1103, 8,
                     std::numeric_limits<I32>::min() / 2,
                     std::numeric_limits<I32>::max() / 2);
}

namespace
{

I32
aesTerm(const Vec &table, I32 word, int byteShift, int rot)
{
    auto u = static_cast<std::uint32_t>(word);
    std::uint32_t idx = (u >> byteShift) & 0xffu;
    auto t = static_cast<std::uint32_t>(table[idx]);
    if (rot > 0)
        t = (t >> rot) | (t << (32 - rot));
    return static_cast<I32>(t);
}

} // namespace

Vec
aesEncrypt(const Vec &blocks, const Vec &table, const Vec &rk)
{
    Vec out = blocks;
    for (std::size_t block = 0; block < 2; ++block) {
        I32 s0 = out[block * 4 + 0] ^ rk[0];
        I32 s1 = out[block * 4 + 1] ^ rk[1];
        I32 s2 = out[block * 4 + 2] ^ rk[2];
        I32 s3 = out[block * 4 + 3] ^ rk[3];
        for (int round = 1; round <= 10; ++round) {
            I32 n0 = aesTerm(table, s0, 0, 0) ^
                     aesTerm(table, s1, 8, 8) ^
                     aesTerm(table, s2, 16, 16) ^
                     aesTerm(table, s3, 24, 24) ^
                     rk[static_cast<std::size_t>(round * 4 + 0)];
            I32 n1 = aesTerm(table, s1, 0, 0) ^
                     aesTerm(table, s2, 8, 8) ^
                     aesTerm(table, s3, 16, 16) ^
                     aesTerm(table, s0, 24, 24) ^
                     rk[static_cast<std::size_t>(round * 4 + 1)];
            I32 n2 = aesTerm(table, s2, 0, 0) ^
                     aesTerm(table, s3, 8, 8) ^
                     aesTerm(table, s0, 16, 16) ^
                     aesTerm(table, s1, 24, 24) ^
                     rk[static_cast<std::size_t>(round * 4 + 2)];
            I32 n3 = aesTerm(table, s3, 0, 0) ^
                     aesTerm(table, s0, 8, 8) ^
                     aesTerm(table, s1, 16, 16) ^
                     aesTerm(table, s2, 24, 24) ^
                     rk[static_cast<std::size_t>(round * 4 + 3)];
            s0 = n0;
            s1 = n1;
            s2 = n2;
            s3 = n3;
        }
        out[block * 4 + 0] = s0;
        out[block * 4 + 1] = s1;
        out[block * 4 + 2] = s2;
        out[block * 4 + 3] = s3;
    }
    return out;
}

// ---- Histogram --------------------------------------------------------

Vec
histogramInput()
{
    return randomVec(1201, 256, 0, 1023);
}

Vec
histogram(const Vec &x)
{
    Vec bins(64, 0);
    for (I32 v : x)
        ++bins[static_cast<std::size_t>(v >> 4)];
    return bins;
}

Vec
conv2dInputN(int dim)
{
    return randomVec(501 + static_cast<std::uint64_t>(dim),
                     static_cast<std::size_t>(dim * dim), 0, 255);
}

Vec
conv2dN(const Vec &in, const Vec &k, int dim)
{
    int outDim = dim - 2;
    Vec out(static_cast<std::size_t>(outDim * outDim));
    for (int r = 0; r < outDim; ++r) {
        for (int c = 0; c < outDim; ++c) {
            I32 acc = 0;
            for (int kr = 0; kr < 3; ++kr)
                for (int kc = 0; kc < 3; ++kc)
                    acc += in[static_cast<std::size_t>(
                               (r + kr) * dim + c + kc)] *
                           k[static_cast<std::size_t>(kr * 3 + kc)];
            out[static_cast<std::size_t>(r * outDim + c)] = acc >> 12;
        }
    }
    return out;
}

// ---- SVM ---------------------------------------------------------------

Vec
svmInput()
{
    return randomVec(1301, 64, -2048, 2047);
}

Vec
svmWeights()
{
    return randomVec(1302, 512, -2048, 2047);
}

Vec
svmBias()
{
    return randomVec(1303, 8, -10000, 10000);
}

Vec
svmScores(const Vec &x, const Vec &w, const Vec &b)
{
    Vec scores(8);
    for (std::size_t c = 0; c < 8; ++c) {
        I32 acc = 0;
        for (std::size_t i = 0; i < 64; ++i)
            acc += w[c * 64 + i] * x[i];
        scores[c] = (acc >> 12) + b[c];
    }
    return scores;
}

// ---- A* ------------------------------------------------------------------

Vec
astarCosts()
{
    return randomVec(1401, 256, 1, 64);
}

Vec
astarDistances(const Vec &costs)
{
    constexpr I32 inf = 1 << 28;
    Vec dist(256, inf);
    dist[0] = 0;
    for (int sweep = 0; sweep < 8; ++sweep) {
        for (std::size_t r = 0; r < 16; ++r) {
            for (std::size_t c = 0; c < 16; ++c) {
                std::size_t i = r * 16 + c;
                if (c > 0) {
                    I32 nd = dist[i - 1] + costs[i];
                    if (nd < dist[i])
                        dist[i] = nd;
                }
                if (r > 0) {
                    I32 nd = dist[i - 16] + costs[i];
                    if (nd < dist[i])
                        dist[i] = nd;
                }
            }
        }
    }
    return dist;
}

// ---- CRC32 -----------------------------------------------------------

Vec
crcTable()
{
    Vec table(256);
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        table[i] = static_cast<I32>(c);
    }
    return table;
}

Vec
crcInput()
{
    return randomVec(1501, 256,
                     std::numeric_limits<I32>::min() / 2,
                     std::numeric_limits<I32>::max() / 2);
}

I32
crc32(const Vec &words, const Vec &table)
{
    auto crc = static_cast<std::uint32_t>(-1);
    for (I32 w : words) {
        auto u = static_cast<std::uint32_t>(w);
        for (int b = 0; b < 4; ++b) {
            std::uint32_t idx = (crc ^ (u >> (8 * b))) & 0xffu;
            crc = (crc >> 8) ^ static_cast<std::uint32_t>(table[idx]);
        }
    }
    return static_cast<I32>(crc);
}

// ---- Viterbi --------------------------------------------------------

Vec
viterbiTrans()
{
    return randomVec(1601, 16, -500, 500);
}

Vec
viterbiEmit()
{
    return randomVec(1602, 16, -500, 500);
}

Vec
viterbiObs()
{
    return randomVec(1603, 32, 0, 3);
}

Vec
viterbi(const Vec &trans, const Vec &emit, const Vec &obs)
{
    Vec metric(4, 0), next(4, 0);
    for (std::size_t t = 0; t < 32; ++t) {
        for (std::size_t s = 0; s < 4; ++s) {
            I32 best = metric[0] + trans[0 * 4 + s];
            for (std::size_t p = 1; p < 4; ++p)
                best = bmax(best, metric[p] + trans[p * 4 + s]);
            next[s] =
                best +
                emit[s * 4 + static_cast<std::size_t>(obs[t])];
        }
        metric = next;
    }
    return metric;
}

// ---- K-means ---------------------------------------------------------

Vec
kmeansPoints()
{
    return randomVec(1701, 128, -1000, 1000);
}

Vec
kmeansCentroids()
{
    return randomVec(1702, 8, -1000, 1000);
}

Vec
kmeansAssign(const Vec &pts, const Vec &cents)
{
    Vec assign(64);
    for (std::size_t i = 0; i < 64; ++i) {
        I32 px = pts[2 * i], py = pts[2 * i + 1];
        I32 bestD = 0, bestJ = 0;
        for (std::size_t j = 0; j < 4; ++j) {
            I32 dx = px - cents[2 * j];
            I32 dy = py - cents[2 * j + 1];
            I32 d = dx * dx + dy * dy;
            if (j == 0) {
                bestD = d;
                continue;
            }
            // Branchless select, mirroring the assembly: take the
            // new distance/index when d < bestD.
            I32 cmp = d < bestD ? 1 : 0; // slt
            I32 m = -cmp;                // sub r0, cmp
            bestD = bestD + ((d - bestD) & m);
            bestJ = bestJ +
                    ((static_cast<I32>(j) - bestJ) & m);
        }
        assign[i] = bestJ;
    }
    return assign;
}

// ---- IIR ------------------------------------------------------------

Vec
iirInput()
{
    return randomVec(1801, 128, -8192, 8191);
}

Vec
iirCoeffs()
{
    return randomVec(1802, 10, -8192, 8191);
}

Vec
iir(const Vec &x, const Vec &c)
{
    Vec out(128);
    Vec in = x;
    for (std::size_t stage = 0; stage < 2; ++stage) {
        const I32 *k = &c[stage * 5];
        I32 x1 = 0, x2 = 0, y1 = 0, y2 = 0;
        for (std::size_t n = 0; n < 128; ++n) {
            I32 acc = k[0] * in[n] + k[1] * x1 + k[2] * x2 +
                      k[3] * y1 + k[4] * y2;
            I32 y = acc >> 14;
            x2 = x1;
            x1 = in[n];
            y2 = y1;
            y1 = y;
            out[n] = y;
        }
        in = out;
    }
    return out;
}

} // namespace stitch::kernels::golden

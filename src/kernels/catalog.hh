/**
 * @file
 * The wearable kernel catalog: every kernel of the suite with its
 * builder, addressable by name (used by Fig. 11 and the application
 * graphs of Fig. 9).
 */

#ifndef STITCH_KERNELS_CATALOG_HH
#define STITCH_KERNELS_CATALOG_HH

#include <functional>
#include <string>
#include <vector>

#include "kernels/kernel.hh"

namespace stitch::kernels
{

// DSP kernels (dsp.cc)
compiler::KernelInput buildFft(const PipelineShape &shape);
compiler::KernelInput buildIfft(const PipelineShape &shape);
compiler::KernelInput buildFir(const PipelineShape &shape);
compiler::KernelInput buildFilter(const PipelineShape &shape);
compiler::KernelInput buildUpdateFeature(const PipelineShape &shape);

// Vision kernels (vision.cc)
compiler::KernelInput buildConv2d(const PipelineShape &shape);
compiler::KernelInput buildConv2dSized(const PipelineShape &shape, int dim);
compiler::KernelInput buildConv2dSmall(const PipelineShape &shape);
compiler::KernelInput buildSobel(const PipelineShape &shape);
compiler::KernelInput buildPooling(const PipelineShape &shape);
compiler::KernelInput buildMatmul(const PipelineShape &shape);
compiler::KernelInput buildFc(const PipelineShape &shape);

// Extended kernels (extra.cc)
compiler::KernelInput buildViterbi(const PipelineShape &shape);
compiler::KernelInput buildKmeans(const PipelineShape &shape);
compiler::KernelInput buildIir(const PipelineShape &shape);

// Misc kernels (misc.cc)
compiler::KernelInput buildDtw(const PipelineShape &shape);
compiler::KernelInput buildAes(const PipelineShape &shape);
compiler::KernelInput buildHistogram(const PipelineShape &shape);
compiler::KernelInput buildSvm(const PipelineShape &shape);
compiler::KernelInput buildAstar(const PipelineShape &shape);
compiler::KernelInput buildCrc(const PipelineShape &shape);

/** A named kernel builder. */
struct KernelFactory
{
    std::string name;
    std::function<compiler::KernelInput(const PipelineShape &)> build;
};

/** All kernels, in the order used by the Fig. 11 study. */
const std::vector<KernelFactory> &kernelCatalog();

/** Lookup by name; fatal if unknown. */
const KernelFactory &kernelByName(const std::string &name);

} // namespace stitch::kernels

#endif // STITCH_KERNELS_CATALOG_HH

/**
 * @file
 * Extended suite kernels: Viterbi trellis decoding (activity
 * recognition back-ends), k-means assignment (unsupervised context
 * clustering) and an IIR biquad cascade (sensor conditioning) — all
 * common wearable workloads beyond the paper's headline set.
 */

#include "kernels/catalog.hh"

#include "kernels/golden.hh"
#include "mem/addrmap.hh"

namespace stitch::kernels
{

using namespace isa::reg;

namespace
{
constexpr auto spm = static_cast<std::int32_t>(mem::spmBase);
} // namespace

compiler::KernelInput
buildViterbi(const PipelineShape &shape)
{
    KernelBuilder kb("viterbi", shape);
    auto &a = kb.a();

    a.li(s2, spm);       // trans[4][4]
    a.li(s3, spm + 64);  // emit[4][4]
    a.li(s4, spm + 128); // obs[32]
    a.li(s5, spm + 256); // metric[4] then next[4] at +272

    kb.beginSample();
    // Reset the metrics each sample.
    a.sw(zero, s5, 0);
    a.sw(zero, s5, 4);
    a.sw(zero, s5, 8);
    a.sw(zero, s5, 12);

    auto tloop = a.newLabel();
    auto sloop = a.newLabel();
    auto ploop = a.newLabel();
    a.li(a4, 0); // t
    a.bind(tloop);
    a.slli(t0, a4, 2);
    a.add(t0, s4, t0);
    a.lw(a3, t0, 0); // obs[t]
    a.slli(a3, a3, 2);

    a.li(a5, 0); // state s
    a.bind(sloop);
    a.li(t8, 0);              // prev p
    a.li(a0, -(1 << 28));     // best
    a.bind(ploop);
    // metric[p]: s5 + 4p
    a.slli(t1, t8, 2);
    a.add(t2, s5, t1);
    a.lw(t3, t2, 0); // metric[p]
    // trans[p][s]: s2 + 16p + 4s
    a.slli(t4, t8, 4);
    a.slli(t5, a5, 2);
    a.add(t4, t4, t5);
    a.add(t4, s2, t4);
    a.lw(t5, t4, 0);
    a.add(t3, t3, t5); // candidate
    // branchless max into a0
    a.sub(t6, a0, t3);
    a.srai(t7, t6, 31);
    a.and_(t6, t6, t7);
    a.sub(a0, a0, t6);
    a.addi(t8, t8, 1);
    a.addi(t2, zero, 4);
    a.blt(t8, t2, ploop);
    // + emit[s][obs]
    a.slli(t4, a5, 4);
    a.add(t4, t4, a3);
    a.add(t4, s3, t4);
    a.lw(t5, t4, 0);
    a.add(a0, a0, t5);
    // next[s] at s5 + 16 + 4s
    a.slli(t4, a5, 2);
    a.add(t4, s5, t4);
    a.sw(a0, t4, 16);
    a.addi(a5, a5, 1);
    a.addi(t2, zero, 4);
    a.blt(a5, t2, sloop);
    // metric = next
    for (int s = 0; s < 4; ++s) {
        a.lw(t1, s5, 16 + 4 * s);
        a.sw(t1, s5, 4 * s);
    }
    a.addi(a4, a4, 1);
    a.addi(t2, zero, 32);
    a.blt(a4, t2, tloop);
    a.lw(a0, s5, 0);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::viterbiTrans()));
    kb.addDataWords(mem::spmBase + 64, toWords(golden::viterbiEmit()));
    kb.addDataWords(mem::spmBase + 128, toWords(golden::viterbiObs()));
    return kb.finish({s2, s3, s4, s5}, {{mem::spmBase + 256, 16}});
}

compiler::KernelInput
buildKmeans(const PipelineShape &shape)
{
    KernelBuilder kb("kmeans", shape);
    auto &a = kb.a();

    a.li(s2, spm);       // points[64][2]
    a.li(s3, spm + 512); // centroids[4][2]
    a.li(s4, spm + 544); // assignment[64]

    kb.beginSample();
    auto iloop = a.newLabel();
    auto jloop = a.newLabel();
    a.li(a4, 0); // point index
    a.bind(iloop);
    a.slli(t0, a4, 3);
    a.add(t0, s2, t0);
    a.lw(a2, t0, 0); // px
    a.lw(a3, t0, 4); // py

    a.li(a5, 0);  // centroid j
    a.li(a0, 0);  // best index
    a.li(a1, 0);  // best distance (set on j == 0)
    a.bind(jloop);
    a.slli(t1, a5, 3);
    a.add(t1, s3, t1);
    a.lw(t2, t1, 0); // cx
    a.lw(t3, t1, 4); // cy
    a.sub(t2, a2, t2);
    a.sub(t3, a3, t3);
    a.mul(t2, t2, t2);
    a.mul(t3, t3, t3);
    a.add(t2, t2, t3); // d
    // j == 0: adopt unconditionally (bestD starts undefined).
    auto notFirst = a.newLabel();
    a.bne(a5, zero, notFirst);
    a.mov(a1, t2);
    a.bind(notFirst);
    // Branchless select when d < bestD.
    a.slt(t4, t2, a1);   // cmp
    a.sub(t4, zero, t4); // mask
    a.sub(t5, t2, a1);
    a.and_(t5, t5, t4);
    a.add(a1, a1, t5); // bestD
    a.sub(t5, a5, a0);
    a.and_(t5, t5, t4);
    a.add(a0, a0, t5); // bestJ
    a.addi(a5, a5, 1);
    a.addi(t1, zero, 4);
    a.blt(a5, t1, jloop);

    a.slli(t1, a4, 2);
    a.add(t1, s4, t1);
    a.sw(a0, t1, 0);
    a.addi(a4, a4, 1);
    a.addi(t1, zero, 64);
    a.blt(a4, t1, iloop);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::kmeansPoints()));
    kb.addDataWords(mem::spmBase + 512,
                    toWords(golden::kmeansCentroids()));
    return kb.finish({s2, s3, s4}, {{mem::spmBase + 544, 256}});
}

compiler::KernelInput
buildIir(const PipelineShape &shape)
{
    KernelBuilder kb("iir", shape);
    auto &a = kb.a();

    a.li(s2, spm);        // x[128] (overwritten stage by stage)
    a.li(s3, spm + 512);  // coeffs[2][5]
    a.li(s4, spm + 1024); // y[128]

    kb.beginSample();
    auto stageLoop = a.newLabel();
    auto nloop = a.newLabel();
    a.li(t9, 0); // stage
    a.mov(a1, s2); // stage input pointer
    a.bind(stageLoop);
    // load the 5 coefficients for this stage into a-regs/temps
    a.slli(t0, t9, 2);
    a.add(t0, t0, t9); // stage * 5
    a.slli(t0, t0, 2); // * 4 bytes
    a.add(t0, s3, t0);
    a.lw(a2, t0, 0);  // b0
    a.lw(a3, t0, 4);  // b1
    a.lw(a4, t0, 8);  // b2
    a.lw(a5, t0, 12); // a1
    a.lw(t8, t0, 16); // a2
    a.li(t4, 0); // x1
    a.li(t5, 0); // x2
    a.li(t6, 0); // y1
    a.li(t7, 0); // y2
    a.li(t0, 0); // n
    a.bind(nloop);
    a.slli(t1, t0, 2);
    a.add(t2, a1, t1);
    a.lw(t3, t2, 0); // x[n]
    a.mul(a0, a2, t3);
    a.mul(t2, a3, t4);
    a.add(a0, a0, t2);
    a.mul(t2, a4, t5);
    a.add(a0, a0, t2);
    a.mul(t2, a5, t6);
    a.add(a0, a0, t2);
    a.mul(t2, t8, t7);
    a.add(a0, a0, t2);
    a.srai(a0, a0, 14); // y
    a.mov(t5, t4);
    a.mov(t4, t3);
    a.mov(t7, t6);
    a.mov(t6, a0);
    a.add(t2, s4, t1);
    a.sw(a0, t2, 0);
    a.addi(t0, t0, 1);
    a.addi(t2, zero, 128);
    a.blt(t0, t2, nloop);
    a.mov(a1, s4); // next stage reads this stage's output
    a.addi(t9, t9, 1);
    a.addi(t2, zero, 2);
    a.blt(t9, t2, stageLoop);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::iirInput()));
    kb.addDataWords(mem::spmBase + 512, toWords(golden::iirCoeffs()));
    return kb.finish({s2, s3, s4}, {{mem::spmBase + 1024, 512}});
}

} // namespace stitch::kernels

/**
 * @file
 * The remaining suite kernels: DTW (transportation context
 * detection), an AES-like table cipher (encryption stages of APP3/4),
 * histogram, linear SVM scoring, A*-style grid relaxation, and CRC32.
 */

#include "kernels/catalog.hh"

#include "kernels/golden.hh"
#include "mem/addrmap.hh"

namespace stitch::kernels
{

using namespace isa::reg;

namespace
{
constexpr auto spm = static_cast<std::int32_t>(mem::spmBase);
} // namespace

compiler::KernelInput
buildDtw(const PipelineShape &shape)
{
    KernelBuilder kb("dtw", shape);
    auto &a = kb.a();

    a.li(s2, spm);       // a[32]
    a.li(s3, spm + 128); // b[32]
    a.li(s4, spm + 256); // prev[33]
    a.li(s5, spm + 388); // cur[33]

    kb.beginSample();
    auto iloop = a.newLabel();
    auto jloop = a.newLabel();
    // Rebuild the DP boundary each sample: prev[0] = 0, rest = inf.
    auto initLoop = a.newLabel();
    a.li(t0, 1 << 28);
    a.li(a5, 0);
    a.bind(initLoop);
    a.add(t1, s4, a5);
    a.sw(t0, t1, 0);
    a.add(t1, s5, a5);
    a.sw(t0, t1, 0);
    a.addi(a5, a5, 4);
    a.addi(t1, zero, 132);
    a.blt(a5, t1, initLoop);
    a.sw(zero, s4, 0); // prev[0] = 0

    a.li(a4, 0); // i
    a.bind(iloop);
    a.li(t0, 1 << 28);
    a.sw(t0, s5, 0); // cur[0] = inf
    a.slli(t1, a4, 2);
    a.add(t1, s2, t1);
    a.lw(a0, t1, 0); // a[i]
    a.li(a5, 1);     // j
    a.bind(jloop);
    a.slli(t1, a5, 2);
    a.addi(t2, t1, -4);
    a.add(t2, s3, t2);
    a.lw(t2, t2, 0); // b[j-1]
    a.sub(t2, a0, t2);
    a.srai(t3, t2, 31); // branchless abs -> cost
    a.xor_(t2, t2, t3);
    a.sub(t2, t2, t3);
    a.add(t4, s4, t1);
    a.lw(t5, t4, 0);  // prev[j]
    a.lw(t6, t4, -4); // prev[j-1]
    a.add(t4, s5, t1);
    a.lw(t7, t4, -4); // cur[j-1]
    // best = bmin(bmin(prev[j], cur[j-1]), prev[j-1])
    a.sub(t8, t5, t7);
    a.srai(t9, t8, 31);
    a.and_(t8, t8, t9);
    a.add(t5, t7, t8);
    a.sub(t8, t5, t6);
    a.srai(t9, t8, 31);
    a.and_(t8, t8, t9);
    a.add(t5, t6, t8);
    a.add(t5, t5, t2);
    a.add(t4, s5, t1);
    a.sw(t5, t4, 0); // cur[j]
    a.addi(a5, a5, 1);
    a.addi(t1, zero, 33);
    a.blt(a5, t1, jloop);
    // swap prev/cur row pointers
    a.mov(t1, s4);
    a.mov(s4, s5);
    a.mov(s5, t1);
    a.addi(a4, a4, 1);
    a.addi(t1, zero, 32);
    a.blt(a4, t1, iloop);
    a.lw(a0, s4, 128); // prev[32] = the DTW distance
    a.li(t2, spm + 520);
    a.sw(a0, t2, 0);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::dtwSeqA()));
    kb.addDataWords(mem::spmBase + 128, toWords(golden::dtwSeqB()));
    return kb.finish({s2, s3, s4, s5}, {{mem::spmBase + 520, 4}});
}

compiler::KernelInput
buildAes(const PipelineShape &shape)
{
    KernelBuilder kb("aes", shape);
    auto &a = kb.a();

    a.li(s2, spm);        // T-table[256]
    a.li(s3, spm + 1024); // round keys[44]
    a.li(s4, spm + 1204); // blocks[8] (2 blocks), in place

    // Emit one T-table term: acc ^= rot(T[(state >> bs) & 0xff]).
    auto term = [&](RegId acc, RegId state, int byteShift, int rot,
                    bool first) {
        if (byteShift > 0) {
            a.srli(t0, state, byteShift);
            a.andi(t0, t0, 0xff);
        } else {
            a.andi(t0, state, 0xff);
        }
        a.slli(t0, t0, 2);
        a.add(t0, s2, t0);
        a.lw(t0, t0, 0);
        if (rot > 0) {
            a.srli(t1, t0, rot);
            a.slli(t0, t0, 32 - rot);
            a.or_(t0, t0, t1);
        }
        if (first)
            a.mov(acc, t0);
        else
            a.xor_(acc, acc, t0);
    };

    kb.beginSample();
    auto blockLoop = a.newLabel();
    auto roundLoop = a.newLabel();
    a.li(a4, 0); // block index
    a.bind(blockLoop);
    a.slli(t0, a4, 4);
    a.add(t11, s4, t0); // &blocks[4*b] (kept across the rounds)
    a.lw(a0, t11, 0);
    a.lw(a1, t11, 4);
    a.lw(a2, t11, 8);
    a.lw(a3, t11, 12);
    for (int j = 0; j < 4; ++j) {
        a.lw(t1, s3, 4 * j);
        a.xor_(j == 0 ? a0 : j == 1 ? a1 : j == 2 ? a2 : a3,
               j == 0 ? a0 : j == 1 ? a1 : j == 2 ? a2 : a3, t1);
    }
    a.li(t8, 1);        // round counter
    a.addi(t9, s3, 16); // round-key pointer
    a.bind(roundLoop);
    const RegId state[4] = {a0, a1, a2, a3};
    const RegId next[4] = {t4, t5, t6, t7};
    for (int j = 0; j < 4; ++j) {
        term(next[j], state[j % 4], 0, 0, true);
        term(next[j], state[(j + 1) % 4], 8, 8, false);
        term(next[j], state[(j + 2) % 4], 16, 16, false);
        term(next[j], state[(j + 3) % 4], 24, 24, false);
        a.lw(t1, t9, 4 * j);
        a.xor_(next[j], next[j], t1);
    }
    for (int j = 0; j < 4; ++j)
        a.mov(state[j], next[j]);
    a.addi(t9, t9, 16);
    a.addi(t8, t8, 1);
    a.addi(t1, zero, 11);
    a.blt(t8, t1, roundLoop);
    a.sw(a0, t11, 0);
    a.sw(a1, t11, 4);
    a.sw(a2, t11, 8);
    a.sw(a3, t11, 12);
    a.addi(a4, a4, 1);
    a.addi(t1, zero, 2);
    a.blt(a4, t1, blockLoop);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::aesTable()));
    kb.addDataWords(mem::spmBase + 1024,
                    toWords(golden::aesRoundKeys()));
    kb.addDataWords(mem::spmBase + 1204, toWords(golden::aesInput()));
    return kb.finish({s2, s3, s4}, {{mem::spmBase + 1204, 32}});
}

compiler::KernelInput
buildHistogram(const PipelineShape &shape)
{
    KernelBuilder kb("histogram", shape);
    auto &a = kb.a();

    a.li(s2, spm); // bins[64]
    a.li(s3, static_cast<std::int32_t>(dramDataBase)); // input[1024]

    kb.beginSample();
    // Clear the bins each sample so counts stay exact.
    auto clearLoop = a.newLabel();
    a.li(a5, 0);
    a.bind(clearLoop);
    a.add(t0, s2, a5);
    a.sw(zero, t0, 0);
    a.addi(a5, a5, 4);
    a.addi(t0, zero, 256);
    a.blt(a5, t0, clearLoop);

    auto loop = a.newLabel();
    a.li(a4, 0);
    a.bind(loop);
    a.slli(t0, a4, 2);
    a.add(t0, s3, t0);
    a.lw(t1, t0, 0); // cached (non-SPM) stream load
    a.srli(t1, t1, 4);
    a.slli(t1, t1, 2);
    a.add(t1, s2, t1);
    a.lw(t2, t1, 0);
    a.addi(t2, t2, 1);
    a.sw(t2, t1, 0);
    a.addi(a4, a4, 1);
    a.addi(t0, zero, 256);
    a.blt(a4, t0, loop);
    a.mov(a0, t2);
    kb.endSample(a0);

    kb.addDataWords(dramDataBase, toWords(golden::histogramInput()));
    return kb.finish({s2}, {{mem::spmBase, 256}});
}

compiler::KernelInput
buildSvm(const PipelineShape &shape)
{
    KernelBuilder kb("svm", shape);
    auto &a = kb.a();

    a.li(s2, spm);        // x[64]
    a.li(s3, spm + 256);  // w[8][64]
    a.li(s4, spm + 2304); // bias[8]
    a.li(s5, spm + 2336); // scores[8]

    kb.beginSample();
    auto cloop = a.newLabel();
    auto iloop = a.newLabel();
    a.li(a4, 0); // class
    a.bind(cloop);
    a.li(a0, 0);
    a.slli(t0, a4, 8); // class * 64 * 4
    a.add(t0, s3, t0);
    a.li(a5, 0);
    a.bind(iloop);
    a.slli(t1, a5, 2);
    a.add(t2, t0, t1);
    a.lw(t3, t2, 0);
    a.add(t2, s2, t1);
    a.lw(t4, t2, 0);
    a.mul(t5, t3, t4);
    a.add(a0, a0, t5);
    a.addi(a5, a5, 1);
    a.addi(t2, zero, 64);
    a.blt(a5, t2, iloop);
    a.srai(a0, a0, 12);
    a.slli(t1, a4, 2);
    a.add(t2, s4, t1);
    a.lw(t3, t2, 0);
    a.add(a0, a0, t3);
    a.add(t2, s5, t1);
    a.sw(a0, t2, 0);
    a.addi(a4, a4, 1);
    a.addi(t2, zero, 8);
    a.blt(a4, t2, cloop);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::svmInput()));
    kb.addDataWords(mem::spmBase + 256, toWords(golden::svmWeights()));
    kb.addDataWords(mem::spmBase + 2304, toWords(golden::svmBias()));
    return kb.finish({s2, s3, s4, s5}, {{mem::spmBase + 2336, 32}});
}

compiler::KernelInput
buildAstar(const PipelineShape &shape)
{
    KernelBuilder kb("astar", shape);
    auto &a = kb.a();

    a.li(s2, spm);        // costs[16][16]
    a.li(s3, spm + 1024); // dist[16][16]

    kb.beginSample();
    // Reset the distance map each sample.
    auto initLoop = a.newLabel();
    a.li(t0, 1 << 28);
    a.li(a5, 0);
    a.bind(initLoop);
    a.add(t1, s3, a5);
    a.sw(t0, t1, 0);
    a.addi(a5, a5, 4);
    a.addi(t1, zero, 1024);
    a.blt(a5, t1, initLoop);
    a.sw(zero, s3, 0); // dist[0] = 0

    auto sweepLoop = a.newLabel();
    auto cellLoop = a.newLabel();
    a.li(t8, 0); // sweep
    a.bind(sweepLoop);
    a.li(a4, 1); // cell index (cell 0 is the source)
    a.bind(cellLoop);
    auto skipL = a.newLabel();
    auto skipU = a.newLabel();
    a.slli(t1, a4, 2);
    a.add(t2, s3, t1);
    a.lw(t3, t2, 0); // dist[i]
    a.andi(t0, a4, 15);
    a.beq(t0, zero, skipL); // no left neighbour in column 0
    a.lw(t5, t2, -4);
    a.add(t6, s2, t1);
    a.lw(t7, t6, 0);
    a.add(t5, t5, t7);
    a.bge(t5, t3, skipL);
    a.mov(t3, t5);
    a.bind(skipL);
    a.addi(t4, zero, 16);
    a.blt(a4, t4, skipU); // no upper neighbour in row 0
    a.lw(t5, t2, -64);
    a.add(t6, s2, t1);
    a.lw(t7, t6, 0);
    a.add(t5, t5, t7);
    a.bge(t5, t3, skipU);
    a.mov(t3, t5);
    a.bind(skipU);
    a.sw(t3, t2, 0);
    a.addi(a4, a4, 1);
    a.addi(t4, zero, 256);
    a.blt(a4, t4, cellLoop);
    a.addi(t8, t8, 1);
    a.addi(t4, zero, 8);
    a.blt(t8, t4, sweepLoop);
    a.lw(a0, s3, 1020); // dist[255]
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::astarCosts()));
    return kb.finish({s2, s3}, {{mem::spmBase + 1024, 1024}});
}

compiler::KernelInput
buildCrc(const PipelineShape &shape)
{
    KernelBuilder kb("crc", shape);
    auto &a = kb.a();

    a.li(s2, spm);        // table[256]
    a.li(s3, spm + 1024); // input[256]

    kb.beginSample();
    auto loop = a.newLabel();
    a.li(a0, -1); // crc
    a.li(a4, 0);
    a.bind(loop);
    a.slli(t0, a4, 2);
    a.add(t0, s3, t0);
    a.lw(t1, t0, 0); // input word
    for (int b = 0; b < 4; ++b) {
        if (b > 0)
            a.srli(t2, t1, 8 * b);
        else
            a.mov(t2, t1);
        a.xor_(t2, a0, t2);
        a.andi(t2, t2, 0xff);
        a.slli(t2, t2, 2);
        a.add(t2, s2, t2);
        a.lw(t2, t2, 0);
        a.srli(a0, a0, 8);
        a.xor_(a0, a0, t2);
    }
    a.addi(a4, a4, 1);
    a.addi(t0, zero, 256);
    a.blt(a4, t0, loop);
    a.li(t2, spm + 2048);
    a.sw(a0, t2, 0);
    kb.endSample(a0);

    kb.addDataWords(mem::spmBase, toWords(golden::crcTable()));
    kb.addDataWords(mem::spmBase + 1024, toWords(golden::crcInput()));
    return kb.finish({s2, s3}, {{mem::spmBase + 2048, 4}});
}

} // namespace stitch::kernels

#include "telem/histogram.hh"

#include <cmath>

#include "common/logging.hh"
#include "fault/fault.hh"

namespace stitch::telem
{

std::uint64_t
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q <= 0.0)
        return min();
    if (q >= 1.0)
        return max_; // exact: tracked outside the buckets

    // Rank of the order statistic we are after, 1-based.
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (int i = 0; i < numBuckets; ++i) {
        seen += counts_[static_cast<std::size_t>(i)];
        if (seen >= rank) {
            // Highest value equivalent to the samples in this bucket,
            // clamped to the exact extrema so a quantile never lies
            // outside [min, max].
            std::uint64_t v = bucketHi(i) - 1;
            if (v > max_)
                v = max_;
            if (v < min_)
                v = min_;
            return v;
        }
    }
    return max_;
}

Histogram
Histogram::diffFrom(const Histogram &earlier) const
{
    Histogram delta;
    for (int i = 0; i < numBuckets; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        delta.counts_[idx] = counts_[idx] - earlier.counts_[idx];
        if (delta.counts_[idx] == 0)
            continue;
        const std::uint64_t lo = bucketLo(i);
        const std::uint64_t hi = bucketHi(i) - 1;
        if (lo < delta.min_)
            delta.min_ = lo;
        if (hi > delta.max_)
            delta.max_ = hi;
    }
    delta.count_ = count_ - earlier.count_;
    delta.sum_ = sum_ - earlier.sum_;
    // The cumulative extrema are exact for the *latest* snapshot;
    // when they fall inside the delta's bucket span they are tighter
    // than the bucket bounds, so keep them.
    if (delta.count_ > 0) {
        if (min_ >= delta.min_ && min_ <= delta.max_)
            delta.min_ = min_;
        if (max_ <= delta.max_ && max_ >= delta.min_)
            delta.max_ = max_;
    }
    return delta;
}

obs::Json
Histogram::toJson() const
{
    auto ms = [](std::uint64_t micros) {
        return static_cast<double>(micros) / 1000.0;
    };
    obs::Json doc = obs::Json::object();
    doc.set("count", count_);
    doc.set("min_ms", ms(min()));
    doc.set("mean_ms", mean() / 1000.0);
    doc.set("p50_ms", ms(quantile(0.50)));
    doc.set("p90_ms", ms(quantile(0.90)));
    doc.set("p99_ms", ms(quantile(0.99)));
    doc.set("max_ms", ms(max_));
    return doc;
}

obs::Json
Histogram::toBucketsJson() const
{
    obs::Json doc = obs::Json::object();
    doc.set("count", count_);
    doc.set("sum", sum_);
    doc.set("min", min());
    doc.set("max", max_);
    obs::Json buckets = obs::Json::array();
    for (int i = 0; i < numBuckets; ++i) {
        const std::uint64_t c = counts_[static_cast<std::size_t>(i)];
        if (c == 0)
            continue;
        obs::Json pair = obs::Json::array();
        pair.push(static_cast<std::uint64_t>(i));
        pair.push(c);
        buckets.push(std::move(pair));
    }
    doc.set("buckets", std::move(buckets));
    return doc;
}

Histogram
Histogram::fromBucketsJson(const obs::Json &doc)
{
    if (!doc.isObject() || !doc.has("buckets") ||
        !doc.get("buckets").isArray())
        throw fault::ConfigError(
            "histogram document lacks a buckets array");
    Histogram h;
    const obs::Json &buckets = doc.get("buckets");
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const obs::Json &pair = buckets.at(i);
        if (!pair.isArray() || pair.size() != 2)
            throw fault::ConfigError(
                "histogram bucket entry is not an [index, count] "
                "pair");
        const std::uint64_t index = pair.at(0).asUint();
        if (index >= static_cast<std::uint64_t>(numBuckets))
            throw fault::ConfigError(detail::formatMessage(
                "histogram bucket index ", index,
                " outside the shared geometry (", numBuckets,
                " buckets)"));
        h.counts_[static_cast<std::size_t>(index)] +=
            pair.at(1).asUint();
    }
    h.count_ = doc.has("count") ? doc.get("count").asUint() : 0;
    h.sum_ = doc.has("sum") ? doc.get("sum").asUint() : 0;
    if (h.count_ > 0) {
        h.min_ = doc.has("min") ? doc.get("min").asUint() : 0;
        h.max_ = doc.has("max") ? doc.get("max").asUint() : 0;
    }
    return h;
}

int
Histogram::nonEmptyBuckets() const
{
    int n = 0;
    for (int i = 0; i < numBuckets; ++i)
        n += counts_[static_cast<std::size_t>(i)] != 0;
    return n;
}

} // namespace stitch::telem

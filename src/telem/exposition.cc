#include "telem/exposition.hh"

#include <cstdio>

namespace stitch::telem
{

namespace
{

/** Format a double the way Prometheus text wants it: plain decimal,
 *  no exponent for the magnitudes we emit, trailing zeros trimmed. */
std::string
num(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", value);
    std::string s = buf;
    while (!s.empty() && s.back() == '0')
        s.pop_back();
    if (!s.empty() && s.back() == '.')
        s.pop_back();
    return s.empty() ? "0" : s;
}

/** Escape a label value (backslash, quote, newline). */
std::string
labelEscape(const std::string &value)
{
    std::string out;
    for (char c : value) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

void
header(std::string &out, const std::string &name, const char *type,
       const std::string &help)
{
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + std::string(type) + "\n";
}

void
histogramText(std::string &out, const std::string &name,
              const Histogram &hist)
{
    header(out, name, "histogram",
           "per-stage latency in milliseconds");
    // Cumulative buckets at the hi edge (ms) of every *non-empty*
    // bucket: the geometry has 976 buckets and a scrape that emitted
    // them all would dwarf the payload; non-empty edges preserve
    // every quantile the histogram itself can answer.
    std::uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::numBuckets; ++i) {
        const std::uint64_t c = hist.bucketCount(i);
        if (c == 0)
            continue;
        cumulative += c;
        out += name + "_bucket{le=\"" +
               num(static_cast<double>(Histogram::bucketHi(i)) /
                   1000.0) +
               "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " +
           std::to_string(hist.count()) + "\n";
    out += name + "_sum " +
           num(static_cast<double>(hist.sum()) / 1000.0) + "\n";
    out += name + "_count " + std::to_string(hist.count()) + "\n";
}

} // namespace

std::string
prometheusText(const MetricSample &sample,
               const ExpositionExtras &extras)
{
    std::string out;
    out.reserve(8192);

    for (const auto &[name, value] : sample.counters) {
        const std::string full = "stitch_" + name + "_total";
        header(out, full, "counter", "service counter " + name);
        out += full + " " + std::to_string(value) + "\n";
    }
    for (const auto &[name, value] : sample.gauges) {
        const std::string full = "stitch_" + name;
        header(out, full, "gauge", "service gauge " + name);
        out += full + " " + num(value) + "\n";
    }
    for (const auto &[name, hist] : sample.histograms)
        histogramText(out, "stitch_latency_" + name + "_ms", hist);

    if (extras.uptimeS >= 0.0) {
        header(out, "stitch_uptime_seconds", "gauge",
               "seconds since the daemon started");
        out += "stitch_uptime_seconds " + num(extras.uptimeS) + "\n";
        header(out, "stitch_requests_served_total", "counter",
               "wire requests answered since start");
        out += "stitch_requests_served_total " +
               std::to_string(extras.served) + "\n";
    }

    if (extras.sloStatus && extras.sloStatus->isArray()) {
        const obs::Json &slos = *extras.sloStatus;
        header(out, "stitch_slo_value", "gauge",
               "last evaluated value per objective");
        header(out, "stitch_slo_burn_rate_short", "gauge",
               "short-window burn rate per objective");
        header(out, "stitch_slo_burn_rate_long", "gauge",
               "long-window burn rate per objective");
        header(out, "stitch_slo_alerting", "gauge",
               "1 while the objective's burn-rate alert is raised");
        for (std::size_t i = 0; i < slos.size(); ++i) {
            const obs::Json &o = slos.at(i);
            const std::string label =
                "{objective=\"" +
                labelEscape(o.get("name").asString()) + "\"} ";
            out += "stitch_slo_value" + label +
                   num(o.get("value").asDouble()) + "\n";
            out += "stitch_slo_burn_rate_short" + label +
                   num(o.get("burn_short").asDouble()) + "\n";
            out += "stitch_slo_burn_rate_long" + label +
                   num(o.get("burn_long").asDouble()) + "\n";
            out += "stitch_slo_alerting" + label +
                   (o.get("alerting").asBool() ? "1" : "0") + "\n";
        }
    }

    if (extras.buildInfo && extras.buildInfo->isObject()) {
        header(out, "stitch_build_info", "gauge",
               "build provenance as labels, value always 1");
        std::string labels;
        for (const auto &[key, value] :
             extras.buildInfo->items()) {
            if (value.kind() != obs::Json::Kind::String)
                continue;
            if (!labels.empty())
                labels += ",";
            labels +=
                key + "=\"" + labelEscape(value.asString()) + "\"";
        }
        out += "stitch_build_info{" + labels + "} 1\n";
    }
    return out;
}

std::size_t
expositionSeriesCount(const std::string &text)
{
    std::size_t count = 0;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        if (eol > pos && text[pos] != '#')
            ++count;
        pos = eol + 1;
    }
    return count;
}

} // namespace stitch::telem

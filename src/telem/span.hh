/**
 * @file
 * Request-scoped tracing for the service layer: every job submitted
 * to the engine gets a splitmix64 trace id, and the stages of its
 * life (submit → queue → claim → cache_probe → compile → stitch →
 * simulate → report → respond) are recorded as typed, wall-clock
 * spans through a thread-safe sink.
 *
 * Propagation is explicit — a small `TraceContext` value (trace id,
 * job id, sink pointer) rides along through JobEngine workers,
 * ResultCache probes and AppRunner, no thread-local magic — so a
 * disabled context (null sink) costs a pointer test and nothing
 * else, and a run with telemetry off is byte-identical to one that
 * predates the telemetry layer. The sink locks only on span *close*
 * (one append per stage per job, never inside the simulator), which
 * keeps it lock-cheap at job granularity.
 *
 * Exports: a valid Chrome trace (one lane per job, written through
 * the existing obs::Tracer so the viewer conventions match the
 * simulator traces) and a JSONL structured event log (one span
 * object per line, grep/jq-friendly).
 */

#ifndef STITCH_TELEM_SPAN_HH
#define STITCH_TELEM_SPAN_HH

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace stitch::telem
{

/** The span taxonomy — one stage per step of a job's life. */
enum class Stage
{
    Submit,     ///< validate + enqueue (inside JobEngine::submit)
    Queue,      ///< enqueued, waiting for a worker claim
    Claim,      ///< the claim critical section
    CacheProbe, ///< memory/disk cache lookup
    Compile,    ///< per-stage kernel compilation (AppRunner)
    Stitch,     ///< stitch planning (AppRunner, Stitch modes)
    Simulate,   ///< the short + long simulated runs (AppRunner)
    Report,     ///< report/derived document construction
    Respond,    ///< serializing + writing the wire response (stitchd)
    Backoff,    ///< jittered retry wait before a re-enqueue/resend
    Job,        ///< the end-to-end envelope (submit → finish)
};

inline constexpr int numStages = static_cast<int>(Stage::Job) + 1;

const char *stageName(Stage stage);

/** One closed span. Times are microseconds since the sink's epoch. */
struct Span
{
    std::uint64_t traceId = 0;
    int jobId = -1;
    Stage stage = Stage::Job;
    std::uint64_t startUs = 0;
    std::uint64_t endUs = 0;
    int worker = -1; ///< claiming worker; -1 outside the worker pool

    std::uint64_t durationUs() const { return endUs - startUs; }
};

/** splitmix64 finalizer over (seed + index): a bijection per seed, so
 *  ids within one engine epoch are unique by construction. */
std::uint64_t traceIdFor(std::uint64_t seed, std::uint64_t index);

/** Render a trace id the way every export spells it (16 hex). */
std::string traceIdHex(std::uint64_t traceId);

/**
 * Thread-safe append-only store of closed spans, plus the batch
 * epoch every span timestamp is relative to.
 */
class SpanSink
{
  public:
    SpanSink();

    /** Microseconds since the sink's epoch (monotonic clock). */
    std::uint64_t nowUs() const;

    /** Append one closed span (locks; call at span close only). */
    void record(const Span &span);

    /**
     * Secondary consumer of every span close (the flight recorder).
     * Called after the append, outside the sink's lock — the
     * observer takes its own lock and must never call back into the
     * sink. Set once at engine construction, before any span flows.
     */
    void setObserver(std::function<void(const Span &)> observer);

    std::size_t count() const;
    std::vector<Span> snapshot() const;
    void clear();

    /**
     * Write every recorded span as a Chrome trace through the
     * process-wide obs::Tracer: pid 4 ("svc"), one lane per job id,
     * stage slices nested inside the job envelope, trace id and
     * worker as event args. Throws fault::ConfigError when the
     * tracer is already recording a simulation trace.
     */
    void writeChromeTrace(const std::string &path) const;

    /** One JSON object per span, one per line (structured log). */
    void writeJsonl(const std::string &path) const;

    /** Per-stage rollup: span count and total duration (ms). */
    obs::Json rollupJson() const;

  private:
    mutable std::mutex mutex_;
    std::vector<Span> spans_;
    std::function<void(const Span &)> observer_;
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * The explicitly-propagated handle: which request this is and where
 * its spans go. A default-constructed context is disabled; every
 * instrumentation point tests `enabled()` first, so carrying a
 * disabled context through AppRunner costs one branch per *stage*,
 * never per instruction.
 */
struct TraceContext
{
    std::uint64_t traceId = 0;
    int jobId = -1;
    int worker = -1;
    SpanSink *sink = nullptr;

    bool enabled() const { return sink != nullptr; }

    std::uint64_t nowUs() const { return sink ? sink->nowUs() : 0; }

    /** Record a closed [startUs, endUs) span of `stage`. */
    void
    record(Stage stage, std::uint64_t startUs,
           std::uint64_t endUs) const
    {
        if (!sink)
            return;
        sink->record({traceId, jobId, stage, startUs, endUs, worker});
    }
};

/** RAII helper: opens at construction, records at destruction. */
class ScopedSpan
{
  public:
    ScopedSpan(const TraceContext &ctx, Stage stage)
        : ctx_(ctx), stage_(stage),
          start_(ctx.enabled() ? ctx.nowUs() : 0)
    {}

    ~ScopedSpan() { close(); }

    /** Record now instead of at scope exit; idempotent. */
    void
    close()
    {
        if (!closed_ && ctx_.enabled())
            ctx_.record(stage_, start_, ctx_.nowUs());
        closed_ = true;
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    TraceContext ctx_;
    Stage stage_;
    std::uint64_t start_;
    bool closed_ = false;
};

} // namespace stitch::telem

#endif // STITCH_TELEM_SPAN_HH

/**
 * @file
 * Prometheus text exposition (format 0.0.4) over one MetricSample.
 *
 * Naming contract (DESIGN.md §14): every metric is prefixed
 * "stitch_"; counters append "_total"; latency histograms are
 * emitted as "stitch_latency_<stage>_ms" with cumulative
 * `_bucket{le="..."}` series in milliseconds plus `_sum`/`_count`.
 * The un-prefixed names are exactly the MetricSample names, which
 * in turn map 1:1 onto the v2 service-report counter tree
 * (`svc.jobs.submitted` -> `jobs_submitted` ->
 * `stitch_jobs_submitted_total`), so a scraped end-of-run total and
 * the final report can be compared key for key.
 *
 * SLO status rides along as stitch_slo_* gauges per objective
 * (value, burn rates, alerting flag) and build provenance as the
 * conventional `stitch_build_info{...} 1` info metric.
 */

#ifndef STITCH_TELEM_EXPOSITION_HH
#define STITCH_TELEM_EXPOSITION_HH

#include <string>

#include "obs/json.hh"
#include "telem/timeseries.hh"

namespace stitch::telem
{

/** The Content-Type a Prometheus scraper expects for this text. */
inline constexpr const char *expositionContentType =
    "text/plain; version=0.0.4";

/** Extra series not owned by the engine sample (server lifetime). */
struct ExpositionExtras
{
    double uptimeS = -1.0;        ///< emitted when >= 0
    std::uint64_t served = 0;     ///< emitted with uptimeS
    const obs::Json *sloStatus = nullptr; ///< SloEngine::statusJson
    const obs::Json *buildInfo = nullptr; ///< obs::buildInfoJson
};

/** Render `sample` (plus extras) as Prometheus exposition text. */
std::string prometheusText(const MetricSample &sample,
                           const ExpositionExtras &extras = {});

/** Number of sample lines (non-comment, non-blank) in `text` —
 *  the "how many series did we scrape" check CI asserts on. */
std::size_t expositionSeriesCount(const std::string &text);

} // namespace stitch::telem

#endif // STITCH_TELEM_EXPOSITION_HH

#include "telem/flightrec.hh"

#include <cstdio>

#include "common/logging.hh"
#include "obs/json.hh"

namespace stitch::telem
{

FlightRecorder::FlightRecorder(FlightOptions options)
    : options_(std::move(options))
{
    if (options_.eventsPerJob == 0)
        options_.eventsPerJob = 1;
    if (options_.maxJobs == 0)
        options_.maxJobs = 1;
}

void
FlightRecorder::attach(std::uint64_t traceId, int jobId)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = rings_.try_emplace(traceId);
    it->second.jobId = jobId;
    if (!inserted)
        return;
    attachOrder_.push_back(traceId);
    // forget()/dump() leave their ids behind in the eviction queue;
    // compact it before stale entries can outnumber live rings.
    if (attachOrder_.size() > 4 * options_.maxJobs) {
        std::deque<std::uint64_t> live;
        for (std::uint64_t id : attachOrder_)
            if (rings_.count(id))
                live.push_back(id);
        attachOrder_ = std::move(live);
    }
    while (rings_.size() > options_.maxJobs &&
           !attachOrder_.empty()) {
        const std::uint64_t victim = attachOrder_.front();
        attachOrder_.pop_front();
        if (victim == traceId)
            continue; // never evict the ring being attached
        if (rings_.erase(victim) > 0)
            ++evicted_;
    }
}

void
FlightRecorder::append(std::uint64_t traceId, Event event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = rings_.find(traceId);
    if (it == rings_.end())
        return; // never attached, or already dumped/forgotten
    Ring &ring = it->second;
    ring.events.push_back(std::move(event));
    while (ring.events.size() > options_.eventsPerJob) {
        ring.events.pop_front();
        ++ring.dropped;
        ++eventsDropped_;
    }
}

void
FlightRecorder::event(std::uint64_t traceId, std::uint64_t atUs,
                      const std::string &what,
                      const std::string &detail)
{
    Event e;
    e.atUs = atUs;
    e.what = what;
    e.detail = detail;
    append(traceId, std::move(e));
}

void
FlightRecorder::span(const Span &span)
{
    Event e;
    e.atUs = span.endUs;
    e.isSpan = true;
    e.stage = span.stage;
    e.durUs = span.durationUs();
    e.worker = span.worker;
    append(span.traceId, std::move(e));
}

void
FlightRecorder::forget(std::uint64_t traceId)
{
    std::lock_guard<std::mutex> lock(mutex_);
    rings_.erase(traceId);
}

std::string
FlightRecorder::dump(std::uint64_t traceId, const std::string &kind,
                     const std::string &error, const obs::Json *build)
{
    Ring ring;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = rings_.find(traceId);
        if (it == rings_.end())
            return "";
        ring = std::move(it->second);
        rings_.erase(it);
        if (options_.dumpDir.empty())
            return "";
        ++dumps_;
    }

    const std::string path = options_.dumpDir + "/flight-" +
                             traceIdHex(traceId) + ".jsonl";
    std::FILE *out = obs::openArtifactFile(path);

    obs::Json head = obs::Json::object();
    head.set("schema", flightRecordSchema);
    head.set("version", flightRecordVersion);
    head.set("trace_id", traceIdHex(traceId));
    head.set("job", ring.jobId);
    head.set("kind", kind);
    head.set("error", error);
    head.set("events",
             static_cast<std::uint64_t>(ring.events.size()));
    head.set("events_dropped", ring.dropped);
    if (build)
        head.set("build", *build);
    std::string line = head.dump();
    std::fwrite(line.data(), 1, line.size(), out);
    std::fputc('\n', out);

    for (const Event &e : ring.events) {
        obs::Json doc = obs::Json::object();
        doc.set("at_us", e.atUs);
        if (e.isSpan) {
            doc.set("type", "span");
            doc.set("stage", stageName(e.stage));
            doc.set("dur_us", e.durUs);
            if (e.worker >= 0)
                doc.set("worker", e.worker);
        } else {
            doc.set("type", "state");
            doc.set("what", e.what);
            if (!e.detail.empty())
                doc.set("detail", e.detail);
        }
        line = doc.dump();
        std::fwrite(line.data(), 1, line.size(), out);
        std::fputc('\n', out);
    }
    std::fclose(out);
    return path;
}

std::uint64_t
FlightRecorder::dumps() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return dumps_;
}

obs::Json
FlightRecorder::statsJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    obs::Json doc = obs::Json::object();
    doc.set("tracked", static_cast<std::uint64_t>(rings_.size()));
    doc.set("dumps", dumps_);
    doc.set("evicted", evicted_);
    doc.set("events_dropped", eventsDropped_);
    doc.set("dir", options_.dumpDir);
    return doc;
}

} // namespace stitch::telem

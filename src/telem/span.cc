#include "telem/span.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"
#include "common/table.hh"
#include "fault/fault.hh"
#include "obs/trace.hh"

namespace stitch::telem
{

const char *
stageName(Stage stage)
{
    switch (stage) {
    case Stage::Submit: return "submit";
    case Stage::Queue: return "queue";
    case Stage::Claim: return "claim";
    case Stage::CacheProbe: return "cache_probe";
    case Stage::Compile: return "compile";
    case Stage::Stitch: return "stitch";
    case Stage::Simulate: return "simulate";
    case Stage::Report: return "report";
    case Stage::Respond: return "respond";
    case Stage::Backoff: return "backoff";
    case Stage::Job: return "job";
    }
    return "?";
}

std::uint64_t
traceIdFor(std::uint64_t seed, std::uint64_t index)
{
    // splitmix64: advance by the golden-ratio gamma, then finalize.
    // The finalizer is a bijection, so for a fixed seed distinct
    // indices can never collide.
    std::uint64_t z = seed + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::string
traceIdHex(std::uint64_t traceId)
{
    return strformat("%016llx",
                     static_cast<unsigned long long>(traceId));
}

SpanSink::SpanSink() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t
SpanSink::nowUs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
SpanSink::record(const Span &span)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        spans_.push_back(span);
    }
    if (observer_)
        observer_(span);
}

void
SpanSink::setObserver(std::function<void(const Span &)> observer)
{
    observer_ = std::move(observer);
}

std::size_t
SpanSink::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_.size();
}

std::vector<Span>
SpanSink::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spans_;
}

void
SpanSink::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
}

void
SpanSink::writeChromeTrace(const std::string &path) const
{
    if (obs::Tracer::enabled())
        throw fault::ConfigError(
            "cannot export the service trace while a simulation "
            "trace is recording (one process-wide tracer)");

    std::vector<Span> spans = snapshot();
    // Stable viewer layout: one lane per job, spans in time order
    // within the lane so the envelope comes out before its stages.
    std::sort(spans.begin(), spans.end(),
              [](const Span &a, const Span &b) {
                  if (a.jobId != b.jobId)
                      return a.jobId < b.jobId;
                  if (a.startUs != b.startUs)
                      return a.startUs < b.startUs;
                  return a.endUs > b.endUs; // envelope first
              });

    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.start(path);
    int namedUpTo = -1;
    for (const Span &span : spans) {
        if (span.jobId > namedUpTo) {
            for (int id = namedUpTo + 1; id <= span.jobId; ++id)
                tracer.nameTrack(obs::Tracer::pidSvc, id,
                                 strformat("job%03d", id));
            namedUpTo = span.jobId;
        }
        tracer.slice(
            obs::Tracer::pidSvc, span.jobId, stageName(span.stage),
            span.startUs, span.endUs,
            {{"trace_hi", span.traceId >> 32},
             {"trace_lo", span.traceId & 0xffffffffull},
             {"worker",
              static_cast<std::uint64_t>(span.worker < 0
                                             ? 0xffffffffu
                                             : static_cast<unsigned>(
                                                   span.worker))}});
    }
    tracer.stop();
}

void
SpanSink::writeJsonl(const std::string &path) const
{
    std::FILE *out = obs::openArtifactFile(path);
    for (const Span &span : snapshot()) {
        obs::Json line = obs::Json::object();
        line.set("trace_id", traceIdHex(span.traceId));
        line.set("job", span.jobId);
        line.set("stage", stageName(span.stage));
        line.set("start_us", span.startUs);
        line.set("dur_us", span.durationUs());
        if (span.worker >= 0)
            line.set("worker", span.worker);
        const std::string text = line.dump();
        std::fwrite(text.data(), 1, text.size(), out);
        std::fputc('\n', out);
    }
    std::fclose(out);
}

obs::Json
SpanSink::rollupJson() const
{
    std::uint64_t counts[numStages] = {};
    std::uint64_t totalUs[numStages] = {};
    for (const Span &span : snapshot()) {
        const int s = static_cast<int>(span.stage);
        ++counts[s];
        totalUs[s] += span.durationUs();
    }
    obs::Json doc = obs::Json::object();
    for (int s = 0; s < numStages; ++s) {
        if (counts[s] == 0)
            continue;
        obs::Json entry = obs::Json::object();
        entry.set("spans", counts[s]);
        entry.set("total_ms",
                  static_cast<double>(totalUs[s]) / 1000.0);
        doc.set(stageName(static_cast<Stage>(s)), std::move(entry));
    }
    return doc;
}

} // namespace stitch::telem

/**
 * @file
 * Continuous time-series telemetry: periodic snapshots of the
 * service counters turned into fixed-capacity windows of deltas.
 *
 * The batch-era telemetry (histograms, span rollups) materializes
 * once, at drain time. A long-running daemon instead needs to be
 * watched *while it runs*: a collector thread samples every counter,
 * gauge and latency histogram at a fixed interval, forms the
 * element-wise delta against the previous sample (`Window`), and
 * appends it to a bounded ring (`TimeSeries`). Windows inherit the
 * algebra of telem::Histogram — element-wise mergeable, order
 * independent — so two rings recorded by different shards (the
 * fleet work ahead) fold together by aligning sequence numbers and
 * merging window by window.
 *
 * Lock discipline: sampling happens on the collector thread at
 * window granularity (once per interval, never per job), and the
 * ring takes its own mutex only on push/snapshot — nothing here
 * runs on a worker's hot path.
 */

#ifndef STITCH_TELEM_TIMESERIES_HH
#define STITCH_TELEM_TIMESERIES_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/json.hh"
#include "telem/histogram.hh"

namespace stitch::telem
{

/**
 * One cumulative snapshot of every service metric: monotone
 * counters, instantaneous gauges and cumulative latency histograms,
 * stamped with the sample time (sink-epoch µs). Names are the
 * exposition names minus the "stitch_" prefix and type suffix —
 * DESIGN.md §14 fixes the mapping to the v2-report counter tree.
 */
struct MetricSample
{
    std::uint64_t atUs = 0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram>> histograms;

    std::uint64_t counter(const std::string &name) const;
    double gauge(const std::string &name) const;
    const Histogram *histogram(const std::string &name) const;

    /** Element-wise merge with another shard's sample: counters and
     *  histograms add, gauges add (the fleet-level gauge is the sum
     *  over shards), the timestamp is the latest. The fleet
     *  aggregation primitive — associative and commutative like
     *  Histogram::merge. */
    void merge(const MetricSample &other);

    /**
     * Lossless wire form: {"at_us", "counters":{...},
     * "gauges":{...}, "histograms":{name: bucketsJson}} using
     * Histogram::toBucketsJson, so a router can fromWireJson() a
     * shard's sample and merge() it with full bucket fidelity.
     */
    obs::Json toWireJson() const;
    static MetricSample fromWireJson(const obs::Json &doc);
};

/**
 * One closed window: the element-wise delta between two consecutive
 * samples of the same engine. Counters carry the per-window
 * increment, gauges the end-of-window value, histograms the
 * per-window sample population (Histogram::diffFrom).
 */
struct Window
{
    std::uint64_t seq = 0; ///< position in the series, 0-based
    std::uint64_t startUs = 0;
    std::uint64_t endUs = 0;
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram>> histograms;

    std::uint64_t counter(const std::string &name) const;
    double gauge(const std::string &name) const;
    const Histogram *histogram(const std::string &name) const;

    double durationS() const
    {
        return static_cast<double>(endUs - startUs) / 1e6;
    }

    /** Per-second rate of `name` over this window. */
    double rate(const std::string &name) const;

    /** Element-wise merge with a window of the same seq recorded by
     *  another shard: counters and histograms add, gauges add (the
     *  fleet-level gauge is the sum over shards), the time span is
     *  the union. */
    void merge(const Window &other);

    obs::Json toJson() const;

    /** Lossless wire form (same layout as MetricSample::toWireJson
     *  plus seq/start_us/end_us) for cross-shard window merging. */
    obs::Json toWireJson() const;
    static Window fromWireJson(const obs::Json &doc);
};

/** Delta of two consecutive cumulative samples (later - earlier). */
Window windowBetween(const MetricSample &earlier,
                     const MetricSample &later);

/** Bounded ring of the most recent windows (oldest evicted first). */
class TimeSeries
{
  public:
    explicit TimeSeries(std::size_t capacity = 120);

    void push(Window window);

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const;

    /** Windows recorded over the series' whole life (>= size()). */
    std::uint64_t totalWindows() const;

    /** Oldest-first copy of the retained windows. */
    std::vector<Window> snapshot() const;

    /** Fold another shard's ring into this one: windows with equal
     *  seq merge element-wise, unmatched windows are adopted, and
     *  the result is re-bounded to capacity. */
    void merge(const TimeSeries &other);

    /** {capacity, windows, retained, last: {...}} summary. */
    obs::Json toJson() const;

  private:
    void pushLocked(Window window);

    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::deque<Window> windows_; ///< oldest first
    std::uint64_t total_ = 0;
};

/**
 * The sampling thread: calls `sample` every `intervalMs`, closes the
 * window against the previous snapshot, appends it to the owned
 * TimeSeries and hands it to `onWindow` (the SLO engine's evaluation
 * hook). Construction does not start the thread — call start();
 * stop() (and the destructor) joins it. tick() forces one sample
 * synchronously, which tests and drain paths use to close a final
 * window without waiting out the interval.
 */
class Collector
{
  public:
    using SampleFn = std::function<MetricSample()>;
    using WindowFn = std::function<void(const Window &)>;

    Collector(SampleFn sample, std::uint64_t intervalMs,
              std::size_t capacity = 120, WindowFn onWindow = {});
    ~Collector();

    Collector(const Collector &) = delete;
    Collector &operator=(const Collector &) = delete;

    void start();
    void stop();

    /** Take one sample now (thread-safe against the timer thread). */
    void tick();

    const TimeSeries &series() const { return series_; }
    std::uint64_t intervalMs() const { return intervalMs_; }

  private:
    void loop();
    void sampleOnce();

    SampleFn sample_;
    WindowFn onWindow_;
    std::uint64_t intervalMs_;
    TimeSeries series_;

    std::mutex mutex_; ///< prev_ + stop flag; ring has its own lock
    std::condition_variable cv_;
    bool stop_ = false;
    bool havePrev_ = false;
    std::uint64_t nextSeq_ = 0;
    MetricSample prev_;
    std::thread thread_;
};

} // namespace stitch::telem

#endif // STITCH_TELEM_TIMESERIES_HH

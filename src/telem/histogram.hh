/**
 * @file
 * Fixed-bucket log-linear latency histogram (HDR-style).
 *
 * The service layer needs p50/p99 over thousands of job latencies
 * without keeping every sample: a histogram with a *fixed,
 * deterministic* bucket geometry — values below 2^subBits land in
 * unit-width buckets, every octave above is split into 2^(subBits-1)
 * linear sub-buckets — so the worst-case relative quantile error is
 * bounded by one sub-bucket (1/16 with the default geometry) and two
 * histograms recorded on different machines or threads merge by plain
 * element-wise addition. No allocation after construction, no
 * dependence on the sample order, and identical geometry everywhere
 * means merge is associative and commutative — the properties
 * tests/test_telem.cc pins against a sorted-vector oracle.
 *
 * Values are recorded in integer microseconds; the JSON summary
 * reports milliseconds (the unit the service counters and the bench
 * trajectory already use).
 */

#ifndef STITCH_TELEM_HISTOGRAM_HH
#define STITCH_TELEM_HISTOGRAM_HH

#include <array>
#include <bit>
#include <cstdint>

#include "obs/json.hh"

namespace stitch::telem
{

/** Log-linear histogram over non-negative integer values (µs). */
class Histogram
{
  public:
    /** Sub-bucket resolution: 2^subBits unit buckets, then
     *  2^(subBits-1) sub-buckets per octave — relative error is
     *  bounded by 2^-(subBits-1) (6.25% with subBits = 5). */
    static constexpr int subBits = 5;
    static constexpr std::uint64_t linearMax = 1ull << subBits;
    static constexpr int subPerOctave = 1 << (subBits - 1);

    /** Octaves beyond the linear range covering the whole uint64
     *  domain: bit widths subBits+1 .. 64. */
    static constexpr int octaves = 64 - subBits;
    static constexpr int numBuckets =
        static_cast<int>(linearMax) + octaves * subPerOctave;

    /** Bucket index of `value` (total over the uint64 domain). */
    static constexpr int
    bucketIndex(std::uint64_t value)
    {
        if (value < linearMax)
            return static_cast<int>(value);
        const int width = std::bit_width(value); // > subBits
        const int octave = width - subBits - 1;  // 0-based
        const int shift = octave + 1;
        const int sub = static_cast<int>(value >> shift) -
                        subPerOctave;
        return static_cast<int>(linearMax) + octave * subPerOctave +
               sub;
    }

    /** Inclusive lower bound of bucket `index`. */
    static constexpr std::uint64_t
    bucketLo(int index)
    {
        if (index < static_cast<int>(linearMax))
            return static_cast<std::uint64_t>(index);
        const int octave =
            (index - static_cast<int>(linearMax)) / subPerOctave;
        const int sub =
            (index - static_cast<int>(linearMax)) % subPerOctave;
        const int shift = octave + 1;
        return static_cast<std::uint64_t>(subPerOctave + sub)
               << shift;
    }

    /** Exclusive upper bound of bucket `index` (0 marks the domain
     *  end of the last bucket). */
    static constexpr std::uint64_t
    bucketHi(int index)
    {
        if (index < static_cast<int>(linearMax))
            return static_cast<std::uint64_t>(index) + 1;
        const int octave =
            (index - static_cast<int>(linearMax)) / subPerOctave;
        const int shift = octave + 1;
        return bucketLo(index) + (1ull << shift);
    }

    /** Record one sample (microseconds). */
    void
    record(std::uint64_t micros)
    {
        ++counts_[static_cast<std::size_t>(bucketIndex(micros))];
        ++count_;
        sum_ += micros;
        if (micros < min_)
            min_ = micros;
        if (micros > max_)
            max_ = micros;
    }

    /** Element-wise merge (associative and commutative; both sides
     *  share the compile-time geometry by construction). Merging an
     *  empty histogram — in either direction — is an identity:
     *  counts/sum add zero and the min/max update is guarded on the
     *  operand being non-empty, so the sentinel extrema of an empty
     *  histogram never leak into a populated one. */
    void
    merge(const Histogram &other)
    {
        for (int i = 0; i < numBuckets; ++i)
            counts_[static_cast<std::size_t>(i)] +=
                other.counts_[static_cast<std::size_t>(i)];
        count_ += other.count_;
        sum_ += other.sum_;
        if (other.count_ > 0) {
            if (other.min_ < min_)
                min_ = other.min_;
            if (other.max_ > max_)
                max_ = other.max_;
        }
    }

    std::uint64_t count() const { return count_; }
    /** Samples in bucket `index` (exposition walks the geometry). */
    std::uint64_t
    bucketCount(int index) const
    {
        return counts_[static_cast<std::size_t>(index)];
    }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double
    mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Value (µs) at quantile `q` in [0, 1]: the exclusive upper bound
     * minus one of the bucket holding the sample of rank ceil(q *
     * count) — every sample in that bucket is <= the returned value,
     * and the true order statistic lives in the same bucket, so the
     * error is bounded by one bucket width. q = 1 returns the exact
     * tracked maximum; an empty histogram returns 0.
     */
    std::uint64_t quantile(double q) const;

    /**
     * Element-wise difference against an `earlier` snapshot of the
     * same monotonically-growing histogram: the per-window delta the
     * time-series collector records. Bucket counts, total count and
     * sum subtract exactly (they only ever grow); min/max cannot be
     * recovered from cumulative extrema, so they are re-derived from
     * the surviving buckets (lo of the lowest non-empty, hi-1 of the
     * highest) — bucket-resolution, same error bound as quantile().
     * Exact inverse of merge(): `a.diffFrom(b)` then merged back
     * into `b` reproduces `a`'s buckets, count and sum.
     */
    Histogram diffFrom(const Histogram &earlier) const;

    /** {count, min/mean/p50/p90/p99/max in ms} summary document. */
    obs::Json toJson() const;

    /**
     * Full-fidelity wire form: {"count","sum","min","max" (µs),
     * "buckets":[[index,count],...]} with only the non-empty buckets
     * listed. Unlike toJson() this round-trips losslessly —
     * fromBucketsJson() rebuilds an identical histogram, so two
     * shards can exchange histograms over the wire and merge() them
     * with the same algebra as in-process merging (the fleet
     * aggregation path). Geometry is compile-time shared; a document
     * with an out-of-range bucket index throws fault::ConfigError.
     */
    obs::Json toBucketsJson() const;
    static Histogram fromBucketsJson(const obs::Json &doc);

    /** Number of non-empty buckets (introspection/debug). */
    int nonEmptyBuckets() const;

  private:
    std::array<std::uint64_t, numBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
};

} // namespace stitch::telem

#endif // STITCH_TELEM_HISTOGRAM_HH

/**
 * @file
 * Declarative service-level objectives with multi-window burn-rate
 * alerting, evaluated per time-series window.
 *
 * An objective names a metric derivable from one telem::Window
 * (e2e_p99_ms, error_rate, cache_hit_rate, throughput_jobs_s,
 * queue_depth, ...), a comparison against a target, and an *error
 * budget*: the fraction of windows allowed to violate the target.
 * Each closed window is scored violating / ok, and the burn rate —
 * violating fraction divided by budget — is computed over a short
 * and a long trailing span. An alert raises when the short-window
 * burn exceeds `burnFast` while the long window confirms
 * (>= `burnSlow`): the classic multi-window rule, fast to trip on a
 * real stall (one bad window out of two with the defaults) and
 * immune to a single stray window once history accumulates.
 *
 * Objectives load from a stitch-slo v1 JSON document (stitchd
 * --slo=FILE), fall back to built-in defaults, and surface
 * everywhere a human or a scraper looks: statz/metrics, the final
 * service report, the Prometheus exposition, and stitchtop's
 * sparkline pane.
 */

#ifndef STITCH_TELEM_SLO_HH
#define STITCH_TELEM_SLO_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "telem/timeseries.hh"

namespace stitch::telem
{

inline constexpr const char *sloSchema = "stitch-slo";
inline constexpr int sloVersion = 1;

/** One declarative objective. */
struct SloObjective
{
    enum class Op
    {
        Le, ///< metric <= target is healthy
        Ge, ///< metric >= target is healthy
    };

    std::string name;   ///< display name, e.g. "e2e_p99"
    std::string metric; ///< window extractor key (see sloMetrics())
    Op op = Op::Le;
    double target = 0.0;
    /** Error budget: allowed violating-window fraction, (0, 1]. */
    double budget = 0.1;
    int shortWindows = 2;
    int longWindows = 12;
    double burnFast = 5.0; ///< short-span burn-rate alert threshold
    double burnSlow = 1.0; ///< long-span confirmation threshold

    void validate() const; ///< throws fault::ConfigError

    static SloObjective fromJson(const obs::Json &doc);
    obs::Json toJson() const;
};

/** A named set of objectives (the --slo=FILE document). */
struct SloConfig
{
    std::vector<SloObjective> objectives;

    bool empty() const { return objectives.empty(); }

    /** Parse a stitch-slo v1 document; validates every objective. */
    static SloConfig fromJson(const obs::Json &doc);

    /** The stitchd built-ins: e2e_p99 <= 250 ms, error_rate <= 1%,
     *  cache_hit_rate >= 25% once traffic flows. */
    static SloConfig defaults();

    obs::Json toJson() const;
};

/** The window metrics an objective may reference. */
const std::vector<std::string> &sloMetrics();

/**
 * Evaluates a set of objectives against the stream of closed
 * windows. Thread-safe: observe() runs on the collector thread,
 * statusJson() on whichever thread answers a scrape or statz.
 */
class SloEngine
{
  public:
    explicit SloEngine(SloConfig config);

    /** Score one closed window against every objective. */
    void observe(const Window &window);

    /** Per-objective status array: current value, burn rates, alert
     *  state and a short value history (stitchtop's sparkline). */
    obs::Json statusJson() const;

    /** Total violating (objective, window) pairs so far. */
    std::uint64_t violations() const;

    /** Alert raise edges so far (ok -> alerting transitions). */
    std::uint64_t alertsRaised() const;

    /** Objectives currently in the alerting state. */
    std::uint64_t alertsActive() const;

    std::size_t objectiveCount() const { return states_.size(); }

  private:
    struct State
    {
        SloObjective objective;
        std::deque<bool> violating; ///< trailing longWindows flags
        std::deque<double> values;  ///< trailing values (sparkline)
        std::uint64_t windows = 0;
        std::uint64_t violations = 0;
        std::uint64_t alertsRaised = 0;
        bool alerting = false;
        double lastValue = 0.0;
        bool lastValid = false;
        double burnShort = 0.0;
        double burnLong = 0.0;
    };

    static double burnOver(const std::deque<bool> &flags, int span,
                           double budget);

    mutable std::mutex mutex_;
    std::vector<State> states_;
    std::uint64_t violations_ = 0;
    std::uint64_t alertsRaised_ = 0;
};

/**
 * Extract `metric` from a closed window. Returns false when the
 * window carries no signal for it (e.g. a latency quantile over a
 * window that finished zero jobs) — such windows are skipped, not
 * scored, so an idle daemon neither violates nor burns budget.
 */
bool sloMetricValue(const std::string &metric, const Window &window,
                    double *value);

} // namespace stitch::telem

#endif // STITCH_TELEM_SLO_HH

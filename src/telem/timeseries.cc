#include "telem/timeseries.hh"

#include <algorithm>
#include <chrono>

namespace stitch::telem
{

namespace
{

template <typename T>
const T *
findNamed(const std::vector<std::pair<std::string, T>> &entries,
          const std::string &name)
{
    for (const auto &[key, value] : entries)
        if (key == name)
            return &value;
    return nullptr;
}

/** Element-wise add of `from` into `to`, adopting unseen names. */
template <typename T, typename Fold>
void
foldNamed(std::vector<std::pair<std::string, T>> &to,
          const std::vector<std::pair<std::string, T>> &from,
          Fold fold)
{
    for (const auto &[key, value] : from) {
        bool found = false;
        for (auto &[name, mine] : to)
            if (name == key) {
                fold(mine, value);
                found = true;
                break;
            }
        if (!found)
            to.emplace_back(key, value);
    }
}

} // namespace

std::uint64_t
MetricSample::counter(const std::string &name) const
{
    const std::uint64_t *v = findNamed(counters, name);
    return v ? *v : 0;
}

double
MetricSample::gauge(const std::string &name) const
{
    const double *v = findNamed(gauges, name);
    return v ? *v : 0.0;
}

const Histogram *
MetricSample::histogram(const std::string &name) const
{
    return findNamed(histograms, name);
}

namespace
{

/** The shared lossless serialization of a (counters, gauges,
 *  histograms) triple — MetricSample and Window wire forms differ
 *  only in their envelope fields. */
void
wireFieldsToJson(
    obs::Json &doc,
    const std::vector<std::pair<std::string, std::uint64_t>>
        &counters,
    const std::vector<std::pair<std::string, double>> &gauges,
    const std::vector<std::pair<std::string, Histogram>> &histograms)
{
    obs::Json cs = obs::Json::object();
    for (const auto &[name, value] : counters)
        cs.set(name, value);
    doc.set("counters", std::move(cs));
    obs::Json gs = obs::Json::object();
    for (const auto &[name, value] : gauges)
        gs.set(name, value);
    doc.set("gauges", std::move(gs));
    obs::Json hs = obs::Json::object();
    for (const auto &[name, hist] : histograms)
        hs.set(name, hist.toBucketsJson());
    doc.set("histograms", std::move(hs));
}

void
wireFieldsFromJson(
    const obs::Json &doc,
    std::vector<std::pair<std::string, std::uint64_t>> &counters,
    std::vector<std::pair<std::string, double>> &gauges,
    std::vector<std::pair<std::string, Histogram>> &histograms)
{
    if (doc.has("counters"))
        for (const auto &[name, value] : doc.get("counters").items())
            counters.emplace_back(name, value.asUint());
    if (doc.has("gauges"))
        for (const auto &[name, value] : doc.get("gauges").items())
            gauges.emplace_back(name, value.asDouble());
    if (doc.has("histograms"))
        for (const auto &[name, hist] :
             doc.get("histograms").items())
            histograms.emplace_back(
                name, Histogram::fromBucketsJson(hist));
}

} // namespace

void
MetricSample::merge(const MetricSample &other)
{
    atUs = std::max(atUs, other.atUs);
    foldNamed(counters, other.counters,
              [](std::uint64_t &a, std::uint64_t b) { a += b; });
    foldNamed(gauges, other.gauges,
              [](double &a, double b) { a += b; });
    foldNamed(histograms, other.histograms,
              [](Histogram &a, const Histogram &b) { a.merge(b); });
}

obs::Json
MetricSample::toWireJson() const
{
    obs::Json doc = obs::Json::object();
    doc.set("at_us", atUs);
    wireFieldsToJson(doc, counters, gauges, histograms);
    return doc;
}

MetricSample
MetricSample::fromWireJson(const obs::Json &doc)
{
    MetricSample sample;
    sample.atUs = doc.has("at_us") ? doc.get("at_us").asUint() : 0;
    wireFieldsFromJson(doc, sample.counters, sample.gauges,
                       sample.histograms);
    return sample;
}

obs::Json
Window::toWireJson() const
{
    obs::Json doc = obs::Json::object();
    doc.set("seq", seq);
    doc.set("start_us", startUs);
    doc.set("end_us", endUs);
    wireFieldsToJson(doc, counters, gauges, histograms);
    return doc;
}

Window
Window::fromWireJson(const obs::Json &doc)
{
    Window w;
    w.seq = doc.has("seq") ? doc.get("seq").asUint() : 0;
    w.startUs =
        doc.has("start_us") ? doc.get("start_us").asUint() : 0;
    w.endUs = doc.has("end_us") ? doc.get("end_us").asUint() : 0;
    wireFieldsFromJson(doc, w.counters, w.gauges, w.histograms);
    return w;
}

std::uint64_t
Window::counter(const std::string &name) const
{
    const std::uint64_t *v = findNamed(counters, name);
    return v ? *v : 0;
}

double
Window::gauge(const std::string &name) const
{
    const double *v = findNamed(gauges, name);
    return v ? *v : 0.0;
}

const Histogram *
Window::histogram(const std::string &name) const
{
    return findNamed(histograms, name);
}

double
Window::rate(const std::string &name) const
{
    const double seconds = durationS();
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(counter(name)) / seconds;
}

void
Window::merge(const Window &other)
{
    startUs = std::min(startUs, other.startUs);
    endUs = std::max(endUs, other.endUs);
    foldNamed(counters, other.counters,
              [](std::uint64_t &a, std::uint64_t b) { a += b; });
    foldNamed(gauges, other.gauges,
              [](double &a, double b) { a += b; });
    foldNamed(histograms, other.histograms,
              [](Histogram &a, const Histogram &b) { a.merge(b); });
}

obs::Json
Window::toJson() const
{
    obs::Json doc = obs::Json::object();
    doc.set("seq", seq);
    doc.set("start_us", startUs);
    doc.set("end_us", endUs);
    obs::Json cs = obs::Json::object();
    for (const auto &[name, value] : counters)
        if (value > 0)
            cs.set(name, value);
    doc.set("counters", std::move(cs));
    obs::Json gs = obs::Json::object();
    for (const auto &[name, value] : gauges)
        gs.set(name, value);
    doc.set("gauges", std::move(gs));
    obs::Json hs = obs::Json::object();
    for (const auto &[name, hist] : histograms)
        if (hist.count() > 0)
            hs.set(name, hist.toJson());
    doc.set("latency", std::move(hs));
    return doc;
}

Window
windowBetween(const MetricSample &earlier, const MetricSample &later)
{
    Window w;
    w.startUs = earlier.atUs;
    w.endUs = later.atUs;
    for (const auto &[name, value] : later.counters)
        w.counters.emplace_back(name,
                                value - earlier.counter(name));
    for (const auto &[name, value] : later.gauges)
        w.gauges.emplace_back(name, value);
    for (const auto &[name, hist] : later.histograms) {
        const Histogram *before = earlier.histogram(name);
        w.histograms.emplace_back(
            name, before ? hist.diffFrom(*before) : hist);
    }
    return w;
}

TimeSeries::TimeSeries(std::size_t capacity)
    : capacity_(capacity ? capacity : 1)
{}

void
TimeSeries::push(Window window)
{
    std::lock_guard<std::mutex> lock(mutex_);
    pushLocked(std::move(window));
}

void
TimeSeries::pushLocked(Window window)
{
    windows_.push_back(std::move(window));
    ++total_;
    while (windows_.size() > capacity_)
        windows_.pop_front();
}

std::size_t
TimeSeries::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return windows_.size();
}

std::uint64_t
TimeSeries::totalWindows() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return total_;
}

std::vector<Window>
TimeSeries::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {windows_.begin(), windows_.end()};
}

void
TimeSeries::merge(const TimeSeries &other)
{
    const std::vector<Window> theirs = other.snapshot();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const Window &w : theirs) {
        bool found = false;
        for (Window &mine : windows_)
            if (mine.seq == w.seq) {
                mine.merge(w);
                found = true;
                break;
            }
        if (!found)
            pushLocked(w);
    }
    std::sort(windows_.begin(), windows_.end(),
              [](const Window &a, const Window &b) {
                  return a.seq < b.seq;
              });
}

obs::Json
TimeSeries::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    obs::Json doc = obs::Json::object();
    doc.set("capacity", static_cast<std::uint64_t>(capacity_));
    doc.set("windows", total_);
    doc.set("retained",
            static_cast<std::uint64_t>(windows_.size()));
    if (!windows_.empty())
        doc.set("last", windows_.back().toJson());
    return doc;
}

Collector::Collector(SampleFn sample, std::uint64_t intervalMs,
                     std::size_t capacity, WindowFn onWindow)
    : sample_(std::move(sample)), onWindow_(std::move(onWindow)),
      intervalMs_(intervalMs ? intervalMs : 1000),
      series_(capacity)
{}

Collector::~Collector()
{
    stop();
}

void
Collector::start()
{
    if (thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = false;
    }
    // Baseline sample before the timer starts, so the first window
    // closes after one interval instead of two.
    sampleOnce();
    thread_ = std::thread([this] { loop(); });
}

void
Collector::stop()
{
    if (!thread_.joinable())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
Collector::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stop_) {
        cv_.wait_for(lock,
                     std::chrono::milliseconds(intervalMs_),
                     [this] { return stop_; });
        if (stop_)
            return;
        lock.unlock();
        sampleOnce();
        lock.lock();
    }
}

void
Collector::sampleOnce()
{
    // The sample callback reaches into the engine (its own lock);
    // take it outside ours so the two locks never nest.
    MetricSample now = sample_();
    Window closed;
    bool haveWindow = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (havePrev_) {
            closed = windowBetween(prev_, now);
            closed.seq = nextSeq_++;
            haveWindow = true;
        }
        prev_ = std::move(now);
        havePrev_ = true;
    }
    if (!haveWindow)
        return;
    series_.push(closed);
    if (onWindow_)
        onWindow_(closed);
}

void
Collector::tick()
{
    sampleOnce();
}

} // namespace stitch::telem

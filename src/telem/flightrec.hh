/**
 * @file
 * Per-job flight recorder: a bounded black-box ring of span closes
 * and engine state transitions per trace id, dumped as a
 * self-contained JSONL artifact the moment a job ends in a typed
 * failure.
 *
 * The error ring (PR 6) answers "*that* a job failed"; the flight
 * recorder answers "what was it doing". Every attached trace id
 * owns a small event ring (state transitions recorded by the engine
 * — submitted, claimed, cache probe, retries, watchdog trips — plus
 * every span the SpanSink closes for that trace). Completion
 * forgets the ring; a typed failure (deadline / overloaded / sim /
 * injected / protocol / ...) dumps it to
 * `<dir>/flight-<traceid>.jsonl`: one header line (schema, job,
 * failure kind, build provenance) followed by one line per retained
 * event, so a chaos-campaign or fleet failure is diagnosable from
 * the artifact alone, hours later, with no daemon left to ask.
 *
 * Memory is bounded twice: per ring (`eventsPerJob`, oldest events
 * dropped but counted) and across rings (`maxJobs`, oldest attached
 * trace evicted). All methods are thread-safe behind one mutex —
 * events arrive at job granularity, never inside the simulator.
 */

#ifndef STITCH_TELEM_FLIGHTREC_HH
#define STITCH_TELEM_FLIGHTREC_HH

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "obs/json.hh"
#include "telem/span.hh"

namespace stitch::telem
{

inline constexpr const char *flightRecordSchema =
    "stitch-flight-record";
inline constexpr int flightRecordVersion = 1;

/** Flight-recorder sizing and dump destination. */
struct FlightOptions
{
    std::size_t eventsPerJob = 64;
    std::size_t maxJobs = 256;
    /** Dump directory; empty records rings but never writes — the
     *  in-memory black box is still inspectable via statsJson(). */
    std::string dumpDir;
};

class FlightRecorder
{
  public:
    explicit FlightRecorder(FlightOptions options);

    /** Start a ring for `traceId` (idempotent). */
    void attach(std::uint64_t traceId, int jobId);

    /** Record one engine state transition. */
    void event(std::uint64_t traceId, std::uint64_t atUs,
               const std::string &what,
               const std::string &detail = "");

    /** Record one closed span (wired as the SpanSink observer). */
    void span(const Span &span);

    /** Drop the ring (job completed healthy). */
    void forget(std::uint64_t traceId);

    /**
     * Dump the ring as flight-<traceid>.jsonl under dumpDir and
     * forget it. Returns the artifact path, or "" when no directory
     * is configured or the trace was never attached. `build`, when
     * non-null, is stamped into the header line.
     */
    std::string dump(std::uint64_t traceId, const std::string &kind,
                     const std::string &error,
                     const obs::Json *build = nullptr);

    std::uint64_t dumps() const;

    /** {tracked, dumps, evicted, events_dropped, dir} summary. */
    obs::Json statsJson() const;

    const FlightOptions &options() const { return options_; }

  private:
    struct Event
    {
        std::uint64_t atUs = 0;
        bool isSpan = false;
        Stage stage = Stage::Job; ///< isSpan only
        std::uint64_t durUs = 0;  ///< isSpan only
        int worker = -1;          ///< isSpan only
        std::string what;         ///< state transitions only
        std::string detail;
    };

    struct Ring
    {
        int jobId = -1;
        std::deque<Event> events;
        std::uint64_t dropped = 0; ///< ring-capacity casualties
    };

    void append(std::uint64_t traceId, Event event);

    FlightOptions options_;
    mutable std::mutex mutex_;
    std::map<std::uint64_t, Ring> rings_;
    std::deque<std::uint64_t> attachOrder_; ///< eviction queue
    std::uint64_t dumps_ = 0;
    std::uint64_t evicted_ = 0;
    std::uint64_t eventsDropped_ = 0;
};

} // namespace stitch::telem

#endif // STITCH_TELEM_FLIGHTREC_HH

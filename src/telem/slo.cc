#include "telem/slo.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault.hh"

namespace stitch::telem
{

namespace
{

const char *
opToken(SloObjective::Op op)
{
    return op == SloObjective::Op::Le ? "le" : "ge";
}

SloObjective::Op
opFromToken(const std::string &token)
{
    if (token == "le")
        return SloObjective::Op::Le;
    if (token == "ge")
        return SloObjective::Op::Ge;
    throw fault::ConfigError(detail::formatMessage(
        "slo op must be \"le\" or \"ge\", got \"", token, "\""));
}

} // namespace

const std::vector<std::string> &
sloMetrics()
{
    static const std::vector<std::string> metrics = {
        "e2e_p50_ms",  "e2e_p99_ms",       "queue_p99_ms",
        "error_rate",  "cache_hit_rate",   "throughput_jobs_s",
        "queue_depth",
    };
    return metrics;
}

bool
sloMetricValue(const std::string &metric, const Window &window,
               double *value)
{
    auto quantileMs = [&](const char *hist, double q) {
        const Histogram *h = window.histogram(hist);
        if (!h || h->count() == 0)
            return false;
        *value = static_cast<double>(h->quantile(q)) / 1000.0;
        return true;
    };
    if (metric == "e2e_p50_ms")
        return quantileMs("e2e", 0.50);
    if (metric == "e2e_p99_ms")
        return quantileMs("e2e", 0.99);
    if (metric == "queue_p99_ms")
        return quantileMs("queue", 0.99);
    if (metric == "error_rate") {
        const double done = static_cast<double>(
            window.counter("jobs_completed") +
            window.counter("jobs_failed"));
        if (done <= 0.0)
            return false;
        *value =
            static_cast<double>(window.counter("jobs_failed")) /
            done;
        return true;
    }
    if (metric == "cache_hit_rate") {
        const double completed = static_cast<double>(
            window.counter("jobs_completed"));
        if (completed <= 0.0)
            return false;
        *value =
            static_cast<double>(window.counter("jobs_cache_hits")) /
            completed;
        return true;
    }
    if (metric == "throughput_jobs_s") {
        if (window.durationS() <= 0.0)
            return false;
        *value = window.rate("jobs_completed");
        return true;
    }
    if (metric == "queue_depth") {
        *value = window.gauge("queue_depth");
        return true;
    }
    return false;
}

void
SloObjective::validate() const
{
    if (name.empty())
        throw fault::ConfigError("slo objective needs a name");
    const auto &known = sloMetrics();
    if (std::find(known.begin(), known.end(), metric) == known.end())
        throw fault::ConfigError(detail::formatMessage(
            "slo objective \"", name, "\": unknown metric \"",
            metric, "\""));
    if (!(budget > 0.0) || budget > 1.0)
        throw fault::ConfigError(detail::formatMessage(
            "slo objective \"", name, "\": budget must be in (0, 1]",
            ", got ", budget));
    if (shortWindows < 1 || longWindows < shortWindows)
        throw fault::ConfigError(detail::formatMessage(
            "slo objective \"", name,
            "\": need 1 <= short_windows <= long_windows"));
    if (burnFast <= 0.0 || burnSlow <= 0.0)
        throw fault::ConfigError(detail::formatMessage(
            "slo objective \"", name,
            "\": burn thresholds must be positive"));
}

SloObjective
SloObjective::fromJson(const obs::Json &doc)
{
    SloObjective o;
    o.name = doc.get("name").asString();
    o.metric = doc.get("metric").asString();
    if (doc.has("op"))
        o.op = opFromToken(doc.get("op").asString());
    o.target = doc.get("target").asDouble();
    if (doc.has("budget"))
        o.budget = doc.get("budget").asDouble();
    if (doc.has("short_windows"))
        o.shortWindows =
            static_cast<int>(doc.get("short_windows").asUint());
    if (doc.has("long_windows"))
        o.longWindows =
            static_cast<int>(doc.get("long_windows").asUint());
    if (doc.has("burn_fast"))
        o.burnFast = doc.get("burn_fast").asDouble();
    if (doc.has("burn_slow"))
        o.burnSlow = doc.get("burn_slow").asDouble();
    o.validate();
    return o;
}

obs::Json
SloObjective::toJson() const
{
    obs::Json doc = obs::Json::object();
    doc.set("name", name);
    doc.set("metric", metric);
    doc.set("op", opToken(op));
    doc.set("target", target);
    doc.set("budget", budget);
    doc.set("short_windows", shortWindows);
    doc.set("long_windows", longWindows);
    doc.set("burn_fast", burnFast);
    doc.set("burn_slow", burnSlow);
    return doc;
}

SloConfig
SloConfig::fromJson(const obs::Json &doc)
{
    if (!doc.isObject() || !doc.has("schema") ||
        doc.get("schema").asString() != sloSchema)
        throw fault::ConfigError(
            "slo config must be a stitch-slo document");
    if (doc.get("version").asUint() !=
        static_cast<std::uint64_t>(sloVersion))
        throw fault::ConfigError(detail::formatMessage(
            "unsupported stitch-slo version ",
            doc.get("version").asUint()));
    SloConfig config;
    const obs::Json &list = doc.get("objectives");
    for (std::size_t i = 0; i < list.size(); ++i)
        config.objectives.push_back(
            SloObjective::fromJson(list.at(i)));
    return config;
}

SloConfig
SloConfig::defaults()
{
    SloConfig config;
    SloObjective p99;
    p99.name = "e2e_p99";
    p99.metric = "e2e_p99_ms";
    p99.op = SloObjective::Op::Le;
    p99.target = 250.0;
    config.objectives.push_back(p99);

    SloObjective errors;
    errors.name = "error_rate";
    errors.metric = "error_rate";
    errors.op = SloObjective::Op::Le;
    errors.target = 0.01;
    config.objectives.push_back(errors);

    SloObjective hits;
    hits.name = "cache_hit_rate";
    hits.metric = "cache_hit_rate";
    hits.op = SloObjective::Op::Ge;
    hits.target = 0.25;
    config.objectives.push_back(hits);
    return config;
}

obs::Json
SloConfig::toJson() const
{
    obs::Json doc = obs::Json::object();
    doc.set("schema", sloSchema);
    doc.set("version", sloVersion);
    obs::Json list = obs::Json::array();
    for (const SloObjective &o : objectives)
        list.push(o.toJson());
    doc.set("objectives", std::move(list));
    return doc;
}

SloEngine::SloEngine(SloConfig config)
{
    for (SloObjective &o : config.objectives) {
        o.validate();
        State state;
        state.objective = std::move(o);
        states_.push_back(std::move(state));
    }
}

double
SloEngine::burnOver(const std::deque<bool> &flags, int span,
                    double budget)
{
    if (flags.empty())
        return 0.0;
    const int n = std::min<int>(span,
                                static_cast<int>(flags.size()));
    int bad = 0;
    for (int i = 0; i < n; ++i)
        bad += flags[flags.size() - 1 - static_cast<std::size_t>(i)];
    return (static_cast<double>(bad) / static_cast<double>(n)) /
           budget;
}

void
SloEngine::observe(const Window &window)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (State &state : states_) {
        const SloObjective &o = state.objective;
        double value = 0.0;
        if (!sloMetricValue(o.metric, window, &value)) {
            state.lastValid = false;
            continue; // no signal: neither violates nor heals
        }
        const bool healthy = o.op == SloObjective::Op::Le
                                 ? value <= o.target
                                 : value >= o.target;
        state.lastValue = value;
        state.lastValid = true;
        ++state.windows;
        state.violating.push_back(!healthy);
        while (static_cast<int>(state.violating.size()) >
               o.longWindows)
            state.violating.pop_front();
        state.values.push_back(value);
        while (state.values.size() > 32)
            state.values.pop_front();
        if (!healthy) {
            ++state.violations;
            ++violations_;
        }
        state.burnShort =
            burnOver(state.violating, o.shortWindows, o.budget);
        state.burnLong =
            burnOver(state.violating, o.longWindows, o.budget);
        const bool nowAlerting = state.burnShort >= o.burnFast &&
                                 state.burnLong >= o.burnSlow;
        if (nowAlerting && !state.alerting) {
            ++state.alertsRaised;
            ++alertsRaised_;
        }
        state.alerting = nowAlerting;
    }
}

obs::Json
SloEngine::statusJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    obs::Json list = obs::Json::array();
    for (const State &state : states_) {
        obs::Json doc = state.objective.toJson();
        doc.set("windows", state.windows);
        doc.set("violations", state.violations);
        doc.set("value", state.lastValue);
        doc.set("value_valid", state.lastValid);
        doc.set("burn_short", state.burnShort);
        doc.set("burn_long", state.burnLong);
        doc.set("alerting", state.alerting);
        doc.set("alerts_raised", state.alertsRaised);
        obs::Json history = obs::Json::array();
        for (double v : state.values)
            history.push(v);
        doc.set("history", std::move(history));
        list.push(std::move(doc));
    }
    return list;
}

std::uint64_t
SloEngine::violations() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return violations_;
}

std::uint64_t
SloEngine::alertsRaised() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return alertsRaised_;
}

std::uint64_t
SloEngine::alertsActive() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t active = 0;
    for (const State &state : states_)
        active += state.alerting;
    return active;
}

} // namespace stitch::telem

/**
 * @file
 * The compiled execution backend of Core (--scheduler=compiled):
 * translation-cached trace dispatch over the micro-op IR of src/jit/.
 *
 * The interpreter in core.cc stays the byte-exactness oracle. This
 * file's contract is that every observable effect of a trace
 * execution — registers, memory, the local clock, every counter in
 * the stats registry including per-access cache hit/miss counts — is
 * identical to stepping the covered instructions one at a time,
 * including partial executions cut short by a thrown fault. Three
 * interpreter costs are folded instead of skipped:
 *
 *  - the per-instruction `time_ += 1` and retire bookkeeping
 *    accumulate in locals (dTime / dRet) applied once per trace exit,
 *    normal or thrown;
 *  - repeat I-cache probes compress into Cache::repeatReadHits (the
 *    probed block always holds the maximal lastUse of its set, so
 *    skipping the LRU touch preserves victim selection exactly);
 *  - each memory access site carries an inline cache (jit::MemClass)
 *    whose guarded fast path skips only the address routing — a guard
 *    miss repredicts and falls back to the generic accessors.
 *
 * SEND/RECV never enter traces: they run as single interpreter-oracle
 * steps under the relaxed-scheduler horizon discipline, so globally
 * visible events keep the step scheduler's order and times.
 */

#include <algorithm>
#include <array>
#include <string>

#include "common/logging.hh"
#include "cpu/core.hh"
#include "fault/fault.hh"
#include "jit/dump.hh"
#include "jit/translate.hh"
#include "jit/validate.hh"
#include "mem/addrmap.hh"

namespace stitch::cpu
{

using isa::Opcode;

namespace
{

/** Shared ALU evaluator of the plain and fused micro-ops; covers both
 *  the register and the immediate opcode forms (b = imm for the
 *  latter), replicating the interpreter's exact casts. */
inline Word
aluEval(Opcode op, Word a, Word b)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Addi: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::And:
      case Opcode::Andi: return a & b;
      case Opcode::Or:
      case Opcode::Ori: return a | b;
      case Opcode::Xor:
      case Opcode::Xori: return a ^ b;
      case Opcode::Sll:
      case Opcode::Slli: return a << (b & 31u);
      case Opcode::Srl:
      case Opcode::Srli: return a >> (b & 31u);
      case Opcode::Sra:
      case Opcode::Srai:
        return static_cast<Word>(static_cast<SWord>(a) >>
                                 static_cast<SWord>(b & 31u));
      case Opcode::Slt:
      case Opcode::Slti:
        return static_cast<SWord>(a) < static_cast<SWord>(b) ? 1 : 0;
      case Opcode::Sltu: return a < b ? 1 : 0;
      default: STITCH_PANIC("non-ALU opcode in ALU uop");
    }
}

inline bool
branchTaken(Opcode op, Word a, Word b)
{
    switch (op) {
      case Opcode::Beq: return a == b;
      case Opcode::Bne: return a != b;
      case Opcode::Blt:
        return static_cast<SWord>(a) < static_cast<SWord>(b);
      case Opcode::Bge:
        return static_cast<SWord>(a) >= static_cast<SWord>(b);
      case Opcode::Bltu: return a < b;
      case Opcode::Bgeu: return a >= b;
      default: STITCH_PANIC("non-branch opcode in branch uop");
    }
}

} // namespace

std::int32_t
Core::instrIndexAt(Addr pcWord) const
{
    if (pcWord >= wordToIndex_.size())
        throw fault::ExecutionFaultError(detail::formatMessage(
            "PC word ", pcWord, " past end of program ",
            prog_.name()));
    std::int32_t idx = wordToIndex_[pcWord];
    if (idx < 0)
        throw fault::ExecutionFaultError(detail::formatMessage(
            "PC word ", pcWord, " is not an instruction boundary in ",
            prog_.name()));
    return idx;
}

jit::Trace &
Core::traceFor(Addr entryWord)
{
    std::int32_t ti = wordToTrace_[entryWord];
    if (ti >= 0)
        return traces_[static_cast<std::size_t>(ti)];

    const Addr blockBytes = mem_.params().icache.blockBytes;
    if (!jitMemo_)
        jitMemo_ = jit::TranslationMemo::instance().programFor(
            prog_.code(), blockBytes);

    // The memo hands back a copy of a previously validated pristine
    // trace of this exact code image — field-for-field what
    // translate() would return, so the miss path below (translate,
    // validate, memoize) and a memo hit are interchangeable.
    jit::Trace tr;
    if (!jitMemo_->lookup(entryWord, tr)) {
        jit::TranslateParams tp;
        tp.icacheBlockBytes = blockBytes;
        tr = jit::translate(prog_, wordToIndex_, entryWord, tp);

        std::string why;
        if (!jit::validateTrace(tr, prog_, tp.icacheBlockBytes, &why))
            STITCH_PANIC("translator produced an invalid trace @w",
                         entryWord, " in ", prog_.name(), ": ", why);
        jitMemo_->insert(tr);
    }

    ++jitStats_.tracesTranslated;
    jitStats_.uops += tr.uops.size();
    for (const jit::Uop &u : tr.uops)
        if (jit::uopIsFused(u.kind))
            ++jitStats_.superinstructions;

    wordToTrace_[entryWord] = static_cast<std::int32_t>(traces_.size());
    traces_.push_back(std::move(tr));
    return traces_.back();
}

StepResult
Core::executeTrace(jit::Trace &tr, std::uint64_t &executed,
                   std::uint64_t budget)
{
    // The fold-on-exit locals; everything else increments its
    // counter directly (additive, so partial executions stay exact).
    // dRepeats defers guaranteed I-cache re-hits: flushed before any
    // first-touch block probe so the cache's internal use clock (and
    // with it every LRU stamp) matches the interpreter's exactly at
    // each probe, and once more in the fold.
    Cycles dTime = 0;
    std::uint64_t dRet = 0;
    std::uint64_t dRepeats = 0;
    StepResult result = StepResult::Ok;

    auto r = [&](RegId reg) {
        return regs_[static_cast<std::size_t>(reg)];
    };
    auto wr = [&](RegId reg, Word v) {
        if (reg != 0)
            regs_[static_cast<std::size_t>(reg)] = v;
    };
    // The per-instruction histogram is NOT updated here: a completed
    // dispatch retires every covered instruction exactly once, so the
    // loop counts one Trace::completions per execution and
    // syncExecCounts() materializes lazily. Only the exception path
    // below writes a partial prefix into execCounts_ directly.
    auto retire = [&](std::int32_t) { ++dRet; };

    // One instruction's fetch: base cycle, deferred repeat hits, then
    // up to two first-touch block probes at the same local time
    // (matching TileMemory::fetch's single-timestamp block walk).
    auto chargeFetch = [&](std::uint8_t reps, Addr nb0, Addr nb1) {
        dTime += 1;
        dRepeats += reps;
        if (nb0 != jit::noBlock) {
            if (dRepeats) {
                mem_.icacheRepeatHits(dRepeats);
                dRepeats = 0;
            }
            const Cycles now = time_ + dTime;
            Cycles stall = mem_.icacheBlockFetch(nb0, now);
            if (nb1 != jit::noBlock)
                stall += mem_.icacheBlockFetch(nb1, now);
            if (stall) {
                imissStall_ += stall;
                dTime += stall;
            }
        }
    };
    // A fused tail instruction's fetch: pure repeats by construction.
    auto chargeTailFetch = [&](std::uint8_t reps) {
        dTime += 1;
        dRepeats += reps;
    };

    // Inline-cached load site (LW/LB). The guard proves the class; a
    // miss repredicts and takes the generic routed path (identical
    // counters, and the interpreter's fatal on unmapped addresses).
    // The guard-hit arms are forced inline into each dispatch case
    // (where `word` becomes a constant); the repredict tail stays a
    // call — it runs a handful of times per run.
    auto loadMiss = [&](jit::MemClass &cls, Addr a,
                        bool word) -> Word {
        if (cls != jit::MemClass::Unknown)
            ++jitStats_.guardMisses;
        cls = mem::isSpmAddr(a)    ? jit::MemClass::Spm
              : mem::isDramAddr(a) ? jit::MemClass::Dram
                                   : jit::MemClass::Unknown;
        mem::MemResult res = word ? mem_.loadWord(a, time_ + dTime)
                                  : mem_.loadByte(a, time_ + dTime);
        (mem::isSpmAddr(a) ? spmStall_ : dmissStall_) +=
            res.extraCycles;
        dTime += res.extraCycles;
        ++loads_;
        return res.value;
    };
    auto loadSite = [&](jit::MemClass &cls, Addr a, bool word)
        __attribute__((always_inline)) -> Word {
        mem::MemResult res;
        switch (cls) {
          case jit::MemClass::Spm:
            if (mem::isSpmAddr(a)) {
                res = word ? mem_.spmLoadWordFast(a)
                           : mem_.spmLoadByteFast(a);
                spmStall_ += res.extraCycles;
                dTime += res.extraCycles;
                ++loads_;
                return res.value;
            }
            break;
          case jit::MemClass::Dram:
            if (mem::isDramAddr(a)) {
                res = word ? mem_.dramLoadWordFast(a, time_ + dTime)
                           : mem_.dramLoadByteFast(a, time_ + dTime);
                dmissStall_ += res.extraCycles;
                dTime += res.extraCycles;
                ++loads_;
                return res.value;
            }
            break;
          default:
            break;
        }
        return loadMiss(cls, a, word);
    };

    // Inline-cached SW site: the crossbar-config check comes first on
    // the slow path, exactly like the interpreter (an xbar store sets
    // the register, charges nothing and does not count as a store).
    // Fast/miss split as for loads.
    auto storeWordMiss = [&](jit::MemClass &cls, Addr a, Word v) {
        if (cls != jit::MemClass::Unknown)
            ++jitStats_.guardMisses;
        if (mem::isXbarConfigAddr(a)) {
            cls = jit::MemClass::Xbar;
            xbarReg_ = v;
            return;
        }
        cls = mem::isSpmAddr(a)    ? jit::MemClass::Spm
              : mem::isDramAddr(a) ? jit::MemClass::Dram
                                   : jit::MemClass::Unknown;
        Cycles c = mem_.storeWord(a, v, time_ + dTime);
        (mem::isSpmAddr(a) ? spmStall_ : dmissStall_) += c;
        dTime += c;
        ++stores_;
    };
    auto storeWordSite = [&](jit::MemClass &cls, Addr a, Word v)
        __attribute__((always_inline)) {
        switch (cls) {
          case jit::MemClass::Xbar:
            if (mem::isXbarConfigAddr(a)) {
                xbarReg_ = v;
                return;
            }
            break;
          case jit::MemClass::Spm:
            if (mem::isSpmAddr(a)) {
                Cycles c = mem_.spmStoreWordFast(a, v);
                spmStall_ += c;
                dTime += c;
                ++stores_;
                return;
            }
            break;
          case jit::MemClass::Dram:
            if (mem::isDramAddr(a)) {
                Cycles c = mem_.dramStoreWordFast(a, v, time_ + dTime);
                dmissStall_ += c;
                dTime += c;
                ++stores_;
                return;
            }
            break;
          default:
            break;
        }
        storeWordMiss(cls, a, v);
    };

    // SB never targets the crossbar register (interpreter parity).
    auto storeByteMiss = [&](jit::MemClass &cls, Addr a,
                             std::uint8_t v) {
        if (cls != jit::MemClass::Unknown)
            ++jitStats_.guardMisses;
        cls = mem::isSpmAddr(a)    ? jit::MemClass::Spm
              : mem::isDramAddr(a) ? jit::MemClass::Dram
                                   : jit::MemClass::Unknown;
        Cycles c = mem_.storeByte(a, v, time_ + dTime);
        (mem::isSpmAddr(a) ? spmStall_ : dmissStall_) += c;
        dTime += c;
        ++stores_;
    };
    auto storeByteSite = [&](jit::MemClass &cls, Addr a,
                             std::uint8_t v)
        __attribute__((always_inline)) {
        switch (cls) {
          case jit::MemClass::Spm:
            if (mem::isSpmAddr(a)) {
                Cycles c = mem_.spmStoreByteFast(a, v);
                spmStall_ += c;
                dTime += c;
                ++stores_;
                return;
            }
            break;
          case jit::MemClass::Dram:
            if (mem::isDramAddr(a)) {
                Cycles c = mem_.dramStoreByteFast(a, v, time_ + dTime);
                dmissStall_ += c;
                dTime += c;
                ++stores_;
                return;
            }
            break;
          default:
            break;
        }
        storeByteMiss(cls, a, v);
    };

    // CUST runs inline: tracer/sampler/injector are off in compiled
    // mode (System deoptimizes otherwise), counters are additive, and
    // a throwing patch (e.g. core::BinaryMismatchError) propagates
    // through the fold exactly as the interpreter would leave state.
    auto custOp = [&](const jit::Uop &u) {
        if (!custom_)
            fatal("CUST executed on a core without a custom handler");
        if (u.cfg >= prog_.iseTable().size())
            fatal("CUST cfg index ", u.cfg, " outside ISE table of ",
                  prog_.name());
        std::array<Word, 4> operands = {r(u.rs0), r(u.rs1), r(u.rs2),
                                        r(u.rs3)};
        auto res = custom_->executeCustom(
            id_, prog_.iseTable()[u.cfg], operands);
        if (res.writeRd0)
            wr(u.rd, res.rd0);
        if (res.writeRd1)
            wr(u.rd1, res.rd1);
        ++customInstrs_;
    };

    auto fold = [&] {
        if (dRepeats)
            mem_.icacheRepeatHits(dRepeats);
        time_ += dTime;
        retired_ += dRet;
        instrCount_ += dRet;
        executed += dRet;
    };

    // The dispatch loop chains directly from trace to trace: after a
    // terminator (or fall-through) whose target already has a trace
    // and fits the remaining budget, execution continues here without
    // bouncing through runCompiled. Chain exits — untranslated target
    // (including every SEND/RECV block head), out-of-image PC, budget
    // tail, halt — return to the outer loop, which owns the oracle
    // steps, translation, and the fault diagnostics.
    jit::Trace *cur = &tr;
    std::uint64_t chainBase = 0; ///< dRet at entry to `cur`'s loop
    try {
      chain:
        chainBase = dRet;
        ++cur->executions;
        ++jitStats_.dispatches;
        for (jit::Uop &u : cur->uops) {
            chargeFetch(u.fetchRepeats, u.newBlock0, u.newBlock1);
            switch (u.kind) {
              case jit::UopKind::Nop:
                break;
              case jit::UopKind::Alu:
                wr(u.rd, aluEval(u.op, r(u.rs0), r(u.rs1)));
                break;
              case jit::UopKind::AluImm:
                wr(u.rd, aluEval(u.op, r(u.rs0),
                                 static_cast<Word>(u.imm)));
                break;
              // Specialized hot ALU forms: same results as aluEval,
              // computed inline without the opcode switch.
              case jit::UopKind::Add:
                wr(u.rd, r(u.rs0) + r(u.rs1));
                break;
              case jit::UopKind::Sub:
                wr(u.rd, r(u.rs0) - r(u.rs1));
                break;
              case jit::UopKind::Xor:
                wr(u.rd, r(u.rs0) ^ r(u.rs1));
                break;
              case jit::UopKind::AddImm:
                wr(u.rd, r(u.rs0) + static_cast<Word>(u.imm));
                break;
              case jit::UopKind::ShlImm:
                wr(u.rd, r(u.rs0)
                             << (static_cast<Word>(u.imm) & 31u));
                break;
              case jit::UopKind::ShrImm:
                wr(u.rd,
                   r(u.rs0) >> (static_cast<Word>(u.imm) & 31u));
                break;
              case jit::UopKind::Lui:
                wr(u.rd, static_cast<Word>(u.imm) << 11);
                break;
              case jit::UopKind::Mul:
                wr(u.rd, r(u.rs0) * r(u.rs1));
                dTime += 3;
                ++muls_;
                break;
              case jit::UopKind::LoadWord:
                wr(u.rd, loadSite(u.memClass,
                                  r(u.rs0) + static_cast<Word>(u.imm),
                                  true));
                break;
              case jit::UopKind::LoadByte:
                wr(u.rd, loadSite(u.memClass,
                                  r(u.rs0) + static_cast<Word>(u.imm),
                                  false));
                break;
              case jit::UopKind::StoreWord:
                storeWordSite(u.memClass,
                              r(u.rs0) + static_cast<Word>(u.imm),
                              r(u.rs1));
                break;
              case jit::UopKind::StoreByte:
                storeByteSite(u.memClass,
                              r(u.rs0) + static_cast<Word>(u.imm),
                              static_cast<std::uint8_t>(r(u.rs1)));
                break;
              case jit::UopKind::Branch:
                if (branchTaken(u.op, r(u.rs0), r(u.rs1)))
                    branchTo(u.branchTarget); // may throw: not retired
                else
                    pc_ = u.pcAfter;
                break;
              case jit::UopKind::Jal:
                wr(u.rd, u.pcAfter);
                branchTo(u.branchTarget);
                break;
              case jit::UopKind::Jalr: {
                Word target = r(u.rs0) + static_cast<Word>(u.imm);
                wr(u.rd, u.pcAfter);
                branchTo(static_cast<std::int32_t>(target));
                break;
              }
              case jit::UopKind::Halt:
                halted_ = true;
                pc_ = u.pcAfter;
                result = StepResult::Halted;
                break;
              case jit::UopKind::Cust:
                custOp(u);
                break;

              case jit::UopKind::LoadAluStore: {
                wr(u.rd, loadSite(u.memClass,
                                  r(u.rs0) + static_cast<Word>(u.imm),
                                  true));
                retire(u.instrIdx);
                chargeTailFetch(u.rep2);
                Word b = isa::isAluImmOp(u.op2)
                             ? static_cast<Word>(u.imm3)
                             : r(u.rs2);
                wr(u.rd1, aluEval(u.op2, r(u.rs1), b));
                retire(u.instrIdx + 1);
                chargeTailFetch(u.rep3);
                storeWordSite(u.memClass2,
                              r(u.rs5) + static_cast<Word>(u.imm2),
                              r(u.rs4));
                retire(u.instrIdx + 2);
                continue;
              }
              case jit::UopKind::CustStore:
                custOp(u);
                retire(u.instrIdx);
                chargeTailFetch(u.rep2);
                storeWordSite(u.memClass2,
                              r(u.rs5) + static_cast<Word>(u.imm2),
                              r(u.rs4));
                retire(u.instrIdx + 1);
                continue;
              case jit::UopKind::AluImmBranch:
                wr(u.rd, aluEval(u.op2, r(u.rs0),
                                 static_cast<Word>(u.imm3)));
                retire(u.instrIdx);
                chargeTailFetch(u.rep2);
                if (branchTaken(u.op, r(u.rs1), r(u.rs2)))
                    branchTo(u.branchTarget);
                else
                    pc_ = u.pcAfter;
                retire(u.instrIdx + 1);
                continue;
            }
            retire(u.instrIdx);
        }
        ++cur->completions;
        if (!cur->endsInTerminator)
            pc_ = cur->exitWord;
        if (result == StepResult::Ok && pc_ < wordToTrace_.size()) {
            std::int32_t ti = wordToTrace_[pc_];
            if (ti >= 0) {
                jit::Trace &next =
                    traces_[static_cast<std::size_t>(ti)];
                if (executed + dRet + next.instrCount <= budget) {
                    cur = &next;
                    goto chain;
                }
            }
        }
        fold();
        return result;
    } catch (...) {
        // The interrupted dispatch retired a contiguous prefix of
        // `cur`'s instructions (dRet - chainBase of them); write it
        // into the histogram directly — completions only counts full
        // runs — so partial stats match the interpreter exactly.
        auto first = static_cast<std::size_t>(cur->firstInstrIdx);
        for (std::uint64_t k = 0; k < dRet - chainBase; ++k)
            ++execCounts_[first + k];
        fold();
        throw;
    }
}

void
Core::syncExecCounts()
{
    for (jit::Trace &t : traces_) {
        if (!t.completions)
            continue;
        auto first = static_cast<std::size_t>(t.firstInstrIdx);
        for (std::uint32_t k = 0; k < t.instrCount; ++k)
            execCounts_[first + k] += t.completions;
        t.completions = 0;
    }
}

StepResult
Core::runCompiled(std::uint64_t budget, std::uint64_t &executed,
                  Cycles horizonTime, TileId horizonTile)
{
    STITCH_ASSERT(!halted_,
                  "compiled slice dispatched to a halted core");
    while (true) {
        // A translated entry can never be SEND/RECV, so the decoded
        // communication check only runs on translation-cache misses.
        std::int32_t ti =
            pc_ < wordToTrace_.size() ? wordToTrace_[pc_] : -1;
        if (ti < 0) {
            std::int32_t idx = instrIndexAt(pc_);
            const isa::Instr &in =
                prog_.code()[static_cast<std::size_t>(idx)];
            if (in.op == Opcode::Send || in.op == Opcode::Recv) {
                // Communication never enters a trace: run it as a
                // single interpreter-oracle step, and only while this
                // core holds the globally minimal (time, id) key —
                // the relaxed scheduler's discipline, so the global
                // event order and times match the step scheduler
                // exactly.
                if (time_ > horizonTime ||
                    (time_ == horizonTime && id_ > horizonTile))
                    return StepResult::Ok; // yield unexecuted
                ++jitStats_.oracleSteps;
                StepResult res = step();
                ++executed;
                if (res != StepResult::Ok)
                    return res; // halted or blocked in RECV
                if (in.op == Opcode::Send)
                    return res; // wake-ups may change the run queue
                if (executed >= budget)
                    return res;
                continue;
            }
        }

        jit::Trace &tr = ti >= 0
                             ? traces_[static_cast<std::size_t>(ti)]
                             : traceFor(pc_);
        if (executed + tr.instrCount > budget) {
            // Budget tail: a whole trace would overshoot the cutoff,
            // so fall back to single oracle steps and stop exactly at
            // the limit, like the other schedulers.
            ++jitStats_.oracleSteps;
            StepResult res = step();
            ++executed;
            if (res != StepResult::Ok)
                return res;
            if (executed >= budget)
                return res;
            continue;
        }

        StepResult res = executeTrace(tr, executed, budget);
        if (res != StepResult::Ok)
            return res;
        if (executed >= budget)
            return res;
    }
}

Cycles
Core::runToHaltCompiled(std::uint64_t maxInstructions)
{
    std::uint64_t executed = 0;
    while (!halted_) {
        StepResult res = runCompiled(maxInstructions, executed,
                                     ~Cycles{0}, numTiles);
        if (res == StepResult::Blocked)
            fatal("standalone core ", id_, " blocked on RECV in ",
                  prog_.name());
        if (!halted_ && executed >= maxInstructions)
            fatal("program ", prog_.name(), " exceeded ",
                  maxInstructions, " instructions; runaway loop?");
    }
    return time_;
}

std::string
Core::dumpJitTraces() const
{
    std::vector<const jit::Trace *> sorted;
    sorted.reserve(traces_.size());
    for (const jit::Trace &t : traces_)
        sorted.push_back(&t);
    std::sort(sorted.begin(), sorted.end(),
              [](const jit::Trace *a, const jit::Trace *b) {
                  return a->entryWord < b->entryWord;
              });
    std::string out;
    for (const jit::Trace *t : sorted)
        out += jit::dumpTrace(*t, prog_,
                              mem_.params().icache.blockBytes);
    return out;
}

} // namespace stitch::cpu

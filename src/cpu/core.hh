/**
 * @file
 * The in-order, single-issue SW32 core of one Stitch tile.
 *
 * Timing model (paper Table II: ARM in-order single-issue, 200 MHz):
 * every instruction costs one cycle, plus I-cache/D-cache miss stalls
 * (30-cycle DRAM), plus 3 extra cycles for MUL, plus 1 extra cycle for
 * taken control flow. A CUST instruction executes in a single cycle
 * regardless of fusion — the whole point of the compiler-scheduled
 * sNoC — but occupies two instruction words in the I-cache.
 *
 * The core is deliberately ignorant of patches and of the NoC: custom
 * instructions and messages are delegated through the CustomHandler
 * and MessageHub interfaces so that a single Core can be driven
 * standalone (kernel studies, Fig. 11) or inside the 16-tile system
 * (application studies, Fig. 12).
 *
 * Cycle accounting is exact by construction — every addition to the
 * local clock lands in exactly one counter class:
 *
 *   time == instructions + 3*muls + branches_taken
 *         + imiss_stall_cycles + dmiss_stall_cycles
 *         + spm_stall_cycles + send_stall_cycles + recv_wait_cycles
 *
 * The profiling layer (src/prof/) folds these into its attribution
 * buckets and asserts the identity per tile.
 */

#ifndef STITCH_CPU_CORE_HH
#define STITCH_CPU_CORE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/patch.hh"
#include "isa/program.hh"
#include "jit/memo.hh"
#include "jit/trace.hh"
#include "mem/tile_memory.hh"

namespace stitch::cpu
{

/** Executes CUST instructions on behalf of a core. */
class CustomHandler
{
  public:
    virtual ~CustomHandler() = default;

    /**
     * Execute the custom instruction described by `blob` (a packed
     * core::FusedConfig) with the four register operands `in`.
     */
    virtual core::CustResult executeCustom(TileId tile,
                                           std::uint64_t blob,
                                           const std::array<Word, 4> &in)
        = 0;
};

/** Message-passing fabric seen by a core's SEND/RECV instructions. */
class MessageHub
{
  public:
    virtual ~MessageHub() = default;

    /** Inject a one-word message; returns injection overhead cycles. */
    virtual Cycles send(TileId src, TileId dst, int tag, Word value,
                        Cycles now) = 0;

    /**
     * Try to consume a message addressed to (dst from src, tag).
     * @return value and its arrival time, or nullopt if not yet sent.
     */
    virtual std::optional<std::pair<Word, Cycles>>
    tryRecv(TileId dst, TileId src, int tag) = 0;
};

/** Outcome of Core::step(). */
enum class StepResult
{
    Ok,      ///< an instruction retired
    Halted,  ///< HALT retired; the core is done
    Blocked, ///< RECV found no message; retry after time advances
};

/** One tile's processor. */
class Core
{
  public:
    /**
     * @param id     tile id (used as the message-passing rank)
     * @param memory the tile's private memory system
     * @param custom CUST executor; may be null iff the program has
     *               no custom instructions
     * @param hub    message fabric; may be null iff the program has
     *               no SEND/RECV
     */
    Core(TileId id, mem::TileMemory &memory, CustomHandler *custom,
         MessageHub *hub);

    /**
     * Load `prog`: decoded code, data segments into backing memory,
     * and the ISE table. Resets PC, registers, time and caches.
     */
    void loadProgram(const isa::Program &prog);

    /** Execute one instruction (or discover a block/halt). */
    StepResult step();

    /**
     * Run-ahead slice for the event-driven scheduler (sim/sched.hh):
     * execute instructions back-to-back without returning to the
     * scheduler, stopping at the first boundary where another tile
     * could (or must) run instead:
     *
     *  - a SEND retired: the scheduler has pending wake-ups to
     *    deliver (a woken receiver may be the new global minimum);
     *  - the core blocked in RECV or halted;
     *  - `executed` reached `budget` (the run's instruction limit);
     *  - the slice reached the horizon — the (time, id) key of the
     *    next runnable tile, past which this core is no longer the
     *    global minimum.
     *
     * The horizon's meaning depends on `relaxed` (the scheduler
     * picks per run; see sim::SchedulerKind):
     *
     *  - relaxed = false (reference-exact): the slice ends as soon
     *    as the local clock passes the horizon, reproducing the step
     *    scheduler's total instruction interleaving exactly.
     *  - relaxed = true: tile-private work (ALU, control flow,
     *    private-memory traffic) runs ahead past the horizon freely —
     *    it is invisible to every other tile — and only a SEND, RECV
     *    or CUST yields, unexecuted, until the core again holds the
     *    globally minimal key. Globally visible events therefore
     *    execute in exactly the step scheduler's order, at the same
     *    local times, so final stats and reports are bit-identical;
     *    only the interleaving of private work in host time differs.
     *
     * `executed` is incremented per attempt (blocked RECV attempts
     * included, matching System::run's per-step budget accounting)
     * and stays correct if an injected fault throws mid-slice — the
     * throwing attempt is not counted, exactly like the per-step
     * path.
     *
     * Preconditions: !halted(), executed < budget, and this core is
     * the globally minimal runnable (time, id) key. Pass
     * `horizonTime = ~Cycles{0}` when no other tile is runnable.
     */
    StepResult runSlice(std::uint64_t budget, std::uint64_t &executed,
                        Cycles horizonTime, TileId horizonTile,
                        bool relaxed);

    /**
     * Compiled-backend slice (sim's third scheduler; core_jit.cc):
     * dispatch predecoded micro-op traces from the per-program
     * translation cache instead of per-instruction fetch→switch,
     * translating lazily on first entry. The same boundaries as
     * runSlice apply — a retired SEND, block, halt, or the budget —
     * and the run-ahead discipline is the relaxed one: tile-private
     * traces run past the horizon freely, while SEND/RECV execute as
     * single interpreter-oracle steps only while this core holds the
     * globally minimal (time, id) key, and yield unexecuted
     * otherwise. Every counter, stall cycle and register effect is
     * byte-identical to the interpreter's, including partial trace
     * executions cut short by a thrown fault (see DESIGN.md §15).
     *
     * Precondition (System::runCompiledLoop enforces by deoptimizing
     * the whole run to the slice scheduler): tracer, sampler and
     * fault injector off, and `budget` is the runaway backstop, not a
     * meaningful cutoff — mid-trace budget overshoot falls back to
     * single oracle steps so the final attempt still matches.
     */
    StepResult runCompiled(std::uint64_t budget,
                           std::uint64_t &executed, Cycles horizonTime,
                           TileId horizonTile);

    /** Run standalone until HALT; fatal on block. */
    Cycles runToHalt(std::uint64_t maxInstructions = 400'000'000ull);

    /** runToHalt through the translation cache (bench/micro_perf). */
    Cycles
    runToHaltCompiled(std::uint64_t maxInstructions = 400'000'000ull);

    bool halted() const { return halted_; }
    TileId id() const { return id_; }

    /** Word address of the next instruction (diagnostics). */
    Addr pc() const { return pc_; }

    /** The message a blocked RECV is waiting on. */
    struct PendingRecv
    {
        TileId src = -1;
        int tag = 0;
    };

    /**
     * Set while the last step() returned Blocked: which (src, tag)
     * the stalled RECV polls for. The scheduler uses it to wake only
     * matching receivers and to report blocked state on deadlock.
     */
    const std::optional<PendingRecv> &pendingRecv() const
    {
        return pendingRecv_;
    }

    Cycles time() const { return time_; }
    void setTime(Cycles t) { time_ = t; }

    std::uint64_t instructionsRetired() const { return retired_; }

    Word reg(RegId r) const
    {
        return regs_[static_cast<std::size_t>(r)];
    }
    void setReg(RegId r, Word v);

    mem::TileMemory &memory() { return mem_; }
    StatGroup &stats() { return stats_; }

    /** Last value stored to the crossbar configuration register. */
    std::uint32_t xbarConfigReg() const { return xbarReg_; }

    /**
     * Per-instruction basic-block execution counts from the last run,
     * used by the compiler's profiler. Indexed by instruction index.
     * Compiled-regime dispatches defer their counts per trace
     * (jit::Trace::completions); reading materializes them — logical
     * const, hence the cast.
     */
    const std::vector<std::uint64_t> &executionCounts() const
    {
        const_cast<Core *>(this)->syncExecCounts();
        return execCounts_;
    }

    const isa::Program &program() const { return prog_; }

    /** Translation-cache activity of the current program's run. */
    const jit::JitStats &jitStats() const { return jitStats_; }

    /** Translated traces so far (diagnostics / tests). */
    std::size_t traceCount() const { return traces_.size(); }

    /** Dump every translated trace, sorted by entry address, through
     *  the validator-gated dumper (smoke_app --dump-traces). */
    std::string dumpJitTraces() const;

  private:
    StepResult execute(const isa::Instr &in);
    void branchTo(std::int32_t targetWord);

    /**
     * Map the PC to its instruction index, raising a typed
     * fault::ExecutionFaultError (→ Termination::Fault) when the PC
     * ran off the code image or into the middle of a two-word CUST —
     * shared by every execution regime so crash messages match.
     */
    std::int32_t instrIndexAt(Addr pcWord) const;

    /** Translation cache lookup; translates + validates on miss. */
    jit::Trace &traceFor(Addr entryWord);

    /**
     * Execute `tr` and chain through already-translated successor
     * traces while they fit the remaining budget; exact fold-on-exit
     * counter discipline across the whole chain.
     */
    StepResult executeTrace(jit::Trace &tr, std::uint64_t &executed,
                            std::uint64_t budget);

    /** Fold deferred per-trace completion counts into execCounts_. */
    void syncExecCounts();

    /**
     * Tracing: close the running coalesced "exec" slice at `upTo` and
     * start the next one there. Adjacent instructions merge into one
     * slice; stalls and waits split it.
     */
    void traceFlushExec(Cycles upTo);

    /** Account (and trace) a stall of `cycles` starting now. */
    void chargeStall(Cycles cycles, Counter &bucket,
                     const char *label);

    TileId id_;
    mem::TileMemory &mem_;
    CustomHandler *custom_;
    MessageHub *hub_;

    isa::Program prog_;
    std::vector<std::int32_t> wordToIndex_; ///< word addr -> instr idx
    std::vector<std::uint64_t> execCounts_;

    // Compiled backend (core_jit.cc): per-program translation cache,
    // dropped wholesale on loadProgram. wordToTrace_ maps an entry
    // word address to its trace index (-1 = not yet translated).
    // jitMemo_ is this program's handle into the process-wide
    // translation memo (jit/memo.hh), bound lazily on the first
    // translation-cache miss.
    std::vector<jit::Trace> traces_;
    std::vector<std::int32_t> wordToTrace_;
    std::shared_ptr<jit::ProgramMemo> jitMemo_;
    jit::JitStats jitStats_;

    std::array<Word, numRegs> regs_{};
    Addr pc_ = 0; ///< word address
    Cycles time_ = 0;
    std::uint64_t retired_ = 0;
    bool halted_ = true;
    std::uint32_t xbarReg_ = 0;
    std::optional<PendingRecv> pendingRecv_;

    StatGroup stats_;

    // Cached counter handles (per-instruction hot path; see
    // StatGroup::counter). Declared after stats_: they bind to it.
    Counter &instrCount_;
    Counter &imissStall_;
    Counter &dmissStall_;
    Counter &recvWait_;
    Counter &sendStall_;
    Counter &spmStall_;
    Counter &branchesTaken_;
    Counter &muls_;
    Counter &loads_;
    Counter &stores_;
    Counter &msgsSent_;
    Counter &msgsReceived_;
    Counter &customInstrs_;

    Cycles execStart_ = 0; ///< begin of the open traced exec slice
};

} // namespace stitch::cpu

#endif // STITCH_CPU_CORE_HH

/**
 * @file
 * Glue between a core's CUST instructions and the patch model for
 * single-tile runs (kernel studies, compiler measurement).
 *
 * Fused configurations execute functionally here too — the remote
 * patch is evaluated combinationally as the sNoC guarantees — but the
 * remote LMAU is disabled (the mapper never emits remote SPM
 * accesses; see compiler/mapper.hh).
 */

#ifndef STITCH_CPU_PATCH_HANDLER_HH
#define STITCH_CPU_PATCH_HANDLER_HH

#include "core/patch.hh"
#include "cpu/core.hh"
#include "mem/tile_memory.hh"

namespace stitch::cpu
{

/** SpmPort backed by a tile's scratchpad. */
class TileSpmPort : public core::SpmPort
{
  public:
    explicit TileSpmPort(mem::TileMemory &memory) : mem_(memory) {}

    Word
    load(Addr a) override
    {
        return mem_.spmLoadWord(a);
    }

    void
    store(Addr a, Word v) override
    {
        mem_.spmStoreWord(a, v);
    }

  private:
    mem::TileMemory &mem_;
};

/**
 * CustomHandler for a standalone tile hosting one patch of a known
 * kind. Validates that the binary's configs were compiled for the
 * patch flavour actually present.
 */
class LocalPatchHandler : public CustomHandler
{
  public:
    LocalPatchHandler(core::PatchKind kind, mem::TileMemory &memory)
        : kind_(kind), spm_(memory)
    {}

    core::CustResult
    executeCustom(TileId, std::uint64_t blob,
                  const std::array<Word, 4> &in) override
    {
        auto cfg = core::FusedConfig::unpackBlob(blob);
        if (cfg.localKind != kind_) {
            fatal("binary compiled for patch ",
                  core::patchKindName(cfg.localKind),
                  " but this tile hosts ", core::patchKindName(kind_));
        }
        return core::executeCustom(cfg, in, spm_, &remoteNull_);
    }

  private:
    core::PatchKind kind_;
    TileSpmPort spm_;
    core::NullSpmPort remoteNull_;
};

} // namespace stitch::cpu

#endif // STITCH_CPU_PATCH_HANDLER_HH

#include "cpu/core.hh"

#include "common/logging.hh"
#include "fault/fault.hh"
#include "mem/addrmap.hh"
#include "obs/trace.hh"

namespace stitch::cpu
{

using isa::Instr;
using isa::Opcode;
using obs::Tracer;

Core::Core(TileId id, mem::TileMemory &memory, CustomHandler *custom,
           MessageHub *hub)
    : id_(id), mem_(memory), custom_(custom), hub_(hub),
      instrCount_(stats_.counter("instructions")),
      imissStall_(stats_.counter("imiss_stall_cycles")),
      dmissStall_(stats_.counter("dmiss_stall_cycles")),
      recvWait_(stats_.counter("recv_wait_cycles")),
      sendStall_(stats_.counter("send_stall_cycles")),
      spmStall_(stats_.counter("spm_stall_cycles")),
      branchesTaken_(stats_.counter("branches_taken")),
      muls_(stats_.counter("muls")),
      loads_(stats_.counter("loads")),
      stores_(stats_.counter("stores")),
      msgsSent_(stats_.counter("msgs_sent")),
      msgsReceived_(stats_.counter("msgs_received")),
      customInstrs_(stats_.counter("custom_instructions"))
{
    mem_.setTraceTile(id);
}

void
Core::traceFlushExec(Cycles upTo)
{
    if (upTo > execStart_)
        Tracer::instance().slice(Tracer::pidTiles, id_, "exec",
                                 execStart_, upTo);
    execStart_ = upTo;
}

void
Core::chargeStall(Cycles cycles, Counter &bucket, const char *label)
{
    if (cycles == 0)
        return;
    bucket += cycles;
    if (Tracer::enabled()) {
        traceFlushExec(time_);
        Tracer::instance().slice(Tracer::pidTiles, id_, label, time_,
                                 time_ + cycles);
        execStart_ = time_ + cycles;
    }
    time_ += cycles;
}

void
Core::loadProgram(const isa::Program &prog)
{
    prog_ = prog;

    wordToIndex_.assign(prog_.wordCount(), -1);
    for (std::size_t i = 0; i < prog_.code().size(); ++i)
        wordToIndex_[prog_.wordAddrOf(i)] =
            static_cast<std::int32_t>(i);
    execCounts_.assign(prog_.code().size(), 0);

    // The translation cache indexes into this program's code: a
    // reload drops every trace (tests assert this via traceCount())
    // and unbinds the process-wide memo handle of the old image.
    traces_.clear();
    wordToTrace_.assign(prog_.wordCount(), -1);
    jitMemo_.reset();
    jitStats_ = jit::JitStats{};

    for (const auto &seg : prog_.data()) {
        if (mem::isSpmAddr(seg.base)) {
            for (std::size_t i = 0; i < seg.bytes.size(); i += 4) {
                Word w = 0;
                for (std::size_t b = 0; b < 4 && i + b < seg.bytes.size();
                     ++b)
                    w |= static_cast<Word>(seg.bytes[i + b]) << (8 * b);
                mem_.spmStoreWord(seg.base + static_cast<Addr>(i), w);
            }
        } else {
            mem_.backing().writeBlock(seg.base, seg.bytes);
        }
    }

    mem_.flushCaches();
    // Stats describe one program's run: a reload (e.g. after the
    // crossbar-preset stub) must not leak its counters into the next
    // run's report. Handles stay valid; values zero in place.
    stats_.reset();
    mem_.resetStats();
    regs_.fill(0);
    pc_ = 0;
    time_ = 0;
    retired_ = 0;
    execStart_ = 0;
    pendingRecv_.reset();
    halted_ = prog_.code().empty();
}

void
Core::setReg(RegId r, Word v)
{
    STITCH_ASSERT(r >= 0 && r < numRegs);
    if (r != 0)
        regs_[static_cast<std::size_t>(r)] = v;
}

void
Core::branchTo(std::int32_t targetWord)
{
    if (targetWord < 0 ||
        static_cast<Addr>(targetWord) >= prog_.wordCount())
        // Typed so every run loop can convert a wild branch into
        // Termination::Fault instead of tearing down the whole run.
        throw fault::ExecutionFaultError(detail::formatMessage(
            "branch to word ", targetWord, " outside program ",
            prog_.name()));
    pc_ = static_cast<Addr>(targetWord);
    time_ += 1; // taken control-flow penalty
    ++branchesTaken_;
}

StepResult
Core::step()
{
    if (halted_)
        return StepResult::Halted;

    std::int32_t idx = instrIndexAt(pc_);
    const Instr &in = prog_.code()[static_cast<std::size_t>(idx)];

    StepResult result = execute(in);
    if (result == StepResult::Ok || result == StepResult::Halted) {
        ++retired_;
        ++execCounts_[static_cast<std::size_t>(idx)];
        ++instrCount_;
    }
    return result;
}

StepResult
Core::execute(const Instr &in)
{
    const Addr thisPc = pc_;
    const Addr nextPc = pc_ + static_cast<Addr>(in.wordSize());

    // Fetch: the base cycle, plus I-cache miss stalls.
    time_ += 1;
    chargeStall(mem_.fetch(thisPc, in.wordSize(), time_), imissStall_,
                "stall imiss");

    auto rs = [&](RegId r) {
        return regs_[static_cast<std::size_t>(r)];
    };
    auto simm = [&] { return static_cast<Word>(in.imm); };

    pc_ = nextPc;

    switch (in.op) {
      case Opcode::Nop:
        break;
      case Opcode::Halt:
        halted_ = true;
        if (Tracer::enabled())
            traceFlushExec(time_);
        return StepResult::Halted;

      case Opcode::Add: setReg(in.rd0, rs(in.rs0) + rs(in.rs1)); break;
      case Opcode::Sub: setReg(in.rd0, rs(in.rs0) - rs(in.rs1)); break;
      case Opcode::And: setReg(in.rd0, rs(in.rs0) & rs(in.rs1)); break;
      case Opcode::Or: setReg(in.rd0, rs(in.rs0) | rs(in.rs1)); break;
      case Opcode::Xor: setReg(in.rd0, rs(in.rs0) ^ rs(in.rs1)); break;
      case Opcode::Sll:
        setReg(in.rd0, rs(in.rs0) << (rs(in.rs1) & 31u));
        break;
      case Opcode::Srl:
        setReg(in.rd0, rs(in.rs0) >> (rs(in.rs1) & 31u));
        break;
      case Opcode::Sra:
        setReg(in.rd0, static_cast<Word>(
            static_cast<SWord>(rs(in.rs0)) >>
            static_cast<SWord>(rs(in.rs1) & 31u)));
        break;
      case Opcode::Mul:
        setReg(in.rd0, rs(in.rs0) * rs(in.rs1));
        time_ += 3; // iterative multiplier, 4 cycles total
        ++muls_;
        break;
      case Opcode::Slt:
        setReg(in.rd0, static_cast<SWord>(rs(in.rs0)) <
                               static_cast<SWord>(rs(in.rs1))
                           ? 1
                           : 0);
        break;
      case Opcode::Sltu:
        setReg(in.rd0, rs(in.rs0) < rs(in.rs1) ? 1 : 0);
        break;

      case Opcode::Addi: setReg(in.rd0, rs(in.rs0) + simm()); break;
      case Opcode::Andi: setReg(in.rd0, rs(in.rs0) & simm()); break;
      case Opcode::Ori: setReg(in.rd0, rs(in.rs0) | simm()); break;
      case Opcode::Xori: setReg(in.rd0, rs(in.rs0) ^ simm()); break;
      case Opcode::Slli:
        setReg(in.rd0, rs(in.rs0) << (simm() & 31u));
        break;
      case Opcode::Srli:
        setReg(in.rd0, rs(in.rs0) >> (simm() & 31u));
        break;
      case Opcode::Srai:
        setReg(in.rd0, static_cast<Word>(
            static_cast<SWord>(rs(in.rs0)) >>
            static_cast<SWord>(simm() & 31u)));
        break;
      case Opcode::Slti:
        setReg(in.rd0, static_cast<SWord>(rs(in.rs0)) <
                               static_cast<SWord>(simm())
                           ? 1
                           : 0);
        break;
      case Opcode::Lui:
        setReg(in.rd0, static_cast<Word>(in.imm) << 11);
        break;

      case Opcode::Lw: {
        Addr a = rs(in.rs0) + simm();
        auto res = mem_.loadWord(a, time_);
        setReg(in.rd0, res.value);
        // SPM wait cycles are their own attribution bucket: they are
        // deterministic sequencer latency, not cache misses.
        bool spm = mem::isSpmAddr(a);
        chargeStall(res.extraCycles, spm ? spmStall_ : dmissStall_,
                    spm ? "stall spm" : "stall dmem");
        ++loads_;
        break;
      }
      case Opcode::Lb: {
        Addr a = rs(in.rs0) + simm();
        auto res = mem_.loadByte(a, time_);
        setReg(in.rd0, res.value);
        bool spm = mem::isSpmAddr(a);
        chargeStall(res.extraCycles, spm ? spmStall_ : dmissStall_,
                    spm ? "stall spm" : "stall dmem");
        ++loads_;
        break;
      }
      case Opcode::Sw: {
        Addr a = rs(in.rs0) + simm();
        if (mem::isXbarConfigAddr(a)) {
            xbarReg_ = rs(in.rs1);
            break;
        }
        bool spm = mem::isSpmAddr(a);
        chargeStall(mem_.storeWord(a, rs(in.rs1), time_),
                    spm ? spmStall_ : dmissStall_,
                    spm ? "stall spm" : "stall dmem");
        ++stores_;
        break;
      }
      case Opcode::Sb: {
        Addr a = rs(in.rs0) + simm();
        bool spm = mem::isSpmAddr(a);
        chargeStall(mem_.storeByte(a,
                                   static_cast<std::uint8_t>(
                                       rs(in.rs1)),
                                   time_),
                    spm ? spmStall_ : dmissStall_,
                    spm ? "stall spm" : "stall dmem");
        ++stores_;
        break;
      }

      case Opcode::Beq:
        if (rs(in.rs0) == rs(in.rs1))
            branchTo(static_cast<std::int32_t>(thisPc) + in.imm);
        break;
      case Opcode::Bne:
        if (rs(in.rs0) != rs(in.rs1))
            branchTo(static_cast<std::int32_t>(thisPc) + in.imm);
        break;
      case Opcode::Blt:
        if (static_cast<SWord>(rs(in.rs0)) <
            static_cast<SWord>(rs(in.rs1)))
            branchTo(static_cast<std::int32_t>(thisPc) + in.imm);
        break;
      case Opcode::Bge:
        if (static_cast<SWord>(rs(in.rs0)) >=
            static_cast<SWord>(rs(in.rs1)))
            branchTo(static_cast<std::int32_t>(thisPc) + in.imm);
        break;
      case Opcode::Bltu:
        if (rs(in.rs0) < rs(in.rs1))
            branchTo(static_cast<std::int32_t>(thisPc) + in.imm);
        break;
      case Opcode::Bgeu:
        if (rs(in.rs0) >= rs(in.rs1))
            branchTo(static_cast<std::int32_t>(thisPc) + in.imm);
        break;

      case Opcode::Jal:
        setReg(in.rd0, nextPc);
        branchTo(in.imm);
        break;
      case Opcode::Jalr: {
        Word target = rs(in.rs0) + simm();
        setReg(in.rd0, nextPc);
        branchTo(static_cast<std::int32_t>(target));
        break;
      }

      case Opcode::Send: {
        if (!hub_)
            fatal("SEND executed on a core without a message hub");
        auto dst = static_cast<TileId>(rs(in.rs1));
        if (Tracer::enabled())
            Tracer::instance().instant(
                Tracer::pidTiles, id_, "SEND", time_,
                {{"dst", static_cast<std::uint64_t>(dst)},
                 {"tag", static_cast<std::uint64_t>(in.imm)}});
        chargeStall(hub_->send(id_, dst, in.imm, rs(in.rs0), time_),
                    sendStall_, "stall send");
        ++msgsSent_;
        break;
      }
      case Opcode::Recv: {
        if (!hub_)
            fatal("RECV executed on a core without a message hub");
        auto src = static_cast<TileId>(rs(in.rs0));
        auto msg = hub_->tryRecv(id_, src, in.imm);
        if (!msg) {
            // Roll the PC back; the scheduler will retry once time
            // has advanced past a sender.
            pc_ = thisPc;
            time_ -= 1; // undo the base cycle; nothing retired
            pendingRecv_ = PendingRecv{src, in.imm};
            return StepResult::Blocked;
        }
        pendingRecv_.reset();
        setReg(in.rd0, msg->first);
        if (msg->second > time_) {
            Cycles arrival = msg->second;
            recvWait_ += arrival - time_;
            if (Tracer::enabled()) {
                traceFlushExec(time_);
                Tracer::instance().slice(
                    Tracer::pidTiles, id_, "wait recv", time_, arrival,
                    {{"src", static_cast<std::uint64_t>(src)},
                     {"tag", static_cast<std::uint64_t>(in.imm)}});
                execStart_ = arrival;
            }
            time_ = arrival;
        }
        if (Tracer::enabled())
            Tracer::instance().instant(
                Tracer::pidTiles, id_, "RECV", time_,
                {{"src", static_cast<std::uint64_t>(src)},
                 {"tag", static_cast<std::uint64_t>(in.imm)}});
        ++msgsReceived_;
        break;
      }

      case Opcode::Cust: {
        if (!custom_)
            fatal("CUST executed on a core without a custom handler");
        if (in.cfg >= prog_.iseTable().size())
            fatal("CUST cfg index ", in.cfg, " outside ISE table of ",
                  prog_.name());
        if (Tracer::enabled())
            Tracer::instance().instant(
                Tracer::pidTiles, id_, "CUST", time_,
                {{"cfg", static_cast<std::uint64_t>(in.cfg)}});
        std::array<Word, 4> operands = {rs(in.rs0), rs(in.rs1),
                                        rs(in.rs2), rs(in.rs3)};
        auto res = custom_->executeCustom(
            id_, prog_.iseTable()[in.cfg], operands);
        if (res.writeRd0)
            setReg(in.rd0, res.rd0);
        if (res.writeRd1)
            setReg(in.rd1, res.rd1);
        ++customInstrs_;
        break;
      }

      case Opcode::NumOpcodes:
        STITCH_PANIC("executed NumOpcodes");
    }

    return StepResult::Ok;
}

StepResult
Core::runSlice(std::uint64_t budget, std::uint64_t &executed,
               Cycles horizonTime, TileId horizonTile, bool relaxed)
{
    STITCH_ASSERT(!halted_, "slice dispatched to a halted core");
    while (true) {
        std::int32_t idx = instrIndexAt(pc_);
        const Instr &in = prog_.code()[static_cast<std::size_t>(idx)];

        if (relaxed &&
            (in.op == Opcode::Send || in.op == Opcode::Recv ||
             in.op == Opcode::Cust) &&
            (time_ > horizonTime ||
             (time_ == horizonTime && id_ > horizonTile)))
            // A globally visible operation while another tile holds
            // the smaller key: yield unexecuted. The comm op runs on
            // a later slice, once this core is the global minimum
            // again — at the same local time, so in the same global
            // order as under the step scheduler.
            return StepResult::Ok;

        StepResult result = execute(in);
        ++executed; // every attempt consumes budget, blocked included
        if (result == StepResult::Ok ||
            result == StepResult::Halted) {
            ++retired_;
            ++execCounts_[static_cast<std::size_t>(idx)];
            ++instrCount_;
        }
        if (result != StepResult::Ok)
            return result; // halted or blocked in RECV
        if (in.op == Opcode::Send)
            return result; // wake-ups may change the run queue
        if (executed >= budget)
            return result; // instruction budget exhausted
        if (!relaxed &&
            (time_ > horizonTime ||
             (time_ == horizonTime && id_ > horizonTile)))
            return result; // another tile is now the global minimum
    }
}

Cycles
Core::runToHalt(std::uint64_t maxInstructions)
{
    while (!halted_) {
        StepResult r = step();
        if (r == StepResult::Blocked)
            fatal("standalone core ", id_, " blocked on RECV in ",
                  prog_.name());
        if (!halted_ && retired_ >= maxInstructions)
            fatal("program ", prog_.name(), " exceeded ",
                  maxInstructions, " instructions; runaway loop?");
    }
    return time_;
}

} // namespace stitch::cpu

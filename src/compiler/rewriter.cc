#include "compiler/rewriter.hh"

#include <algorithm>
#include <set>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "compiler/liveness.hh"
#include "isa/assembler.hh"

namespace stitch::compiler
{

using isa::Instr;
using isa::Opcode;

namespace
{

/**
 * Registers usable for hoisted immediates: the four reserved scratch
 * registers s6..s9, plus any register the program never touches (the
 * freedom a real register allocator would have). Capped to keep the
 * preamble reasonable.
 */
std::vector<RegId>
scratchPool(const isa::Program &prog)
{
    std::array<bool, numRegs> touched{};
    for (const auto &in : prog.code()) {
        for (RegId r : instrReads(in))
            touched[static_cast<std::size_t>(r)] = true;
        RegId d = instrDef(in);
        if (d >= 0)
            touched[static_cast<std::size_t>(d)] = true;
        RegId d2 = instrDef2(in);
        if (d2 >= 0)
            touched[static_cast<std::size_t>(d2)] = true;
    }
    std::vector<RegId> pool;
    for (RegId r = firstScratchReg; r < numRegs; ++r)
        pool.push_back(r);
    for (RegId r = firstScratchReg - 1; r >= 1; --r) {
        if (pool.size() >= 12)
            break;
        if (!touched[static_cast<std::size_t>(r)])
            pool.push_back(r);
    }
    return pool;
}

/** Role of one original instruction under the selections. */
struct Role
{
    bool covered = false;
    const SelectedIse *lastOf = nullptr; ///< set at the sink position
    const Dfg *dfg = nullptr;
};

/** Distinct non-zero immediates a selection needs in registers. */
std::vector<std::int32_t>
immediatesOf(const SelectedIse &sel)
{
    std::vector<std::int32_t> imms;
    for (int p = 0; p < 4; ++p) {
        int ext = sel.map.portExternal[static_cast<std::size_t>(p)];
        if (ext < 0)
            continue;
        const OperandRef &ref =
            sel.cand.externals[static_cast<std::size_t>(ext)].ref;
        if (ref.kind == OperandRef::Kind::Imm && ref.imm != 0 &&
            std::find(imms.begin(), imms.end(), ref.imm) == imms.end())
            imms.push_back(ref.imm);
    }
    return imms;
}

/** Emit `li reg, imm` (1-2 instructions) with the given origin. */
void
emitLi(std::vector<Instr> &out, std::vector<std::size_t> &origins,
       std::size_t origin, RegId reg, std::int32_t imm)
{
    if (fitsSigned(imm, 16)) {
        Instr li;
        li.op = Opcode::Addi;
        li.rd0 = reg;
        li.rs0 = 0;
        li.imm = imm;
        out.push_back(li);
        origins.push_back(origin);
        return;
    }
    Instr lui;
    lui.op = Opcode::Lui;
    lui.rd0 = reg;
    lui.imm = imm >> 11;
    out.push_back(lui);
    origins.push_back(origin);
    std::int32_t lower = imm & 0x7ff;
    if (lower != 0) {
        Instr ori;
        ori.op = Opcode::Ori;
        ori.rd0 = reg;
        ori.rs0 = reg;
        ori.imm = lower;
        out.push_back(ori);
        origins.push_back(origin);
    }
}

} // namespace

RewrittenProgram
rewriteProgram(const isa::Program &prog,
               const std::vector<BasicBlock> &blocks,
               const std::map<std::size_t, std::vector<SelectedIse>>
                   &selections,
               const std::map<std::size_t, Dfg> &dfgs)
{
    RewrittenProgram out;
    const auto &code = prog.code();

    // ---- Immediate pool -------------------------------------------------
    // Hoisted immediates live in s6..s9, written once at program
    // entry. If more than four distinct values are needed, drop the
    // selections using the least valuable ones (dropping a selection
    // is always sound — the original instructions stay).
    struct LiveSel
    {
        std::size_t blockIdx;
        const SelectedIse *sel;
    };
    std::vector<LiveSel> live;
    for (const auto &[blockIdx, sels] : selections)
        for (const auto &sel : sels)
            live.push_back(LiveSel{blockIdx, &sel});

    auto distinctImms = [&] {
        std::vector<std::int32_t> imms;
        for (const auto &ls : live)
            for (auto imm : immediatesOf(*ls.sel))
                if (std::find(imms.begin(), imms.end(), imm) ==
                    imms.end())
                    imms.push_back(imm);
        return imms;
    };

    const std::vector<RegId> poolRegs = scratchPool(prog);
    std::vector<std::int32_t> pool = distinctImms();
    while (pool.size() > poolRegs.size()) {
        // Find the immediate whose users save the least in total.
        std::int32_t victim = 0;
        std::int64_t victimValue = 0;
        bool first = true;
        for (auto imm : pool) {
            std::int64_t value = 0;
            for (const auto &ls : live) {
                auto imms = immediatesOf(*ls.sel);
                if (std::find(imms.begin(), imms.end(), imm) !=
                    imms.end())
                    value += ls.sel->savedPerExec;
            }
            if (first || value < victimValue) {
                victim = imm;
                victimValue = value;
                first = false;
            }
        }
        live.erase(std::remove_if(
                       live.begin(), live.end(),
                       [&](const LiveSel &ls) {
                           auto imms = immediatesOf(*ls.sel);
                           return std::find(imms.begin(), imms.end(),
                                            victim) != imms.end();
                       }),
                   live.end());
        pool = distinctImms();
    }

    auto poolRegOf = [&](std::int32_t imm) -> RegId {
        for (std::size_t i = 0; i < pool.size(); ++i)
            if (pool[i] == imm)
                return poolRegs[i];
        STITCH_PANIC("immediate missing from the scratch pool");
    };

    // ---- Per-instruction roles -----------------------------------------
    std::vector<Role> roles(code.size());
    for (const auto &ls : live) {
        const BasicBlock &bb = blocks[ls.blockIdx];
        auto dfgIt = dfgs.find(ls.blockIdx);
        STITCH_ASSERT(dfgIt != dfgs.end(),
                      "selections without a matching DFG");
        for (int nodeId : ls.sel->cand.nodes) {
            std::size_t instrIdx =
                bb.begin + static_cast<std::size_t>(nodeId);
            STITCH_ASSERT(instrIdx < bb.end);
            Role &role = roles[instrIdx];
            STITCH_ASSERT(!role.covered, "overlapping ISE selections");
            role.covered = true;
        }
        std::size_t last =
            bb.begin +
            static_cast<std::size_t>(ls.sel->cand.nodes.back());
        roles[last].lastOf = ls.sel;
        roles[last].dfg = &dfgIt->second;
    }

    // ---- Emission ---------------------------------------------------------
    isa::Program result(prog.name());
    std::vector<Instr> newCode;
    std::vector<std::size_t> origins;

    for (auto imm : pool) {
        // Preamble carries origin 0: a branch to the old entry simply
        // re-runs these idempotent moves.
        emitLi(newCode, origins, 0, poolRegOf(imm), imm);
    }

    for (std::size_t idx = 0; idx < code.size(); ++idx) {
        const Role &role = roles[idx];
        if (role.covered && !role.lastOf)
            continue;
        if (!role.covered) {
            newCode.push_back(code[idx]);
            origins.push_back(idx);
            continue;
        }

        const SelectedIse &sel = *role.lastOf;
        const Dfg &dfg = *role.dfg;

        std::array<RegId, 4> portReg = {0, 0, 0, 0};
        for (int p = 0; p < 4; ++p) {
            int ext = sel.map.portExternal[static_cast<std::size_t>(p)];
            if (ext < 0)
                continue;
            const OperandRef &ref =
                sel.cand.externals[static_cast<std::size_t>(ext)].ref;
            switch (ref.kind) {
              case OperandRef::Kind::Reg:
                portReg[static_cast<std::size_t>(p)] = ref.reg;
                break;
              case OperandRef::Kind::Node: {
                auto def = dfg.node(ref.node).def;
                STITCH_ASSERT(def.has_value(),
                              "external producer without a register");
                portReg[static_cast<std::size_t>(p)] = *def;
                break;
              }
              case OperandRef::Kind::Imm:
                portReg[static_cast<std::size_t>(p)] =
                    ref.imm == 0 ? 0 : poolRegOf(ref.imm);
                break;
            }
        }

        auto defRegOf = [&](int nodeId) -> RegId {
            if (nodeId < 0)
                return 0;
            auto def = dfg.node(nodeId).def;
            STITCH_ASSERT(def.has_value(), "output node without def");
            return *def;
        };

        std::uint64_t blob;
        if (sel.map.isLocus) {
            blob = out.microTable.size();
            out.microTable.push_back(sel.map.micro);
        } else {
            blob = sel.map.cfg.packBlob();
            if (sel.map.cfg.usesRemote)
                ++out.fusedCustCount;
        }

        Instr cust;
        cust.op = Opcode::Cust;
        cust.rd0 = defRegOf(sel.map.rd0Node);
        cust.rd1 = defRegOf(sel.map.rd1Node);
        cust.rs0 = portReg[0];
        cust.rs1 = portReg[1];
        cust.rs2 = portReg[2];
        cust.rs3 = portReg[3];
        cust.cfg = result.addIseConfig(blob);
        newCode.push_back(cust);
        origins.push_back(idx);
        ++out.custCount;
    }

    for (const auto &in : newCode)
        result.append(in);

    auto newIndexOfOldIndex = [&](std::size_t oldIdx) -> std::size_t {
        auto it = std::lower_bound(origins.begin(), origins.end(),
                                   oldIdx);
        STITCH_ASSERT(it != origins.end(),
                      "branch target beyond rewritten program");
        return static_cast<std::size_t>(it - origins.begin());
    };

    // Retarget control flow.
    for (std::size_t newIdx = 0; newIdx < newCode.size(); ++newIdx) {
        Instr &in = result.mutableCode()[newIdx];
        std::size_t oldIdx = origins[newIdx];
        switch (in.op) {
          case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
          case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu: {
            auto oldTargetWord = static_cast<Addr>(
                static_cast<std::int64_t>(prog.wordAddrOf(oldIdx)) +
                in.imm);
            std::size_t oldTarget =
                prog.indexOfWordAddr(oldTargetWord);
            std::size_t newTarget = newIndexOfOldIndex(oldTarget);
            in.imm = static_cast<std::int32_t>(
                         result.wordAddrOf(newTarget)) -
                     static_cast<std::int32_t>(
                         result.wordAddrOf(newIdx));
            break;
          }
          case Opcode::Jal: {
            std::size_t oldTarget = prog.indexOfWordAddr(
                static_cast<Addr>(in.imm));
            std::size_t newTarget = newIndexOfOldIndex(oldTarget);
            in.imm = static_cast<std::int32_t>(
                result.wordAddrOf(newTarget));
            break;
          }
          default:
            break;
        }
    }

    for (const auto &seg : prog.data())
        result.addData(seg.base, seg.bytes);

    out.program = std::move(result);
    return out;
}

} // namespace stitch::compiler

#include "compiler/liveness.hh"

#include "common/logging.hh"

namespace stitch::compiler
{

using isa::Instr;
using isa::Opcode;

std::vector<RegId>
instrReads(const Instr &in)
{
    std::vector<RegId> reads;
    auto push = [&](RegId r) {
        if (r != 0)
            reads.push_back(r);
    };
    switch (isa::formatOf(in.op)) {
      case isa::Format::N:
        break;
      case isa::Format::R:
        push(in.rs0);
        push(in.rs1);
        break;
      case isa::Format::I:
        push(in.rs0);
        break;
      case isa::Format::S:
      case isa::Format::B:
        push(in.rs0);
        push(in.rs1);
        break;
      case isa::Format::J:
        break;
      case isa::Format::C:
        push(in.rs0);
        push(in.rs1);
        push(in.rs2);
        push(in.rs3);
        break;
    }
    return reads;
}

RegId
instrDef(const Instr &in)
{
    switch (in.op) {
      case Opcode::Sw:
      case Opcode::Sb:
      case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
      case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu:
      case Opcode::Send:
      case Opcode::Nop:
      case Opcode::Halt:
        return -1;
      default:
        return in.rd0 == 0 ? -1 : in.rd0;
    }
}

RegId
instrDef2(const Instr &in)
{
    if (in.op == Opcode::Cust && in.rd1 != 0)
        return in.rd1;
    return -1;
}

namespace
{

/** Successor block indices + "indirect exit" flags. */
void
buildCfg(const isa::Program &prog,
         const std::vector<BasicBlock> &blocks,
         std::vector<std::vector<std::size_t>> &succs,
         std::vector<bool> &indirectExit)
{
    const auto &code = prog.code();
    const std::size_t n = blocks.size();

    std::vector<std::size_t> blockOf(code.size(), SIZE_MAX);
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t i = blocks[b].begin; i < blocks[b].end; ++i)
            blockOf[i] = b;

    succs.assign(n, {});
    indirectExit.assign(n, false);
    for (std::size_t b = 0; b < n; ++b) {
        std::size_t last = blocks[b].end - 1;
        const Instr &in = code[last];
        auto addTarget = [&](std::size_t idx) {
            if (idx < code.size() && blockOf[idx] != SIZE_MAX)
                succs[b].push_back(blockOf[idx]);
        };
        switch (in.op) {
          case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
          case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu: {
            auto wa = static_cast<Addr>(
                static_cast<std::int64_t>(prog.wordAddrOf(last)) +
                in.imm);
            addTarget(prog.indexOfWordAddr(wa));
            addTarget(last + 1);
            break;
          }
          case Opcode::Jal:
            addTarget(prog.indexOfWordAddr(
                static_cast<Addr>(in.imm)));
            break;
          case Opcode::Jalr:
            indirectExit[b] = true;
            break;
          case Opcode::Halt:
            break;
          default:
            addTarget(last + 1);
            break;
        }
    }
}

} // namespace

std::vector<std::set<RegId>>
blockLiveOuts(const isa::Program &prog,
              const std::vector<BasicBlock> &blocks)
{
    const auto &code = prog.code();
    const std::size_t n = blocks.size();

    std::vector<std::vector<std::size_t>> succs;
    std::vector<bool> allLiveAtExit;
    buildCfg(prog, blocks, succs, allLiveAtExit);

    // Per-block use/def.
    std::vector<std::set<RegId>> use(n), def(n);
    for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t i = blocks[b].begin; i < blocks[b].end; ++i) {
            for (RegId r : instrReads(code[i]))
                if (!def[b].count(r))
                    use[b].insert(r);
            RegId d = instrDef(code[i]);
            if (d >= 0)
                def[b].insert(d);
            RegId d2 = instrDef2(code[i]);
            if (d2 >= 0)
                def[b].insert(d2);
        }
    }

    std::set<RegId> everything;
    for (RegId r = 1; r < numRegs; ++r)
        everything.insert(r);

    // Backward fixpoint.
    std::vector<std::set<RegId>> liveIn(n), liveOut(n);
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = n; b-- > 0;) {
            std::set<RegId> out;
            if (allLiveAtExit[b]) {
                out = everything;
            } else {
                for (std::size_t s : succs[b])
                    out.insert(liveIn[s].begin(), liveIn[s].end());
            }
            std::set<RegId> in = use[b];
            for (RegId r : out)
                if (!def[b].count(r))
                    in.insert(r);
            if (out != liveOut[b] || in != liveIn[b]) {
                liveOut[b] = std::move(out);
                liveIn[b] = std::move(in);
                changed = true;
            }
        }
    }
    return liveOut;
}

std::vector<std::set<RegId>>
blockSpmPointers(const isa::Program &prog,
                 const std::vector<BasicBlock> &blocks,
                 const std::vector<RegId> &entrySeed)
{
    const auto &code = prog.code();
    const std::size_t n = blocks.size();

    std::vector<std::vector<std::size_t>> succs;
    std::vector<bool> indirectExit;
    buildCfg(prog, blocks, succs, indirectExit);

    std::vector<std::vector<std::size_t>> preds(n);
    for (std::size_t b = 0; b < n; ++b)
        for (std::size_t s : succs[b])
            preds[s].push_back(b);

    // Transfer function over one instruction.
    auto apply = [&](const Instr &in, std::set<RegId> &set) {
        RegId d = instrDef(in);
        if (d < 0)
            return;
        bool taint = false;
        switch (in.op) {
          case Opcode::Lui:
            taint = (static_cast<Word>(in.imm) << 11) >= 0x80000000u;
            break;
          case Opcode::Addi:
          case Opcode::Ori:
            taint = set.count(in.rs0) > 0;
            break;
          case Opcode::Add:
            taint = set.count(in.rs0) > 0 || set.count(in.rs1) > 0;
            break;
          case Opcode::Sub:
            // pointer - integer stays a pointer; anything else not.
            taint = set.count(in.rs0) > 0 && !set.count(in.rs1);
            break;
          default:
            break;
        }
        if (taint)
            set.insert(d);
        else
            set.erase(d);
        RegId d2 = instrDef2(in);
        if (d2 >= 0)
            set.erase(d2);
    };

    std::set<RegId> top;
    for (RegId r = 1; r < numRegs; ++r)
        top.insert(r);

    std::vector<std::set<RegId>> in(n, top), out(n, top);
    if (n > 0)
        in[0] = std::set<RegId>(entrySeed.begin(), entrySeed.end());

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < n; ++b) {
            std::set<RegId> newIn;
            if (b == 0) {
                newIn = std::set<RegId>(entrySeed.begin(),
                                        entrySeed.end());
            } else if (preds[b].empty()) {
                newIn = top; // unreachable
            } else {
                newIn = out[preds[b][0]];
                for (std::size_t i = 1; i < preds[b].size(); ++i) {
                    std::set<RegId> meet;
                    for (RegId r : newIn)
                        if (out[preds[b][i]].count(r))
                            meet.insert(r);
                    newIn = std::move(meet);
                }
            }
            std::set<RegId> newOut = newIn;
            for (std::size_t i = blocks[b].begin; i < blocks[b].end;
                 ++i)
                apply(code[i], newOut);
            if (newIn != in[b] || newOut != out[b]) {
                in[b] = std::move(newIn);
                out[b] = std::move(newOut);
                changed = true;
            }
        }
    }
    return in;
}

} // namespace stitch::compiler

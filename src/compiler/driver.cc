#include "compiler/driver.hh"

#include "compiler/liveness.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/locus.hh"
#include "cpu/patch_handler.hh"
#include "mem/addrmap.hh"

namespace stitch::compiler
{

const KernelVariant *
CompiledKernel::find(const AccelTarget &target) const
{
    for (const auto &v : variants)
        if (v.target == target)
            return &v;
    return nullptr;
}

const KernelVariant *
CompiledKernel::bestSinglePatch() const
{
    const KernelVariant *best = nullptr;
    for (const auto &v : variants) {
        if (v.target.type != AccelTarget::Type::SinglePatch)
            continue;
        if (!best || v.cycles < best->cycles)
            best = &v;
    }
    return best;
}

const KernelVariant *
CompiledKernel::bestStitch() const
{
    const KernelVariant *best = nullptr;
    for (const auto &v : variants) {
        if (v.target.type == AccelTarget::Type::Locus)
            continue;
        if (!best || v.cycles < best->cycles)
            best = &v;
    }
    return best;
}

const KernelVariant *
CompiledKernel::locusVariant() const
{
    for (const auto &v : variants)
        if (v.target.type == AccelTarget::Type::Locus)
            return &v;
    return nullptr;
}

std::vector<AccelTarget>
allStitchTargets()
{
    using core::PatchKind;
    std::vector<AccelTarget> targets;
    const PatchKind kinds[] = {PatchKind::ATMA, PatchKind::ATAS,
                               PatchKind::ATSA};
    for (auto k : kinds)
        targets.push_back(AccelTarget::single(k));
    for (auto a : kinds)
        for (auto b : kinds)
            targets.push_back(AccelTarget::fused(a, b));
    return targets;
}

namespace
{

/** Stub hub matching the profiler's semantics. */
class StubHub : public cpu::MessageHub
{
  public:
    Cycles
    send(TileId, TileId, int, Word, Cycles) override
    {
        return 1;
    }

    std::optional<std::pair<Word, Cycles>>
    tryRecv(TileId, TileId, int) override
    {
        return std::make_pair(Word{0}, Cycles{0});
    }
};

std::vector<std::vector<std::uint8_t>>
snapshotRegions(mem::TileMemory &memory,
                const std::vector<OutputRegion> &regions)
{
    std::vector<std::vector<std::uint8_t>> out;
    for (const auto &r : regions) {
        std::vector<std::uint8_t> bytes;
        bytes.reserve(r.bytes);
        for (Addr i = 0; i < r.bytes; ++i) {
            Addr a = r.base + i;
            if (mem::isSpmAddr(a)) {
                Word w = memory.spmLoadWord(a & ~Addr{3});
                bytes.push_back(static_cast<std::uint8_t>(
                    (w >> (8 * (a & 3))) & 0xff));
            } else {
                bytes.push_back(memory.backing().readByte(a));
            }
        }
        out.push_back(std::move(bytes));
    }
    return out;
}

} // namespace

Cycles
measureBinary(const RewrittenProgram &binary,
              const std::optional<AccelTarget> &target,
              const mem::MemParams &memParams,
              std::vector<std::vector<std::uint8_t>> *outputDump,
              const std::vector<OutputRegion> *regions)
{
    mem::TileMemory memory(memParams);
    StubHub hub;

    std::unique_ptr<cpu::CustomHandler> handler;
    core::LocusSfu *locus = nullptr;
    if (target) {
        if (target->type == AccelTarget::Type::Locus) {
            auto sfu = std::make_unique<core::LocusSfu>();
            locus = sfu.get();
            handler = std::move(sfu);
        } else {
            handler = std::make_unique<cpu::LocalPatchHandler>(
                target->local, memory);
        }
    }
    if (locus)
        locus->installTable(binary.microTable);

    cpu::Core core(0, memory, handler.get(), &hub);
    core.loadProgram(binary.program);
    core.runToHalt();

    if (outputDump && regions)
        *outputDump = snapshotRegions(memory, *regions);
    return core.time();
}

CompiledKernel
compileKernel(const std::string &name, const KernelInput &input,
              const CompilerOptions &options)
{
    CompiledKernel out;
    out.name = name;
    out.software = input.program;
    out.software.setName(name);

    // 1. Profile the software version and find hot blocks.
    ProfileResult profile =
        profileProgram(out.software, options.profile);
    out.softwareCycles = profile.totalCycles;

    // 2. Build DFGs of the hot blocks (with block liveness so dead
    //    loop scratch is not mistaken for an output); harvest chain
    //    strings.
    auto liveOuts = blockLiveOuts(out.software, profile.blocks);
    auto spmIns = blockSpmPointers(out.software, profile.blocks,
                                   input.spmBaseRegs);
    std::map<std::size_t, Dfg> dfgs;
    for (std::size_t blockIdx : profile.hotBlocks) {
        std::vector<RegId> spm_regs(spmIns[blockIdx].begin(),
                                    spmIns[blockIdx].end());
        Dfg dfg = Dfg::build(out.software, profile.blocks[blockIdx],
                             spm_regs, &liveOuts[blockIdx]);
        for (auto &chain : extractChains(dfg))
            out.chainStrings.push_back(std::move(chain));
        dfgs.emplace(blockIdx, std::move(dfg));
    }

    // Reference outputs from the software run.
    std::vector<std::vector<std::uint8_t>> goldenOutputs;
    RewrittenProgram softwareBinary;
    softwareBinary.program = out.software;
    measureBinary(softwareBinary, std::nullopt, options.profile.mem,
                  &goldenOutputs, &input.outputs);

    // 3-5. Identify, map, select, rewrite and measure per target.
    std::vector<AccelTarget> targets = allStitchTargets();
    targets.push_back(AccelTarget::locus());

    // Candidates are target independent; enumerate once per block.
    std::map<std::size_t, std::vector<IseCandidate>> candidates;
    for (const auto &[blockIdx, dfg] : dfgs)
        candidates.emplace(blockIdx,
                           identifyCandidates(dfg, options.ident));

    for (const auto &target : targets) {
        std::map<std::size_t, std::vector<SelectedIse>> selections;
        for (const auto &[blockIdx, dfg] : dfgs) {
            auto sels = selectIses(dfg, candidates[blockIdx], target,
                                   options.locus);
            if (!sels.empty())
                selections.emplace(blockIdx, std::move(sels));
        }

        KernelVariant variant;
        variant.target = target;
        if (selections.empty()) {
            variant.binary.program = out.software;
            variant.cycles = out.softwareCycles;
            variant.speedup = 1.0;
            out.variants.push_back(std::move(variant));
            continue;
        }

        variant.binary = rewriteProgram(out.software, profile.blocks,
                                        selections, dfgs);

        std::vector<std::vector<std::uint8_t>> outputs;
        variant.cycles =
            measureBinary(variant.binary, target, options.profile.mem,
                          &outputs, &input.outputs);
        if (options.validate && outputs != goldenOutputs) {
            fatal("variant ", target.name(), " of kernel ", name,
                  " produced outputs differing from software");
        }
        variant.speedup =
            static_cast<double>(out.softwareCycles) /
            static_cast<double>(std::max<Cycles>(variant.cycles, 1));
        out.variants.push_back(std::move(variant));
    }

    return out;
}

} // namespace stitch::compiler

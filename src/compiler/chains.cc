#include "compiler/chains.hh"

#include <algorithm>
#include <map>
#include <set>

namespace stitch::compiler
{

std::vector<std::string>
extractChains(const Dfg &dfg)
{
    std::vector<std::string> chains;

    // Dataflow adjacency among includable nodes.
    auto succs = [&](int id) {
        std::vector<int> out;
        for (int s : dfg.consumersOf(id))
            if (dfg.node(s).includable()) {
                // Only true dataflow edges from operand lists.
                for (const auto &ref : dfg.node(s).operands)
                    if (ref.kind == OperandRef::Kind::Node &&
                        ref.node == id) {
                        out.push_back(s);
                        break;
                    }
            }
        return out;
    };

    std::set<int> hasIncludablePred;
    for (int id = 0; id < dfg.size(); ++id) {
        if (!dfg.node(id).includable())
            continue;
        for (int s : succs(id))
            hasIncludablePred.insert(s);
    }

    // Depth-first maximal paths from every chain head.
    for (int id = 0; id < dfg.size(); ++id) {
        if (!dfg.node(id).includable() || hasIncludablePred.count(id))
            continue;
        std::vector<std::pair<int, std::string>> stack;
        stack.emplace_back(
            id, std::string(1, core::opClassCode(
                                   dfg.node(id).opClass())));
        while (!stack.empty()) {
            auto [at, chain] = stack.back();
            stack.pop_back();
            auto next = succs(at);
            if (next.empty()) {
                chains.push_back(chain);
                continue;
            }
            for (int s : next)
                stack.emplace_back(
                    s, chain + core::opClassCode(
                                   dfg.node(s).opClass()));
        }
    }
    return chains;
}

namespace
{

/** All substrings with length in [minLength, maxLength]. */
std::set<std::string>
substringsOf(const KernelChains &k, std::size_t minLength,
             std::size_t maxLength)
{
    std::set<std::string> subs;
    for (const auto &chain : k.chains) {
        for (std::size_t i = 0; i < chain.size(); ++i)
            for (std::size_t len = minLength;
                 len <= maxLength && i + len <= chain.size(); ++len)
                subs.insert(chain.substr(i, len));
    }
    return subs;
}

/** Remove every occurrence of `pattern`, splitting into fragments. */
std::vector<std::string>
removePattern(const std::vector<std::string> &chains,
              const std::string &pattern)
{
    std::vector<std::string> out;
    for (const auto &chain : chains) {
        std::string rest = chain;
        std::size_t pos;
        std::size_t searchFrom = 0;
        while ((pos = rest.find(pattern, searchFrom)) !=
               std::string::npos) {
            out.push_back(rest.substr(0, pos));
            rest = rest.substr(pos + pattern.size());
            searchFrom = 0;
        }
        out.push_back(rest);
    }
    out.erase(std::remove_if(out.begin(), out.end(),
                             [](const std::string &s) {
                                 return s.empty();
                             }),
              out.end());
    return out;
}

} // namespace

std::vector<ChainStat>
mineChains(const std::vector<KernelChains> &kernels, int maxRounds,
           std::size_t minLength, std::size_t maxLength)
{
    std::vector<ChainStat> stats;
    std::vector<KernelChains> work = kernels;
    int totalKernels = static_cast<int>(kernels.size());
    if (totalKernels == 0)
        return stats;

    for (int round = 1; round <= maxRounds; ++round) {
        // Count, for each substring, how many kernels contain it.
        std::map<std::string, int> contained;
        for (const auto &k : work)
            for (const auto &sub :
                 substringsOf(k, minLength, maxLength))
                ++contained[sub];

        // Pick the most common substring present in >= 2 kernels;
        // ties break toward longer chains, then lexicographically.
        std::string best;
        int bestCount = 0;
        for (const auto &[sub, count] : contained) {
            if (count < 2)
                continue;
            bool better = false;
            if (count != bestCount)
                better = count > bestCount;
            else if (sub.size() != best.size())
                better = sub.size() > best.size();
            else
                better = sub < best;
            if (best.empty() || better) {
                best = sub;
                bestCount = count;
            }
        }
        if (best.empty())
            break;

        ChainStat stat;
        stat.chain = best;
        stat.round = round;
        stat.kernelsContaining = bestCount;
        stat.occurrenceRate =
            static_cast<double>(bestCount) /
            static_cast<double>(totalKernels);
        stats.push_back(stat);

        for (auto &k : work)
            k.chains = removePattern(k.chains, best);
    }
    return stats;
}

} // namespace stitch::compiler

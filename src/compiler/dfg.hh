/**
 * @file
 * Basic blocks and the dependence/dataflow graphs the ISE tool chain
 * works on (paper Section IV, Figure 6: "hot basic blocks are
 * represented as dataflow graphs").
 *
 * For each basic block we build one graph over *all* of its
 * instructions with four edge families: RAW (dataflow), WAR, WAW, and
 * memory-ordering edges. Dataflow edges give the computational
 * pattern; the full edge set is what makes "sink the candidate to its
 * last instruction" a sound rewrite (see ise_ident.hh).
 *
 * A node is *includable* in a custom instruction if the patch fabric
 * can express it: ALU ops (class A), multiplies (M), shifts (S), and
 * SPM-resident loads/stores (T). Everything else (branches, cached
 * memory ops, messages, ...) participates in the graph only as an
 * ordering obstacle.
 */

#ifndef STITCH_COMPILER_DFG_HH
#define STITCH_COMPILER_DFG_HH

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/ops.hh"
#include "isa/program.hh"

namespace stitch::compiler
{

/** A maximal straight-line region of a program. */
struct BasicBlock
{
    std::size_t begin = 0;      ///< first instruction index
    std::size_t end = 0;        ///< one past the last instruction
    std::uint64_t execCount = 0; ///< times the block ran (profile)

    std::size_t size() const { return end - begin; }
};

/** Where a DFG operand comes from. */
struct OperandRef
{
    enum class Kind
    {
        Node, ///< output of another node in the same block
        Reg,  ///< register live into the block
        Imm,  ///< immediate baked into the instruction
    };

    Kind kind = Kind::Reg;
    int node = -1;           ///< valid when kind == Node
    RegId reg = 0;           ///< valid when kind == Reg
    std::int32_t imm = 0;    ///< valid when kind == Imm

    bool operator==(const OperandRef &) const = default;
};

/** Operation kind of an includable node. */
enum class NodeOp : std::uint8_t
{
    Alu,   ///< class A, with an AluOp
    Mul,   ///< class M
    Shift, ///< class S, with a ShiftOp
    Load,  ///< class T (SPM-resident)
    Store, ///< class T (SPM-resident)
    Other, ///< not includable (barrier node)
};

/** One instruction of the block, viewed as a graph node. */
struct DfgNode
{
    std::size_t instrIndex = 0; ///< index into the program's code
    NodeOp op = NodeOp::Other;
    core::AluOp aluOp = core::AluOp::Pass;   ///< when op == Alu
    core::ShiftOp shiftOp = core::ShiftOp::Pass; ///< when op == Shift

    /**
     * Dataflow operands. Alu/Mul/Shift: {lhs, rhs}. Load: {address}.
     * Store: {address, data}. Other: every register it reads.
     */
    std::vector<OperandRef> operands;

    /** Destination register, if the instruction writes one. */
    std::optional<RegId> def;

    /** True if the node touches memory and which space. */
    bool isMem = false;
    bool isSpmMem = false;

    bool includable() const { return op != NodeOp::Other; }

    /** Paper Section III-A operation class (A/M/S/T). */
    core::OpClass opClass() const;
};

/**
 * The per-block graph. Node ids are positions within the block
 * (0 = first instruction), so id order is program order.
 */
class Dfg
{
  public:
    const std::vector<DfgNode> &nodes() const { return nodes_; }
    const DfgNode &node(int id) const
    {
        return nodes_[static_cast<std::size_t>(id)];
    }
    int size() const { return static_cast<int>(nodes_.size()); }

    /**
     * All ordering edges (RAW + WAR + WAW + memory), as adjacency
     * lists from earlier to later nodes. Used by the sinking check.
     */
    const std::vector<std::vector<int>> &orderSuccs() const
    {
        return orderSuccs_;
    }

    /** Dataflow (RAW) successors only; the computational pattern. */
    const std::vector<std::vector<int>> &dataSuccs() const
    {
        return dataSuccs_;
    }

    /**
     * Registers whose value leaves the block alive: def not followed
     * by a redefinition inside the block. (Conservatively, such a
     * value is always treated as live-out.)
     */
    bool defIsLastOfReg(int nodeId) const;

    /**
     * True if the value defined by `nodeId` may be observed after the
     * block: it is the register's last in-block def AND the register
     * is in the block's live-out set (when one was supplied to
     * build(); without liveness information this is conservative and
     * equals defIsLastOfReg).
     */
    bool defEscapesBlock(int nodeId) const;

    /** Dataflow consumers of `nodeId` inside the block. */
    const std::vector<int> &consumersOf(int nodeId) const
    {
        return dataSuccs_[static_cast<std::size_t>(nodeId)];
    }

    /**
     * Build the graph for `block` of `prog`.
     *
     * @param spmBaseRegs registers that are known (by kernel
     *        annotation, standing in for the paper's compiler data
     *        mapping [42, 43]) to point into the SPM window at block
     *        entry; SPM-ness propagates through address arithmetic.
     * @param liveOut the block's live-out register set from
     *        compiler/liveness.hh; null = conservative (every last
     *        def treated as live).
     */
    static Dfg build(const isa::Program &prog, const BasicBlock &block,
                     const std::vector<RegId> &spmBaseRegs,
                     const std::set<RegId> *liveOut = nullptr);

    /** Render as a compact text dump for debugging. */
    std::string toString() const;

  private:
    std::vector<DfgNode> nodes_;
    std::vector<std::vector<int>> dataSuccs_;
    std::vector<std::vector<int>> orderSuccs_;
    std::vector<bool> lastDefOfReg_;
    std::vector<bool> defEscapes_;
};

/**
 * Partition `prog` into basic blocks, attaching execution counts from
 * `execCounts` (per-instruction profile; may be empty for a static
 * partition).
 */
std::vector<BasicBlock>
findBasicBlocks(const isa::Program &prog,
                const std::vector<std::uint64_t> &execCounts);

} // namespace stitch::compiler

#endif // STITCH_COMPILER_DFG_HH

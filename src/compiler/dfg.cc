#include "compiler/dfg.hh"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.hh"

namespace stitch::compiler
{

using isa::Instr;
using isa::Opcode;

core::OpClass
DfgNode::opClass() const
{
    switch (op) {
      case NodeOp::Alu: return core::OpClass::A;
      case NodeOp::Mul: return core::OpClass::M;
      case NodeOp::Shift: return core::OpClass::S;
      case NodeOp::Load:
      case NodeOp::Store: return core::OpClass::T;
      case NodeOp::Other: break;
    }
    STITCH_PANIC("opClass() of a non-includable node");
}

std::vector<BasicBlock>
findBasicBlocks(const isa::Program &prog,
                const std::vector<std::uint64_t> &execCounts)
{
    const auto &code = prog.code();
    std::set<std::size_t> leaders;
    if (!code.empty())
        leaders.insert(0);

    for (std::size_t i = 0; i < code.size(); ++i) {
        const Instr &in = code[i];
        if (!isa::isControlOp(in.op))
            continue;
        if (i + 1 < code.size())
            leaders.insert(i + 1);
        switch (in.op) {
          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Bge:
          case Opcode::Bltu:
          case Opcode::Bgeu: {
            auto target = static_cast<std::int64_t>(prog.wordAddrOf(i)) +
                          in.imm;
            leaders.insert(prog.indexOfWordAddr(
                static_cast<Addr>(target)));
            break;
          }
          case Opcode::Jal:
            leaders.insert(prog.indexOfWordAddr(
                static_cast<Addr>(in.imm)));
            break;
          default:
            break; // jalr/halt: dynamic or terminal target
        }
    }

    std::vector<BasicBlock> blocks;
    auto it = leaders.begin();
    while (it != leaders.end()) {
        BasicBlock bb;
        bb.begin = *it;
        ++it;
        std::size_t next = it == leaders.end() ? code.size() : *it;
        // A block also ends right after a control instruction.
        bb.end = bb.begin;
        while (bb.end < next) {
            bool ctl = isa::isControlOp(code[bb.end].op);
            ++bb.end;
            if (ctl)
                break;
        }
        if (!execCounts.empty() && bb.begin < execCounts.size())
            bb.execCount = execCounts[bb.begin];
        blocks.push_back(bb);
    }
    return blocks;
}

namespace
{

/** Map an ALU-group opcode to the patch AluOp. */
std::optional<core::AluOp>
aluOpOf(Opcode op)
{
    switch (op) {
      case Opcode::Add: case Opcode::Addi: return core::AluOp::Add;
      case Opcode::Sub: return core::AluOp::Sub;
      case Opcode::And: case Opcode::Andi: return core::AluOp::And;
      case Opcode::Or: case Opcode::Ori: return core::AluOp::Or;
      case Opcode::Xor: case Opcode::Xori: return core::AluOp::Xor;
      case Opcode::Slt: case Opcode::Slti: return core::AluOp::Slt;
      case Opcode::Sltu: return core::AluOp::Sltu;
      default: return std::nullopt;
    }
}

std::optional<core::ShiftOp>
shiftOpOf(Opcode op)
{
    switch (op) {
      case Opcode::Sll: case Opcode::Slli: return core::ShiftOp::Sll;
      case Opcode::Srl: case Opcode::Srli: return core::ShiftOp::Srl;
      case Opcode::Sra: case Opcode::Srai: return core::ShiftOp::Sra;
      default: return std::nullopt;
    }
}

} // namespace

Dfg
Dfg::build(const isa::Program &prog, const BasicBlock &block,
           const std::vector<RegId> &spmBaseRegs,
           const std::set<RegId> *liveOut)
{
    Dfg dfg;
    const auto &code = prog.code();
    STITCH_ASSERT(block.end <= code.size());
    int n = static_cast<int>(block.size());
    dfg.nodes_.resize(static_cast<std::size_t>(n));
    dfg.dataSuccs_.assign(static_cast<std::size_t>(n), {});
    dfg.orderSuccs_.assign(static_cast<std::size_t>(n), {});

    std::map<RegId, int> lastDef;          // reg -> defining node
    std::map<RegId, std::vector<int>> readersSinceDef;
    std::set<RegId> spmRegs(spmBaseRegs.begin(), spmBaseRegs.end());
    std::vector<bool> nodeSpmTaint(static_cast<std::size_t>(n), false);
    std::vector<int> spmMemNodes, cachedMemNodes;

    auto addOrderEdge = [&](int from, int to) {
        if (from == to)
            return;
        auto &v = dfg.orderSuccs_[static_cast<std::size_t>(from)];
        if (std::find(v.begin(), v.end(), to) == v.end())
            v.push_back(to);
    };

    auto makeOperand = [&](RegId r) -> OperandRef {
        OperandRef ref;
        if (r == 0) {
            ref.kind = OperandRef::Kind::Imm;
            ref.imm = 0;
        } else if (auto it = lastDef.find(r); it != lastDef.end()) {
            ref.kind = OperandRef::Kind::Node;
            ref.node = it->second;
        } else {
            ref.kind = OperandRef::Kind::Reg;
            ref.reg = r;
        }
        return ref;
    };

    auto operandSpm = [&](const OperandRef &ref) -> bool {
        if (ref.kind == OperandRef::Kind::Node)
            return nodeSpmTaint[static_cast<std::size_t>(ref.node)];
        if (ref.kind == OperandRef::Kind::Reg)
            return spmRegs.count(ref.reg) > 0;
        return false;
    };

    for (int id = 0; id < n; ++id) {
        const Instr &in = code[block.begin + static_cast<std::size_t>(id)];
        DfgNode &node = dfg.nodes_[static_cast<std::size_t>(id)];
        node.instrIndex = block.begin + static_cast<std::size_t>(id);

        std::vector<RegId> reads;
        std::optional<RegId> def;

        if (isa::isAluRegOp(in.op)) {
            reads = {in.rs0, in.rs1};
            def = in.rd0;
            node.operands = {makeOperand(in.rs0), makeOperand(in.rs1)};
            if (auto a = aluOpOf(in.op)) {
                node.op = NodeOp::Alu;
                node.aluOp = *a;
            } else if (auto s = shiftOpOf(in.op)) {
                node.op = NodeOp::Shift;
                node.shiftOp = *s;
            } else {
                STITCH_ASSERT(in.op == Opcode::Mul);
                node.op = NodeOp::Mul;
            }
        } else if (isa::isAluImmOp(in.op)) {
            reads = {in.rs0};
            def = in.rd0;
            OperandRef immRef;
            immRef.kind = OperandRef::Kind::Imm;
            immRef.imm = in.imm;
            node.operands = {makeOperand(in.rs0), immRef};
            if (auto a = aluOpOf(in.op)) {
                node.op = NodeOp::Alu;
                node.aluOp = *a;
            } else {
                auto s = shiftOpOf(in.op);
                STITCH_ASSERT(s.has_value());
                node.op = NodeOp::Shift;
                node.shiftOp = *s;
            }
        } else if (in.op == Opcode::Lw || in.op == Opcode::Sw) {
            bool isStore = in.op == Opcode::Sw;
            RegId base = in.rs0;
            reads = isStore ? std::vector<RegId>{base, in.rs1}
                            : std::vector<RegId>{base};
            if (!isStore)
                def = in.rd0;
            node.isMem = true;

            // The address is base + imm; model it as an Add node
            // operand pair so the patch's stage-1 ALU can compute it.
            OperandRef baseRef = makeOperand(base);
            OperandRef offRef;
            offRef.kind = OperandRef::Kind::Imm;
            offRef.imm = in.imm;

            bool spm = operandSpm(baseRef);
            node.isSpmMem = spm;
            if (spm) {
                node.op = isStore ? NodeOp::Store : NodeOp::Load;
                node.operands = isStore
                    ? std::vector<OperandRef>{baseRef, offRef,
                                              makeOperand(in.rs1)}
                    : std::vector<OperandRef>{baseRef, offRef};
            } else {
                node.op = NodeOp::Other;
            }
        } else {
            // Barrier node: record reads/defs for ordering only.
            node.op = NodeOp::Other;
            switch (in.op) {
              case Opcode::Lb:
                reads = {in.rs0};
                def = in.rd0;
                node.isMem = true;
                break;
              case Opcode::Sb:
                reads = {in.rs0, in.rs1};
                node.isMem = true;
                break;
              case Opcode::Lui:
                def = in.rd0;
                break;
              case Opcode::Beq: case Opcode::Bne: case Opcode::Blt:
              case Opcode::Bge: case Opcode::Bltu: case Opcode::Bgeu:
                reads = {in.rs0, in.rs1};
                break;
              case Opcode::Jal:
                def = in.rd0;
                break;
              case Opcode::Jalr:
                reads = {in.rs0};
                def = in.rd0;
                break;
              case Opcode::Send:
                reads = {in.rs0, in.rs1};
                break;
              case Opcode::Recv:
                reads = {in.rs0};
                def = in.rd0;
                break;
              case Opcode::Cust:
                reads = {in.rs0, in.rs1, in.rs2, in.rs3};
                def = in.rd0; // rd1 handled below
                break;
              default:
                break;
            }
        }
        node.def = (def && *def != 0) ? def : std::nullopt;

        // RAW edges from operand producers.
        for (const auto &ref : node.operands) {
            if (ref.kind == OperandRef::Kind::Node) {
                dfg.dataSuccs_[static_cast<std::size_t>(ref.node)]
                    .push_back(id);
                addOrderEdge(ref.node, id);
            }
        }
        // Barrier nodes get RAW edges from their register reads; they
        // also count as dataflow consumers so that a value a barrier
        // reads is recognized as a required candidate output.
        if (node.op == NodeOp::Other) {
            for (RegId r : reads) {
                auto it = lastDef.find(r);
                if (it != lastDef.end()) {
                    addOrderEdge(it->second, id);
                    dfg.dataSuccs_[static_cast<std::size_t>(it->second)]
                        .push_back(id);
                }
            }
        }

        // Memory ordering: conservative edges within one space,
        // except load-load pairs.
        if (node.isMem) {
            auto &sameSpace = node.isSpmMem ? spmMemNodes
                                            : cachedMemNodes;
            bool thisIsLoad = node.op == NodeOp::Load ||
                              (node.op == NodeOp::Other &&
                               node.def.has_value());
            for (int prev : sameSpace) {
                const DfgNode &pn =
                    dfg.nodes_[static_cast<std::size_t>(prev)];
                bool prevIsLoad = pn.op == NodeOp::Load ||
                                  (pn.op == NodeOp::Other &&
                                   pn.def.has_value());
                if (!(thisIsLoad && prevIsLoad))
                    addOrderEdge(prev, id);
            }
            sameSpace.push_back(id);
        }

        // WAR and WAW edges for the defined register.
        if (node.def) {
            RegId r = *node.def;
            for (int reader : readersSinceDef[r])
                addOrderEdge(reader, id);
            if (auto it = lastDef.find(r); it != lastDef.end())
                addOrderEdge(it->second, id);
            readersSinceDef[r].clear();
            lastDef[r] = id;
        }
        for (RegId r : reads)
            readersSinceDef[r].push_back(id);

        // SPM pointer taint propagation through address arithmetic.
        if (node.def) {
            bool taint = false;
            if (node.op == NodeOp::Alu &&
                (node.aluOp == core::AluOp::Add ||
                 node.aluOp == core::AluOp::Sub)) {
                for (const auto &ref : node.operands)
                    taint = taint || operandSpm(ref);
            }
            nodeSpmTaint[static_cast<std::size_t>(id)] = taint;
            if (taint)
                spmRegs.insert(*node.def);
            else
                spmRegs.erase(*node.def);
        }
    }

    // Last-def-of-register flags, refined by block liveness when the
    // caller supplies it.
    dfg.lastDefOfReg_.assign(static_cast<std::size_t>(n), false);
    dfg.defEscapes_.assign(static_cast<std::size_t>(n), false);
    std::set<RegId> seen;
    for (int id = n - 1; id >= 0; --id) {
        const DfgNode &node = dfg.nodes_[static_cast<std::size_t>(id)];
        if (node.def && seen.insert(*node.def).second) {
            dfg.lastDefOfReg_[static_cast<std::size_t>(id)] = true;
            dfg.defEscapes_[static_cast<std::size_t>(id)] =
                liveOut == nullptr || liveOut->count(*node.def) > 0;
        }
    }

    return dfg;
}

bool
Dfg::defIsLastOfReg(int nodeId) const
{
    return lastDefOfReg_[static_cast<std::size_t>(nodeId)];
}

bool
Dfg::defEscapesBlock(int nodeId) const
{
    return defEscapes_[static_cast<std::size_t>(nodeId)];
}

std::string
Dfg::toString() const
{
    std::ostringstream os;
    for (int id = 0; id < size(); ++id) {
        const DfgNode &node = nodes_[static_cast<std::size_t>(id)];
        os << id << ": ";
        switch (node.op) {
          case NodeOp::Alu:
            os << "alu." << core::aluOpName(node.aluOp);
            break;
          case NodeOp::Mul: os << "mul"; break;
          case NodeOp::Shift:
            os << "shift." << core::shiftOpName(node.shiftOp);
            break;
          case NodeOp::Load: os << "spm.load"; break;
          case NodeOp::Store: os << "spm.store"; break;
          case NodeOp::Other: os << "other"; break;
        }
        os << " [";
        for (const auto &ref : node.operands) {
            switch (ref.kind) {
              case OperandRef::Kind::Node:
                os << " n" << ref.node;
                break;
              case OperandRef::Kind::Reg:
                os << " r" << ref.reg;
                break;
              case OperandRef::Kind::Imm:
                os << " #" << ref.imm;
                break;
            }
        }
        os << " ]";
        if (node.def)
            os << " -> r" << *node.def;
        os << "\n";
    }
    return os.str();
}

} // namespace stitch::compiler

/**
 * @file
 * Kernel profiling (paper Figure 6: "profiling & hot basic block
 * detection"). The program runs once on a single software-only core;
 * execution counts identify the hot blocks that feed ISE
 * identification.
 */

#ifndef STITCH_COMPILER_PROFILER_HH
#define STITCH_COMPILER_PROFILER_HH

#include <cstdint>
#include <vector>

#include "compiler/dfg.hh"
#include "cpu/core.hh"
#include "mem/tile_memory.hh"

namespace stitch::compiler
{

/** Profiling output. */
struct ProfileResult
{
    Cycles totalCycles = 0;
    std::uint64_t instructions = 0;
    std::vector<std::uint64_t> execCounts; ///< per instruction
    std::vector<BasicBlock> blocks;
    std::vector<std::size_t> hotBlocks; ///< indices into blocks,
                                        ///< heaviest first
};

/** Hot-block policy (the paper uses a 5% occurrence threshold). */
struct ProfileParams
{
    double hotThreshold = 0.05; ///< min share of dynamic instructions
    int maxHotBlocks = 12;
    mem::MemParams mem;
};

/**
 * Run `prog` to completion on a scratch core and partition it into
 * blocks. SEND discards into the void and RECV returns zeros
 * immediately, so pipeline-stage programs can be profiled standalone.
 */
ProfileResult profileProgram(const isa::Program &prog,
                             const ProfileParams &params
                             = ProfileParams{});

} // namespace stitch::compiler

#endif // STITCH_COMPILER_PROFILER_HH

#include "compiler/selector.hh"

#include <algorithm>
#include <set>

namespace stitch::compiler
{

std::int64_t
estimatedSaving(const IseCandidate &cand)
{
    // Immediate operands cost nothing per execution: the rewriter
    // materializes them once into the scratch-register pool at
    // program entry (it drops whole selections if the pool of four
    // would overflow).
    return static_cast<std::int64_t>(cand.baselineCycles) - 1;
}

std::vector<SelectedIse>
selectIses(const Dfg &dfg, const std::vector<IseCandidate> &candidates,
           const AccelTarget &target,
           const core::LocusParams &locusParams)
{
    // Gather profitable, mappable candidates.
    std::vector<SelectedIse> mapped;
    for (const auto &cand : candidates) {
        std::int64_t saving = estimatedSaving(cand);
        if (saving <= 0)
            continue;
        MapResult res = mapCandidate(dfg, cand, target, locusParams);
        if (!res.ok)
            continue;
        mapped.push_back(SelectedIse{cand, std::move(res), saving});
    }

    // Prefer larger savings; break ties toward fewer covered nodes
    // (leave room for other candidates) and then node order for
    // determinism.
    std::sort(mapped.begin(), mapped.end(),
              [](const SelectedIse &a, const SelectedIse &b) {
                  if (a.savedPerExec != b.savedPerExec)
                      return a.savedPerExec > b.savedPerExec;
                  if (a.cand.nodes.size() != b.cand.nodes.size())
                      return a.cand.nodes.size() < b.cand.nodes.size();
                  return a.cand.nodes < b.cand.nodes;
              });

    std::vector<SelectedIse> chosen;
    std::set<int> covered;
    for (auto &sel : mapped) {
        bool overlap = false;
        for (int v : sel.cand.nodes)
            overlap = overlap || covered.count(v) > 0;
        if (overlap)
            continue;
        for (int v : sel.cand.nodes)
            covered.insert(v);
        chosen.push_back(std::move(sel));
    }

    // Apply in program order of the last covered instruction so the
    // rewriter can walk the block once.
    std::sort(chosen.begin(), chosen.end(),
              [](const SelectedIse &a, const SelectedIse &b) {
                  return a.cand.nodes.back() < b.cand.nodes.back();
              });
    return chosen;
}

} // namespace stitch::compiler

/**
 * @file
 * The ISE selector (paper Figure 6): choose a non-overlapping set of
 * mapped candidates per hot block that maximizes estimated savings.
 */

#ifndef STITCH_COMPILER_SELECTOR_HH
#define STITCH_COMPILER_SELECTOR_HH

#include <vector>

#include "compiler/mapper.hh"

namespace stitch::compiler
{

/** A candidate chosen for a block, with its mapping. */
struct SelectedIse
{
    IseCandidate cand;
    MapResult map;

    /** Estimated cycles saved per execution of the block. */
    std::int64_t savedPerExec = 0;
};

/**
 * Estimated per-execution saving of a mapped candidate: the covered
 * instructions' baseline cycles, minus the single CUST cycle, minus
 * one li per materialized immediate.
 */
std::int64_t estimatedSaving(const IseCandidate &cand);

/**
 * Map every candidate onto `target` and greedily pick a
 * non-overlapping subset by descending saving.
 */
std::vector<SelectedIse>
selectIses(const Dfg &dfg, const std::vector<IseCandidate> &candidates,
           const AccelTarget &target,
           const core::LocusParams &locusParams = core::LocusParams{});

} // namespace stitch::compiler

#endif // STITCH_COMPILER_SELECTOR_HH

#include "compiler/mapper.hh"

#include <algorithm>
#include <optional>
#include <set>

#include "common/logging.hh"
#include "common/table.hh"

namespace stitch::compiler
{

using core::AluOp;
using core::OutCfg;
using core::PatchCtl;
using core::PatchKind;
using core::ShiftOp;
using core::TMode;
using core::U1Lhs;
using core::U1Rhs;
using core::U2Lhs;
using core::U2Rhs;

std::string
AccelTarget::name() const
{
    switch (type) {
      case Type::SinglePatch:
        return strformat("{%s}", core::patchKindName(local));
      case Type::FusedPair:
        return strformat("{%s,%s}", core::patchKindName(local),
                         core::patchKindName(remote));
      case Type::Locus:
        return "LOCUS-SFU";
    }
    STITCH_PANIC("bad AccelTarget");
}

namespace
{

constexpr std::uint8_t
pm(int p)
{
    return static_cast<std::uint8_t>(1u << p);
}

constexpr std::uint8_t pm123 = pm(1) | pm(2) | pm(3);
constexpr std::uint8_t pmAll = pm(0) | pm123;

/** Matches candidate externals to the four register ports. */
struct PortSolver
{
    int numExt = 0;
    std::array<std::uint8_t, 4> mask{{pmAll, pmAll, pmAll, pmAll}};

    bool
    restrict(int ext, std::uint8_t m)
    {
        STITCH_ASSERT(ext >= 0 && ext < numExt);
        mask[static_cast<std::size_t>(ext)] &= m;
        return mask[static_cast<std::size_t>(ext)] != 0;
    }

    /** Assign distinct ports; returns ext index per port (-1 free). */
    std::optional<std::array<int, 4>>
    solve() const
    {
        std::array<int, 4> portExt{{-1, -1, -1, -1}};
        std::array<int, 4> extPort{{-1, -1, -1, -1}};
        if (assignFrom(0, portExt, extPort))
            return portExt;
        return std::nullopt;
    }

  private:
    bool
    assignFrom(int ext, std::array<int, 4> &portExt,
               std::array<int, 4> &extPort) const
    {
        if (ext >= numExt)
            return true;
        STITCH_ASSERT(ext >= 0 && ext < 4,
                      "more externals than register ports");
        for (int p = 0; p < 4; ++p) {
            if (portExt[static_cast<std::size_t>(p)] >= 0)
                continue;
            if (!(mask[static_cast<std::size_t>(ext)] & pm(p)))
                continue;
            portExt[static_cast<std::size_t>(p)] = ext;
            extPort[static_cast<std::size_t>(ext)] = p;
            if (assignFrom(ext + 1, portExt, extPort))
                return true;
            portExt[static_cast<std::size_t>(p)] = -1;
            extPort[static_cast<std::size_t>(ext)] = -1;
        }
        return false;
    }
};

/** How an operand value is supplied. */
enum class ValKind
{
    Internal, ///< produced by a node on this side
    Forward,  ///< the fused-forward value (remote in0)
    External, ///< a register port
    Invalid,
};

struct Val
{
    ValKind kind = ValKind::Invalid;
    int node = -1; ///< Internal
    int ext = -1;  ///< External
};

/** Deferred mux selections awaiting the port assignment. */
enum class MuxField { U1L, U1R, U2L, U2R };

struct Pending
{
    MuxField field;
    int ext;
};

enum class SideMode { Solo, FusedLocal, FusedRemote };

struct SideCtx
{
    const Dfg *dfg = nullptr;
    const IseCandidate *cand = nullptr;
    std::set<int> sideSet;
    SideMode mode = SideMode::Solo;
    int forwardNode = -1; ///< FusedRemote: the value on in0;
                          ///< FusedLocal: the node to forward (-1 =
                          ///< pick the side's final)
    PatchKind kind = PatchKind::ATMA;
    bool allowT = true;
    std::vector<int> outputs; ///< candidate outputs on this side
};

struct SideMap
{
    PatchCtl ctl;
    int headNode = -1;
    int finalNode = -1;
    int forwardNode = -1; ///< FusedLocal: resolved forward producer
    int rd0Node = -1;
    int rd1Node = -1;
    std::vector<Pending> pending;
};

struct SideVariant
{
    SideMap map;
    PortSolver ports;
};

bool
aluCommutative(AluOp op)
{
    switch (op) {
      case AluOp::Add:
      case AluOp::And:
      case AluOp::Or:
      case AluOp::Xor:
        return true;
      default:
        return false;
    }
}

/** Enumerates slot assignments + wiring variants of one side. */
class SideMapper
{
  public:
    SideMapper(const SideCtx &ctx, const PortSolver &base)
        : ctx_(ctx), base_(base)
    {
        for (int n : ctx.sideSet)
            nodes_.push_back(n);
    }

    std::vector<SideVariant>
    enumerate()
    {
        assignSlots(0, -1, -1, -1, -1);
        return std::move(variants_);
    }

  private:
    static constexpr std::size_t maxVariants = 64;

    Val
    classify(const OperandRef &ref) const
    {
        Val v;
        if (ref.kind == OperandRef::Kind::Node) {
            if (ctx_.sideSet.count(ref.node)) {
                v.kind = ValKind::Internal;
                v.node = ref.node;
                return v;
            }
            if (ctx_.mode == SideMode::FusedRemote &&
                ref.node == ctx_.forwardNode) {
                v.kind = ValKind::Forward;
                return v;
            }
            if (ctx_.cand->covers(ref.node)) {
                // FusedLocal referencing a remote node: invalid split.
                v.kind = ValKind::Invalid;
                return v;
            }
        }
        v.kind = ValKind::External;
        v.ext = extIndexOf(ref);
        return v;
    }

    int
    extIndexOf(const OperandRef &ref) const
    {
        const auto &exts = ctx_.cand->externals;
        for (std::size_t i = 0; i < exts.size(); ++i)
            if (exts[i].ref == ref)
                return static_cast<int>(i);
        STITCH_PANIC("operand is not a registered external");
    }

    const DfgNode &
    node(int id) const
    {
        return ctx_.dfg->node(id);
    }

    /** Slot compatibility for one node. */
    bool
    fitsSlot(int nodeId, int slot) const
    {
        const DfgNode &nd = node(nodeId);
        switch (slot) {
          case 0: // S1A
            return nd.op == NodeOp::Alu;
          case 1: // S1T
            return ctx_.allowT && (nd.op == NodeOp::Load ||
                                   nd.op == NodeOp::Store);
          case 2: // U1
            switch (ctx_.kind) {
              case PatchKind::ATMA: return nd.op == NodeOp::Mul;
              case PatchKind::ATAS: return nd.op == NodeOp::Alu;
              case PatchKind::ATSA: return nd.op == NodeOp::Shift;
            }
            return false;
          case 3: // U2
            switch (ctx_.kind) {
              case PatchKind::ATMA: return nd.op == NodeOp::Alu;
              case PatchKind::ATAS: return nd.op == NodeOp::Shift;
              case PatchKind::ATSA: return nd.op == NodeOp::Alu;
            }
            return false;
        }
        return false;
    }

    void
    assignSlots(std::size_t idx, int s1a, int s1t, int u1, int u2)
    {
        if (variants_.size() >= maxVariants)
            return;
        if (idx == nodes_.size()) {
            tryWire(s1a, s1t, u1, u2);
            return;
        }
        int nd = nodes_[idx];
        if (fitsSlot(nd, 0) && s1a < 0)
            assignSlots(idx + 1, nd, s1t, u1, u2);
        if (fitsSlot(nd, 1) && s1t < 0)
            assignSlots(idx + 1, s1a, nd, u1, u2);
        if (fitsSlot(nd, 2) && u1 < 0)
            assignSlots(idx + 1, s1a, s1t, nd, u2);
        if (fitsSlot(nd, 3) && u2 < 0)
            assignSlots(idx + 1, s1a, s1t, u1, nd);
    }

    void
    tryWire(int s1a, int s1t, int u1, int u2)
    {
        // Operand-order (commutativity) variants per slot.
        auto swapsOf = [&](int nodeId) -> int {
            if (nodeId < 0)
                return 1;
            const DfgNode &nd = node(nodeId);
            if (nd.op == NodeOp::Mul)
                return 2;
            if (nd.op == NodeOp::Alu && aluCommutative(nd.aluOp))
                return 2;
            return 1;
        };
        int sa = swapsOf(s1a), su1 = swapsOf(u1), su2 = swapsOf(u2);
        for (int a = 0; a < sa; ++a)
            for (int b = 0; b < su1; ++b)
                for (int c = 0; c < su2; ++c)
                    wireVariant(s1a, s1t, u1, u2, a == 1, b == 1,
                                c == 1);
    }

    std::pair<OperandRef, OperandRef>
    binaryOperands(int nodeId, bool swapped) const
    {
        const DfgNode &nd = node(nodeId);
        STITCH_ASSERT(nd.operands.size() >= 2);
        if (swapped)
            return {nd.operands[1], nd.operands[0]};
        return {nd.operands[0], nd.operands[1]};
    }

    void
    wireVariant(int s1a, int s1t, int u1, int u2, bool swapA,
                bool swapU1, bool swapU2)
    {
        if (variants_.size() >= maxVariants)
            return;

        PortSolver ps = base_;
        SideMap sm;
        sm.headNode = s1t >= 0 ? s1t : s1a;
        bool noHead = sm.headNode < 0;
        bool isRemote = ctx_.mode == SideMode::FusedRemote;

        // ---- Stage 1: ALU ------------------------------------------------
        if (s1a >= 0) {
            auto [x, y] = binaryOperands(s1a, swapA);
            Val vx = classify(x), vy = classify(y);
            // x must be in0 (local: port 0 external; remote: F).
            if (isRemote) {
                if (vx.kind != ValKind::Forward)
                    return;
            } else {
                if (vx.kind != ValKind::External ||
                    !ps.restrict(vx.ext, pm(0)))
                    return;
            }
            // y must be in1.
            if (vy.kind != ValKind::External ||
                !ps.restrict(vy.ext, pm(1)))
                return;
            sm.ctl.a1op = node(s1a).aluOp;
        } else {
            sm.ctl.a1op = AluOp::Pass;
        }

        // ---- Stage 1: LMAU -----------------------------------------------
        if (s1t >= 0) {
            const DfgNode &tn = node(s1t);
            const OperandRef &base = tn.operands[0];
            const OperandRef &off = tn.operands[1];
            STITCH_ASSERT(off.kind == OperandRef::Kind::Imm);
            if (s1a >= 0) {
                // The stage-1 ALU must be exactly the address
                // producer and the displacement must be folded.
                if (!(base.kind == OperandRef::Kind::Node &&
                      base.node == s1a && off.imm == 0))
                    return;
            } else {
                Val vb = classify(base);
                if (vb.kind == ValKind::External) {
                    if (!ps.restrict(vb.ext, pm(0)))
                        return;
                } else if (!(isRemote &&
                             vb.kind == ValKind::Forward)) {
                    return;
                }
                if (off.imm != 0) {
                    OperandRef offRef;
                    offRef.kind = OperandRef::Kind::Imm;
                    offRef.imm = off.imm;
                    int ext = extIndexOf(offRef);
                    if (!ps.restrict(ext, pm(1)))
                        return;
                    sm.ctl.a1op = AluOp::Add;
                } else {
                    sm.ctl.a1op = AluOp::Pass;
                }
            }
            if (tn.op == NodeOp::Store) {
                Val vd = classify(tn.operands[2]);
                if (vd.kind != ValKind::External ||
                    !ps.restrict(vd.ext, pm(2)))
                    return;
                sm.ctl.tMode = TMode::Store;
            } else {
                sm.ctl.tMode = TMode::Load;
            }
        } else {
            sm.ctl.tMode = TMode::Off;
        }

        // ---- Stage 2: unit 1 ---------------------------------------------
        if (u1 >= 0) {
            auto [x, y] = binaryOperands(u1, swapU1);
            if (!wireStage2Operand(x, MuxField::U1L, sm, ps, noHead,
                                   isRemote, u1, u2))
                return;
            if (!wireStage2Operand(y, MuxField::U1R, sm, ps, noHead,
                                   isRemote, u1, u2))
                return;
            const DfgNode &nd = node(u1);
            if (ctx_.kind == PatchKind::ATAS)
                sm.ctl.aop2 = nd.aluOp;
            else if (ctx_.kind == PatchKind::ATSA)
                sm.ctl.sop = nd.shiftOp;
        }

        // ---- Stage 2: unit 2 ---------------------------------------------
        if (u2 >= 0) {
            auto [x, y] = binaryOperands(u2, swapU2);
            if (!wireStage2Operand(x, MuxField::U2L, sm, ps, noHead,
                                   isRemote, u1, u2))
                return;
            if (!wireStage2Operand(y, MuxField::U2R, sm, ps, noHead,
                                   isRemote, u1, u2))
                return;
            const DfgNode &nd = node(u2);
            if (ctx_.kind == PatchKind::ATAS)
                sm.ctl.sop = nd.shiftOp;
            else
                sm.ctl.aop2 = nd.aluOp;
        } else if (u1 >= 0) {
            // Pass unit 1's result through unit 2.
            sm.ctl.u2Lhs = U2Lhs::U1Out;
            if (ctx_.kind == PatchKind::ATAS)
                sm.ctl.sop = ShiftOp::Pass;
            else
                sm.ctl.aop2 = AluOp::Pass;
        } else {
            // Stage 2 unused: mirror s1out.
            sm.ctl.u2Lhs = U2Lhs::S1Out;
            if (ctx_.kind == PatchKind::ATAS)
                sm.ctl.sop = ShiftOp::Pass;
            else
                sm.ctl.aop2 = AluOp::Pass;
        }

        sm.finalNode = u2 >= 0 ? u2 : (u1 >= 0 ? u1 : sm.headNode);

        if (!resolveOutputs(sm))
            return;

        variants_.push_back(SideVariant{std::move(sm), ps});
    }

    /**
     * Wire one stage-2 operand. Direct-port masks depend on the mux:
     * all three muxes reach ports 1-3; the stage-1 bypass (S1Out) can
     * additionally deliver port 0 when stage 1 is a pass-through, and
     * U2's left input can borrow a passing unit 1 when that slot is
     * free (and the unit is not the fixed multiplier).
     */
    bool
    wireStage2Operand(const OperandRef &ref, MuxField field,
                      SideMap &sm, PortSolver &ps, bool noHead,
                      bool isRemote, int u1, int u2)
    {
        (void)u2;
        Val v = classify(ref);
        switch (v.kind) {
          case ValKind::Internal:
            if (v.node == sm.headNode) {
                setMuxS1(field, sm.ctl);
                return true;
            }
            if (field == MuxField::U2L && v.node == u1) {
                sm.ctl.u2Lhs = U2Lhs::U1Out;
                return true;
            }
            return false;

          case ValKind::Forward:
            // F is s1out when stage 1 passes it through.
            if (!noHead)
                return false;
            setMuxS1(field, sm.ctl);
            return true;

          case ValKind::External: {
            std::uint8_t mask = 0;
            if (field == MuxField::U2L) {
                if (noHead && !isRemote)
                    mask |= pm(0);
                if (u1 < 0 && ctx_.kind != PatchKind::ATMA)
                    mask |= pm123;
            } else {
                mask = pm123;
                if (noHead && !isRemote)
                    mask |= pm(0);
            }
            if (mask == 0 || !ps.restrict(v.ext, mask))
                return false;
            sm.pending.push_back(Pending{field, v.ext});
            return true;
          }

          case ValKind::Invalid:
            return false;
        }
        return false;
    }

    static void
    setMuxS1(MuxField field, PatchCtl &ctl)
    {
        switch (field) {
          case MuxField::U1L: ctl.u1Lhs = U1Lhs::S1Out; break;
          case MuxField::U1R: ctl.u1Rhs = U1Rhs::S1Out; break;
          case MuxField::U2L: ctl.u2Lhs = U2Lhs::S1Out; break;
          case MuxField::U2R: ctl.u2Rhs = U2Rhs::S1Out; break;
        }
    }

    /** Check output expressibility and fix OutCfg / rd nodes. */
    bool
    resolveOutputs(SideMap &sm)
    {
        if (ctx_.mode == SideMode::FusedLocal) {
            // The side's job is to produce the forward value.
            int fwd = ctx_.forwardNode >= 0 ? ctx_.forwardNode
                                            : sm.finalNode;
            if (fwd != sm.headNode && fwd != sm.finalNode)
                return false;
            // Every local live-out must be the forwarded value.
            for (int out : ctx_.outputs)
                if (out != fwd)
                    return false;
            sm.forwardNode = fwd;
            sm.ctl.outCfg = (fwd == sm.finalNode) ? OutCfg::S2
                                                  : OutCfg::S1;
            return true;
        }

        const auto &outs = ctx_.outputs;
        if (outs.empty()) {
            sm.ctl.outCfg = OutCfg::None;
            return true;
        }
        if (outs.size() == 1) {
            int out = outs[0];
            if (out == sm.headNode) {
                sm.ctl.outCfg = OutCfg::S1;
                sm.rd0Node = out;
                return true;
            }
            if (out == sm.finalNode) {
                sm.ctl.outCfg = OutCfg::S2;
                sm.rd0Node = out;
                return true;
            }
            return false;
        }
        if (outs.size() == 2) {
            if (sm.headNode < 0 || sm.headNode == sm.finalNode)
                return false;
            bool match = (outs[0] == sm.headNode &&
                          outs[1] == sm.finalNode) ||
                         (outs[1] == sm.headNode &&
                          outs[0] == sm.finalNode);
            if (!match)
                return false;
            sm.ctl.outCfg = OutCfg::Both;
            sm.rd0Node = sm.finalNode;
            sm.rd1Node = sm.headNode;
            return true;
        }
        return false;
    }

    SideCtx ctx_;
    PortSolver base_;
    std::vector<int> nodes_;
    std::vector<SideVariant> variants_;
};

/** Resolve deferred mux fields once ports are known. */
bool
resolvePending(const SideMap &sm, const std::array<int, 4> &portExt,
               PatchCtl &ctl, PatchKind kind, bool u1Assigned)
{
    auto portOf = [&](int ext) {
        for (int p = 0; p < 4; ++p)
            if (portExt[static_cast<std::size_t>(p)] == ext)
                return p;
        return -1;
    };

    for (const auto &pend : sm.pending) {
        int p = portOf(pend.ext);
        STITCH_ASSERT(p >= 0, "pending external lost its port");
        switch (pend.field) {
          case MuxField::U1L:
            switch (p) {
              case 0: ctl.u1Lhs = U1Lhs::S1Out; break;
              case 1: ctl.u1Lhs = U1Lhs::In1; break;
              case 2: ctl.u1Lhs = U1Lhs::In2; break;
              case 3: ctl.u1Lhs = U1Lhs::In3; break;
            }
            break;
          case MuxField::U1R:
            switch (p) {
              case 0: ctl.u1Rhs = U1Rhs::S1Out; break;
              case 1: ctl.u1Rhs = U1Rhs::In1; break;
              case 2: ctl.u1Rhs = U1Rhs::In2; break;
              case 3: ctl.u1Rhs = U1Rhs::In3; break;
            }
            break;
          case MuxField::U2L:
            if (p == 0) {
                ctl.u2Lhs = U2Lhs::S1Out;
            } else {
                // Route through a passing unit 1.
                if (u1Assigned || kind == PatchKind::ATMA)
                    return false;
                ctl.u2Lhs = U2Lhs::U1Out;
                switch (p) {
                  case 1: ctl.u1Lhs = U1Lhs::In1; break;
                  case 2: ctl.u1Lhs = U1Lhs::In2; break;
                  case 3: ctl.u1Lhs = U1Lhs::In3; break;
                }
                if (kind == PatchKind::ATAS)
                    ctl.aop2 = AluOp::Pass;
                else
                    ctl.sop = ShiftOp::Pass;
            }
            break;
          case MuxField::U2R:
            switch (p) {
              case 0: ctl.u2Rhs = U2Rhs::S1Out; break;
              case 1: ctl.u2Rhs = U2Rhs::In1; break;
              case 2: ctl.u2Rhs = U2Rhs::In2; break;
              case 3: ctl.u2Rhs = U2Rhs::In3; break;
            }
            break;
        }
    }
    return true;
}

/** Whether slot U1 was used, reconstructed from the side map. */
bool
u1AssignedIn(const SideMap &sm)
{
    // finalNode == u2 or u1; we track via ctl: if u2Lhs == U1Out and
    // aop2/sop not Pass... simpler: the mapper records it implicitly:
    // a side with stage-2 nodes sets finalNode != headNode. We cannot
    // recover exactly; instead resolvePending's pass-through route is
    // only legal when requested, and wireStage2Operand already gated
    // the mask on u1 < 0, so reaching the route here implies u1 was
    // free. Return false accordingly.
    (void)sm;
    return false;
}

} // namespace

core::MicroDfg
buildMicroDfg(const Dfg &dfg, const IseCandidate &cand,
              const std::array<int, 4> &portExternal, int rd0Node,
              int rd1Node)
{
    core::MicroDfg micro;
    std::set<int> covered(cand.nodes.begin(), cand.nodes.end());

    auto portOfExt = [&](int ext) {
        for (int p = 0; p < 4; ++p)
            if (portExternal[static_cast<std::size_t>(p)] == ext)
                return p;
        STITCH_PANIC("external without a port");
    };
    auto extIndexOf = [&](const OperandRef &ref) {
        for (std::size_t i = 0; i < cand.externals.size(); ++i)
            if (cand.externals[i].ref == ref)
                return static_cast<int>(i);
        STITCH_PANIC("operand is not a registered external");
    };

    std::vector<int> microIndexOf(
        static_cast<std::size_t>(dfg.size()), -1);

    auto operandRef = [&](const OperandRef &ref) {
        if (ref.kind == OperandRef::Kind::Node && covered.count(ref.node))
            return microIndexOf[static_cast<std::size_t>(ref.node)];
        return core::microPortRef(portOfExt(extIndexOf(ref)));
    };

    for (int id : cand.nodes) {
        const DfgNode &nd = dfg.node(id);
        core::MicroOp op;
        switch (nd.op) {
          case NodeOp::Alu:
            op.kind = core::MicroOp::Kind::Alu;
            op.aluOp = nd.aluOp;
            op.lhs = operandRef(nd.operands[0]);
            op.rhs = operandRef(nd.operands[1]);
            break;
          case NodeOp::Mul:
            op.kind = core::MicroOp::Kind::Mul;
            op.lhs = operandRef(nd.operands[0]);
            op.rhs = operandRef(nd.operands[1]);
            break;
          case NodeOp::Shift:
            op.kind = core::MicroOp::Kind::Shift;
            op.shiftOp = nd.shiftOp;
            op.lhs = operandRef(nd.operands[0]);
            op.rhs = operandRef(nd.operands[1]);
            break;
          case NodeOp::Load:
          case NodeOp::Store: {
            // Address = base + off; synthesize the add when off != 0.
            int addrRef = operandRef(nd.operands[0]);
            if (nd.operands[1].imm != 0) {
                core::MicroOp add;
                add.kind = core::MicroOp::Kind::Alu;
                add.aluOp = AluOp::Add;
                add.lhs = addrRef;
                add.rhs = operandRef(nd.operands[1]);
                micro.ops.push_back(add);
                addrRef = micro.size() - 1;
            }
            op.kind = nd.op == NodeOp::Load
                          ? core::MicroOp::Kind::Load
                          : core::MicroOp::Kind::Store;
            op.lhs = addrRef;
            if (nd.op == NodeOp::Store)
                op.rhs = operandRef(nd.operands[2]);
            break;
          }
          case NodeOp::Other:
            STITCH_PANIC("non-includable node in a candidate");
        }
        micro.ops.push_back(op);
        microIndexOf[static_cast<std::size_t>(id)] = micro.size() - 1;
    }

    if (rd0Node >= 0)
        micro.rd0Op = microIndexOf[static_cast<std::size_t>(rd0Node)];
    if (rd1Node >= 0)
        micro.rd1Op = microIndexOf[static_cast<std::size_t>(rd1Node)];
    return micro;
}

namespace
{

MapResult
mapSingle(const Dfg &dfg, const IseCandidate &cand, PatchKind kind)
{
    MapResult res;
    if (cand.nodes.size() > 4)
        return res;

    SideCtx ctx;
    ctx.dfg = &dfg;
    ctx.cand = &cand;
    ctx.sideSet.insert(cand.nodes.begin(), cand.nodes.end());
    ctx.mode = SideMode::Solo;
    ctx.kind = kind;
    ctx.allowT = true;
    ctx.outputs = cand.outputs;

    PortSolver base;
    base.numExt = static_cast<int>(cand.externals.size());

    for (auto &variant : SideMapper(ctx, base).enumerate()) {
        auto ports = variant.ports.solve();
        if (!ports)
            continue;
        PatchCtl ctl = variant.map.ctl;
        if (!resolvePending(variant.map, *ports, ctl, kind,
                            u1AssignedIn(variant.map)))
            continue;
        res.ok = true;
        res.cfg.localKind = kind;
        res.cfg.local = ctl;
        res.cfg.usesRemote = false;
        res.portExternal = *ports;
        res.rd0Node = variant.map.rd0Node;
        res.rd1Node = variant.map.rd1Node;
        return res;
    }
    return res;
}

MapResult
mapFused(const Dfg &dfg, const IseCandidate &cand, PatchKind localKind,
         PatchKind remoteKind)
{
    MapResult res;
    int n = static_cast<int>(cand.nodes.size());
    if (n < 2 || n > 8)
        return res;

    std::set<int> covered(cand.nodes.begin(), cand.nodes.end());

    for (unsigned split = 1; split + 1 < (1u << n); ++split) {
        std::set<int> localSet, remoteSet;
        for (int i = 0; i < n; ++i) {
            if (split & (1u << i))
                localSet.insert(cand.nodes[static_cast<std::size_t>(i)]);
            else
                remoteSet.insert(cand.nodes[static_cast<std::size_t>(i)]);
        }
        if (localSet.size() > 4 || remoteSet.size() > 4)
            continue;

        // Closure: no remote -> local dataflow; collect the unique
        // forward value crossing local -> remote.
        bool legal = true;
        int forwardNode = -1;
        for (int id : localSet) {
            for (const auto &ref : dfg.node(id).operands) {
                if (ref.kind == OperandRef::Kind::Node &&
                    remoteSet.count(ref.node))
                    legal = false;
            }
        }
        for (int id : remoteSet) {
            const DfgNode &nd = dfg.node(id);
            if (nd.op == NodeOp::Load || nd.op == NodeOp::Store) {
                legal = false; // SPM ops stay local (see header)
                break;
            }
            for (const auto &ref : nd.operands) {
                if (ref.kind == OperandRef::Kind::Node &&
                    localSet.count(ref.node)) {
                    if (forwardNode >= 0 && forwardNode != ref.node)
                        legal = false;
                    forwardNode = ref.node;
                }
            }
        }
        if (!legal)
            continue;

        // Partition the outputs; remote outputs go to rd0 (and rd1),
        // a local output returns as the forwarded value.
        std::vector<int> localOuts, remoteOuts;
        for (int out : cand.outputs) {
            if (localSet.count(out))
                localOuts.push_back(out);
            else
                remoteOuts.push_back(out);
        }
        if (localOuts.size() > 1)
            continue;
        if (!localOuts.empty() && forwardNode >= 0 &&
            localOuts[0] != forwardNode)
            continue;
        if (!localOuts.empty() && remoteOuts.size() > 1)
            continue; // only two write ports in total

        SideCtx localCtx;
        localCtx.dfg = &dfg;
        localCtx.cand = &cand;
        localCtx.sideSet = localSet;
        localCtx.mode = SideMode::FusedLocal;
        localCtx.forwardNode =
            forwardNode >= 0
                ? forwardNode
                : (localOuts.empty() ? -1 : localOuts[0]);
        localCtx.kind = localKind;
        localCtx.allowT = true;
        localCtx.outputs = localOuts;

        PortSolver base;
        base.numExt = static_cast<int>(cand.externals.size());

        for (auto &lv : SideMapper(localCtx, base).enumerate()) {
            SideCtx remoteCtx;
            remoteCtx.dfg = &dfg;
            remoteCtx.cand = &cand;
            remoteCtx.sideSet = remoteSet;
            remoteCtx.mode = SideMode::FusedRemote;
            remoteCtx.forwardNode = lv.map.forwardNode;
            remoteCtx.kind = remoteKind;
            remoteCtx.allowT = false;
            remoteCtx.outputs = remoteOuts;

            for (auto &rv :
                 SideMapper(remoteCtx, lv.ports).enumerate()) {
                auto ports = rv.ports.solve();
                if (!ports)
                    continue;
                PatchCtl lctl = lv.map.ctl;
                PatchCtl rctl = rv.map.ctl;
                if (!resolvePending(lv.map, *ports, lctl, localKind,
                                    u1AssignedIn(lv.map)))
                    continue;
                if (!resolvePending(rv.map, *ports, rctl, remoteKind,
                                    u1AssignedIn(rv.map)))
                    continue;

                res.ok = true;
                res.cfg.localKind = localKind;
                res.cfg.local = lctl;
                res.cfg.usesRemote = true;
                res.cfg.remoteKind = remoteKind;
                res.cfg.remote = rctl;
                res.cfg.writeLocalToRd1 = !localOuts.empty();
                res.portExternal = *ports;
                res.rd0Node = rv.map.rd0Node;
                res.rd1Node = !localOuts.empty()
                                  ? lv.map.forwardNode
                                  : rv.map.rd1Node;
                return res;
            }
        }
    }
    return res;
}

MapResult
mapLocus(const Dfg &dfg, const IseCandidate &cand,
         const core::LocusParams &params)
{
    MapResult res;
    if (static_cast<int>(cand.nodes.size()) > params.maxOps)
        return res;
    for (int id : cand.nodes) {
        NodeOp op = dfg.node(id).op;
        if (op == NodeOp::Load || op == NodeOp::Store)
            return res; // LOCUS ISEs exclude load/store (Section VI-B)
    }
    // The LOCUS SFU accelerates *operation-chains* (paper Table V):
    // each covered op feeds exactly the next one. Tree/diamond
    // patterns (a value fanning out to two later ops) need the
    // patches' stage-1 broadcast and are rejected here.
    for (std::size_t i = 0; i + 1 < cand.nodes.size(); ++i) {
        int id = cand.nodes[i];
        int next = cand.nodes[i + 1];
        int internalUses = 0;
        bool feedsNext = false;
        for (int later : cand.nodes) {
            for (const auto &ref : dfg.node(later).operands) {
                if (ref.kind == OperandRef::Kind::Node &&
                    ref.node == id) {
                    ++internalUses;
                    feedsNext = feedsNext || later == next;
                }
            }
        }
        if (internalUses != 1 || !feedsNext)
            return res;
    }
    if (static_cast<int>(cand.externals.size()) > params.maxInputs ||
        static_cast<int>(cand.outputs.size()) > params.maxOutputs)
        return res;

    for (std::size_t i = 0; i < cand.externals.size(); ++i)
        res.portExternal[i] = static_cast<int>(i);
    res.rd0Node = cand.outputs.empty() ? -1 : cand.outputs[0];
    res.rd1Node = cand.outputs.size() > 1 ? cand.outputs[1] : -1;
    res.micro = buildMicroDfg(dfg, cand, res.portExternal, res.rd0Node,
                              res.rd1Node);
    res.isLocus = true;
    res.ok = true;
    return res;
}

} // namespace

MapResult
mapCandidate(const Dfg &dfg, const IseCandidate &cand,
             const AccelTarget &target,
             const core::LocusParams &locusParams)
{
    switch (target.type) {
      case AccelTarget::Type::SinglePatch:
        return mapSingle(dfg, cand, target.local);
      case AccelTarget::Type::FusedPair: {
        // The kernel sits on the tile hosting the `local` patch, so a
        // candidate may also be satisfied by that patch alone; the
        // remote patch is only reachable through fusion.
        MapResult res = mapSingle(dfg, cand, target.local);
        if (res.ok)
            return res;
        return mapFused(dfg, cand, target.local, target.remote);
      }
      case AccelTarget::Type::Locus:
        return mapLocus(dfg, cand, locusParams);
    }
    STITCH_PANIC("bad AccelTarget type");
}

} // namespace stitch::compiler

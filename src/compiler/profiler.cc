#include "compiler/profiler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace stitch::compiler
{

namespace
{

/** Message hub that lets pipeline stages run standalone. */
class StubHub : public cpu::MessageHub
{
  public:
    Cycles
    send(TileId, TileId, int, Word, Cycles) override
    {
        return 1;
    }

    std::optional<std::pair<Word, Cycles>>
    tryRecv(TileId, TileId, int) override
    {
        return std::make_pair(Word{0}, Cycles{0});
    }
};

/** CUST should not appear in pre-rewrite programs. */
class RejectCustom : public cpu::CustomHandler
{
  public:
    core::CustResult
    executeCustom(TileId, std::uint64_t,
                  const std::array<Word, 4> &) override
    {
        fatal("profiling a program that already contains CUST");
    }
};

} // namespace

ProfileResult
profileProgram(const isa::Program &prog, const ProfileParams &params)
{
    mem::TileMemory memory(params.mem);
    StubHub hub;
    RejectCustom custom;
    cpu::Core core(0, memory, &custom, &hub);
    core.loadProgram(prog);
    core.runToHalt();

    ProfileResult res;
    res.totalCycles = core.time();
    res.instructions = core.instructionsRetired();
    res.execCounts = core.executionCounts();
    res.blocks = findBasicBlocks(prog, res.execCounts);

    // Rank blocks by dynamic instruction share.
    std::uint64_t totalDyn = 0;
    std::vector<std::pair<std::uint64_t, std::size_t>> weighted;
    for (std::size_t i = 0; i < res.blocks.size(); ++i) {
        const BasicBlock &bb = res.blocks[i];
        std::uint64_t w = bb.execCount * bb.size();
        totalDyn += w;
        if (w > 0)
            weighted.emplace_back(w, i);
    }
    std::sort(weighted.begin(), weighted.end(),
              [](const auto &a, const auto &b) {
                  if (a.first != b.first)
                      return a.first > b.first;
                  return a.second < b.second;
              });
    for (const auto &[w, idx] : weighted) {
        if (static_cast<int>(res.hotBlocks.size()) >=
            params.maxHotBlocks)
            break;
        if (totalDyn == 0 ||
            static_cast<double>(w) / static_cast<double>(totalDyn) <
                params.hotThreshold)
            break;
        res.hotBlocks.push_back(idx);
    }
    return res;
}

} // namespace stitch::compiler

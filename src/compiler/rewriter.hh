/**
 * @file
 * The back end of the tool chain (paper Figure 6, "modified GNU
 * Assembler"): replace selected computational patterns with CUST
 * instructions and regenerate a valid binary.
 *
 * Each selection's covered instructions are *sunk* to the position of
 * the last covered one (sound by the ise_ident legality check) and
 * replaced there by optional immediate materializations plus one
 * CUST. Branch targets are remapped to the first surviving
 * instruction at-or-after the original target, which is exact because
 * targets are always block leaders.
 *
 * Register convention: s6..s9 (r28..r31) are reserved as compiler
 * scratch for immediate materialization; kernels must not use them.
 */

#ifndef STITCH_COMPILER_REWRITER_HH
#define STITCH_COMPILER_REWRITER_HH

#include <map>
#include <vector>

#include "compiler/selector.hh"
#include "core/micro.hh"
#include "isa/program.hh"

namespace stitch::compiler
{

/** First of the four registers reserved for materialized immediates. */
inline constexpr RegId firstScratchReg = 28;

/** A rewritten binary plus its side tables. */
struct RewrittenProgram
{
    isa::Program program;

    /**
     * LOCUS targets: interpretable ISE bodies, indexed by the CUST
     * blob values (install into core::LocusSfu at load). Empty for
     * patch targets, whose blobs are packed FusedConfigs.
     */
    std::vector<core::MicroDfg> microTable;

    int custCount = 0;      ///< CUST instructions emitted
    int fusedCustCount = 0; ///< of which use a fused pair
};

/**
 * Apply `selections` (keyed by block index into `blocks`; each list
 * ordered by last covered instruction) to `prog`.
 */
RewrittenProgram
rewriteProgram(const isa::Program &prog,
               const std::vector<BasicBlock> &blocks,
               const std::map<std::size_t, std::vector<SelectedIse>>
                   &selections,
               const std::map<std::size_t, Dfg> &dfgs);

} // namespace stitch::compiler

#endif // STITCH_COMPILER_REWRITER_HH

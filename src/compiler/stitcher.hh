/**
 * @file
 * The stitching algorithm (paper Algorithm 1): allocate patches to
 * the bottleneck kernels of a multi-kernel application, place kernels
 * on tiles, and configure the inter-patch NoC — all at compile time,
 * iterating until the patches run out or the bottleneck kernel cannot
 * be accelerated further.
 */

#ifndef STITCH_COMPILER_STITCHER_HH
#define STITCH_COMPILER_STITCHER_HH

#include <optional>
#include <string>
#include <vector>

#include "compiler/mapper.hh"
#include "core/arch.hh"
#include "core/snoc.hh"
#include "fault/fault.hh"

namespace stitch::compiler
{

/** What the stitcher knows about one kernel. */
struct KernelProfile
{
    std::string name;
    Cycles swCycles = 0; ///< software-only per-iteration cycles

    /** Measured cycles per acceleration option (from compileKernel). */
    std::vector<std::pair<AccelTarget, Cycles>> options;
};

/** One kernel's placement in the plan. */
struct Placement
{
    TileId tile = -1;
    std::optional<AccelTarget> accel; ///< nullopt = software only
    TileId remoteTile = -1;           ///< fused partner's tile
    Cycles cycles = 0;
    int forwardHops = 0;
    int backHops = 0;
};

/** The stitcher's output. */
struct StitchPlan
{
    std::vector<Placement> placements; ///< one per kernel
    core::SnocConfig snoc;

    /** Cycles of the slowest kernel (the pipeline bottleneck). */
    Cycles bottleneckCycles() const;

    /** Figure-10-style description of the fusion map. */
    std::string describe(const std::vector<KernelProfile> &kernels,
                         const core::StitchArch &arch) const;
};

/** Allocation policy for one stitching pass. */
enum class StitchPolicy
{
    Greedy,      ///< paper Algorithm 1: best option per bottleneck
                 ///< (fusion typically wins per kernel)
    SinglesOnly, ///< only single-patch options are considered
    Auto,        ///< run both passes and keep the lower bottleneck
};

/** Stitcher knobs. */
struct StitchOptions
{
    bool allowFusion = true; ///< false = "Stitch w/o fusion"

    /**
     * Auto evaluates both the paper's fusion-greedy pass and a
     * singles-only pass and keeps whichever yields the better
     * pipeline bottleneck: with many similarly-heavy kernels, fusing
     * (two patches per kernel) can starve half the stages. The
     * ablation bench compares policies.
     */
    StitchPolicy policy = StitchPolicy::Auto;
    int maxIterations = 256;
};

/**
 * Run Algorithm 1. The returned plan places every kernel (at most
 * one per tile; kernel count must not exceed the tile count).
 */
StitchPlan
stitchApplication(const std::vector<KernelProfile> &kernels,
                  const core::StitchArch &arch,
                  const StitchOptions &options = StitchOptions{});

/**
 * Degraded-mode stitching: like the overload above, but only patches
 * marked healthy in `health` may be allocated and only healthy sNoC
 * links may carry fused operands. Kernels whose options become
 * unroutable fall back from fused to single-patch to software-only
 * placement; a fully healthy mask reproduces the healthy plan
 * bit-for-bit. Dead patches do not stop their tile hosting a
 * software-only kernel — the core still runs.
 */
StitchPlan
stitchApplication(const std::vector<KernelProfile> &kernels,
                  const core::StitchArch &arch,
                  const fault::ArchHealth &health,
                  const StitchOptions &options = StitchOptions{});

} // namespace stitch::compiler

#endif // STITCH_COMPILER_STITCHER_HH

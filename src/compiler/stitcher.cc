#include "compiler/stitcher.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace stitch::compiler
{

Cycles
StitchPlan::bottleneckCycles() const
{
    Cycles worst = 0;
    for (const auto &p : placements)
        worst = std::max(worst, p.cycles);
    return worst;
}

std::string
StitchPlan::describe(const std::vector<KernelProfile> &kernels,
                     const core::StitchArch &arch) const
{
    std::ostringstream os;
    for (std::size_t k = 0; k < placements.size(); ++k) {
        const Placement &p = placements[k];
        os << strformat("%-14s tile%-2d", kernels[k].name.c_str(),
                        p.tile);
        if (!p.accel) {
            os << "  software only\n";
            continue;
        }
        os << "  " << p.accel->name();
        if (p.accel->type == AccelTarget::Type::FusedPair) {
            os << strformat(
                " (patch%d+patch%d, %d+%d hops, %.2f ns)", p.tile,
                p.remoteTile,
                p.forwardHops, p.backHops,
                core::fusedCriticalPathNs(
                    arch.kindOf(p.tile), arch.kindOf(p.remoteTile),
                    p.forwardHops, p.backHops));
        }
        os << "\n";
    }
    return os.str();
}

namespace
{

/** Internal mutable allocation state. */
struct State
{
    std::vector<Placement> placements;
    std::vector<Cycles> cycles;
    std::vector<std::set<std::string>> checked; ///< tried options
    std::vector<bool> accelerated;
    std::array<bool, numTiles> patchUsed{};
    std::array<bool, numTiles> tileClaimed{};
    core::SnocConfig snoc;
};

/** Free tiles whose patch is of `kind`, healthy, and unused. */
std::vector<TileId>
freeLocalTiles(const State &st, const core::StitchArch &arch,
               const fault::ArchHealth &health, core::PatchKind kind)
{
    std::vector<TileId> out;
    for (TileId t = 0; t < numTiles; ++t)
        if (!st.tileClaimed[static_cast<std::size_t>(t)] &&
            !st.patchUsed[static_cast<std::size_t>(t)] &&
            health.patchOk[static_cast<std::size_t>(t)] &&
            arch.kindOf(t) == kind)
            out.push_back(t);
    return out;
}

/** Healthy unused patches of `kind` (tile may be claimed). */
std::vector<TileId>
freePatchTiles(const State &st, const core::StitchArch &arch,
               const fault::ArchHealth &health, core::PatchKind kind)
{
    std::vector<TileId> out;
    for (TileId t = 0; t < numTiles; ++t)
        if (!st.patchUsed[static_cast<std::size_t>(t)] &&
            health.patchOk[static_cast<std::size_t>(t)] &&
            arch.kindOf(t) == kind)
            out.push_back(t);
    return out;
}

/** Attempt to allocate `option` for kernel `k`; true on success. */
bool
tryAllocate(State &st, const core::StitchArch &arch,
            const fault::ArchHealth &health, std::size_t k,
            const AccelTarget &option, Cycles optionCycles)
{
    if (option.type == AccelTarget::Type::SinglePatch) {
        auto tiles = freeLocalTiles(st, arch, health, option.local);
        if (tiles.empty())
            return false;
        TileId t = tiles.front();
        st.patchUsed[static_cast<std::size_t>(t)] = true;
        st.tileClaimed[static_cast<std::size_t>(t)] = true;
        // The patch result returns to the local register file.
        auto path = st.snoc.addPath(t, core::SnocPort::Patch, t,
                                    core::SnocPort::Reg);
        STITCH_ASSERT(path.has_value(),
                      "local patch-to-reg path cannot fail");
        Placement &p = st.placements[k];
        p.tile = t;
        p.accel = option;
        p.cycles = optionCycles;
        st.cycles[k] = optionCycles;
        st.accelerated[k] = true;
        return true;
    }

    if (option.type == AccelTarget::Type::FusedPair) {
        auto locals = freeLocalTiles(st, arch, health, option.local);
        auto remotes = freePatchTiles(st, arch, health, option.remote);

        // FindPath of Algorithm 1: consider pairs in increasing
        // distance and take the first with a contention-free route
        // within the hop/clock budget.
        std::vector<std::pair<int, std::pair<TileId, TileId>>> pairs;
        for (TileId a : locals)
            for (TileId b : remotes)
                if (a != b)
                    pairs.push_back({tileDistance(a, b), {a, b}});
        std::sort(pairs.begin(), pairs.end());

        for (const auto &[dist, pair] : pairs) {
            auto [a, b] = pair;
            auto routed = st.snoc.addFusion(a, arch.kindOf(a), b,
                                            arch.kindOf(b));
            if (!routed)
                continue;
            st.patchUsed[static_cast<std::size_t>(a)] = true;
            st.patchUsed[static_cast<std::size_t>(b)] = true;
            st.tileClaimed[static_cast<std::size_t>(a)] = true;
            Placement &p = st.placements[k];
            p.tile = a;
            p.accel = option;
            p.remoteTile = b;
            p.cycles = optionCycles;
            p.forwardHops = routed->first.hops();
            p.backHops = routed->second.hops();
            st.cycles[k] = optionCycles;
            st.accelerated[k] = true;
            return true;
        }
        return false;
    }

    return false; // LOCUS options are not stitched
}

} // namespace

namespace
{

/** One stitching pass under a fixed policy. */
StitchPlan
stitchPass(const std::vector<KernelProfile> &kernels,
           const core::StitchArch &arch,
           const fault::ArchHealth &health,
           const StitchOptions &options, bool singlesOnly);

} // namespace

StitchPlan
stitchApplication(const std::vector<KernelProfile> &kernels,
                  const core::StitchArch &arch,
                  const StitchOptions &options)
{
    return stitchApplication(kernels, arch,
                             fault::ArchHealth::healthy(), options);
}

StitchPlan
stitchApplication(const std::vector<KernelProfile> &kernels,
                  const core::StitchArch &arch,
                  const fault::ArchHealth &health,
                  const StitchOptions &options)
{
    bool fusion = options.allowFusion;
    switch (options.policy) {
      case StitchPolicy::Greedy:
        return stitchPass(kernels, arch, health, options, !fusion);
      case StitchPolicy::SinglesOnly:
        return stitchPass(kernels, arch, health, options, true);
      case StitchPolicy::Auto: {
        StitchPlan singles =
            stitchPass(kernels, arch, health, options, true);
        if (!fusion)
            return singles;
        StitchPlan greedy =
            stitchPass(kernels, arch, health, options, false);
        return greedy.bottleneckCycles() <= singles.bottleneckCycles()
                   ? greedy
                   : singles;
      }
    }
    STITCH_PANIC("bad StitchPolicy");
}

namespace
{

StitchPlan
stitchPass(const std::vector<KernelProfile> &kernels,
           const core::StitchArch &arch,
           const fault::ArchHealth &health,
           const StitchOptions &options, bool singlesOnly)
{
    STITCH_ASSERT(static_cast<int>(kernels.size()) <= numTiles,
                  "more kernels than tiles");

    State st;
    // Failed links become unroutable before any FindPath runs, so
    // every fusion the pass accepts is realizable on the degraded
    // mesh; with a healthy mask this is a no-op and the pass is
    // bit-for-bit the seed algorithm.
    health.applyTo(st.snoc);
    st.placements.resize(kernels.size());
    st.cycles.resize(kernels.size());
    st.checked.resize(kernels.size());
    st.accelerated.assign(kernels.size(), false);
    for (std::size_t k = 0; k < kernels.size(); ++k)
        st.cycles[k] = kernels[k].swCycles;

    auto patchesRemain = [&] {
        for (TileId t = 0; t < numTiles; ++t)
            if (!st.patchUsed[static_cast<std::size_t>(t)] &&
                health.patchOk[static_cast<std::size_t>(t)])
                return true;
        return false;
    };

    for (int iter = 0;
         iter < options.maxIterations && patchesRemain(); ++iter) {
        // Bottleneck(A): the kernel with the longest execution time.
        std::size_t bottleneck = 0;
        for (std::size_t k = 1; k < kernels.size(); ++k)
            if (st.cycles[k] > st.cycles[bottleneck])
                bottleneck = k;

        // BestPatches: the unchecked option with the best cycles that
        // actually improves the kernel. One allocation per kernel.
        std::vector<std::pair<Cycles, AccelTarget>> viable;
        if (!st.accelerated[bottleneck]) {
            for (const auto &[target, cycles] :
                 kernels[bottleneck].options) {
                if (target.type == AccelTarget::Type::Locus)
                    continue;
                if (singlesOnly &&
                    target.type == AccelTarget::Type::FusedPair)
                    continue;
                if (cycles >= st.cycles[bottleneck])
                    continue;
                if (st.checked[bottleneck].count(target.name()))
                    continue;
                viable.push_back({cycles, target});
            }
        }
        if (viable.empty())
            break; // the bottleneck kernel cannot be sped up further

        std::sort(viable.begin(), viable.end(),
                  [](const auto &a, const auto &b) {
                      if (a.first != b.first)
                          return a.first < b.first;
                      return a.second.name() < b.second.name();
                  });

        bool progressed = false;
        for (const auto &[cycles, target] : viable) {
            if (tryAllocate(st, arch, health, bottleneck, target,
                            cycles)) {
                progressed = true;
                break;
            }
            st.checked[bottleneck].insert(target.name());
        }
        if (!progressed) {
            // Every viable option was marked checked; the next
            // iteration re-evaluates the (possibly new) bottleneck.
            bool anyUnchecked = false;
            for (std::size_t k = 0; k < kernels.size(); ++k)
                if (!st.accelerated[k] &&
                    st.checked[k].size() <
                        kernels[k].options.size())
                    anyUnchecked = true;
            if (!anyUnchecked)
                break;
        }
    }

    // LocateKernel for the rest: software-only kernels take the
    // remaining tiles in order.
    TileId next = 0;
    for (std::size_t k = 0; k < kernels.size(); ++k) {
        if (st.placements[k].tile >= 0)
            continue;
        while (next < numTiles &&
               st.tileClaimed[static_cast<std::size_t>(next)])
            ++next;
        STITCH_ASSERT(next < numTiles, "ran out of tiles");
        st.tileClaimed[static_cast<std::size_t>(next)] = true;
        st.placements[k].tile = next;
        st.placements[k].cycles = st.cycles[k];
    }

    StitchPlan plan;
    plan.placements = std::move(st.placements);
    plan.snoc = std::move(st.snoc);
    return plan;
}

} // namespace

} // namespace stitch::compiler

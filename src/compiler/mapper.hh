/**
 * @file
 * The graph mapper (paper Section IV): synthesize an ISE candidate
 * onto a polymorphic patch, a fused patch pair, or the LOCUS SFU.
 *
 * Mapping a patch is an exact small search: candidate nodes are
 * assigned to the patch's slots (stage-1 ALU, LMAU, stage-2 unit 1
 * and 2), operand wiring is checked against the real mux options of
 * the 19-bit control word, and external inputs are matched to the
 * four register ports. Success yields the actual PatchCtl/FusedConfig
 * bits plus the operand port order the rewriter must emit — so the
 * thing that executes in simulation is the same configuration a real
 * Stitch binary would carry.
 *
 * Fused mappings conservatively keep all LMAU (SPM) operations on the
 * local patch: the paper distributes variables over both SPMs
 * (Section III-C); pinning them locally preserves behaviour and
 * timing while simplifying data placement (see DESIGN.md).
 */

#ifndef STITCH_COMPILER_MAPPER_HH
#define STITCH_COMPILER_MAPPER_HH

#include <array>
#include <string>

#include "compiler/ise_ident.hh"
#include "core/locus.hh"
#include "core/micro.hh"
#include "core/patch_config.hh"

namespace stitch::compiler
{

/** An acceleration target the compiler can map ISEs onto. */
struct AccelTarget
{
    enum class Type
    {
        SinglePatch, ///< one patch of kind `local`
        FusedPair,   ///< `local` stitched with `remote`
        Locus,       ///< the LOCUS per-core SFU
    };

    Type type = Type::SinglePatch;
    core::PatchKind local = core::PatchKind::ATMA;
    core::PatchKind remote = core::PatchKind::ATMA;

    static AccelTarget
    single(core::PatchKind k)
    {
        return AccelTarget{Type::SinglePatch, k, k};
    }
    static AccelTarget
    fused(core::PatchKind a, core::PatchKind b)
    {
        return AccelTarget{Type::FusedPair, a, b};
    }
    static AccelTarget
    locus()
    {
        return AccelTarget{Type::Locus, core::PatchKind::ATMA,
                           core::PatchKind::ATMA};
    }

    /** Display name, e.g. "{AT-MA,AT-AS}". */
    std::string name() const;

    bool operator==(const AccelTarget &) const = default;
};

/** Successful mapping of one candidate onto one target. */
struct MapResult
{
    bool ok = false;

    /** Patch targets: the exact configuration bits. */
    core::FusedConfig cfg;

    /** Which external (index into candidate.externals) each register
     *  port carries; -1 = port unused. */
    std::array<int, 4> portExternal{{-1, -1, -1, -1}};

    /** Candidate node whose value lands in rd0 / rd1 (-1 = none). */
    int rd0Node = -1;
    int rd1Node = -1;

    /** LOCUS targets: the SFU micro-program. */
    bool isLocus = false;
    core::MicroDfg micro;
};

/** Try to map `cand` onto `target`. */
MapResult mapCandidate(const Dfg &dfg, const IseCandidate &cand,
                       const AccelTarget &target,
                       const core::LocusParams &locusParams
                       = core::LocusParams{});

/**
 * Build the interpretable micro-DFG of `cand` under a given port
 * assignment (used by the LOCUS path and by validation tests).
 */
core::MicroDfg buildMicroDfg(const Dfg &dfg, const IseCandidate &cand,
                             const std::array<int, 4> &portExternal,
                             int rd0Node, int rd1Node);

} // namespace stitch::compiler

#endif // STITCH_COMPILER_MAPPER_HH

/**
 * @file
 * Register liveness across basic blocks (backward dataflow to a
 * fixpoint). The ISE identifier needs accurate live-out sets: a
 * candidate only has to expose a covered value as a register output
 * if someone can still read it — without this, loop-scratch registers
 * (address temporaries, induction helpers) would masquerade as
 * outputs and block most candidates.
 */

#ifndef STITCH_COMPILER_LIVENESS_HH
#define STITCH_COMPILER_LIVENESS_HH

#include <set>
#include <vector>

#include "compiler/dfg.hh"

namespace stitch::compiler
{

/** Registers `in` reads (r0 excluded). */
std::vector<RegId> instrReads(const isa::Instr &in);

/** Register `in` writes, or -1 (r0 writes are discarded). */
RegId instrDef(const isa::Instr &in);

/** Second register written (CUST only), or -1. */
RegId instrDef2(const isa::Instr &in);

/**
 * Live-out register set of every block. Control flow follows
 * branches/jal targets and fallthrough; JALR (indirect) is handled
 * conservatively by treating every register as live at it.
 */
std::vector<std::set<RegId>>
blockLiveOuts(const isa::Program &prog,
              const std::vector<BasicBlock> &blocks);

/**
 * SPM-pointer must-analysis: for every block, the set of registers
 * that are guaranteed to hold scratchpad addresses at block entry
 * (forward dataflow, meet = intersection). A register becomes an SPM
 * pointer by loading an SPM-window constant (lui) or by address
 * arithmetic (add/sub/addi/ori) on one; any other definition clears
 * it. `entrySeed` adds the kernel's own annotation at the program
 * entry (paper's compiler-directed variable mapping [42, 43]).
 */
std::vector<std::set<RegId>>
blockSpmPointers(const isa::Program &prog,
                 const std::vector<BasicBlock> &blocks,
                 const std::vector<RegId> &entrySeed);

} // namespace stitch::compiler

#endif // STITCH_COMPILER_LIVENESS_HH

/**
 * @file
 * Operation-chain mining (paper Section III-A): the analysis that
 * motivated the patch designs.
 *
 * Hot computational patterns are reduced to strings over the four
 * operation classes (A/M/S/T) along DFG paths; multiple rounds of
 * Longest Common Substring identification extract the most common
 * chains with their occurrence rates across kernels — reproducing the
 * paper's {AT}: 95.7%, {MA}: 47.8%, {AA}: 34.8%, {AS}: 21.7%,
 * {SA}: 21.7% style of result.
 */

#ifndef STITCH_COMPILER_CHAINS_HH
#define STITCH_COMPILER_CHAINS_HH

#include <string>
#include <vector>

#include "compiler/dfg.hh"

namespace stitch::compiler
{

/** Chain strings of one kernel. */
struct KernelChains
{
    std::string kernel;
    std::vector<std::string> chains; ///< A/M/S/T strings
};

/** One mined chain with its statistics. */
struct ChainStat
{
    std::string chain;
    int round = 0;
    int kernelsContaining = 0;
    double occurrenceRate = 0.0; ///< share of kernels containing it
};

/**
 * Extract chain strings from a DFG: every maximal path through
 * includable nodes, rendered as operation-class codes.
 */
std::vector<std::string> extractChains(const Dfg &dfg);

/**
 * Multi-round LCS mining. Each round finds the most common substring
 * of length [minLength, maxLength] (ties broken toward longer, then
 * lexicographic) shared by at least two kernels, records its rate,
 * removes it from every string, and recurses on the fragments
 * (paper: "the input of the LCS in round n is the output of round
 * n-1 excluding the most common substring"). The paper mines
 * operator pairs (maxLength = 2): {AT} 95.7%, {MA} 47.8%, ...
 */
std::vector<ChainStat>
mineChains(const std::vector<KernelChains> &kernels, int maxRounds = 8,
           std::size_t minLength = 2,
           std::size_t maxLength = std::size_t(-1));

} // namespace stitch::compiler

#endif // STITCH_COMPILER_CHAINS_HH

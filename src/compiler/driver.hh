/**
 * @file
 * The compiler driver: the full tool-chain pipeline of paper Figure 6
 * for one kernel — profile, identify, map, select, rewrite — across
 * every acceleration target, with compile-and-measure speedups
 * ("In this way, we can get the speedup of each kernel using each
 * patch and combination of any two different patches").
 *
 * Every generated variant is functionally validated: its declared
 * output regions must match the software-only run bit for bit.
 */

#ifndef STITCH_COMPILER_DRIVER_HH
#define STITCH_COMPILER_DRIVER_HH

#include <optional>
#include <string>
#include <vector>

#include "compiler/chains.hh"
#include "compiler/profiler.hh"
#include "compiler/rewriter.hh"

namespace stitch::compiler
{

/** A memory region a kernel declares as its observable output. */
struct OutputRegion
{
    Addr base = 0;
    Addr bytes = 0;
};

/** What the compiler needs to know about a kernel. */
struct KernelInput
{
    isa::Program program;

    /** Registers holding SPM pointers at hot-block entry (stands in
     *  for the paper's compiler-directed variable mapping [42,43]). */
    std::vector<RegId> spmBaseRegs;

    /** Regions compared between software and accelerated runs. */
    std::vector<OutputRegion> outputs;
};

/** Tool-chain knobs. */
struct CompilerOptions
{
    ProfileParams profile;
    IseIdentParams ident;
    core::LocusParams locus;
    bool validate = true;
};

/** One compiled + measured kernel version. */
struct KernelVariant
{
    AccelTarget target;
    RewrittenProgram binary;
    Cycles cycles = 0;
    double speedup = 1.0; ///< software cycles / variant cycles
};

/** The compiler's full output for one kernel. */
struct CompiledKernel
{
    std::string name;
    isa::Program software;
    Cycles softwareCycles = 0;
    std::vector<KernelVariant> variants;
    std::vector<std::string> chainStrings; ///< for the chain miner

    /** Variant for an exact target, or null. */
    const KernelVariant *find(const AccelTarget &target) const;

    /** Best single-patch variant (Fig 11 "patch" series). */
    const KernelVariant *bestSinglePatch() const;

    /** Best variant overall among single + fused (Fig 11 "stitched"). */
    const KernelVariant *bestStitch() const;

    /** The LOCUS variant. */
    const KernelVariant *locusVariant() const;
};

/** The 3 single-patch + 9 ordered fused-pair targets. */
std::vector<AccelTarget> allStitchTargets();

/** Compile and measure `input` across all targets + LOCUS. */
CompiledKernel compileKernel(const std::string &name,
                             const KernelInput &input,
                             const CompilerOptions &options
                             = CompilerOptions{});

/**
 * Run a binary standalone (stubbed messages) and return its cycles;
 * used by the driver and by tests.
 */
Cycles measureBinary(const RewrittenProgram &binary,
                     const std::optional<AccelTarget> &target,
                     const mem::MemParams &memParams,
                     std::vector<std::vector<std::uint8_t>> *outputDump
                     = nullptr,
                     const std::vector<OutputRegion> *regions = nullptr);

} // namespace stitch::compiler

#endif // STITCH_COMPILER_DRIVER_HH

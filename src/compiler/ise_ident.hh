/**
 * @file
 * ISE identification (paper Section IV): enumerate custom-instruction
 * candidates from a hot block's DFG under the 4-input/2-output
 * register-file constraint.
 *
 * A candidate is a connected set of includable nodes that can be
 * legally collapsed into one instruction. Legality is the *sinking*
 * criterion: all covered instructions are moved to the position of
 * the last covered one, which is sound iff no covered node has an
 * ordering successor (RAW/WAR/WAW/memory) that lies between the
 * candidate's first and last positions without being covered itself.
 * This subsumes the classic convexity requirement [Atasu/Pozzi].
 */

#ifndef STITCH_COMPILER_ISE_IDENT_HH
#define STITCH_COMPILER_ISE_IDENT_HH

#include <cstdint>
#include <vector>

#include "compiler/dfg.hh"

namespace stitch::compiler
{

/** One external input of a candidate, deduplicated. */
struct ExternalInput
{
    OperandRef ref;      ///< Reg, Imm, or Node (a value produced
                         ///< earlier in the block, outside the
                         ///< candidate, read from its dest register)
    bool operator==(const ExternalInput &) const = default;
};

/** A custom-instruction candidate. */
struct IseCandidate
{
    std::vector<int> nodes;  ///< candidate node ids, ascending
    std::vector<ExternalInput> externals; ///< <= 4 after filtering
    std::vector<int> outputs; ///< node ids whose value is live outside

    /** Baseline cycles of the covered instructions. */
    Cycles baselineCycles = 0;

    /** Immediate externals that need a li (imm != 0) at rewrite. */
    int materializations = 0;

    bool
    covers(int nodeId) const
    {
        for (int v : nodes)
            if (v == nodeId)
                return true;
        return false;
    }
};

/** Enumeration limits. */
struct IseIdentParams
{
    int maxNodes = 8;          ///< candidate size cap (two patches)
    int maxInputs = 4;         ///< register-file read ports
    int maxOutputs = 2;        ///< register-file write ports
    int maxCandidates = 4096;  ///< per-block explosion guard
};

/**
 * Enumerate all legal candidates of `dfg`.
 *
 * Candidates are connected in the dataflow graph, sink-legal, and
 * satisfy the I/O constraint. Baseline cycle counts use the core's
 * timing model (1 cycle per op, 4 for MUL, 1 for an SPM access).
 */
std::vector<IseCandidate>
identifyCandidates(const Dfg &dfg,
                   const IseIdentParams &params = IseIdentParams{});

/** Baseline core cycles of one includable node. */
Cycles nodeBaselineCycles(const DfgNode &node);

} // namespace stitch::compiler

#endif // STITCH_COMPILER_ISE_IDENT_HH

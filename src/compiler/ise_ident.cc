#include "compiler/ise_ident.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"

namespace stitch::compiler
{

Cycles
nodeBaselineCycles(const DfgNode &node)
{
    switch (node.op) {
      case NodeOp::Mul:
        return 4;
      case NodeOp::Alu:
      case NodeOp::Shift:
      case NodeOp::Load:
      case NodeOp::Store:
        return 1;
      case NodeOp::Other:
        break;
    }
    STITCH_PANIC("baseline cycles of a non-includable node");
}

namespace
{

/** Undirected dataflow adjacency restricted to includable nodes. */
std::vector<std::vector<int>>
includableAdjacency(const Dfg &dfg)
{
    std::vector<std::vector<int>> adj(
        static_cast<std::size_t>(dfg.size()));
    for (int id = 0; id < dfg.size(); ++id) {
        const DfgNode &node = dfg.node(id);
        if (!node.includable())
            continue;
        for (const auto &ref : node.operands) {
            if (ref.kind != OperandRef::Kind::Node)
                continue;
            if (!dfg.node(ref.node).includable())
                continue;
            adj[static_cast<std::size_t>(id)].push_back(ref.node);
            adj[static_cast<std::size_t>(ref.node)].push_back(id);
        }
    }
    for (auto &v : adj) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    }
    return adj;
}

/** The sinking-legality check described in the header. */
bool
sinkLegal(const Dfg &dfg, const std::vector<int> &nodes)
{
    int last = nodes.back(); // nodes are ascending
    std::set<int> covered(nodes.begin(), nodes.end());
    for (int c : nodes) {
        for (int s : dfg.orderSuccs()[static_cast<std::size_t>(c)]) {
            if (s <= last && !covered.count(s))
                return false;
        }
    }
    return true;
}

/** Populate externals/outputs/costs; false if I/O limits break. */
bool
analyzeCandidate(const Dfg &dfg, IseCandidate &cand,
                 const IseIdentParams &params)
{
    std::set<int> covered(cand.nodes.begin(), cand.nodes.end());

    cand.externals.clear();
    cand.outputs.clear();
    cand.baselineCycles = 0;
    cand.materializations = 0;

    auto addExternal = [&](const OperandRef &ref) {
        ExternalInput ext{ref};
        for (const auto &e : cand.externals)
            if (e == ext)
                return;
        cand.externals.push_back(ext);
        if (ref.kind == OperandRef::Kind::Imm && ref.imm != 0)
            ++cand.materializations;
    };

    for (int id : cand.nodes) {
        const DfgNode &node = dfg.node(id);
        STITCH_ASSERT(node.includable());
        cand.baselineCycles += nodeBaselineCycles(node);

        for (const auto &ref : node.operands) {
            bool internal = ref.kind == OperandRef::Kind::Node &&
                            covered.count(ref.node) > 0;
            if (!internal)
                addExternal(ref);
        }

        // An output is needed when the value escapes the candidate:
        // a consumer outside it, or the def is still live after the
        // block.
        if (node.def) {
            bool escapes = dfg.defEscapesBlock(id);
            for (int consumer : dfg.consumersOf(id))
                escapes = escapes || !covered.count(consumer);
            if (escapes)
                cand.outputs.push_back(id);
        }
    }

    // A value produced outside and consumed here arrives through its
    // producer's destination register: normalize Node externals so
    // that producers without a register (stores) are rejected.
    for (const auto &ext : cand.externals) {
        if (ext.ref.kind == OperandRef::Kind::Node &&
            !dfg.node(ext.ref.node).def)
            return false;
    }

    return static_cast<int>(cand.externals.size()) <= params.maxInputs &&
           static_cast<int>(cand.outputs.size()) <= params.maxOutputs;
}

} // namespace

std::vector<IseCandidate>
identifyCandidates(const Dfg &dfg, const IseIdentParams &params)
{
    std::vector<IseCandidate> result;
    auto adj = includableAdjacency(dfg);
    std::set<std::vector<int>> seen;

    // Connected-subgraph enumeration: grow each subset by one
    // adjacent node at a time; dedupe via the sorted node list.
    std::vector<std::vector<int>> frontier;
    for (int id = 0; id < dfg.size(); ++id)
        if (dfg.node(id).includable())
            frontier.push_back({id});

    auto consider = [&](const std::vector<int> &nodes) {
        if (!sinkLegal(dfg, nodes))
            return;
        IseCandidate cand;
        cand.nodes = nodes;
        if (analyzeCandidate(dfg, cand, params))
            result.push_back(std::move(cand));
    };

    for (auto &nodes : frontier) {
        seen.insert(nodes);
        consider(nodes);
    }

    std::size_t cursor = 0;
    std::vector<std::vector<int>> work = std::move(frontier);
    while (cursor < work.size() &&
           static_cast<int>(seen.size()) < params.maxCandidates) {
        std::vector<int> base = work[cursor++];
        if (static_cast<int>(base.size()) >= params.maxNodes)
            continue;
        for (int v : base) {
            for (int n : adj[static_cast<std::size_t>(v)]) {
                if (std::binary_search(base.begin(), base.end(), n))
                    continue;
                std::vector<int> grown = base;
                grown.insert(std::lower_bound(grown.begin(),
                                              grown.end(), n),
                             n);
                if (!seen.insert(grown).second)
                    continue;
                consider(grown);
                work.push_back(std::move(grown));
            }
        }
    }

    return result;
}

} // namespace stitch::compiler

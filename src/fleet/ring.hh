/**
 * @file
 * Consistent-hash ring over stitchd shards (DESIGN.md §16).
 *
 * Placement contract: a job routes by its canonical cacheKey() — the
 * same content address the ResultCache uses — so every duplicate of a
 * job lands on the same shard and dedups/hits there, without the
 * router keeping any per-key state. Each shard contributes `vnodes`
 * points on a 64-bit ring (splitmix64-chained hashes of
 * "name#index", svc::hashBytes); a key is owned by the first point
 * clockwise from its own hash. Virtual nodes smooth the load split
 * (with 64 points per shard the per-shard share of 1k keys stays
 * within a few percent of uniform), and consistent hashing bounds
 * churn: adding or removing one shard moves only the keys whose
 * owning arc changed — about 1/N of them — so a fleet resize does
 * not stampede every shard's cache.
 *
 * Everything here is a pure function of (shard names, vnodes): two
 * routers configured with the same shard list agree on every
 * placement, which assignmentDigest() pins in tests.
 */

#ifndef STITCH_FLEET_RING_HH
#define STITCH_FLEET_RING_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace stitch::fleet
{

/** Points per shard on the ring; enough to keep a 3-shard split
 *  within a few percent of uniform over ~1k keys. */
inline constexpr int defaultVnodes = 64;

class HashRing
{
  public:
    explicit HashRing(int vnodes = defaultVnodes);

    /** Add a shard (idempotent). Throws fault::ConfigError on an
     *  empty name. */
    void addShard(const std::string &name);

    /** Remove a shard; unknown names are ignored. */
    void removeShard(const std::string &name);

    bool contains(const std::string &name) const;
    std::size_t size() const { return shards_.size(); }
    bool empty() const { return shards_.empty(); }
    int vnodes() const { return vnodes_; }

    /** Shard names in insertion order. */
    const std::vector<std::string> &shards() const { return shards_; }

    /**
     * The shard owning `key` (first ring point clockwise from
     * hashBytes(key)). Throws fault::ConfigError on an empty ring.
     */
    const std::string &ownerOf(const std::string &key) const;

    /**
     * The first `n` *distinct* shards clockwise from `key`'s point —
     * the owner first, then the failover order the router walks when
     * shards die. n is clamped to size().
     */
    std::vector<std::string> preferenceList(const std::string &key,
                                            std::size_t n) const;

    /**
     * Order-dependent digest of ownerOf() over `keys` — one number
     * that changes if any placement changes, pinning cross-process
     * determinism in tests.
     */
    std::uint64_t
    assignmentDigest(const std::vector<std::string> &keys) const;

  private:
    void rebuild();

    int vnodes_;
    std::vector<std::string> shards_; ///< insertion order
    /** Sorted (point hash, index into shards_). */
    std::vector<std::pair<std::uint64_t, std::size_t>> points_;
};

} // namespace stitch::fleet

#endif // STITCH_FLEET_RING_HH

#include "fleet/ring.hh"

#include <algorithm>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "svc/job.hh"

namespace stitch::fleet
{

HashRing::HashRing(int vnodes)
    : vnodes_(vnodes)
{
    if (vnodes < 1)
        throw fault::ConfigError(detail::formatMessage(
            "ring vnodes must be >= 1, got ", vnodes));
}

void
HashRing::addShard(const std::string &name)
{
    if (name.empty())
        throw fault::ConfigError("ring shard name must be non-empty");
    if (contains(name))
        return;
    shards_.push_back(name);
    rebuild();
}

void
HashRing::removeShard(const std::string &name)
{
    auto it = std::find(shards_.begin(), shards_.end(), name);
    if (it == shards_.end())
        return;
    shards_.erase(it);
    rebuild();
}

bool
HashRing::contains(const std::string &name) const
{
    return std::find(shards_.begin(), shards_.end(), name) !=
           shards_.end();
}

void
HashRing::rebuild()
{
    points_.clear();
    points_.reserve(shards_.size() *
                    static_cast<std::size_t>(vnodes_));
    for (std::size_t s = 0; s < shards_.size(); ++s)
        for (int v = 0; v < vnodes_; ++v)
            points_.emplace_back(
                svc::hashBytes(shards_[s] + "#" +
                               std::to_string(v)),
                s);
    // Ties (astronomically unlikely) break by shard index so the
    // ring stays a pure function of the shard list.
    std::sort(points_.begin(), points_.end());
}

const std::string &
HashRing::ownerOf(const std::string &key) const
{
    if (points_.empty())
        throw fault::ConfigError(
            "consistent-hash ring has no shards");
    const std::uint64_t h = svc::hashBytes(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(h, std::size_t{0}));
    if (it == points_.end()) // wrap past the top of the ring
        it = points_.begin();
    return shards_[it->second];
}

std::vector<std::string>
HashRing::preferenceList(const std::string &key, std::size_t n) const
{
    std::vector<std::string> prefs;
    if (points_.empty())
        return prefs;
    n = std::min(n, shards_.size());
    const std::uint64_t h = svc::hashBytes(key);
    auto it = std::lower_bound(
        points_.begin(), points_.end(),
        std::make_pair(h, std::size_t{0}));
    std::vector<bool> seen(shards_.size(), false);
    for (std::size_t hops = 0;
         hops < points_.size() && prefs.size() < n; ++hops) {
        if (it == points_.end())
            it = points_.begin();
        if (!seen[it->second]) {
            seen[it->second] = true;
            prefs.push_back(shards_[it->second]);
        }
        ++it;
    }
    return prefs;
}

std::uint64_t
HashRing::assignmentDigest(
    const std::vector<std::string> &keys) const
{
    std::uint64_t digest = 0;
    for (const std::string &key : keys)
        digest = svc::hashBytes(std::to_string(digest) + "|" + key +
                                "->" + ownerOf(key));
    return digest;
}

} // namespace stitch::fleet

/**
 * @file
 * stitchload's core: a seeded, deterministic device-fleet traffic
 * mix and the closed-loop harness that replays it against one
 * stitchd (or a stitchrouter fronting a fleet).
 *
 * The mix models a wearable device fleet phoning home: a small *hot
 * set* of jobs that many devices duplicate (the fleet-wide cache and
 * dedup path), a long tail of unique jobs (the simulate path —
 * distinct cache identities made by distinct maxInstructions
 * budgets, which are hashed into the key but never reached by these
 * short runs), priority bands drawn per request, and optional
 * bursts (every `burstEvery` requests each client pauses, so load
 * arrives in waves instead of a steady stream).
 *
 * Determinism contract: buildSchedule() is a pure function of the
 * LoadMix — same seed, same request stream, byte for byte — which
 * scheduleDigest() pins. The *replay* is closed-loop over `clients`
 * threads claiming schedule slots from an atomic cursor, so
 * completion order (and therefore which duplicate wins the
 * single-flight race) is timing-dependent, but the set of requests
 * sent never is. Responses are judged by the typed-error contract:
 * every error must carry an error_kind; `untyped_failures` counts
 * the ones that do not, and the CI fleet gate asserts it is zero
 * even while a shard is being SIGKILLed mid-run.
 */

#ifndef STITCH_FLEET_LOAD_HH
#define STITCH_FLEET_LOAD_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hh"
#include "svc/chaos.hh"
#include "telem/histogram.hh"

namespace stitch::fleet
{

inline constexpr const char *loadReportSchema = "stitch-load-report";
inline constexpr int loadReportVersion = 1;

/** One seeded traffic mix (the stitchload flags). */
struct LoadMix
{
    std::uint64_t seed = 1;
    int requests = 200; ///< schedule length
    int clients = 4;    ///< closed-loop client threads

    /** Probability a request replays a hot-set job (a duplicate many
     *  devices submit); the rest are long-tail uniques. */
    double hotFraction = 0.6;
    int hotSetSize = 8; ///< distinct jobs in the hot set

    /** 0 = steady stream; N > 0 = each client pauses burstPauseMs
     *  after every N schedule slots, so load arrives in waves. */
    int burstEvery = 0;
    std::uint64_t burstPauseMs = 5;

    /** Client-side retry budget: transport failures and "overloaded"
     *  rejections back off and retry deterministically (keyed on the
     *  schedule index). */
    svc::RetryPolicy retry{/*maxAttempts=*/3, /*baseDelayMs=*/2.0,
                           /*maxDelayMs=*/250.0, /*multiplier=*/2.0,
                           /*seed=*/0};

    /** Per-request socket timeout (ms). */
    std::uint64_t timeoutMs = 5000;

    /** Typed validation; throws fault::ConfigError. */
    void validate() const;
};

/** One schedule slot: the document to send plus its identity. */
struct LoadRequest
{
    obs::Json doc;   ///< the stitch-job document
    std::string key; ///< canonical cacheKey (routing identity)
    int priority = 0;
    bool hot = false; ///< drawn from the hot set
};

/** The deterministic request stream (pure function of `mix`). */
std::vector<LoadRequest> buildSchedule(const LoadMix &mix);

/** Order-dependent digest over the schedule's documents — two
 *  processes with the same mix agree on every byte. */
std::uint64_t
scheduleDigest(const std::vector<LoadRequest> &schedule);

/** What came back: the stitch-load-report v1 document's contents. */
struct LoadReport
{
    std::uint64_t seed = 0;
    int requests = 0;
    int clients = 0;
    std::uint64_t digest = 0; ///< scheduleDigest of what was sent

    double wallS = 0.0;
    std::uint64_t ok = 0;       ///< status:"ok" responses
    std::uint64_t cached = 0;   ///< ok responses with cached:true
    std::uint64_t shed = 0;     ///< typed "overloaded" rejections
    std::uint64_t retries = 0;  ///< extra attempts beyond the first
    std::uint64_t untypedFailures = 0;  ///< errors w/o error_kind
    std::uint64_t transportFailures = 0; ///< no response at all
    /** Typed error tallies, sorted by kind. */
    std::vector<std::pair<std::string, std::uint64_t>> errors;
    /** ok responses per serving shard (router-annotated; a direct
     *  daemon run leaves this empty). */
    std::vector<std::pair<std::string, std::uint64_t>> shards;
    telem::Histogram latency; ///< e2e per request (µs)

    double
    jobsPerSecond() const
    {
        return wallS > 0.0 ? static_cast<double>(ok) / wallS : 0.0;
    }

    /** cached / ok — the fleet-wide hit rate the mix achieved. */
    double
    hitRate() const
    {
        return ok > 0 ? static_cast<double>(cached) /
                            static_cast<double>(ok)
                      : 0.0;
    }

    /** The stitch-load-report v1 document. */
    obs::Json toJson() const;
};

/** Replay `mix` against host:port (daemon or router) and tally. */
LoadReport runLoad(const LoadMix &mix, const std::string &host,
                   std::uint16_t port);

} // namespace stitch::fleet

#endif // STITCH_FLEET_LOAD_HH

#include "fleet/router.hh"

#include <chrono>
#include <thread>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/buildinfo.hh"
#include "svc/job.hh"
#include "svc/server.hh"
#include "telem/exposition.hh"
#include "telem/timeseries.hh"

namespace stitch::fleet
{

namespace
{

void
stamp(obs::Json &doc, const char *schema)
{
    doc.set("schema", schema);
    doc.set("version", routerSchemaVersion);
}

obs::Json
cmdRequest(const char *cmd)
{
    obs::Json doc = obs::Json::object();
    doc.set("cmd", cmd);
    return doc;
}

} // namespace

Router::Router(const RouterOptions &options)
    : options_(options), ring_(options.vnodes)
{
    if (options_.shards.empty())
        throw fault::ConfigError(
            "router needs at least one shard (--shards=HOST:PORT)");
    options_.retry.validate();
    for (const std::string &text : options_.shards) {
        Shard shard;
        shard.endpoint = svc::parsePeerEndpoint(text);
        const std::string name = shard.endpoint.name();
        if (ring_.contains(name))
            throw fault::ConfigError(detail::formatMessage(
                "duplicate shard endpoint '", name, "'"));
        ring_.addShard(name);
        shards_.push_back(std::move(shard));
    }
}

Router::Shard &
Router::shardByName(const std::string &name)
{
    for (Shard &shard : shards_)
        if (shard.endpoint.name() == name)
            return shard;
    STITCH_PANIC("shard not on the ring: ", name);
}

bool
Router::skipDead(const Shard &shard) const
{
    if (!shard.dead)
        return false;
    const auto held = std::chrono::steady_clock::now() -
                      shard.deadSince;
    return held < std::chrono::milliseconds(options_.holdoffMs);
}

obs::Json
Router::handle(const obs::Json &request)
{
    try {
        if (request.isObject() && request.has("cmd")) {
            const std::string cmd =
                request.get("cmd").asString();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.cmdsServed;
            }
            if (cmd == "healthz")
                return healthzJson();
            if (cmd == "statz" || cmd == "metrics" ||
                cmd == "fleetz")
                return statzJson();
            if (cmd == "scrape")
                return scrapeJson();
            return svc::errorResponseJson(
                "config", "unknown cmd: " + cmd);
        }
        return routeJob(request);
    } catch (const fault::ConfigError &e) {
        return svc::errorResponseJson("config", e.what());
    } catch (const std::exception &e) {
        return svc::errorResponseJson("internal", e.what());
    }
}

obs::Json
Router::routeJob(const obs::Json &request)
{
    // Validate eagerly: a malformed job must answer a typed "config"
    // error from the router, not burn a shard round-trip.
    std::string key;
    try {
        key = svc::JobSpec::fromJson(request).cacheKey();
    } catch (const fault::ConfigError &e) {
        return svc::errorResponseJson("config", e.what());
    }

    const std::vector<std::string> prefs =
        ring_.preferenceList(key, ring_.size());
    const std::uint64_t key64 = svc::hashBytes(key);
    const int maxAttempts = std::max(1, options_.retry.maxAttempts);

    int attempt = 0;
    std::string lastError = "no shard reachable";
    bool candidates = true;
    while (attempt < maxAttempts && candidates) {
        candidates = false;
        for (std::size_t pi = 0;
             pi < prefs.size() && attempt < maxAttempts; ++pi) {
            Shard &shard = shardByName(prefs[pi]);
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (skipDead(shard))
                    continue;
            }
            candidates = true;
            ++attempt;
            if (attempt > 1 || pi > 0) {
                // A failover hop: the job left its ring owner —
                // either a live attempt on it failed (attempt > 1)
                // or it is marked dead and was skipped (pi > 0).
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.failoverReroutes;
            }
            obs::Json response;
            try {
                response = svc::requestReport(
                    shard.endpoint.host, shard.endpoint.port,
                    request, /*chaos=*/nullptr,
                    /*requestIndex=*/key64,
                    options_.shardTimeoutMs);
            } catch (const fault::ConfigError &e) {
                lastError = e.what();
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    shard.dead = true;
                    shard.deadSince =
                        std::chrono::steady_clock::now();
                    ++shard.failures;
                    ++stats_.shardFailures;
                }
                if (attempt < maxAttempts &&
                    options_.retry.enabled()) {
                    const std::uint64_t us =
                        options_.retry.delayUsAfter(key64, attempt);
                    if (us > 0)
                        std::this_thread::sleep_for(
                            std::chrono::microseconds(us));
                }
                continue;
            }
            {
                // The shard answered — it is alive, even if the
                // answer is a typed error the client must handle.
                std::lock_guard<std::mutex> lock(mutex_);
                shard.dead = false;
                ++shard.routed;
                ++stats_.jobsRouted;
            }
            if (response.isObject()) {
                response.set("shard", shard.endpoint.name());
                response.set("router_attempts", attempt);
            }
            return response;
        }
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.unavailable;
    }
    return svc::errorResponseJson(
        "unavailable",
        detail::formatMessage("no shard could serve the job after ",
                              attempt, " attempt(s): ", lastError));
}

obs::Json
Router::healthzJson()
{
    obs::Json doc = obs::Json::object();
    stamp(doc, routerHealthzSchema);
    doc.set("status", "ok");
    doc.set("build", obs::buildInfoJson());
    const auto uptime = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start_);
    doc.set("uptime_s", uptime.count());

    obs::Json shardsJson = obs::Json::array();
    std::uint64_t healthy = 0;
    const obs::Json probe = cmdRequest("healthz");
    for (Shard &shard : shards_) {
        obs::Json entry = obs::Json::object();
        entry.set("name", shard.endpoint.name());
        bool alive = false;
        try {
            obs::Json resp = svc::requestReport(
                shard.endpoint.host, shard.endpoint.port, probe,
                /*chaos=*/nullptr, /*requestIndex=*/0,
                options_.shardTimeoutMs);
            alive = resp.isObject() && resp.has("status") &&
                    resp.get("status").asString() == "ok";
            if (alive && resp.has("uptime_s"))
                entry.set("uptime_s",
                          resp.get("uptime_s").asDouble());
        } catch (const fault::ConfigError &) {
            alive = false;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            shard.dead = !alive;
            if (!alive)
                shard.deadSince = std::chrono::steady_clock::now();
            entry.set("healthy", alive);
            entry.set("routed", shard.routed);
            entry.set("failures", shard.failures);
        }
        if (alive)
            ++healthy;
        shardsJson.push(std::move(entry));
    }
    doc.set("shards", std::move(shardsJson));
    doc.set("healthy_shards", healthy);
    doc.set("total_shards",
            static_cast<std::uint64_t>(shards_.size()));
    return doc;
}

obs::Json
Router::statzJson()
{
    obs::Json doc = obs::Json::object();
    stamp(doc, routerStatzSchema);
    doc.set("build", obs::buildInfoJson());
    const auto uptime = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start_);
    doc.set("uptime_s", uptime.count());

    // Fold every live shard's lossless fleetz snapshot with the
    // telemetry merge algebra: counters and histogram buckets add,
    // windows align by seq. Quantiles are computed on the *merged*
    // population, never averaged across shards.
    telem::MetricSample merged;
    telem::TimeSeries series;
    bool haveSample = false;
    std::uint64_t healthy = 0;
    obs::Json shardsJson = obs::Json::array();
    const obs::Json probe = cmdRequest("fleetz");
    for (Shard &shard : shards_) {
        obs::Json entry = obs::Json::object();
        entry.set("name", shard.endpoint.name());
        bool alive = false;
        try {
            obs::Json resp = svc::requestReport(
                shard.endpoint.host, shard.endpoint.port, probe,
                /*chaos=*/nullptr, /*requestIndex=*/0,
                options_.shardTimeoutMs);
            if (resp.isObject() && resp.has("sample")) {
                telem::MetricSample sample =
                    telem::MetricSample::fromWireJson(
                        resp.get("sample"));
                entry.set("jobs_completed",
                          sample.counter("jobs_completed"));
                entry.set("jobs_failed",
                          sample.counter("jobs_failed"));
                entry.set("jobs_cache_hits",
                          sample.counter("jobs_cache_hits"));
                entry.set("queue_depth",
                          sample.gauge("queue_depth"));
                if (haveSample) {
                    merged.merge(sample);
                } else {
                    merged = std::move(sample);
                    haveSample = true;
                }
                if (resp.has("windows")) {
                    const obs::Json &windows =
                        resp.get("windows");
                    telem::TimeSeries shardSeries;
                    for (std::size_t i = 0; i < windows.size();
                         ++i)
                        shardSeries.push(
                            telem::Window::fromWireJson(
                                windows.at(i)));
                    series.merge(shardSeries);
                }
                alive = true;
            }
        } catch (const fault::ConfigError &) {
            alive = false;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            shard.dead = !alive;
            if (!alive)
                shard.deadSince = std::chrono::steady_clock::now();
            entry.set("healthy", alive);
            entry.set("routed", shard.routed);
            entry.set("failures", shard.failures);
        }
        if (alive)
            ++healthy;
        shardsJson.push(std::move(entry));
    }
    doc.set("shards", std::move(shardsJson));

    obs::Json router = obs::Json::object();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        router.set("jobs_routed", stats_.jobsRouted);
        router.set("failover_reroutes", stats_.failoverReroutes);
        router.set("shard_failures", stats_.shardFailures);
        router.set("unavailable", stats_.unavailable);
        router.set("cmds_served", stats_.cmdsServed);
    }
    router.set("ring_vnodes",
               static_cast<std::uint64_t>(ring_.vnodes()));
    doc.set("router", std::move(router));

    obs::Json fleet = obs::Json::object();
    fleet.set("healthy_shards", healthy);
    fleet.set("total_shards",
              static_cast<std::uint64_t>(shards_.size()));
    if (haveSample) {
        const std::uint64_t completed =
            merged.counter("jobs_completed");
        const std::uint64_t hits =
            merged.counter("jobs_cache_hits");
        fleet.set("jobs_submitted",
                  merged.counter("jobs_submitted"));
        fleet.set("jobs_completed", completed);
        fleet.set("jobs_failed", merged.counter("jobs_failed"));
        fleet.set("jobs_shed", merged.counter("jobs_shed"));
        fleet.set("jobs_cache_hits", hits);
        fleet.set("remote_cache_hits",
                  merged.counter("remote_cache_hits"));
        fleet.set("remote_cache_errors",
                  merged.counter("remote_cache_errors"));
        fleet.set("fleet_hit_rate",
                  completed > 0 ? static_cast<double>(hits) /
                                      static_cast<double>(completed)
                                : 0.0);
        fleet.set("queue_depth", merged.gauge("queue_depth"));
        if (const telem::Histogram *e2e =
                merged.histogram("e2e")) {
            fleet.set("e2e_p50_ms",
                      static_cast<double>(e2e->quantile(0.5)) /
                          1000.0);
            fleet.set("e2e_p99_ms",
                      static_cast<double>(e2e->quantile(0.99)) /
                          1000.0);
        }
        fleet.set("sample", merged.toWireJson());
        fleet.set("series", series.toJson());
    }
    doc.set("fleet", std::move(fleet));
    return doc;
}

obs::Json
Router::scrapeJson()
{
    // One exposition for the whole fleet: merge every live shard's
    // sample, then render it exactly as a single stitchd would.
    telem::MetricSample merged;
    bool haveSample = false;
    const obs::Json probe = cmdRequest("fleetz");
    for (Shard &shard : shards_) {
        try {
            obs::Json resp = svc::requestReport(
                shard.endpoint.host, shard.endpoint.port, probe,
                /*chaos=*/nullptr, /*requestIndex=*/0,
                options_.shardTimeoutMs);
            if (!resp.isObject() || !resp.has("sample"))
                continue;
            telem::MetricSample sample =
                telem::MetricSample::fromWireJson(
                    resp.get("sample"));
            if (haveSample) {
                merged.merge(sample);
            } else {
                merged = std::move(sample);
                haveSample = true;
            }
        } catch (const fault::ConfigError &) {
            continue; // dead shards just drop out of the scrape
        }
    }
    const obs::Json build = obs::buildInfoJson();
    telem::ExpositionExtras extras;
    const auto uptime = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start_);
    extras.uptimeS = uptime.count();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        extras.served = stats_.jobsRouted + stats_.cmdsServed;
    }
    extras.buildInfo = &build;

    obs::Json doc = obs::Json::object();
    stamp(doc, "stitchrouter-scrape");
    doc.set("content_type", telem::expositionContentType);
    doc.set("exposition", telem::prometheusText(merged, extras));
    return doc;
}

RouterStats
Router::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace stitch::fleet

/**
 * @file
 * The stitchrouter core: one svc::Server::RequestHandler that fronts
 * a fleet of stitchd shards (DESIGN.md §16).
 *
 * Job path: a stitch-job document routes by its canonical cacheKey()
 * through the consistent-hash ring (fleet/ring.hh), so duplicates of
 * a job always land on the same shard and dedup there. A shard that
 * fails at the transport level (connect refused, framing failure,
 * socket timeout) is marked dead and the job regains its place on
 * the ring's preference list — the failover hop is counted
 * (`failover_reroutes`) and the total attempts per job are bounded
 * by RouterOptions::retry (svc::RetryPolicy), with the policy's
 * deterministic jittered backoff between attempts. Dead shards are
 * re-probed after `holdoffMs` (the next routed job doubles as the
 * probe), so a restarted shard rejoins without operator action.
 * When every attempt is exhausted the client gets the typed
 * "unavailable" error — never a dropped connection, never an
 * untyped failure.
 *
 * Introspection path: "cmd" documents are answered fleet-wide.
 * healthz probes every shard and reports per-shard liveness; statz /
 * metrics fetch each live shard's "fleetz" snapshot (the lossless
 * MetricSample + retained windows wire form) and fold them with the
 * telemetry merge algebra — Histogram::merge bucket-by-bucket,
 * windows aligned by seq — so fleet-level p50/p99 are computed from
 * real merged populations, not averaged quantiles. scrape renders
 * the merged sample as one Prometheus exposition for the whole
 * fleet.
 */

#ifndef STITCH_FLEET_ROUTER_HH
#define STITCH_FLEET_ROUTER_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "fleet/ring.hh"
#include "obs/json.hh"
#include "svc/chaos.hh"
#include "svc/remote_cache.hh"

namespace stitch::fleet
{

/** Schema stamps for the router's own documents. */
inline constexpr const char *routerStatzSchema = "stitchrouter-statz";
inline constexpr const char *routerHealthzSchema =
    "stitchrouter-healthz";
inline constexpr int routerSchemaVersion = 1;

struct RouterOptions
{
    /** Shard endpoints ("host:port"); at least one required. */
    std::vector<std::string> shards;

    /** Ring points per shard. */
    int vnodes = defaultVnodes;

    /** Bounds the *total* attempts per routed job (first try
     *  included) and shapes the backoff between them. The default
     *  gives each job up to three shards before "unavailable". */
    svc::RetryPolicy retry{/*maxAttempts=*/3, /*baseDelayMs=*/2.0,
                           /*maxDelayMs=*/250.0, /*multiplier=*/2.0,
                           /*seed=*/0};

    /** Per-request socket timeout toward a shard (ms); a hung shard
     *  must surface as a failover, not a wedged router. */
    std::uint64_t shardTimeoutMs = 5000;

    /** How long a shard marked dead is skipped before the next job
     *  re-probes it. */
    std::uint64_t holdoffMs = 1000;
};

/** Router-level counters (shard-level live in statzJson()). */
struct RouterStats
{
    std::uint64_t jobsRouted = 0;      ///< job documents forwarded
    std::uint64_t failoverReroutes = 0; ///< hops past a dead shard
    std::uint64_t shardFailures = 0;   ///< transport failures seen
    std::uint64_t unavailable = 0;     ///< jobs out of shards
    std::uint64_t cmdsServed = 0;      ///< introspection requests
};

class Router
{
  public:
    /** Validates options (>= 1 shard, parseable endpoints, sane
     *  retry policy); throws fault::ConfigError. */
    explicit Router(const RouterOptions &options);

    /** The Server::RequestHandler: dispatches "cmd" documents to the
     *  fleet aggregators and everything else to routeJob(). Never
     *  throws; every failure is a typed error response. */
    obs::Json handle(const obs::Json &request);

    /** Fleet-wide statz (also the "statz" cmd): per-shard health +
     *  served counts, merged fleet sample summary, router counters. */
    obs::Json statzJson();

    RouterStats stats() const;
    const HashRing &ring() const { return ring_; }
    const RouterOptions &options() const { return options_; }

  private:
    struct Shard
    {
        svc::PeerEndpoint endpoint;
        bool dead = false;
        std::chrono::steady_clock::time_point deadSince{};
        std::uint64_t routed = 0;
        std::uint64_t failures = 0;
    };

    obs::Json routeJob(const obs::Json &request);
    obs::Json healthzJson();
    obs::Json scrapeJson();
    Shard &shardByName(const std::string &name);

    /** True when the shard should be skipped (dead, holdoff not yet
     *  expired). */
    bool skipDead(const Shard &shard) const;

    RouterOptions options_;
    HashRing ring_;
    std::vector<Shard> shards_; ///< same order as ring_.shards()

    mutable std::mutex mutex_; ///< stats_ + shard health
    RouterStats stats_;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

} // namespace stitch::fleet

#endif // STITCH_FLEET_ROUTER_HH

#include "fleet/load.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "common/logging.hh"
#include "common/rng.hh"
#include "fault/fault.hh"
#include "svc/job.hh"
#include "svc/server.hh"

namespace stitch::fleet
{

namespace
{

/** The device-app pool the mix draws from (cheap sample windows so
 *  a schedule of hundreds stays a sub-minute run). */
constexpr const char *kApps[] = {"APP1-gesture", "APP2-cnn",
                                 "APP3-svm-enc", "APP4-transport"};
constexpr apps::AppMode kModes[] = {
    apps::AppMode::Stitch, apps::AppMode::Baseline,
    apps::AppMode::Locus, apps::AppMode::StitchNoFusion};

/** maxInstructions base for synthetic identities: far above what a
 *  1/2-sample run executes, so the budget is part of the cache key
 *  but never changes the simulation. Hot jobs get base+k, tail jobs
 *  get 2*base+i — all distinct, all unreachable. */
constexpr std::uint64_t kBudgetBase = 50'000'000;

svc::JobSpec
specFor(Rng &rng, std::uint64_t budget, const std::string &label)
{
    svc::JobSpec spec;
    spec.app = kApps[rng.range(0, 3)];
    spec.mode = kModes[rng.range(0, 3)];
    spec.samplesShort = 1;
    spec.samplesLong = 2;
    spec.maxInstructions = budget;
    spec.name = label;
    return spec;
}

} // namespace

void
LoadMix::validate() const
{
    if (requests < 1)
        throw fault::ConfigError(detail::formatMessage(
            "load mix needs requests >= 1, got ", requests));
    if (clients < 1)
        throw fault::ConfigError(detail::formatMessage(
            "load mix needs clients >= 1, got ", clients));
    if (hotFraction < 0.0 || hotFraction > 1.0)
        throw fault::ConfigError(detail::formatMessage(
            "hot fraction must be in [0, 1], got ", hotFraction));
    if (hotSetSize < 1)
        throw fault::ConfigError(detail::formatMessage(
            "hot set size must be >= 1, got ", hotSetSize));
    if (burstEvery < 0)
        throw fault::ConfigError(detail::formatMessage(
            "burst period must be >= 0, got ", burstEvery));
    retry.validate();
}

std::vector<LoadRequest>
buildSchedule(const LoadMix &mix)
{
    mix.validate();
    Rng rng(mix.seed);

    // The hot set first: the jobs many devices duplicate.
    std::vector<svc::JobSpec> hotSet;
    hotSet.reserve(static_cast<std::size_t>(mix.hotSetSize));
    for (int k = 0; k < mix.hotSetSize; ++k)
        hotSet.push_back(
            specFor(rng, kBudgetBase + static_cast<std::uint64_t>(k),
                    "load-hot-" + std::to_string(k)));

    std::vector<LoadRequest> schedule;
    schedule.reserve(static_cast<std::size_t>(mix.requests));
    std::uint64_t tail = 0;
    for (int i = 0; i < mix.requests; ++i) {
        const bool hot = rng.uniform() < mix.hotFraction;
        svc::JobSpec spec;
        if (hot) {
            spec = hotSet[static_cast<std::size_t>(
                rng.range(0, mix.hotSetSize - 1))];
        } else {
            ++tail;
            spec = specFor(rng, 2 * kBudgetBase + tail,
                           "load-tail-" + std::to_string(tail));
        }
        // Priority bands: most traffic is background, a band of
        // interactive requests rides above it.
        spec.priority = static_cast<int>(rng.range(0, 2));
        LoadRequest req;
        req.doc = spec.toJson();
        req.key = spec.cacheKey();
        req.priority = spec.priority;
        req.hot = hot;
        schedule.push_back(std::move(req));
    }
    return schedule;
}

std::uint64_t
scheduleDigest(const std::vector<LoadRequest> &schedule)
{
    std::uint64_t digest = 0;
    for (const LoadRequest &req : schedule)
        digest = svc::hashBytes(std::to_string(digest) + "|" +
                                req.doc.dump());
    return digest;
}

LoadReport
runLoad(const LoadMix &mix, const std::string &host,
        std::uint16_t port)
{
    const std::vector<LoadRequest> schedule = buildSchedule(mix);

    struct ClientTally
    {
        std::uint64_t ok = 0;
        std::uint64_t cached = 0;
        std::uint64_t shed = 0;
        std::uint64_t retries = 0;
        std::uint64_t untyped = 0;
        std::uint64_t transport = 0;
        std::map<std::string, std::uint64_t> errors;
        std::map<std::string, std::uint64_t> shards;
        telem::Histogram latency;
    };

    std::vector<ClientTally> tallies(
        static_cast<std::size_t>(mix.clients));
    std::atomic<std::size_t> cursor{0};

    auto client = [&](ClientTally &tally) {
        for (;;) {
            const std::size_t i = cursor.fetch_add(1);
            if (i >= schedule.size())
                return;
            if (mix.burstEvery > 0 && i > 0 &&
                i % static_cast<std::size_t>(mix.burstEvery) == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(mix.burstPauseMs));
            const auto t0 = std::chrono::steady_clock::now();
            obs::Json response;
            int attempts = 1;
            try {
                response = svc::requestReportWithRetry(
                    host, port, schedule[i].doc, mix.retry,
                    /*requestIndex=*/i, /*chaos=*/nullptr,
                    &attempts, mix.timeoutMs);
            } catch (const fault::ConfigError &) {
                tally.retries += static_cast<std::uint64_t>(
                    std::max(0, attempts - 1));
                ++tally.transport;
                continue;
            }
            const auto elapsed =
                std::chrono::duration_cast<
                    std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0);
            tally.latency.record(
                static_cast<std::uint64_t>(elapsed.count()));
            tally.retries += static_cast<std::uint64_t>(
                std::max(0, attempts - 1));

            if (!response.isObject() || !response.has("status")) {
                ++tally.untyped; // a response we cannot even type
                continue;
            }
            const std::string status =
                response.get("status").asString();
            if (status == "ok") {
                ++tally.ok;
                if (response.has("cached") &&
                    response.get("cached").asBool())
                    ++tally.cached;
                if (response.has("shard"))
                    ++tally.shards[response.get("shard")
                                       .asString()];
                continue;
            }
            if (!response.has("error_kind") ||
                response.get("error_kind").asString().empty()) {
                ++tally.untyped; // the contract the fleet CI gates
                continue;
            }
            const std::string kind =
                response.get("error_kind").asString();
            ++tally.errors[kind];
            if (kind == "overloaded")
                ++tally.shed;
        }
    };

    const auto wallStart = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(tallies.size());
    for (ClientTally &tally : tallies)
        threads.emplace_back([&client, &tally] { client(tally); });
    for (std::thread &t : threads)
        t.join();
    const auto wall = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - wallStart);

    LoadReport report;
    report.seed = mix.seed;
    report.requests = mix.requests;
    report.clients = mix.clients;
    report.digest = scheduleDigest(schedule);
    report.wallS = wall.count();
    std::map<std::string, std::uint64_t> errors;
    std::map<std::string, std::uint64_t> shards;
    for (const ClientTally &tally : tallies) {
        report.ok += tally.ok;
        report.cached += tally.cached;
        report.shed += tally.shed;
        report.retries += tally.retries;
        report.untypedFailures += tally.untyped;
        report.transportFailures += tally.transport;
        for (const auto &[kind, n] : tally.errors)
            errors[kind] += n;
        for (const auto &[name, n] : tally.shards)
            shards[name] += n;
        report.latency.merge(tally.latency);
    }
    report.errors.assign(errors.begin(), errors.end());
    report.shards.assign(shards.begin(), shards.end());
    return report;
}

obs::Json
LoadReport::toJson() const
{
    obs::Json doc = obs::Json::object();
    doc.set("schema", loadReportSchema);
    doc.set("version", loadReportVersion);
    doc.set("seed", seed);
    doc.set("requests", static_cast<std::uint64_t>(requests));
    doc.set("clients", static_cast<std::uint64_t>(clients));
    doc.set("schedule_digest", digest);
    doc.set("wall_s", wallS);
    doc.set("jobs_s", jobsPerSecond());
    doc.set("ok", ok);
    doc.set("cached", cached);
    doc.set("fleet_hit_rate", hitRate());
    doc.set("shed", shed);
    doc.set("retries", retries);
    doc.set("untyped_failures", untypedFailures);
    doc.set("transport_failures", transportFailures);

    obs::Json errorsJson = obs::Json::object();
    for (const auto &[kind, n] : errors)
        errorsJson.set(kind, n);
    doc.set("errors", std::move(errorsJson));

    obs::Json shardsJson = obs::Json::object();
    for (const auto &[name, n] : shards)
        shardsJson.set(name, n);
    doc.set("shards", std::move(shardsJson));

    obs::Json lat = obs::Json::object();
    lat.set("count", latency.count());
    lat.set("p50_ms",
            static_cast<double>(latency.quantile(0.5)) / 1000.0);
    lat.set("p90_ms",
            static_cast<double>(latency.quantile(0.9)) / 1000.0);
    lat.set("p99_ms",
            static_cast<double>(latency.quantile(0.99)) / 1000.0);
    lat.set("max_ms",
            static_cast<double>(latency.max()) / 1000.0);
    doc.set("latency", std::move(lat));
    return doc;
}

} // namespace stitch::fleet

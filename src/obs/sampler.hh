/**
 * @file
 * Fixed-window interval sampler for cycle-attribution timelines.
 *
 * Like the Tracer, one process-wide instance guarded by an inline
 * enabled() flag: simulation loops test one predictable branch and pay
 * nothing when no harness asked for interval profiling
 * (--profile=INTERVAL). When enabled, the producer (sim::System's run
 * loop) feeds per-track cycle deltas tagged with a small series index;
 * the sampler bins them into fixed windows of `interval` cycles.
 *
 * The sampler is deliberately generic — tracks are small integers
 * (tile ids) and series are named by the producer at beginRun() — so
 * obs stays ignorant of the attribution semantics that src/prof/
 * assigns to the series. Every delta is attributed in full to the
 * window containing the producing step's completion time, so window
 * sums per track equal the run's aggregate counters exactly (a step
 * spanning a window boundary is not split; with >=1k-cycle windows
 * and <=35-cycle steps the visual skew is negligible).
 */

#ifndef STITCH_OBS_SAMPLER_HH
#define STITCH_OBS_SAMPLER_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stitch::obs
{

/** Process-wide interval profiler (timeline of attribution buckets). */
class Sampler
{
  public:
    /** Upper bound on series per track (attribution buckets + spare). */
    static constexpr int maxSeries = 8;

    /** One window's cycles per series. */
    struct Window
    {
        std::array<std::uint64_t, maxSeries> cycles{};
    };

    static Sampler &instance();

    /** Hot-path guard: true between start() and stop(). */
    static bool enabled() { return enabledFlag_; }

    /** Enable sampling with `interval`-cycle windows; clears data. */
    void start(Cycles interval);

    /** Disable sampling; collected windows stay readable for export. */
    void stop();

    /**
     * Producer handshake at the start of one simulated run: name the
     * series and drop any previous run's windows, so the timeline
     * always describes the most recent run (the same convention the
     * --report artifact follows).
     */
    void beginRun(const std::vector<std::string> &seriesNames);

    /** Add `cycles` of series `series` to track `track` at `time`. */
    void
    add(int track, Cycles time, int series, std::uint64_t cycles)
    {
        auto w = static_cast<std::size_t>(time / interval_);
        auto &windows = tracks_[track];
        if (windows.size() <= w)
            windows.resize(w + 1);
        windows[w].cycles[static_cast<std::size_t>(series)] += cycles;
    }

    Cycles interval() const { return interval_; }
    bool hasData() const { return !tracks_.empty(); }
    const std::vector<std::string> &seriesNames() const
    {
        return seriesNames_;
    }

    /** Windows of every track that recorded at least one delta. */
    const std::map<int, std::vector<Window>> &tracks() const
    {
        return tracks_;
    }

  private:
    static inline bool enabledFlag_ = false;

    Cycles interval_ = 1000;
    std::vector<std::string> seriesNames_;
    std::map<int, std::vector<Window>> tracks_;
};

} // namespace stitch::obs

#endif // STITCH_OBS_SAMPLER_HH

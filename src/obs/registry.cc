#include "obs/registry.hh"

#include <vector>

namespace stitch::obs
{

void
Registry::add(const std::string &path, const StatGroup &group)
{
    if (path.empty())
        fatal("stats registry path must not be empty");
    auto [it, inserted] = groups_.emplace(path, &group);
    (void)it;
    if (!inserted)
        fatal("stats registry path '", path, "' already registered");
}

void
Registry::remove(const std::string &path)
{
    groups_.erase(path);
}

const StatGroup *
Registry::find(const std::string &path) const
{
    auto it = groups_.find(path);
    return it == groups_.end() ? nullptr : it->second;
}

namespace
{

/** Walk/create the nested object for a dotted path. */
Json &
nodeFor(Json &root, const std::string &path)
{
    Json *at = &root;
    std::size_t start = 0;
    while (true) {
        std::size_t dot = path.find('.', start);
        std::string seg = path.substr(
            start, dot == std::string::npos ? dot : dot - start);
        if (!at->has(seg))
            at->set(seg, Json::object());
        // set() keeps the node in place; re-fetch a mutable pointer.
        at = const_cast<Json *>(&at->get(seg));
        if (dot == std::string::npos)
            return *at;
        start = dot + 1;
    }
}

} // namespace

Json
Registry::toJson(bool skipZero) const
{
    Json root = Json::object();
    for (const auto &[path, group] : groups_) {
        Json &node = nodeFor(root, path);
        for (const auto &[name, value] : group->all()) {
            if (skipZero && value == 0)
                continue;
            if (node.has(name) && node.get(name).isObject())
                fatal("stats counter '", path, ".", name,
                      "' collides with a registered sub-group");
            node.set(name, Json(value));
        }
    }
    return root;
}

void
Registry::printTable(std::FILE *out) const
{
    std::vector<std::pair<std::string, Counter>> rows;
    std::size_t width = 0;
    for (const auto &[path, group] : groups_) {
        for (const auto &[name, value] : group->all()) {
            if (value == 0)
                continue;
            rows.emplace_back(path + "." + name, value);
            width = std::max(width, rows.back().first.size());
        }
    }
    for (const auto &[label, value] : rows)
        std::fprintf(out, "%-*s  %llu\n", static_cast<int>(width),
                     label.c_str(),
                     static_cast<unsigned long long>(value));
}

} // namespace stitch::obs

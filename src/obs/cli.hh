/**
 * @file
 * Shared command-line switches of the observability layer, so every
 * harness (tools, benches) spells them identically:
 *
 *   --trace=FILE    record a Chrome trace_event JSON (see trace.hh)
 *   --report=FILE   write the versioned run report (sim/report.hh)
 *   --stats=FILE    dump the stats-registry tree as JSON
 *   --verbose       raise status output to Verbosity::Info
 *
 * Writing the report/stats files needs simulation results, so only
 * the paths are collected here; the harness decides which run they
 * describe.
 */

#ifndef STITCH_OBS_CLI_HH
#define STITCH_OBS_CLI_HH

#include <cstring>
#include <string>

#include "obs/registry.hh"
#include "obs/trace.hh"

namespace stitch::obs
{

/** Parsed observability switches of one harness invocation. */
struct CliOptions
{
    std::string tracePath;
    std::string reportPath;
    std::string statsPath;
    bool verbose = false;

    /** Consume one argv entry; true iff it was an obs switch. */
    bool
    parse(const char *arg)
    {
        auto keyed = [&](const char *prefix, std::string *out) {
            std::size_t n = std::strlen(prefix);
            if (std::strncmp(arg, prefix, n) != 0)
                return false;
            *out = arg + n;
            return true;
        };
        if (keyed("--trace=", &tracePath))
            return true;
        if (keyed("--report=", &reportPath))
            return true;
        if (keyed("--stats=", &statsPath))
            return true;
        if (!std::strcmp(arg, "--verbose")) {
            verbose = true;
            return true;
        }
        return false;
    }

    /** Apply the switches: verbosity now, tracing from here on. */
    void
    begin() const
    {
        if (verbose)
            Registry::setVerbosity(Verbosity::Info);
        if (!tracePath.empty())
            Tracer::instance().start(tracePath);
    }

    /** Close an open trace (call once on harness exit). */
    void
    end() const
    {
        if (Tracer::enabled())
            Tracer::instance().stop();
    }
};

} // namespace stitch::obs

#endif // STITCH_OBS_CLI_HH

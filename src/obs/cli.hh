/**
 * @file
 * Shared command-line switches of the observability layer, so every
 * harness (tools, benches) spells them identically:
 *
 *   --trace=FILE      record a Chrome trace_event JSON (see trace.hh)
 *   --report=FILE     write the versioned run report (sim/report.hh)
 *   --stats=FILE      dump the stats-registry tree as JSON
 *   --profile[=N]     cycle/energy attribution in the report (v3
 *                     "profile" section); with =N also sample
 *                     N-cycle interval timelines (obs/sampler.hh)
 *   --speedscope=FILE speedscope-compatible export of the profile
 *   --verbose         raise status output to Verbosity::Info
 *
 * Writing the report/stats/profile files needs simulation results, so
 * only the paths are collected here; the harness decides which run
 * they describe.
 */

#ifndef STITCH_OBS_CLI_HH
#define STITCH_OBS_CLI_HH

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cli.hh"
#include "obs/registry.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

namespace stitch::obs
{

/** Parsed observability switches of one harness invocation. */
struct CliOptions
{
    std::string tracePath;
    std::string reportPath;
    std::string statsPath;
    std::string speedscopePath;
    bool verbose = false;

    /** --profile given: build the attribution profile (src/prof/). */
    bool profile = false;

    /** --profile=N: sample N-cycle timeline windows (0 = aggregate
     *  only; prof::defaultProfileInterval is the suggested window). */
    Cycles profileInterval = 0;

    /** Consume one argv entry; true iff it was an obs switch. */
    bool
    parse(const char *arg)
    {
        auto keyed = [&](const char *prefix, std::string *out) {
            return cli::keyedValue(arg, prefix, out);
        };
        if (keyed("--trace=", &tracePath))
            return true;
        if (keyed("--report=", &reportPath))
            return true;
        if (keyed("--stats=", &statsPath))
            return true;
        if (keyed("--speedscope=", &speedscopePath))
            return true;
        if (!std::strcmp(arg, "--profile")) {
            profile = true;
            return true;
        }
        if (std::string interval; keyed("--profile=", &interval)) {
            profile = true;
            profileInterval = static_cast<Cycles>(
                std::strtoull(interval.c_str(), nullptr, 10));
            return true;
        }
        if (!std::strcmp(arg, "--verbose")) {
            verbose = true;
            return true;
        }
        return false;
    }

    /** Apply the switches: verbosity now, tracing/sampling from here
     *  on. */
    void
    begin() const
    {
        if (verbose)
            Registry::setVerbosity(Verbosity::Info);
        if (!tracePath.empty())
            Tracer::instance().start(tracePath);
        if (profileInterval > 0)
            Sampler::instance().start(profileInterval);
    }

    /** Close an open trace / sampler (call once on harness exit).
     *  Sampler windows stay readable for the speedscope export. */
    void
    end() const
    {
        if (Tracer::enabled())
            Tracer::instance().stop();
        if (Sampler::enabled())
            Sampler::instance().stop();
    }
};

} // namespace stitch::obs

#endif // STITCH_OBS_CLI_HH

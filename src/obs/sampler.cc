#include "obs/sampler.hh"

#include "common/logging.hh"

namespace stitch::obs
{

Sampler &
Sampler::instance()
{
    static Sampler sampler;
    return sampler;
}

void
Sampler::start(Cycles interval)
{
    if (interval == 0)
        fatal("sampler interval must be at least one cycle");
    interval_ = interval;
    seriesNames_.clear();
    tracks_.clear();
    enabledFlag_ = true;
}

void
Sampler::stop()
{
    enabledFlag_ = false;
}

void
Sampler::beginRun(const std::vector<std::string> &seriesNames)
{
    if (seriesNames.size() > static_cast<std::size_t>(maxSeries))
        fatal("sampler supports at most ", maxSeries, " series, got ",
              seriesNames.size());
    seriesNames_ = seriesNames;
    tracks_.clear();
}

} // namespace stitch::obs

/**
 * @file
 * The generated build-provenance constants (common/buildinfo.hh) as
 * one JSON document, ready to stamp into service-level artifacts.
 */

#ifndef STITCH_OBS_BUILDINFO_HH
#define STITCH_OBS_BUILDINFO_HH

#include <string>

#include "obs/json.hh"

namespace stitch::obs
{

/** {git, compiler, compiler_version, build_type, sanitize}. */
Json buildInfoJson();

/** The `--version` line every front-end prints: buildInfoJson()
 *  with a leading "tool" field, as one JSON object — parseable by
 *  scripts, still a one-liner for humans. */
std::string versionText(const std::string &tool);

} // namespace stitch::obs

#endif // STITCH_OBS_BUILDINFO_HH

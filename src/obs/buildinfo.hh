/**
 * @file
 * The generated build-provenance constants (common/buildinfo.hh) as
 * one JSON document, ready to stamp into service-level artifacts.
 */

#ifndef STITCH_OBS_BUILDINFO_HH
#define STITCH_OBS_BUILDINFO_HH

#include "obs/json.hh"

namespace stitch::obs
{

/** {git, compiler, compiler_version, build_type, sanitize}. */
Json buildInfoJson();

} // namespace stitch::obs

#endif // STITCH_OBS_BUILDINFO_HH

/**
 * @file
 * Hierarchical statistics registry, the gem5 `stats` dump grown for
 * the Stitch simulator: components register their StatGroup under a
 * dotted path ("tile3.dcache", "noc") and harnesses dump the whole
 * tree as a JSON document or an aligned text table instead of walking
 * accessors by hand.
 *
 * The registry holds non-owning pointers: the registering component
 * must outlive the registry or remove itself. sim::System owns one
 * registry per instantiated chip and registers every tile's groups.
 *
 * The process-wide verbosity level also lives here (it routes
 * inform(): silent by default, raised by --verbose in the tools), so
 * harnesses no longer hand-disable status output.
 */

#ifndef STITCH_OBS_REGISTRY_HH
#define STITCH_OBS_REGISTRY_HH

#include <cstdio>
#include <map>
#include <string>

#include "common/logging.hh"
#include "common/stats.hh"
#include "obs/json.hh"

namespace stitch::obs
{

/** Dotted-path StatGroup directory with JSON and table dumps. */
class Registry
{
  public:
    /** Register `group` under `path`; fatal on a duplicate path. */
    void add(const std::string &path, const StatGroup &group);

    /** Drop the registration at `path` (no-op when absent). */
    void remove(const std::string &path);

    /** Group registered at `path`, or null. */
    const StatGroup *find(const std::string &path) const;

    std::size_t size() const { return groups_.size(); }

    /**
     * The whole tree as nested JSON: path segments become nested
     * objects, counters become integer members.
     * @param skipZero omit counters whose value is zero
     */
    Json toJson(bool skipZero = false) const;

    /** Flat "path.counter  value" table, sorted, zeros skipped. */
    void printTable(std::FILE *out = stdout) const;

    /** Process-wide status verbosity (see Verbosity in logging.hh). */
    static Verbosity verbosity() { return detail::verbosity(); }
    static void setVerbosity(Verbosity v) { detail::setVerbosity(v); }

  private:
    std::map<std::string, const StatGroup *> groups_;
};

} // namespace stitch::obs

#endif // STITCH_OBS_REGISTRY_HH

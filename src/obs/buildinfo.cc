#include "obs/buildinfo.hh"

#include "common/buildinfo.hh"

namespace stitch::obs
{

Json
buildInfoJson()
{
    Json doc = Json::object();
    doc.set("git", buildinfo::gitDescribe);
    doc.set("compiler", buildinfo::compilerId);
    doc.set("compiler_version", buildinfo::compilerVersion);
    doc.set("build_type", buildinfo::buildType);
    doc.set("sanitize", buildinfo::sanitize);
    return doc;
}

} // namespace stitch::obs

#include "obs/buildinfo.hh"

#include "common/buildinfo.hh"

namespace stitch::obs
{

Json
buildInfoJson()
{
    Json doc = Json::object();
    doc.set("git", buildinfo::gitDescribe);
    doc.set("compiler", buildinfo::compilerId);
    doc.set("compiler_version", buildinfo::compilerVersion);
    doc.set("build_type", buildinfo::buildType);
    doc.set("sanitize", buildinfo::sanitize);
    return doc;
}

std::string
versionText(const std::string &tool)
{
    Json doc = Json::object();
    doc.set("tool", tool);
    const Json build = buildInfoJson();
    for (const auto &[key, value] : build.items())
        doc.set(key, value);
    return doc.dump();
}

} // namespace stitch::obs

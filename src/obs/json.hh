/**
 * @file
 * Minimal JSON document model with a writer and a strict parser.
 *
 * The observability layer emits machine-readable artifacts (the stats
 * registry dump, the run report) and the tests parse them back, so we
 * need both directions but only the JSON subset we generate: objects,
 * arrays, strings, numbers, booleans and null. No dependency beyond
 * the standard library; numbers are stored as double plus an exact
 * integer flag so 64-bit counters survive a round trip.
 */

#ifndef STITCH_OBS_JSON_HH
#define STITCH_OBS_JSON_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace stitch::obs
{

/** One JSON value (recursive). Objects keep insertion order. */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,    ///< exact 64-bit (unsigned range used by counters)
        Double,
        String,
        Array,
        Object,
    };

    Json() = default;
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(std::uint64_t v) : kind_(Kind::Int), int_(v) {}
    Json(int v)
        : kind_(Kind::Int), int_(static_cast<std::uint64_t>(v))
    {}
    Json(double v) : kind_(Kind::Double), double_(v) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Json(const char *s) : kind_(Kind::String), str_(s) {}

    static Json array() { Json j; j.kind_ = Kind::Array; return j; }
    static Json object() { Json j; j.kind_ = Kind::Object; return j; }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    bool asBool() const;
    std::uint64_t asUint() const;
    double asDouble() const; ///< Int values convert implicitly
    const std::string &asString() const;

    /** Array access. */
    void push(Json v);
    std::size_t size() const;
    const Json &at(std::size_t i) const;

    /** Object access. set() replaces; get() fatals when missing. */
    void set(const std::string &key, Json v);
    bool has(const std::string &key) const;
    const Json &get(const std::string &key) const;
    const std::vector<std::pair<std::string, Json>> &items() const
    {
        return object_;
    }

    /** Serialize; indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** Strict parse; fatal()s on malformed input. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::uint64_t int_ = 0;
    double double_ = 0.0;
    std::string str_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

/**
 * Open an artifact file for writing, creating missing parent
 * directories first (a `--report=runs/today/r.json` should not
 * silently produce nothing because `runs/today/` does not exist yet).
 * Throws fault::ConfigError when the path cannot be created or
 * opened, so harnesses surface a typed, actionable failure instead of
 * exiting with an unwritten artifact.
 */
std::FILE *openArtifactFile(const std::string &path);

/** Pretty-print `doc` to `path` (trailing newline); throws
 *  fault::ConfigError when `path` cannot be created or written. */
void writeJsonFile(const std::string &path, const Json &doc);

} // namespace stitch::obs

#endif // STITCH_OBS_JSON_HH

#include "obs/trace.hh"

#include "common/logging.hh"
#include "common/table.hh"
#include "obs/json.hh"

namespace stitch::obs
{

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::start(const std::string &path)
{
    if (enabledFlag_)
        fatal("tracer already recording; stop() the previous trace");
    out_ = openArtifactFile(path); // typed error on unwritable path
    first_ = true;
    events_ = 0;
    tailWritten_ = false;
    std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", out_);
    enabledFlag_ = true;
    emitHeader();
}

void
Tracer::stop()
{
    if (!enabledFlag_)
        return;
    enabledFlag_ = false;
    retractTail();
    std::fputs("\n]}\n", out_);
    std::fclose(out_);
    out_ = nullptr;
}

void
Tracer::flush()
{
    if (!enabledFlag_ || tailWritten_)
        return;
    tailPos_ = std::ftell(out_);
    std::fputs("\n]}\n", out_);
    std::fflush(out_);
    tailWritten_ = true;
}

void
Tracer::retractTail()
{
    if (!tailWritten_)
        return;
    // Later events (and stop()'s final tail) overwrite the
    // provisional one; they are never shorter than what they replace,
    // so no stale bytes survive past the new end of the document.
    std::fseek(out_, tailPos_, SEEK_SET);
    tailWritten_ = false;
}

void
Tracer::emitHeader()
{
    metadata(pidTiles, 0, "process_name", "tiles");
    metadata(pidNoc, 0, "process_name", "noc");
    metadata(pidSnoc, 0, "process_name", "snoc");
    metadata(pidSvc, 0, "process_name", "svc");
    for (TileId t = 0; t < numTiles; ++t) {
        metadata(pidTiles, t, "thread_name", strformat("tile%d", t));
        metadata(pidNoc, t, "thread_name",
                 strformat("from tile%d", t));
        metadata(pidSnoc, t, "thread_name",
                 strformat("patch%d", t));
    }
}

void
Tracer::nameTrack(int pid, int tid, const std::string &name)
{
    if (!enabledFlag_)
        return;
    metadata(pid, tid, "thread_name", name);
}

void
Tracer::metadata(int pid, int tid, const char *what,
                 const std::string &name)
{
    retractTail();
    if (!first_)
        std::fputc(',', out_);
    first_ = false;
    std::fprintf(out_,
                 "\n{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                 what, pid, tid, name.c_str());
}

void
Tracer::event(char ph, int pid, int tid, const char *name, Cycles ts,
              Cycles dur, std::initializer_list<Arg> args)
{
    retractTail();
    if (!first_)
        std::fputc(',', out_);
    first_ = false;
    ++events_;
    std::fprintf(out_,
                 "\n{\"name\":\"%s\",\"ph\":\"%c\",\"pid\":%d,"
                 "\"tid\":%d,\"ts\":%llu",
                 name, ph, pid, tid,
                 static_cast<unsigned long long>(ts));
    if (ph == 'X')
        std::fprintf(out_, ",\"dur\":%llu",
                     static_cast<unsigned long long>(dur));
    if (ph == 'i')
        std::fputs(",\"s\":\"t\"", out_);
    if (args.size() > 0) {
        std::fputs(",\"args\":{", out_);
        bool firstArg = true;
        for (const Arg &a : args) {
            std::fprintf(out_, "%s\"%s\":%llu", firstArg ? "" : ",",
                         a.key,
                         static_cast<unsigned long long>(a.value));
            firstArg = false;
        }
        std::fputc('}', out_);
    }
    std::fputc('}', out_);
}

void
Tracer::slice(int pid, int tid, const char *name, Cycles start,
              Cycles end, std::initializer_list<Arg> args)
{
    if (end <= start)
        return; // zero-length slices only clutter the viewer
    event('X', pid, tid, name, start, end - start, args);
}

void
Tracer::instant(int pid, int tid, const char *name, Cycles ts,
                std::initializer_list<Arg> args)
{
    event('i', pid, tid, name, ts, 0, args);
}

} // namespace stitch::obs

#include "obs/json.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/logging.hh"
#include "fault/fault.hh"

namespace stitch::obs
{

bool
Json::asBool() const
{
    STITCH_ASSERT(kind_ == Kind::Bool, "JSON value is not a bool");
    return bool_;
}

std::uint64_t
Json::asUint() const
{
    if (kind_ == Kind::Double) {
        STITCH_ASSERT(double_ >= 0 && double_ == std::floor(double_),
                      "JSON number is not an exact non-negative int");
        return static_cast<std::uint64_t>(double_);
    }
    STITCH_ASSERT(kind_ == Kind::Int, "JSON value is not an integer");
    return int_;
}

double
Json::asDouble() const
{
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    STITCH_ASSERT(kind_ == Kind::Double, "JSON value is not a number");
    return double_;
}

const std::string &
Json::asString() const
{
    STITCH_ASSERT(kind_ == Kind::String, "JSON value is not a string");
    return str_;
}

void
Json::push(Json v)
{
    STITCH_ASSERT(kind_ == Kind::Array, "push on a non-array");
    array_.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    return kind_ == Kind::Array ? array_.size() : object_.size();
}

const Json &
Json::at(std::size_t i) const
{
    STITCH_ASSERT(kind_ == Kind::Array && i < array_.size(),
                  "JSON array index out of range");
    return array_[i];
}

void
Json::set(const std::string &key, Json v)
{
    STITCH_ASSERT(kind_ == Kind::Object || kind_ == Kind::Null,
                  "set on a non-object");
    kind_ = Kind::Object;
    for (auto &kv : object_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    object_.emplace_back(key, std::move(v));
}

bool
Json::has(const std::string &key) const
{
    for (const auto &kv : object_)
        if (kv.first == key)
            return true;
    return false;
}

const Json &
Json::get(const std::string &key) const
{
    for (const auto &kv : object_)
        if (kv.first == key)
            return kv.second;
    fatal("JSON object has no key '", key, "'");
}

namespace
{

void
escapeInto(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    char buf[32];
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int:
        std::snprintf(buf, sizeof buf, "%llu",
                      static_cast<unsigned long long>(int_));
        out += buf;
        break;
      case Kind::Double:
        if (std::isfinite(double_)) {
            std::snprintf(buf, sizeof buf, "%.9g", double_);
            out += buf;
        } else {
            out += "null"; // JSON has no inf/nan
        }
        break;
      case Kind::String:
        escapeInto(out, str_);
        break;
      case Kind::Array:
        out.push_back('[');
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out.push_back(',');
            newlineIndent(out, indent, depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        if (!array_.empty())
            newlineIndent(out, indent, depth);
        out.push_back(']');
        break;
      case Kind::Object:
        out.push_back('{');
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out.push_back(',');
            newlineIndent(out, indent, depth + 1);
            escapeInto(out, object_[i].first);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!object_.empty())
            newlineIndent(out, indent, depth);
        out.push_back('}');
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace
{

/** Recursive-descent parser over the generated subset. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Json
    run()
    {
        Json v = value();
        skipWs();
        if (pos_ != text_.size())
            fatal("trailing characters after JSON value at byte ",
                  pos_);
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= text_.size())
            fatal("unexpected end of JSON input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fatal("expected '", c, "' at byte ", pos_, ", got '",
                  text_[pos_], "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *w)
    {
        std::size_t n = std::string(w).size();
        if (text_.compare(pos_, n, w) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fatal("unterminated JSON string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fatal("unterminated escape in JSON string");
            char e = text_[pos_++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'n': out.push_back('\n'); break;
              case 't': out.push_back('\t'); break;
              case 'r': out.push_back('\r'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fatal("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        fatal("bad hex digit in \\u escape");
                }
                // We only emit \u for control characters; reject the
                // rest rather than implementing UTF-16 surrogates.
                if (code > 0x7f)
                    fatal("non-ASCII \\u escape unsupported");
                out.push_back(static_cast<char>(code));
                break;
              }
              default:
                fatal("bad escape character '", e, "'");
            }
        }
    }

    Json
    number()
    {
        std::size_t start = pos_;
        bool isInt = true;
        if (consume('-'))
            isInt = false; // counters are unsigned; treat as double
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            if (!std::isdigit(static_cast<unsigned char>(text_[pos_])))
                isInt = false;
            ++pos_;
        }
        std::string tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            fatal("malformed JSON number at byte ", start);
        if (isInt)
            return Json(static_cast<std::uint64_t>(
                std::stoull(tok)));
        return Json(std::stod(tok));
    }

    Json
    value()
    {
        char c = peek();
        if (c == '{') {
            ++pos_;
            Json obj = Json::object();
            if (consume('}'))
                return obj;
            while (true) {
                std::string key = (skipWs(), string());
                expect(':');
                obj.set(key, value());
                if (consume('}'))
                    return obj;
                expect(',');
            }
        }
        if (c == '[') {
            ++pos_;
            Json arr = Json::array();
            if (consume(']'))
                return arr;
            while (true) {
                arr.push(value());
                if (consume(']'))
                    return arr;
                expect(',');
            }
        }
        if (c == '"')
            return Json(string());
        skipWs();
        if (consumeWord("true"))
            return Json(true);
        if (consumeWord("false"))
            return Json(false);
        if (consumeWord("null"))
            return Json();
        return number();
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).run();
}

std::FILE *
openArtifactFile(const std::string &path)
{
    namespace fs = std::filesystem;
    fs::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        fs::create_directories(p.parent_path(), ec);
        if (ec)
            throw fault::ConfigError(detail::formatMessage(
                "cannot create directory '",
                p.parent_path().string(), "' for artifact '", path,
                "': ", ec.message()));
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        throw fault::ConfigError(detail::formatMessage(
            "cannot open '", path,
            "' for writing: ", std::strerror(errno)));
    return f;
}

void
writeJsonFile(const std::string &path, const Json &doc)
{
    std::FILE *f = openArtifactFile(path);
    std::string text = doc.dump(2);
    std::fputs(text.c_str(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

} // namespace stitch::obs

/**
 * @file
 * Cycle-level event tracer emitting Chrome trace_event JSON, loadable
 * in chrome://tracing or Perfetto (https://ui.perfetto.dev).
 *
 * One process-wide tracer: simulation hooks across cpu/mem/noc/sim
 * test the inline Tracer::enabled() flag (one predictable branch) and
 * pay the formatting cost only when a harness opened a trace with
 * --trace=FILE. Events stream straight to the file, so arbitrarily
 * long runs trace in O(1) memory.
 *
 * Track model: pid 1 ("tiles") carries one thread per tile with
 * coalesced exec slices, stall/wait slices and CUST/SEND/RECV
 * instants; pid 2 ("noc") carries per-source-tile packet slices
 * (src→dst, spanning injection to arrival); pid 3 ("snoc") carries
 * fused custom-instruction transfers with their hop counts.
 *
 * Timestamps are simulated cycles written in the `ts` microsecond
 * field verbatim: 1 µs in the viewer == 1 cycle.
 */

#ifndef STITCH_OBS_TRACE_HH
#define STITCH_OBS_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <string>

#include "common/types.hh"

namespace stitch::obs
{

/** Streaming Chrome trace_event writer. */
class Tracer
{
  public:
    /** Well-known track (process) ids. */
    static constexpr int pidTiles = 1;
    static constexpr int pidNoc = 2;
    static constexpr int pidSnoc = 3;
    /** Service-layer job spans (telem::SpanSink exports); ts is wall
     *  microseconds here, not simulated cycles. */
    static constexpr int pidSvc = 4;

    /** One small integer event argument. */
    struct Arg
    {
        const char *key;
        std::uint64_t value;
    };

    static Tracer &instance();

    /** Hot-path guard: true between start() and stop(). */
    static bool enabled() { return enabledFlag_; }

    /** Open `path` and start recording; fatal if already recording. */
    void start(const std::string &path);

    /** Finish the JSON document and close the file. */
    void stop();

    /**
     * Make the on-disk trace a valid JSON document *without* ending
     * the recording: writes the closing brackets and flushes, then
     * rewinds over them before the next event. The simulator calls
     * this on abnormal run terminations (deadlock, surfaced fault,
     * instruction limit) so a trace truncated by a dying harness is
     * still loadable in the viewer.
     */
    void flush();

    /** Duration event [start, end) on a track. */
    void slice(int pid, int tid, const char *name, Cycles start,
               Cycles end, std::initializer_list<Arg> args = {});

    /** Zero-duration marker. */
    void instant(int pid, int tid, const char *name, Cycles ts,
                 std::initializer_list<Arg> args = {});

    /** Name a (pid, tid) lane — dynamic tracks (e.g. one lane per
     *  service job) whose count the header cannot know up front. */
    void nameTrack(int pid, int tid, const std::string &name);

    std::uint64_t eventCount() const { return events_; }

  private:
    void emitHeader();
    void retractTail();
    void metadata(int pid, int tid, const char *what,
                  const std::string &name);
    void event(char ph, int pid, int tid, const char *name, Cycles ts,
               Cycles dur, std::initializer_list<Arg> args);

    static inline bool enabledFlag_ = false;

    std::FILE *out_ = nullptr;
    bool first_ = true;
    std::uint64_t events_ = 0;

    /** Set while flush()'s provisional tail sits at tailPos_. */
    bool tailWritten_ = false;
    long tailPos_ = 0;
};

} // namespace stitch::obs

#endif // STITCH_OBS_TRACE_HH

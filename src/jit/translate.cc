#include "jit/translate.hh"

#include "common/logging.hh"
#include "mem/addrmap.hh"

namespace stitch::jit
{

using isa::Instr;
using isa::Opcode;

const char *
memClassName(MemClass c)
{
    switch (c) {
      case MemClass::Unknown: return "unknown";
      case MemClass::Spm: return "spm";
      case MemClass::Dram: return "dram";
      case MemClass::Xbar: return "xbar";
    }
    STITCH_PANIC("bad MemClass");
}

const char *
uopKindName(UopKind k)
{
    switch (k) {
      case UopKind::Nop: return "nop";
      case UopKind::Alu: return "alu";
      case UopKind::AluImm: return "alu.imm";
      case UopKind::Lui: return "lui";
      case UopKind::Mul: return "mul";
      case UopKind::LoadWord: return "load.word";
      case UopKind::LoadByte: return "load.byte";
      case UopKind::StoreWord: return "store.word";
      case UopKind::StoreByte: return "store.byte";
      case UopKind::Branch: return "branch";
      case UopKind::Jal: return "jal";
      case UopKind::Jalr: return "jalr";
      case UopKind::Halt: return "halt";
      case UopKind::Cust: return "cust";
      case UopKind::LoadAluStore: return "load+alu+store";
      case UopKind::CustStore: return "cust+store";
      case UopKind::AluImmBranch: return "alu.imm+branch";
      // Specialized ALU forms keep the generic display names so the
      // dump format does not depend on which ops are specialized.
      case UopKind::Add:
      case UopKind::Sub:
      case UopKind::Xor: return "alu";
      case UopKind::AddImm:
      case UopKind::ShlImm:
      case UopKind::ShrImm: return "alu.imm";
    }
    STITCH_PANIC("bad UopKind");
}

namespace
{

/** The I-cache traffic of one instruction inside a trace. */
struct FetchPlan
{
    std::uint8_t repeats = 0;
    Addr nb0 = noBlock;
    Addr nb1 = noBlock;
};

/**
 * Walks the trace's instructions in order and splits each one's block
 * probes into repeats (block already touched by this trace; since
 * instructions are contiguous and ascending, always the most recently
 * touched block) and first-touch probes. Copyable so fusion can
 * tentatively extend and roll back.
 */
class FetchTracker
{
  public:
    explicit FetchTracker(Addr blockBytes) : block_(blockBytes) {}

    FetchPlan
    instr(Addr wa, int words)
    {
        FetchPlan p;
        Addr first = mem::codeBase + wa * 4;
        Addr last = first + static_cast<Addr>(words - 1) * 4;
        for (Addr a = first / block_ * block_; a <= last; a += block_) {
            if (touched_ && a <= lastBlock_) {
                ++p.repeats;
                continue;
            }
            if (p.nb0 == noBlock)
                p.nb0 = a;
            else
                p.nb1 = a;
            lastBlock_ = a;
            touched_ = true;
        }
        return p;
    }

  private:
    Addr block_;
    Addr lastBlock_ = 0;
    bool touched_ = false;
};

bool
isBranchOp(Opcode op)
{
    return op == Opcode::Beq || op == Opcode::Bne ||
           op == Opcode::Blt || op == Opcode::Bge ||
           op == Opcode::Bltu || op == Opcode::Bgeu;
}

/** ALU forms a superinstruction may embed: single-cycle, PC-neutral. */
bool
isFusableAlu(Opcode op)
{
    return (isa::isAluRegOp(op) && op != Opcode::Mul) ||
           isa::isAluImmOp(op);
}

/** A fused tail instruction must add no first-touch block probes. */
bool
pureRepeat(const FetchPlan &p)
{
    return p.nb0 == noBlock;
}

} // namespace

Trace
translate(const isa::Program &prog,
          const std::vector<std::int32_t> &wordToIndex, Addr entryWord,
          const TranslateParams &params)
{
    const auto &code = prog.code();
    STITCH_ASSERT(entryWord < wordToIndex.size() &&
                      wordToIndex[entryWord] >= 0,
                  "translate() entry off an instruction boundary");

    Trace tr;
    tr.entryWord = entryWord;
    tr.firstInstrIdx = wordToIndex[entryWord];

    FetchTracker fetch(params.icacheBlockBytes);
    auto idx = static_cast<std::size_t>(tr.firstInstrIdx);
    Addr wa = entryWord;

    auto base = [&](std::size_t i, Addr w, const FetchPlan &f) {
        Uop u;
        u.op = code[i].op;
        u.instrIdx = static_cast<std::int32_t>(i);
        u.pcAfter = w + static_cast<Addr>(code[i].wordSize());
        u.fetchRepeats = f.repeats;
        u.newBlock0 = f.nb0;
        u.newBlock1 = f.nb1;
        return u;
    };

    while (idx < code.size() && tr.instrCount < params.maxInstrs) {
        const Instr &in = code[idx];
        if (in.op == Opcode::Send || in.op == Opcode::Recv)
            break; // communication runs on the interpreter oracle

        FetchPlan f1 = fetch.instr(wa, in.wordSize());
        Uop u = base(idx, wa, f1);

        // --- superinstruction peepholes (tentative fetch extension:
        // fuse only if the tail instructions add no new code block,
        // so a partial execution cut by a thrown fault charges fetch
        // exactly like the interpreter would have).
        if (params.fuse && in.op == Opcode::Lw && idx + 2 < code.size()
            && isFusableAlu(code[idx + 1].op)
            && code[idx + 2].op == Opcode::Sw
            && tr.instrCount + 3 <= params.maxInstrs) {
            FetchTracker saved = fetch;
            FetchPlan f2 = fetch.instr(wa + 1, 1);
            FetchPlan f3 = fetch.instr(wa + 2, 1);
            if (pureRepeat(f2) && pureRepeat(f3)) {
                const Instr &alu = code[idx + 1];
                const Instr &st = code[idx + 2];
                u.kind = UopKind::LoadAluStore;
                u.rd = in.rd0;
                u.rs0 = in.rs0;
                u.imm = in.imm;
                u.op2 = alu.op;
                u.rd1 = alu.rd0;
                u.rs1 = alu.rs0;
                u.rs2 = alu.rs1;
                u.imm3 = alu.imm;
                u.rs4 = st.rs1;
                u.rs5 = st.rs0;
                u.imm2 = st.imm;
                u.instrCount = 3;
                u.rep2 = f2.repeats;
                u.rep3 = f3.repeats;
                u.pcAfter = wa + 3;
                tr.uops.push_back(u);
                tr.instrCount += 3;
                idx += 3;
                wa += 3;
                continue;
            }
            fetch = saved;
        }
        if (params.fuse && in.op == Opcode::Cust
            && idx + 1 < code.size() && code[idx + 1].op == Opcode::Sw
            && tr.instrCount + 2 <= params.maxInstrs) {
            FetchTracker saved = fetch;
            FetchPlan f2 = fetch.instr(wa + 2, 1);
            if (pureRepeat(f2)) {
                const Instr &st = code[idx + 1];
                u.kind = UopKind::CustStore;
                u.rd = in.rd0;
                u.rd1 = in.rd1;
                u.rs0 = in.rs0;
                u.rs1 = in.rs1;
                u.rs2 = in.rs2;
                u.rs3 = in.rs3;
                u.cfg = in.cfg;
                u.rs4 = st.rs1;
                u.rs5 = st.rs0;
                u.imm2 = st.imm;
                u.instrCount = 2;
                u.rep2 = f2.repeats;
                u.pcAfter = wa + 3; // CUST is two words
                tr.uops.push_back(u);
                tr.instrCount += 2;
                idx += 2;
                wa += 3;
                continue;
            }
            fetch = saved;
        }
        if (params.fuse && isa::isAluImmOp(in.op)
            && idx + 1 < code.size() && isBranchOp(code[idx + 1].op)
            && tr.instrCount + 2 <= params.maxInstrs) {
            FetchTracker saved = fetch;
            FetchPlan f2 = fetch.instr(wa + 1, 1);
            if (pureRepeat(f2)) {
                const Instr &br = code[idx + 1];
                u.kind = UopKind::AluImmBranch;
                u.op2 = in.op;
                u.rd = in.rd0;
                u.rs0 = in.rs0;
                u.imm3 = in.imm;
                u.op = br.op;
                u.rs1 = br.rs0;
                u.rs2 = br.rs1;
                u.branchTarget =
                    static_cast<std::int32_t>(wa + 1) + br.imm;
                u.instrCount = 2;
                u.rep2 = f2.repeats;
                u.pcAfter = wa + 2;
                tr.uops.push_back(u);
                tr.instrCount += 2;
                tr.endsInTerminator = true;
                tr.exitWord = wa + 2;
                return tr;
            }
            fetch = saved;
        }

        // --- single-instruction lowering
        bool terminator = false;
        switch (in.op) {
          case Opcode::Nop:
            u.kind = UopKind::Nop;
            break;
          case Opcode::Halt:
            u.kind = UopKind::Halt;
            terminator = true;
            break;
          case Opcode::Mul:
            u.kind = UopKind::Mul;
            u.rd = in.rd0;
            u.rs0 = in.rs0;
            u.rs1 = in.rs1;
            break;
          case Opcode::Lui:
            u.kind = UopKind::Lui;
            u.rd = in.rd0;
            u.imm = in.imm;
            break;
          case Opcode::Lw:
          case Opcode::Lb:
            u.kind = in.op == Opcode::Lw ? UopKind::LoadWord
                                         : UopKind::LoadByte;
            u.rd = in.rd0;
            u.rs0 = in.rs0;
            u.imm = in.imm;
            break;
          case Opcode::Sw:
          case Opcode::Sb:
            u.kind = in.op == Opcode::Sw ? UopKind::StoreWord
                                         : UopKind::StoreByte;
            u.rs0 = in.rs0;
            u.rs1 = in.rs1;
            u.imm = in.imm;
            break;
          case Opcode::Jal:
            u.kind = UopKind::Jal;
            u.rd = in.rd0;
            u.branchTarget = in.imm;
            terminator = true;
            break;
          case Opcode::Jalr:
            u.kind = UopKind::Jalr;
            u.rd = in.rd0;
            u.rs0 = in.rs0;
            u.imm = in.imm;
            terminator = true;
            break;
          case Opcode::Cust:
            u.kind = UopKind::Cust;
            u.rd = in.rd0;
            u.rd1 = in.rd1;
            u.rs0 = in.rs0;
            u.rs1 = in.rs1;
            u.rs2 = in.rs2;
            u.rs3 = in.rs3;
            u.cfg = in.cfg;
            break;
          default:
            if (isBranchOp(in.op)) {
                u.kind = UopKind::Branch;
                u.op = in.op;
                u.rs0 = in.rs0;
                u.rs1 = in.rs1;
                u.branchTarget =
                    static_cast<std::int32_t>(wa) + in.imm;
                terminator = true;
            } else if (isa::isAluRegOp(in.op)) {
                u.kind = in.op == Opcode::Add   ? UopKind::Add
                         : in.op == Opcode::Sub ? UopKind::Sub
                         : in.op == Opcode::Xor ? UopKind::Xor
                                                : UopKind::Alu;
                u.op = in.op;
                u.rd = in.rd0;
                u.rs0 = in.rs0;
                u.rs1 = in.rs1;
            } else if (isa::isAluImmOp(in.op)) {
                u.kind = in.op == Opcode::Addi   ? UopKind::AddImm
                         : in.op == Opcode::Slli ? UopKind::ShlImm
                         : in.op == Opcode::Srli ? UopKind::ShrImm
                                                 : UopKind::AluImm;
                u.op = in.op;
                u.rd = in.rd0;
                u.rs0 = in.rs0;
                u.imm = in.imm;
            } else {
                STITCH_PANIC("untranslatable opcode");
            }
            break;
        }

        tr.uops.push_back(u);
        tr.instrCount += 1;
        wa += static_cast<Addr>(in.wordSize());
        idx += 1;
        if (terminator) {
            tr.endsInTerminator = true;
            break;
        }
    }

    tr.exitWord = wa;
    return tr;
}

} // namespace stitch::jit

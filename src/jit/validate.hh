/**
 * @file
 * Structural validator of the trace IR, luajit-remake style: every
 * invariant a correct translation must satisfy is recomputed
 * independently against the source program, so translator bugs are
 * caught at installation (and before every dump), never as silent
 * counter drift against the interpreter oracle.
 */

#ifndef STITCH_JIT_VALIDATE_HH
#define STITCH_JIT_VALIDATE_HH

#include <string>

#include "isa/program.hh"
#include "jit/trace.hh"

namespace stitch::jit
{

/**
 * Check `tr` against `prog`. Verified invariants:
 *
 *  - non-empty; uops cover consecutive instruction indices starting
 *    at firstInstrIdx, totalling instrCount;
 *  - the entry/exit/fall-through word addresses and every static
 *    branch target match the source instructions;
 *  - each uop's kind, operand registers (in [0, numRegs)), immediates
 *    and cfg match its covered instructions; no SEND/RECV covered;
 *  - terminators only in the last slot, consistent with
 *    endsInTerminator;
 *  - the fetch plan (repeats / first-touch blocks / fused-tail
 *    repeats) equals an independent walk of the covered code bytes
 *    with `icacheBlockBytes` blocks.
 *
 * @return true if valid; otherwise false with a reason in *why.
 */
bool validateTrace(const Trace &tr, const isa::Program &prog,
                   Addr icacheBlockBytes, std::string *why);

} // namespace stitch::jit

#endif // STITCH_JIT_VALIDATE_HH

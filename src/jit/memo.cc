#include "jit/memo.hh"

namespace stitch::jit
{

namespace
{

/** FNV-1a fingerprint of a code image + cache geometry. */
std::uint64_t
fingerprint(const std::vector<isa::Instr> &code, Addr blockBytes)
{
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(blockBytes);
    mix(code.size());
    for (const isa::Instr &in : code) {
        mix(static_cast<std::uint64_t>(in.op) |
            (static_cast<std::uint64_t>(in.cfg) << 8));
        mix((static_cast<std::uint64_t>(in.rd0) & 0xff) |
            ((static_cast<std::uint64_t>(in.rd1) & 0xff) << 8) |
            ((static_cast<std::uint64_t>(in.rs0) & 0xff) << 16) |
            ((static_cast<std::uint64_t>(in.rs1) & 0xff) << 24) |
            ((static_cast<std::uint64_t>(in.rs2) & 0xff) << 32) |
            ((static_cast<std::uint64_t>(in.rs3) & 0xff) << 40));
        mix(static_cast<std::uint32_t>(in.imm));
    }
    return h;
}

} // namespace

bool
ProgramMemo::lookup(Addr entryWord, Trace &out)
{
    std::lock_guard<std::mutex> lock(m_);
    auto it = traces_.find(entryWord);
    if (it == traces_.end())
        return false;
    out = it->second;
    return true;
}

void
ProgramMemo::insert(const Trace &tr)
{
    std::lock_guard<std::mutex> lock(m_);
    traces_.emplace(tr.entryWord, tr);
}

TranslationMemo &
TranslationMemo::instance()
{
    static TranslationMemo memo;
    return memo;
}

std::shared_ptr<ProgramMemo>
TranslationMemo::programFor(const std::vector<isa::Instr> &code,
                            Addr icacheBlockBytes)
{
    std::uint64_t fp = fingerprint(code, icacheBlockBytes);
    std::lock_guard<std::mutex> lock(m_);

    // Crude growth bound for long-lived processes loading an unbounded
    // stream of distinct programs (e.g. the service engine): wipe the
    // registry rather than evict piecemeal. Handles already given out
    // stay alive through their shared_ptr.
    if (programs_.size() > 64)
        programs_.clear();

    auto &bucket = programs_[fp];
    for (const auto &p : bucket)
        if (p->icacheBlockBytes_ == icacheBlockBytes &&
            p->code_ == code)
            return p;

    auto p = std::make_shared<ProgramMemo>();
    p->code_ = code;
    p->icacheBlockBytes_ = icacheBlockBytes;
    bucket.push_back(p);
    return p;
}

} // namespace stitch::jit

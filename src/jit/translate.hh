/**
 * @file
 * Basic-block translator of the compiled backend: lowers a run of
 * SW32 instructions starting at an entry word address into a Trace of
 * micro-ops (see trace.hh for the IR contract).
 */

#ifndef STITCH_JIT_TRANSLATE_HH
#define STITCH_JIT_TRANSLATE_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"
#include "jit/trace.hh"

namespace stitch::jit
{

/** Translation knobs (per-core; derived from the memory geometry). */
struct TranslateParams
{
    /** I-cache block size: shapes the per-uop fetch plan. */
    Addr icacheBlockBytes = 64;

    /** Trace length cap in source instructions. */
    std::size_t maxInstrs = 256;

    /** Emit superinstructions (off for A/B counting in tests). */
    bool fuse = true;
};

/**
 * Translate the block entered at `entryWord`. The entry must map to
 * an instruction boundary (`wordToIndex[entryWord] >= 0`) that is not
 * SEND/RECV — communication ops always run on the interpreter oracle.
 * Translation stops before the first SEND/RECV, after the first
 * control transfer or HALT, at the length cap, or at the end of the
 * code image (the resulting exitWord then points past the end, and
 * dispatching there faults exactly like the interpreter's runaway
 * PC). Never fails on translatable input; the caller validates the
 * result with validateTrace before installing it.
 */
Trace translate(const isa::Program &prog,
                const std::vector<std::int32_t> &wordToIndex,
                Addr entryWord, const TranslateParams &params);

} // namespace stitch::jit

#endif // STITCH_JIT_TRANSLATE_HH

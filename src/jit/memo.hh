/**
 * @file
 * Process-wide translation memo.
 *
 * The per-core translation cache (cpu/core_jit.cc) is dropped on every
 * loadProgram — it indexes into the loaded code image, so that is a
 * correctness requirement. But the workloads themselves recur
 * constantly: every System run recompiles the same applications, and a
 * throughput measurement constructs short-run/long-run System pairs
 * executing byte-identical binaries. Translating and validating the
 * same traces over and over was ~13% of compiled-mode system
 * simulation time.
 *
 * The memo shares *validated, pristine* traces between cores running
 * the same code image. A program is identified by its full decoded
 * instruction sequence plus the translation-relevant I-cache geometry;
 * lookups compare the complete code vector (never just the hash), so a
 * fingerprint collision degrades to a fresh entry, not a wrong trace.
 * Memoized traces are immutable masters: cores receive copies, so the
 * mutable per-core state embedded in a trace (inline-cache MemClass
 * fields, execution counters) never leaks between runs, and the copy a
 * core gets is field-for-field what translate() would have returned.
 *
 * Thread safety: sweeps and the service engine run Systems on worker
 * threads, so both the registry and each program's trace map take a
 * mutex. Only translation-cache misses touch the memo — by
 * construction a cold path.
 */

#ifndef STITCH_JIT_MEMO_HH
#define STITCH_JIT_MEMO_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"
#include "jit/trace.hh"

namespace stitch::jit
{

/** One code image's share of the memo (handed out as a shared_ptr;
 *  outlives registry eviction). */
class ProgramMemo
{
  public:
    /** Copy the memoized trace entered at `entryWord` into `out`;
     *  false if this entry has not been translated yet. */
    bool lookup(Addr entryWord, Trace &out);

    /** Record a freshly validated trace. `tr` must be pristine —
     *  straight from translate(), never executed. */
    void insert(const Trace &tr);

  private:
    friend class TranslationMemo;

    std::vector<isa::Instr> code_; ///< full image, for exact matching
    Addr icacheBlockBytes_ = 0;

    std::mutex m_;
    std::unordered_map<Addr, Trace> traces_; ///< by entry word
};

/** The process-wide registry of ProgramMemo instances. */
class TranslationMemo
{
  public:
    static TranslationMemo &instance();

    /**
     * The memo for a code image, created on first sight. The returned
     * handle stays valid (and shared with every core running the same
     * image) for as long as the caller holds it.
     */
    std::shared_ptr<ProgramMemo>
    programFor(const std::vector<isa::Instr> &code,
               Addr icacheBlockBytes);

  private:
    std::mutex m_;
    /** Fingerprint -> candidates (hash collisions chain). */
    std::unordered_map<std::uint64_t,
                       std::vector<std::shared_ptr<ProgramMemo>>>
        programs_;
};

} // namespace stitch::jit

#endif // STITCH_JIT_MEMO_HH

/**
 * @file
 * Human-readable trace dumps (`smoke_app --dump-traces`). Follows the
 * luajit-remake validator-before-dump idiom: every dump first runs
 * validateTrace and prefixes an invalid trace with a loud warning
 * line instead of pretty-printing garbage as truth.
 */

#ifndef STITCH_JIT_DUMP_HH
#define STITCH_JIT_DUMP_HH

#include <string>

#include "isa/program.hh"
#include "jit/trace.hh"

namespace stitch::jit
{

/** Render one trace (multi-line, trailing newline). */
std::string dumpTrace(const Trace &tr, const isa::Program &prog,
                      Addr icacheBlockBytes);

} // namespace stitch::jit

#endif // STITCH_JIT_DUMP_HH

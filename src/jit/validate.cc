#include "jit/validate.hh"

#include "common/logging.hh"
#include "mem/addrmap.hh"

namespace stitch::jit
{

using isa::Instr;
using isa::Opcode;

namespace
{

bool
isBranchOp(Opcode op)
{
    return op == Opcode::Beq || op == Opcode::Bne ||
           op == Opcode::Blt || op == Opcode::Bge ||
           op == Opcode::Bltu || op == Opcode::Bgeu;
}

/** Independent re-walk of the trace's I-cache traffic (translate.cc
 *  keeps its own FetchTracker; duplicating the ~10 lines here is the
 *  point — the validator must not trust the translator's code). */
struct FetchWalk
{
    Addr block;
    Addr lastBlock = 0;
    bool touched = false;

    struct Plan
    {
        std::uint8_t repeats = 0;
        Addr nb0 = noBlock;
        Addr nb1 = noBlock;
    };

    Plan
    instr(Addr wa, int words)
    {
        Plan p;
        Addr first = mem::codeBase + wa * 4;
        Addr last = first + static_cast<Addr>(words - 1) * 4;
        for (Addr a = first / block * block; a <= last; a += block) {
            if (touched && a <= lastBlock) {
                ++p.repeats;
                continue;
            }
            if (p.nb0 == noBlock)
                p.nb0 = a;
            else
                p.nb1 = a;
            lastBlock = a;
            touched = true;
        }
        return p;
    }
};

bool
regOk(RegId r)
{
    return r >= 0 && r < numRegs;
}

} // namespace

bool
validateTrace(const Trace &tr, const isa::Program &prog,
              Addr icacheBlockBytes, std::string *why)
{
    const auto &code = prog.code();
    auto fail = [&](auto &&...msg) {
        if (why)
            *why = detail::formatMessage(
                "trace @w", tr.entryWord, ": ",
                std::forward<decltype(msg)>(msg)...);
        return false;
    };

    if (tr.uops.empty())
        return fail("no uops");
    if (tr.firstInstrIdx < 0 ||
        static_cast<std::size_t>(tr.firstInstrIdx) >= code.size())
        return fail("first instruction index ", tr.firstInstrIdx,
                    " out of range");
    if (tr.entryWord !=
        prog.wordAddrOf(static_cast<std::size_t>(tr.firstInstrIdx)))
        return fail("entry word does not match first instruction");

    FetchWalk fetch{icacheBlockBytes};
    auto idx = static_cast<std::size_t>(tr.firstInstrIdx);
    Addr wa = tr.entryWord;
    std::uint32_t covered = 0;

    for (std::size_t ui = 0; ui < tr.uops.size(); ++ui) {
        const Uop &u = tr.uops[ui];
        const bool lastUop = ui + 1 == tr.uops.size();

        if (u.instrIdx != static_cast<std::int32_t>(idx))
            return fail("uop ", ui, " covers instruction ", u.instrIdx,
                        " but ", idx, " is next");
        if (u.instrCount < 1 || u.instrCount > 3 ||
            idx + u.instrCount > code.size())
            return fail("uop ", ui, " has bad instruction count ",
                        static_cast<int>(u.instrCount));
        if (uopIsTerminator(u.kind) && !lastUop)
            return fail("terminator uop ", ui, " is not last");
        if (!regOk(u.rd) || !regOk(u.rd1) || !regOk(u.rs0) ||
            !regOk(u.rs1) || !regOk(u.rs2) || !regOk(u.rs3) ||
            !regOk(u.rs4) || !regOk(u.rs5))
            return fail("uop ", ui, " has a register out of range");

        for (int k = 0; k < u.instrCount; ++k) {
            Opcode op = code[idx + static_cast<std::size_t>(k)].op;
            if (op == Opcode::Send || op == Opcode::Recv)
                return fail("uop ", ui, " covers communication op ",
                            isa::mnemonic(op));
        }

        const Instr &in = code[idx];
        if (u.op != in.op && !uopIsFused(u.kind))
            return fail("uop ", ui, " opcode mismatch");

        // Per-kind shape against the source instruction(s).
        bool shapeOk = true;
        switch (u.kind) {
          case UopKind::Nop:
            shapeOk = in.op == Opcode::Nop;
            break;
          case UopKind::Halt:
            shapeOk = in.op == Opcode::Halt;
            break;
          case UopKind::Alu:
            shapeOk = isa::isAluRegOp(in.op) && in.op != Opcode::Mul &&
                      u.rd == in.rd0 && u.rs0 == in.rs0 &&
                      u.rs1 == in.rs1;
            break;
          case UopKind::AluImm:
            shapeOk = isa::isAluImmOp(in.op) && u.rd == in.rd0 &&
                      u.rs0 == in.rs0 && u.imm == in.imm;
            break;
          // Specialized ALU forms: the generic shape plus the exact
          // opcode the specialization hard-codes.
          case UopKind::Add:
          case UopKind::Sub:
          case UopKind::Xor:
            shapeOk = in.op == (u.kind == UopKind::Add   ? Opcode::Add
                                : u.kind == UopKind::Sub ? Opcode::Sub
                                                         : Opcode::Xor)
                      && u.rd == in.rd0 && u.rs0 == in.rs0 &&
                      u.rs1 == in.rs1;
            break;
          case UopKind::AddImm:
          case UopKind::ShlImm:
          case UopKind::ShrImm:
            shapeOk = in.op == (u.kind == UopKind::AddImm
                                    ? Opcode::Addi
                                    : u.kind == UopKind::ShlImm
                                          ? Opcode::Slli
                                          : Opcode::Srli)
                      && u.rd == in.rd0 && u.rs0 == in.rs0 &&
                      u.imm == in.imm;
            break;
          case UopKind::Lui:
            shapeOk = in.op == Opcode::Lui && u.rd == in.rd0 &&
                      u.imm == in.imm;
            break;
          case UopKind::Mul:
            shapeOk = in.op == Opcode::Mul && u.rd == in.rd0 &&
                      u.rs0 == in.rs0 && u.rs1 == in.rs1;
            break;
          case UopKind::LoadWord:
          case UopKind::LoadByte:
            shapeOk = in.op == (u.kind == UopKind::LoadWord
                                    ? Opcode::Lw
                                    : Opcode::Lb) &&
                      u.rd == in.rd0 && u.rs0 == in.rs0 &&
                      u.imm == in.imm;
            break;
          case UopKind::StoreWord:
          case UopKind::StoreByte:
            shapeOk = in.op == (u.kind == UopKind::StoreWord
                                    ? Opcode::Sw
                                    : Opcode::Sb) &&
                      u.rs0 == in.rs0 && u.rs1 == in.rs1 &&
                      u.imm == in.imm;
            break;
          case UopKind::Branch:
            shapeOk = isBranchOp(in.op) && u.op == in.op &&
                      u.rs0 == in.rs0 && u.rs1 == in.rs1 &&
                      u.branchTarget ==
                          static_cast<std::int32_t>(wa) + in.imm;
            break;
          case UopKind::Jal:
            shapeOk = in.op == Opcode::Jal && u.rd == in.rd0 &&
                      u.branchTarget == in.imm;
            break;
          case UopKind::Jalr:
            shapeOk = in.op == Opcode::Jalr && u.rd == in.rd0 &&
                      u.rs0 == in.rs0 && u.imm == in.imm;
            break;
          case UopKind::Cust:
            shapeOk = in.op == Opcode::Cust && u.rd == in.rd0 &&
                      u.rd1 == in.rd1 && u.rs0 == in.rs0 &&
                      u.rs1 == in.rs1 && u.rs2 == in.rs2 &&
                      u.rs3 == in.rs3 && u.cfg == in.cfg;
            break;
          case UopKind::LoadAluStore: {
            if (u.instrCount != 3) {
                shapeOk = false;
                break;
            }
            const Instr &alu = code[idx + 1];
            const Instr &st = code[idx + 2];
            shapeOk = in.op == Opcode::Lw && u.rd == in.rd0 &&
                      u.rs0 == in.rs0 && u.imm == in.imm &&
                      u.op2 == alu.op &&
                      ((isa::isAluRegOp(alu.op) &&
                        alu.op != Opcode::Mul) ||
                       isa::isAluImmOp(alu.op)) &&
                      u.rd1 == alu.rd0 && u.rs1 == alu.rs0 &&
                      u.rs2 == alu.rs1 && u.imm3 == alu.imm &&
                      st.op == Opcode::Sw && u.rs4 == st.rs1 &&
                      u.rs5 == st.rs0 && u.imm2 == st.imm;
            break;
          }
          case UopKind::CustStore: {
            if (u.instrCount != 2) {
                shapeOk = false;
                break;
            }
            const Instr &st = code[idx + 1];
            shapeOk = in.op == Opcode::Cust && u.rd == in.rd0 &&
                      u.rd1 == in.rd1 && u.rs0 == in.rs0 &&
                      u.rs1 == in.rs1 && u.rs2 == in.rs2 &&
                      u.rs3 == in.rs3 && u.cfg == in.cfg &&
                      st.op == Opcode::Sw && u.rs4 == st.rs1 &&
                      u.rs5 == st.rs0 && u.imm2 == st.imm;
            break;
          }
          case UopKind::AluImmBranch: {
            if (u.instrCount != 2) {
                shapeOk = false;
                break;
            }
            const Instr &br = code[idx + 1];
            shapeOk = isa::isAluImmOp(in.op) && u.op2 == in.op &&
                      u.rd == in.rd0 && u.rs0 == in.rs0 &&
                      u.imm3 == in.imm && isBranchOp(br.op) &&
                      u.op == br.op && u.rs1 == br.rs0 &&
                      u.rs2 == br.rs1 &&
                      u.branchTarget ==
                          static_cast<std::int32_t>(wa + 1) + br.imm;
            break;
          }
        }
        if (!shapeOk)
            return fail("uop ", ui, " (", uopKindName(u.kind),
                        ") does not match instruction ", idx, " '",
                        isa::toString(in), "'");

        // Fetch plan: first covered instruction on the uop header,
        // fused tails as pure repeats.
        auto p1 = fetch.instr(wa, in.wordSize());
        if (u.fetchRepeats != p1.repeats || u.newBlock0 != p1.nb0 ||
            u.newBlock1 != p1.nb1)
            return fail("uop ", ui, " fetch plan mismatch");
        Addr w = wa + static_cast<Addr>(in.wordSize());
        std::uint8_t reps[2] = {u.rep2, u.rep3};
        for (int k = 1; k < u.instrCount; ++k) {
            const Instr &tail = code[idx + static_cast<std::size_t>(k)];
            auto pk = fetch.instr(w, tail.wordSize());
            if (pk.nb0 != noBlock || reps[k - 1] != pk.repeats)
                return fail("uop ", ui, " fused-tail fetch mismatch");
            w += static_cast<Addr>(tail.wordSize());
        }
        if (u.pcAfter != w)
            return fail("uop ", ui, " fall-through mismatch");

        covered += u.instrCount;
        idx += u.instrCount;
        wa = w;
    }

    if (covered != tr.instrCount)
        return fail("instruction count ", tr.instrCount,
                    " but uops cover ", covered);
    if (tr.exitWord != wa)
        return fail("exit word ", tr.exitWord, " but fall-through is ",
                    wa);
    if (tr.endsInTerminator != uopIsTerminator(tr.uops.back().kind))
        return fail("terminator flag inconsistent with last uop");
    return true;
}

} // namespace stitch::jit

#include "jit/dump.hh"

#include <sstream>

#include "jit/validate.hh"

namespace stitch::jit
{

std::string
dumpTrace(const Trace &tr, const isa::Program &prog,
          Addr icacheBlockBytes)
{
    std::ostringstream os;
    os << "trace @w" << tr.entryWord << ": " << tr.uops.size()
       << " uops / " << tr.instrCount << " instrs, "
       << tr.executions << " execs, "
       << (tr.endsInTerminator ? "terminated" : "falls through @w")
       << (tr.endsInTerminator ? std::string{}
                               : std::to_string(tr.exitWord))
       << "\n";

    std::string why;
    if (!validateTrace(tr, prog, icacheBlockBytes, &why))
        os << "  !! INVALID TRACE: " << why << "\n";

    const auto &code = prog.code();
    for (const Uop &u : tr.uops) {
        os << "  [w"
           << prog.wordAddrOf(static_cast<std::size_t>(u.instrIdx))
           << "] " << uopKindName(u.kind) << "  ";
        // The covered source instructions, '+'-joined for fused uops.
        for (int k = 0; k < u.instrCount; ++k) {
            auto i = static_cast<std::size_t>(u.instrIdx) +
                     static_cast<std::size_t>(k);
            if (k)
                os << " + ";
            os << (i < code.size() ? isa::toString(code[i])
                                   : std::string{"<out of range>"});
        }
        os << "  ;";
        if (u.kind == UopKind::LoadWord || u.kind == UopKind::LoadByte
            || u.kind == UopKind::StoreWord
            || u.kind == UopKind::StoreByte
            || u.kind == UopKind::LoadAluStore)
            os << " class=" << memClassName(u.memClass);
        if (u.kind == UopKind::LoadAluStore
            || u.kind == UopKind::CustStore)
            os << " store-class=" << memClassName(u.memClass2);
        if (u.branchTarget >= 0 && (u.kind == UopKind::Branch
                                    || u.kind == UopKind::Jal
                                    || u.kind == UopKind::AluImmBranch))
            os << " target=w" << u.branchTarget;
        os << " fetch={r" << static_cast<int>(u.fetchRepeats);
        if (u.rep2 || u.rep3)
            os << "+r" << static_cast<int>(u.rep2) << "+r"
               << static_cast<int>(u.rep3);
        if (u.newBlock0 != noBlock)
            os << " new " << u.newBlock0;
        if (u.newBlock1 != noBlock)
            os << "," << u.newBlock1;
        os << "}\n";
    }
    return os.str();
}

} // namespace stitch::jit

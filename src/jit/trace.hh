/**
 * @file
 * The compiled backend's trace IR (see DESIGN.md §15).
 *
 * A Trace is one predecoded, straight-line run of SW32 instructions —
 * a basic block extended through fall-throughs up to the first control
 * transfer, communication op, or length cap — lowered into contiguous
 * micro-ops (Uops) that the core dispatches with one tight loop
 * instead of the per-instruction fetch→decode→switch of the oracle
 * interpreter (cpu/core.cc).
 *
 * Three cost classes of the interpreter are folded at translation
 * time:
 *
 *  - fetch: the interpreter charges one real I-cache probe per code
 *    block touched per instruction. A trace touches its code blocks
 *    in monotone address order, so all but the first probe of each
 *    block are guaranteed hits; they compress into per-uop repeat
 *    counts (Cache::repeatReadHits) with at most two genuinely new
 *    block probes per uop.
 *  - memory routing: each load/store site carries an inline cache — a
 *    MemClass predicting the address class (SPM / cached DRAM / xbar
 *    config), checked by a one-predicate guard per execution and
 *    repredicted on a miss (never wrong results, just a slower path).
 *  - dispatch: hot adjacent sequences (load–op–store, CUST+store,
 *    addi+branch) fuse into superinstructions retiring 2–3
 *    instructions per dispatch.
 *
 * The IR follows the luajit-remake discipline referenced in
 * SNIPPETS.md §3: a validator (validate.hh) checks every structural
 * invariant against the source program, and the dumper (dump.hh)
 * runs it before printing. The interpreter remains the byte-exactness
 * oracle: every counter, stall cycle and register effect of a trace
 * execution is identical to stepping its instructions one by one —
 * including partial executions cut short by a thrown fault.
 */

#ifndef STITCH_JIT_TRACE_HH
#define STITCH_JIT_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace stitch::jit
{

/** Sentinel block address: "no new I-cache block touched here". */
inline constexpr Addr noBlock = ~Addr{0};

/** Predicted memory-routing class of an inline-cached access site. */
enum class MemClass : std::uint8_t
{
    Unknown, ///< never executed; resolve and remember on first use
    Spm,     ///< scratchpad window (uncached, 1-cycle sequencer)
    Dram,    ///< cached DRAM space behind the D-cache
    Xbar,    ///< memory-mapped crossbar configuration register
};

/** Printable class name ("unknown", "spm", ...). */
const char *memClassName(MemClass c);

/** Micro-op kinds. The last three are superinstructions. */
enum class UopKind : std::uint8_t
{
    Nop,
    Alu,    ///< rd ← op(r[rs0], r[rs1]), register ALU forms sans MUL
    AluImm, ///< rd ← op(r[rs0], imm)
    Lui,    ///< rd ← imm << 11
    Mul,    ///< rd ← r[rs0] * r[rs1], +3 cycles
    LoadWord,  ///< rd ← mem[r[rs0] + imm]; inline cache memClass
    LoadByte,  ///< sign-extended byte load
    StoreWord, ///< mem[r[rs0] + imm] ← r[rs1]; memClass (may be Xbar)
    StoreByte, ///< byte store (never Xbar, like the interpreter's SB)
    Branch, ///< op ∈ {BEQ..BGEU} on (r[rs0], r[rs1]); terminator
    Jal,    ///< rd ← pcAfter, jump to branchTarget; terminator
    Jalr,   ///< rd ← pcAfter, jump to r[rs0] + imm; terminator
    Halt,   ///< terminator
    Cust,   ///< patch CUST: cfg, rd/rd1 results, rs0..rs3 operands
    /**
     * Superinstruction: LW + ALU + SW (any dataflow), 3 instructions.
     * load: rd ← mem[r[rs0] + imm] (memClass); alu: r[rd1] ←
     * op2(r[rs1], r[rs2] or imm3); store: mem[r[rs5] + imm2] ← r[rs4]
     * (memClass2). rep2/rep3 carry the 2nd/3rd instruction's fetch
     * repeats (fused only when those instructions touch no new code
     * block).
     */
    LoadAluStore,
    /**
     * Superinstruction: CUST + SW, 2 instructions. cust as UopKind::
     * Cust; store: mem[r[rs5] + imm2] ← r[rs4] (memClass2), rep2.
     */
    CustStore,
    /**
     * Superinstruction: ALU-immediate + conditional branch, 2
     * instructions; terminator. alu: rd ← op2(r[rs0], imm3); branch:
     * op on (r[rs1], r[rs2]) to branchTarget, else pcAfter. rep2.
     */
    AluImmBranch,
    /**
     * Specialized forms of Alu / AluImm for the hottest opcodes:
     * identical semantics and fields, but the executor computes the
     * result inline instead of going through the shared ALU
     * evaluator's secondary opcode dispatch (the single biggest
     * per-uop cost on ALU-dense traces).
     */
    Add,    ///< rd ← r[rs0] + r[rs1]
    Sub,    ///< rd ← r[rs0] - r[rs1]
    Xor,    ///< rd ← r[rs0] ^ r[rs1]
    AddImm, ///< rd ← r[rs0] + imm
    ShlImm, ///< rd ← r[rs0] << (imm & 31)
    ShrImm, ///< rd ← r[rs0] >> (imm & 31), logical
};

/** Printable kind name ("alu", "load.word", ...). */
const char *uopKindName(UopKind k);

/** True for kinds that end their trace with a control transfer. */
constexpr bool
uopIsTerminator(UopKind k)
{
    return k == UopKind::Branch || k == UopKind::Jal ||
           k == UopKind::Jalr || k == UopKind::Halt ||
           k == UopKind::AluImmBranch;
}

/** True for the fused multi-instruction kinds. */
constexpr bool
uopIsFused(UopKind k)
{
    return k == UopKind::LoadAluStore || k == UopKind::CustStore ||
           k == UopKind::AluImmBranch;
}

/**
 * One micro-op. Field meaning is per-kind (see UopKind); the fetch
 * plan fields and instruction bookkeeping are common:
 *
 *  - instrIdx .. instrIdx + instrCount - 1 are the covered source
 *    instruction indices (always consecutive);
 *  - fetchRepeats / newBlock0 / newBlock1 describe the first covered
 *    instruction's I-cache traffic: `fetchRepeats` guaranteed re-hits
 *    of the trace's most recent code block, then up to two first-touch
 *    block probes in ascending address order (a two-word CUST can
 *    straddle two new blocks); rep2/rep3 are the pure-repeat plans of
 *    the 2nd/3rd fused instruction;
 *  - pcAfter is the fall-through word address past the covered
 *    instructions (the link value of JAL/JALR);
 *  - branchTarget is the static target word of Branch/Jal forms.
 *
 * memClass fields are the mutable inline caches — the only state the
 * executor writes back into a trace.
 */
struct Uop
{
    UopKind kind = UopKind::Nop;
    isa::Opcode op = isa::Opcode::Nop;  ///< primary selector
    isa::Opcode op2 = isa::Opcode::Nop; ///< fused ALU selector
    MemClass memClass = MemClass::Unknown;  ///< load / 1st access site
    MemClass memClass2 = MemClass::Unknown; ///< fused store site
    std::uint8_t instrCount = 1;
    std::uint8_t fetchRepeats = 0;
    std::uint8_t rep2 = 0;
    std::uint8_t rep3 = 0;
    RegId rd = 0;
    RegId rd1 = 0;
    RegId rs0 = 0;
    RegId rs1 = 0;
    RegId rs2 = 0;
    RegId rs3 = 0;
    RegId rs4 = 0; ///< fused store: value register
    RegId rs5 = 0; ///< fused store: base register
    std::int32_t imm = 0;
    std::int32_t imm2 = 0; ///< fused store offset
    std::int32_t imm3 = 0; ///< fused ALU immediate
    std::uint16_t cfg = 0; ///< CUST ISE-table index
    std::int32_t instrIdx = 0;
    std::int32_t branchTarget = -1;
    Addr pcAfter = 0;
    Addr newBlock0 = noBlock;
    Addr newBlock1 = noBlock;
};

/** One translated trace, keyed by its entry word address. */
struct Trace
{
    Addr entryWord = 0;
    std::int32_t firstInstrIdx = 0;
    std::uint32_t instrCount = 0; ///< SW32 instructions covered
    Addr exitWord = 0; ///< fall-through word addr past the last uop
    bool endsInTerminator = false;
    std::vector<Uop> uops;
    std::uint64_t executions = 0; ///< dispatch count (diagnostics)
    /**
     * Full uop-loop completions not yet folded into the per-core
     * per-instruction histogram (Core::syncExecCounts). A completed
     * dispatch retires every covered instruction exactly once, so the
     * executor counts one increment per trace execution here instead
     * of one per instruction; only a dispatch cut short by a thrown
     * fault writes its partial prefix into the histogram directly.
     * Differs from `executions` exactly by those faulted dispatches.
     */
    std::uint64_t completions = 0;
};

/** Translation-cache activity of one core's run (diagnostics; not
 *  registered as stats — scheduler-dependent by design). */
struct JitStats
{
    std::uint64_t tracesTranslated = 0;
    std::uint64_t uops = 0;
    std::uint64_t superinstructions = 0;
    std::uint64_t dispatches = 0;   ///< trace executions
    std::uint64_t guardMisses = 0;  ///< inline-cache repredictions
    std::uint64_t oracleSteps = 0;  ///< single interpreter steps
                                    ///< (SEND/RECV, budget tail)
};

} // namespace stitch::jit

#endif // STITCH_JIT_TRACE_HH

/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal()  — the simulation cannot continue due to a user-level problem
 *            (bad configuration, invalid program); throws FatalError so
 *            tests can assert on misuse.
 * panic()  — an internal invariant was violated (a simulator bug);
 *            aborts the process.
 * warn()   — something is suspicious but the simulation continues.
 * inform() — plain status output, gated on the process verbosity
 *            level (silent by default; tools raise it with
 *            --verbose, see obs::Registry::setVerbosity).
 */

#ifndef STITCH_COMMON_LOGGING_HH
#define STITCH_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace stitch
{

/**
 * Process-wide status-output level. Silent is the default: library
 * code stays quiet unless a harness opts into status chatter, so
 * benches and tools no longer disable inform() by hand.
 */
enum class Verbosity
{
    Silent = 0, ///< warnings and errors only
    Info = 1,   ///< inform() status lines
    Debug = 2,  ///< reserved for future debug chatter
};

/** Exception thrown by fatal(): a user-correctable error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

namespace detail
{

/** Fold a parameter pack into one message string. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Current / new process verbosity (exposed via obs::Registry). */
Verbosity verbosity();
void setVerbosity(Verbosity v);

} // namespace detail

/** Raise a user-level error; always throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::formatMessage(std::forward<Args>(args)...));
}

/** Report a non-fatal anomaly on stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::formatMessage(std::forward<Args>(args)...));
}

/** Report status on stdout (emitted at Verbosity::Info and above). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (detail::verbosity() >= Verbosity::Info)
        detail::informImpl(detail::formatMessage(std::forward<Args>(args)...));
}

} // namespace stitch

/**
 * Abort on a broken internal invariant. Macro so the failure carries its
 * source location.
 */
#define STITCH_PANIC(...)                                                 \
    ::stitch::detail::panicImpl(                                          \
        __FILE__, __LINE__,                                               \
        ::stitch::detail::formatMessage(__VA_ARGS__))

/** Panic unless cond holds. Cheap enough to keep on in release builds. */
#define STITCH_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            STITCH_PANIC("assertion failed: " #cond " ",                  \
                         ##__VA_ARGS__);                                  \
        }                                                                 \
    } while (0)

#endif // STITCH_COMMON_LOGGING_HH

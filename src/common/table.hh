/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit
 * paper-style rows (Tables I/III/IV, Figures 11-15 series).
 */

#ifndef STITCH_COMMON_TABLE_HH
#define STITCH_COMMON_TABLE_HH

#include <cstdio>
#include <string>
#include <vector>

namespace stitch
{

/** Column-aligned text table. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header)
        : header_(std::move(header))
    {}

    /** Append one row; must have as many cells as the header. */
    void
    addRow(std::vector<std::string> cells)
    {
        rows_.push_back(std::move(cells));
    }

    /** Render to stdout with aligned columns. */
    void
    print(std::FILE *out = stdout) const
    {
        std::vector<std::size_t> width(header_.size(), 0);
        auto grow = [&](const std::vector<std::string> &row) {
            for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
                if (row[i].size() > width[i])
                    width[i] = row[i].size();
        };
        grow(header_);
        for (const auto &row : rows_)
            grow(row);

        auto emit = [&](const std::vector<std::string> &row) {
            for (std::size_t i = 0; i < width.size(); ++i) {
                const std::string cell = i < row.size() ? row[i] : "";
                std::fprintf(out, "%-*s  ",
                             static_cast<int>(width[i]), cell.c_str());
            }
            std::fprintf(out, "\n");
        };

        emit(header_);
        std::size_t total = 0;
        for (auto w : width)
            total += w + 2;
        std::fprintf(out, "%s\n", std::string(total, '-').c_str());
        for (const auto &row : rows_)
            emit(row);
    }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf-style helper returning std::string ("%.2f" etc.). */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace stitch

#endif // STITCH_COMMON_TABLE_HH

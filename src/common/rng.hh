/**
 * @file
 * Deterministic pseudo-random number generator for workload synthesis.
 *
 * All workload inputs in this repository are generated through Rng so
 * every experiment is exactly reproducible regardless of platform or
 * standard-library implementation.
 */

#ifndef STITCH_COMMON_RNG_HH
#define STITCH_COMMON_RNG_HH

#include <cstdint>

namespace stitch
{

/** xoshiro256** — small, fast, and identical everywhere. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5717c4u)
    {
        // SplitMix64 seeding, the recommended initializer for xoshiro.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(next() % span);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace stitch

#endif // STITCH_COMMON_RNG_HH

/**
 * @file
 * Bit-manipulation helpers used by the instruction encoder/decoder and
 * the 19-bit patch control-word packing.
 */

#ifndef STITCH_COMMON_BITUTIL_HH
#define STITCH_COMMON_BITUTIL_HH

#include <cstdint>

#include "common/logging.hh"

namespace stitch
{

/** Extract bits [lo, lo+width) of value. */
constexpr std::uint32_t
extractBits(std::uint32_t value, int lo, int width)
{
    return (value >> lo) & ((width >= 32) ? 0xffffffffu
                                          : ((1u << width) - 1u));
}

/** Return value with bits [lo, lo+width) replaced by field. */
constexpr std::uint32_t
insertBits(std::uint32_t value, int lo, int width, std::uint32_t field)
{
    std::uint32_t mask =
        ((width >= 32) ? 0xffffffffu : ((1u << width) - 1u)) << lo;
    return (value & ~mask) | ((field << lo) & mask);
}

/** Sign-extend the low `width` bits of value to 32 bits. */
constexpr std::int32_t
signExtend(std::uint32_t value, int width)
{
    std::uint32_t shift = 32u - static_cast<std::uint32_t>(width);
    return static_cast<std::int32_t>(value << shift) >>
           static_cast<std::int32_t>(shift);
}

/** True if value fits in a signed immediate field of `width` bits. */
constexpr bool
fitsSigned(std::int64_t value, int width)
{
    std::int64_t lo = -(std::int64_t{1} << (width - 1));
    std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
    return value >= lo && value <= hi;
}

/** True if value fits in an unsigned field of `width` bits. */
constexpr bool
fitsUnsigned(std::uint64_t value, int width)
{
    return value < (std::uint64_t{1} << width);
}

/**
 * Incremental writer of packed little-endian bit fields; used to build
 * the 19-bit patch control words (paper Section III-A).
 */
class BitPacker
{
  public:
    /** Append `width` bits of `field` at the current cursor. */
    void
    push(std::uint32_t field, int width)
    {
        STITCH_ASSERT(width > 0 && width <= 32);
        STITCH_ASSERT(fitsUnsigned(field, width),
                      "field ", field, " does not fit in ", width, " bits");
        bits_ |= static_cast<std::uint64_t>(field) << cursor_;
        cursor_ += width;
        STITCH_ASSERT(cursor_ <= 64, "BitPacker overflow");
    }

    /** Total number of bits pushed so far. */
    int width() const { return cursor_; }

    /** The accumulated value. */
    std::uint64_t value() const { return bits_; }

  private:
    std::uint64_t bits_ = 0;
    int cursor_ = 0;
};

/** Mirror of BitPacker: sequential reader of packed bit fields. */
class BitUnpacker
{
  public:
    explicit BitUnpacker(std::uint64_t bits) : bits_(bits) {}

    /** Read the next `width` bits. */
    std::uint32_t
    pull(int width)
    {
        STITCH_ASSERT(width > 0 && width <= 32);
        STITCH_ASSERT(cursor_ + width <= 64, "BitUnpacker overflow");
        std::uint64_t mask = (width >= 64) ? ~std::uint64_t{0}
                                           : ((std::uint64_t{1} << width) - 1);
        auto field =
            static_cast<std::uint32_t>((bits_ >> cursor_) & mask);
        cursor_ += width;
        return field;
    }

  private:
    std::uint64_t bits_;
    int cursor_ = 0;
};

} // namespace stitch

#endif // STITCH_COMMON_BITUTIL_HH

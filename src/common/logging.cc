#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace stitch
{
namespace detail
{

namespace
{
Verbosity level = Verbosity::Silent;
} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

Verbosity
verbosity()
{
    return level;
}

void
setVerbosity(Verbosity v)
{
    level = v;
}

} // namespace detail
} // namespace stitch

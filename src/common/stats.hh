/**
 * @file
 * Lightweight named-counter statistics, in the spirit of gem5's stats
 * package but scoped per component instance.
 */

#ifndef STITCH_COMMON_STATS_HH
#define STITCH_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace stitch
{

/**
 * A bag of named 64-bit counters. Components own one and expose it via
 * a stats() accessor; harnesses aggregate and print them.
 */
class StatGroup
{
  public:
    /** Add delta to counter `name`, creating it at zero if absent. */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set counter `name` to an absolute value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Current value of counter `name` (zero if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** All counters, sorted by name for stable output. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** Reset every counter to zero. */
    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second = 0;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace stitch

#endif // STITCH_COMMON_STATS_HH

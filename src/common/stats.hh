/**
 * @file
 * Lightweight named-counter statistics, in the spirit of gem5's stats
 * package but scoped per component instance.
 */

#ifndef STITCH_COMMON_STATS_HH
#define STITCH_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace stitch
{

/** One named statistic's storage; obtained via StatGroup::counter(). */
using Counter = std::uint64_t;

/**
 * A bag of named 64-bit counters. Components own one and expose it via
 * a stats() accessor; harnesses aggregate and print them (usually
 * through an obs::Registry).
 *
 * Hot paths should not pay a string lookup per increment: fetch a
 * Counter& handle once (construction time) with counter() and bump it
 * directly. Handles stay valid for the StatGroup's lifetime — the
 * backing map is node-based, and reset() zeroes values in place.
 */
class StatGroup
{
  public:
    /**
     * Stable reference to counter `name`, created at zero if absent.
     * Cache the reference; increments through it are a single add.
     */
    Counter &
    counter(const std::string &name)
    {
        return counters_[name];
    }

    /** Add delta to counter `name`, creating it at zero if absent. */
    void
    inc(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set counter `name` to an absolute value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Current value of counter `name` (zero if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** All counters, sorted by name for stable output. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** Reset every counter to zero. */
    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second = 0;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace stitch

#endif // STITCH_COMMON_STATS_HH

/**
 * @file
 * Shared command-line flag handling for benches, tools and the
 * service front-ends. Every harness used to hand-roll the same
 * `--json=/--jobs=/--scheduler=/--out=` parsing (bench_common.hh and
 * tools/smoke_app.cc each had a copy); this is the one
 * implementation.
 *
 * Layering: common sits below sim, so the scheduler is kept as its
 * raw string here and converted at the use site with
 * sim::schedulerKindFromName (which performs the typed validation).
 */

#ifndef STITCH_COMMON_CLI_HH
#define STITCH_COMMON_CLI_HH

#include <string>
#include <vector>

namespace stitch::cli
{

/**
 * Match a `--key=value` argument: when `arg` starts with `prefix`,
 * copy the remainder into `*out` and return true. The helper every
 * flag parser in the repo builds on.
 */
bool keyedValue(const char *arg, const char *prefix,
                std::string *out);

/** `--jobs=N` semantics: 0 means one worker per hardware thread,
 *  anything below 1 clamps to 1. */
int resolveJobs(int requested);

/**
 * The flags shared by benches, tools, and the service front-ends.
 * parse() consumes one argv entry and reports whether it was one of
 * them; anything unrecognized is left to the caller (positional
 * arguments, harness-specific switches, obs::CliOptions).
 */
struct CommonFlags
{
    std::string jsonPath;  ///< --json=FILE (bench metrics document)
    std::string out;       ///< --out=PATH (per-run artifacts)
    std::string scheduler; ///< --scheduler=NAME (raw; empty = default)
    int jobs = 1;          ///< --jobs=N, resolved via resolveJobs()

    /** Consume one argv entry; true iff it was a shared flag. */
    bool parse(const char *arg);
};

} // namespace stitch::cli

#endif // STITCH_COMMON_CLI_HH

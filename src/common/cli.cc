#include "common/cli.hh"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace stitch::cli
{

bool
keyedValue(const char *arg, const char *prefix, std::string *out)
{
    std::size_t n = std::strlen(prefix);
    if (std::strncmp(arg, prefix, n) != 0)
        return false;
    *out = arg + n;
    return true;
}

int
resolveJobs(int requested)
{
    if (requested == 0)
        requested =
            static_cast<int>(std::thread::hardware_concurrency());
    return requested < 1 ? 1 : requested;
}

bool
CommonFlags::parse(const char *arg)
{
    if (keyedValue(arg, "--json=", &jsonPath))
        return true;
    if (keyedValue(arg, "--out=", &out))
        return true;
    if (keyedValue(arg, "--scheduler=", &scheduler))
        return true;
    if (std::string value; keyedValue(arg, "--jobs=", &value)) {
        jobs = resolveJobs(std::atoi(value.c_str()));
        return true;
    }
    return false;
}

} // namespace stitch::cli

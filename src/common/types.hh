/**
 * @file
 * Fundamental scalar types shared across the Stitch code base.
 */

#ifndef STITCH_COMMON_TYPES_HH
#define STITCH_COMMON_TYPES_HH

#include <cstdint>

namespace stitch
{

/** A simulated clock-cycle count. */
using Cycles = std::uint64_t;

/** A simulated byte address (SW32 is a 32-bit machine). */
using Addr = std::uint32_t;

/** A 32-bit machine word, the natural operand size of SW32. */
using Word = std::uint32_t;

/** Signed view of a machine word, used by arithmetic ops. */
using SWord = std::int32_t;

/** Identifier of a tile (core + patch + switch) in the 4x4 mesh. */
using TileId = int;

/** Identifier of an architectural register (r0..r31). */
using RegId = int;

/** Number of tiles in the prototype Stitch chip (paper Section III). */
inline constexpr int numTiles = 16;

/** Mesh dimension: the 16 tiles form a meshDim x meshDim grid. */
inline constexpr int meshDim = 4;

/** Number of architectural registers in SW32. */
inline constexpr int numRegs = 32;

/**
 * Convert a tile id to its mesh row (tiles are numbered row-major
 * from the top-left corner, matching the paper's Figure 2 where
 * patch_i belongs to tile_i).
 */
constexpr int
tileRow(TileId t)
{
    return t / meshDim;
}

/** Convert a tile id to its mesh column. */
constexpr int
tileCol(TileId t)
{
    return t % meshDim;
}

/** Manhattan distance between two tiles in the mesh. */
constexpr int
tileDistance(TileId a, TileId b)
{
    int dr = tileRow(a) - tileRow(b);
    int dc = tileCol(a) - tileCol(b);
    return (dr < 0 ? -dr : dr) + (dc < 0 ? -dc : dc);
}

} // namespace stitch

#endif // STITCH_COMMON_TYPES_HH

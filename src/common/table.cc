#include "common/table.hh"

#include <cstdarg>

namespace stitch
{

std::string
strformat(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return std::string(buf);
}

} // namespace stitch

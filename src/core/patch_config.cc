#include "core/patch_config.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace stitch::core
{

const char *
patchKindName(PatchKind k)
{
    switch (k) {
      case PatchKind::ATMA: return "AT-MA";
      case PatchKind::ATAS: return "AT-AS";
      case PatchKind::ATSA: return "AT-SA";
    }
    STITCH_PANIC("bad PatchKind");
}

PatchTemplate
patchTemplate(PatchKind kind)
{
    switch (kind) {
      case PatchKind::ATMA:
        return PatchTemplate{{OpClass::A, OpClass::T},
                             {OpClass::M, OpClass::A}};
      case PatchKind::ATAS:
        return PatchTemplate{{OpClass::A, OpClass::T},
                             {OpClass::A, OpClass::S}};
      case PatchKind::ATSA:
        return PatchTemplate{{OpClass::A, OpClass::T},
                             {OpClass::S, OpClass::A}};
    }
    STITCH_PANIC("bad PatchKind");
}

std::uint32_t
PatchCtl::pack() const
{
    BitPacker p;
    p.push(static_cast<std::uint32_t>(a1op), 3);
    p.push(static_cast<std::uint32_t>(tMode), 2);
    p.push(static_cast<std::uint32_t>(u1Lhs), 2);
    p.push(static_cast<std::uint32_t>(u1Rhs), 2);
    p.push(static_cast<std::uint32_t>(u2Lhs), 1);
    p.push(static_cast<std::uint32_t>(u2Rhs), 2);
    p.push(static_cast<std::uint32_t>(aop2), 3);
    p.push(static_cast<std::uint32_t>(sop), 2);
    p.push(static_cast<std::uint32_t>(outCfg), 2);
    STITCH_ASSERT(p.width() == ctlBits,
                  "control word must be exactly 19 bits");
    return static_cast<std::uint32_t>(p.value());
}

PatchCtl
PatchCtl::unpack(std::uint32_t bits)
{
    BitUnpacker u(bits);
    PatchCtl c;
    c.a1op = static_cast<AluOp>(u.pull(3));
    c.tMode = static_cast<TMode>(u.pull(2));
    c.u1Lhs = static_cast<U1Lhs>(u.pull(2));
    c.u1Rhs = static_cast<U1Rhs>(u.pull(2));
    c.u2Lhs = static_cast<U2Lhs>(u.pull(1));
    c.u2Rhs = static_cast<U2Rhs>(u.pull(2));
    c.aop2 = static_cast<AluOp>(u.pull(3));
    c.sop = static_cast<ShiftOp>(u.pull(2));
    c.outCfg = static_cast<OutCfg>(u.pull(2));
    return c;
}

std::string
PatchCtl::toString() const
{
    static const char *tNames[] = {"off", "load", "store", "?"};
    static const char *outNames[] = {"none", "s1", "s2", "both"};
    return strformat(
        "a1=%s t=%s u1=(%d,%d) u2=(%d,%d) aop2=%s sop=%s out=%s",
        aluOpName(a1op), tNames[static_cast<int>(tMode)],
        static_cast<int>(u1Lhs), static_cast<int>(u1Rhs),
        static_cast<int>(u2Lhs), static_cast<int>(u2Rhs),
        aluOpName(aop2), shiftOpName(sop),
        outNames[static_cast<int>(outCfg)]);
}

std::uint64_t
FusedConfig::packBlob() const
{
    std::uint64_t blob = 0;
    blob |= static_cast<std::uint64_t>(local.pack());
    blob |= static_cast<std::uint64_t>(remote.pack()) << 19;
    blob |= static_cast<std::uint64_t>(usesRemote ? 1 : 0) << 38;
    blob |= static_cast<std::uint64_t>(localKind) << 39;
    blob |= static_cast<std::uint64_t>(remoteKind) << 41;
    blob |= static_cast<std::uint64_t>(writeLocalToRd1 ? 1 : 0) << 43;
    return blob;
}

FusedConfig
FusedConfig::unpackBlob(std::uint64_t blob)
{
    FusedConfig c;
    c.local = PatchCtl::unpack(static_cast<std::uint32_t>(
        blob & ((1u << 19) - 1)));
    c.remote = PatchCtl::unpack(static_cast<std::uint32_t>(
        (blob >> 19) & ((1u << 19) - 1)));
    c.usesRemote = ((blob >> 38) & 1) != 0;
    c.localKind = static_cast<PatchKind>((blob >> 39) & 3);
    c.remoteKind = static_cast<PatchKind>((blob >> 41) & 3);
    c.writeLocalToRd1 = ((blob >> 43) & 1) != 0;
    if (!c.usesRemote) {
        // Normalize so pack/unpack is a bijection on canonical blobs.
        c.remote = PatchCtl{};
        c.remoteKind = PatchKind::ATMA;
        c.writeLocalToRd1 = false;
    }
    return c;
}

} // namespace stitch::core

/**
 * @file
 * Patch kinds and the 19-bit patch control word (paper Section III-A).
 *
 * "Each patch requires 19-bits for control signals, which is carried
 *  by a two-word size custom instruction."
 *
 * Our control layout packs to exactly 19 bits; pack()/unpack() are
 * exact inverses (property-tested). FusedConfig bundles the control
 * words of one or two patches into the 64-bit blob that Program's ISE
 * table stores. Carrying the control in a preset table rather than
 * inline in the instruction mirrors the paper's preset configuration
 * state (the crossbar configuration registers of Section III-B are
 * written before the application launches); the two-word fetch cost of
 * CUST is preserved for timing fidelity.
 */

#ifndef STITCH_CORE_PATCH_CONFIG_HH
#define STITCH_CORE_PATCH_CONFIG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/ops.hh"

namespace stitch::core
{

/** The three heterogeneous patch flavours (paper Figure 3). */
enum class PatchKind : std::uint8_t
{
    ATMA = 0, ///< {AT-MA}: ALU+LMAU stage, then multiplier+ALU stage
    ATAS,     ///< {AT-AS}: ALU+LMAU stage, then ALU+shifter stage
    ATSA,     ///< {AT-SA}: ALU+LMAU stage, then shifter+ALU stage
};

inline constexpr int numPatchKinds = 3;

/** Printable name, e.g. "AT-MA". */
const char *patchKindName(PatchKind k);

/**
 * Ordered unit classes of a patch's two stages. Stage 1 is always
 * [A, T]; stage 2 depends on the kind. The compiler's mapper matches
 * DFG chains against these templates.
 */
struct PatchTemplate
{
    std::array<OpClass, 2> stage1; ///< always {A, T}
    std::array<OpClass, 2> stage2; ///< {M,A} or {A,S} or {S,A}
};

/** Structural template of `kind`. */
PatchTemplate patchTemplate(PatchKind kind);

/** Stage-2 unit-1 left operand select (2 bits). */
enum class U1Lhs : std::uint8_t { In1 = 0, In2, In3, S1Out };

/** Stage-2 unit-1 right operand select (2 bits). */
enum class U1Rhs : std::uint8_t { In2 = 0, In3, S1Out, In1 };

/** Stage-2 unit-2 left operand select (1 bit): the {AA} bypass. */
enum class U2Lhs : std::uint8_t { U1Out = 0, S1Out };

/** Stage-2 unit-2 right operand select (2 bits). */
enum class U2Rhs : std::uint8_t { In3 = 0, S1Out, In2, In1 };

/** Which results are written back to the register file (2 bits). */
enum class OutCfg : std::uint8_t
{
    None = 0,  ///< nothing written (store-only pattern)
    S1,        ///< rd0 = stage-1 result
    S2,        ///< rd0 = stage-2 result
    Both,      ///< rd0 = stage-2 result, rd1 = stage-1 result
};

/**
 * The decoded 19-bit control word of one polymorphic patch.
 *
 * Bit budget: a1op(3) + tMode(2) + u1Lhs(2) + u1Rhs(2) + u2Lhs(1) +
 * u2Rhs(2) + aop2(3) + sop(2) + outCfg(2) = 19 bits, matching the
 * paper's figure. Operand positions into stage 1 are fixed (in0, in1,
 * store data = in2): the register allocator permutes operands into
 * position, which is what keeps the control word tiny.
 */
struct PatchCtl
{
    AluOp a1op = AluOp::Pass;    ///< stage-1 ALU operation
    TMode tMode = TMode::Off;    ///< LMAU mode
    U1Lhs u1Lhs = U1Lhs::S1Out;  ///< stage-2 unit-1 left select
    U1Rhs u1Rhs = U1Rhs::In2;    ///< stage-2 unit-1 right select
    U2Lhs u2Lhs = U2Lhs::U1Out;  ///< stage-2 unit-2 left select
    U2Rhs u2Rhs = U2Rhs::In3;    ///< stage-2 unit-2 right select
    AluOp aop2 = AluOp::Pass;    ///< stage-2 ALU operation
    ShiftOp sop = ShiftOp::Pass; ///< stage-2 shifter operation
    OutCfg outCfg = OutCfg::S1;  ///< writeback selection

    /** Number of control bits (paper Section III-A). */
    static constexpr int ctlBits = 19;

    /** Pack into the 19-bit control word. */
    std::uint32_t pack() const;

    /** Exact inverse of pack(). */
    static PatchCtl unpack(std::uint32_t bits);

    /** Human-readable dump for debugging. */
    std::string toString() const;

    bool operator==(const PatchCtl &) const = default;
};

/**
 * A complete custom-instruction configuration: one patch, or two
 * patches fused over the inter-patch NoC (paper Section III-B).
 */
struct FusedConfig
{
    PatchKind localKind = PatchKind::ATMA;
    PatchCtl local;
    bool usesRemote = false;
    PatchKind remoteKind = PatchKind::ATMA;
    PatchCtl remote;

    /**
     * When fused: also write the local patch's primary result to rd1
     * (the remote primary always lands in rd0).
     */
    bool writeLocalToRd1 = false;

    /** Control bits travelling on the 166-bit link (19 or 38). */
    int linkControlBits() const { return usesRemote ? 38 : 19; }

    /** Pack to the 64-bit ISE-table blob. */
    std::uint64_t packBlob() const;

    /** Exact inverse of packBlob(). */
    static FusedConfig unpackBlob(std::uint64_t blob);

    bool operator==(const FusedConfig &) const = default;
};

} // namespace stitch::core

#endif // STITCH_CORE_PATCH_CONFIG_HH

/**
 * @file
 * RTL-derived timing and area constants (paper Table IV) and the
 * critical-path model of Section VI-D.
 *
 * The paper synthesizes the patches and the inter-patch NoC switch at
 * 40 nm and reports: {AT-MA} 1.38 ns, {AT-AS} 1.12 ns, {AT-SA}
 * 1.02 ns, switch 0.17 ns, and 0.3 ns of clockless-repeater wire per
 * 3 hops. A fused execution's critical path is
 *
 *   switch + local patch + switch + hops*(wire+switch)
 *          + remote patch + hops*(wire+switch) + switch
 *
 * which for the worst legal case (AT-MA fused with AT-AS, 3 hops each
 * way) is 4.63 ns — hence the 200 MHz clock and the at-most-six-hop
 * rule (3 mesh hops out + 3 back).
 */

#ifndef STITCH_CORE_SNOC_TIMING_HH
#define STITCH_CORE_SNOC_TIMING_HH

#include "core/patch_config.hh"

namespace stitch::core
{

/** 40 nm synthesis constants (paper Table IV). */
namespace rtl
{
inline constexpr double switchDelayNs = 0.17;
inline constexpr double wirePerHopNs = 0.1;     ///< 0.3 ns per 3 hops
inline constexpr double clockPeriodNs = 5.0;    ///< 200 MHz
inline constexpr int maxFusionHops = 6;         ///< round trip, Section VI-D

inline constexpr double patchAtmaAreaUm2 = 4152.0;
inline constexpr double patchAtasAreaUm2 = 2096.0;
inline constexpr double patchAtsaAreaUm2 = 2157.0;
inline constexpr double switchAreaUm2 = 7423.0;
} // namespace rtl

/** Combinational delay of one patch flavour (ns). */
constexpr double
patchDelayNs(PatchKind k)
{
    switch (k) {
      case PatchKind::ATMA: return 1.38;
      case PatchKind::ATAS: return 1.12;
      case PatchKind::ATSA: return 1.02;
    }
    return 0.0;
}

/** Synthesized area of one patch flavour (um^2, Table IV). */
constexpr double
patchAreaUm2(PatchKind k)
{
    switch (k) {
      case PatchKind::ATMA: return rtl::patchAtmaAreaUm2;
      case PatchKind::ATAS: return rtl::patchAtasAreaUm2;
      case PatchKind::ATSA: return rtl::patchAtsaAreaUm2;
    }
    return 0.0;
}

/** Critical path of an unfused custom instruction on `kind` (ns). */
constexpr double
singleCriticalPathNs(PatchKind kind)
{
    // REG -> switch -> patch -> switch -> REG.
    return 2 * rtl::switchDelayNs + patchDelayNs(kind);
}

/**
 * Critical path of a fused custom instruction (ns).
 *
 * @param hopsThere mesh hops from the local to the remote patch
 * @param hopsBack  mesh hops of the return (result) route
 */
constexpr double
fusedCriticalPathNs(PatchKind local, PatchKind remote, int hopsThere,
                    int hopsBack)
{
    return 3 * rtl::switchDelayNs + patchDelayNs(local) +
           patchDelayNs(remote) +
           (hopsThere + hopsBack) *
               (rtl::wirePerHopNs + rtl::switchDelayNs);
}

/** True if the path delay fits inside the 200 MHz clock period. */
constexpr bool
fitsClock(double pathNs)
{
    return pathNs <= rtl::clockPeriodNs;
}

/** Frequency (MHz) implied by a critical path. */
constexpr double
pathFrequencyMhz(double pathNs)
{
    return 1000.0 / pathNs;
}

} // namespace stitch::core

#endif // STITCH_CORE_SNOC_TIMING_HH

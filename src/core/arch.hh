/**
 * @file
 * The Stitch chip floorplan: which patch flavour sits on which tile.
 */

#ifndef STITCH_CORE_ARCH_HH
#define STITCH_CORE_ARCH_HH

#include <array>
#include <vector>

#include "core/patch_config.hh"

namespace stitch::core
{

/**
 * Placement of the 16 polymorphic patches over the mesh.
 *
 * The standard() placement follows the paper's Figure 2 proportions —
 * 8 {AT-MA}, 4 {AT-AS}, 4 {AT-SA} — interleaved so that every
 * {AT-AS}/{AT-SA} tile has an {AT-MA} neighbour, and reproducing the
 * paper's worked example (patch_2 and patch_10 are both {AT-AS} with
 * patch_6 on the bypass path between them; paper numbering is 1-based,
 * ours is 0-based).
 */
struct StitchArch
{
    std::array<PatchKind, numTiles> placement;

    /** The paper's 8/4/4 interleaved layout. */
    static StitchArch
    standard()
    {
        using enum PatchKind;
        return StitchArch{{
            ATMA, ATAS, ATMA, ATSA,
            ATSA, ATMA, ATAS, ATMA,
            ATMA, ATAS, ATMA, ATSA,
            ATSA, ATMA, ATAS, ATMA,
        }};
    }

    PatchKind kindOf(TileId t) const
    {
        return placement[static_cast<std::size_t>(t)];
    }

    /** All tiles hosting patches of `kind`. */
    std::vector<TileId>
    tilesOf(PatchKind kind) const
    {
        std::vector<TileId> out;
        for (TileId t = 0; t < numTiles; ++t)
            if (kindOf(t) == kind)
                out.push_back(t);
        return out;
    }

    /** Count of patches of `kind`. */
    int
    countOf(PatchKind kind) const
    {
        int n = 0;
        for (auto k : placement)
            if (k == kind)
                ++n;
        return n;
    }
};

} // namespace stitch::core

#endif // STITCH_CORE_ARCH_HH

/**
 * @file
 * A tiny interpreted dataflow program ("micro-DFG") describing the
 * computation of one custom instruction.
 *
 * Two uses:
 *  - the LOCUS baseline's configurable special functional unit [11]
 *    executes ISEs as micro-DFGs (it is a rich fabric without the
 *    patches' mux restrictions, and without load/store support);
 *  - tests cross-validate patch execution against the micro-DFG of
 *    the candidate the mapper claims it implements.
 */

#ifndef STITCH_CORE_MICRO_HH
#define STITCH_CORE_MICRO_HH

#include <array>
#include <vector>

#include "core/patch.hh"

namespace stitch::core
{

/** One operation of a micro-DFG. Operand encoding: values >= 0 are
 *  earlier op indices; -1..-4 are input ports 0..3. */
struct MicroOp
{
    enum class Kind { Alu, Mul, Shift, Load, Store };

    Kind kind = Kind::Alu;
    AluOp aluOp = AluOp::Pass;
    ShiftOp shiftOp = ShiftOp::Pass;
    int lhs = -1; ///< Load: address; Store: address
    int rhs = -1; ///< Store: data; unused by Load
};

/** Encode input port `p` (0..3) as a MicroOp operand. */
constexpr int
microPortRef(int p)
{
    return -1 - p;
}

/** A custom instruction as an interpretable dataflow program. */
struct MicroDfg
{
    std::vector<MicroOp> ops; ///< topologically ordered
    int rd0Op = -1;           ///< op index whose value goes to rd0
    int rd1Op = -1;           ///< op index whose value goes to rd1

    /** Evaluate against the four input ports. `spm` may be null when
     *  the program contains no Load/Store. */
    CustResult evaluate(const std::array<Word, 4> &in,
                        SpmPort *spm) const;

    /** True if any op is a Load or Store. */
    bool usesMemory() const;

    /** Number of ops. */
    int size() const { return static_cast<int>(ops.size()); }
};

} // namespace stitch::core

#endif // STITCH_CORE_MICRO_HH

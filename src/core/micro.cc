#include "core/micro.hh"

#include "common/logging.hh"

namespace stitch::core
{

CustResult
MicroDfg::evaluate(const std::array<Word, 4> &in, SpmPort *spm) const
{
    std::vector<Word> values(ops.size(), 0);

    auto resolve = [&](int ref, std::size_t upTo) -> Word {
        if (ref < 0) {
            int port = -1 - ref;
            STITCH_ASSERT(port >= 0 && port < 4,
                          "bad micro port reference ", ref);
            return in[static_cast<std::size_t>(port)];
        }
        STITCH_ASSERT(static_cast<std::size_t>(ref) < upTo,
                      "micro operand references a later op");
        return values[static_cast<std::size_t>(ref)];
    };

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const MicroOp &op = ops[i];
        Word lhs = resolve(op.lhs, i);
        switch (op.kind) {
          case MicroOp::Kind::Alu:
            values[i] = aluEval(op.aluOp, lhs, resolve(op.rhs, i));
            break;
          case MicroOp::Kind::Mul:
            values[i] = lhs * resolve(op.rhs, i);
            break;
          case MicroOp::Kind::Shift:
            values[i] = shiftEval(op.shiftOp, lhs, resolve(op.rhs, i));
            break;
          case MicroOp::Kind::Load:
            STITCH_ASSERT(spm, "micro Load without an SPM port");
            values[i] = spm->load(lhs);
            break;
          case MicroOp::Kind::Store:
            STITCH_ASSERT(spm, "micro Store without an SPM port");
            spm->store(lhs, resolve(op.rhs, i));
            values[i] = lhs;
            break;
        }
    }

    CustResult out;
    if (rd0Op >= 0) {
        out.rd0 = values[static_cast<std::size_t>(rd0Op)];
        out.writeRd0 = true;
    }
    if (rd1Op >= 0) {
        out.rd1 = values[static_cast<std::size_t>(rd1Op)];
        out.writeRd1 = true;
    }
    return out;
}

bool
MicroDfg::usesMemory() const
{
    for (const auto &op : ops)
        if (op.kind == MicroOp::Kind::Load ||
            op.kind == MicroOp::Kind::Store)
            return true;
    return false;
}

} // namespace stitch::core

#include "core/snoc.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"

namespace stitch::core
{

const char *
snocPortName(SnocPort p)
{
    switch (p) {
      case SnocPort::North: return "N";
      case SnocPort::East: return "E";
      case SnocPort::South: return "S";
      case SnocPort::West: return "W";
      case SnocPort::Patch: return "patch";
      case SnocPort::Reg: return "reg";
    }
    STITCH_PANIC("bad SnocPort");
}

SnocPort
oppositePort(SnocPort p)
{
    switch (p) {
      case SnocPort::North: return SnocPort::South;
      case SnocPort::East: return SnocPort::West;
      case SnocPort::South: return SnocPort::North;
      case SnocPort::West: return SnocPort::East;
      default:
        STITCH_PANIC("oppositePort of a local port");
    }
}

TileId
neighbourOf(TileId t, SnocPort d)
{
    int row = tileRow(t);
    int col = tileCol(t);
    switch (d) {
      case SnocPort::North: row -= 1; break;
      case SnocPort::South: row += 1; break;
      case SnocPort::East: col += 1; break;
      case SnocPort::West: col -= 1; break;
      default:
        STITCH_PANIC("neighbourOf with a local port");
    }
    if (row < 0 || row >= meshDim || col < 0 || col >= meshDim)
        return -1;
    return row * meshDim + col;
}

SnocPort
directionTo(TileId a, TileId b)
{
    int dr = tileRow(b) - tileRow(a);
    int dc = tileCol(b) - tileCol(a);
    if (dr == -1 && dc == 0) return SnocPort::North;
    if (dr == 1 && dc == 0) return SnocPort::South;
    if (dr == 0 && dc == 1) return SnocPort::East;
    if (dr == 0 && dc == -1) return SnocPort::West;
    STITCH_PANIC("tiles ", a, " and ", b, " are not adjacent");
}

void
SwitchConfig::connect(SnocPort in, SnocPort out)
{
    auto idx = static_cast<std::size_t>(out);
    if (drivers_[idx] >= 0 &&
        drivers_[idx] != static_cast<std::int8_t>(in)) {
        fatal("crossbar output ", snocPortName(out),
              " already driven by another input");
    }
    drivers_[idx] = static_cast<std::int8_t>(in);
}

std::optional<SnocPort>
SwitchConfig::driverOf(SnocPort out) const
{
    auto v = drivers_[static_cast<std::size_t>(out)];
    if (v < 0)
        return std::nullopt;
    return static_cast<SnocPort>(v);
}

std::uint32_t
SwitchConfig::packRegister() const
{
    std::uint32_t bits = 0;
    for (int out = 0; out < numSnocPorts; ++out) {
        auto v = drivers_[static_cast<std::size_t>(out)];
        std::uint32_t field = v < 0 ? 7u : static_cast<std::uint32_t>(v);
        bits |= field << (3 * out);
    }
    return bits;
}

SwitchConfig
SwitchConfig::unpackRegister(std::uint32_t bits)
{
    SwitchConfig cfg;
    for (int out = 0; out < numSnocPorts; ++out) {
        std::uint32_t field = (bits >> (3 * out)) & 7u;
        if (field < numSnocPorts) {
            cfg.drivers_[static_cast<std::size_t>(out)] =
                static_cast<std::int8_t>(field);
        }
    }
    return cfg;
}

std::optional<SnocPath>
SnocConfig::addPath(TileId from, SnocPort entry, TileId to, SnocPort exit)
{
    STITCH_ASSERT(from >= 0 && from < numTiles);
    STITCH_ASSERT(to >= 0 && to < numTiles);
    STITCH_ASSERT(entry == SnocPort::Patch || entry == SnocPort::Reg);
    STITCH_ASSERT(exit == SnocPort::Patch || exit == SnocPort::Reg);

    // Dijkstra with unit link weights over tiles (Algorithm 1 uses
    // Dijkstra; with unit weights this is a breadth-first search). A
    // mesh link (t -> n) is usable iff switch t's output port toward n
    // is free; the terminal switch's `exit` output must also be free.
    if (!switches_[static_cast<std::size_t>(to)].outputFree(exit))
        return std::nullopt;

    if (from == to) {
        // Purely local connection (e.g. patch result to local REG).
        SnocPath path;
        path.from = from;
        path.to = to;
        path.entry = entry;
        path.exit = exit;
        path.tiles = {from};
        switches_[static_cast<std::size_t>(from)].connect(entry, exit);
        paths_.push_back(path);
        return path;
    }

    std::array<int, numTiles> dist;
    std::array<TileId, numTiles> prev;
    dist.fill(-1);
    prev.fill(-1);
    std::queue<TileId> frontier;
    dist[static_cast<std::size_t>(from)] = 0;
    frontier.push(from);

    while (!frontier.empty()) {
        TileId t = frontier.front();
        frontier.pop();
        if (t == to)
            break;
        for (SnocPort d : {SnocPort::North, SnocPort::East,
                           SnocPort::South, SnocPort::West}) {
            TileId n = neighbourOf(t, d);
            if (n < 0 || dist[static_cast<std::size_t>(n)] >= 0)
                continue;
            if (!linkUp(t, d))
                continue;
            if (!switches_[static_cast<std::size_t>(t)].outputFree(d))
                continue;
            dist[static_cast<std::size_t>(n)] =
                dist[static_cast<std::size_t>(t)] + 1;
            prev[static_cast<std::size_t>(n)] = t;
            frontier.push(n);
        }
    }

    if (dist[static_cast<std::size_t>(to)] < 0)
        return std::nullopt;

    SnocPath path;
    path.from = from;
    path.to = to;
    path.entry = entry;
    path.exit = exit;
    for (TileId t = to; t != -1; t = prev[static_cast<std::size_t>(t)])
        path.tiles.push_back(t);
    std::reverse(path.tiles.begin(), path.tiles.end());

    // Claim the crossbar settings along the route.
    for (std::size_t i = 0; i + 1 < path.tiles.size(); ++i) {
        TileId t = path.tiles[i];
        TileId n = path.tiles[i + 1];
        SnocPort out = directionTo(t, n);
        SnocPort in = i == 0 ? entry
                             : oppositePort(directionTo(path.tiles[i - 1],
                                                        t));
        switches_[static_cast<std::size_t>(t)].connect(in, out);
    }
    SnocPort lastIn = oppositePort(
        directionTo(path.tiles[path.tiles.size() - 2], to));
    switches_[static_cast<std::size_t>(to)].connect(lastIn, exit);

    paths_.push_back(path);
    return path;
}

std::optional<std::pair<SnocPath, SnocPath>>
SnocConfig::addFusion(TileId local, PatchKind localKind, TileId remote,
                      PatchKind remoteKind)
{
    STITCH_ASSERT(local != remote, "a patch cannot fuse with itself");

    // Snapshot for atomic rollback: fusions need both directions.
    auto savedSwitches = switches_;
    auto savedPathCount = paths_.size();

    auto forward = addPath(local, SnocPort::Patch, remote,
                           SnocPort::Patch);
    if (forward) {
        auto back = addPath(remote, SnocPort::Patch, local,
                            SnocPort::Reg);
        if (back) {
            int totalHops = forward->hops() + back->hops();
            double ns = fusedCriticalPathNs(localKind, remoteKind,
                                            forward->hops(),
                                            back->hops());
            if (totalHops <= rtl::maxFusionHops && fitsClock(ns))
                return std::make_pair(*forward, *back);
        }
    }

    switches_ = savedSwitches;
    paths_.resize(savedPathCount);
    return std::nullopt;
}

void
SnocConfig::disableLink(TileId t, SnocPort d)
{
    STITCH_ASSERT(t >= 0 && t < numTiles);
    STITCH_ASSERT(d == SnocPort::North || d == SnocPort::East ||
                      d == SnocPort::South || d == SnocPort::West,
                  "only mesh links can fail");
    TileId n = neighbourOf(t, d);
    STITCH_ASSERT(n >= 0, "cannot disable a link off the mesh edge");
    linkDown_[static_cast<std::size_t>(t)]
             [static_cast<std::size_t>(d)] = true;
    linkDown_[static_cast<std::size_t>(n)]
             [static_cast<std::size_t>(oppositePort(d))] = true;
}

bool
SnocConfig::linkUp(TileId t, SnocPort d) const
{
    return !linkDown_[static_cast<std::size_t>(t)]
                     [static_cast<std::size_t>(d)];
}

const SnocPath *
SnocConfig::findPath(TileId from, SnocPort entry, TileId to,
                     SnocPort exit) const
{
    for (const auto &path : paths_) {
        if (path.from == from && path.entry == entry &&
            path.to == to && path.exit == exit)
            return &path;
    }
    return nullptr;
}

int
SnocConfig::fusionHops(TileId local, TileId remote) const
{
    const SnocPath *forward =
        findPath(local, SnocPort::Patch, remote, SnocPort::Patch);
    const SnocPath *back =
        findPath(remote, SnocPort::Patch, local, SnocPort::Reg);
    if (!forward || !back)
        return 0;
    return forward->hops() + back->hops();
}

std::array<std::uint32_t, numTiles>
SnocConfig::packRegisters() const
{
    std::array<std::uint32_t, numTiles> regs{};
    for (int t = 0; t < numTiles; ++t)
        regs[static_cast<std::size_t>(t)] =
            switches_[static_cast<std::size_t>(t)].packRegister();
    return regs;
}

bool
SnocConfig::validate(std::string *why) const
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };

    // Rebuild the expected switch settings from the path list and
    // compare: every claimed output must be accounted for by exactly
    // the registered paths (single-driver holds by construction of
    // SwitchConfig, so consistency is what remains to check).
    std::array<SwitchConfig, numTiles> expect{};
    for (const auto &path : paths_) {
        if (path.tiles.empty() || path.tiles.front() != path.from ||
            path.tiles.back() != path.to)
            return fail("path endpoints disagree with tile list");
        for (std::size_t i = 0; i + 1 < path.tiles.size(); ++i) {
            TileId t = path.tiles[i];
            TileId n = path.tiles[i + 1];
            if (tileDistance(t, n) != 1)
                return fail("path hops between non-adjacent tiles");
            if (!linkUp(t, directionTo(t, n)))
                return fail(detail::formatMessage(
                    "path routed over failed link t", t, "-t", n));
            SnocPort out = directionTo(t, n);
            SnocPort in =
                i == 0 ? path.entry
                       : oppositePort(directionTo(path.tiles[i - 1], t));
            auto &sw = expect[static_cast<std::size_t>(t)];
            if (!sw.outputFree(out))
                return fail("two paths share a crossbar output");
            sw.connect(in, out);
        }
        TileId last = path.tiles.back();
        SnocPort in =
            path.tiles.size() == 1
                ? path.entry
                : oppositePort(directionTo(
                      path.tiles[path.tiles.size() - 2], last));
        auto &sw = expect[static_cast<std::size_t>(last)];
        if (!sw.outputFree(path.exit))
            return fail("two paths share a terminal crossbar output");
        sw.connect(in, path.exit);
    }

    for (int t = 0; t < numTiles; ++t) {
        if (!(expect[static_cast<std::size_t>(t)] ==
              switches_[static_cast<std::size_t>(t)]))
            return fail("switch setting does not match routed paths");
    }
    return true;
}

void
SnocConfig::clear()
{
    switches_ = {};
    paths_.clear();
    linkDown_ = {};
}

} // namespace stitch::core

#include "core/ops.hh"

#include "common/logging.hh"

namespace stitch::core
{

char
opClassCode(OpClass c)
{
    switch (c) {
      case OpClass::A: return 'A';
      case OpClass::M: return 'M';
      case OpClass::S: return 'S';
      case OpClass::T: return 'T';
    }
    STITCH_PANIC("bad OpClass");
}

Word
aluEval(AluOp op, Word lhs, Word rhs)
{
    switch (op) {
      case AluOp::Add:
        return lhs + rhs;
      case AluOp::Sub:
        return lhs - rhs;
      case AluOp::And:
        return lhs & rhs;
      case AluOp::Or:
        return lhs | rhs;
      case AluOp::Xor:
        return lhs ^ rhs;
      case AluOp::Slt:
        return static_cast<SWord>(lhs) < static_cast<SWord>(rhs) ? 1 : 0;
      case AluOp::Sltu:
        return lhs < rhs ? 1 : 0;
      case AluOp::Pass:
        return lhs;
    }
    STITCH_PANIC("bad AluOp");
}

Word
shiftEval(ShiftOp op, Word lhs, Word rhs)
{
    Word amount = rhs & 31u;
    switch (op) {
      case ShiftOp::Sll:
        return lhs << amount;
      case ShiftOp::Srl:
        return lhs >> amount;
      case ShiftOp::Sra:
        return static_cast<Word>(static_cast<SWord>(lhs) >>
                                 static_cast<SWord>(amount));
      case ShiftOp::Pass:
        return lhs;
    }
    STITCH_PANIC("bad ShiftOp");
}

const char *
aluOpName(AluOp op)
{
    switch (op) {
      case AluOp::Add: return "add";
      case AluOp::Sub: return "sub";
      case AluOp::And: return "and";
      case AluOp::Or: return "or";
      case AluOp::Xor: return "xor";
      case AluOp::Slt: return "slt";
      case AluOp::Sltu: return "sltu";
      case AluOp::Pass: return "pass";
    }
    STITCH_PANIC("bad AluOp");
}

const char *
shiftOpName(ShiftOp op)
{
    switch (op) {
      case ShiftOp::Sll: return "sll";
      case ShiftOp::Srl: return "srl";
      case ShiftOp::Sra: return "sra";
      case ShiftOp::Pass: return "pass";
    }
    STITCH_PANIC("bad ShiftOp");
}

} // namespace stitch::core

/**
 * @file
 * Functional model of a polymorphic patch datapath (paper Figure 3)
 * and of fused (stitched) execution across two patches.
 *
 * A patch has two stages. Stage 1 is an ALU (A) followed by the local
 * memory access unit (T / LMAU), which is a mux onto the tile's SPM
 * port. Stage 2 is kind-specific: multiplier+ALU ({AT-MA}),
 * ALU+shifter ({AT-AS}) or shifter+ALU ({AT-SA}). The whole fused
 * datapath evaluates combinationally within one cycle (the sNoC timing
 * model in snoc_timing.hh verifies the cycle budget).
 */

#ifndef STITCH_CORE_PATCH_HH
#define STITCH_CORE_PATCH_HH

#include <array>
#include <cstdint>

#include "core/patch_config.hh"

namespace stitch::core
{

/** SPM access port presented to the LMAU. */
class SpmPort
{
  public:
    virtual ~SpmPort() = default;
    virtual Word load(Addr a) = 0;
    virtual void store(Addr a, Word v) = 0;
};

/** SpmPort that rejects every access (patches without SPM rights). */
class NullSpmPort : public SpmPort
{
  public:
    Word load(Addr a) override;
    void store(Addr a, Word v) override;
};

/** Result of evaluating one patch. */
struct PatchResult
{
    Word s1 = 0;        ///< stage-1 (AT) result
    Word s2 = 0;        ///< stage-2 result
    bool didLoad = false;
    bool didStore = false;

    /** Value this patch forwards / writes first, per its OutCfg. */
    Word primary(OutCfg cfg) const
    {
        return cfg == OutCfg::S1 ? s1 : s2;
    }
};

/**
 * Evaluate one patch.
 *
 * @param kind  physical patch flavour
 * @param ctl   decoded 19-bit control word
 * @param in    the four register-file operands (in0..in3)
 * @param spm   SPM port of the tile hosting this patch
 */
PatchResult patchExecute(PatchKind kind, const PatchCtl &ctl,
                         const std::array<Word, 4> &in, SpmPort &spm);

/** Register writeback produced by a custom instruction. */
struct CustResult
{
    Word rd0 = 0;
    Word rd1 = 0;
    bool writeRd0 = false;
    bool writeRd1 = false;

    // Datapath activity of this execution, reported so the system
    // level can aggregate patch/sNoC counters and power activity
    // without re-decoding the configuration.
    bool usedRemote = false; ///< operands crossed the sNoC
    std::uint8_t spmLoads = 0;  ///< LMAU loads performed (0..2)
    std::uint8_t spmStores = 0; ///< LMAU stores performed (0..2)
};

/**
 * Execute a complete custom instruction: the local patch, and — when
 * the configuration is fused — the remote patch it is stitched to.
 *
 * Operand convention for fusion: the local patch's primary result
 * becomes the remote patch's in0; the remote patch sees the original
 * in1..in3 unchanged (they travel on the 166-bit link's four data
 * words). The remote primary result returns to the local tile's
 * register file (the purple return path of paper Figure 5).
 *
 * @param remoteSpm SPM port of the tile hosting the remote patch;
 *                  must be non-null when cfg.usesRemote.
 */
CustResult executeCustom(const FusedConfig &cfg,
                         const std::array<Word, 4> &in,
                         SpmPort &localSpm, SpmPort *remoteSpm);

} // namespace stitch::core

#endif // STITCH_CORE_PATCH_HH

/**
 * @file
 * The single-cycle reconfigurable compiler-scheduled inter-patch NoC
 * (paper Section III-B).
 *
 * The network is a 4x4 mesh of pure crossbar switches — no buffers, no
 * flow control, no routing logic. Each switch has six inputs (N, E, S,
 * W, the local patch's output, the local register file) and six
 * outputs (N, E, S, W, the local patch's input, the register
 * writeback). The compiler presets every switch through its
 * memory-mapped configuration register before the application starts;
 * because each crossbar output can be driven by exactly one input,
 * validity of a configuration is simply single-driver-per-output,
 * which SnocConfig enforces at construction time.
 */

#ifndef STITCH_CORE_SNOC_HH
#define STITCH_CORE_SNOC_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/snoc_timing.hh"

namespace stitch::core
{

/** Ports of an inter-patch NoC switch (used for inputs and outputs). */
enum class SnocPort : std::uint8_t
{
    North = 0,
    East,
    South,
    West,
    Patch, ///< input side: from the local patch's output;
           ///< output side: into the local patch's input
    Reg,   ///< input side: operands from the local register file;
           ///< output side: result writeback to the register file
};

inline constexpr int numSnocPorts = 6;

/** Printable port name. */
const char *snocPortName(SnocPort p);

/** The mesh direction opposite to `p` (North <-> South etc.). */
SnocPort oppositePort(SnocPort p);

/** Neighbour of `t` in mesh direction `d`, or -1 at the mesh edge. */
TileId neighbourOf(TileId t, SnocPort d);

/** Direction from tile `a` to an adjacent tile `b`. */
SnocPort directionTo(TileId a, TileId b);

/**
 * A routed point-to-point connection through the mesh: the ordered
 * tiles it traverses plus its entry/exit ports.
 */
struct SnocPath
{
    TileId from = -1;      ///< tile whose patch/REG sources the data
    TileId to = -1;        ///< tile whose patch/REG sinks the data
    SnocPort entry = SnocPort::Patch; ///< input port used at `from`
    SnocPort exit = SnocPort::Patch;  ///< output port used at `to`
    std::vector<TileId> tiles;        ///< from .. to, inclusive

    /** Number of mesh links traversed. */
    int hops() const { return static_cast<int>(tiles.size()) - 1; }
};

/**
 * One switch's crossbar setting: for each output port, the input port
 * driving it (or none). This is the value written to the tile's
 * memory-mapped crossbar configuration register.
 */
class SwitchConfig
{
  public:
    SwitchConfig() { drivers_.fill(-1); }

    /** Connect input `in` to output `out`; fatal on double drive. */
    void connect(SnocPort in, SnocPort out);

    /** True if output `out` has no driver yet. */
    bool
    outputFree(SnocPort out) const
    {
        return drivers_[static_cast<std::size_t>(out)] < 0;
    }

    /** Driver of output `out`, if any. */
    std::optional<SnocPort> driverOf(SnocPort out) const;

    /**
     * Pack into the configuration-register format: 3 bits per output
     * (0-5 = driving input, 7 = undriven), 18 bits total.
     */
    std::uint32_t packRegister() const;

    /** Inverse of packRegister(). */
    static SwitchConfig unpackRegister(std::uint32_t bits);

    bool operator==(const SwitchConfig &) const = default;

  private:
    std::array<std::int8_t, numSnocPorts> drivers_;
};

/**
 * The full inter-patch network configuration: 16 switch settings plus
 * the list of logical paths routed through them.
 *
 * addPath() performs the compiler-time routing (Dijkstra over the
 * port graph with unit link weights, per Algorithm 1's FindPath) and
 * claims crossbar outputs; it fails cleanly when no contention-free
 * route exists.
 */
class SnocConfig
{
  public:
    /**
     * Route a connection from `from`'s `entry` input to `to`'s `exit`
     * output. Typical uses:
     *  - operand/forward path: entry=Patch at the local tile,
     *    exit=Patch at the remote tile;
     *  - result return path: entry=Patch at the remote tile,
     *    exit=Reg at the local tile.
     *
     * @return the routed path, or std::nullopt if no free route.
     */
    std::optional<SnocPath> addPath(TileId from, SnocPort entry,
                                    TileId to, SnocPort exit);

    /**
     * Convenience: route a complete fusion (forward + return) between
     * the tile hosting the local patch and the tile hosting the
     * remote patch, enforcing the round-trip hop limit and the
     * 200 MHz critical-path budget for the given patch kinds.
     *
     * @return {forward, back} paths, or std::nullopt. On failure the
     *         configuration is left unchanged (atomic).
     */
    std::optional<std::pair<SnocPath, SnocPath>>
    addFusion(TileId local, PatchKind localKind, TileId remote,
              PatchKind remoteKind);

    const SwitchConfig &switchAt(TileId t) const
    {
        return switches_[static_cast<std::size_t>(t)];
    }

    const std::vector<SnocPath> &paths() const { return paths_; }

    /**
     * The registered path from `from`'s `entry` to `to`'s `exit`, or
     * null. Used by the observability layer to attribute fused-CUST
     * sNoC hops at simulation time.
     */
    const SnocPath *findPath(TileId from, SnocPort entry, TileId to,
                             SnocPort exit) const;

    /**
     * Round-trip hop count of the fusion routed between `local` and
     * `remote` (forward Patch→Patch plus return Patch→Reg), or 0 when
     * no such fusion is registered.
     */
    int fusionHops(TileId local, TileId remote) const;

    /** All 16 packed configuration-register values. */
    std::array<std::uint32_t, numTiles> packRegisters() const;

    /**
     * Mark the undirected mesh link out of `t` in direction `d` as
     * failed: addPath will route around it and validate() rejects any
     * registered path crossing it. Both directions of the physical
     * link go down. Used by the fault model's ArchHealth to make the
     * stitcher re-stitch around broken wires.
     */
    void disableLink(TileId t, SnocPort d);

    /** True unless the link out of `t` toward `d` was disabled. */
    bool linkUp(TileId t, SnocPort d) const;

    /** Any disableLink() calls recorded on this configuration? */
    bool
    hasDisabledLinks() const
    {
        for (const auto &row : linkDown_)
            for (bool down : row)
                if (down)
                    return true;
        return false;
    }

    /**
     * Check the global invariant (single driver per output, path
     * consistency, no path over a disabled link). Always true for
     * configurations built through addPath; exposed for property
     * tests.
     */
    bool validate(std::string *why = nullptr) const;

    void clear();

  private:
    std::array<SwitchConfig, numTiles> switches_{};
    std::vector<SnocPath> paths_;

    /** Failed mesh out-links, indexed [tile][direction N/E/S/W]. */
    std::array<std::array<bool, 4>, numTiles> linkDown_{};
};

} // namespace stitch::core

#endif // STITCH_CORE_SNOC_HH

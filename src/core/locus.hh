/**
 * @file
 * The LOCUS baseline accelerator (paper Section VI-B).
 *
 * LOCUS [51] deploys an identical configurable special functional
 * unit (SFU, the JiTC fabric [11]) on every core. It executes
 * operation-chain ISEs in a single cycle but — unlike Stitch's
 * patches — cannot include load/store operations and cannot fuse
 * across tiles. Its richer fabric is what costs 1.29 mm^2 vs Stitch's
 * 0.17 mm^2 (paper Table III).
 */

#ifndef STITCH_CORE_LOCUS_HH
#define STITCH_CORE_LOCUS_HH

#include <vector>

#include "common/logging.hh"
#include "core/micro.hh"
#include "cpu/core.hh"

namespace stitch::core
{

/** Capability limits of the LOCUS SFU (operation-chain ISEs of the
 *  same depth as a patch, but without mux restrictions, without
 *  load/store, and without fusion). */
struct LocusParams
{
    int maxOps = 4;      ///< operation capacity of the fabric
    int maxInputs = 4;   ///< register read ports
    int maxOutputs = 2;  ///< register write ports
};

/**
 * CustomHandler that executes LOCUS ISEs. The CUST blob is an index
 * into the SFU's configuration memory (installed at program load).
 */
class LocusSfu : public cpu::CustomHandler
{
  public:
    explicit LocusSfu(LocusParams params = LocusParams{})
        : params_(params)
    {}

    /** Replace the configuration memory with a program's ISE table. */
    void
    installTable(std::vector<MicroDfg> table)
    {
        table_.clear();
        for (auto &dfg : table)
            addConfig(std::move(dfg));
    }

    /** Install one ISE; returns its configuration index (the blob). */
    std::uint64_t
    addConfig(MicroDfg dfg)
    {
        STITCH_ASSERT(!dfg.usesMemory(),
                      "LOCUS ISEs cannot contain load/store");
        STITCH_ASSERT(dfg.size() <= params_.maxOps,
                      "ISE exceeds LOCUS SFU capacity");
        table_.push_back(std::move(dfg));
        return table_.size() - 1;
    }

    CustResult
    executeCustom(TileId, std::uint64_t blob,
                  const std::array<Word, 4> &in) override
    {
        STITCH_ASSERT(blob < table_.size(),
                      "LOCUS config index out of range");
        return table_[static_cast<std::size_t>(blob)].evaluate(in,
                                                               nullptr);
    }

    const LocusParams &params() const { return params_; }

  private:
    LocusParams params_;
    std::vector<MicroDfg> table_;
};

} // namespace stitch::core

#endif // STITCH_CORE_LOCUS_HH

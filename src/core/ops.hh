/**
 * @file
 * Operator vocabulary of the polymorphic patches.
 *
 * The paper classifies operations inside hot computational patterns
 * into four groups (Section III-A): arithmetic/logical (A), shift (S),
 * multiplication (M) and local scratchpad access (T). These enums are
 * shared by the patch datapath model and the compiler's DFGs.
 */

#ifndef STITCH_CORE_OPS_HH
#define STITCH_CORE_OPS_HH

#include <cstdint>

#include "common/types.hh"

namespace stitch::core
{

/** The four operation classes of Section III-A. */
enum class OpClass : std::uint8_t
{
    A, ///< arithmetic / logical
    M, ///< multiplication
    S, ///< shift
    T, ///< local (scratchpad) memory access
};

/** Character code used in operation-chain strings ("AT", "MA", ...). */
char opClassCode(OpClass c);

/** Operations selectable on a patch ALU (3-bit control field). */
enum class AluOp : std::uint8_t
{
    Add = 0,
    Sub,
    And,
    Or,
    Xor,
    Slt,  ///< signed set-less-than (0/1)
    Sltu, ///< unsigned set-less-than (0/1)
    Pass, ///< identity of the left operand
};

/** Operations selectable on a patch shifter (2-bit control field). */
enum class ShiftOp : std::uint8_t
{
    Sll = 0,
    Srl,
    Sra,
    Pass, ///< identity of the left operand
};

/** LMAU mode (2-bit control field). */
enum class TMode : std::uint8_t
{
    Off = 0,  ///< LMAU bypassed; stage-1 result is the ALU output
    Load,     ///< stage-1 result = SPM[alu result]
    Store,    ///< SPM[alu result] = third input; result = alu output
};

/** Evaluate an ALU operation. */
Word aluEval(AluOp op, Word lhs, Word rhs);

/** Evaluate a shift operation (shift amount is rhs & 31). */
Word shiftEval(ShiftOp op, Word lhs, Word rhs);

/** Printable names. */
const char *aluOpName(AluOp op);
const char *shiftOpName(ShiftOp op);

} // namespace stitch::core

#endif // STITCH_CORE_OPS_HH

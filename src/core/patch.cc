#include "core/patch.hh"

#include "common/logging.hh"

namespace stitch::core
{

Word
NullSpmPort::load(Addr a)
{
    fatal("LMAU load at ", a, " on a datapath without SPM access");
}

void
NullSpmPort::store(Addr a, Word)
{
    fatal("LMAU store at ", a, " on a datapath without SPM access");
}

namespace
{

/** Resolve a stage-2 unit-1 left operand. */
Word
selU1Lhs(U1Lhs sel, const std::array<Word, 4> &in, Word s1)
{
    switch (sel) {
      case U1Lhs::In1: return in[1];
      case U1Lhs::In2: return in[2];
      case U1Lhs::In3: return in[3];
      case U1Lhs::S1Out: return s1;
    }
    STITCH_PANIC("bad U1Lhs");
}

Word
selU1Rhs(U1Rhs sel, const std::array<Word, 4> &in, Word s1)
{
    switch (sel) {
      case U1Rhs::In2: return in[2];
      case U1Rhs::In3: return in[3];
      case U1Rhs::S1Out: return s1;
      case U1Rhs::In1: return in[1];
    }
    STITCH_PANIC("bad U1Rhs");
}

Word
selU2Rhs(U2Rhs sel, const std::array<Word, 4> &in, Word s1)
{
    switch (sel) {
      case U2Rhs::In3: return in[3];
      case U2Rhs::S1Out: return s1;
      case U2Rhs::In2: return in[2];
      case U2Rhs::In1: return in[1];
    }
    STITCH_PANIC("bad U2Rhs");
}

} // namespace

PatchResult
patchExecute(PatchKind kind, const PatchCtl &ctl,
             const std::array<Word, 4> &in, SpmPort &spm)
{
    PatchResult res;

    // Stage 1: ALU on (in0, in1), then the LMAU. The LMAU's address
    // is the ALU result; store data is hard-wired to in2.
    Word a1 = aluEval(ctl.a1op, in[0], in[1]);
    switch (ctl.tMode) {
      case TMode::Off:
        res.s1 = a1;
        break;
      case TMode::Load:
        res.s1 = spm.load(a1);
        res.didLoad = true;
        break;
      case TMode::Store:
        spm.store(a1, in[2]);
        res.s1 = a1;
        res.didStore = true;
        break;
    }

    // Stage 2: two units in series; unit 2's left operand can bypass
    // unit 1 and take the stage-1 result directly (the {AA} chain of
    // Section III-A).
    Word u1lhs = selU1Lhs(ctl.u1Lhs, in, res.s1);
    Word u1rhs = selU1Rhs(ctl.u1Rhs, in, res.s1);
    Word u1out = 0;
    switch (kind) {
      case PatchKind::ATMA:
        u1out = u1lhs * u1rhs;
        break;
      case PatchKind::ATAS:
        u1out = aluEval(ctl.aop2, u1lhs, u1rhs);
        break;
      case PatchKind::ATSA:
        u1out = shiftEval(ctl.sop, u1lhs, u1rhs);
        break;
    }

    Word u2lhs = ctl.u2Lhs == U2Lhs::U1Out ? u1out : res.s1;
    Word u2rhs = selU2Rhs(ctl.u2Rhs, in, res.s1);
    switch (kind) {
      case PatchKind::ATMA:
      case PatchKind::ATSA:
        res.s2 = aluEval(ctl.aop2, u2lhs, u2rhs);
        break;
      case PatchKind::ATAS:
        res.s2 = shiftEval(ctl.sop, u2lhs, u2rhs);
        break;
    }
    return res;
}

CustResult
executeCustom(const FusedConfig &cfg, const std::array<Word, 4> &in,
              SpmPort &localSpm, SpmPort *remoteSpm)
{
    CustResult out;
    PatchResult local = patchExecute(cfg.localKind, cfg.local, in,
                                     localSpm);
    out.spmLoads += local.didLoad ? 1 : 0;
    out.spmStores += local.didStore ? 1 : 0;

    if (!cfg.usesRemote) {
        switch (cfg.local.outCfg) {
          case OutCfg::None:
            break;
          case OutCfg::S1:
            out.rd0 = local.s1;
            out.writeRd0 = true;
            break;
          case OutCfg::S2:
            out.rd0 = local.s2;
            out.writeRd0 = true;
            break;
          case OutCfg::Both:
            out.rd0 = local.s2;
            out.rd1 = local.s1;
            out.writeRd0 = true;
            out.writeRd1 = true;
            break;
        }
        return out;
    }

    STITCH_ASSERT(remoteSpm,
                  "fused execution requires the remote tile's SPM port");
    out.usedRemote = true;
    Word forward = local.primary(cfg.local.outCfg);
    std::array<Word, 4> remoteIn = {forward, in[1], in[2], in[3]};
    PatchResult remote = patchExecute(cfg.remoteKind, cfg.remote,
                                      remoteIn, *remoteSpm);
    out.spmLoads += remote.didLoad ? 1 : 0;
    out.spmStores += remote.didStore ? 1 : 0;

    switch (cfg.remote.outCfg) {
      case OutCfg::None:
        break;
      case OutCfg::S1:
        out.rd0 = remote.s1;
        out.writeRd0 = true;
        break;
      case OutCfg::S2:
      case OutCfg::Both:
        out.rd0 = remote.s2;
        out.writeRd0 = true;
        break;
    }
    if (cfg.writeLocalToRd1) {
        out.rd1 = forward;
        out.writeRd1 = true;
    } else if (cfg.remote.outCfg == OutCfg::Both) {
        out.rd1 = remote.s1;
        out.writeRd1 = true;
    }
    return out;
}

} // namespace stitch::core

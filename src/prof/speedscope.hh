/**
 * @file
 * Speedscope export of a Profile (https://www.speedscope.app — the
 * same format Firefox Profiler imports). Each loaded tile becomes one
 * "sampled" profile whose frames are the six attribution buckets and
 * whose sample weights are cycles, so the left-heavy and sandwich
 * views read directly as "where did this tile's time go".
 *
 * When the interval Sampler recorded a timeline (--profile=N), the
 * export carries one weighted sample per (window, bucket) pair and
 * the time axis is real simulated time; otherwise it degrades to one
 * aggregate sample per bucket, which still renders correctly (the
 * format is weight-based, not wall-clock-based).
 */

#ifndef STITCH_PROF_SPEEDSCOPE_HH
#define STITCH_PROF_SPEEDSCOPE_HH

#include <string>

#include "obs/json.hh"
#include "prof/profile.hh"

namespace stitch::prof
{

/** Build the speedscope document for `p` titled `name`. */
obs::Json speedscopeDocument(const Profile &p,
                             const std::string &name = "stitch run");

/** Pretty-print speedscopeDocument() to `path`; fatal on I/O. */
void writeSpeedscope(const std::string &path, const Profile &p,
                     const std::string &name = "stitch run");

} // namespace stitch::prof

#endif // STITCH_PROF_SPEEDSCOPE_HH

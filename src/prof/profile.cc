#include "prof/profile.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/sampler.hh"

namespace stitch::prof
{

double
tileEnergyPj(const power::EnergyModel &m, const sim::TileStats &ts,
             Cycles makespan)
{
    if (!ts.loaded)
        return 0.0; // unloaded tiles are clock-gated
    auto b = sim::cycleBuckets(ts);
    auto at = [&](sim::CycleBucket k) {
        return static_cast<double>(b[static_cast<std::size_t>(k)]);
    };
    double pj = m.tileIdlePj * static_cast<double>(makespan);
    pj += m.issueExtraPj * (at(sim::CycleBucket::Issue) +
                            at(sim::CycleBucket::CustExecute));
    pj += m.stallExtraPj * (at(sim::CycleBucket::CacheMiss) +
                            at(sim::CycleBucket::Spm));
    pj += m.blockedExtraPj * (at(sim::CycleBucket::SendBlocked) +
                              at(sim::CycleBucket::RecvBlocked));
    pj += m.custPj * static_cast<double>(ts.customInstructions);
    pj += m.fusedExtraPj *
          static_cast<double>(ts.fusedCustomInstructions);
    pj += m.snocHopPj * static_cast<double>(ts.snocHops);
    pj += m.nocPacketPj * static_cast<double>(ts.msgsSent);
    return pj;
}

double
runEnergyPj(const power::EnergyModel &m, const sim::RunStats &stats)
{
    double pj = 0.0;
    for (TileId t = 0; t < numTiles; ++t)
        pj += tileEnergyPj(
            m, stats.perTile[static_cast<std::size_t>(t)],
            stats.makespan);
    return pj;
}

Profile
buildProfile(
    const sim::RunStats &stats,
    const std::vector<std::pair<std::string, TileId>> &stageBindings,
    std::uint64_t itemsPerStage, const power::EnergyModel &model)
{
    Profile p;
    p.makespan = stats.makespan;
    p.model = model;

    for (TileId t = 0; t < numTiles; ++t) {
        const sim::TileStats &ts =
            stats.perTile[static_cast<std::size_t>(t)];
        if (!ts.loaded)
            continue;
        TileProfile tp;
        tp.tile = t;
        tp.cycles = ts.cycles;
        tp.buckets = sim::cycleBuckets(ts);
        Cycles sum = 0;
        for (Cycles c : tp.buckets)
            sum += c;
        // The whole layer rests on this: the buckets are a partition
        // of local time, not an approximation of it.
        STITCH_ASSERT(sum == ts.cycles,
                      "cycle buckets do not sum to tile time");
        tp.idleCycles = stats.makespan - ts.cycles;
        tp.energyPj = tileEnergyPj(model, ts, stats.makespan);
        tp.avgPowerMw = power::averagePowerMw(
            tp.energyPj, static_cast<double>(stats.makespan));
        for (const auto &[name, tile] : stageBindings)
            if (tile == t)
                tp.stage = tp.stage.empty() ? name
                                            : tp.stage + "+" + name;
        p.tiles.push_back(std::move(tp));
    }

    for (const auto &[name, tile] : stageBindings) {
        const sim::TileStats &ts =
            stats.perTile[static_cast<std::size_t>(tile)];
        StageProfile sp;
        sp.name = name;
        sp.tile = tile;
        sp.cycles = ts.cycles;
        sp.buckets = sim::cycleBuckets(ts);
        if (itemsPerStage > 0 && ts.cycles > 0)
            sp.throughputItemsPer1kCycles =
                static_cast<double>(itemsPerStage) * 1000.0 /
                static_cast<double>(ts.cycles);
        sp.energyPj = tileEnergyPj(model, ts, stats.makespan);
        p.stages.push_back(std::move(sp));
    }
    if (!p.stages.empty()) {
        auto it = std::max_element(
            p.stages.begin(), p.stages.end(),
            [](const StageProfile &a, const StageProfile &b) {
                return a.cycles < b.cycles;
            });
        p.limitingStage =
            static_cast<int>(it - p.stages.begin());
        it->limiting = true;
        for (auto &sp : p.stages)
            sp.slackCycles = it->cycles - sp.cycles;
    }

    if (stats.makespan > 0)
        p.snocOccupancy = static_cast<double>(stats.snocHops) /
                          static_cast<double>(stats.makespan);
    p.totalEnergyPj = runEnergyPj(model, stats);
    p.avgPowerMw = power::averagePowerMw(
        p.totalEnergyPj, static_cast<double>(stats.makespan));
    return p;
}

namespace
{

obs::Json
bucketsJson(const std::array<Cycles, sim::numCycleBuckets> &b)
{
    obs::Json j = obs::Json::object();
    for (int i = 0; i < sim::numCycleBuckets; ++i)
        j.set(sim::cycleBucketName(static_cast<sim::CycleBucket>(i)),
              b[static_cast<std::size_t>(i)]);
    return j;
}

} // namespace

obs::Json
profileJson(const Profile &p)
{
    obs::Json doc = obs::Json::object();
    doc.set("makespan_cycles", p.makespan);
    doc.set("total_energy_pj", p.totalEnergyPj);
    doc.set("avg_power_mw", p.avgPowerMw);
    doc.set("snoc_occupancy", p.snocOccupancy);

    obs::Json tiles = obs::Json::array();
    for (const TileProfile &tp : p.tiles) {
        obs::Json tj = obs::Json::object();
        tj.set("tile", static_cast<std::uint64_t>(tp.tile));
        if (!tp.stage.empty())
            tj.set("stage", tp.stage);
        tj.set("cycles", tp.cycles);
        tj.set("idle_cycles", tp.idleCycles);
        tj.set("buckets", bucketsJson(tp.buckets));
        tj.set("energy_pj", tp.energyPj);
        tj.set("avg_power_mw", tp.avgPowerMw);
        tiles.push(tj);
    }
    doc.set("tiles", tiles);

    if (!p.stages.empty()) {
        obs::Json stages = obs::Json::array();
        for (const StageProfile &sp : p.stages) {
            obs::Json sj = obs::Json::object();
            sj.set("stage", sp.name);
            sj.set("tile", static_cast<std::uint64_t>(sp.tile));
            sj.set("cycles", sp.cycles);
            sj.set("slack_cycles", sp.slackCycles);
            sj.set("limiting", sp.limiting);
            if (sp.throughputItemsPer1kCycles > 0)
                sj.set("items_per_1k_cycles",
                       sp.throughputItemsPer1kCycles);
            sj.set("buckets", bucketsJson(sp.buckets));
            sj.set("energy_pj", sp.energyPj);
            stages.push(sj);
        }
        doc.set("stages", stages);
        doc.set("limiting_stage",
                p.stages[static_cast<std::size_t>(p.limitingStage)]
                    .name);
    }
    return doc;
}

obs::Json
samplerTimelineJson()
{
    const auto &sampler = obs::Sampler::instance();
    if (!sampler.hasData())
        return obs::Json();
    obs::Json doc = obs::Json::object();
    doc.set("interval_cycles", sampler.interval());
    obs::Json series = obs::Json::array();
    for (const std::string &name : sampler.seriesNames())
        series.push(name);
    doc.set("series", series);
    obs::Json tracks = obs::Json::object();
    for (const auto &[track, windows] : sampler.tracks()) {
        obs::Json wj = obs::Json::array();
        std::size_t nSeries = sampler.seriesNames().size();
        for (const auto &w : windows) {
            obs::Json row = obs::Json::array();
            for (std::size_t s = 0; s < nSeries; ++s)
                row.push(w.cycles[s]);
            wj.push(row);
        }
        tracks.set("tile" + std::to_string(track), wj);
    }
    doc.set("tracks", tracks);
    return doc;
}

} // namespace stitch::prof

/**
 * @file
 * Attribution layer over the observability counters: roll the raw
 * per-tile cycle counters of one System::run() up into exact cycle
 * buckets, attribute tiles to pipeline stages (kernels) through the
 * stitch plan's stage->tile bindings, price everything with the
 * power-layer energy model, and diagnose the pipeline bottleneck.
 *
 * Exactness is the contract: for every loaded tile the six
 * sim::CycleBucket values sum bit-for-bit to the tile's local cycles
 * (the cpu/core.hh accounting identity), and buildProfile() asserts
 * it. Everything else — stage throughput, slack, energy, average
 * power — is derived arithmetic on those exact buckets.
 *
 * The layer sits above sim and power and below the harnesses; the
 * simulator itself never depends on it, which is why harnesses attach
 * profileJson() to the run report (v3 "profile" section) themselves.
 */

#ifndef STITCH_PROF_PROFILE_HH
#define STITCH_PROF_PROFILE_HH

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hh"
#include "power/power_model.hh"
#include "sim/system.hh"

namespace stitch::prof
{

/** Suggested --profile=N window: fine enough to see pipeline phases,
 *  coarse enough that per-window attribution skew is negligible. */
inline constexpr Cycles defaultProfileInterval = 1000;

/** One tile's attributed activity. */
struct TileProfile
{
    TileId tile = -1;
    std::string stage; ///< bound stage name; empty if unbound
    Cycles cycles = 0; ///< local time at halt
    std::array<Cycles, sim::numCycleBuckets> buckets{};
    Cycles idleCycles = 0; ///< makespan - cycles (halted early)
    double energyPj = 0.0;
    double avgPowerMw = 0.0; ///< energy over the whole makespan
};

/** One pipeline stage (kernel) of the application. */
struct StageProfile
{
    std::string name; ///< "kernel#k"
    TileId tile = -1;
    Cycles cycles = 0;
    std::array<Cycles, sim::numCycleBuckets> buckets{};
    Cycles slackCycles = 0; ///< headroom vs the limiting stage
    double throughputItemsPer1kCycles = 0.0; ///< 0 if items unknown
    double energyPj = 0.0;
    bool limiting = false; ///< the stage that sets the makespan
};

/** The full attribution of one run. */
struct Profile
{
    Cycles makespan = 0;
    std::vector<TileProfile> tiles;   ///< loaded tiles only
    std::vector<StageProfile> stages; ///< bound stages, stage order
    int limitingStage = -1; ///< index into stages; -1 if no stages
    double snocOccupancy = 0.0; ///< fused-chain hops per makespan cycle
    double totalEnergyPj = 0.0;
    double avgPowerMw = 0.0;
    power::EnergyModel model{};
};

/**
 * Build the attribution for `stats`. `stageBindings` maps stage names
 * to tiles (AppRunResult::stageBindings; empty for raw runs) and
 * `itemsPerStage` is the pipeline sample count each stage processed
 * (0 leaves stage throughput unset). Asserts the bucket exactness
 * invariant for every loaded tile.
 */
Profile buildProfile(
    const sim::RunStats &stats,
    const std::vector<std::pair<std::string, TileId>> &stageBindings =
        {},
    std::uint64_t itemsPerStage = 0,
    const power::EnergyModel &model = power::EnergyModel::standard());

/** Activity-scaled energy of one tile over `makespan` cycles. */
double tileEnergyPj(const power::EnergyModel &model,
                    const sim::TileStats &ts, Cycles makespan);

/**
 * Whole-run energy computed from the RunStats counters alone — the
 * independent cross-check the per-tile/per-kernel rollup must agree
 * with (tests hold them to <1%).
 */
double runEnergyPj(const power::EnergyModel &model,
                   const sim::RunStats &stats);

/** The report-v3 "profile" section. */
obs::Json profileJson(const Profile &p);

/**
 * The obs::Sampler's interval timeline as JSON (windows per tile per
 * bucket); Null if no sampling ran. Attach next to the profile.
 */
obs::Json samplerTimelineJson();

} // namespace stitch::prof

#endif // STITCH_PROF_PROFILE_HH

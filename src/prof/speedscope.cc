#include "prof/speedscope.hh"

#include "obs/sampler.hh"

namespace stitch::prof
{

namespace
{

/** One sampled-profile entry; samples are single-frame stacks. */
struct SampleSink
{
    obs::Json samples = obs::Json::array();
    obs::Json weights = obs::Json::array();
    std::uint64_t total = 0;

    void
    add(int frame, std::uint64_t weight)
    {
        if (weight == 0)
            return;
        obs::Json stack = obs::Json::array();
        stack.push(static_cast<std::uint64_t>(frame));
        samples.push(stack);
        weights.push(weight);
        total += weight;
    }
};

obs::Json
profileEntry(const std::string &name, SampleSink &&sink)
{
    obs::Json pj = obs::Json::object();
    pj.set("type", "sampled");
    pj.set("name", name);
    pj.set("unit", "none"); // weights are simulated cycles
    pj.set("startValue", std::uint64_t{0});
    pj.set("endValue", sink.total);
    pj.set("samples", sink.samples);
    pj.set("weights", sink.weights);
    return pj;
}

} // namespace

obs::Json
speedscopeDocument(const Profile &p, const std::string &name)
{
    obs::Json doc = obs::Json::object();
    doc.set("$schema",
            "https://www.speedscope.app/file-format-schema.json");
    doc.set("name", name);
    doc.set("exporter", "stitch-sim");
    doc.set("activeProfileIndex", std::uint64_t{0});

    obs::Json frames = obs::Json::array();
    for (int b = 0; b < sim::numCycleBuckets; ++b) {
        obs::Json fj = obs::Json::object();
        fj.set("name", sim::cycleBucketName(
                           static_cast<sim::CycleBucket>(b)));
        frames.push(fj);
    }
    obs::Json shared = obs::Json::object();
    shared.set("frames", frames);
    doc.set("shared", shared);

    const auto &sampler = obs::Sampler::instance();
    bool timeline = sampler.hasData();

    obs::Json profiles = obs::Json::array();
    for (const TileProfile &tp : p.tiles) {
        std::string title = "tile" + std::to_string(tp.tile);
        if (!tp.stage.empty())
            title += " " + tp.stage;
        SampleSink sink;
        auto windows = timeline ? sampler.tracks().find(tp.tile)
                                : sampler.tracks().end();
        if (timeline && windows != sampler.tracks().end()) {
            for (const auto &w : windows->second)
                for (int b = 0; b < sim::numCycleBuckets; ++b)
                    sink.add(b,
                             w.cycles[static_cast<std::size_t>(b)]);
        } else {
            for (int b = 0; b < sim::numCycleBuckets; ++b)
                sink.add(b,
                         tp.buckets[static_cast<std::size_t>(b)]);
        }
        profiles.push(profileEntry(title, std::move(sink)));
    }
    doc.set("profiles", profiles);
    return doc;
}

void
writeSpeedscope(const std::string &path, const Profile &p,
                const std::string &name)
{
    obs::writeJsonFile(path, speedscopeDocument(p, name));
}

} // namespace stitch::prof

/**
 * @file
 * The fault model: deterministic, seed-driven fault scenarios for the
 * Stitch system, the compile-time health mask the stitcher degrades
 * around, and the typed error hierarchy that replaces abort-style
 * fatal() in the run loop.
 *
 * Stitch targets always-on wearables: a dead patch, a failed sNoC
 * link, or a flaky inter-core NoC must degrade the pipeline, not
 * brick the device. Faults enter the system in two layers:
 *
 *  - compile time: an ArchHealth mask (available patches + sNoC mesh
 *    links) derived from a FaultPlan makes stitchApplication route
 *    and allocate around the broken resources, falling back from
 *    fused to single-patch to software-only placements;
 *  - run time: a FaultInjector owned by the System consults the plan
 *    in executeCustom (hard patch death, transient output bit flips)
 *    and send (message drop / extra delay). A dead patch raises a
 *    structured PatchFault instead of silently corrupting.
 *
 * Every stochastic decision is drawn from a counter-based splitmix64
 * stream keyed on (seed, stream id), so a scenario is a pure function
 * of its FaultPlan: same plan, same run, same RunStats.
 */

#ifndef STITCH_FAULT_FAULT_HH
#define STITCH_FAULT_FAULT_HH

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"
#include "core/patch_config.hh"
#include "core/snoc.hh"

namespace stitch::fault
{

/** How one System::run() ended. */
enum class Termination
{
    Completed,        ///< every loaded core reached HALT
    Deadlock,         ///< every active core blocked in RECV
    InstructionLimit, ///< the step budget ran out (partial stats)
    Fault,            ///< an injected hardware fault surfaced
};

/** Printable name ("completed", "deadlock", ...). */
const char *terminationName(Termination t);

// ---------------------------------------------------------------------
// Typed errors. All derive from FatalError so existing harnesses and
// tests that catch the base type keep working; new code can catch the
// precise class.
// ---------------------------------------------------------------------

/** Base of every typed simulator error. */
class SimError : public FatalError
{
  public:
    explicit SimError(const std::string &what) : FatalError(what) {}
};

/** Invalid SystemParams / SnocConfig / FaultPlan (caught eagerly). */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &what) : SimError(what) {}
};

/** A binary that cannot run on this system (wrong patch kind, LOCUS
 *  table on a Stitch system, fused CUST without a partner, ...). */
class BinaryMismatchError : public SimError
{
  public:
    explicit BinaryMismatchError(const std::string &what)
        : SimError(what)
    {}
};

/**
 * A run abandoned because its wall-clock deadline expired (the
 * service tier's per-job `deadline_ms`, distinct from the
 * deterministic `max_instructions` budget). Raised cooperatively:
 * the run loop polls an abort flag set by the engine watchdog and
 * throws this instead of finishing the simulation; the engine maps
 * it to the typed per-job outcome "deadline".
 */
class DeadlineExceededError : public SimError
{
  public:
    explicit DeadlineExceededError(const std::string &what)
        : SimError(what)
    {}
};

/**
 * The simulated software itself crashed: a taken branch left the code
 * image, or the PC landed past the end / inside a two-word CUST. The
 * run loops always convert this into Termination::Fault — with or
 * without an armed injector — so a wild branch is a reported run
 * outcome with partial stats, never a simulator abort. Identical
 * messages are raised by the step, slice and compiled regimes (the
 * crashing tile's state at the throw is deterministic in all three).
 */
class ExecutionFaultError : public SimError
{
  public:
    explicit ExecutionFaultError(const std::string &what)
        : SimError(what)
    {}
};

/** Structured description of a patch that failed at run time. */
struct PatchFault
{
    TileId tile = -1;   ///< tile whose CUST hit the dead patch
    TileId patch = -1;  ///< the dead patch (== tile, or the partner)
    core::PatchKind kind = core::PatchKind::ATMA;
    std::string reason;
};

/** Raised by executeCustom when a CUST lands on a dead patch; the run
 *  loop converts it into Termination::Fault with diagnostics. */
class PatchFaultError : public SimError
{
  public:
    explicit PatchFaultError(PatchFault fault);
    const PatchFault &fault() const { return fault_; }

  private:
    PatchFault fault_;
};

// ---------------------------------------------------------------------
// Fault scenarios.
// ---------------------------------------------------------------------

/** One undirected sNoC mesh link, named by a tile and a direction. */
struct SnocLink
{
    TileId tile = -1;
    core::SnocPort dir = core::SnocPort::East;

    /** "t5-t6" style label. */
    std::string name() const;

    bool operator==(const SnocLink &) const = default;
};

/** Every physical link of the 4x4 sNoC mesh (24 undirected links). */
std::vector<SnocLink> allSnocLinks();

/**
 * A deterministic fault scenario. Default-constructed plans inject
 * nothing; named constructors build the campaign's standard
 * scenarios.
 */
struct FaultPlan
{
    /** Seeds the per-decision splitmix64 streams. */
    std::uint64_t seed = 0;

    /** Hard patch failure per tile (the core keeps running). */
    std::array<bool, numTiles> patchDead{};

    /** Failed sNoC mesh links / crossbar segments (undirected). */
    std::vector<SnocLink> snocLinksDown;

    /** Inter-core NoC message faults, applied per SEND. */
    double msgDropProb = 0.0;  ///< message silently lost in transit
    double msgDelayProb = 0.0; ///< message delivered late ...
    Cycles msgDelayCycles = 0; ///< ... by this many extra cycles

    /** Transient single-bit flip in a patch CUST output word. */
    double custFlipProb = 0.0;

    /** True if any mechanism is armed. */
    bool anyFault() const;

    /** True if any patch or sNoC link is marked dead. */
    bool anyHardFault() const;

    /** Human-readable scenario summary ("patch3 dead", ...). */
    std::string describe() const;

    /** Typed validation (probabilities, tile ranges). */
    void validate() const;

    static FaultPlan none() { return FaultPlan{}; }
    static FaultPlan patchFailure(TileId t);
    static FaultPlan linkFailure(const SnocLink &link);
    static FaultPlan messageDrop(double prob, std::uint64_t seed);
    static FaultPlan messageDelay(double prob, Cycles extra,
                                  std::uint64_t seed);
    static FaultPlan bitFlips(double prob, std::uint64_t seed);
};

// ---------------------------------------------------------------------
// Compile-time health mask.
// ---------------------------------------------------------------------

/**
 * What the stitcher may assume about the hardware: which patches can
 * execute CUSTs and which sNoC mesh links can carry operands. The
 * cores and the inter-core NoC are assumed alive (a dead core is a
 * dead pipeline stage — nothing to re-stitch around).
 */
struct ArchHealth
{
    std::array<bool, numTiles> patchOk;
    std::vector<SnocLink> linksDown;

    /** All patches and links available (the seed behaviour). */
    static ArchHealth healthy();

    /** The compile-time projection of a fault scenario. */
    static ArchHealth fromPlan(const FaultPlan &plan);

    bool allHealthy() const;

    /** Mark the plan's dead links as unroutable in `snoc`. */
    void applyTo(core::SnocConfig &snoc) const;
};

// ---------------------------------------------------------------------
// Run-time injector.
// ---------------------------------------------------------------------

/**
 * Draws the plan's stochastic decisions from independent
 * counter-based streams, one per mechanism, so the order in which the
 * System interleaves sends and CUSTs cannot perturb another
 * mechanism's outcomes.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan = FaultPlan{});

    const FaultPlan &plan() const { return plan_; }
    bool active() const { return plan_.anyFault(); }

    bool patchDead(TileId t) const
    {
        return plan_.patchDead[static_cast<std::size_t>(t)];
    }

    /** Should the next message be dropped? (advances the stream) */
    bool dropMessage();

    /** Extra latency of the next message (0 = on time). */
    Cycles messageDelay();

    /** Bit to flip in the next CUST output, or nullopt. */
    std::optional<int> custFlipBit();

  private:
    FaultPlan plan_;
    std::uint64_t dropCount_ = 0;
    std::uint64_t delayCount_ = 0;
    std::uint64_t flipCount_ = 0;
};

} // namespace stitch::fault

#endif // STITCH_FAULT_FAULT_HH

#include "fault/fault.hh"

#include <sstream>

namespace stitch::fault
{

const char *
terminationName(Termination t)
{
    switch (t) {
      case Termination::Completed: return "completed";
      case Termination::Deadlock: return "deadlock";
      case Termination::InstructionLimit: return "instruction-limit";
      case Termination::Fault: return "fault";
    }
    STITCH_PANIC("bad Termination");
}

PatchFaultError::PatchFaultError(PatchFault fault)
    : SimError(detail::formatMessage(
          "patch fault: CUST on tile ", fault.tile, " hit dead ",
          core::patchKindName(fault.kind), " patch ", fault.patch,
          " (", fault.reason, ")")),
      fault_(std::move(fault))
{}

std::string
SnocLink::name() const
{
    TileId n = core::neighbourOf(tile, dir);
    std::ostringstream os;
    os << "t" << tile << "-t" << n;
    return os.str();
}

std::vector<SnocLink>
allSnocLinks()
{
    // East and South out-links of every tile cover each undirected
    // mesh link exactly once.
    std::vector<SnocLink> links;
    for (TileId t = 0; t < numTiles; ++t) {
        for (core::SnocPort d :
             {core::SnocPort::East, core::SnocPort::South}) {
            if (core::neighbourOf(t, d) >= 0)
                links.push_back({t, d});
        }
    }
    return links;
}

bool
FaultPlan::anyFault() const
{
    return anyHardFault() || msgDropProb > 0.0 || msgDelayProb > 0.0 ||
           custFlipProb > 0.0;
}

bool
FaultPlan::anyHardFault() const
{
    for (bool dead : patchDead)
        if (dead)
            return true;
    return !snocLinksDown.empty();
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    const char *sep = "";
    for (TileId t = 0; t < numTiles; ++t) {
        if (patchDead[static_cast<std::size_t>(t)]) {
            os << sep << "patch" << t << " dead";
            sep = ", ";
        }
    }
    for (const auto &link : snocLinksDown) {
        os << sep << "link " << link.name() << " down";
        sep = ", ";
    }
    if (msgDropProb > 0.0) {
        os << sep << "msg drop p=" << msgDropProb;
        sep = ", ";
    }
    if (msgDelayProb > 0.0) {
        os << sep << "msg delay p=" << msgDelayProb << " +"
           << msgDelayCycles << "cy";
        sep = ", ";
    }
    if (custFlipProb > 0.0) {
        os << sep << "cust bit-flip p=" << custFlipProb;
        sep = ", ";
    }
    if (os.str().empty())
        return "healthy";
    return os.str();
}

void
FaultPlan::validate() const
{
    auto prob = [](double p, const char *what) {
        if (!(p >= 0.0 && p <= 1.0))
            throw ConfigError(detail::formatMessage(
                what, " probability ", p, " outside [0, 1]"));
    };
    prob(msgDropProb, "message-drop");
    prob(msgDelayProb, "message-delay");
    prob(custFlipProb, "cust bit-flip");
    for (const auto &link : snocLinksDown) {
        if (link.tile < 0 || link.tile >= numTiles)
            throw ConfigError(detail::formatMessage(
                "failed sNoC link names tile ", link.tile,
                " outside the mesh"));
        if (link.dir != core::SnocPort::North &&
            link.dir != core::SnocPort::East &&
            link.dir != core::SnocPort::South &&
            link.dir != core::SnocPort::West)
            throw ConfigError(
                "failed sNoC link direction is not a mesh port");
        if (core::neighbourOf(link.tile, link.dir) < 0)
            throw ConfigError(detail::formatMessage(
                "failed sNoC link ", "t", link.tile, "/",
                core::snocPortName(link.dir),
                " points off the mesh edge"));
    }
    if (msgDelayProb > 0.0 && msgDelayCycles == 0)
        throw ConfigError(
            "message-delay fault armed with a zero-cycle delay");
}

FaultPlan
FaultPlan::patchFailure(TileId t)
{
    STITCH_ASSERT(t >= 0 && t < numTiles);
    FaultPlan plan;
    plan.patchDead[static_cast<std::size_t>(t)] = true;
    return plan;
}

FaultPlan
FaultPlan::linkFailure(const SnocLink &link)
{
    FaultPlan plan;
    plan.snocLinksDown.push_back(link);
    return plan;
}

FaultPlan
FaultPlan::messageDrop(double prob, std::uint64_t seed)
{
    FaultPlan plan;
    plan.msgDropProb = prob;
    plan.seed = seed;
    return plan;
}

FaultPlan
FaultPlan::messageDelay(double prob, Cycles extra, std::uint64_t seed)
{
    FaultPlan plan;
    plan.msgDelayProb = prob;
    plan.msgDelayCycles = extra;
    plan.seed = seed;
    return plan;
}

FaultPlan
FaultPlan::bitFlips(double prob, std::uint64_t seed)
{
    FaultPlan plan;
    plan.custFlipProb = prob;
    plan.seed = seed;
    return plan;
}

ArchHealth
ArchHealth::healthy()
{
    ArchHealth h;
    h.patchOk.fill(true);
    return h;
}

ArchHealth
ArchHealth::fromPlan(const FaultPlan &plan)
{
    ArchHealth h = healthy();
    for (TileId t = 0; t < numTiles; ++t)
        if (plan.patchDead[static_cast<std::size_t>(t)])
            h.patchOk[static_cast<std::size_t>(t)] = false;
    h.linksDown = plan.snocLinksDown;
    return h;
}

bool
ArchHealth::allHealthy() const
{
    for (bool ok : patchOk)
        if (!ok)
            return false;
    return linksDown.empty();
}

void
ArchHealth::applyTo(core::SnocConfig &snoc) const
{
    for (const auto &link : linksDown)
        snoc.disableLink(link.tile, link.dir);
}

namespace
{

/** splitmix64: a counter-based generator; full 64-bit avalanche. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from stream `stream` at index `n`. */
double
uniform(std::uint64_t seed, std::uint64_t stream, std::uint64_t n)
{
    std::uint64_t bits = mix64(mix64(seed ^ (stream << 32)) + n);
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

constexpr std::uint64_t streamDrop = 1;
constexpr std::uint64_t streamDelay = 2;
constexpr std::uint64_t streamFlip = 3;
constexpr std::uint64_t streamFlipBit = 4;

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan) : plan_(plan)
{
    plan_.validate();
}

bool
FaultInjector::dropMessage()
{
    if (plan_.msgDropProb <= 0.0)
        return false;
    return uniform(plan_.seed, streamDrop, dropCount_++) <
           plan_.msgDropProb;
}

Cycles
FaultInjector::messageDelay()
{
    if (plan_.msgDelayProb <= 0.0)
        return 0;
    return uniform(plan_.seed, streamDelay, delayCount_++) <
                   plan_.msgDelayProb
               ? plan_.msgDelayCycles
               : 0;
}

std::optional<int>
FaultInjector::custFlipBit()
{
    if (plan_.custFlipProb <= 0.0)
        return std::nullopt;
    std::uint64_t n = flipCount_++;
    if (uniform(plan_.seed, streamFlip, n) >= plan_.custFlipProb)
        return std::nullopt;
    return static_cast<int>(
        mix64(mix64(plan_.seed ^ (streamFlipBit << 32)) + n) % 32);
}

} // namespace stitch::fault

/**
 * @file
 * End-to-end application execution: compile every stage kernel for
 * every target, stitch (for the Stitch modes), place, wire the
 * message channels, and simulate the 16-tile system.
 *
 * The runner caches compiled kernels by (name, shape) — APP1's six
 * FFT stages compile once — because compile-and-measure across 13
 * targets is the expensive step.
 */

#ifndef STITCH_APPS_APP_RUNNER_HH
#define STITCH_APPS_APP_RUNNER_HH

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "apps/apps.hh"
#include "compiler/stitcher.hh"
#include "kernels/catalog.hh"
#include "obs/json.hh"
#include "sim/system.hh"
#include "telem/span.hh"

namespace stitch::apps
{

/** The four architecture configurations of Figure 12. */
enum class AppMode
{
    Baseline,       ///< 16-core message passing, no accelerators
    Locus,          ///< identical per-core SFU (LOCUS [51])
    StitchNoFusion, ///< patches, each kernel limited to its own tile
    Stitch,         ///< patches + fusion over the sNoC
};

const char *appModeName(AppMode mode);

/** Result of one application run. */
struct AppRunResult
{
    AppMode mode = AppMode::Baseline;
    sim::RunStats stats; ///< from the longer of the two runs
    int samples = 0;     ///< sample-count difference of the two runs
    double marginalCycles = 0.0;

    /**
     * Steady-state cycles per pipeline sample: the marginal cost of
     * the extra samples between a short and a long run, which cancels
     * the pipeline fill/drain and cold-cache transients exactly.
     */
    double perSampleCycles() const { return marginalCycles; }

    bool hasPlan = false;
    compiler::StitchPlan plan; ///< valid for the Stitch modes

    /** Samples the long (measured) run processed; lets profilers turn
     *  stage cycles into items/cycle without re-deriving run config. */
    int samplesLong = 0;

    /**
     * Stage name ("kernel#k") -> tile of the measured run, in stage
     * order and for every mode (the plan only covers Stitch modes).
     * This is all src/prof/ needs to attribute tiles to kernels, so
     * apps stays free of a prof dependency.
     */
    std::vector<std::pair<std::string, TileId>> stageBindings;

    /**
     * The long run's stats-registry tree (zero counters omitted),
     * captured before the System is torn down so harnesses can embed
     * it in reports (sim/report.hh).
     */
    obs::Json statsDump;

    /**
     * The long run's translated-trace dump (System::dumpTraces),
     * captured iff RunConfig::dumpTraces is set. Empty unless the run
     * used the compiled scheduler (smoke_app --dump-traces).
     */
    std::string traceDump;
};

/**
 * Everything that varies between runs of the same runner: the
 * ablation knobs (arch, policy), the fault scenario (health, faults)
 * and the simulator scheduler. Sweep workers build one per task and
 * pass it to the three-argument run() so concurrent scenarios never
 * race on runner state.
 */
struct RunConfig
{
    core::StitchArch arch = core::StitchArch::standard();
    compiler::StitchPolicy policy = compiler::StitchPolicy::Auto;
    fault::ArchHealth health = fault::ArchHealth::healthy();
    fault::FaultPlan faults;
    sim::SchedulerKind scheduler = sim::SchedulerKind::Slice;

    /**
     * Capture the long run's translation-cache dump into
     * AppRunResult::traceDump (diagnostics; off the measurement path).
     */
    bool dumpTraces = false;

    /**
     * Per-run instruction budget; 0 keeps the runaway backstop. The
     * service layer maps a job "timeout" onto this: a run that
     * exhausts the budget ends with Termination::InstructionLimit in
     * its report instead of hanging a worker forever.
     */
    std::uint64_t maxInstructions = 0;

    /**
     * Steady-state measurement points; 0 keeps the runner's
     * constructor values. Job specs carry them so one shared engine
     * runner can serve jobs with different measurement windows.
     */
    int samplesShort = 0;
    int samplesLong = 0;

    /**
     * Request-scoped telemetry context (svc::JobEngine sets it when
     * telemetry is on). The runner records compile/stitch/simulate
     * spans through it — at *stage* granularity, never inside the
     * simulator hot loop. The default disabled context costs one
     * branch per stage; not part of the cache identity.
     */
    telem::TraceContext trace;

    /**
     * Cooperative deadline token (svc::JobEngine's watchdog sets it
     * when the job's wall-clock deadline expires). Forwarded to
     * SystemParams::abortFlag; a tripped flag surfaces as
     * fault::DeadlineExceededError. Not part of the cache identity.
     */
    const std::atomic<bool> *abortFlag = nullptr;
};

/** Compiles, stitches, places, and simulates applications. */
class AppRunner
{
  public:
    /** Steady state is measured between runs of `samplesShort` and
     *  `samplesLong` pipeline samples. */
    explicit AppRunner(int samplesShort = 4, int samplesLong = 12);

    /** Run `app` under `mode` with the setter-configured state. */
    AppRunResult run(const AppSpec &app, AppMode mode);

    /**
     * Run `app` under `mode` with an explicit per-call configuration.
     * Thread-safe: concurrent calls on one runner share the compiled
     * kernel cache (internally locked) and touch no other state.
     */
    AppRunResult run(const AppSpec &app, AppMode mode,
                     const RunConfig &config);

    /** Snapshot of the setter-configured state as a RunConfig. */
    RunConfig config() const;

    /** Compiled kernel for a stage shape (cached, thread-safe). */
    const compiler::CompiledKernel &
    compiledFor(const std::string &kernel,
                const kernels::PipelineShape &shape);

    /** Override the patch placement (ablation studies). */
    void setArch(const core::StitchArch &arch) { arch_ = arch; }

    /** Override the stitching policy (ablation studies). */
    void
    setPolicy(compiler::StitchPolicy policy)
    {
        policy_ = policy;
    }

    /**
     * Stitch around known-bad hardware: the stitcher skips dead
     * patches and routes fusions away from failed links. The default
     * all-healthy mask reproduces the unconstrained plan exactly.
     */
    void setHealth(const fault::ArchHealth &health) { health_ = health; }

    /** Inject run-time faults (forwarded to SystemParams::faults). */
    void setFaultPlan(const fault::FaultPlan &plan) { faults_ = plan; }

    /** Select the simulator scheduler (SystemParams::scheduler). */
    void
    setScheduler(sim::SchedulerKind kind)
    {
        scheduler_ = kind;
    }

  private:
    int samplesShort_;
    int samplesLong_;
    core::StitchArch arch_ = core::StitchArch::standard();
    compiler::StitchPolicy policy_ = compiler::StitchPolicy::Auto;
    fault::ArchHealth health_ = fault::ArchHealth::healthy();
    fault::FaultPlan faults_;
    sim::SchedulerKind scheduler_ = sim::SchedulerKind::Slice;
    std::mutex cacheMutex_; ///< guards cache_ across sweep workers
    std::map<std::string, std::unique_ptr<compiler::CompiledKernel>>
        cache_;
};

} // namespace stitch::apps

#endif // STITCH_APPS_APP_RUNNER_HH

#include "apps/apps.hh"

#include "common/logging.hh"

namespace stitch::apps
{

int
AppSpec::inDegree(int stage) const
{
    int n = 0;
    for (const auto &e : edges)
        if (e.to == stage)
            ++n;
    return n;
}

int
AppSpec::outDegree(int stage) const
{
    int n = 0;
    for (const auto &e : edges)
        if (e.from == stage)
            ++n;
    return n;
}

AppSpec
app1Gesture()
{
    AppSpec app;
    app.name = "APP1-gesture";
    // 0: fir, 1-6: fft, 7: update, 8: filter, 9-14: ifft, 15: svm.
    app.stageKernels = {"fir", "fft", "fft", "fft", "fft", "fft",
                        "fft", "update", "filter", "ifft", "ifft",
                        "ifft", "ifft", "ifft", "ifft", "svm"};
    for (int f = 1; f <= 6; ++f)
        app.edges.push_back({0, f});
    for (int f = 1; f <= 6; ++f)
        app.edges.push_back({f, 7});
    app.edges.push_back({7, 8});
    for (int i = 9; i <= 14; ++i)
        app.edges.push_back({8, i});
    for (int i = 9; i <= 14; ++i)
        app.edges.push_back({i, 15});
    return app;
}

AppSpec
app2Cnn()
{
    AppSpec app;
    app.name = "APP2-cnn";
    // 0-12: convolution kernels; the layers are parallelized
    // unevenly (paper Section VI-C: seven of the thirteen conv
    // kernels are the bottlenecks), so seven get full 16x16 slices
    // and six get smaller 10x10 slices.
    for (int i = 0; i < 13; ++i)
        app.stageKernels.push_back(i < 7 ? "conv2d" : "conv2d10");
    app.stageKernels.push_back("pooling");
    app.stageKernels.push_back("pooling");
    app.stageKernels.push_back("fc");
    for (int i = 0; i < 13; ++i)
        app.edges.push_back({i, i < 7 ? 13 : 14});
    app.edges.push_back({13, 15});
    app.edges.push_back({14, 15});
    return app;
}

AppSpec
app3SvmEncrypt()
{
    AppSpec app;
    app.name = "APP3-svm-enc";
    // Four lanes of sobel -> histogram -> svm -> aes.
    for (int lane = 0; lane < 4; ++lane) {
        app.stageKernels.push_back("sobel");
        app.stageKernels.push_back("histogram");
        app.stageKernels.push_back("svm");
        app.stageKernels.push_back("aes");
        int base = lane * 4;
        app.edges.push_back({base + 0, base + 1});
        app.edges.push_back({base + 1, base + 2});
        app.edges.push_back({base + 2, base + 3});
    }
    return app;
}

AppSpec
app4Transport()
{
    AppSpec app;
    app.name = "APP4-transport";
    // Four sensor lanes of barometer binning -> AES decryption ->
    // DTW context matching -> AES re-encryption (4 x 4 = 16
    // kernels). The DTW stages dominate, giving this app the
    // imbalance the paper calls out for APP4.
    for (int lane = 0; lane < 4; ++lane) {
        app.stageKernels.push_back("histogram");
        app.stageKernels.push_back("aes");
        app.stageKernels.push_back("dtw");
        app.stageKernels.push_back("aes");
        int base = lane * 4;
        app.edges.push_back({base + 0, base + 1});
        app.edges.push_back({base + 1, base + 2});
        app.edges.push_back({base + 2, base + 3});
    }
    return app;
}

std::vector<AppSpec>
allApps()
{
    return {app1Gesture(), app2Cnn(), app3SvmEncrypt(),
            app4Transport()};
}

} // namespace stitch::apps

#include "apps/app_runner.hh"

#include "common/logging.hh"
#include "common/table.hh"

namespace stitch::apps
{

const char *
appModeName(AppMode mode)
{
    switch (mode) {
      case AppMode::Baseline: return "baseline";
      case AppMode::Locus: return "LOCUS";
      case AppMode::StitchNoFusion: return "Stitch w/o fusion";
      case AppMode::Stitch: return "Stitch";
    }
    STITCH_PANIC("bad AppMode");
}

AppRunner::AppRunner(int samplesShort, int samplesLong)
    : samplesShort_(samplesShort), samplesLong_(samplesLong)
{
    STITCH_ASSERT(samplesLong_ > samplesShort_ && samplesShort_ >= 1);
}

const compiler::CompiledKernel &
AppRunner::compiledFor(const std::string &kernel,
                       const kernels::PipelineShape &shape)
{
    std::string key = strformat("%s/%d/%d/%d", kernel.c_str(),
                                shape.numIn, shape.numOut,
                                shape.samples);
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        auto it = cache_.find(key);
        if (it != cache_.end())
            return *it->second;
    }
    // Compile outside the lock — it is the expensive step, and two
    // workers compiling the same kernel is merely redundant work
    // (the loser's copy is dropped), never wrong.
    auto input = kernels::kernelByName(kernel).build(shape);
    auto compiled = std::make_unique<compiler::CompiledKernel>(
        compiler::compileKernel(kernel, input));
    std::lock_guard<std::mutex> lock(cacheMutex_);
    auto [it, inserted] = cache_.emplace(key, std::move(compiled));
    (void)inserted;
    return *it->second;
}

RunConfig
AppRunner::config() const
{
    RunConfig cfg;
    cfg.arch = arch_;
    cfg.policy = policy_;
    cfg.health = health_;
    cfg.faults = faults_;
    cfg.scheduler = scheduler_;
    return cfg;
}

AppRunResult
AppRunner::run(const AppSpec &app, AppMode mode)
{
    return run(app, mode, config());
}

AppRunResult
AppRunner::run(const AppSpec &app, AppMode mode,
               const RunConfig &config)
{
    const int stages = static_cast<int>(app.stageKernels.size());
    STITCH_ASSERT(stages <= numTiles, "application too wide");

    // Per-call measurement overrides (job specs); 0 = runner default.
    const int samplesShort =
        config.samplesShort > 0 ? config.samplesShort : samplesShort_;
    const int samplesLong =
        config.samplesLong > 0 ? config.samplesLong : samplesLong_;
    if (!(samplesLong > samplesShort && samplesShort >= 1))
        throw fault::ConfigError(detail::formatMessage(
            "invalid sample window: short=", samplesShort,
            " long=", samplesLong,
            " (need 1 <= short < long)"));

    // Compile every stage (cached across stages and apps).
    std::vector<const compiler::CompiledKernel *> compiled;
    std::vector<kernels::PipelineShape> shapes;
    {
        telem::ScopedSpan span(config.trace, telem::Stage::Compile);
        for (int k = 0; k < stages; ++k) {
            kernels::PipelineShape shape;
            shape.numIn = app.inDegree(k);
            shape.numOut = app.outDegree(k);
            shapes.push_back(shape);
            compiled.push_back(&compiledFor(
                app.stageKernels[static_cast<std::size_t>(k)],
                shape));
        }
    }

    // Decide placements and per-stage binaries.
    AppRunResult result;
    result.mode = mode;
    result.samples = samplesLong - samplesShort;

    std::vector<TileId> tileOf(static_cast<std::size_t>(stages));
    std::vector<const compiler::RewrittenProgram *> binaries(
        static_cast<std::size_t>(stages));
    std::vector<compiler::RewrittenProgram> softwareBinaries(
        static_cast<std::size_t>(stages));

    sim::SystemParams sysParams;
    sysParams.faults = config.faults;
    sysParams.scheduler = config.scheduler;
    sysParams.abortFlag = config.abortFlag;
    switch (mode) {
      case AppMode::Baseline:
        sysParams.accel = sim::AccelMode::None;
        break;
      case AppMode::Locus:
        sysParams.accel = sim::AccelMode::Locus;
        break;
      default:
        sysParams.accel = sim::AccelMode::Stitch;
        break;
    }

    if (mode == AppMode::Baseline || mode == AppMode::Locus) {
        for (int k = 0; k < stages; ++k) {
            tileOf[static_cast<std::size_t>(k)] = k;
            if (mode == AppMode::Baseline) {
                softwareBinaries[static_cast<std::size_t>(k)].program =
                    compiled[static_cast<std::size_t>(k)]->software;
                binaries[static_cast<std::size_t>(k)] =
                    &softwareBinaries[static_cast<std::size_t>(k)];
            } else {
                const auto *variant =
                    compiled[static_cast<std::size_t>(k)]
                        ->locusVariant();
                STITCH_ASSERT(variant, "missing LOCUS variant");
                binaries[static_cast<std::size_t>(k)] =
                    &variant->binary;
            }
        }
    } else {
        // Build the stitcher's view of the kernels.
        std::vector<compiler::KernelProfile> profiles;
        for (int k = 0; k < stages; ++k) {
            compiler::KernelProfile prof;
            prof.name = strformat(
                "%s#%d",
                app.stageKernels[static_cast<std::size_t>(k)].c_str(),
                k);
            prof.swCycles =
                compiled[static_cast<std::size_t>(k)]->softwareCycles;
            for (const auto &variant :
                 compiled[static_cast<std::size_t>(k)]->variants) {
                if (variant.target.type ==
                    compiler::AccelTarget::Type::Locus)
                    continue;
                prof.options.push_back(
                    {variant.target, variant.cycles});
            }
            profiles.push_back(std::move(prof));
        }

        compiler::StitchOptions stitchOpts;
        stitchOpts.allowFusion = mode == AppMode::Stitch;
        stitchOpts.policy = config.policy;
        sysParams.arch = config.arch;
        {
            telem::ScopedSpan span(config.trace,
                                   telem::Stage::Stitch);
            result.plan = compiler::stitchApplication(
                profiles, sysParams.arch, config.health, stitchOpts);
        }
        result.hasPlan = true;

        for (int k = 0; k < stages; ++k) {
            const auto &placement =
                result.plan.placements[static_cast<std::size_t>(k)];
            tileOf[static_cast<std::size_t>(k)] = placement.tile;
            if (placement.accel) {
                const auto *variant =
                    compiled[static_cast<std::size_t>(k)]->find(
                        *placement.accel);
                STITCH_ASSERT(variant,
                              "plan chose a missing variant");
                binaries[static_cast<std::size_t>(k)] =
                    &variant->binary;
            } else {
                softwareBinaries[static_cast<std::size_t>(k)].program =
                    compiled[static_cast<std::size_t>(k)]->software;
                binaries[static_cast<std::size_t>(k)] =
                    &softwareBinaries[static_cast<std::size_t>(k)];
            }
        }
    }

    // Simulate a short and a long run; the marginal cost of the
    // extra samples is the steady-state throughput.
    auto simulate = [&](int nSamples,
                        obs::Json *statsOut) -> sim::RunStats {
        sim::System system(sysParams);
        if (result.hasPlan)
            system.configureSnoc(result.plan.snoc);
        for (int k = 0; k < stages; ++k)
            system.loadProgram(tileOf[static_cast<std::size_t>(k)],
                               *binaries[static_cast<std::size_t>(k)]);
        if (result.hasPlan) {
            for (const auto &placement : result.plan.placements)
                if (placement.accel &&
                    placement.accel->type ==
                        compiler::AccelTarget::Type::FusedPair)
                    system.setFusionPartner(placement.tile,
                                            placement.remoteTile);
        }

        // Wire the message channels: channel order must match the
        // builder's (i-th in-edge / out-edge in spec order).
        std::vector<int> inSeen(static_cast<std::size_t>(stages), 0);
        std::vector<int> outSeen(static_cast<std::size_t>(stages), 0);
        for (const auto &edge : app.edges) {
            TileId fromTile =
                tileOf[static_cast<std::size_t>(edge.from)];
            TileId toTile = tileOf[static_cast<std::size_t>(edge.to)];
            int outIdx =
                outSeen[static_cast<std::size_t>(edge.from)]++;
            int inIdx = inSeen[static_cast<std::size_t>(edge.to)]++;
            system.pokeWord(fromTile,
                            kernels::commOutTableAddr +
                                static_cast<Addr>(4 * outIdx),
                            static_cast<Word>(toTile));
            system.pokeWord(toTile,
                            kernels::commInTableAddr +
                                static_cast<Addr>(4 * inIdx),
                            static_cast<Word>(fromTile));
        }
        for (int k = 0; k < stages; ++k)
            system.pokeWord(tileOf[static_cast<std::size_t>(k)],
                            kernels::commSamplesAddr,
                            static_cast<Word>(nSamples));

        auto stats = system.run(
            config.maxInstructions > 0
                ? config.maxInstructions
                : sim::System::runawayInstructionBudget);
        if (statsOut) {
            *statsOut = system.registry().toJson(/*skipZero=*/true);
            if (config.dumpTraces)
                result.traceDump = system.dumpTraces();
        }
        return stats;
    };

    result.samplesLong = samplesLong;
    for (int k = 0; k < stages; ++k)
        result.stageBindings.emplace_back(
            strformat(
                "%s#%d",
                app.stageKernels[static_cast<std::size_t>(k)].c_str(),
                k),
            tileOf[static_cast<std::size_t>(k)]);

    telem::ScopedSpan simSpan(config.trace, telem::Stage::Simulate);
    sim::RunStats shortRun = simulate(samplesShort, nullptr);
    result.stats = simulate(samplesLong, &result.statsDump);
    simSpan.close();
    if (shortRun.termination == fault::Termination::Completed &&
        result.stats.termination == fault::Termination::Completed) {
        result.marginalCycles =
            static_cast<double>(result.stats.makespan -
                                shortRun.makespan) /
            static_cast<double>(samplesLong - samplesShort);
    } else {
        // An aborted run has no steady state; leave the marginal cost
        // at zero and let callers key on stats.termination.
        result.marginalCycles = 0.0;
    }
    return result;
}

} // namespace apps = stitch::apps

/**
 * @file
 * The four representative wearable applications of the evaluation
 * (paper Figure 9), expressed as 16-kernel pipeline graphs:
 *
 *  APP1 — finger gesture recognition [46]: sensor FIR preprocessing,
 *         six parallel FFTs (two sensors x three axes), feature
 *         update, spectral filter, six IFFTs (with extra update
 *         processing), and an SVM classifier.
 *  APP2 — CNN image recognition [49]: thirteen parallel convolution
 *         kernels, two pooling kernels, one fully-connected layer.
 *  APP3 — SVM-based anomalous-image recognition + encryption: four
 *         lanes of sobel -> histogram -> svm -> aes.
 *  APP4 — transportation context detection [50]: five lanes of AES
 *         decryption -> DTW matching -> AES re-encryption, plus a
 *         CRC integrity stage.
 *
 * Every stage is a kernel from the catalog wrapped as a pipeline
 * stage; edges become RECV/SEND channels over the inter-core NoC.
 */

#ifndef STITCH_APPS_APPS_HH
#define STITCH_APPS_APPS_HH

#include <string>
#include <vector>

namespace stitch::apps
{

/** A directed channel between two stages. */
struct AppEdge
{
    int from = 0;
    int to = 0;
};

/** An application graph. */
struct AppSpec
{
    std::string name;
    std::vector<std::string> stageKernels; ///< catalog names, <= 16
    std::vector<AppEdge> edges;

    int inDegree(int stage) const;
    int outDegree(int stage) const;
};

AppSpec app1Gesture();
AppSpec app2Cnn();
AppSpec app3SvmEncrypt();
AppSpec app4Transport();

/** All four, in paper order. */
std::vector<AppSpec> allApps();

} // namespace stitch::apps

#endif // STITCH_APPS_APPS_HH

/**
 * @file
 * An embedded assembler for SW32 with forward labels.
 *
 * Kernels in src/kernels/ are written against this builder API; it
 * stands in for the gcc/gas front-end of the paper's tool chain
 * (Figure 6). The compiler stages downstream of the front-end operate
 * on the Program this assembler produces.
 */

#ifndef STITCH_ISA_ASSEMBLER_HH
#define STITCH_ISA_ASSEMBLER_HH

#include <string>
#include <vector>

#include "isa/program.hh"

namespace stitch::isa
{

/** Conventional register names (purely advisory; r0 is hard zero). */
namespace reg
{
inline constexpr RegId zero = 0;
inline constexpr RegId ra = 1;   ///< link register
inline constexpr RegId sp = 2;   ///< stack pointer
inline constexpr RegId a0 = 3;   ///< arguments / results a0..a5
inline constexpr RegId a1 = 4;
inline constexpr RegId a2 = 5;
inline constexpr RegId a3 = 6;
inline constexpr RegId a4 = 7;
inline constexpr RegId a5 = 8;
inline constexpr RegId t0 = 9;   ///< temporaries t0..t12
inline constexpr RegId t1 = 10;
inline constexpr RegId t2 = 11;
inline constexpr RegId t3 = 12;
inline constexpr RegId t4 = 13;
inline constexpr RegId t5 = 14;
inline constexpr RegId t6 = 15;
inline constexpr RegId t7 = 16;
inline constexpr RegId t8 = 17;
inline constexpr RegId t9 = 18;
inline constexpr RegId t10 = 19;
inline constexpr RegId t11 = 20;
inline constexpr RegId t12 = 21;
inline constexpr RegId s0 = 22;  ///< saved s0..s9
inline constexpr RegId s1 = 23;
inline constexpr RegId s2 = 24;
inline constexpr RegId s3 = 25;
inline constexpr RegId s4 = 26;
inline constexpr RegId s5 = 27;
inline constexpr RegId s6 = 28;
inline constexpr RegId s7 = 29;
inline constexpr RegId s8 = 30;
inline constexpr RegId s9 = 31;
} // namespace reg

/** Opaque handle to an assembler label. */
struct Label
{
    int id = -1;
};

/**
 * Builder of SW32 Programs. Usage:
 * @code
 *   Assembler a("fir");
 *   Label loop = a.newLabel();
 *   a.li(reg::t0, 0);
 *   a.bind(loop);
 *   ...
 *   a.bne(reg::t0, reg::t1, loop);
 *   a.halt();
 *   Program p = a.finish();
 * @endcode
 */
class Assembler
{
  public:
    explicit Assembler(std::string name) : name_(std::move(name)) {}

    /** Create a label that can be referenced before it is bound. */
    Label newLabel();

    /** Bind `label` to the current position. */
    void bind(Label label);

    // --- register-register ALU ------------------------------------
    void add(RegId rd, RegId ra, RegId rb) { emitR(Opcode::Add, rd, ra, rb); }
    void sub(RegId rd, RegId ra, RegId rb) { emitR(Opcode::Sub, rd, ra, rb); }
    void and_(RegId rd, RegId ra, RegId rb) { emitR(Opcode::And, rd, ra, rb); }
    void or_(RegId rd, RegId ra, RegId rb) { emitR(Opcode::Or, rd, ra, rb); }
    void xor_(RegId rd, RegId ra, RegId rb) { emitR(Opcode::Xor, rd, ra, rb); }
    void sll(RegId rd, RegId ra, RegId rb) { emitR(Opcode::Sll, rd, ra, rb); }
    void srl(RegId rd, RegId ra, RegId rb) { emitR(Opcode::Srl, rd, ra, rb); }
    void sra(RegId rd, RegId ra, RegId rb) { emitR(Opcode::Sra, rd, ra, rb); }
    void mul(RegId rd, RegId ra, RegId rb) { emitR(Opcode::Mul, rd, ra, rb); }
    void slt(RegId rd, RegId ra, RegId rb) { emitR(Opcode::Slt, rd, ra, rb); }
    void sltu(RegId rd, RegId ra, RegId rb) { emitR(Opcode::Sltu, rd, ra, rb); }

    // --- register-immediate ALU ------------------------------------
    void addi(RegId rd, RegId ra, std::int32_t v) { emitI(Opcode::Addi, rd, ra, v); }
    void andi(RegId rd, RegId ra, std::int32_t v) { emitI(Opcode::Andi, rd, ra, v); }
    void ori(RegId rd, RegId ra, std::int32_t v) { emitI(Opcode::Ori, rd, ra, v); }
    void xori(RegId rd, RegId ra, std::int32_t v) { emitI(Opcode::Xori, rd, ra, v); }
    void slli(RegId rd, RegId ra, std::int32_t v) { emitI(Opcode::Slli, rd, ra, v); }
    void srli(RegId rd, RegId ra, std::int32_t v) { emitI(Opcode::Srli, rd, ra, v); }
    void srai(RegId rd, RegId ra, std::int32_t v) { emitI(Opcode::Srai, rd, ra, v); }
    void slti(RegId rd, RegId ra, std::int32_t v) { emitI(Opcode::Slti, rd, ra, v); }

    /** Load upper immediate: rd = v << 11 (21-bit field). */
    void lui(RegId rd, std::int32_t v);

    /** Pseudo: load any 32-bit constant (expands to lui/ori as needed). */
    void li(RegId rd, std::int32_t v);

    /** Pseudo: register move (addi rd, ra, 0). */
    void mov(RegId rd, RegId ra) { addi(rd, ra, 0); }

    // --- memory -----------------------------------------------------
    void lw(RegId rd, RegId base, std::int32_t off) { emitI(Opcode::Lw, rd, base, off); }
    void lb(RegId rd, RegId base, std::int32_t off) { emitI(Opcode::Lb, rd, base, off); }
    void sw(RegId value, RegId base, std::int32_t off);
    void sb(RegId value, RegId base, std::int32_t off);

    // --- control flow ------------------------------------------------
    void beq(RegId ra, RegId rb, Label target) { emitBranch(Opcode::Beq, ra, rb, target); }
    void bne(RegId ra, RegId rb, Label target) { emitBranch(Opcode::Bne, ra, rb, target); }
    void blt(RegId ra, RegId rb, Label target) { emitBranch(Opcode::Blt, ra, rb, target); }
    void bge(RegId ra, RegId rb, Label target) { emitBranch(Opcode::Bge, ra, rb, target); }
    void bltu(RegId ra, RegId rb, Label target) { emitBranch(Opcode::Bltu, ra, rb, target); }
    void bgeu(RegId ra, RegId rb, Label target) { emitBranch(Opcode::Bgeu, ra, rb, target); }

    /** Unconditional jump (jal r0). */
    void jmp(Label target) { jal(reg::zero, target); }
    void jal(RegId rd, Label target);
    void jalr(RegId rd, RegId base, std::int32_t off) { emitI(Opcode::Jalr, rd, base, off); }

    // --- message passing ----------------------------------------------
    /** Send the word in `data` to tile held in register `dst`, with tag. */
    void send(RegId data, RegId dst, std::int32_t tag);
    /** Blocking receive of a word from tile in register `src`, with tag. */
    void recv(RegId rd, RegId src, std::int32_t tag);

    // --- misc -----------------------------------------------------------
    void nop() { emit(Instr{}); }
    void halt();

    /** Raw emission (used by tests and the compiler's rewriter). */
    void emit(const Instr &in);

    /** Number of instructions emitted so far. */
    std::size_t size() const { return instrs_.size(); }

    /** Resolve labels and produce the Program. */
    Program finish();

  private:
    struct Fixup
    {
        std::size_t instrIdx;
        int labelId;
        bool absolute; ///< jal targets are absolute word addresses
    };

    void emitR(Opcode op, RegId rd, RegId ra, RegId rb);
    void emitI(Opcode op, RegId rd, RegId ra, std::int32_t v);
    void emitBranch(Opcode op, RegId ra, RegId rb, Label target);

    std::string name_;
    std::vector<Instr> instrs_;
    std::vector<int> labelTargets_;  ///< per label: instr index or -1
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

} // namespace stitch::isa

#endif // STITCH_ISA_ASSEMBLER_HH

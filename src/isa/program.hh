/**
 * @file
 * A loadable SW32 program: code, initial data image, and the ISE
 * configuration table referenced by CUST instructions.
 */

#ifndef STITCH_ISA_PROGRAM_HH
#define STITCH_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace stitch::isa
{

/** A chunk of initialized data memory. */
struct DataSegment
{
    Addr base = 0;
    std::vector<std::uint8_t> bytes;
};

/**
 * A complete kernel binary.
 *
 * Code is held in decoded form (the compiler's IR); encodeImage()
 * produces the raw word image and fromImage() round-trips it back.
 * CUST instructions reference entries of iseTable by index; each entry
 * is a packed fused-configuration blob built by core/patch_config
 * (the table plays the role of the paper's preset configuration state:
 * control bits are fixed before the application launches, exactly like
 * the memory-mapped crossbar configuration registers of Section
 * III-B).
 */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

    /** Append an instruction; returns its word address. */
    Addr
    append(const Instr &in)
    {
        Addr at = wordCount_;
        code_.push_back(in);
        wordCount_ += static_cast<Addr>(in.wordSize());
        return at;
    }

    /** All instructions in program order. */
    const std::vector<Instr> &code() const { return code_; }

    /** Mutable access for the compiler's rewriter. */
    std::vector<Instr> &mutableCode() { return code_; }

    /** Recompute cached word addresses after a rewrite. */
    void refreshLayout();

    /** Total size of the code image in words. */
    Addr wordCount() const { return wordCount_; }

    /** Word address of instruction index `idx`. */
    Addr wordAddrOf(std::size_t idx) const;

    /** Index of the instruction that starts at word address `wa`. */
    std::size_t indexOfWordAddr(Addr wa) const;

    /** Add an initialized data segment. */
    void
    addData(Addr base, std::vector<std::uint8_t> bytes)
    {
        data_.push_back(DataSegment{base, std::move(bytes)});
    }

    /** Convenience: add a segment of little-endian words. */
    void addDataWords(Addr base, const std::vector<Word> &words);

    const std::vector<DataSegment> &data() const { return data_; }

    /** Append an ISE configuration blob; returns its table index. */
    std::uint16_t
    addIseConfig(std::uint64_t blob)
    {
        iseTable_.push_back(blob);
        return static_cast<std::uint16_t>(iseTable_.size() - 1);
    }

    const std::vector<std::uint64_t> &iseTable() const { return iseTable_; }

    /** Encode the code into its binary word image. */
    std::vector<Word> encodeImage() const;

    /** Decode a binary word image back into a Program (code only). */
    static Program fromImage(const std::string &name,
                             const std::vector<Word> &image);

    /** Disassembly listing for debugging. */
    std::string listing() const;

  private:
    std::string name_;
    std::vector<Instr> code_;
    std::vector<DataSegment> data_;
    std::vector<std::uint64_t> iseTable_;
    Addr wordCount_ = 0;
    mutable std::vector<Addr> wordAddrCache_;
    void rebuildCache() const;
};

} // namespace stitch::isa

#endif // STITCH_ISA_PROGRAM_HH

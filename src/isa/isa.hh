/**
 * @file
 * SW32: the instruction set of the Stitch cores.
 *
 * SW32 is a small 32-bit RISC ISA standing in for the ARM-compatible
 * Amber core of the paper. It has 32 registers (r0 hard-wired to zero),
 * fixed 32-bit instruction words, and two extensions that carry the
 * paper's contribution:
 *
 *  - CUST: a two-word custom instruction (paper Section III-A) with up
 *    to four register sources and two register destinations. The 19-bit
 *    patch control words it triggers are held in a per-program ISE
 *    configuration table referenced by a 12-bit index (see
 *    core/patch_config.hh for why the control bits live in a preset
 *    table rather than inline).
 *  - SEND/RECV: register-level message passing over the inter-core NoC
 *    (the paper's MPI-lite layer [51]).
 */

#ifndef STITCH_ISA_ISA_HH
#define STITCH_ISA_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace stitch::isa
{

/** Every SW32 opcode. Order is the binary encoding (6-bit field). */
enum class Opcode : std::uint8_t
{
    Nop = 0,
    Halt,

    // Register-register ALU (R format)
    Add, Sub, And, Or, Xor, Sll, Srl, Sra, Mul, Slt, Sltu,

    // Register-immediate ALU (I format)
    Addi, Andi, Ori, Xori, Slli, Srli, Srai, Slti,

    // Upper immediate (J format: rd0 + 21-bit immediate)
    Lui,

    // Memory (I format loads, S format stores)
    Lw, Sw, Lb, Sb,

    // Control flow (B format branches, J format jal, I format jalr)
    Beq, Bne, Blt, Bge, Bltu, Bgeu, Jal, Jalr,

    // Message passing (B format send, I format recv)
    Send, Recv,

    // Two-word custom (patch) instruction
    Cust,

    NumOpcodes
};

/** Operand layout of an opcode's binary encoding. */
enum class Format
{
    N, ///< no operands (nop, halt)
    R, ///< rd0, rs0, rs1
    I, ///< rd0, rs0, imm16  (also jalr, recv)
    S, ///< rs1 (value), rs0 (base), imm16
    B, ///< rs0, rs1, imm16  (branches: signed word offset; send)
    J, ///< rd0, imm21       (jal: absolute word address; lui)
    C, ///< two words: rd0, rd1, rs0..rs3, cfg12
};

/** Binary-encoding layout for `op`. */
Format formatOf(Opcode op);

/** Lower-case mnemonic for `op`. */
const char *mnemonic(Opcode op);

/**
 * One decoded SW32 instruction.
 *
 * This is the IR that the assembler produces, the compiler rewrites,
 * and the core executes; encode()/decode() map it to/from raw words.
 * Unused fields are zero.
 */
struct Instr
{
    Opcode op = Opcode::Nop;

    RegId rd0 = 0;  ///< first destination
    RegId rd1 = 0;  ///< second destination (CUST only)
    RegId rs0 = 0;  ///< first source / base address register
    RegId rs1 = 0;  ///< second source / store value register
    RegId rs2 = 0;  ///< third source (CUST only)
    RegId rs3 = 0;  ///< fourth source (CUST only)

    /**
     * Immediate. Branches: signed word offset from this instruction's
     * address. Jal: absolute word address. Send/Recv: message tag.
     */
    std::int32_t imm = 0;

    /** CUST: index into the program's ISE configuration table. */
    std::uint16_t cfg = 0;

    /** Size of the instruction in 32-bit words (CUST is 2). */
    int wordSize() const { return op == Opcode::Cust ? 2 : 1; }

    bool operator==(const Instr &) const = default;
};

/** True for opcodes that read or write data memory. */
bool isMemOp(Opcode op);

/** True for opcodes that may redirect the PC. */
bool isControlOp(Opcode op);

/** True for the register-register ALU group. */
bool isAluRegOp(Opcode op);

/** True for the register-immediate ALU group. */
bool isAluImmOp(Opcode op);

/**
 * Encode `in` into 32-bit words appended to `out`.
 * @return number of words written (1, or 2 for CUST).
 */
int encode(const Instr &in, std::vector<Word> &out);

/**
 * Decode one instruction starting at words[idx].
 * @return the decoded instruction; advances *consumed by 1 or 2.
 */
Instr decode(const std::vector<Word> &words, std::size_t idx,
             int *consumed);

/** Render one instruction as assembly text. */
std::string toString(const Instr &in);

} // namespace stitch::isa

#endif // STITCH_ISA_ISA_HH

#include "isa/isa.hh"

#include <array>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace stitch::isa
{

namespace
{

struct OpInfo
{
    const char *name;
    Format format;
};

constexpr int numOps = static_cast<int>(Opcode::NumOpcodes);

const std::array<OpInfo, numOps> opTable = {{
    {"nop",  Format::N},
    {"halt", Format::N},
    {"add",  Format::R},
    {"sub",  Format::R},
    {"and",  Format::R},
    {"or",   Format::R},
    {"xor",  Format::R},
    {"sll",  Format::R},
    {"srl",  Format::R},
    {"sra",  Format::R},
    {"mul",  Format::R},
    {"slt",  Format::R},
    {"sltu", Format::R},
    {"addi", Format::I},
    {"andi", Format::I},
    {"ori",  Format::I},
    {"xori", Format::I},
    {"slli", Format::I},
    {"srli", Format::I},
    {"srai", Format::I},
    {"slti", Format::I},
    {"lui",  Format::J},
    {"lw",   Format::I},
    {"sw",   Format::S},
    {"lb",   Format::I},
    {"sb",   Format::S},
    {"beq",  Format::B},
    {"bne",  Format::B},
    {"blt",  Format::B},
    {"bge",  Format::B},
    {"bltu", Format::B},
    {"bgeu", Format::B},
    {"jal",  Format::J},
    {"jalr", Format::I},
    {"send", Format::B},
    {"recv", Format::I},
    {"cust", Format::C},
}};

const OpInfo &
info(Opcode op)
{
    auto idx = static_cast<int>(op);
    STITCH_ASSERT(idx >= 0 && idx < numOps, "bad opcode ", idx);
    return opTable[static_cast<std::size_t>(idx)];
}

} // namespace

Format
formatOf(Opcode op)
{
    return info(op).format;
}

const char *
mnemonic(Opcode op)
{
    return info(op).name;
}

bool
isMemOp(Opcode op)
{
    return op == Opcode::Lw || op == Opcode::Sw || op == Opcode::Lb ||
           op == Opcode::Sb;
}

bool
isControlOp(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Bltu:
      case Opcode::Bgeu:
      case Opcode::Jal:
      case Opcode::Jalr:
      case Opcode::Halt:
        return true;
      default:
        return false;
    }
}

bool
isAluRegOp(Opcode op)
{
    auto v = static_cast<int>(op);
    return v >= static_cast<int>(Opcode::Add) &&
           v <= static_cast<int>(Opcode::Sltu);
}

bool
isAluImmOp(Opcode op)
{
    auto v = static_cast<int>(op);
    return v >= static_cast<int>(Opcode::Addi) &&
           v <= static_cast<int>(Opcode::Slti);
}

namespace
{

void
checkReg(RegId r)
{
    STITCH_ASSERT(r >= 0 && r < numRegs, "bad register r", r);
}

} // namespace

int
encode(const Instr &in, std::vector<Word> &out)
{
    const auto opfield = static_cast<std::uint32_t>(in.op);
    Word w = insertBits(0, 26, 6, opfield);

    switch (formatOf(in.op)) {
      case Format::N:
        out.push_back(w);
        return 1;

      case Format::R:
        checkReg(in.rd0);
        checkReg(in.rs0);
        checkReg(in.rs1);
        w = insertBits(w, 21, 5, static_cast<std::uint32_t>(in.rd0));
        w = insertBits(w, 16, 5, static_cast<std::uint32_t>(in.rs0));
        w = insertBits(w, 11, 5, static_cast<std::uint32_t>(in.rs1));
        out.push_back(w);
        return 1;

      case Format::I:
        checkReg(in.rd0);
        checkReg(in.rs0);
        if (!fitsSigned(in.imm, 16))
            fatal("imm ", in.imm, " out of range for ", mnemonic(in.op));
        w = insertBits(w, 21, 5, static_cast<std::uint32_t>(in.rd0));
        w = insertBits(w, 16, 5, static_cast<std::uint32_t>(in.rs0));
        w = insertBits(w, 0, 16, static_cast<std::uint32_t>(in.imm) &
                                     0xffffu);
        out.push_back(w);
        return 1;

      case Format::S:
        checkReg(in.rs0);
        checkReg(in.rs1);
        if (!fitsSigned(in.imm, 16))
            fatal("imm ", in.imm, " out of range for ", mnemonic(in.op));
        w = insertBits(w, 21, 5, static_cast<std::uint32_t>(in.rs1));
        w = insertBits(w, 16, 5, static_cast<std::uint32_t>(in.rs0));
        w = insertBits(w, 0, 16, static_cast<std::uint32_t>(in.imm) &
                                     0xffffu);
        out.push_back(w);
        return 1;

      case Format::B:
        checkReg(in.rs0);
        checkReg(in.rs1);
        if (!fitsSigned(in.imm, 16))
            fatal("imm ", in.imm, " out of range for ", mnemonic(in.op));
        w = insertBits(w, 21, 5, static_cast<std::uint32_t>(in.rs0));
        w = insertBits(w, 16, 5, static_cast<std::uint32_t>(in.rs1));
        w = insertBits(w, 0, 16, static_cast<std::uint32_t>(in.imm) &
                                     0xffffu);
        out.push_back(w);
        return 1;

      case Format::J:
        checkReg(in.rd0);
        if (!fitsSigned(in.imm, 21))
            fatal("imm ", in.imm, " out of range for ", mnemonic(in.op));
        w = insertBits(w, 21, 5, static_cast<std::uint32_t>(in.rd0));
        w = insertBits(w, 0, 21, static_cast<std::uint32_t>(in.imm) &
                                     0x1fffffu);
        out.push_back(w);
        return 1;

      case Format::C: {
        checkReg(in.rd0);
        checkReg(in.rd1);
        checkReg(in.rs0);
        checkReg(in.rs1);
        checkReg(in.rs2);
        checkReg(in.rs3);
        STITCH_ASSERT(fitsUnsigned(in.cfg, 12),
                      "cfg index ", in.cfg, " exceeds 12 bits");
        w = insertBits(w, 21, 5, static_cast<std::uint32_t>(in.rd0));
        w = insertBits(w, 16, 5, static_cast<std::uint32_t>(in.rd1));
        w = insertBits(w, 11, 5, static_cast<std::uint32_t>(in.rs0));
        w = insertBits(w, 6, 5, static_cast<std::uint32_t>(in.rs1));
        w = insertBits(w, 0, 6, extractBits(in.cfg, 0, 6));
        Word w2 = 0;
        w2 = insertBits(w2, 27, 5, static_cast<std::uint32_t>(in.rs2));
        w2 = insertBits(w2, 22, 5, static_cast<std::uint32_t>(in.rs3));
        w2 = insertBits(w2, 16, 6, extractBits(in.cfg, 6, 6));
        out.push_back(w);
        out.push_back(w2);
        return 2;
      }
    }
    STITCH_PANIC("unreachable");
}

Instr
decode(const std::vector<Word> &words, std::size_t idx, int *consumed)
{
    STITCH_ASSERT(idx < words.size(), "decode past end of image");
    const Word w = words[idx];
    Instr in;
    auto opfield = extractBits(w, 26, 6);
    if (opfield >= static_cast<std::uint32_t>(Opcode::NumOpcodes))
        fatal("undefined opcode field ", opfield);
    in.op = static_cast<Opcode>(opfield);

    int used = 1;
    switch (formatOf(in.op)) {
      case Format::N:
        break;
      case Format::R:
        in.rd0 = static_cast<RegId>(extractBits(w, 21, 5));
        in.rs0 = static_cast<RegId>(extractBits(w, 16, 5));
        in.rs1 = static_cast<RegId>(extractBits(w, 11, 5));
        break;
      case Format::I:
        in.rd0 = static_cast<RegId>(extractBits(w, 21, 5));
        in.rs0 = static_cast<RegId>(extractBits(w, 16, 5));
        in.imm = signExtend(extractBits(w, 0, 16), 16);
        break;
      case Format::S:
        in.rs1 = static_cast<RegId>(extractBits(w, 21, 5));
        in.rs0 = static_cast<RegId>(extractBits(w, 16, 5));
        in.imm = signExtend(extractBits(w, 0, 16), 16);
        break;
      case Format::B:
        in.rs0 = static_cast<RegId>(extractBits(w, 21, 5));
        in.rs1 = static_cast<RegId>(extractBits(w, 16, 5));
        in.imm = signExtend(extractBits(w, 0, 16), 16);
        break;
      case Format::J:
        in.rd0 = static_cast<RegId>(extractBits(w, 21, 5));
        in.imm = signExtend(extractBits(w, 0, 21), 21);
        break;
      case Format::C: {
        STITCH_ASSERT(idx + 1 < words.size(),
                      "truncated two-word CUST instruction");
        const Word w2 = words[idx + 1];
        in.rd0 = static_cast<RegId>(extractBits(w, 21, 5));
        in.rd1 = static_cast<RegId>(extractBits(w, 16, 5));
        in.rs0 = static_cast<RegId>(extractBits(w, 11, 5));
        in.rs1 = static_cast<RegId>(extractBits(w, 6, 5));
        in.rs2 = static_cast<RegId>(extractBits(w2, 27, 5));
        in.rs3 = static_cast<RegId>(extractBits(w2, 22, 5));
        in.cfg = static_cast<std::uint16_t>(
            extractBits(w, 0, 6) | (extractBits(w2, 16, 6) << 6));
        used = 2;
        break;
      }
    }
    if (consumed)
        *consumed = used;
    return in;
}

std::string
toString(const Instr &in)
{
    const char *m = mnemonic(in.op);
    switch (formatOf(in.op)) {
      case Format::N:
        return m;
      case Format::R:
        return strformat("%s r%d, r%d, r%d", m, in.rd0, in.rs0, in.rs1);
      case Format::I:
        if (in.op == Opcode::Lw || in.op == Opcode::Lb)
            return strformat("%s r%d, %d(r%d)", m, in.rd0, in.imm, in.rs0);
        return strformat("%s r%d, r%d, %d", m, in.rd0, in.rs0, in.imm);
      case Format::S:
        return strformat("%s r%d, %d(r%d)", m, in.rs1, in.imm, in.rs0);
      case Format::B:
        return strformat("%s r%d, r%d, %d", m, in.rs0, in.rs1, in.imm);
      case Format::J:
        return strformat("%s r%d, %d", m, in.rd0, in.imm);
      case Format::C:
        return strformat(
            "%s (r%d,r%d) <- cfg%u (r%d,r%d,r%d,r%d)", m, in.rd0,
            in.rd1, in.cfg, in.rs0, in.rs1, in.rs2, in.rs3);
    }
    STITCH_PANIC("unreachable");
}

} // namespace stitch::isa

#include "isa/program.hh"

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace stitch::isa
{

void
Program::refreshLayout()
{
    wordCount_ = 0;
    for (const auto &in : code_)
        wordCount_ += static_cast<Addr>(in.wordSize());
    wordAddrCache_.clear();
}

void
Program::rebuildCache() const
{
    wordAddrCache_.clear();
    wordAddrCache_.reserve(code_.size());
    Addr at = 0;
    for (const auto &in : code_) {
        wordAddrCache_.push_back(at);
        at += static_cast<Addr>(in.wordSize());
    }
}

Addr
Program::wordAddrOf(std::size_t idx) const
{
    if (wordAddrCache_.size() != code_.size())
        rebuildCache();
    STITCH_ASSERT(idx < wordAddrCache_.size());
    return wordAddrCache_[idx];
}

std::size_t
Program::indexOfWordAddr(Addr wa) const
{
    if (wordAddrCache_.size() != code_.size())
        rebuildCache();
    // Binary search over the monotonically increasing address cache.
    std::size_t lo = 0, hi = wordAddrCache_.size();
    while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (wordAddrCache_[mid] < wa)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo >= wordAddrCache_.size() || wordAddrCache_[lo] != wa)
        fatal("word address ", wa, " is not an instruction boundary in ",
              name_);
    return lo;
}

void
Program::addDataWords(Addr base, const std::vector<Word> &words)
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(words.size() * 4);
    for (Word w : words) {
        bytes.push_back(static_cast<std::uint8_t>(w & 0xff));
        bytes.push_back(static_cast<std::uint8_t>((w >> 8) & 0xff));
        bytes.push_back(static_cast<std::uint8_t>((w >> 16) & 0xff));
        bytes.push_back(static_cast<std::uint8_t>((w >> 24) & 0xff));
    }
    addData(base, std::move(bytes));
}

std::vector<Word>
Program::encodeImage() const
{
    std::vector<Word> image;
    image.reserve(wordCount_);
    for (const auto &in : code_)
        encode(in, image);
    return image;
}

Program
Program::fromImage(const std::string &name, const std::vector<Word> &image)
{
    Program p(name);
    std::size_t idx = 0;
    while (idx < image.size()) {
        int used = 0;
        Instr in = decode(image, idx, &used);
        p.append(in);
        idx += static_cast<std::size_t>(used);
    }
    return p;
}

std::string
Program::listing() const
{
    std::ostringstream os;
    os << "; program " << name_ << " (" << wordCount_ << " words)\n";
    for (std::size_t i = 0; i < code_.size(); ++i) {
        os << strformat("%6u:  ", wordAddrOf(i)) << toString(code_[i])
           << "\n";
    }
    return os.str();
}

} // namespace stitch::isa

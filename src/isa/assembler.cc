#include "isa/assembler.hh"

#include "common/bitutil.hh"
#include "common/logging.hh"

namespace stitch::isa
{

Label
Assembler::newLabel()
{
    labelTargets_.push_back(-1);
    return Label{static_cast<int>(labelTargets_.size()) - 1};
}

void
Assembler::bind(Label label)
{
    STITCH_ASSERT(label.id >= 0 &&
                  label.id < static_cast<int>(labelTargets_.size()),
                  "bind of unknown label");
    STITCH_ASSERT(labelTargets_[static_cast<std::size_t>(label.id)] == -1,
                  "label bound twice");
    labelTargets_[static_cast<std::size_t>(label.id)] =
        static_cast<int>(instrs_.size());
}

void
Assembler::lui(RegId rd, std::int32_t v)
{
    Instr in;
    in.op = Opcode::Lui;
    in.rd0 = rd;
    in.imm = v;
    emit(in);
}

void
Assembler::li(RegId rd, std::int32_t v)
{
    if (fitsSigned(v, 16)) {
        addi(rd, reg::zero, v);
        return;
    }
    // rd = (v >> 11) << 11, then OR in the low 11 bits. The lui field
    // is 21 bits so the shifted upper part always fits.
    auto upper = v >> 11;
    auto lower = v & 0x7ff;
    lui(rd, upper);
    if (lower != 0)
        ori(rd, rd, lower);
}

void
Assembler::sw(RegId value, RegId base, std::int32_t off)
{
    Instr in;
    in.op = Opcode::Sw;
    in.rs1 = value;
    in.rs0 = base;
    in.imm = off;
    emit(in);
}

void
Assembler::sb(RegId value, RegId base, std::int32_t off)
{
    Instr in;
    in.op = Opcode::Sb;
    in.rs1 = value;
    in.rs0 = base;
    in.imm = off;
    emit(in);
}

void
Assembler::jal(RegId rd, Label target)
{
    Instr in;
    in.op = Opcode::Jal;
    in.rd0 = rd;
    fixups_.push_back(Fixup{instrs_.size(), target.id, true});
    emit(in);
}

void
Assembler::send(RegId data, RegId dst, std::int32_t tag)
{
    Instr in;
    in.op = Opcode::Send;
    in.rs0 = data;
    in.rs1 = dst;
    in.imm = tag;
    emit(in);
}

void
Assembler::recv(RegId rd, RegId src, std::int32_t tag)
{
    Instr in;
    in.op = Opcode::Recv;
    in.rd0 = rd;
    in.rs0 = src;
    in.imm = tag;
    emit(in);
}

void
Assembler::halt()
{
    Instr in;
    in.op = Opcode::Halt;
    emit(in);
}

void
Assembler::emit(const Instr &in)
{
    STITCH_ASSERT(!finished_, "emit after finish()");
    instrs_.push_back(in);
}

void
Assembler::emitR(Opcode op, RegId rd, RegId ra, RegId rb)
{
    Instr in;
    in.op = op;
    in.rd0 = rd;
    in.rs0 = ra;
    in.rs1 = rb;
    emit(in);
}

void
Assembler::emitI(Opcode op, RegId rd, RegId ra, std::int32_t v)
{
    Instr in;
    in.op = op;
    in.rd0 = rd;
    in.rs0 = ra;
    in.imm = v;
    emit(in);
}

void
Assembler::emitBranch(Opcode op, RegId ra, RegId rb, Label target)
{
    Instr in;
    in.op = op;
    in.rs0 = ra;
    in.rs1 = rb;
    fixups_.push_back(Fixup{instrs_.size(), target.id, false});
    emit(in);
}

Program
Assembler::finish()
{
    STITCH_ASSERT(!finished_, "finish() called twice");
    finished_ = true;

    Program p(name_);
    for (const auto &in : instrs_)
        p.append(in);

    for (const auto &fix : fixups_) {
        int target = labelTargets_[static_cast<std::size_t>(fix.labelId)];
        if (target < 0)
            fatal("unbound label referenced in ", name_);
        // Labels bound past the last instruction point one past the end.
        Addr target_wa =
            static_cast<std::size_t>(target) < instrs_.size()
                ? p.wordAddrOf(static_cast<std::size_t>(target))
                : p.wordCount();
        Addr self_wa = p.wordAddrOf(fix.instrIdx);
        Instr &in = p.mutableCode()[fix.instrIdx];
        if (fix.absolute) {
            in.imm = static_cast<std::int32_t>(target_wa);
        } else {
            in.imm = static_cast<std::int32_t>(target_wa) -
                     static_cast<std::int32_t>(self_wa);
        }
    }
    return p;
}

} // namespace stitch::isa

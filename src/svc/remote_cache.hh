/**
 * @file
 * The shared cache tier's client side: a read-through /
 * write-behind window onto the ResultCaches of peer stitchd shards.
 *
 * Promotion story (DESIGN.md §16): every shard keeps serving its own
 * mem/disk ResultCache exactly as before; the fleet layer adds the
 * "cacheget"/"cacheput" wire verbs (svc/server.hh) on the serving
 * side and this client on the engine side. A worker that misses both
 * local layers asks its peers before simulating (read-through), and
 * a fresh simulation is broadcast to every peer (write-behind, on a
 * background thread so job latency never waits on replication) — so
 * a job simulated on shard A is a cache hit fleet-wide.
 *
 * Consistency rules:
 *  - every response's "stamp" must equal the local cacheStamp();
 *    a mismatched stamp (version skew between shards) degrades to a
 *    miss and is counted as `invalidated`, never served,
 *  - a cacheget hit's "spec_echo" must equal the local canonical
 *    form byte-for-byte — the same collision guard the disk layer
 *    runs, applied to remote entries,
 *  - peer failures are counted (`errors`) and never fail a job: the
 *    remote tier is an accelerator, losing it merely costs a
 *    simulation.
 *
 * Probe order is deterministic: peers are tried starting at
 * hashBytes(key) % N, so for a fixed peer list every process asks in
 * the same order and the shard most likely to own the key (under the
 * router's ring) is reached with a bounded number of hops.
 */

#ifndef STITCH_SVC_REMOTE_CACHE_HH
#define STITCH_SVC_REMOTE_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "svc/cache.hh"
#include "svc/job.hh"

namespace stitch::svc
{

/** One "host:port" peer, parsed and validated. */
struct PeerEndpoint
{
    std::string host;
    std::uint16_t port = 0;

    std::string
    name() const
    {
        return host + ":" + std::to_string(port);
    }
};

/** Parse "host:port"; throws fault::ConfigError on malformed input
 *  (no colon, port outside 1..65535). */
PeerEndpoint parsePeerEndpoint(const std::string &text);

/** Parse a comma-separated peer list, skipping empty segments. */
std::vector<PeerEndpoint> parsePeerList(const std::string &csv);

/** Knobs for the remote tier (EngineOptions::remoteCache). */
struct RemoteCacheOptions
{
    /** Peer shard endpoints ("host:port"); empty disables the
     *  remote tier entirely. */
    std::vector<std::string> peers;

    /** Per-operation socket timeout (ms): a dead-but-lingering peer
     *  costs at most this much per probe, never a wedged worker. */
    std::uint64_t timeoutMs = 250;

    /** true: stores replicate on a background thread (the daemon
     *  default — job latency never waits on peers). false: stores
     *  replicate inline before the call returns, which tests and
     *  single-shot tools use for determinism. */
    bool writeBehind = true;
};

/** Lookup/replication activity since construction. */
struct RemoteCacheStats
{
    std::uint64_t hits = 0;       ///< entries adopted from a peer
    std::uint64_t misses = 0;     ///< lookups no peer could serve
    std::uint64_t errors = 0;     ///< peer transport/typed failures
    std::uint64_t invalidated = 0; ///< stale stamp / echo mismatch
    std::uint64_t stores = 0;     ///< successful per-peer cacheputs
    std::uint64_t storeFailures = 0; ///< per-peer cacheputs lost
    std::uint64_t pending = 0;    ///< write-behind backlog (gauge)
};

/** Read-through / write-behind client over the cacheget/cacheput
 *  verbs (see file comment). Thread-safe; workers call lookup() and
 *  storeBehind() concurrently. */
class RemoteCacheClient
{
  public:
    explicit RemoteCacheClient(const RemoteCacheOptions &options);
    ~RemoteCacheClient();

    RemoteCacheClient(const RemoteCacheClient &) = delete;
    RemoteCacheClient &operator=(const RemoteCacheClient &) = delete;

    bool enabled() const { return !peers_.empty(); }
    const std::vector<PeerEndpoint> &peers() const { return peers_; }

    /**
     * Ask the peers for `spec`'s entry (key = spec.cacheKey(),
     * precomputed by the engine). Returns the first entry that
     * passes the stamp and spec-echo guards; std::nullopt when every
     * peer misses, fails, or serves something stale. Never throws.
     */
    std::optional<CacheEntry> lookup(const JobSpec &spec,
                                     const std::string &key);

    /**
     * Replicate a freshly simulated entry to every peer. With
     * writeBehind the document is queued and the call returns
     * immediately; otherwise it replicates inline. Failures are
     * counted, never raised.
     */
    void storeBehind(const JobSpec &spec, const std::string &key,
                     const CacheEntry &entry);

    /** Drain the write-behind queue (tests, graceful shutdown);
     *  returns once every queued store has been attempted. */
    void flush();

    RemoteCacheStats stats() const;

  private:
    void replicate(const obs::Json &doc);
    void writerLoop();

    std::vector<PeerEndpoint> peers_;
    std::uint64_t timeoutMs_;
    bool writeBehind_;

    mutable std::mutex mutex_; ///< stats_ + queue_ + busy_/stop_
    std::condition_variable cv_;
    RemoteCacheStats stats_;
    std::deque<obs::Json> queue_; ///< pending cacheput documents
    bool busy_ = false;           ///< writer mid-replication
    bool stop_ = false;
    std::thread writer_;
};

} // namespace stitch::svc

#endif // STITCH_SVC_REMOTE_CACHE_HH

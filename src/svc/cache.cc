#include "svc/cache.hh"

#include <cstdio>
#include <filesystem>

#include "common/logging.hh"
#include "sim/report.hh"

namespace stitch::svc
{

namespace fs = std::filesystem;

std::string
cacheStamp()
{
    return detail::formatMessage("job", jobSchemaVersion, "-report",
                                 sim::runReportVersion, "-engine",
                                 engineVersion);
}

ResultCache::ResultCache(std::string dir, std::size_t memEntries)
    : dir_(std::move(dir)), memEntries_(memEntries)
{}

std::string
ResultCache::diskPath(const std::string &key) const
{
    return dir_ + "/" + key + ".json";
}

void
ResultCache::memInsert(const std::string &key,
                       const CacheEntry &entry)
{
    if (memEntries_ == 0)
        return;
    if (auto it = index_.find(key); it != index_.end()) {
        lru_.erase(it->second);
        index_.erase(it);
    }
    lru_.push_front({key, entry});
    index_[key] = lru_.begin();
    while (lru_.size() > memEntries_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

std::optional<CacheEntry>
ResultCache::memLookup(const std::string &key,
                       const telem::TraceContext &trace)
{
    telem::ScopedSpan span(trace, telem::Stage::CacheProbe);
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = index_.find(key); it != index_.end()) {
        // Refresh recency.
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.memHits;
        return it->second->entry;
    }
    return std::nullopt;
}

std::optional<CacheEntry>
ResultCache::diskLookup(const JobSpec &spec,
                        const telem::TraceContext &trace)
{
    telem::ScopedSpan span(trace, telem::Stage::CacheProbe);
    if (!diskEnabled()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return std::nullopt;
    }

    const std::string key = spec.cacheKey();
    const std::string path = diskPath(key);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return std::nullopt;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    // A stale, truncated or foreign file is a miss, never an error:
    // the entry will simply be recomputed and overwritten.
    bool invalid = false;
    try {
        obs::Json doc = obs::Json::parse(text);
        auto strIs = [&](const char *k, const std::string &want) {
            return doc.has(k) &&
                   doc.get(k).kind() == obs::Json::Kind::String &&
                   doc.get(k).asString() == want;
        };
        if (!doc.isObject() || !strIs("schema", cacheEntrySchema) ||
            !doc.has("version") ||
            doc.get("version").kind() != obs::Json::Kind::Int ||
            doc.get("version").asUint() !=
                static_cast<std::uint64_t>(cacheEntryVersion) ||
            !strIs("stamp", cacheStamp()) || !doc.has("report") ||
            !doc.has("derived")) {
            invalid = true;
        } else if (!doc.has("spec") ||
                   doc.get("spec").dump() !=
                       spec.canonicalJson().dump()) {
            // Verify the stored spec echo against the request: a
            // hash collision must degrade to a miss, not a wrong
            // report.
            warn("cache entry ", key,
                 " echoes a different spec; treating as a miss");
            invalid = true;
        } else {
            CacheEntry entry{doc.get("report"), doc.get("derived")};
            std::lock_guard<std::mutex> lock(mutex_);
            memInsert(key, entry);
            ++stats_.diskHits;
            return entry;
        }
    } catch (const FatalError &) {
        invalid = true;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (invalid)
        ++stats_.invalidated;
    ++stats_.misses;
    return std::nullopt;
}

std::optional<CacheEntry>
ResultCache::lookup(const JobSpec &spec,
                    const telem::TraceContext &trace)
{
    if (auto hit = memLookup(spec.cacheKey(), trace))
        return hit;
    return diskLookup(spec, trace);
}

void
ResultCache::store(const JobSpec &spec, const CacheEntry &entry)
{
    const std::string key = spec.cacheKey();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        memInsert(key, entry);
        ++stats_.stores;
    }
    if (!diskEnabled())
        return;
    obs::Json doc = obs::Json::object();
    doc.set("schema", cacheEntrySchema);
    doc.set("version", cacheEntryVersion);
    doc.set("stamp", cacheStamp());
    doc.set("key", key);
    doc.set("spec", spec.canonicalJson());
    doc.set("report", entry.report);
    doc.set("derived", entry.derived);
    obs::writeJsonFile(diskPath(key), doc); // creates dir_, typed err
}

double
ResultCache::Stats::hitRate() const
{
    const std::uint64_t hits = memHits + diskHits;
    const std::uint64_t lookups = hits + misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(lookups);
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace stitch::svc

#include "svc/cache.hh"

#include <cstdio>
#include <filesystem>

#include "common/logging.hh"
#include "sim/report.hh"

namespace stitch::svc
{

namespace fs = std::filesystem;

std::string
cacheStamp()
{
    return detail::formatMessage("job", jobSchemaVersion, "-report",
                                 sim::runReportVersion, "-engine",
                                 engineVersion);
}

ResultCache::ResultCache(std::string dir, std::size_t memEntries)
    : dir_(std::move(dir)), memEntries_(memEntries)
{
    // A crashed predecessor may have left orphan temp files or torn
    // entries behind; sweep them before serving a single lookup.
    recoverDiskStore();
}

std::string
ResultCache::diskPath(const std::string &key) const
{
    return dir_ + "/" + key + ".json";
}

void
ResultCache::memInsert(const std::string &key,
                       const CacheEntry &entry)
{
    if (memEntries_ == 0)
        return;
    if (auto it = index_.find(key); it != index_.end()) {
        lru_.erase(it->second);
        index_.erase(it);
    }
    lru_.push_front({key, entry});
    index_[key] = lru_.begin();
    while (lru_.size() > memEntries_) {
        index_.erase(lru_.back().key);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

std::optional<CacheEntry>
ResultCache::memLookup(const std::string &key,
                       const telem::TraceContext &trace)
{
    telem::ScopedSpan span(trace, telem::Stage::CacheProbe);
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = index_.find(key); it != index_.end()) {
        // Refresh recency.
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.memHits;
        return it->second->entry;
    }
    return std::nullopt;
}

std::optional<CacheEntry>
ResultCache::diskLookup(const JobSpec &spec,
                        const telem::TraceContext &trace)
{
    telem::ScopedSpan span(trace, telem::Stage::CacheProbe);
    if (!diskEnabled()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return std::nullopt;
    }

    const std::string key = spec.cacheKey();
    const std::string path = diskPath(key);
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return std::nullopt;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);

    // A stale, truncated or foreign file is a miss, never an error:
    // the entry will simply be recomputed and overwritten.
    bool invalid = false;
    try {
        obs::Json doc = obs::Json::parse(text);
        auto strIs = [&](const char *k, const std::string &want) {
            return doc.has(k) &&
                   doc.get(k).kind() == obs::Json::Kind::String &&
                   doc.get(k).asString() == want;
        };
        if (!doc.isObject() || !strIs("schema", cacheEntrySchema) ||
            !doc.has("version") ||
            doc.get("version").kind() != obs::Json::Kind::Int ||
            doc.get("version").asUint() !=
                static_cast<std::uint64_t>(cacheEntryVersion) ||
            !strIs("stamp", cacheStamp()) || !doc.has("report") ||
            !doc.has("derived")) {
            invalid = true;
        } else if (!doc.has("spec") ||
                   doc.get("spec").dump() !=
                       spec.canonicalJson().dump()) {
            // Verify the stored spec echo against the request: a
            // hash collision must degrade to a miss, not a wrong
            // report.
            warn("cache entry ", key,
                 " echoes a different spec; treating as a miss");
            invalid = true;
        } else {
            CacheEntry entry{doc.get("report"), doc.get("derived")};
            std::lock_guard<std::mutex> lock(mutex_);
            memInsert(key, entry);
            ++stats_.diskHits;
            return entry;
        }
    } catch (const FatalError &) {
        invalid = true;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (invalid)
        ++stats_.invalidated;
    ++stats_.misses;
    return std::nullopt;
}

std::optional<CacheEntry>
ResultCache::lookup(const JobSpec &spec,
                    const telem::TraceContext &trace)
{
    if (auto hit = memLookup(spec.cacheKey(), trace))
        return hit;
    return diskLookup(spec, trace);
}

void
ResultCache::noteWriteFailure(const std::string &why)
{
    // Called with mutex_ NOT held.
    bool tripped = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.writeFailures;
        if (++consecutiveWriteFailures_ >= writeFailureLimit &&
            !degraded_.load(std::memory_order_relaxed)) {
            degraded_.store(true, std::memory_order_relaxed);
            tripped = true;
        }
    }
    warn("cache store lost (", why, "); result kept in memory only");
    if (tripped)
        warn("cache degraded to memory-only mode after ",
             writeFailureLimit, " consecutive disk write failures");
}

void
ResultCache::store(const JobSpec &spec, const CacheEntry &entry)
{
    const std::string key = spec.cacheKey();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        memInsert(key, entry);
        ++stats_.stores;
    }
    if (!diskEnabled() || memoryOnly())
        return;
    obs::Json doc = obs::Json::object();
    doc.set("schema", cacheEntrySchema);
    doc.set("version", cacheEntryVersion);
    doc.set("stamp", cacheStamp());
    doc.set("key", key);
    doc.set("spec", spec.canonicalJson());
    doc.set("report", entry.report);
    doc.set("derived", entry.derived);
    const std::string text = doc.dump(2) + "\n";
    const std::string finalPath = diskPath(key);
    const std::uint64_t seq =
        storeSeq_.fetch_add(1, std::memory_order_relaxed);

    if (injector_ && injector_->failCacheWrite(seq)) {
        // Chaos: the disk "returned EIO" — same path a real loss
        // takes, so degradation and counters are exercised for real.
        noteWriteFailure("injected write failure");
        return;
    }
    if (injector_ && injector_->tearCacheWrite(seq)) {
        // Chaos: crash between write and rename — leave a truncated
        // file at the *final* path, the exact artifact the recovery
        // scan and the read-side validation must survive.
        try {
            std::FILE *f = obs::openArtifactFile(finalPath);
            std::fwrite(text.data(), 1, text.size() / 2, f);
            std::fclose(f);
        } catch (const FatalError &) {
            // Even the tear failed; nothing observable either way.
        }
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.tornWrites;
        return;
    }

    // Atomic publish: write a private temp file, then rename it over
    // the final path. A reader (or a crash) can only ever observe
    // nothing or the complete entry — never a torn one. The seq in
    // the temp name keeps concurrent writers of one key from
    // clobbering each other's in-progress file.
    const std::string tmpPath = detail::formatMessage(
        dir_, "/", key, ".", seq, ".tmp");
    try {
        std::FILE *f = obs::openArtifactFile(tmpPath); // creates dir_
        const std::size_t wrote =
            std::fwrite(text.data(), 1, text.size(), f);
        const bool flushed = std::fflush(f) == 0;
        std::fclose(f);
        if (wrote != text.size() || !flushed) {
            std::error_code ec;
            fs::remove(tmpPath, ec);
            noteWriteFailure("short write to " + tmpPath);
            return;
        }
        std::error_code ec;
        fs::rename(tmpPath, finalPath, ec);
        if (ec) {
            fs::remove(tmpPath, ec);
            noteWriteFailure("rename failed: " + ec.message());
            return;
        }
    } catch (const FatalError &e) {
        noteWriteFailure(e.what());
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    consecutiveWriteFailures_ = 0;
}

std::size_t
ResultCache::recoverDiskStore()
{
    if (dir_.empty())
        return 0;
    std::error_code ec;
    fs::directory_iterator it(dir_, ec);
    if (ec)
        return 0; // directory not created yet — nothing to recover
    std::size_t actions = 0;
    for (const auto &dirent : it) {
        if (!dirent.is_regular_file(ec) || ec)
            continue;
        const fs::path &path = dirent.path();
        const std::string name = path.filename().string();
        if (name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".tmp") == 0) {
            // Orphaned in-progress write from a crashed process; the
            // rename never happened, so the entry never existed.
            fs::remove(path, ec);
            if (!ec) {
                std::lock_guard<std::mutex> lock(mutex_);
                ++stats_.tmpSwept;
                ++actions;
            }
            continue;
        }
        if (path.extension() != ".json")
            continue; // quarantined files and strangers stay put
        std::FILE *f = std::fopen(path.string().c_str(), "rb");
        if (!f)
            continue;
        std::string text;
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
        bool parses = false;
        try {
            obs::Json doc = obs::Json::parse(text);
            parses = doc.isObject();
        } catch (const FatalError &) {
        }
        if (parses)
            continue;
        // Torn or corrupt entry: move it aside where no lookup can
        // ever read it, but keep the bytes for post-mortems.
        fs::path aside = path;
        aside += ".quarantine";
        fs::rename(path, aside, ec);
        if (ec)
            fs::remove(path, ec); // rename failed; delete instead
        warn("quarantined torn cache entry ", name);
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.quarantined;
        ++actions;
    }
    return actions;
}

double
ResultCache::Stats::hitRate() const
{
    const std::uint64_t hits = memHits + diskHits;
    const std::uint64_t lookups = hits + misses;
    return lookups == 0
               ? 0.0
               : static_cast<double>(hits) /
                     static_cast<double>(lookups);
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = stats_;
    out.degraded = degraded_.load(std::memory_order_relaxed);
    return out;
}

} // namespace stitch::svc

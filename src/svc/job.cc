#include "svc/job.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hh"
#include "sim/system.hh"

namespace stitch::svc
{

using fault::ConfigError;

namespace
{

/** Max queue priority accepted by the schema (kept small: priority
 *  is a scheduling hint, not a score). */
constexpr int maxPriority = 1'000'000;

const char *
kindName(obs::Json::Kind k)
{
    using Kind = obs::Json::Kind;
    switch (k) {
      case Kind::Null: return "null";
      case Kind::Bool: return "bool";
      case Kind::Int: return "integer";
      case Kind::Double: return "number";
      case Kind::String: return "string";
      case Kind::Array: return "array";
      case Kind::Object: return "object";
    }
    return "?";
}

[[noreturn]] void
badField(const char *key, const char *expected, const obs::Json &v)
{
    throw ConfigError(detail::formatMessage(
        "stitch-job field '", key, "': expected ", expected,
        ", got ", kindName(v.kind())));
}

std::string
strField(const obs::Json &v, const char *key)
{
    if (v.kind() != obs::Json::Kind::String)
        badField(key, "a string", v);
    return v.asString();
}

bool
boolField(const obs::Json &v, const char *key)
{
    if (v.kind() != obs::Json::Kind::Bool)
        badField(key, "a bool", v);
    return v.asBool();
}

std::uint64_t
uintField(const obs::Json &v, const char *key)
{
    if (v.kind() == obs::Json::Kind::Int)
        return v.asUint();
    if (v.kind() == obs::Json::Kind::Double) {
        double d = v.asDouble();
        if (d >= 0 && d == std::floor(d))
            return static_cast<std::uint64_t>(d);
    }
    badField(key, "a non-negative integer", v);
}

double
numField(const obs::Json &v, const char *key)
{
    if (v.kind() != obs::Json::Kind::Int &&
        v.kind() != obs::Json::Kind::Double)
        badField(key, "a number", v);
    return v.asDouble();
}

/** Reject any key outside `allowed` — strict parsing is the schema's
 *  typo guard (a silently ignored "scheduler " would run the wrong
 *  simulation and cache it under the wrong identity). */
void
checkKeys(const obs::Json &obj, const char *what,
          std::initializer_list<const char *> allowed)
{
    for (const auto &kv : obj.items()) {
        bool known = false;
        for (const char *key : allowed)
            known = known || kv.first == key;
        if (!known)
            throw ConfigError(detail::formatMessage(
                "unknown key '", kv.first, "' in ", what));
    }
}

fault::SnocLink
linkFromName(const std::string &name)
{
    for (const auto &link : fault::allSnocLinks())
        if (link.name() == name)
            return link;
    throw ConfigError(detail::formatMessage(
        "unknown sNoC link '", name,
        "' (expected a mesh link name like \"t5-t6\")"));
}

fault::FaultPlan
faultsFromJson(const obs::Json &doc)
{
    if (!doc.isObject())
        badField("faults", "an object", doc);
    checkKeys(doc, "stitch-job \"faults\"",
              {"seed", "patch_dead", "links_down", "msg_drop_prob",
               "msg_delay_prob", "msg_delay_cycles",
               "cust_flip_prob"});
    fault::FaultPlan plan;
    if (doc.has("seed"))
        plan.seed = uintField(doc.get("seed"), "faults.seed");
    if (doc.has("patch_dead")) {
        const auto &arr = doc.get("patch_dead");
        if (!arr.isArray())
            badField("faults.patch_dead", "an array", arr);
        for (std::size_t i = 0; i < arr.size(); ++i) {
            auto t = uintField(arr.at(i), "faults.patch_dead[]");
            if (t >= static_cast<std::uint64_t>(numTiles))
                throw ConfigError(detail::formatMessage(
                    "faults.patch_dead names tile ", t,
                    " outside the ", numTiles, "-tile mesh"));
            plan.patchDead[static_cast<std::size_t>(t)] = true;
        }
    }
    if (doc.has("links_down")) {
        const auto &arr = doc.get("links_down");
        if (!arr.isArray())
            badField("faults.links_down", "an array", arr);
        for (std::size_t i = 0; i < arr.size(); ++i)
            plan.snocLinksDown.push_back(linkFromName(
                strField(arr.at(i), "faults.links_down[]")));
    }
    if (doc.has("msg_drop_prob"))
        plan.msgDropProb =
            numField(doc.get("msg_drop_prob"), "faults.msg_drop_prob");
    if (doc.has("msg_delay_prob"))
        plan.msgDelayProb = numField(doc.get("msg_delay_prob"),
                                     "faults.msg_delay_prob");
    if (doc.has("msg_delay_cycles"))
        plan.msgDelayCycles =
            static_cast<Cycles>(uintField(doc.get("msg_delay_cycles"),
                                          "faults.msg_delay_cycles"));
    if (doc.has("cust_flip_prob"))
        plan.custFlipProb = numField(doc.get("cust_flip_prob"),
                                     "faults.cust_flip_prob");
    plan.validate(); // typed, eager
    return plan;
}

/** Canonical faults object: fixed key order, defaults materialized,
 *  collections sorted and deduplicated. */
obs::Json
faultsJson(const fault::FaultPlan &plan)
{
    obs::Json j = obs::Json::object();
    j.set("seed", plan.seed);
    obs::Json dead = obs::Json::array();
    for (TileId t = 0; t < numTiles; ++t)
        if (plan.patchDead[static_cast<std::size_t>(t)])
            dead.push(static_cast<std::uint64_t>(t));
    j.set("patch_dead", dead);
    std::set<std::string> linkNames;
    for (const auto &link : plan.snocLinksDown)
        linkNames.insert(link.name());
    obs::Json links = obs::Json::array();
    for (const auto &name : linkNames)
        links.push(name);
    j.set("links_down", links);
    j.set("msg_drop_prob", plan.msgDropProb);
    j.set("msg_delay_prob", plan.msgDelayProb);
    j.set("msg_delay_cycles", plan.msgDelayCycles);
    j.set("cust_flip_prob", plan.custFlipProb);
    return j;
}

/** splitmix64 finalizer: full 64-bit avalanche (as in fault.cc). */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

const char *
appModeToken(apps::AppMode mode)
{
    switch (mode) {
      case apps::AppMode::Baseline: return "baseline";
      case apps::AppMode::Locus: return "locus";
      case apps::AppMode::StitchNoFusion: return "stitch_no_fusion";
      case apps::AppMode::Stitch: return "stitch";
    }
    STITCH_PANIC("bad AppMode");
}

apps::AppMode
appModeFromToken(const std::string &token)
{
    if (token == "baseline")
        return apps::AppMode::Baseline;
    if (token == "locus")
        return apps::AppMode::Locus;
    if (token == "stitch_no_fusion")
        return apps::AppMode::StitchNoFusion;
    if (token == "stitch")
        return apps::AppMode::Stitch;
    throw ConfigError(detail::formatMessage(
        "unknown mode '", token,
        "' (expected baseline, locus, stitch_no_fusion or stitch)"));
}

const char *
stitchPolicyToken(compiler::StitchPolicy policy)
{
    switch (policy) {
      case compiler::StitchPolicy::Greedy: return "greedy";
      case compiler::StitchPolicy::SinglesOnly: return "singles_only";
      case compiler::StitchPolicy::Auto: return "auto";
    }
    STITCH_PANIC("bad StitchPolicy");
}

compiler::StitchPolicy
stitchPolicyFromToken(const std::string &token)
{
    if (token == "greedy")
        return compiler::StitchPolicy::Greedy;
    if (token == "singles_only")
        return compiler::StitchPolicy::SinglesOnly;
    if (token == "auto")
        return compiler::StitchPolicy::Auto;
    throw ConfigError(detail::formatMessage(
        "unknown policy '", token,
        "' (expected greedy, singles_only or auto)"));
}

JobSpec
JobSpec::fromJson(const obs::Json &doc)
{
    if (!doc.isObject())
        throw ConfigError("stitch-job document is not a JSON object");
    checkKeys(doc, "stitch-job document",
              {"schema", "version", "name", "priority", "deadline_ms",
               "app", "mode", "policy", "scheduler", "samples_short",
               "samples_long", "max_instructions", "health", "faults",
               "artifacts"});
    if (!doc.has("schema") ||
        strField(doc.get("schema"), "schema") != jobSchema)
        throw ConfigError(detail::formatMessage(
            "document is not a \"", jobSchema, "\" job"));
    if (!doc.has("version") ||
        uintField(doc.get("version"), "version") !=
            static_cast<std::uint64_t>(jobSchemaVersion))
        throw ConfigError(detail::formatMessage(
            "unsupported ", jobSchema, " version (expected ",
            jobSchemaVersion, ")"));

    JobSpec spec;
    if (doc.has("name"))
        spec.name = strField(doc.get("name"), "name");
    if (doc.has("priority"))
        spec.priority = static_cast<int>(
            uintField(doc.get("priority"), "priority"));
    if (doc.has("deadline_ms"))
        spec.deadlineMs =
            uintField(doc.get("deadline_ms"), "deadline_ms");
    if (!doc.has("app"))
        throw ConfigError("stitch-job is missing the \"app\" field");
    spec.app = strField(doc.get("app"), "app");
    if (doc.has("mode"))
        spec.mode =
            appModeFromToken(strField(doc.get("mode"), "mode"));
    if (doc.has("policy"))
        spec.policy = stitchPolicyFromToken(
            strField(doc.get("policy"), "policy"));
    if (doc.has("scheduler"))
        spec.scheduler = sim::schedulerKindFromName(
            strField(doc.get("scheduler"), "scheduler"));
    if (doc.has("samples_short"))
        spec.samplesShort = static_cast<int>(
            uintField(doc.get("samples_short"), "samples_short"));
    if (doc.has("samples_long"))
        spec.samplesLong = static_cast<int>(
            uintField(doc.get("samples_long"), "samples_long"));
    if (doc.has("max_instructions"))
        spec.maxInstructions =
            uintField(doc.get("max_instructions"), "max_instructions");
    if (doc.has("health")) {
        std::string h = strField(doc.get("health"), "health");
        if (h == "from_faults")
            spec.healthFromFaults = true;
        else if (h != "healthy")
            throw ConfigError(detail::formatMessage(
                "unknown health '", h,
                "' (expected healthy or from_faults)"));
    }
    if (doc.has("faults"))
        spec.faults = faultsFromJson(doc.get("faults"));
    if (doc.has("artifacts")) {
        const auto &art = doc.get("artifacts");
        if (!art.isObject())
            badField("artifacts", "an object", art);
        checkKeys(art, "stitch-job \"artifacts\"",
                  {"profile", "energy"});
        if (art.has("profile"))
            spec.artifacts.profile =
                boolField(art.get("profile"), "artifacts.profile");
        if (art.has("energy"))
            spec.artifacts.energy =
                boolField(art.get("energy"), "artifacts.energy");
    }
    spec.validate();
    spec.app = spec.resolveApp().name; // canonical full name
    return spec;
}

void
JobSpec::validate() const
{
    if (priority < 0 || priority > maxPriority)
        throw ConfigError(detail::formatMessage(
            "priority ", priority, " outside [0, ", maxPriority,
            "]"));
    if (!(samplesShort >= 1 && samplesLong > samplesShort))
        throw ConfigError(detail::formatMessage(
            "invalid sample window: short=", samplesShort,
            " long=", samplesLong, " (need 1 <= short < long)"));
    faults.validate();
    resolveApp();
}

const apps::AppSpec &
JobSpec::resolveApp() const
{
    static const auto all = apps::allApps();
    const apps::AppSpec *match = nullptr;
    for (const auto &candidate : all) {
        if (candidate.name == app)
            return candidate; // exact name wins outright
        if (candidate.name.rfind(app, 0) == 0) {
            if (match)
                throw ConfigError(detail::formatMessage(
                    "app '", app, "' is ambiguous (matches ",
                    match->name, " and ", candidate.name, ")"));
            match = &candidate;
        }
    }
    if (!match)
        throw ConfigError(detail::formatMessage(
            "unknown app '", app, "'"));
    return *match;
}

apps::RunConfig
JobSpec::runConfig() const
{
    apps::RunConfig cfg;
    cfg.policy = policy;
    cfg.scheduler = scheduler;
    cfg.faults = faults;
    cfg.health = healthFromFaults
                     ? fault::ArchHealth::fromPlan(faults)
                     : fault::ArchHealth::healthy();
    cfg.maxInstructions = maxInstructions;
    cfg.samplesShort = samplesShort;
    cfg.samplesLong = samplesLong;
    return cfg;
}

obs::Json
JobSpec::canonicalJson() const
{
    obs::Json j = obs::Json::object();
    j.set("schema", jobSchema);
    j.set("version", jobSchemaVersion);
    j.set("app", resolveApp().name);
    j.set("mode", appModeToken(mode));
    j.set("policy", stitchPolicyToken(policy));
    j.set("scheduler", sim::schedulerKindName(scheduler));
    j.set("samples_short", samplesShort);
    j.set("samples_long", samplesLong);
    j.set("max_instructions", maxInstructions);
    j.set("health", healthFromFaults ? "from_faults" : "healthy");
    j.set("faults", faultsJson(faults));
    obs::Json art = obs::Json::object();
    art.set("profile", artifacts.profile);
    art.set("energy", artifacts.energy);
    j.set("artifacts", art);
    return j;
}

obs::Json
JobSpec::toJson() const
{
    obs::Json j = obs::Json::object();
    j.set("schema", jobSchema);
    j.set("version", jobSchemaVersion);
    if (!name.empty())
        j.set("name", name);
    if (priority != 0)
        j.set("priority", priority);
    if (deadlineMs != 0)
        j.set("deadline_ms", deadlineMs);
    obs::Json canonical = canonicalJson();
    for (const auto &kv : canonical.items())
        if (kv.first != "schema" && kv.first != "version")
            j.set(kv.first, kv.second);
    return j;
}

std::uint64_t
hashBytes(const std::string &bytes)
{
    // Chain splitmix64 avalanches over little-endian 8-byte words;
    // the length seeds the chain so "a" and "a\0" differ.
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^
                      mix64(static_cast<std::uint64_t>(bytes.size()));
    std::size_t i = 0;
    while (i < bytes.size()) {
        std::uint64_t word = 0;
        for (int b = 0; b < 8 && i < bytes.size(); ++b, ++i)
            word |= static_cast<std::uint64_t>(
                        static_cast<unsigned char>(bytes[i]))
                    << (8 * b);
        h = mix64(h ^ word);
    }
    return h;
}

std::string
JobSpec::cacheKey() const
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      hashBytes(canonicalJson().dump())));
    return buf;
}

} // namespace stitch::svc

#include "svc/artifacts.hh"

#include "prof/profile.hh"
#include "sim/report.hh"

namespace stitch::svc
{

obs::Json
appReportJson(const apps::AppRunResult &res,
              const ReportOptions &options)
{
    obs::Json doc = sim::runReport(res.stats);
    if (!res.statsDump.isNull())
        doc.set("stats", res.statsDump);
    if (options.profile) {
        auto profile = prof::buildProfile(
            res.stats, res.stageBindings,
            static_cast<std::uint64_t>(res.samplesLong));
        doc.set("profile", prof::profileJson(profile));
        if (options.timeline)
            if (auto timeline = prof::samplerTimelineJson();
                !timeline.isNull())
                doc.set("profile_timeline", timeline);
    }
    if (options.energy) {
        auto model = power::EnergyModel::standard();
        double pj = prof::runEnergyPj(model, res.stats);
        obs::Json energy = obs::Json::object();
        energy.set("total_energy_pj", pj);
        energy.set("avg_power_mw",
                   power::averagePowerMw(
                       pj, static_cast<double>(res.stats.makespan)));
        doc.set("energy", energy);
    }
    return doc;
}

obs::Json
derivedJson(const apps::AppRunResult &res)
{
    obs::Json j = obs::Json::object();
    j.set("termination",
          fault::terminationName(res.stats.termination));
    j.set("per_sample_cycles", res.perSampleCycles());
    j.set("samples_long", res.samplesLong);
    if (res.hasPlan) {
        int fused = 0, single = 0, software = 0;
        for (const auto &p : res.plan.placements) {
            if (!p.accel)
                ++software;
            else if (p.accel->type ==
                     compiler::AccelTarget::Type::FusedPair)
                ++fused;
            else
                ++single;
        }
        j.set("bottleneck_cycles", res.plan.bottleneckCycles());
        j.set("fused", fused);
        j.set("single", single);
        j.set("software", software);
        j.set("stitch_plan", sim::stitchPlanJson(res.plan));
    }
    return j;
}

} // namespace stitch::svc

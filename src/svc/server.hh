/**
 * @file
 * stitchd's serving loop as a library: a localhost TCP listener that
 * reads one length-prefixed stitch-job document per request, drives
 * it through a svc::JobEngine, and writes back a length-prefixed
 * stitch-response document. Living in the library (rather than the
 * stitchd main) lets a test run server and client in one process and
 * assert on the round-trip.
 *
 * Wire format, both directions: a 4-byte big-endian payload length
 * followed by that many bytes of UTF-8 JSON. One request per
 * connection; the server answers and closes. Responses:
 *
 *   {"schema":"stitch-response","version":1,"status":"ok",
 *    "cached":...,"key":"...","report":{...},"derived":{...}}
 *   {"schema":"stitch-response","version":1,"status":"error",
 *    "error_kind":"config","error":"..."}
 *
 * Malformed frames and invalid specs produce an error response, not a
 * dropped connection — the daemon must survive bad clients. Framing
 * violations are *typed*: an oversized length prefix, a short read
 * (mid-frame disconnect) and a read timeout each answer with an
 * "protocol" error naming the violation, invalid JSON answers
 * "config", and an admission-control rejection answers "overloaded"
 * (the client's cue to back off and retry). Per-connection read
 * timeouts (ServerOptions::readTimeoutMs) stop a stalled client from
 * wedging the single-threaded serve loop.
 *
 * A request whose document carries a "cmd" key is an introspection
 * request, answered from live engine state without touching the job
 * queue:
 *
 *   {"cmd":"healthz"}  -> stitchd-healthz  (liveness + uptime +
 *                         build provenance)
 *   {"cmd":"metrics"}  -> stitchd-metrics  (queue depth, in-flight,
 *                         per-band backlog, cache rates, latency
 *                         quantiles, error ring)
 *   {"cmd":"statz"}    -> stitchd-statz    (metrics + full service
 *                         report: counters, histograms, span rollup,
 *                         SLO status, time-series summary)
 *   {"cmd":"scrape"}   -> stitchd-scrape   (the Prometheus text
 *                         exposition in an "exposition" field, with
 *                         its Content-Type alongside; see
 *                         telem/exposition.hh for the naming
 *                         contract)
 *   {"cmd":"fleetz"}   -> stitchd-fleetz   (a lossless
 *                         MetricSample::toWireJson snapshot plus the
 *                         retained collector windows — the mergeable
 *                         form stitchrouter aggregates fleet-wide)
 *
 * The shared-cache-tier verbs ("cacheget"/"cacheput") let one shard
 * serve its ResultCache to its peers; see cacheVerbResponse below.
 */

#ifndef STITCH_SVC_SERVER_HH
#define STITCH_SVC_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "obs/json.hh"
#include "svc/engine.hh"

namespace stitch::svc
{

inline constexpr const char *responseSchema = "stitch-response";
inline constexpr int responseVersion = 1;

/** Version shared by the stitchd-healthz / stitchd-metrics /
 *  stitchd-statz introspection documents. */
inline constexpr int introspectionVersion = 1;

/** Default upper bound on an accepted request frame; larger lengths
 *  are rejected as malformed (a garbage length prefix must not make
 *  the daemon try to allocate gigabytes). */
inline constexpr std::uint32_t maxRequestBytes = 16u << 20;

/** Serving-loop hardening knobs. */
struct ServerOptions
{
    /** Per-connection request frame cap (length-prefix bound). */
    std::uint32_t maxFrameBytes = maxRequestBytes;

    /** Per-connection receive timeout (SO_RCVTIMEO, ms); a client
     *  that connects and stalls gets a typed "protocol" error
     *  instead of wedging the serve loop. 0 = wait forever. */
    std::uint64_t readTimeoutMs = 5000;
};

/** Localhost request-per-connection server over one JobEngine. */
class Server
{
  public:
    /** A parsed request document in, a response document out — the
     *  generic serving contract the router front-end plugs into.
     *  Framing, hardening and timeouts stay in the Server; the
     *  handler sees only well-formed JSON. A thrown FatalError
     *  answers a typed "config" error, anything else "internal". */
    using RequestHandler =
        std::function<obs::Json(const obs::Json &request)>;

    /**
     * Bind and listen on 127.0.0.1:`port` (0 picks a free port; read
     * it back with port()). Throws fault::ConfigError when the socket
     * cannot be bound.
     */
    Server(JobEngine &engine, std::uint16_t port = 0,
           ServerOptions options = {});

    /** Same listener and framing discipline, but every request is
     *  answered by `handler` instead of a JobEngine — stitchrouter's
     *  front door. */
    Server(RequestHandler handler, std::uint16_t port = 0,
           ServerOptions options = {});
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** The bound port (useful after requesting port 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Accept-and-answer loop. Returns after `maxRequests` requests
     * when positive, otherwise runs until stop(). Connection-level
     * I/O errors are logged and skipped.
     */
    void serve(int maxRequests = 0);

    /**
     * Unblock serve() from another thread or a signal handler;
     * idempotent. Async-signal-safe: shutdown()/close() are on the
     * safe list and the atomic exchange is lock-free. The request
     * being answered when stop() lands still completes (the loop is
     * single-threaded), which is the daemon's drain.
     */
    void stop();

    /** Requests answered since construction. */
    std::uint64_t servedCount() const { return served_; }

    /** Seconds since construction. */
    double uptimeS() const;

    /** The hardening knobs in effect. */
    const ServerOptions &options() const { return options_; }

  private:
    void bindAndListen(std::uint16_t port);

    JobEngine *engine_ = nullptr; ///< null in handler mode
    RequestHandler handler_;      ///< empty in engine mode
    ServerOptions options_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::uint64_t served_ = 0;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/** Build the response document for one job document — the pure part
 *  of the serving loop (submit, run, format). Never throws; every
 *  failure becomes a status:"error" response. When `jobIdOut` is
 *  non-null it receives the submitted job id (-1 if submission
 *  failed) so the caller can attribute the respond stage. */
obs::Json handleRequest(JobEngine &engine, const obs::Json &jobDoc,
                        int *jobIdOut = nullptr);

/** A status:"error" stitch-response with the given typed kind —
 *  shared by the serve loop, the router and the cache-tier verbs so
 *  every failure on the wire carries the same shape. */
obs::Json errorResponseJson(const std::string &kind,
                            const std::string &message);

/**
 * Answer one shared-cache-tier verb against the engine's ResultCache
 * (DESIGN.md §16). Both verbs carry the full spec, and the key must
 * equal the spec's canonical cacheKey() — the collision guard runs
 * on the serving side too, never trusting the peer's key.
 *
 *   {"cmd":"cacheget","key":K,"spec":{...}} ->
 *     stitch-cache-response {status: "hit"|"miss", stamp,
 *     spec_echo, report, derived}
 *   {"cmd":"cacheput","key":K,"stamp":S,"spec":{...},
 *    "report":{...},"derived":{...}} ->
 *     stitch-cache-response {status:"ok", stored:true}
 *
 * A cacheget hit re-runs the version-stamp and byte-exact spec-echo
 * guards (ResultCache::lookup); a cacheput with a stale stamp is
 * rejected with a typed "mismatch" error, so an upgraded shard never
 * poisons an old one (or vice versa).
 */
obs::Json cacheVerbResponse(JobEngine &engine, const obs::Json &doc);

/**
 * Answer one introspection command ("healthz", "metrics", "statz" or
 * "scrape") from live engine state — the pure part of the cmd path, shared by
 * the serve loop and in-process tests. An unknown command produces a
 * status:"error" response document.
 */
obs::Json introspectionResponse(JobEngine &engine,
                                const std::string &cmd,
                                double uptimeS,
                                std::uint64_t served);

/**
 * Client side of the wire format: connect to `host`:`port`, send
 * `jobDoc`, return the parsed response document. Throws
 * fault::ConfigError on connection or framing failures. A positive
 * `timeoutMs` bounds the socket send/receive (SO_SNDTIMEO /
 * SO_RCVTIMEO) so a hung peer surfaces as a transport failure
 * instead of wedging the caller — the router and the remote-cache
 * client depend on this to fail over.
 *
 * An armed `chaos` injector corrupts the request deterministically
 * (keyed on `requestIndex`): a malformed frame sends garbage JSON in
 * a well-formed frame (the server must answer a typed "config"
 * error), a connection reset promises a frame and hangs up mid-body
 * (the server must answer itself a typed "protocol" error; this
 * side throws fault::ConfigError). Null chaos is the seed behaviour.
 */
obs::Json requestReport(const std::string &host, std::uint16_t port,
                        const obs::Json &jobDoc,
                        const ServiceFaultInjector *chaos = nullptr,
                        std::uint64_t requestIndex = 0,
                        std::uint64_t timeoutMs = 0);

/**
 * requestReport with a deterministic jittered retry loop: transport
 * failures (connect/framing, including injected resets) and
 * "overloaded" rejections back off per `policy` (keyed on
 * `requestIndex`) and retry; any other response returns as-is. When
 * the budget runs out the last transport error is rethrown / the
 * last response returned. `attemptsOut`, when non-null, receives the
 * attempts consumed.
 */
obs::Json requestReportWithRetry(
    const std::string &host, std::uint16_t port,
    const obs::Json &jobDoc, const RetryPolicy &policy,
    std::uint64_t requestIndex = 0,
    const ServiceFaultInjector *chaos = nullptr,
    int *attemptsOut = nullptr, std::uint64_t timeoutMs = 0);

} // namespace stitch::svc

#endif // STITCH_SVC_SERVER_HH

/**
 * @file
 * stitchd's serving loop as a library: a localhost TCP listener that
 * reads one length-prefixed stitch-job document per request, drives
 * it through a svc::JobEngine, and writes back a length-prefixed
 * stitch-response document. Living in the library (rather than the
 * stitchd main) lets a test run server and client in one process and
 * assert on the round-trip.
 *
 * Wire format, both directions: a 4-byte big-endian payload length
 * followed by that many bytes of UTF-8 JSON. One request per
 * connection; the server answers and closes. Responses:
 *
 *   {"schema":"stitch-response","version":1,"status":"ok",
 *    "cached":...,"key":"...","report":{...},"derived":{...}}
 *   {"schema":"stitch-response","version":1,"status":"error",
 *    "error_kind":"config","error":"..."}
 *
 * Malformed frames and invalid specs produce an error response, not a
 * dropped connection — the daemon must survive bad clients.
 */

#ifndef STITCH_SVC_SERVER_HH
#define STITCH_SVC_SERVER_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/json.hh"
#include "svc/engine.hh"

namespace stitch::svc
{

inline constexpr const char *responseSchema = "stitch-response";
inline constexpr int responseVersion = 1;

/** Upper bound on an accepted request frame; larger lengths are
 *  rejected as malformed (a garbage length prefix must not make the
 *  daemon try to allocate gigabytes). */
inline constexpr std::uint32_t maxRequestBytes = 16u << 20;

/** Localhost request-per-connection server over one JobEngine. */
class Server
{
  public:
    /**
     * Bind and listen on 127.0.0.1:`port` (0 picks a free port; read
     * it back with port()). Throws fault::ConfigError when the socket
     * cannot be bound.
     */
    Server(JobEngine &engine, std::uint16_t port = 0);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** The bound port (useful after requesting port 0). */
    std::uint16_t port() const { return port_; }

    /**
     * Accept-and-answer loop. Returns after `maxRequests` requests
     * when positive, otherwise runs until stop(). Connection-level
     * I/O errors are logged and skipped.
     */
    void serve(int maxRequests = 0);

    /** Unblock serve() from another thread; idempotent. */
    void stop();

  private:
    JobEngine &engine_;
    int listenFd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
};

/** Build the response document for one job document — the pure part
 *  of the serving loop (submit, run, format). Never throws; every
 *  failure becomes a status:"error" response. */
obs::Json handleRequest(JobEngine &engine, const obs::Json &jobDoc);

/**
 * Client side of the wire format: connect to `host`:`port`, send
 * `jobDoc`, return the parsed response document. Throws
 * fault::ConfigError on connection or framing failures.
 */
obs::Json requestReport(const std::string &host, std::uint16_t port,
                        const obs::Json &jobDoc);

} // namespace stitch::svc

#endif // STITCH_SVC_SERVER_HH

#include "svc/chaos.hh"

#include <cmath>
#include <sstream>

namespace stitch::svc
{

namespace
{

/** splitmix64: a counter-based generator; full 64-bit avalanche. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from stream `stream` at key `n`. */
double
uniform(std::uint64_t seed, std::uint64_t stream, std::uint64_t n)
{
    std::uint64_t bits = mix64(mix64(seed ^ (stream << 32)) + n);
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

// Distinct stream ids per mechanism: arming one mechanism can never
// perturb another's verdicts (same property fault/fault.cc keeps).
constexpr std::uint64_t streamThrow = 1;
constexpr std::uint64_t streamStall = 2;
constexpr std::uint64_t streamCacheFail = 3;
constexpr std::uint64_t streamCacheTear = 4;
constexpr std::uint64_t streamConnReset = 5;
constexpr std::uint64_t streamMalformed = 6;
constexpr std::uint64_t streamBackoff = 7;

/** Fold (job id, attempt) into one stream key without collisions for
 *  any realistic attempt count. */
std::uint64_t
attemptKey(int jobId, int attempt)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                jobId))
            << 16) ^
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(
               attempt));
}

} // namespace

bool
ServiceFaultPlan::anyFault() const
{
    return anyWorkerFault() || anyCacheFault() || anyWireFault();
}

bool
ServiceFaultPlan::anyWorkerFault() const
{
    return workerThrowProb > 0.0 || workerStallProb > 0.0;
}

bool
ServiceFaultPlan::anyCacheFault() const
{
    return cacheWriteFailProb > 0.0 || cacheTornWriteProb > 0.0;
}

bool
ServiceFaultPlan::anyWireFault() const
{
    return connResetProb > 0.0 || malformedFrameProb > 0.0;
}

std::string
ServiceFaultPlan::describe() const
{
    std::ostringstream os;
    const char *sep = "";
    if (workerThrowProb > 0.0) {
        os << sep << "worker throw p=" << workerThrowProb;
        sep = ", ";
    }
    if (workerStallProb > 0.0) {
        os << sep << "worker stall p=" << workerStallProb << " +"
           << stallMs << "ms";
        sep = ", ";
    }
    if (cacheWriteFailProb > 0.0) {
        os << sep << "cache write-fail p=" << cacheWriteFailProb;
        sep = ", ";
    }
    if (cacheTornWriteProb > 0.0) {
        os << sep << "cache torn-write p=" << cacheTornWriteProb;
        sep = ", ";
    }
    if (connResetProb > 0.0) {
        os << sep << "conn reset p=" << connResetProb;
        sep = ", ";
    }
    if (malformedFrameProb > 0.0) {
        os << sep << "malformed frame p=" << malformedFrameProb;
        sep = ", ";
    }
    if (os.str().empty())
        return "healthy";
    return os.str();
}

void
ServiceFaultPlan::validate() const
{
    auto prob = [](double p, const char *what) {
        if (!(p >= 0.0 && p <= 1.0))
            throw fault::ConfigError(detail::formatMessage(
                what, " probability ", p, " outside [0, 1]"));
    };
    prob(workerThrowProb, "worker-throw");
    prob(workerStallProb, "worker-stall");
    prob(cacheWriteFailProb, "cache-write-fail");
    prob(cacheTornWriteProb, "cache-torn-write");
    prob(connResetProb, "connection-reset");
    prob(malformedFrameProb, "malformed-frame");
    if (workerStallProb > 0.0 && stallMs == 0)
        throw fault::ConfigError(
            "worker-stall armed with a zero stall length");
}

ServiceFaultPlan
ServiceFaultPlan::workerThrows(double prob, std::uint64_t seed)
{
    ServiceFaultPlan plan;
    plan.seed = seed;
    plan.workerThrowProb = prob;
    return plan;
}

ServiceFaultPlan
ServiceFaultPlan::workerStalls(double prob, std::uint64_t stallMs,
                               std::uint64_t seed)
{
    ServiceFaultPlan plan;
    plan.seed = seed;
    plan.workerStallProb = prob;
    plan.stallMs = stallMs;
    return plan;
}

ServiceFaultPlan
ServiceFaultPlan::cacheWriteFailures(double prob, std::uint64_t seed)
{
    ServiceFaultPlan plan;
    plan.seed = seed;
    plan.cacheWriteFailProb = prob;
    return plan;
}

ServiceFaultPlan
ServiceFaultPlan::tornCacheEntries(double prob, std::uint64_t seed)
{
    ServiceFaultPlan plan;
    plan.seed = seed;
    plan.cacheTornWriteProb = prob;
    return plan;
}

ServiceFaultPlan
ServiceFaultPlan::connectionResets(double prob, std::uint64_t seed)
{
    ServiceFaultPlan plan;
    plan.seed = seed;
    plan.connResetProb = prob;
    return plan;
}

ServiceFaultPlan
ServiceFaultPlan::malformedFrames(double prob, std::uint64_t seed)
{
    ServiceFaultPlan plan;
    plan.seed = seed;
    plan.malformedFrameProb = prob;
    return plan;
}

ServiceFaultInjector::ServiceFaultInjector(
    const ServiceFaultPlan &plan)
    : plan_(plan)
{
    plan_.validate();
}

bool
ServiceFaultInjector::throwOnAttempt(int jobId, int attempt) const
{
    if (plan_.workerThrowProb <= 0.0)
        return false;
    return uniform(plan_.seed, streamThrow,
                   attemptKey(jobId, attempt)) < plan_.workerThrowProb;
}

std::uint64_t
ServiceFaultInjector::stallUs(int jobId, int attempt) const
{
    if (plan_.workerStallProb <= 0.0)
        return 0;
    if (uniform(plan_.seed, streamStall, attemptKey(jobId, attempt)) >=
        plan_.workerStallProb)
        return 0;
    return plan_.stallMs * 1000;
}

bool
ServiceFaultInjector::failCacheWrite(std::uint64_t storeIndex) const
{
    if (plan_.cacheWriteFailProb <= 0.0)
        return false;
    return uniform(plan_.seed, streamCacheFail, storeIndex) <
           plan_.cacheWriteFailProb;
}

bool
ServiceFaultInjector::tearCacheWrite(std::uint64_t storeIndex) const
{
    if (plan_.cacheTornWriteProb <= 0.0)
        return false;
    return uniform(plan_.seed, streamCacheTear, storeIndex) <
           plan_.cacheTornWriteProb;
}

bool
ServiceFaultInjector::resetConnection(
    std::uint64_t requestIndex) const
{
    if (plan_.connResetProb <= 0.0)
        return false;
    return uniform(plan_.seed, streamConnReset, requestIndex) <
           plan_.connResetProb;
}

bool
ServiceFaultInjector::malformFrame(std::uint64_t requestIndex) const
{
    if (plan_.malformedFrameProb <= 0.0)
        return false;
    return uniform(plan_.seed, streamMalformed, requestIndex) <
           plan_.malformedFrameProb;
}

void
RetryPolicy::validate() const
{
    if (maxAttempts < 1)
        throw fault::ConfigError(detail::formatMessage(
            "retry budget needs at least one attempt, got ",
            maxAttempts));
    if (!(baseDelayMs >= 0.0) || !(maxDelayMs >= 0.0))
        throw fault::ConfigError("negative retry backoff delay");
    if (!(multiplier >= 1.0))
        throw fault::ConfigError(detail::formatMessage(
            "retry backoff multiplier ", multiplier, " below 1"));
}

std::uint64_t
RetryPolicy::delayUsAfter(std::uint64_t key, int attempt) const
{
    // Ceiling for this attempt: base * multiplier^(attempt-1), capped.
    double ceilMs = baseDelayMs *
                    std::pow(multiplier,
                             static_cast<double>(attempt - 1));
    if (ceilMs > maxDelayMs)
        ceilMs = maxDelayMs;
    // Full jitter, but from a keyed stream: reproducible per
    // (seed, key, attempt), uncorrelated across keys.
    double u = uniform(seed, streamBackoff,
                       mix64(key) +
                           static_cast<std::uint64_t>(attempt));
    return static_cast<std::uint64_t>(u * ceilMs * 1000.0);
}

} // namespace stitch::svc

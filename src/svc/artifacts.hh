/**
 * @file
 * The one way a run report document is assembled from an application
 * run. smoke_app, bench_common::writeObsArtifacts and the job engine
 * all built "runReport + stats (+ profile)" by hand; sharing the
 * builder is what makes a stitchq per-job report byte-identical to a
 * serial smoke_app run of the same spec — by construction, not by
 * convention.
 */

#ifndef STITCH_SVC_ARTIFACTS_HH
#define STITCH_SVC_ARTIFACTS_HH

#include "apps/app_runner.hh"
#include "obs/json.hh"

namespace stitch::svc
{

/** Which optional sections to attach to the base run report. */
struct ReportOptions
{
    bool profile = false; ///< report-v3 "profile" attribution section

    /** Attach the obs::Sampler interval timeline when one was
     *  recorded (engine runs never sample, so the key is absent
     *  there either way). Only meaningful with `profile`. */
    bool timeline = true;

    bool energy = false; ///< compact "energy" section (pJ / avg mW)
};

/**
 * The run report document of one application run: the versioned
 * sim::runReport body, the run's stats-registry dump under "stats",
 * and the requested optional sections in fixed order ("profile",
 * "profile_timeline", "energy").
 */
obs::Json appReportJson(const apps::AppRunResult &res,
                        const ReportOptions &options = {});

/**
 * Derived scalars of a run that the report does not carry (they need
 * the two-run AppRunResult, not just RunStats): termination,
 * per-sample cycles, placement mix and the stitch plan. Service
 * clients (batch tables, fault campaigns) read these instead of
 * re-deriving them, and the result cache stores them next to the
 * report so a cache hit can feed the same tables.
 */
obs::Json derivedJson(const apps::AppRunResult &res);

} // namespace stitch::svc

#endif // STITCH_SVC_ARTIFACTS_HH

/**
 * @file
 * Content-addressed result cache for simulation jobs.
 *
 * Identity is the job spec's canonical form (svc/job.hh): the cache
 * key is its hash, and every stored entry echoes the canonical spec
 * so a hit is verified byte-for-byte against what was asked for — a
 * hash collision or a corrupted file degrades to a miss, never to a
 * wrong report.
 *
 * Two layers share one interface: a bounded in-memory LRU (per
 * engine, catches intra-batch duplicates) and an optional on-disk
 * store (`<dir>/<key>.json`, survives processes — a re-submitted
 * batch performs zero simulations). Entries carry a version stamp
 * combining the job-schema, run-report and engine versions; a stamp
 * mismatch invalidates the entry on read, so bumping any of the three
 * retires every stale result at once.
 *
 * The disk layer is crash-safe: every store writes a private
 * `<key>.<seq>.tmp` file and renames it over the final path, so a
 * reader can never observe a half-written entry and a crash leaves
 * at worst an orphaned temp file. recoverDiskStore() (run by the
 * constructor) sweeps those orphans and quarantines any entry that
 * no longer parses — renamed to `<name>.quarantine` so the evidence
 * survives for post-mortems but can never be served. Disk write
 * failures degrade, after a few consecutive losses, to memory-only
 * mode (counted, logged once) instead of failing jobs whose results
 * are perfectly good.
 */

#ifndef STITCH_SVC_CACHE_HH
#define STITCH_SVC_CACHE_HH

#include <atomic>
#include <cstddef>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "obs/json.hh"
#include "svc/chaos.hh"
#include "svc/job.hh"
#include "telem/span.hh"

namespace stitch::svc
{

inline constexpr const char *cacheEntrySchema = "stitch-cache-entry";
inline constexpr int cacheEntryVersion = 1;

/** Bumped whenever the engine changes what a stored result means
 *  (independent of the job-schema and report versions). */
inline constexpr int engineVersion = 1;

/** The invalidation stamp every entry must match to be served. */
std::string cacheStamp();

/** One cached job outcome. */
struct CacheEntry
{
    obs::Json report;  ///< the run report document
    obs::Json derived; ///< svc::derivedJson() scalars
};

/**
 * In-memory LRU + optional on-disk store (see file comment).
 * Thread-safe: every method locks internally, so engine workers can
 * probe and store concurrently. The memory phase (memLookup) is a
 * map probe — cheap enough for the engine to call while holding its
 * claim lock, which is what makes cache-hit attribution
 * deterministic under any worker count.
 */
class ResultCache
{
  public:
    /**
     * @param dir         on-disk store directory; empty disables the
     *                    disk layer. Created on first store.
     * @param memEntries  LRU capacity; 0 disables the memory layer.
     */
    explicit ResultCache(std::string dir = "",
                         std::size_t memEntries = 256);

    /** Probe the memory layer only (refreshes recency). A live
     *  `trace` context records the probe as a cache_probe span. */
    std::optional<CacheEntry>
    memLookup(const std::string &key,
              const telem::TraceContext &trace = {});

    /**
     * Probe the disk layer (verifying stamp and spec echo; a hit is
     * promoted into memory). File I/O and JSON parsing happen here —
     * call without holding external locks. A live `trace` context
     * records the probe as a cache_probe span.
     */
    std::optional<CacheEntry>
    diskLookup(const JobSpec &spec,
               const telem::TraceContext &trace = {});

    /** memLookup then diskLookup — the simple client entry point. */
    std::optional<CacheEntry>
    lookup(const JobSpec &spec,
           const telem::TraceContext &trace = {});

    /**
     * Store the outcome of `spec` in every enabled layer. The disk
     * write is atomic (temp file + rename) and *best-effort*: a
     * failed write is counted and — after `writeFailureLimit`
     * consecutive losses — degrades the cache to memory-only mode,
     * but never throws (the job's result is good; only its
     * persistence is lost).
     */
    void store(const JobSpec &spec, const CacheEntry &entry);

    /**
     * Startup recovery scan of the disk store (no-op when the
     * directory is absent): orphaned `*.tmp` files from a crashed
     * writer are deleted, and entries that no longer parse as JSON
     * objects are renamed to `<name>.quarantine` — kept for
     * post-mortems, never served. Returns tmp-sweeps + quarantines.
     * The constructor runs this; tests may re-run it after seeding
     * torn files.
     */
    std::size_t recoverDiskStore();

    /**
     * Arm deterministic write-failure / torn-write injection (chaos
     * campaign). Non-owning; the injector must outlive the cache.
     * Decisions are keyed on the store ordinal, so a single-worker
     * engine replays them exactly.
     */
    void
    setFaultInjector(const ServiceFaultInjector *injector)
    {
        injector_ = injector;
    }

    /** Consecutive disk write failures that trip memory-only mode. */
    static constexpr std::uint64_t writeFailureLimit = 3;

    bool diskEnabled() const { return !dir_.empty(); }
    bool memEnabled() const { return memEntries_ > 0; }
    bool enabled() const { return diskEnabled() || memEnabled(); }
    const std::string &dir() const { return dir_; }

    /** True once disk *writes* have degraded to memory-only mode
     *  (reads of entries already on disk keep working). */
    bool
    memoryOnly() const
    {
        return degraded_.load(std::memory_order_relaxed);
    }

    /** Lookup/store activity since construction. */
    struct Stats
    {
        std::uint64_t memHits = 0;
        std::uint64_t diskHits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
        std::uint64_t invalidated = 0; ///< stale stamp / bad echo
        std::uint64_t evictions = 0;   ///< LRU capacity evictions
        std::uint64_t writeFailures = 0; ///< disk stores lost
        std::uint64_t tornWrites = 0;  ///< injected torn entries left
        std::uint64_t quarantined = 0; ///< entries quarantined on scan
        std::uint64_t tmpSwept = 0;    ///< orphan tmp files removed
        bool degraded = false;         ///< memory-only mode tripped

        /** Hits over lookups (memory + disk), in [0, 1]. */
        double hitRate() const;
    };
    Stats stats() const;

  private:
    std::string diskPath(const std::string &key) const;
    void memInsert(const std::string &key, const CacheEntry &entry);
    void noteWriteFailure(const std::string &why);

    mutable std::mutex mutex_;
    std::string dir_;
    std::size_t memEntries_;
    Stats stats_;
    std::atomic<bool> degraded_{false};
    std::uint64_t consecutiveWriteFailures_ = 0; ///< under mutex_
    std::atomic<std::uint64_t> storeSeq_{0}; ///< tmp names + chaos key
    const ServiceFaultInjector *injector_ = nullptr;

    /** LRU: most-recent at the front; map values point into lru_. */
    struct MemEntry
    {
        std::string key;
        CacheEntry entry;
    };
    std::list<MemEntry> lru_;
    std::map<std::string, std::list<MemEntry>::iterator> index_;
};

} // namespace stitch::svc

#endif // STITCH_SVC_CACHE_HH

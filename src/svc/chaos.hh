/**
 * @file
 * Deterministic fault injection for the *service* tier — the mirror
 * image, one level up, of fault/fault.hh for the simulated hardware.
 * A ServiceFaultPlan arms failure modes of the job path itself:
 *
 *  - worker exceptions: an attempt throws InjectedFaultError instead
 *    of simulating (a crashed worker thread's moral equivalent);
 *  - worker stalls: an attempt sleeps long enough to trip the
 *    engine's deadline watchdog (a wedged simulation);
 *  - cache write failures: ResultCache::store() behaves as if the
 *    disk returned EIO (degradation path);
 *  - torn cache entries: store() leaves a truncated file behind, as
 *    a crash between write and rename would (recovery-scan path);
 *  - connection resets / malformed frames: the wire client corrupts
 *    or abandons requests (server hardening path).
 *
 * Every decision is drawn from a *keyed* splitmix64 stream — a pure
 * function of (seed, mechanism, identity) where identity is the job
 * id + attempt, the store ordinal, or the request ordinal. Unlike
 * fault/fault.hh's advancing counters (fine inside one deterministic
 * System), keyed draws stay reproducible even when a worker pool
 * claims jobs in a racy order: job 7's third attempt sees the same
 * verdict whether one worker or eight are running.
 *
 * RetryPolicy lives here too: the deterministic jittered exponential
 * backoff schedule shared by the engine's internal re-enqueue path
 * and the stitchd --send wire client.
 */

#ifndef STITCH_SVC_CHAOS_HH
#define STITCH_SVC_CHAOS_HH

#include <cstdint>
#include <string>

#include "fault/fault.hh"

namespace stitch::svc
{

/**
 * A chaos-injected transient failure. The engine treats it as the
 * only *retryable* failure kind: real config/mismatch/sim errors are
 * deterministic and retrying them would just burn the budget.
 */
class InjectedFaultError : public fault::SimError
{
  public:
    explicit InjectedFaultError(const std::string &what)
        : SimError(what)
    {}
};

/**
 * A deterministic service-tier fault scenario. Default-constructed
 * plans inject nothing; named constructors build the chaos
 * campaign's standard scenarios.
 */
struct ServiceFaultPlan
{
    /** Seeds the per-decision splitmix64 streams. */
    std::uint64_t seed = 0;

    /** Worker attempt throws InjectedFaultError before simulating. */
    double workerThrowProb = 0.0;

    /** Worker attempt stalls for `stallMs` before simulating. */
    double workerStallProb = 0.0;
    std::uint64_t stallMs = 0; ///< stall length per stalled attempt

    /** ResultCache::store() disk write fails (as if EIO). */
    double cacheWriteFailProb = 0.0;

    /** store() leaves a truncated entry at the *final* path — the
     *  torn file a crash between write and rename would leave. */
    double cacheTornWriteProb = 0.0;

    /** Wire client closes the socket mid-request (RST analogue). */
    double connResetProb = 0.0;

    /** Wire client sends a garbage frame instead of the job. */
    double malformedFrameProb = 0.0;

    /** True if any mechanism is armed. */
    bool anyFault() const;

    /** True if a worker-path mechanism (throw/stall) is armed. */
    bool anyWorkerFault() const;

    /** True if a cache-path mechanism is armed. */
    bool anyCacheFault() const;

    /** True if a wire-path mechanism is armed. */
    bool anyWireFault() const;

    /** Human-readable scenario summary ("worker throw p=0.3", ...). */
    std::string describe() const;

    /** Typed validation (probabilities in [0, 1], stall length). */
    void validate() const;

    static ServiceFaultPlan none() { return ServiceFaultPlan{}; }
    static ServiceFaultPlan workerThrows(double prob,
                                         std::uint64_t seed);
    static ServiceFaultPlan workerStalls(double prob,
                                         std::uint64_t stallMs,
                                         std::uint64_t seed);
    static ServiceFaultPlan cacheWriteFailures(double prob,
                                               std::uint64_t seed);
    static ServiceFaultPlan tornCacheEntries(double prob,
                                             std::uint64_t seed);
    static ServiceFaultPlan connectionResets(double prob,
                                             std::uint64_t seed);
    static ServiceFaultPlan malformedFrames(double prob,
                                            std::uint64_t seed);
};

/**
 * Draws the plan's decisions from keyed splitmix64 streams, one per
 * mechanism. Stateless by design (every query is a pure function of
 * plan + identity), so one injector can be shared by every worker
 * without a lock and outcomes cannot depend on claim order.
 */
class ServiceFaultInjector
{
  public:
    explicit ServiceFaultInjector(
        const ServiceFaultPlan &plan = ServiceFaultPlan{});

    const ServiceFaultPlan &plan() const { return plan_; }
    bool active() const { return plan_.anyFault(); }

    /** Should attempt `attempt` of job `jobId` throw? */
    bool throwOnAttempt(int jobId, int attempt) const;

    /** Stall (µs) before attempt `attempt` of job `jobId`; 0 = none. */
    std::uint64_t stallUs(int jobId, int attempt) const;

    /** Should the `storeIndex`-th cache store fail outright? */
    bool failCacheWrite(std::uint64_t storeIndex) const;

    /** Should the `storeIndex`-th cache store leave a torn entry? */
    bool tearCacheWrite(std::uint64_t storeIndex) const;

    /** Should the `requestIndex`-th wire request reset mid-send? */
    bool resetConnection(std::uint64_t requestIndex) const;

    /** Should the `requestIndex`-th wire request be garbage? */
    bool malformFrame(std::uint64_t requestIndex) const;

  private:
    ServiceFaultPlan plan_;
};

/**
 * Deterministic retry with jittered exponential backoff. Attempt n
 * (1-based; attempt 1 is the original try) that fails retryably is
 * followed, while n < maxAttempts, by a wait of
 *
 *     uniform[0, 1) * min(maxDelayMs, baseDelayMs * multiplier^(n-1))
 *
 * where the uniform draw is keyed on (seed, key, n) — "full jitter"
 * in the AWS taxonomy, but reproducible: same policy, same key, same
 * schedule. `key` is the job id (engine path) or the request ordinal
 * (wire path).
 */
struct RetryPolicy
{
    int maxAttempts = 1;       ///< total attempts; 1 = never retry
    double baseDelayMs = 2.0;  ///< first backoff ceiling
    double maxDelayMs = 250.0; ///< backoff ceiling cap
    double multiplier = 2.0;   ///< ceiling growth per attempt
    std::uint64_t seed = 0;    ///< jitter stream seed

    bool enabled() const { return maxAttempts > 1; }

    /** Typed validation (attempts >= 1, delays/multiplier sane). */
    void validate() const;

    /** Jittered backoff (µs) after failed attempt `attempt`. */
    std::uint64_t delayUsAfter(std::uint64_t key, int attempt) const;
};

} // namespace stitch::svc

#endif // STITCH_SVC_CHAOS_HH

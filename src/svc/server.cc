#include "svc/server.hh"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <thread>
#include <unistd.h>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/buildinfo.hh"
#include "telem/exposition.hh"

namespace stitch::svc
{

namespace
{

/** send() until done; false on error. MSG_NOSIGNAL: a peer that hung
 *  up mid-response must surface as EPIPE (-> the "client hung up"
 *  warning), never as a process-fatal SIGPIPE. */
bool
writeAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

/** read() until `len` bytes; false on error/EOF. */
bool
readAll(int fd, void *data, std::size_t len)
{
    char *p = static_cast<char *>(data);
    while (len > 0) {
        ssize_t n = ::read(fd, p, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0) {
            errno = 0;    // clean EOF, not an I/O error
            return false; // peer closed mid-frame
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
sendFrame(int fd, const std::string &payload)
{
    std::uint32_t len = htonl(
        static_cast<std::uint32_t>(payload.size()));
    return writeAll(fd, &len, sizeof len) &&
           writeAll(fd, payload.data(), payload.size());
}

/** Typed outcome of one frame receive — the serve loop answers each
 *  violation with a distinct protocol error instead of one generic
 *  "malformed" (or, worse, a silent close). */
enum class RecvStatus
{
    Ok,
    Closed,   ///< EOF before a complete length prefix
    Oversize, ///< length prefix beyond the configured frame cap
    Short,    ///< peer hung up (or I/O error) mid-body
    Timeout,  ///< SO_RCVTIMEO expired mid-read
};

struct RecvResult
{
    RecvStatus status = RecvStatus::Ok;
    std::uint32_t announced = 0; ///< the length the prefix promised
};

RecvResult
recvFrame(int fd, std::string &payload,
          std::uint32_t maxBytes = maxRequestBytes)
{
    auto ioStatus = [] {
        return (errno == EAGAIN || errno == EWOULDBLOCK)
                   ? RecvStatus::Timeout
                   : RecvStatus::Short;
    };
    std::uint32_t len = 0;
    if (!readAll(fd, &len, sizeof len))
        return {errno == 0 ? RecvStatus::Closed : ioStatus(), 0};
    len = ntohl(len);
    if (len > maxBytes)
        return {RecvStatus::Oversize, len};
    payload.resize(len);
    if (len > 0 && !readAll(fd, payload.data(), len))
        return {ioStatus(), len};
    return {RecvStatus::Ok, len};
}

} // namespace

obs::Json
errorResponseJson(const std::string &kind,
                  const std::string &message)
{
    obs::Json doc = obs::Json::object();
    doc.set("schema", responseSchema);
    doc.set("version", responseVersion);
    doc.set("status", "error");
    doc.set("error_kind", kind);
    doc.set("error", message);
    return doc;
}

namespace
{

obs::Json
errorResponse(const std::string &kind, const std::string &message)
{
    return errorResponseJson(kind, message);
}

} // namespace

obs::Json
handleRequest(JobEngine &engine, const obs::Json &jobDoc,
              int *jobIdOut)
{
    int id = -1;
    if (jobIdOut)
        *jobIdOut = -1;
    try {
        id = engine.submit(jobDoc);
    } catch (const OverloadedError &e) {
        // Admission-control rejection: the typed cue for the client
        // to back off and retry (requestReportWithRetry does).
        return errorResponse("overloaded", e.what());
    } catch (const fault::ConfigError &e) {
        return errorResponse("config", e.what());
    } catch (const std::exception &e) {
        return errorResponse("internal", e.what());
    }
    if (jobIdOut)
        *jobIdOut = id;
    engine.run();

    const JobResult &result = engine.result(id);
    if (result.status != JobResult::Status::Completed) {
        obs::Json doc = errorResponse(
            result.errorKind.empty() ? "internal" : result.errorKind,
            result.error.empty()
                ? std::string("job ended ") +
                      jobStatusName(result.status)
                : result.error);
        doc.set("trace_id", telem::traceIdHex(result.traceId));
        return doc;
    }

    obs::Json doc = obs::Json::object();
    doc.set("schema", responseSchema);
    doc.set("version", responseVersion);
    doc.set("status", "ok");
    doc.set("cached", result.cached);
    doc.set("key", result.key);
    doc.set("trace_id", telem::traceIdHex(result.traceId));
    doc.set("report", result.report);
    doc.set("derived", result.derived);
    return doc;
}

obs::Json
cacheVerbResponse(JobEngine &engine, const obs::Json &doc)
{
    const std::string cmd = doc.get("cmd").asString();
    try {
        if (!doc.has("key") || !doc.has("spec"))
            return errorResponse(
                "config", cmd + " needs \"key\" and \"spec\"");
        const JobSpec spec = JobSpec::fromJson(doc.get("spec"));
        const std::string key = doc.get("key").asString();
        if (spec.cacheKey() != key)
            return errorResponse(
                "config",
                detail::formatMessage(
                    "cache key ", key,
                    " does not match the spec's canonical form (",
                    spec.cacheKey(), ")"));

        obs::Json resp = obs::Json::object();
        resp.set("schema", "stitch-cache-response");
        resp.set("version", 1);
        resp.set("key", key);
        resp.set("stamp", cacheStamp());

        if (cmd == "cacheget") {
            auto hit = engine.cache().lookup(spec);
            if (hit) {
                resp.set("status", "hit");
                // The serving side's own canonicalization of the
                // requested spec: the client compares it byte-exact
                // against its local canonical form, so a schema skew
                // between shards degrades to a miss, never to a
                // wrong report.
                resp.set("spec_echo", spec.canonicalJson().dump());
                resp.set("report", hit->report);
                resp.set("derived", hit->derived);
            } else {
                resp.set("status", "miss");
            }
            return resp;
        }

        // cacheput: refuse entries minted under a different
        // job-schema/report/engine version — the stamp guard that
        // invalidates stale disk entries applies to remote pushes
        // before they are ever stored.
        if (!doc.has("stamp") ||
            doc.get("stamp").asString() != cacheStamp())
            return errorResponse(
                "mismatch",
                detail::formatMessage(
                    "cacheput stamp ",
                    doc.has("stamp")
                        ? doc.get("stamp").asString()
                        : std::string("(missing)"),
                    " does not match this shard's ", cacheStamp()));
        if (!doc.has("report") || !doc.has("derived"))
            return errorResponse(
                "config", "cacheput needs \"report\" and "
                          "\"derived\"");
        CacheEntry entry;
        entry.report = doc.get("report");
        entry.derived = doc.get("derived");
        engine.cache().store(spec, entry);
        resp.set("status", "ok");
        resp.set("stored", true);
        return resp;
    } catch (const fault::ConfigError &e) {
        return errorResponse("config", e.what());
    } catch (const std::exception &e) {
        return errorResponse("internal", e.what());
    }
}

obs::Json
introspectionResponse(JobEngine &engine, const std::string &cmd,
                      double uptimeS, std::uint64_t served)
{
    auto stamp = [&](obs::Json &doc, const char *schema) {
        doc.set("schema", schema);
        doc.set("version", introspectionVersion);
        doc.set("uptime_s", uptimeS);
        doc.set("served", served);
    };

    if (cmd == "healthz") {
        // Liveness only: answered from two counters, cheap enough to
        // poll tightly.
        obs::Json live = engine.introspectionJson();
        obs::Json doc = obs::Json::object();
        stamp(doc, "stitchd-healthz");
        doc.set("status", "ok");
        doc.set("queue_depth", live.get("queue_depth"));
        doc.set("in_flight", live.get("in_flight"));
        doc.set("build", obs::buildInfoJson());
        return doc;
    }
    if (cmd == "metrics") {
        obs::Json doc = engine.introspectionJson();
        stamp(doc, "stitchd-metrics");
        return doc;
    }
    if (cmd == "statz") {
        obs::Json doc = engine.introspectionJson();
        stamp(doc, "stitchd-statz");
        doc.set("service", engine.serviceReportJson());
        return doc;
    }
    if (cmd == "fleetz") {
        // The mergeable snapshot: a lossless MetricSample (bucket-
        // level histograms) plus the retained collector windows.
        // stitchrouter folds these across shards with the same
        // merge algebra the in-process telemetry uses.
        obs::Json doc = obs::Json::object();
        stamp(doc, "stitchd-fleetz");
        doc.set("build", obs::buildInfoJson());
        doc.set("sample", engine.metricsSnapshot().toWireJson());
        obs::Json windows = obs::Json::array();
        if (const telem::Collector *collector = engine.collector())
            for (const telem::Window &w :
                 collector->series().snapshot())
                windows.push(w.toWireJson());
        doc.set("windows", std::move(windows));
        return doc;
    }
    if (cmd == "scrape") {
        // Prometheus text exposition, carried in a JSON envelope so
        // the one wire format serves both humans and scrapers
        // (stitchtop --cmd=scrape unwraps it back to plain text).
        obs::Json doc = obs::Json::object();
        stamp(doc, "stitchd-scrape");
        doc.set("content_type", telem::expositionContentType);
        doc.set("exposition",
                engine.expositionText(uptimeS, served));
        return doc;
    }
    return errorResponse("config", "unknown cmd: " + cmd);
}

Server::Server(JobEngine &engine, std::uint16_t port,
               ServerOptions options)
    : engine_(&engine), options_(options)
{
    bindAndListen(port);
}

Server::Server(RequestHandler handler, std::uint16_t port,
               ServerOptions options)
    : handler_(std::move(handler)), options_(options)
{
    if (!handler_)
        throw fault::ConfigError(
            "stitchd: Server needs a non-empty request handler");
    bindAndListen(port);
}

void
Server::bindAndListen(std::uint16_t port)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw fault::ConfigError(detail::formatMessage(
            "stitchd: socket(): ", std::strerror(errno)));

    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) < 0 ||
        ::listen(listenFd_, 16) < 0) {
        const std::string why = std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw fault::ConfigError(detail::formatMessage(
            "stitchd: cannot listen on 127.0.0.1:", port, ": ",
            why));
    }

    socklen_t addrLen = sizeof addr;
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&addr),
                      &addrLen) == 0)
        port_ = ntohs(addr.sin_port);
    else
        port_ = port;
}

Server::~Server()
{
    stop();
}

void
Server::stop()
{
    if (stopping_.exchange(true))
        return;
    if (listenFd_ >= 0) {
        // shutdown() wakes a blocked accept(); close() alone may not.
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
}

void
Server::serve(int maxRequests)
{
    int served = 0;
    while (!stopping_.load() &&
           (maxRequests <= 0 || served < maxRequests)) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listener closed (stop()) or broken
        }
        ++served;
        ++served_;

        if (options_.readTimeoutMs > 0) {
            // A client that connects and stalls must not wedge the
            // single-threaded serve loop forever.
            timeval tv{};
            tv.tv_sec = static_cast<time_t>(
                options_.readTimeoutMs / 1000);
            tv.tv_usec = static_cast<suseconds_t>(
                (options_.readTimeoutMs % 1000) * 1000);
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv,
                         sizeof tv);
        }

        std::string payload;
        obs::Json response;
        int jobId = -1;
        const RecvResult recv =
            recvFrame(fd, payload, options_.maxFrameBytes);
        if (recv.status != RecvStatus::Ok) {
            // Typed, best-effort reply: a peer that already hung up
            // just loses the write, which is fine — nothing to
            // answer a closed socket with.
            switch (recv.status) {
            case RecvStatus::Oversize:
                response = errorResponse(
                    "protocol",
                    detail::formatMessage(
                        "request frame of ", recv.announced,
                        " bytes exceeds the ",
                        options_.maxFrameBytes, "-byte limit"));
                break;
            case RecvStatus::Timeout:
                response = errorResponse(
                    "protocol",
                    detail::formatMessage(
                        "read timed out after ",
                        options_.readTimeoutMs, " ms mid-request"));
                break;
            case RecvStatus::Closed:
            case RecvStatus::Short:
            default:
                response = errorResponse(
                    "protocol",
                    "connection closed before a complete frame "
                    "arrived");
                break;
            }
            // A framing violation never became a job, so no ring
            // exists for it; the engine dumps a synthetic
            // kind="protocol" flight record instead.
            if (engine_)
                engine_->recordProtocolFailure(
                    response.get("error").asString());
        } else {
            try {
                obs::Json doc = obs::Json::parse(payload);
                if (handler_) {
                    response = handler_(doc);
                } else if (doc.isObject() && doc.has("cmd")) {
                    const std::string cmd =
                        doc.get("cmd").asString();
                    response =
                        (cmd == "cacheget" || cmd == "cacheput")
                            ? cacheVerbResponse(*engine_, doc)
                            : introspectionResponse(*engine_, cmd,
                                                    uptimeS(),
                                                    served_);
                } else {
                    response =
                        handleRequest(*engine_, doc, &jobId);
                }
            } catch (const FatalError &e) {
                // Json::parse fatals on malformed text; a handler
                // that fatals answers typed too.
                response = errorResponse("config", e.what());
                if (engine_)
                    engine_->recordProtocolFailure(e.what());
            } catch (const std::exception &e) {
                response = errorResponse("internal", e.what());
            }
        }
        {
            // Serialization + write-back is the respond stage; with
            // telemetry off traceContext() returns a null-sink
            // context and this is a no-op.
            telem::ScopedSpan span(engine_
                                       ? engine_->traceContext(jobId)
                                       : telem::TraceContext{},
                                   telem::Stage::Respond);
            if (!sendFrame(fd, response.dump(2) + "\n"))
                warn("stitchd: client hung up before the response");
        }
        ::close(fd);
    }
}

double
Server::uptimeS() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

obs::Json
requestReport(const std::string &host, std::uint16_t port,
              const obs::Json &jobDoc,
              const ServiceFaultInjector *chaos,
              std::uint64_t requestIndex, std::uint64_t timeoutMs)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw fault::ConfigError(detail::formatMessage(
            "stitchq: socket(): ", std::strerror(errno)));
    if (timeoutMs > 0) {
        // Bound both directions: a peer that accepted the connection
        // but never answers (a SIGKILLed-but-lingering shard, a
        // wedged daemon) must surface as a transport failure the
        // caller can fail over on, not a hang.
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(timeoutMs / 1000);
        tv.tv_usec =
            static_cast<suseconds_t>((timeoutMs % 1000) * 1000);
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw fault::ConfigError(detail::formatMessage(
            "not an IPv4 address: ", host));
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) < 0) {
        const std::string why = std::strerror(errno);
        ::close(fd);
        throw fault::ConfigError(detail::formatMessage(
            "cannot connect to ", host, ":", port, ": ", why));
    }

    if (chaos && chaos->resetConnection(requestIndex)) {
        // Injected mid-frame disconnect: promise a 64-byte body,
        // deliver 10, hang up. The server must answer *itself* with
        // a typed protocol error — this side has nothing to read.
        std::uint32_t len = htonl(64);
        (void)writeAll(fd, &len, sizeof len);
        (void)writeAll(fd, "0123456789", 10);
        ::close(fd);
        throw fault::ConfigError(detail::formatMessage(
            "injected connection reset on request ", requestIndex));
    }

    const std::string body =
        chaos && chaos->malformFrame(requestIndex)
            ? std::string("\x7fnot json \x01\x02\x03 garbage")
            : jobDoc.dump();

    std::string payload;
    const bool ok = sendFrame(fd, body) &&
                    recvFrame(fd, payload).status == RecvStatus::Ok;
    ::close(fd);
    if (!ok)
        throw fault::ConfigError(detail::formatMessage(
            "request to ", host, ":", port,
            " failed mid-frame"));
    return obs::Json::parse(payload);
}

obs::Json
requestReportWithRetry(const std::string &host, std::uint16_t port,
                       const obs::Json &jobDoc,
                       const RetryPolicy &policy,
                       std::uint64_t requestIndex,
                       const ServiceFaultInjector *chaos,
                       int *attemptsOut, std::uint64_t timeoutMs)
{
    policy.validate();
    for (int attempt = 1;; ++attempt) {
        if (attemptsOut)
            *attemptsOut = attempt;
        const bool lastAttempt = attempt >= policy.maxAttempts;
        // Fold the attempt into the chaos key: a transient injected
        // failure on attempt 1 must be a *fresh* draw on attempt 2,
        // or no retry could ever succeed.
        const std::uint64_t chaosKey =
            requestIndex ^
            (static_cast<std::uint64_t>(attempt - 1) << 32);
        try {
            obs::Json response = requestReport(
                host, port, jobDoc, chaos, chaosKey, timeoutMs);
            const bool overloaded =
                response.isObject() && response.has("error_kind") &&
                response.get("error_kind").kind() ==
                    obs::Json::Kind::String &&
                response.get("error_kind").asString() ==
                    "overloaded";
            if (!overloaded || lastAttempt)
                return response;
        } catch (const fault::ConfigError &) {
            // Transport-level failure (connect refused, mid-frame
            // loss, injected reset): retryable until the budget is
            // spent.
            if (lastAttempt)
                throw;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(
            policy.delayUsAfter(requestIndex, attempt)));
    }
}

} // namespace stitch::svc

/**
 * @file
 * The `stitch-job` v1 schema: one versioned JSON document that fully
 * describes one simulation run — application, architecture mode,
 * stitching policy, scheduler, measurement window, fault scenario,
 * health mask and requested artifacts. Clients (stitchq batches, the
 * stitchd socket loop, benches, CI) submit these to svc::JobEngine
 * instead of hand-rolling compile/stitch/simulate sequences.
 *
 * A spec has a *canonical form*: a JSON serialization with a fixed
 * key order, every default materialized, collections sorted and
 * deduplicated, and presentation-only fields (the label and the queue
 * priority) stripped. Two specs describe the same simulation iff
 * their canonical forms are byte-identical, which makes the canonical
 * form the cache identity: cacheKey() is a splitmix64-based hash of
 * those bytes (see svc/cache.hh for the collision guard).
 */

#ifndef STITCH_SVC_JOB_HH
#define STITCH_SVC_JOB_HH

#include <cstdint>
#include <string>

#include "apps/app_runner.hh"
#include "apps/apps.hh"
#include "fault/fault.hh"
#include "obs/json.hh"

namespace stitch::svc
{

inline constexpr const char *jobSchema = "stitch-job";
inline constexpr int jobSchemaVersion = 1;

/** Which optional sections the job's report should carry. */
struct JobArtifacts
{
    bool profile = false; ///< report-v3 "profile" attribution section
    bool energy = false;  ///< compact "energy" section (pJ / avg mW)

    bool operator==(const JobArtifacts &) const = default;
};

/** Parse / print an AppMode token (baseline|locus|stitch_no_fusion|
 *  stitch); parse throws fault::ConfigError on unknown tokens. */
const char *appModeToken(apps::AppMode mode);
apps::AppMode appModeFromToken(const std::string &token);

/** Parse / print a StitchPolicy token (greedy|singles_only|auto). */
const char *stitchPolicyToken(compiler::StitchPolicy policy);
compiler::StitchPolicy
stitchPolicyFromToken(const std::string &token);

/** One fully-specified simulation job. */
struct JobSpec
{
    // Presentation / queueing only — NOT part of the cache identity.
    std::string name; ///< free-form label (report file naming)
    int priority = 0; ///< higher runs first; FIFO within a priority

    /**
     * Wall-clock deadline (ms) from claim to finish; 0 = none. Like
     * priority, a *service* property, not a simulation property: two
     * jobs differing only in deadline describe the same run and share
     * one cache entry, so this is NOT part of the cache identity.
     * Distinct from maxInstructions (a simulated-work budget): the
     * deadline bounds real time, and an expired one terminates the
     * job with the typed "deadline" failure kind.
     */
    std::uint64_t deadlineMs = 0;

    // The simulation itself — every field below is hashed.
    std::string app; ///< full catalog name (resolved at parse time)
    apps::AppMode mode = apps::AppMode::Stitch;
    compiler::StitchPolicy policy = compiler::StitchPolicy::Auto;
    sim::SchedulerKind scheduler = sim::SchedulerKind::Slice;
    int samplesShort = 4;
    int samplesLong = 12;

    /** Instruction budget per simulated run; 0 = runaway backstop.
     *  The engine's job "timeout": an exhausted budget terminates the
     *  run with Termination::InstructionLimit, never an error. */
    std::uint64_t maxInstructions = 0;

    fault::FaultPlan faults;

    /** false: stitch for healthy hardware (the "naive" run of a fault
     *  campaign); true: derive the ArchHealth mask from `faults` so
     *  the stitcher degrades around the scenario. */
    bool healthFromFaults = false;

    JobArtifacts artifacts;

    /**
     * Strict parse of a stitch-job document. Unknown keys, a wrong
     * schema/version stamp, malformed types, out-of-range tiles and
     * invalid fault probabilities all throw fault::ConfigError —
     * validation is eager, before the job ever reaches a worker.
     */
    static JobSpec fromJson(const obs::Json &doc);

    /** Full round-trippable document (label and priority included). */
    obs::Json toJson() const;

    /** The canonical form (see the file comment). */
    obs::Json canonicalJson() const;

    /** 16-hex-digit content address of canonicalJson().dump(). */
    std::string cacheKey() const;

    /** Re-check every invariant fromJson() enforces (for specs built
     *  in code); throws fault::ConfigError. */
    void validate() const;

    /** Catalog spec for `app`; throws fault::ConfigError if the name
     *  no longer resolves. */
    const apps::AppSpec &resolveApp() const;

    /** The apps::RunConfig this spec describes. */
    apps::RunConfig runConfig() const;
};

/** splitmix64-chained hash of an arbitrary byte string; used for the
 *  content address and exposed for tests. */
std::uint64_t hashBytes(const std::string &bytes);

} // namespace stitch::svc

#endif // STITCH_SVC_JOB_HH

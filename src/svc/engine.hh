/**
 * @file
 * svc::JobEngine — the simulation job engine: a priority queue of
 * validated JobSpecs drained by a worker pool, fronted by the
 * content-addressed ResultCache.
 *
 * The engine generalizes sim::SweepRunner (same atomic-claim worker
 * idiom, same lowest-index failure reporting discipline) from "run
 * this vector of closures" to "run these described jobs": claims pop
 * in (priority desc, submit order asc), each popped job is resolved
 * against the cache *inside the claim critical section*, and
 * duplicate in-flight specs coalesce onto one simulation
 * (single-flight). Because resolution happens at claim time under the
 * lock, which jobs simulate and which count as cache hits is a pure
 * function of submit order and cache state — identical for any
 * `--jobs` value.
 *
 * Failures stay typed: a worker maps the exception hierarchy
 * (ConfigError / BinaryMismatchError / SimError / FatalError) to an
 * error kind in the JobResult instead of tearing down the batch, so a
 * mixed batch reports per-job outcomes. A job "timeout" is the
 * spec's max_instructions budget — it ends in a *completed* report
 * with Termination::InstructionLimit, never a worker hang.
 *
 * Telemetry (src/telem/) sits at job granularity, never inside the
 * simulator: every job gets a splitmix64 trace id at submit and the
 * engine always timestamps submit/claim/finish, feeding log-linear
 * latency histograms (queue wait, cache probe, report build,
 * end-to-end) that serviceReportJson() summarizes as exact
 * p50/p90/p99/max. With EngineOptions::telemetry on, the stages are
 * additionally recorded as typed spans through a telem::SpanSink —
 * propagated by explicit TraceContext through workers, the
 * ResultCache and AppRunner — exportable per batch as a Chrome trace
 * and a JSONL event log. With telemetry off nothing observable
 * changes: per-job reports are byte-identical either way.
 *
 * Resilience (this PR's layer; see DESIGN.md §13):
 *
 *  - Admission control: EngineOptions::maxQueueDepth bounds the
 *    pending queue. An over-limit submit either *sheds* the oldest
 *    job of the lowest pending priority band (when the newcomer
 *    outranks it — Status::Shed, typed, never a silent drop) or is
 *    rejected with the typed OverloadedError.
 *  - Deadlines: JobSpec::deadlineMs bounds claim-to-finish wall
 *    time. A watchdog thread trips the job's cooperative abort flag
 *    (SystemParams::abortFlag), the simulator unwinds with
 *    fault::DeadlineExceededError, and the job fails typed as
 *    "deadline" — the worker is never killed, only asked to stop.
 *  - Retry: chaos-injected transient failures (InjectedFaultError)
 *    are retried in place by the owning worker up to
 *    EngineOptions::retry.maxAttempts, with deterministic jittered
 *    exponential backoff recorded as Backoff spans/histogram.
 *    Deterministic failures (config/mismatch/sim) never retry.
 *  - Chaos: EngineOptions::chaos arms a ServiceFaultInjector shared
 *    with the ResultCache; every injection is a pure function of
 *    (plan, job id, attempt), so a single-worker engine replays a
 *    scenario exactly.
 */

#ifndef STITCH_SVC_ENGINE_HH
#define STITCH_SVC_ENGINE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "apps/app_runner.hh"
#include "common/stats.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "svc/cache.hh"
#include "svc/chaos.hh"
#include "svc/job.hh"
#include "svc/remote_cache.hh"
#include "telem/flightrec.hh"
#include "telem/histogram.hh"
#include "telem/slo.hh"
#include "telem/span.hh"
#include "telem/timeseries.hh"

namespace stitch::svc
{

inline constexpr const char *serviceReportSchema =
    "stitch-service-report";
/** v3: build provenance plus, when the continuous-telemetry layer
 *  is armed, the SLO status, time-series summary and flight-recorder
 *  sections. v2 added the latency histograms and span rollup; v1
 *  carried counters only. */
inline constexpr int serviceReportVersion = 3;

/** Engine construction knobs. */
struct EngineOptions
{
    /** Worker threads; 0 = hardware concurrency. Forced to 1 while
     *  the process-wide trace/profile sinks are enabled. */
    int jobs = 1;

    /** On-disk cache directory; empty disables the disk layer. */
    std::string cacheDir;

    /** In-memory LRU capacity; 0 disables the memory layer (every
     *  submission simulates — useful for measurement harnesses). */
    std::size_t memCacheEntries = 256;

    /** Collect request-scoped spans (trace ids are assigned and the
     *  latency histograms fill either way; this gates only the span
     *  sink and its exports). */
    bool telemetry = false;

    /** Failed-job ring buffer depth for live introspection. */
    std::size_t errorRingEntries = 32;

    /**
     * Admission limit on *pending* jobs; 0 = unbounded (the seed
     * behaviour). When the queue is full, a submit sheds the oldest
     * job of the lowest pending band if the newcomer outranks it,
     * and otherwise throws OverloadedError. Either way the outcome
     * is typed — nothing is ever dropped silently.
     */
    std::size_t maxQueueDepth = 0;

    /** Engine-side retry of chaos-transient failures (default: one
     *  attempt, i.e. no retry — the seed behaviour). */
    RetryPolicy retry;

    /** Deterministic service-tier fault injection (default: none). */
    ServiceFaultPlan chaos;

    /** Deadline watchdog poll period (ms). Only consulted while a
     *  claimed job carries a deadline. */
    std::uint64_t watchdogPollMs = 5;

    /**
     * Continuous-telemetry collector interval (ms); 0 keeps the
     * collector off — the batch default, under which reports and
     * behaviour are byte-identical to the pre-telemetry engine.
     * stitchd arms it (--metrics-interval-ms, default 1000).
     */
    std::uint64_t metricsIntervalMs = 0;

    /** Time-series ring capacity (windows retained). */
    std::size_t metricsWindows = 120;

    /** SLO objectives evaluated per closed window; empty = no SLO
     *  engine (and nothing SLO-shaped in reports). */
    telem::SloConfig slo;

    /** Arm the per-job flight recorder (rings record even without a
     *  dump directory; implied by a non-empty flightDir). */
    bool flightRecorder = false;

    /** Flight-record dump directory; empty = record but never dump. */
    std::string flightDir;

    /** Event-ring depth per tracked job. */
    std::size_t flightEventsPerJob = 64;

    /**
     * Shared cache tier (fleet mode): peer shards consulted after a
     * local mem+disk miss (read-through) and notified after a fresh
     * simulation (write-behind). Empty peer list — the default —
     * keeps the engine byte-identical to the single-shard build.
     */
    RemoteCacheOptions remoteCache;
};

/**
 * Typed admission-control rejection: the queue is at
 * EngineOptions::maxQueueDepth and the submitted job does not
 * outrank any pending band. Callers (stitchd maps it to the
 * "overloaded" wire error) retry with backoff or surface it.
 */
class OverloadedError : public fault::SimError
{
  public:
    explicit OverloadedError(const std::string &what)
        : SimError(what)
    {}
};

/** Outcome of one submitted job. */
struct JobResult
{
    enum class Status
    {
        Pending,   ///< queued, not yet claimed
        Running,   ///< claimed by a worker
        Completed, ///< report + derived are valid
        Failed,    ///< error + errorKind are valid
        Cancelled, ///< cancelled before a worker claimed it
        Shed,      ///< evicted by admission control under overload
    };

    Status status = Status::Pending;

    /** Completed without simulating: memory hit, disk hit, or
     *  coalesced onto an identical in-flight job. */
    bool cached = false;

    std::string key;   ///< spec.cacheKey(), fixed at submit
    std::string error; ///< failure message (Status::Failed/Shed)
    /** config|mismatch|sim|internal|deadline|injected|overloaded */
    std::string errorKind;
    obs::Json report;  ///< svc::appReportJson document
    obs::Json derived; ///< svc::derivedJson scalars

    std::uint64_t traceId = 0; ///< request-scoped id, set at submit
    double latencyMs = 0;      ///< claim-to-finish wall time
    double queueMs = 0;        ///< submit-to-claim wall time
    double e2eMs = 0;          ///< submit-to-finish wall time
    int attempts = 1;          ///< worker attempts (retries + 1)
};

const char *jobStatusName(JobResult::Status status);

/** One entry of the failed-job ring buffer (live introspection). */
struct ErrorRecord
{
    int jobId = -1;
    std::uint64_t traceId = 0;
    std::string kind;
    std::string error;
    double atMs = 0; ///< ms since engine construction
};

/** Priority job queue + worker pool over one shared AppRunner and
 *  ResultCache (see the file comment). */
class JobEngine
{
  public:
    explicit JobEngine(const EngineOptions &options = {});
    ~JobEngine();

    JobEngine(const JobEngine &) = delete;
    JobEngine &operator=(const JobEngine &) = delete;

    /**
     * Validate and enqueue `spec`; returns the job id (dense,
     * submit-ordered). Throws fault::ConfigError on an invalid spec —
     * validation is eager, nothing invalid reaches a worker.
     */
    int submit(const JobSpec &spec);

    /** Parse, validate and enqueue a stitch-job document. */
    int submit(const obs::Json &doc);

    /**
     * Cancel a still-pending job. Returns false when the job was
     * already claimed, finished, or cancelled; a running simulation is
     * never interrupted.
     */
    bool cancel(int id);

    /** Drain the queue with the configured worker pool; returns when
     *  every non-cancelled job has finished. Re-entrant: submit more
     *  jobs afterwards and call run() again. */
    void run();

    int jobCount() const;
    const JobSpec &spec(int id) const;
    const JobResult &result(int id) const;

    ResultCache &cache() { return cache_; }
    const EngineOptions &options() const { return options_; }

    /** The shared-cache-tier client; null unless
     *  EngineOptions::remoteCache names peers. */
    RemoteCacheClient *remoteCache() { return remote_.get(); }

    /** Drain pending write-behind replication (graceful shutdown /
     *  deterministic tests); no-op without a remote tier. */
    void flushRemoteCache();

    /**
     * The service-level counters as a versioned document (v2):
     * submitted/completed/failed/cancelled, cache attribution
     * (cache_hits vs simulated), queue depth, the per-stage latency
     * histograms (queue / cache_probe / compile / stitch / simulate /
     * report / e2e with p50/p90/p99/max) and — with telemetry on —
     * the span rollup.
     */
    obs::Json serviceReportJson() const;

    /**
     * Live state for the introspection endpoints: queue depth,
     * in-flight jobs, per-priority-band backlog, cache hit/miss/evict
     * rates and the last-N failed-job ring buffer.
     */
    obs::Json introspectionJson() const;

    /** The engine's counter registry (svc.jobs, svc.cache, svc.queue,
     *  svc.latency) for embedding in larger dumps. */
    const obs::Registry &registry() const { return registry_; }

    /** True when request-scoped span collection is on. */
    bool telemetryEnabled() const { return options_.telemetry; }

    /** The chaos injector built from EngineOptions::chaos (inactive
     *  for a default plan); shared with the ResultCache. */
    const ServiceFaultInjector &
    faultInjector() const
    {
        return injector_;
    }

    /** The span sink (empty unless telemetry is enabled). */
    const telem::SpanSink &spanSink() const { return spanSink_; }

    /**
     * One cumulative snapshot of every engine counter, gauge and
     * latency histogram — the continuous-telemetry sampling point,
     * also usable directly (stitchq --metrics-out scrapes the drained
     * engine once). Names follow the DESIGN.md §14 contract.
     */
    telem::MetricSample metricsSnapshot() const;

    /**
     * The Prometheus text exposition over a fresh snapshot, with SLO
     * status and build provenance riding along. `uptimeS` < 0 omits
     * the server-lifetime series (the non-daemon case).
     */
    std::string expositionText(double uptimeS = -1.0,
                               std::uint64_t served = 0) const;

    /** The collector's window ring; null when metricsIntervalMs is
     *  0. */
    const telem::Collector *collector() const
    {
        return collector_.get();
    }

    /** The SLO engine; null when no objectives were configured. */
    const telem::SloEngine *slo() const { return slo_.get(); }

    /** The flight recorder; null unless armed. */
    const telem::FlightRecorder *flightRecorder() const
    {
        return flight_.get();
    }

    /**
     * Record a request that failed before it could become a job (a
     * framing violation, a malformed document): attaches a synthetic
     * trace id and dumps a kind="protocol" flight record so even
     * jobless failures leave a black box. No-op unless the flight
     * recorder is armed.
     */
    void recordProtocolFailure(const std::string &message);

    /** Context for recording engine-adjacent spans (e.g. stitchd's
     *  respond stage) against job `id`; disabled when telemetry is
     *  off or the id is unknown. */
    telem::TraceContext traceContext(int id) const;

  private:
    /** Coalescing point for identical in-flight specs: the claim
     *  owner simulates and publishes; waiters block on `cv`. */
    struct Flight
    {
        std::mutex mutex;
        std::condition_variable cv;
        bool done = false;
        bool failed = false;
        std::string error;
        std::string errorKind;
        CacheEntry entry;
    };

    struct Job
    {
        int id = -1; ///< dense index into jobs_
        JobSpec spec;
        JobResult result;
        std::shared_ptr<Flight> flight; ///< set at claim time
        bool flightOwner = false;

        std::uint64_t submitUs = 0; ///< enqueue time (sink epoch)
        std::uint64_t claimUs = 0;  ///< worker claim time
        /** Worker-measured stage durations folded into the latency
         *  histograms at finish (µs). */
        std::uint64_t probeUs = 0;
        std::uint64_t reportUs = 0;

        /** Absolute deadline (sink epoch µs); 0 = none. Set at claim
         *  from spec.deadlineMs; the watchdog compares against it. */
        std::uint64_t deadlineAtUs = 0;

        /** Cooperative abort token: the watchdog sets it, the
         *  simulator (via RunConfig::abortFlag) and the chaos stall
         *  loop poll it. Jobs live behind unique_ptr, so the address
         *  is stable for the simulation's whole life. */
        std::atomic<bool> abortRequested{false};
    };

    bool claimAndRunOne(int worker);
    void runSimulation(Job &job, const telem::TraceContext &ctx,
                       CacheEntry &entry, bool &failed,
                       std::string &kind, std::string &error);
    void watchdogLoop();
    void finishCompleted(Job &job, const CacheEntry &entry,
                         bool cached);
    void finishFailed(Job &job, const std::string &kind,
                      const std::string &message);
    void recordLatency(Job &job, std::uint64_t finishUs);
    telem::TraceContext contextFor(const Job &job, int worker) const;
    obs::Json latencyJson(bool includeSpanStages) const;

    EngineOptions options_;
    ServiceFaultInjector injector_; ///< stateless; shared with cache_
    ResultCache cache_;
    /** Shared cache tier client; null unless peers configured. Own
     *  lock; lookups happen on the worker side outside mutex_. */
    std::unique_ptr<RemoteCacheClient> remote_;
    apps::AppRunner runner_;

    mutable std::mutex mutex_; ///< jobs_, queue_, inflight_, stats
    std::vector<std::unique_ptr<Job>> jobs_;

    /** Max-heap of (priority, -id): priority desc, submit order asc. */
    std::priority_queue<std::pair<int, int>> queue_;

    /** cacheKey -> in-flight simulation for single-flight dedup. */
    std::map<std::string, std::shared_ptr<Flight>> inflight_;

    /** priority -> still-pending jobs (live per-band backlog). */
    std::map<int, int, std::greater<int>> pendingPerBand_;
    int pendingJobs_ = 0; ///< sum of pendingPerBand_ (admission test)
    int runningJobs_ = 0;

    /** Deadline watchdog (started lazily by run(), joined at drain).
     *  wdStop_/wdCv_ use mutex_; the loop holds it only to scan. */
    std::thread watchdog_;
    std::condition_variable wdCv_;
    bool wdStop_ = false;

    /** Engine-recorded latency histograms, guarded by mutex_:
     *  indexed by telem::Stage (queue, cache_probe, report, job). */
    telem::Histogram stageHist_[telem::numStages];

    /** Last-N failed jobs, oldest first (guarded by mutex_). */
    std::deque<ErrorRecord> errorRing_;

    /** Span store + the wall-clock epoch all timestamps share. The
     *  sink always exists (it is the clock); spans are appended only
     *  when options_.telemetry is set. */
    telem::SpanSink spanSink_;
    std::uint64_t traceSeed_ = 0;

    StatGroup jobStats_; ///< svc.jobs
    /** svc.cache / svc.queue: refreshed from live state inside the
     *  const serviceReportJson(), hence mutable. */
    mutable StatGroup cacheStats_;
    mutable StatGroup queueStats_;
    StatGroup latencyStats_;    ///< svc.latency buckets
    StatGroup resilienceStats_; ///< svc.resilience (admission/retry)
    /** svc.remote_cache — registered only in fleet mode so
     *  single-shard reports keep their exact shape. */
    mutable StatGroup remoteStats_;
    obs::Registry registry_;

    /** Continuous-telemetry organs (all optional; see
     *  EngineOptions). Own locks each — never taken under mutex_
     *  except flight event/dump appends, which nest safely (the
     *  recorder calls nothing back). */
    std::unique_ptr<telem::SloEngine> slo_;
    std::unique_ptr<telem::FlightRecorder> flight_;
    std::uint64_t protocolFailures_ = 0; ///< synthetic trace index
    /** Declared last: destroyed (and its thread joined) first. The
     *  destructor also stops it explicitly before members tear
     *  down. */
    std::unique_ptr<telem::Collector> collector_;
};

} // namespace stitch::svc

#endif // STITCH_SVC_ENGINE_HH

#include "svc/engine.hh"

#include <algorithm>
#include <thread>

#include "common/logging.hh"
#include "obs/buildinfo.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "svc/artifacts.hh"
#include "telem/exposition.hh"

namespace stitch::svc
{

const char *
jobStatusName(JobResult::Status status)
{
    switch (status) {
    case JobResult::Status::Pending: return "pending";
    case JobResult::Status::Running: return "running";
    case JobResult::Status::Completed: return "completed";
    case JobResult::Status::Failed: return "failed";
    case JobResult::Status::Cancelled: return "cancelled";
    case JobResult::Status::Shed: return "shed";
    }
    return "?";
}

JobEngine::JobEngine(const EngineOptions &options)
    : options_(options), injector_(options.chaos),
      cache_(options.cacheDir, options.memCacheEntries)
{
    options_.retry.validate();
    if (injector_.active())
        cache_.setFaultInjector(&injector_);
    // Trace ids must be unique within the engine (splitmix64 over the
    // job index guarantees that) and unlikely to collide across
    // engines; fold the wall clock in for the latter.
    traceSeed_ = telem::traceIdFor(
        static_cast<std::uint64_t>(
            std::chrono::system_clock::now()
                .time_since_epoch()
                .count()),
        reinterpret_cast<std::uintptr_t>(this));

    registry_.add("svc.jobs", jobStats_);
    registry_.add("svc.cache", cacheStats_);
    registry_.add("svc.queue", queueStats_);
    registry_.add("svc.latency", latencyStats_);
    // Materialize the counter set so reports carry stable keys even
    // before the first job.
    for (const char *name :
         {"submitted", "completed", "failed", "cancelled", "shed",
          "cache_hits", "simulated"})
        jobStats_.counter(name);
    queueStats_.counter("peak_depth");
    for (const char *name : {"le_1ms", "le_10ms", "le_100ms", "le_1s",
                             "le_10s", "gt_10s"})
        latencyStats_.counter(name);
    registry_.add("svc.resilience", resilienceStats_);
    for (const char *name :
         {"rejected", "shed", "retries", "retry_exhausted",
          "injected_throws", "injected_stalls", "watchdog_trips",
          "deadline_exceeded"})
        resilienceStats_.counter(name);
    if (!options_.remoteCache.peers.empty()) {
        remote_ = std::make_unique<RemoteCacheClient>(
            options_.remoteCache);
        registry_.add("svc.remote_cache", remoteStats_);
        for (const char *name :
             {"hits", "misses", "errors", "invalidated", "stores",
              "store_failures"})
            remoteStats_.counter(name);
    }

    // The continuous-telemetry organs. All off by default so batch
    // behaviour (and its report bytes) are untouched; stitchd arms
    // them all.
    if (!options_.slo.empty())
        slo_ = std::make_unique<telem::SloEngine>(options_.slo);
    if (options_.flightRecorder || !options_.flightDir.empty()) {
        telem::FlightOptions flightOptions;
        flightOptions.eventsPerJob = options_.flightEventsPerJob;
        flightOptions.dumpDir = options_.flightDir;
        flight_ =
            std::make_unique<telem::FlightRecorder>(flightOptions);
        // Every span the sink closes lands in the trace's black box.
        spanSink_.setObserver(
            [this](const telem::Span &span) { flight_->span(span); });
    }
    if (options_.metricsIntervalMs > 0) {
        collector_ = std::make_unique<telem::Collector>(
            [this] { return metricsSnapshot(); },
            options_.metricsIntervalMs, options_.metricsWindows,
            [this](const telem::Window &window) {
                if (slo_)
                    slo_->observe(window);
            });
        collector_->start();
    }
}

JobEngine::~JobEngine()
{
    // The collector samples *this; it must be parked before any
    // member tears down.
    if (collector_)
        collector_->stop();
    // run() joins the watchdog on every exit path; this is only the
    // backstop against a future path that forgets.
    if (watchdog_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            wdStop_ = true;
        }
        wdCv_.notify_all();
        watchdog_.join();
    }
}

telem::TraceContext
JobEngine::contextFor(const Job &job, int worker) const
{
    telem::TraceContext ctx;
    ctx.traceId = job.result.traceId;
    ctx.jobId = job.id;
    ctx.worker = worker;
    ctx.sink = options_.telemetry
                   ? const_cast<telem::SpanSink *>(&spanSink_)
                   : nullptr;
    return ctx;
}

int
JobEngine::submit(const JobSpec &spec)
{
    const std::uint64_t t0 = spanSink_.nowUs();
    spec.validate();
    const std::string key = spec.cacheKey();

    std::lock_guard<std::mutex> lock(mutex_);

    if (options_.maxQueueDepth > 0 &&
        static_cast<std::size_t>(pendingJobs_) >=
            options_.maxQueueDepth) {
        // Admission control. Shedding policy: the *lowest* pending
        // band pays first, and only for a strictly higher-priority
        // newcomer — an equal-or-lower one is rejected outright.
        // Either way the outcome is typed, never a silent drop.
        const int lowestBand = std::prev(pendingPerBand_.end())->first;
        if (spec.priority <= lowestBand) {
            resilienceStats_.inc("rejected");
            throw OverloadedError(detail::formatMessage(
                "queue full (", pendingJobs_, "/",
                options_.maxQueueDepth,
                " pending) and priority ", spec.priority,
                " does not outrank band ", lowestBand));
        }
        // Shed the oldest pending job of the lowest band (dense ids
        // are submit-ordered, so the first match is the oldest).
        for (auto &victimPtr : jobs_) {
            Job &victim = *victimPtr;
            if (victim.result.status != JobResult::Status::Pending ||
                victim.spec.priority != lowestBand)
                continue;
            victim.result.status = JobResult::Status::Shed;
            victim.result.errorKind = "overloaded";
            victim.result.error = detail::formatMessage(
                "shed under overload by higher-priority job (band ",
                lowestBand, " -> ", spec.priority, ")");
            --pendingJobs_;
            if (auto it = pendingPerBand_.find(lowestBand);
                it != pendingPerBand_.end() && --it->second <= 0)
                pendingPerBand_.erase(it);
            jobStats_.inc("shed");
            resilienceStats_.inc("shed");
            if (flight_) {
                flight_->event(victim.result.traceId,
                               spanSink_.nowUs(), "shed",
                               victim.result.error);
                const obs::Json build = obs::buildInfoJson();
                flight_->dump(victim.result.traceId, "overloaded",
                              victim.result.error, &build);
            }
            break;
        }
    }

    const int id = static_cast<int>(jobs_.size());
    auto job = std::make_unique<Job>();
    job->id = id;
    job->spec = spec;
    job->result.key = key;
    job->result.traceId =
        telem::traceIdFor(traceSeed_,
                          static_cast<std::uint64_t>(id));
    job->submitUs = spanSink_.nowUs();
    if (options_.telemetry)
        spanSink_.record({job->result.traceId, id,
                          telem::Stage::Submit, t0, job->submitUs,
                          /*worker=*/-1});
    if (flight_) {
        flight_->attach(job->result.traceId, id);
        flight_->event(job->result.traceId, job->submitUs,
                       "submitted",
                       detail::formatMessage("priority ",
                                             spec.priority));
    }
    jobs_.push_back(std::move(job));
    queue_.push({spec.priority, -id});
    ++pendingPerBand_[spec.priority];
    ++pendingJobs_;
    jobStats_.inc("submitted");
    queueStats_.set("peak_depth",
                    std::max<std::uint64_t>(
                        queueStats_.get("peak_depth"),
                        static_cast<std::uint64_t>(pendingJobs_)));
    return id;
}

int
JobEngine::submit(const obs::Json &doc)
{
    return submit(JobSpec::fromJson(doc));
}

bool
JobEngine::cancel(int id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (id < 0 || id >= static_cast<int>(jobs_.size()))
        return false;
    Job &job = *jobs_[static_cast<std::size_t>(id)];
    if (job.result.status != JobResult::Status::Pending)
        return false;
    job.result.status = JobResult::Status::Cancelled;
    --pendingJobs_;
    if (auto it = pendingPerBand_.find(job.spec.priority);
        it != pendingPerBand_.end() && --it->second <= 0)
        pendingPerBand_.erase(it);
    jobStats_.inc("cancelled");
    return true;
}

void
JobEngine::recordLatency(Job &job, std::uint64_t finishUs)
{
    JobResult &result = job.result;
    result.latencyMs =
        static_cast<double>(finishUs - job.claimUs) / 1000.0;
    result.queueMs =
        static_cast<double>(job.claimUs - job.submitUs) / 1000.0;
    result.e2eMs =
        static_cast<double>(finishUs - job.submitUs) / 1000.0;

    using telem::Stage;
    stageHist_[static_cast<int>(Stage::Queue)].record(job.claimUs -
                                                      job.submitUs);
    stageHist_[static_cast<int>(Stage::Job)].record(finishUs -
                                                    job.submitUs);
    if (cache_.enabled())
        stageHist_[static_cast<int>(Stage::CacheProbe)].record(
            job.probeUs);
    if (job.reportUs > 0)
        stageHist_[static_cast<int>(Stage::Report)].record(
            job.reportUs);

    const double ms = result.latencyMs;
    const char *bucket = ms <= 1.0      ? "le_1ms"
                         : ms <= 10.0   ? "le_10ms"
                         : ms <= 100.0  ? "le_100ms"
                         : ms <= 1e3    ? "le_1s"
                         : ms <= 1e4    ? "le_10s"
                                        : "gt_10s";
    latencyStats_.inc(bucket);
}

void
JobEngine::finishCompleted(Job &job, const CacheEntry &entry,
                           bool cached)
{
    job.result.report = entry.report;
    job.result.derived = entry.derived;
    job.result.cached = cached;
    job.result.status = JobResult::Status::Completed;
    --runningJobs_;
    jobStats_.inc("completed");
    jobStats_.inc(cached ? "cache_hits" : "simulated");
    recordLatency(job, spanSink_.nowUs());
    // A healthy landing: the black box has nothing left to tell.
    if (flight_)
        flight_->forget(job.result.traceId);
}

void
JobEngine::finishFailed(Job &job, const std::string &kind,
                        const std::string &message)
{
    job.result.error = message;
    job.result.errorKind = kind;
    job.result.status = JobResult::Status::Failed;
    --runningJobs_;
    jobStats_.inc("failed");
    const std::uint64_t finishUs = spanSink_.nowUs();
    recordLatency(job, finishUs);

    ErrorRecord record;
    record.jobId = job.id;
    record.traceId = job.result.traceId;
    record.kind = kind;
    record.error = message;
    record.atMs = static_cast<double>(finishUs) / 1000.0;
    errorRing_.push_back(std::move(record));
    while (errorRing_.size() > options_.errorRingEntries)
        errorRing_.pop_front();

    // Every typed failure leaves a flight record behind.
    if (flight_) {
        flight_->event(job.result.traceId, finishUs, "failed",
                       detail::formatMessage(kind, ": ", message));
        const obs::Json build = obs::buildInfoJson();
        flight_->dump(job.result.traceId, kind, message, &build);
    }
}

/**
 * The worker attempt loop: chaos injection, the simulation itself,
 * the typed exception-to-kind mapping, and deterministic jittered
 * retry of chaos-transient failures. Runs without mutex_ held.
 */
void
JobEngine::runSimulation(Job &job, const telem::TraceContext &ctx,
                         CacheEntry &entry, bool &failed,
                         std::string &kind, std::string &error)
{
    for (int attempt = 1;; ++attempt) {
        failed = false;
        kind.clear();
        error.clear();
        try {
            if (injector_.active()) {
                // Stall first (a wedged worker), then maybe throw (a
                // crashed one). The stall polls the abort flag so a
                // deadline can cut it short — that is precisely how
                // the watchdog scenario terminates.
                std::uint64_t stall =
                    injector_.stallUs(job.id, attempt);
                if (stall > 0) {
                    {
                        std::lock_guard<std::mutex> lock(mutex_);
                        resilienceStats_.inc("injected_stalls");
                    }
                    if (flight_)
                        flight_->event(
                            job.result.traceId, spanSink_.nowUs(),
                            "injected_stall",
                            detail::formatMessage(stall, " us"));
                    const std::uint64_t until =
                        spanSink_.nowUs() + stall;
                    while (spanSink_.nowUs() < until) {
                        if (job.abortRequested.load(
                                std::memory_order_relaxed))
                            throw fault::DeadlineExceededError(
                                detail::formatMessage(
                                    "stalled worker aborted by the "
                                    "deadline watchdog (attempt ",
                                    attempt, ")"));
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(1));
                    }
                }
                if (injector_.throwOnAttempt(job.id, attempt)) {
                    {
                        std::lock_guard<std::mutex> lock(mutex_);
                        resilienceStats_.inc("injected_throws");
                    }
                    if (flight_)
                        flight_->event(
                            job.result.traceId, spanSink_.nowUs(),
                            "injected_throw",
                            detail::formatMessage("attempt ",
                                                  attempt));
                    throw InjectedFaultError(detail::formatMessage(
                        "injected worker fault (job ", job.id,
                        ", attempt ", attempt, ")"));
                }
            }

            const apps::AppSpec &app = job.spec.resolveApp();
            apps::RunConfig runConfig = job.spec.runConfig();
            runConfig.trace = ctx;
            runConfig.abortFlag = &job.abortRequested;
            apps::AppRunResult res =
                runner_.run(app, job.spec.mode, runConfig);
            const std::uint64_t reportStart = spanSink_.nowUs();
            {
                telem::ScopedSpan span(ctx, telem::Stage::Report);
                ReportOptions reportOptions;
                reportOptions.profile = job.spec.artifacts.profile;
                reportOptions.energy = job.spec.artifacts.energy;
                entry.report = appReportJson(res, reportOptions);
                entry.derived = derivedJson(res);
                if (cache_.memEnabled() || cache_.diskEnabled())
                    cache_.store(job.spec, entry);
            }
            job.reportUs = spanSink_.nowUs() - reportStart;
        } catch (const InjectedFaultError &e) {
            // The only *retryable* kind: transient by construction.
            if (attempt < options_.retry.maxAttempts) {
                const std::uint64_t delay =
                    options_.retry.delayUsAfter(
                        static_cast<std::uint64_t>(job.id), attempt);
                const std::uint64_t t0 = spanSink_.nowUs();
                std::this_thread::sleep_for(
                    std::chrono::microseconds(delay));
                ctx.record(telem::Stage::Backoff, t0,
                           spanSink_.nowUs());
                if (flight_)
                    flight_->event(
                        job.result.traceId, spanSink_.nowUs(),
                        "retry",
                        detail::formatMessage("attempt ", attempt,
                                              " backed off ", delay,
                                              " us"));
                std::lock_guard<std::mutex> lock(mutex_);
                resilienceStats_.inc("retries");
                stageHist_[static_cast<int>(telem::Stage::Backoff)]
                    .record(delay);
                continue;
            }
            failed = true;
            kind = "injected";
            error = e.what();
            std::lock_guard<std::mutex> lock(mutex_);
            if (options_.retry.enabled())
                resilienceStats_.inc("retry_exhausted");
        } catch (const fault::DeadlineExceededError &e) {
            failed = true;
            kind = "deadline";
            error = e.what();
            std::lock_guard<std::mutex> lock(mutex_);
            resilienceStats_.inc("deadline_exceeded");
        } catch (const fault::ConfigError &e) {
            failed = true;
            kind = "config";
            error = e.what();
        } catch (const fault::BinaryMismatchError &e) {
            failed = true;
            kind = "mismatch";
            error = e.what();
        } catch (const fault::SimError &e) {
            failed = true;
            kind = "sim";
            error = e.what();
        } catch (const std::exception &e) {
            failed = true;
            kind = "internal";
            error = e.what();
        }
        job.result.attempts = attempt;
        return;
    }
}

bool
JobEngine::claimAndRunOne(int worker)
{
    Job *claimed = nullptr;
    telem::TraceContext ctx;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        const std::uint64_t claimStart = spanSink_.nowUs();
        while (!queue_.empty()) {
            const int id = -queue_.top().second;
            queue_.pop();
            Job &job = *jobs_[static_cast<std::size_t>(id)];
            if (job.result.status == JobResult::Status::Cancelled ||
                job.result.status == JobResult::Status::Shed)
                continue; // cancelled/shed while queued; stale entry
            claimed = &job;
            break;
        }
        if (!claimed)
            return false;

        Job &job = *claimed;
        job.result.status = JobResult::Status::Running;
        job.claimUs = spanSink_.nowUs();
        if (job.spec.deadlineMs > 0)
            job.deadlineAtUs =
                job.claimUs + job.spec.deadlineMs * 1000;
        ++runningJobs_;
        --pendingJobs_;
        if (auto it = pendingPerBand_.find(job.spec.priority);
            it != pendingPerBand_.end() && --it->second <= 0)
            pendingPerBand_.erase(it);

        ctx = contextFor(job, worker);
        // The queue span closes the moment a worker picks the job up.
        ctx.record(telem::Stage::Queue, job.submitUs, job.claimUs);
        if (flight_)
            flight_->event(job.result.traceId, job.claimUs,
                           "claimed",
                           detail::formatMessage("worker ", worker));

        if (cache_.memEnabled() || cache_.diskEnabled()) {
            // Resolve against the cache inside the claim critical
            // section: attribution (hit vs simulate) becomes a pure
            // function of submit order, independent of worker count.
            const std::uint64_t probeStart = spanSink_.nowUs();
            auto hit = cache_.memLookup(job.result.key, ctx);
            job.probeUs = spanSink_.nowUs() - probeStart;
            if (hit) {
                finishCompleted(job, *hit, /*cached=*/true);
                ctx.record(telem::Stage::Claim, claimStart,
                           spanSink_.nowUs());
                ctx.record(telem::Stage::Job, job.submitUs,
                           spanSink_.nowUs());
                return true;
            }
            if (flight_)
                flight_->event(job.result.traceId,
                               spanSink_.nowUs(), "cache_miss");
            if (auto it = inflight_.find(job.result.key);
                it != inflight_.end()) {
                job.flight = it->second; // coalesce: wait below
                if (flight_)
                    flight_->event(job.result.traceId,
                                   spanSink_.nowUs(), "coalesced",
                                   "waiting on in-flight twin");
            } else {
                job.flight = std::make_shared<Flight>();
                job.flightOwner = true;
                inflight_[job.result.key] = job.flight;
            }
        }
        ctx.record(telem::Stage::Claim, claimStart,
                   spanSink_.nowUs());
    }

    Job &job = *claimed;

    if (job.flight && !job.flightOwner) {
        // An identical spec is simulating right now; adopt its
        // outcome instead of simulating twice.
        std::unique_lock<std::mutex> flightLock(job.flight->mutex);
        job.flight->cv.wait(flightLock,
                            [&] { return job.flight->done; });
        const bool failed = job.flight->failed;
        const std::string error = job.flight->error;
        const std::string kind = job.flight->errorKind;
        const CacheEntry entry = job.flight->entry;
        flightLock.unlock();

        std::lock_guard<std::mutex> lock(mutex_);
        if (failed)
            finishFailed(job, kind, error);
        else
            finishCompleted(job, entry, /*cached=*/true);
        ctx.record(telem::Stage::Job, job.submitUs,
                   spanSink_.nowUs());
        return true;
    }

    // This worker owns the simulation (or caching is fully disabled).
    CacheEntry entry;
    bool failed = false;
    bool fromDisk = false;
    bool fromRemote = false;
    std::string error, kind;
    if (job.flightOwner) {
        const std::uint64_t probeStart = spanSink_.nowUs();
        auto hit = cache_.diskLookup(job.spec, ctx);
        job.probeUs += spanSink_.nowUs() - probeStart;
        if (hit) {
            entry = *hit;
            fromDisk = true;
        }
        if (!fromDisk && remote_) {
            // Read-through to the shared cache tier: a peer shard
            // that already simulated this spec saves us the run.
            // Probed outside mutex_ — this is network I/O.
            const std::uint64_t remoteStart = spanSink_.nowUs();
            auto remoteHit =
                remote_->lookup(job.spec, job.result.key);
            job.probeUs += spanSink_.nowUs() - remoteStart;
            if (remoteHit) {
                entry = *remoteHit;
                fromRemote = true;
                // Promote into the local layers so the next
                // duplicate is a mem hit at claim time.
                if (cache_.enabled())
                    cache_.store(job.spec, entry);
                if (flight_)
                    flight_->event(job.result.traceId,
                                   spanSink_.nowUs(),
                                   "remote_cache_hit");
            }
        }
    }
    const bool fromCache = fromDisk || fromRemote;
    if (!fromCache)
        runSimulation(job, ctx, entry, failed, kind, error);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (failed)
            finishFailed(job, kind, error);
        else
            finishCompleted(job, entry, /*cached=*/fromCache);
    }
    if (!failed && !fromCache && remote_)
        // Write-behind: replicate the fresh simulation to the peers
        // (async by default; never blocks or fails the job).
        remote_->storeBehind(job.spec, job.result.key, entry);
    ctx.record(telem::Stage::Job, job.submitUs, spanSink_.nowUs());

    if (job.flightOwner) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inflight_.erase(job.result.key);
        }
        std::lock_guard<std::mutex> flightLock(job.flight->mutex);
        job.flight->failed = failed;
        job.flight->error = error;
        job.flight->errorKind = kind;
        job.flight->entry = entry;
        job.flight->done = true;
        job.flight->cv.notify_all();
    }
    return true;
}

/**
 * Deadline watchdog: wakes every watchdogPollMs, trips the abort
 * flag of any running job past its deadline. Detection is *stuck
 * worker* shaped — a worker that stops making progress (a stalled
 * simulation, an injected stall) is asked to unwind cooperatively;
 * the thread itself is never killed, so no lock or cache entry can
 * be orphaned mid-update.
 */
void
JobEngine::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!wdStop_) {
        const std::uint64_t now = spanSink_.nowUs();
        for (auto &jobPtr : jobs_) {
            Job &job = *jobPtr;
            if (job.result.status != JobResult::Status::Running ||
                job.deadlineAtUs == 0 || now < job.deadlineAtUs)
                continue;
            if (!job.abortRequested.exchange(
                    true, std::memory_order_relaxed)) {
                resilienceStats_.inc("watchdog_trips");
                if (flight_)
                    flight_->event(
                        job.result.traceId, now, "watchdog_trip",
                        "deadline passed; abort requested");
            }
        }
        wdCv_.wait_for(
            lock,
            std::chrono::milliseconds(options_.watchdogPollMs));
    }
}

void
JobEngine::run()
{
    // Arm the watchdog only when this drain can need it: a pending
    // job with a deadline (an armed chaos stall without a deadline
    // just runs long — nothing to abort).
    bool needWatchdog = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        wdStop_ = false;
        for (const auto &jobPtr : jobs_)
            if (jobPtr->result.status ==
                    JobResult::Status::Pending &&
                jobPtr->spec.deadlineMs > 0)
                needWatchdog = true;
    }
    if (needWatchdog)
        watchdog_ = std::thread([this] { watchdogLoop(); });

    struct WatchdogJoin
    {
        JobEngine *engine;
        ~WatchdogJoin()
        {
            if (!engine->watchdog_.joinable())
                return;
            {
                std::lock_guard<std::mutex> lock(engine->mutex_);
                engine->wdStop_ = true;
            }
            engine->wdCv_.notify_all();
            engine->watchdog_.join();
        }
    } joiner{this};

    int workers = options_.jobs;
    if (workers < 1)
        workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers < 1)
        workers = 1;
    if (workers > 1 &&
        (obs::Tracer::enabled() || obs::Sampler::enabled())) {
        // Same rule as sim::SweepRunner: the trace and profile sinks
        // are process-wide single streams.
        warn("job engine forced to --jobs=1: tracing/profiling write "
             "to process-wide sinks");
        workers = 1;
    }

    std::size_t pending = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending = static_cast<std::size_t>(pendingJobs_);
    }
    workers = std::min<int>(workers, static_cast<int>(pending));

    if (workers <= 1) {
        while (claimAndRunOne(/*worker=*/0)) {}
        return;
    }

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        pool.emplace_back([this, w] {
            while (claimAndRunOne(w)) {}
        });
    for (auto &t : pool)
        t.join();
}

int
JobEngine::jobCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(jobs_.size());
}

const JobSpec &
JobEngine::spec(int id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.at(static_cast<std::size_t>(id))->spec;
}

const JobResult &
JobEngine::result(int id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.at(static_cast<std::size_t>(id))->result;
}

telem::TraceContext
JobEngine::traceContext(int id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    telem::TraceContext ctx;
    if (id < 0 || id >= static_cast<int>(jobs_.size()))
        return ctx;
    ctx.traceId =
        jobs_[static_cast<std::size_t>(id)]->result.traceId;
    ctx.jobId = id;
    ctx.sink = options_.telemetry
                   ? const_cast<telem::SpanSink *>(&spanSink_)
                   : nullptr;
    return ctx;
}

obs::Json
JobEngine::latencyJson(bool includeSpanStages) const
{
    using telem::Stage;
    // compile/stitch/simulate happen inside AppRunner and reach the
    // engine only as spans; rebuild their histograms from the sink.
    telem::Histogram fromSpans[telem::numStages];
    if (includeSpanStages)
        for (const telem::Span &span : spanSink_.snapshot())
            switch (span.stage) {
            case Stage::Compile:
            case Stage::Stitch:
            case Stage::Simulate:
            case Stage::Respond:
                fromSpans[static_cast<int>(span.stage)].record(
                    span.durationUs());
                break;
            default:
                break;
            }

    obs::Json doc = obs::Json::object();
    auto add = [&](Stage stage, const telem::Histogram &hist,
                   const char *label = nullptr) {
        if (hist.count() == 0 && stage != Stage::Queue &&
            stage != Stage::Job)
            return; // quiet stages only pad the document
        doc.set(label ? label : telem::stageName(stage),
                hist.toJson());
    };
    add(Stage::Queue, stageHist_[static_cast<int>(Stage::Queue)]);
    add(Stage::CacheProbe,
        stageHist_[static_cast<int>(Stage::CacheProbe)]);
    add(Stage::Compile,
        fromSpans[static_cast<int>(Stage::Compile)]);
    add(Stage::Stitch, fromSpans[static_cast<int>(Stage::Stitch)]);
    add(Stage::Simulate,
        fromSpans[static_cast<int>(Stage::Simulate)]);
    add(Stage::Report, stageHist_[static_cast<int>(Stage::Report)]);
    add(Stage::Respond,
        fromSpans[static_cast<int>(Stage::Respond)]);
    add(Stage::Backoff,
        stageHist_[static_cast<int>(Stage::Backoff)]);
    add(Stage::Job, stageHist_[static_cast<int>(Stage::Job)],
        "e2e");
    return doc;
}

telem::MetricSample
JobEngine::metricsSnapshot() const
{
    telem::MetricSample sample;
    sample.atUs = spanSink_.nowUs();
    // The cache keeps its own lock; read it before taking ours.
    const ResultCache::Stats cs = cache_.stats();

    std::lock_guard<std::mutex> lock(mutex_);
    auto counter = [&](std::string name, std::uint64_t value) {
        sample.counters.emplace_back(std::move(name), value);
    };
    for (const char *name :
         {"submitted", "completed", "failed", "cancelled", "shed",
          "cache_hits", "simulated"})
        counter(std::string("jobs_") + name, jobStats_.get(name));
    counter("cache_mem_hits", cs.memHits);
    counter("cache_disk_hits", cs.diskHits);
    counter("cache_misses", cs.misses);
    counter("cache_stores", cs.stores);
    counter("cache_invalidated", cs.invalidated);
    counter("cache_evictions", cs.evictions);
    counter("cache_write_failures", cs.writeFailures);
    counter("cache_torn_writes", cs.tornWrites);
    counter("cache_quarantined", cs.quarantined);
    counter("cache_tmp_swept", cs.tmpSwept);
    for (const char *name :
         {"rejected", "shed", "retries", "retry_exhausted",
          "injected_throws", "injected_stalls", "watchdog_trips",
          "deadline_exceeded"})
        counter(std::string("resilience_") + name,
                resilienceStats_.get(name));
    if (slo_) {
        counter("slo_violations", slo_->violations());
        counter("slo_alerts", slo_->alertsRaised());
    }
    if (flight_)
        counter("flight_dumps", flight_->dumps());
    if (remote_) {
        const RemoteCacheStats rs = remote_->stats();
        counter("remote_cache_hits", rs.hits);
        counter("remote_cache_misses", rs.misses);
        counter("remote_cache_errors", rs.errors);
        counter("remote_cache_invalidated", rs.invalidated);
        counter("remote_cache_stores", rs.stores);
        counter("remote_cache_store_failures", rs.storeFailures);
        sample.gauges.emplace_back(
            "remote_cache_pending",
            static_cast<double>(rs.pending));
    }

    sample.gauges.emplace_back(
        "queue_depth", static_cast<double>(pendingJobs_));
    sample.gauges.emplace_back(
        "in_flight", static_cast<double>(runningJobs_));
    sample.gauges.emplace_back("cache_degraded",
                               cs.degraded ? 1.0 : 0.0);
    if (slo_)
        sample.gauges.emplace_back(
            "slo_alerts_active",
            static_cast<double>(slo_->alertsActive()));

    using telem::Stage;
    // Engine-recorded stages only: snapshotting must stay cheap, so
    // no span-sink scan here (compile/stitch/simulate remain report
    // material, not scrape material).
    sample.histograms.emplace_back(
        "queue", stageHist_[static_cast<int>(Stage::Queue)]);
    sample.histograms.emplace_back(
        "cache_probe",
        stageHist_[static_cast<int>(Stage::CacheProbe)]);
    sample.histograms.emplace_back(
        "report", stageHist_[static_cast<int>(Stage::Report)]);
    sample.histograms.emplace_back(
        "backoff", stageHist_[static_cast<int>(Stage::Backoff)]);
    sample.histograms.emplace_back(
        "e2e", stageHist_[static_cast<int>(Stage::Job)]);
    return sample;
}

std::string
JobEngine::expositionText(double uptimeS,
                          std::uint64_t served) const
{
    telem::ExpositionExtras extras;
    extras.uptimeS = uptimeS;
    extras.served = served;
    const obs::Json build = obs::buildInfoJson();
    extras.buildInfo = &build;
    obs::Json sloStatus;
    if (slo_) {
        sloStatus = slo_->statusJson();
        extras.sloStatus = &sloStatus;
    }
    return telem::prometheusText(metricsSnapshot(), extras);
}

void
JobEngine::recordProtocolFailure(const std::string &message)
{
    if (!flight_)
        return;
    std::uint64_t traceId = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // High bit keeps the synthetic index clear of job ids.
        traceId = telem::traceIdFor(
            traceSeed_,
            (1ull << 63) | protocolFailures_++);
    }
    flight_->attach(traceId, /*jobId=*/-1);
    flight_->event(traceId, spanSink_.nowUs(), "protocol_error",
                   message);
    const obs::Json build = obs::buildInfoJson();
    flight_->dump(traceId, "protocol", message, &build);
}

void
JobEngine::flushRemoteCache()
{
    if (remote_)
        remote_->flush();
}

obs::Json
JobEngine::serviceReportJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Mirror the cache's own counters into the registry group so the
    // report is one coherent tree.
    const ResultCache::Stats cs = cache_.stats();
    cacheStats_.set("mem_hits", cs.memHits);
    cacheStats_.set("disk_hits", cs.diskHits);
    cacheStats_.set("misses", cs.misses);
    cacheStats_.set("stores", cs.stores);
    cacheStats_.set("invalidated", cs.invalidated);
    cacheStats_.set("evictions", cs.evictions);
    cacheStats_.set("write_failures", cs.writeFailures);
    cacheStats_.set("torn_writes", cs.tornWrites);
    cacheStats_.set("quarantined", cs.quarantined);
    cacheStats_.set("tmp_swept", cs.tmpSwept);
    cacheStats_.set("degraded", cs.degraded ? 1 : 0);
    queueStats_.set("depth",
                    static_cast<std::uint64_t>(pendingJobs_));
    if (remote_) {
        const RemoteCacheStats rs = remote_->stats();
        remoteStats_.set("hits", rs.hits);
        remoteStats_.set("misses", rs.misses);
        remoteStats_.set("errors", rs.errors);
        remoteStats_.set("invalidated", rs.invalidated);
        remoteStats_.set("stores", rs.stores);
        remoteStats_.set("store_failures", rs.storeFailures);
    }

    obs::Json doc = obs::Json::object();
    doc.set("schema", serviceReportSchema);
    doc.set("version", serviceReportVersion);
    doc.set("jobs", static_cast<std::uint64_t>(jobs_.size()));
    doc.set("telemetry", options_.telemetry);
    doc.set("counters", registry_.toJson(/*skipZero=*/false));
    doc.set("latency", latencyJson(options_.telemetry));
    if (options_.telemetry)
        doc.set("spans", spanSink_.rollupJson());
    // v3: provenance on every service report; the continuous-
    // telemetry sections only when their organ is armed.
    doc.set("build", obs::buildInfoJson());
    if (slo_) {
        obs::Json slo = obs::Json::object();
        slo.set("objectives", slo_->statusJson());
        slo.set("violations", slo_->violations());
        slo.set("alerts_raised", slo_->alertsRaised());
        slo.set("alerts_active", slo_->alertsActive());
        doc.set("slo", std::move(slo));
    }
    if (collector_)
        doc.set("series", collector_->series().toJson());
    if (flight_)
        doc.set("flight", flight_->statsJson());
    return doc;
}

obs::Json
JobEngine::introspectionJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);

    obs::Json doc = obs::Json::object();
    std::uint64_t depth = 0;
    obs::Json bands = obs::Json::object();
    for (const auto &[priority, count] : pendingPerBand_) {
        depth += static_cast<std::uint64_t>(count);
        bands.set(std::to_string(priority), count);
    }
    doc.set("queue_depth", depth);
    doc.set("in_flight",
            static_cast<std::uint64_t>(runningJobs_));
    doc.set("per_band_backlog", std::move(bands));

    obs::Json jobs = obs::Json::object();
    for (const char *name :
         {"submitted", "completed", "failed", "cancelled", "shed",
          "cache_hits", "simulated"})
        jobs.set(name, jobStats_.get(name));
    doc.set("jobs", std::move(jobs));

    obs::Json admission = obs::Json::object();
    admission.set("max_queue_depth",
                  static_cast<std::uint64_t>(
                      options_.maxQueueDepth));
    for (const char *name :
         {"rejected", "shed", "retries", "retry_exhausted",
          "injected_throws", "injected_stalls", "watchdog_trips",
          "deadline_exceeded"})
        admission.set(name, resilienceStats_.get(name));
    doc.set("resilience", std::move(admission));

    const ResultCache::Stats cs = cache_.stats();
    obs::Json cache = obs::Json::object();
    cache.set("mem_hits", cs.memHits);
    cache.set("disk_hits", cs.diskHits);
    cache.set("misses", cs.misses);
    cache.set("stores", cs.stores);
    cache.set("invalidated", cs.invalidated);
    cache.set("evictions", cs.evictions);
    cache.set("hit_rate", cs.hitRate());
    cache.set("write_failures", cs.writeFailures);
    cache.set("torn_writes", cs.tornWrites);
    cache.set("quarantined", cs.quarantined);
    cache.set("tmp_swept", cs.tmpSwept);
    cache.set("degraded", cs.degraded);
    doc.set("cache", std::move(cache));

    if (remote_) {
        const RemoteCacheStats rs = remote_->stats();
        obs::Json remote = obs::Json::object();
        remote.set("peers", static_cast<std::uint64_t>(
                                remote_->peers().size()));
        remote.set("hits", rs.hits);
        remote.set("misses", rs.misses);
        remote.set("errors", rs.errors);
        remote.set("invalidated", rs.invalidated);
        remote.set("stores", rs.stores);
        remote.set("store_failures", rs.storeFailures);
        remote.set("pending", rs.pending);
        doc.set("remote_cache", std::move(remote));
    }

    doc.set("latency", latencyJson(options_.telemetry));

    if (slo_) {
        obs::Json slo = obs::Json::object();
        slo.set("objectives", slo_->statusJson());
        slo.set("violations", slo_->violations());
        slo.set("alerts_raised", slo_->alertsRaised());
        slo.set("alerts_active", slo_->alertsActive());
        doc.set("slo", std::move(slo));
    }
    if (collector_)
        doc.set("series", collector_->series().toJson());
    if (flight_)
        doc.set("flight", flight_->statsJson());

    obs::Json errors = obs::Json::array();
    for (const ErrorRecord &record : errorRing_) {
        obs::Json entry = obs::Json::object();
        entry.set("job", record.jobId);
        entry.set("trace_id", telem::traceIdHex(record.traceId));
        entry.set("kind", record.kind);
        entry.set("error", record.error);
        entry.set("at_ms", record.atMs);
        errors.push(std::move(entry));
    }
    doc.set("errors", std::move(errors));
    return doc;
}

} // namespace stitch::svc

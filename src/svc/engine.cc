#include "svc/engine.hh"

#include <algorithm>
#include <thread>

#include "common/logging.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "svc/artifacts.hh"

namespace stitch::svc
{

using Clock = std::chrono::steady_clock;

const char *
jobStatusName(JobResult::Status status)
{
    switch (status) {
    case JobResult::Status::Pending: return "pending";
    case JobResult::Status::Running: return "running";
    case JobResult::Status::Completed: return "completed";
    case JobResult::Status::Failed: return "failed";
    case JobResult::Status::Cancelled: return "cancelled";
    }
    return "?";
}

JobEngine::JobEngine(const EngineOptions &options)
    : options_(options),
      cache_(options.cacheDir, options.memCacheEntries)
{
    registry_.add("svc.jobs", jobStats_);
    registry_.add("svc.cache", cacheStats_);
    registry_.add("svc.queue", queueStats_);
    registry_.add("svc.latency", latencyStats_);
    // Materialize the counter set so reports carry stable keys even
    // before the first job.
    for (const char *name :
         {"submitted", "completed", "failed", "cancelled",
          "cache_hits", "simulated"})
        jobStats_.counter(name);
    queueStats_.counter("peak_depth");
    for (const char *name : {"le_1ms", "le_10ms", "le_100ms", "le_1s",
                             "le_10s", "gt_10s"})
        latencyStats_.counter(name);
}

JobEngine::~JobEngine() = default;

int
JobEngine::submit(const JobSpec &spec)
{
    spec.validate();
    const std::string key = spec.cacheKey();

    std::lock_guard<std::mutex> lock(mutex_);
    const int id = static_cast<int>(jobs_.size());
    auto job = std::make_unique<Job>();
    job->spec = spec;
    job->result.key = key;
    jobs_.push_back(std::move(job));
    queue_.push({spec.priority, -id});
    jobStats_.inc("submitted");
    queueStats_.set("peak_depth",
                    std::max<std::uint64_t>(
                        queueStats_.get("peak_depth"), queue_.size()));
    return id;
}

int
JobEngine::submit(const obs::Json &doc)
{
    return submit(JobSpec::fromJson(doc));
}

bool
JobEngine::cancel(int id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (id < 0 || id >= static_cast<int>(jobs_.size()))
        return false;
    JobResult &result = jobs_[static_cast<std::size_t>(id)]->result;
    if (result.status != JobResult::Status::Pending)
        return false;
    result.status = JobResult::Status::Cancelled;
    jobStats_.inc("cancelled");
    return true;
}

void
JobEngine::recordLatency(JobResult &result, Clock::time_point t0)
{
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    result.latencyMs = ms;
    const char *bucket = ms <= 1.0      ? "le_1ms"
                         : ms <= 10.0   ? "le_10ms"
                         : ms <= 100.0  ? "le_100ms"
                         : ms <= 1e3    ? "le_1s"
                         : ms <= 1e4    ? "le_10s"
                                        : "gt_10s";
    latencyStats_.inc(bucket);
}

void
JobEngine::finishCompleted(Job &job, const CacheEntry &entry,
                           bool cached, Clock::time_point t0)
{
    job.result.report = entry.report;
    job.result.derived = entry.derived;
    job.result.cached = cached;
    job.result.status = JobResult::Status::Completed;
    jobStats_.inc("completed");
    jobStats_.inc(cached ? "cache_hits" : "simulated");
    recordLatency(job.result, t0);
}

void
JobEngine::finishFailed(Job &job, const std::string &kind,
                        const std::string &message,
                        Clock::time_point t0)
{
    job.result.error = message;
    job.result.errorKind = kind;
    job.result.status = JobResult::Status::Failed;
    jobStats_.inc("failed");
    recordLatency(job.result, t0);
}

bool
JobEngine::claimAndRunOne()
{
    Job *claimed = nullptr;
    const auto t0 = Clock::now();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        while (!queue_.empty()) {
            const int id = -queue_.top().second;
            queue_.pop();
            Job &job = *jobs_[static_cast<std::size_t>(id)];
            if (job.result.status == JobResult::Status::Cancelled)
                continue; // cancelled while queued; entry is stale
            claimed = &job;
            break;
        }
        if (!claimed)
            return false;

        Job &job = *claimed;
        job.result.status = JobResult::Status::Running;

        if (cache_.memEnabled() || cache_.diskEnabled()) {
            // Resolve against the cache inside the claim critical
            // section: attribution (hit vs simulate) becomes a pure
            // function of submit order, independent of worker count.
            if (auto hit = cache_.memLookup(job.result.key)) {
                finishCompleted(job, *hit, /*cached=*/true, t0);
                return true;
            }
            if (auto it = inflight_.find(job.result.key);
                it != inflight_.end()) {
                job.flight = it->second; // coalesce: wait below
            } else {
                job.flight = std::make_shared<Flight>();
                job.flightOwner = true;
                inflight_[job.result.key] = job.flight;
            }
        }
    }

    Job &job = *claimed;

    if (job.flight && !job.flightOwner) {
        // An identical spec is simulating right now; adopt its
        // outcome instead of simulating twice.
        std::unique_lock<std::mutex> flightLock(job.flight->mutex);
        job.flight->cv.wait(flightLock,
                            [&] { return job.flight->done; });
        const bool failed = job.flight->failed;
        const std::string error = job.flight->error;
        const std::string kind = job.flight->errorKind;
        const CacheEntry entry = job.flight->entry;
        flightLock.unlock();

        std::lock_guard<std::mutex> lock(mutex_);
        if (failed)
            finishFailed(job, kind, error, t0);
        else
            finishCompleted(job, entry, /*cached=*/true, t0);
        return true;
    }

    // This worker owns the simulation (or caching is fully disabled).
    CacheEntry entry;
    bool failed = false;
    bool fromDisk = false;
    std::string error, kind;
    if (job.flightOwner) {
        if (auto hit = cache_.diskLookup(job.spec)) {
            entry = *hit;
            fromDisk = true;
        }
    }
    if (!fromDisk) {
        try {
            const apps::AppSpec &app = job.spec.resolveApp();
            apps::AppRunResult res =
                runner_.run(app, job.spec.mode, job.spec.runConfig());
            ReportOptions reportOptions;
            reportOptions.profile = job.spec.artifacts.profile;
            reportOptions.energy = job.spec.artifacts.energy;
            entry.report = appReportJson(res, reportOptions);
            entry.derived = derivedJson(res);
            if (cache_.memEnabled() || cache_.diskEnabled())
                cache_.store(job.spec, entry);
        } catch (const fault::ConfigError &e) {
            failed = true;
            kind = "config";
            error = e.what();
        } catch (const fault::BinaryMismatchError &e) {
            failed = true;
            kind = "mismatch";
            error = e.what();
        } catch (const fault::SimError &e) {
            failed = true;
            kind = "sim";
            error = e.what();
        } catch (const std::exception &e) {
            failed = true;
            kind = "internal";
            error = e.what();
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (failed)
            finishFailed(job, kind, error, t0);
        else
            finishCompleted(job, entry, /*cached=*/fromDisk, t0);
    }

    if (job.flightOwner) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inflight_.erase(job.result.key);
        }
        std::lock_guard<std::mutex> flightLock(job.flight->mutex);
        job.flight->failed = failed;
        job.flight->error = error;
        job.flight->errorKind = kind;
        job.flight->entry = entry;
        job.flight->done = true;
        job.flight->cv.notify_all();
    }
    return true;
}

void
JobEngine::run()
{
    int workers = options_.jobs;
    if (workers < 1)
        workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers < 1)
        workers = 1;
    if (workers > 1 &&
        (obs::Tracer::enabled() || obs::Sampler::enabled())) {
        // Same rule as sim::SweepRunner: the trace and profile sinks
        // are process-wide single streams.
        warn("job engine forced to --jobs=1: tracing/profiling write "
             "to process-wide sinks");
        workers = 1;
    }

    std::size_t pending = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending = queue_.size();
    }
    workers = std::min<int>(workers, static_cast<int>(pending));

    if (workers <= 1) {
        while (claimAndRunOne()) {}
        return;
    }

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        pool.emplace_back([this] {
            while (claimAndRunOne()) {}
        });
    for (auto &t : pool)
        t.join();
}

int
JobEngine::jobCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<int>(jobs_.size());
}

const JobSpec &
JobEngine::spec(int id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.at(static_cast<std::size_t>(id))->spec;
}

const JobResult &
JobEngine::result(int id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return jobs_.at(static_cast<std::size_t>(id))->result;
}

obs::Json
JobEngine::serviceReportJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Mirror the cache's own counters into the registry group so the
    // report is one coherent tree.
    const ResultCache::Stats cs = cache_.stats();
    cacheStats_.set("mem_hits", cs.memHits);
    cacheStats_.set("disk_hits", cs.diskHits);
    cacheStats_.set("misses", cs.misses);
    cacheStats_.set("stores", cs.stores);
    cacheStats_.set("invalidated", cs.invalidated);
    queueStats_.set("depth", queue_.size());

    obs::Json doc = obs::Json::object();
    doc.set("schema", serviceReportSchema);
    doc.set("version", serviceReportVersion);
    doc.set("jobs", static_cast<std::uint64_t>(jobs_.size()));
    doc.set("counters", registry_.toJson(/*skipZero=*/false));
    return doc;
}

} // namespace stitch::svc

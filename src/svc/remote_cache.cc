#include "svc/remote_cache.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "svc/server.hh"

namespace stitch::svc
{

PeerEndpoint
parsePeerEndpoint(const std::string &text)
{
    const auto colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0)
        throw fault::ConfigError(detail::formatMessage(
            "peer endpoint must be HOST:PORT, got '", text, "'"));
    const long port = std::strtol(text.c_str() + colon + 1,
                                  nullptr, 10);
    if (port < 1 || port > 65535)
        throw fault::ConfigError(detail::formatMessage(
            "peer endpoint '", text,
            "' has a port outside 1..65535"));
    PeerEndpoint peer;
    peer.host = text.substr(0, colon);
    peer.port = static_cast<std::uint16_t>(port);
    return peer;
}

std::vector<PeerEndpoint>
parsePeerList(const std::string &csv)
{
    std::vector<PeerEndpoint> peers;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t end = csv.find(',', start);
        if (end == std::string::npos)
            end = csv.size();
        if (end > start)
            peers.push_back(
                parsePeerEndpoint(csv.substr(start, end - start)));
        start = end + 1;
    }
    return peers;
}

namespace
{

obs::Json
cacheGetRequest(const JobSpec &spec, const std::string &key)
{
    obs::Json doc = obs::Json::object();
    doc.set("cmd", "cacheget");
    doc.set("key", key);
    doc.set("spec", spec.toJson());
    return doc;
}

obs::Json
cachePutRequest(const JobSpec &spec, const std::string &key,
                const CacheEntry &entry)
{
    obs::Json doc = obs::Json::object();
    doc.set("cmd", "cacheput");
    doc.set("key", key);
    doc.set("stamp", cacheStamp());
    doc.set("spec", spec.toJson());
    doc.set("report", entry.report);
    doc.set("derived", entry.derived);
    return doc;
}

} // namespace

RemoteCacheClient::RemoteCacheClient(
    const RemoteCacheOptions &options)
    : timeoutMs_(options.timeoutMs),
      writeBehind_(options.writeBehind)
{
    for (const std::string &peer : options.peers)
        peers_.push_back(parsePeerEndpoint(peer));
    if (writeBehind_ && !peers_.empty())
        writer_ = std::thread([this] { writerLoop(); });
}

RemoteCacheClient::~RemoteCacheClient()
{
    if (writer_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        writer_.join();
    }
}

std::optional<CacheEntry>
RemoteCacheClient::lookup(const JobSpec &spec,
                          const std::string &key)
{
    if (peers_.empty())
        return std::nullopt;

    const obs::Json request = cacheGetRequest(spec, key);
    const std::string localStamp = cacheStamp();
    const std::string localEcho = spec.canonicalJson().dump();

    // Deterministic probe order keyed on the content address: every
    // process walks the same permutation, and under the router's
    // ring the first probe usually lands on the key's owner.
    const std::size_t start = static_cast<std::size_t>(
        hashBytes(key) % peers_.size());
    for (std::size_t i = 0; i < peers_.size(); ++i) {
        const PeerEndpoint &peer =
            peers_[(start + i) % peers_.size()];
        obs::Json response;
        try {
            response = requestReport(peer.host, peer.port, request,
                                     /*chaos=*/nullptr,
                                     /*requestIndex=*/0, timeoutMs_);
        } catch (const fault::ConfigError &) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.errors;
            continue; // dead peer: the tier degrades, jobs don't
        }
        if (!response.isObject() || !response.has("status")) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.errors;
            continue;
        }
        const std::string status =
            response.get("status").asString();
        if (status == "miss")
            continue;
        if (status != "hit") {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.errors; // typed error document
            continue;
        }
        // The stamp and spec-echo guards, applied to the *remote*
        // entry exactly as diskLookup applies them to a file.
        if (!response.has("stamp") ||
            response.get("stamp").asString() != localStamp ||
            !response.has("spec_echo") ||
            response.get("spec_echo").asString() != localEcho) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.invalidated;
            continue;
        }
        if (!response.has("report") || !response.has("derived")) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.errors;
            continue;
        }
        CacheEntry entry;
        entry.report = response.get("report");
        entry.derived = response.get("derived");
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++stats_.hits;
        }
        return entry;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.misses;
    return std::nullopt;
}

void
RemoteCacheClient::storeBehind(const JobSpec &spec,
                               const std::string &key,
                               const CacheEntry &entry)
{
    if (peers_.empty())
        return;
    obs::Json doc = cachePutRequest(spec, key, entry);
    if (!writeBehind_) {
        replicate(doc);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(doc));
        stats_.pending = queue_.size();
    }
    cv_.notify_all();
}

void
RemoteCacheClient::replicate(const obs::Json &doc)
{
    for (const PeerEndpoint &peer : peers_) {
        bool stored = false;
        try {
            obs::Json response =
                requestReport(peer.host, peer.port, doc,
                              /*chaos=*/nullptr,
                              /*requestIndex=*/0, timeoutMs_);
            stored = response.isObject() &&
                     response.has("status") &&
                     response.get("status").asString() == "ok";
        } catch (const fault::ConfigError &) {
            stored = false;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (stored)
            ++stats_.stores;
        else
            ++stats_.storeFailures;
    }
}

void
RemoteCacheClient::writerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock,
                 [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stop_)
                return; // drained: nothing left to replicate
            continue;
        }
        obs::Json doc = std::move(queue_.front());
        queue_.pop_front();
        stats_.pending = queue_.size();
        busy_ = true;
        lock.unlock();
        replicate(doc);
        lock.lock();
        busy_ = false;
        cv_.notify_all(); // flush() waiters
    }
}

void
RemoteCacheClient::flush()
{
    if (!writer_.joinable()) // inline mode: nothing queues
        return;
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock,
             [this] { return queue_.empty() && !busy_; });
}

RemoteCacheStats
RemoteCacheClient::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

} // namespace stitch::svc

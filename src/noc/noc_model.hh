/**
 * @file
 * The conventional inter-core NoC (paper Table II: 2-D mesh, XY
 * routing, 5-stage routers, 1-cycle links, 1-flit control / 5-flit
 * data packets) and the MPI-lite message-passing layer on top of it.
 *
 * This network is entirely separate from the compiler-scheduled
 * inter-patch sNoC (core/snoc.hh): this one moves application
 * messages between cores with routers and buffering; that one moves
 * custom-instruction operands between patches with bare wires.
 *
 * Timing: a one-word message is a 5-flit data packet. Uncontended
 * latency is nicInject + hops*(routerStages + linkCycles) +
 * (flits - 1) serialization + nicEject. Contention is modelled by
 * per-link reservation: each mesh link carries one flit per cycle, so
 * a packet claims every link on its XY route for `flits` cycles and
 * queues behind earlier packets.
 */

#ifndef STITCH_NOC_NOC_MODEL_HH
#define STITCH_NOC_NOC_MODEL_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "cpu/core.hh"

namespace stitch::noc
{

/** Configuration of the inter-core network. */
struct NocParams
{
    Cycles routerStages = 5; ///< pipeline depth of each router
    Cycles linkCycles = 1;   ///< per-hop wire latency
    int dataFlits = 5;       ///< flits per one-word data packet
    Cycles nicInject = 2;    ///< NIC overhead at the sender
    Cycles nicEject = 2;     ///< NIC overhead at the receiver
};

/**
 * The mesh network + per-tile NIC receive queues. Implements the
 * MessageHub interface consumed by cpu::Core.
 */
class NocModel : public cpu::MessageHub
{
  public:
    explicit NocModel(const NocParams &params = NocParams{});

    Cycles send(TileId src, TileId dst, int tag, Word value,
                Cycles now) override;

    /**
     * Like send(), but the packet arrives `extraLatency` cycles late.
     * The fault layer uses this to model transient congestion or a
     * glitching router; zero is exactly the plain send().
     */
    Cycles send(TileId src, TileId dst, int tag, Word value,
                Cycles now, Cycles extraLatency);

    std::optional<std::pair<Word, Cycles>>
    tryRecv(TileId dst, TileId src, int tag) override;

    /** Uncontended end-to-end latency between two tiles. */
    Cycles baseLatency(TileId src, TileId dst) const;

    /** Directed links modelled (4 per tile; edge links stay idle). */
    static constexpr int numLinks = numTiles * 4;

    /**
     * Cycles each directed link spent carrying flits, indexed by the
     * internal link id (tile * 4 + direction). Divide by the run's
     * makespan for link utilization.
     */
    const std::vector<Cycles> &linkBusyCycles() const
    {
        return linkBusy_;
    }

    /** Human-readable "t3→t7" label of a link id. */
    static std::string linkName(int link);

    /** Drop all queued messages and link reservations. */
    void reset();

    /** True if any message is queued anywhere (leak check). */
    bool hasPendingMessages() const;

    const NocParams &params() const { return params_; }
    StatGroup &stats() { return stats_; }

  private:
    struct Message
    {
        TileId src;
        int tag;
        Word value;
        Cycles arrival;
    };

    /** Directed link id: 2 links per adjacent tile pair. */
    int linkId(TileId from, TileId to) const;

    /** XY route from src to dst as a tile sequence. */
    std::vector<TileId> xyRoute(TileId src, TileId dst) const;

    NocParams params_;
    std::vector<Cycles> linkFree_; ///< next free cycle per link
    std::vector<Cycles> linkBusy_; ///< flit-carrying cycles per link
    std::vector<std::deque<Message>> rxQueues_; ///< per destination
    StatGroup stats_;
    Counter &packets_;    ///< cached handles; see StatGroup::counter
    Counter &delivered_;
    Counter &linkStalls_;
};

} // namespace stitch::noc

#endif // STITCH_NOC_NOC_MODEL_HH

#include "noc/noc_model.hh"

#include "common/logging.hh"
#include "common/table.hh"
#include "obs/trace.hh"

namespace stitch::noc
{

NocModel::NocModel(const NocParams &params)
    : params_(params),
      linkFree_(static_cast<std::size_t>(numLinks), 0),
      linkBusy_(static_cast<std::size_t>(numLinks), 0),
      rxQueues_(static_cast<std::size_t>(numTiles)),
      packets_(stats_.counter("packets")),
      delivered_(stats_.counter("delivered")),
      linkStalls_(stats_.counter("link_stall_cycles"))
{
}

std::string
NocModel::linkName(int link)
{
    static const char *dirs[] = {"N", "E", "S", "W"};
    return strformat("t%d%s", link / 4, dirs[link % 4]);
}

int
NocModel::linkId(TileId from, TileId to) const
{
    STITCH_ASSERT(tileDistance(from, to) == 1,
                  "link between non-adjacent tiles");
    int dir;
    if (tileRow(to) == tileRow(from) - 1)
        dir = 0; // north
    else if (tileCol(to) == tileCol(from) + 1)
        dir = 1; // east
    else if (tileRow(to) == tileRow(from) + 1)
        dir = 2; // south
    else
        dir = 3; // west
    return from * 4 + dir;
}

std::vector<TileId>
NocModel::xyRoute(TileId src, TileId dst) const
{
    std::vector<TileId> route{src};
    TileId at = src;
    // X first, then Y (dimension-ordered routing; deadlock free).
    while (tileCol(at) != tileCol(dst)) {
        at += tileCol(at) < tileCol(dst) ? 1 : -1;
        route.push_back(at);
    }
    while (tileRow(at) != tileRow(dst)) {
        at += tileRow(at) < tileRow(dst) ? meshDim : -meshDim;
        route.push_back(at);
    }
    return route;
}

Cycles
NocModel::baseLatency(TileId src, TileId dst) const
{
    auto hops = static_cast<Cycles>(tileDistance(src, dst));
    return params_.nicInject +
           hops * (params_.routerStages + params_.linkCycles) +
           static_cast<Cycles>(params_.dataFlits - 1) + params_.nicEject;
}

Cycles
NocModel::send(TileId src, TileId dst, int tag, Word value, Cycles now)
{
    return send(src, dst, tag, value, now, 0);
}

Cycles
NocModel::send(TileId src, TileId dst, int tag, Word value, Cycles now,
               Cycles extraLatency)
{
    STITCH_ASSERT(src >= 0 && src < numTiles, "bad source tile ", src);
    if (dst < 0 || dst >= numTiles)
        fatal("SEND to invalid tile ", dst);
    ++packets_;

    Cycles head = now + params_.nicInject;
    if (src != dst) {
        auto route = xyRoute(src, dst);
        for (std::size_t i = 0; i + 1 < route.size(); ++i) {
            int link = linkId(route[i], route[i + 1]);
            Cycles start = head;
            auto &freeAt = linkFree_[static_cast<std::size_t>(link)];
            if (freeAt > start) {
                linkStalls_ += freeAt - start;
                start = freeAt;
            }
            freeAt = start + static_cast<Cycles>(params_.dataFlits);
            linkBusy_[static_cast<std::size_t>(link)] +=
                static_cast<Cycles>(params_.dataFlits);
            head = start + params_.routerStages + params_.linkCycles;
        }
    }
    Cycles arrival = head + static_cast<Cycles>(params_.dataFlits - 1) +
                     params_.nicEject + extraLatency;

    if (obs::Tracer::enabled()) {
        // One slice per packet on the source tile's NoC row, spanning
        // injection to arrival at the destination NIC.
        obs::Tracer::instance().slice(
            obs::Tracer::pidNoc, src,
            src == dst ? "pkt local" : "pkt", now, arrival,
            {{"src", static_cast<std::uint64_t>(src)},
             {"dst", static_cast<std::uint64_t>(dst)},
             {"tag", static_cast<std::uint64_t>(tag)}});
    }

    rxQueues_[static_cast<std::size_t>(dst)].push_back(
        Message{src, tag, value, arrival});

    // The sender only pays the injection overhead; delivery proceeds
    // in the background (asynchronous send).
    return params_.nicInject;
}

std::optional<std::pair<Word, Cycles>>
NocModel::tryRecv(TileId dst, TileId src, int tag)
{
    STITCH_ASSERT(dst >= 0 && dst < numTiles);
    auto &queue = rxQueues_[static_cast<std::size_t>(dst)];
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (it->src == src && it->tag == tag) {
            auto out = std::make_pair(it->value, it->arrival);
            queue.erase(it);
            ++delivered_;
            return out;
        }
    }
    return std::nullopt;
}

void
NocModel::reset()
{
    for (auto &f : linkFree_)
        f = 0;
    for (auto &b : linkBusy_)
        b = 0;
    for (auto &q : rxQueues_)
        q.clear();
}

bool
NocModel::hasPendingMessages() const
{
    for (const auto &q : rxQueues_)
        if (!q.empty())
            return true;
    return false;
}

} // namespace stitch::noc

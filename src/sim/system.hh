/**
 * @file
 * The full 16-tile Stitch system simulator: cores, private memories,
 * the inter-core NoC, the patches, and the preset inter-patch sNoC.
 *
 * Multi-core time is coordinated with an exact conservative
 * discipline: the runnable core with the smallest local time executes
 * next, so a RECV that finds no message can safely block — any future
 * sender is already at a later local time.
 */

#ifndef STITCH_SIM_SYSTEM_HH
#define STITCH_SIM_SYSTEM_HH

#include <array>
#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "compiler/rewriter.hh"
#include "core/arch.hh"
#include "core/locus.hh"
#include "core/snoc.hh"
#include "cpu/core.hh"
#include "cpu/patch_handler.hh"
#include "fault/fault.hh"
#include "mem/tile_memory.hh"
#include "noc/noc_model.hh"
#include "obs/registry.hh"
#include "sim/sched.hh"

namespace stitch::sim
{

/** Which accelerator fabric the system instantiates. */
enum class AccelMode
{
    None,   ///< the 16-core message-passing baseline
    Locus,  ///< per-core LOCUS SFUs
    Stitch, ///< polymorphic patches + inter-patch sNoC
};

/**
 * How System::run dispatches work to the cores. Both schedulers
 * implement the same conservative discipline and produce
 * bit-identical RunStats, reports, traces and profiles; Step is the
 * simple reference (one linear scan + one instruction per iteration),
 * Slice the production path (indexed min-heap + run-ahead slices).
 *
 * The slice scheduler picks between two run-ahead regimes per run
 * (see DESIGN.md §10 for the invariant proofs):
 *
 *  - relaxed (the fast path): a core runs ahead through tile-private
 *    work (ALU, control flow, private-memory traffic) without limit;
 *    only the globally visible operations — SEND, RECV, CUST — wait
 *    until the core holds the globally minimal (time, id) key. The
 *    global event order, and with it every message arrival, every
 *    injected-fault stream and every final counter, is exactly the
 *    step scheduler's.
 *  - exact: the slice additionally ends as soon as the core's clock
 *    passes the next-runnable tile's key, reproducing the step
 *    scheduler's total instruction interleaving one-for-one. Chosen
 *    automatically whenever something observes that total order:
 *    cycle tracing (event file order), active fault injection
 *    (partial stats at a Fault termination), or a finite instruction
 *    budget (which attempt is the cutoff). Interval profiling
 *    further drops to single-instruction dispatch so bucket deltas
 *    land in the reference sample windows.
 *
 * The compiled scheduler is the third regime: it keeps the slice
 * scheduler's relaxed run-ahead discipline but drives each core
 * through Core::runCompiled — translation-cached micro-op traces with
 * inline-cached memory routing and superinstructions (src/jit/,
 * DESIGN.md §15) instead of the per-instruction fetch→decode→switch.
 * Whenever something observes per-instruction order or state (cycle
 * tracing, interval sampling, an active fault injector, a meaningful
 * instruction budget), the whole run deoptimizes to the slice
 * scheduler, which already handles those regimes byte-exactly.
 *
 * The `sched_parity_is_exact` ctest and tests/test_sched.cc hold all
 * three schedulers to byte-equality across all of these regimes.
 */
enum class SchedulerKind
{
    Step,  ///< reference: O(tiles) scan, one instruction per pick
    Slice, ///< event-driven: O(log tiles) heap, run-ahead slices
    Compiled, ///< slice discipline + translation-cached trace dispatch
};

/** Printable name ("step" / "slice" / "compiled"). */
const char *schedulerKindName(SchedulerKind k);

/** Parse a --scheduler= value; throws fault::ConfigError otherwise. */
SchedulerKind schedulerKindFromName(const std::string &name);

/** System-wide configuration. */
struct SystemParams
{
    mem::MemParams mem;
    noc::NocParams noc;
    core::StitchArch arch = core::StitchArch::standard();
    AccelMode accel = AccelMode::Stitch;

    /** Run-loop dispatch strategy (results are identical either way). */
    SchedulerKind scheduler = SchedulerKind::Slice;

    /** Hardware faults to inject (default: none). */
    fault::FaultPlan faults;

    /**
     * Cooperative cancellation token (service tier): when non-null,
     * the run loops poll it at dispatch granularity and raise
     * fault::DeadlineExceededError once it reads true. Null (the
     * default) costs one predictable branch per dispatch and keeps
     * every run byte-identical to a token-free build.
     */
    const std::atomic<bool> *abortFlag = nullptr;
};

/** Per-tile activity of one run. */
struct TileStats
{
    bool loaded = false;
    Cycles cycles = 0; ///< local time at halt
    std::uint64_t instructions = 0;
    std::uint64_t customInstructions = 0;
    std::uint64_t fusedCustomInstructions = 0; ///< CUSTs over the sNoC
    std::uint64_t muls = 0;          ///< each costs 3 extra cycles
    std::uint64_t branchesTaken = 0; ///< each costs 1 extra cycle
    Cycles imissStallCycles = 0;
    Cycles dmissStallCycles = 0;
    Cycles spmStallCycles = 0;  ///< core-side SPM sequencer waits
    Cycles sendStallCycles = 0; ///< NoC injection overhead of SENDs
    Cycles recvWaitCycles = 0; ///< RECV waiting on in-flight messages
    std::uint64_t msgsSent = 0;
    std::uint64_t msgsReceived = 0;
    std::uint64_t snocHops = 0; ///< mesh links this tile's fused CUSTs
                                ///< crossed

    /**
     * Fraction of the makespan this tile spent executing. A tile that
     * never ran has no meaningful utilization: report 0 rather than
     * divide stale cycles by another run's makespan.
     */
    double
    utilization(Cycles makespan) const
    {
        return !loaded || makespan == 0
                   ? 0.0
                   : static_cast<double>(cycles) /
                         static_cast<double>(makespan);
    }
};

/**
 * One cycle-attribution bucket of a tile's local time. The buckets
 * partition every local cycle exactly (see the accounting identity in
 * cpu/core.hh): summed over a loaded tile they equal TileStats::cycles
 * bit-for-bit, which the profiling layer (src/prof/) asserts per run.
 */
enum class CycleBucket
{
    Issue,       ///< issue/execute cycles of ordinary instructions
                 ///< (base cycle + MUL iterations + taken branches)
    CustExecute, ///< single-cycle CUST evaluations on the patch fabric
    CacheMiss,   ///< I-/D-cache miss stalls (DRAM behind the caches)
    Spm,         ///< scratchpad sequencer waits on core LW/SW
    SendBlocked, ///< NoC injection overhead paid by SEND
    RecvBlocked, ///< RECV waiting on an in-flight message
};

inline constexpr int numCycleBuckets = 6;

/** Printable bucket name ("issue", "cust_execute", ...). */
const char *cycleBucketName(CycleBucket b);

/** Names of all buckets, in enum order (sampler series order). */
const std::vector<std::string> &cycleBucketNames();

/** Derive the bucket partition of one tile's local cycles. */
std::array<Cycles, numCycleBuckets>
cycleBuckets(const TileStats &ts);

/**
 * One hot basic block of a finished run: a static CFG block (leaders
 * are instruction 0, every instruction after a control op, and every
 * static branch/JAL target) ranked by dynamically retired
 * instructions. Derived from Core::executionCounts, which every
 * scheduler fills identically, so the ranking is scheduler-independent.
 */
struct HotBlock
{
    TileId tile = 0;
    Addr pc = 0; ///< entry word address of the block
    std::uint32_t length = 0; ///< static instructions in the block
    std::uint64_t instructions = 0; ///< dynamic instructions retired
};

/** One tile blocked in RECV when the run ended (diagnostics). */
struct BlockedTileDiag
{
    TileId tile = -1;
    TileId waitingSrc = -1; ///< SEND partner the RECV polls for
    int waitingTag = 0;
    Addr pc = 0;       ///< word address of the stalled RECV
    Cycles time = 0;   ///< the tile's local time when it stalled
};

/** Per-run statistics. */
struct RunStats
{
    /**
     * How the run ended. Abnormal ends (deadlock, instruction limit,
     * injected fault) are terminations, not exceptions: the partial
     * stats below describe the run up to that point, and the
     * diagnostics fields say why it stopped. Only misconfiguration
     * (a binary the system cannot execute) still throws.
     */
    fault::Termination termination = fault::Termination::Completed;

    /** Blocked-in-RECV tiles; non-empty iff termination==Deadlock. */
    std::vector<BlockedTileDiag> blockedTiles;

    /** The surfaced fault; set iff the fault was a dead patch. */
    std::optional<fault::PatchFault> patchFault;

    /**
     * Why the run faulted; set iff termination==Fault. Covers dead
     * patches and secondary damage (e.g. a flipped CUST output word
     * feeding address arithmetic until a core accesses unmapped
     * memory).
     */
    std::string faultMessage;

    /** Injected-fault activity during the run. */
    std::uint64_t messagesDropped = 0;
    std::uint64_t messagesDelayed = 0;
    std::uint64_t custBitFlips = 0;

    Cycles makespan = 0;
    std::uint64_t instructions = 0; ///< sum over loaded tiles only
    std::uint64_t customInstructions = 0;
    std::uint64_t fusedCustomInstructions = 0;
    std::uint64_t snocHops = 0; ///< mesh links crossed by fused CUSTs
    std::uint64_t messages = 0;
    std::array<TileStats, numTiles> perTile{};

    /** Hottest static basic blocks, by retired instructions (top 8;
     *  ties break on tile then pc for determinism). */
    std::vector<HotBlock> hotBlocks;

    /** Busy cycles of every inter-core NoC link (see NocModel). */
    std::vector<Cycles> linkBusyCycles;

    /** Busy fraction of NoC link `link` over the makespan. */
    double
    linkUtilization(int link) const
    {
        auto i = static_cast<std::size_t>(link);
        return makespan == 0 || i >= linkBusyCycles.size()
                   ? 0.0
                   : static_cast<double>(linkBusyCycles[i]) /
                         static_cast<double>(makespan);
    }
};

/** The chip. */
class System : public cpu::CustomHandler, public cpu::MessageHub
{
  public:
    /**
     * Validates `params` eagerly: malformed memory/NoC parameters or
     * an invalid FaultPlan throw fault::ConfigError here rather than
     * corrupting a run later.
     */
    explicit System(const SystemParams &params = SystemParams{});

    /** Load a binary onto a tile (resets that core). */
    void loadProgram(TileId tile,
                     const compiler::RewrittenProgram &binary);

    /** Declare tile `local`'s patch fused with tile `remote`'s. */
    void setFusionPartner(TileId local, TileId remote);

    /** Preset the inter-patch NoC (validated; Stitch mode only). */
    void configureSnoc(const core::SnocConfig &snoc);

    /** Write one word into a tile's private memory (comm tables). */
    void pokeWord(TileId tile, Addr addr, Word value);

    /**
     * The default `maxInstructions` of run(): a runaway backstop,
     * not a measurement feature. Passing anything smaller marks the
     * budget as meaningful, which makes the slice scheduler use
     * reference-exact interleaving so the cutoff lands on the very
     * same instruction attempt as under the step scheduler.
     */
    static constexpr std::uint64_t runawayInstructionBudget =
        2'000'000'000ull;

    /**
     * Run every loaded core until completion, deadlock, the step
     * budget, or a surfaced hardware fault — see
     * RunStats::termination. Never throws for those; it throws
     * (typed) only for binaries the system cannot execute at all.
     */
    RunStats run(
        std::uint64_t maxInstructions = runawayInstructionBudget);

    /**
     * Dump every translated trace of every loaded tile (compiled
     * scheduler diagnostics; empty when no traces were translated).
     */
    std::string dumpTraces() const;

    cpu::Core &coreAt(TileId t);
    mem::TileMemory &memoryAt(TileId t);
    noc::NocModel &noc() { return noc_; }
    const SystemParams &params() const { return params_; }

    /**
     * Every component's StatGroup under its dotted path
     * ("tile3.dcache", "noc", ...); valid for this System's lifetime.
     */
    const obs::Registry &registry() const { return registry_; }

    // CustomHandler: dispatch CUST to the tile's patch or SFU.
    core::CustResult executeCustom(TileId tile, std::uint64_t blob,
                                   const std::array<Word, 4> &in)
        override;

    // MessageHub: delegate to the NoC, tracking unblocks.
    Cycles send(TileId src, TileId dst, int tag, Word value,
                Cycles now) override;
    std::optional<std::pair<Word, Cycles>>
    tryRecv(TileId dst, TileId src, int tag) override;

  private:
    struct Tile
    {
        std::unique_ptr<mem::TileMemory> memory;
        std::unique_ptr<cpu::Core> core;
        std::unique_ptr<cpu::TileSpmPort> spmPort;
        std::unique_ptr<core::LocusSfu> locus;
        TileId fusionPartner = -1;
        bool loaded = false;
        bool blocked = false;
    };

    /** Cached handles into one tile's patch StatGroup. */
    struct PatchCounters
    {
        Counter *custs = nullptr;
        Counter *fused = nullptr;
        Counter *spmLoads = nullptr;
        Counter *spmStores = nullptr;
        Counter *snocHops = nullptr;
    };

    /**
     * Cached handles into one core's StatGroup, so the run loop's
     * stat fill and the interval sampler never pay a per-step string
     * lookup. Values reset in place on loadProgram; handles persist.
     */
    struct CoreCounters
    {
        Counter *instructions = nullptr;
        Counter *custs = nullptr;
        Counter *muls = nullptr;
        Counter *branches = nullptr;
        Counter *imiss = nullptr;
        Counter *dmiss = nullptr;
        Counter *spm = nullptr;
        Counter *send = nullptr;
        Counter *recv = nullptr;
    };

    /** Cumulative buckets of tile `t` right now (from CoreCounters). */
    std::array<Cycles, numCycleBuckets> bucketsNow(TileId t) const;

    /** Feed the stepped tile's new bucket cycles to the sampler. */
    void sampleStep(TileId t);

    /** The reference scheduler: linear scan, one instruction/pick. */
    void runStepLoop(RunStats &stats, std::uint64_t maxInstructions);

    /** The event-driven scheduler: run queue + run-ahead slices. */
    void runSliceLoop(RunStats &stats, std::uint64_t maxInstructions);

    /**
     * The compiled scheduler: the slice run queue driving
     * Core::runCompiled. Deoptimizes wholesale to runSliceLoop when
     * tracing, sampling, fault injection or a meaningful budget needs
     * per-instruction observability.
     */
    void runCompiledLoop(RunStats &stats,
                         std::uint64_t maxInstructions);

    /** Collect blocked-tile diagnostics when nothing is runnable. */
    void noteDeadlock(RunStats &stats);

    /** Fill the per-tile / chip-wide totals of a finished run. */
    void collectRunStats(RunStats &stats);

    /** A message injected during the current step (for wake-up). */
    struct SentMessage
    {
        TileId src = -1;
        TileId dst = -1;
        int tag = 0;
    };

    SystemParams params_;
    noc::NocModel noc_;
    std::array<Tile, numTiles> tiles_;
    core::NullSpmPort nullSpm_;
    fault::FaultInjector injector_;
    std::vector<SentMessage> sentThisStep_;
    RunQueue queue_; ///< runnable tiles of the slice scheduler

    core::SnocConfig snocCfg_; ///< preset kept for hop attribution
    std::array<StatGroup, numTiles> patchStats_;
    std::array<PatchCounters, numTiles> patchCounters_;
    std::array<CoreCounters, numTiles> coreCounters_;

    /** Sampler state: last seen cumulative buckets per tile. */
    std::array<std::array<Cycles, numCycleBuckets>, numTiles>
        sampledBuckets_{};
    StatGroup snocStats_;
    Counter *snocFused_ = nullptr;
    Counter *snocHops_ = nullptr;

    /** Injected-fault activity (registered as "fault" when armed). */
    StatGroup faultStats_;
    Counter *msgsDropped_ = nullptr;
    Counter *msgsDelayed_ = nullptr;
    Counter *bitFlips_ = nullptr;

    obs::Registry registry_;
};

} // namespace stitch::sim

#endif // STITCH_SIM_SYSTEM_HH

/**
 * @file
 * Parallel scenario sweeps: run N independent simulation tasks over
 * a pool of worker threads and collect their results in index order.
 *
 * The simulator itself is thread-compatible — a System, an AppRunner
 * call with an explicit apps::RunConfig, and everything under them
 * touch only their own state — so scenario sweeps (fault campaigns,
 * ablation grids) parallelise trivially. The two exceptions are the
 * process-wide observability sinks (obs::Tracer and obs::Sampler,
 * deliberately single-stream singletons): when either is enabled the
 * runner forces the sweep serial so traces and profiles stay coherent
 * and bit-identical to a `--jobs=1` run.
 *
 * Determinism: results land in `results[i]` no matter which worker
 * executed task i, and tasks share no mutable state, so the merged
 * output is byte-identical for every jobs value. tests/test_sched.cc
 * asserts this for a real fault sweep.
 */

#ifndef STITCH_SIM_SWEEP_HH
#define STITCH_SIM_SWEEP_HH

#include <atomic>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace stitch::sim
{

/** Fan-out runner for independent simulation tasks. */
class SweepRunner
{
  public:
    /**
     * @param jobs requested worker count; clamped to >= 1 and forced
     *             to 1 while tracing or interval profiling is active
     *             (they write to process-wide sinks).
     */
    explicit SweepRunner(int jobs = 1);

    /** The worker count actually in effect. */
    int jobs() const { return jobs_; }

    /**
     * Evaluate `fn(i)` for every i in [0, n) and return the results
     * in index order. Tasks are claimed dynamically (an atomic
     * cursor), so uneven scenario costs still load-balance. The
     * first exception thrown by any task (lowest index wins) is
     * rethrown here after all workers have drained.
     */
    template <typename Fn>
    auto
    map(int n, Fn &&fn) -> std::vector<decltype(fn(0))>
    {
        using Result = decltype(fn(0));
        std::vector<Result> results(static_cast<std::size_t>(n));
        if (n == 0)
            return results;

        const int workers = std::min(jobs_, n);
        if (workers <= 1) {
            for (int i = 0; i < n; ++i)
                results[static_cast<std::size_t>(i)] = fn(i);
            return results;
        }

        std::atomic<int> cursor{0};
        std::vector<std::exception_ptr> errors(
            static_cast<std::size_t>(n));
        auto worker = [&] {
            while (true) {
                int i = cursor.fetch_add(1,
                                         std::memory_order_relaxed);
                if (i >= n)
                    return;
                try {
                    results[static_cast<std::size_t>(i)] = fn(i);
                } catch (...) {
                    errors[static_cast<std::size_t>(i)] =
                        std::current_exception();
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int w = 0; w < workers; ++w)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();

        for (const auto &err : errors)
            if (err)
                std::rethrow_exception(err);
        return results;
    }

  private:
    int jobs_;
};

} // namespace stitch::sim

#endif // STITCH_SIM_SWEEP_HH

/**
 * @file
 * The event-driven run queue of the system scheduler: an indexed
 * binary min-heap of runnable tiles keyed by (local time, tile id).
 *
 * The conservative discipline executes the runnable core with the
 * smallest local time next, ties broken towards the smallest tile id —
 * exactly the element a linear scan with a strict `<` comparison would
 * find. Encoding the tie-break in the heap key makes the heap's pop
 * order bit-identical to the scan's pick order, which is what lets the
 * slice scheduler promise byte-equal run reports (see DESIGN.md §10).
 * The (time, id) key is a total order — tile ids are unique — so the
 * extraction sequence does not depend on the heap's internal layout,
 * and the cheap updateTop() path is observably identical to pop+push.
 *
 * Capacity is the fixed tile count, so the heap lives in two small
 * arrays with no allocation: push/pop are O(log numTiles) with a
 * handful of moves, and idle / halted / blocked tiles — which are
 * simply absent — cost nothing per event. Everything is defined
 * inline: the scheduler touches the queue once or twice per slice,
 * and at slice lengths of a few instructions an out-of-line call per
 * touch is measurable.
 */

#ifndef STITCH_SIM_SCHED_HH
#define STITCH_SIM_SCHED_HH

#include <array>

#include "common/logging.hh"
#include "common/types.hh"

namespace stitch::sim
{

/** Min-heap of runnable tiles ordered by (local time, tile id). */
class RunQueue
{
  public:
    /** One queued tile and the local time it was queued at. */
    struct Entry
    {
        Cycles time = 0;
        TileId tile = -1;
    };

    RunQueue() { pos_.fill(-1); }

    bool empty() const { return size_ == 0; }
    int size() const { return size_; }

    /** Drop every entry (start of a run). */
    void
    clear()
    {
        size_ = 0;
        pos_.fill(-1);
    }

    /** Is tile `t` currently queued? (debugging / invariants) */
    bool
    contains(TileId t) const
    {
        return pos_[static_cast<std::size_t>(t)] >= 0;
    }

    /** Queue tile `t` at local time `time`; `t` must not be queued. */
    void
    push(TileId t, Cycles time)
    {
        STITCH_ASSERT(t >= 0 && t < numTiles);
        STITCH_ASSERT(pos_[static_cast<std::size_t>(t)] < 0,
                      "tile queued twice");
        place(size_, Entry{time, t});
        ++size_;
        siftUp(size_ - 1);
    }

    /** The queued tile with the smallest (time, id) key. */
    TileId
    top() const
    {
        return heap_[0].tile;
    }

    /** Local time of top() when it was queued. */
    Cycles
    topTime() const
    {
        return heap_[0].time;
    }

    /**
     * The entry that becomes top() if top()'s time grows: the smaller
     * of the root's children. Meaningful only while size() > 1; it is
     * the slice scheduler's run-ahead horizon.
     */
    Entry
    second() const
    {
        STITCH_ASSERT(size_ > 1, "no second entry");
        if (size_ > 2 && before(heap_[2], heap_[1]))
            return heap_[2];
        return heap_[1];
    }

    /** Remove top(). */
    void
    pop()
    {
        STITCH_ASSERT(size_ > 0, "pop from an empty run queue");
        pos_[static_cast<std::size_t>(heap_[0].tile)] = -1;
        --size_;
        if (size_ > 0) {
            Entry last = heap_[static_cast<std::size_t>(size_)];
            place(0, last);
            siftDown(0);
        }
    }

    /**
     * Re-key top() at its core's advanced local time without leaving
     * the heap: one siftDown — usually a single exchange with the
     * entry second() returned — instead of a pop+push pair. Requires
     * `time >= topTime()` (local clocks are monotonic).
     */
    void
    updateTop(Cycles time)
    {
        STITCH_ASSERT(size_ > 0, "updateTop on an empty run queue");
        STITCH_ASSERT(time >= heap_[0].time,
                      "core clock moved backwards");
        heap_[0].time = time;
        siftDown(0);
    }

  private:
    static bool
    before(const Entry &a, const Entry &b)
    {
        return a.time != b.time ? a.time < b.time : a.tile < b.tile;
    }

    void
    place(int i, const Entry &e)
    {
        heap_[static_cast<std::size_t>(i)] = e;
        pos_[static_cast<std::size_t>(e.tile)] =
            static_cast<std::int8_t>(i);
    }

    void
    siftUp(int i)
    {
        Entry e = heap_[static_cast<std::size_t>(i)];
        while (i > 0) {
            int parent = (i - 1) / 2;
            if (!before(e, heap_[static_cast<std::size_t>(parent)]))
                break;
            place(i, heap_[static_cast<std::size_t>(parent)]);
            i = parent;
        }
        place(i, e);
    }

    void
    siftDown(int i)
    {
        Entry e = heap_[static_cast<std::size_t>(i)];
        while (true) {
            int child = 2 * i + 1;
            if (child >= size_)
                break;
            if (child + 1 < size_ &&
                before(heap_[static_cast<std::size_t>(child + 1)],
                       heap_[static_cast<std::size_t>(child)]))
                ++child;
            if (!before(heap_[static_cast<std::size_t>(child)], e))
                break;
            place(i, heap_[static_cast<std::size_t>(child)]);
            i = child;
        }
        place(i, e);
    }

    std::array<Entry, numTiles> heap_{};
    std::array<std::int8_t, numTiles> pos_{}; ///< tile -> heap slot
    int size_ = 0;
};

} // namespace stitch::sim

#endif // STITCH_SIM_SCHED_HH

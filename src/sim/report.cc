#include "sim/report.hh"

#include "noc/noc_model.hh"

namespace stitch::sim
{

namespace
{

obs::Json
tileJson(TileId t, const TileStats &ts, Cycles makespan)
{
    obs::Json j = obs::Json::object();
    j.set("tile", static_cast<std::uint64_t>(t));
    j.set("loaded", ts.loaded);
    if (!ts.loaded)
        return j; // stale counters from an unloaded tile say nothing
    j.set("cycles", ts.cycles);
    j.set("utilization", ts.utilization(makespan));
    j.set("instructions", ts.instructions);
    j.set("custom_instructions", ts.customInstructions);
    j.set("fused_custom_instructions", ts.fusedCustomInstructions);
    j.set("imiss_stall_cycles", ts.imissStallCycles);
    j.set("dmiss_stall_cycles", ts.dmissStallCycles);
    j.set("recv_wait_cycles", ts.recvWaitCycles);
    j.set("msgs_sent", ts.msgsSent);
    j.set("msgs_received", ts.msgsReceived);
    return j;
}

} // namespace

obs::Json
runReport(const RunStats &stats, const obs::Registry *registry)
{
    obs::Json doc = obs::Json::object();
    doc.set("schema", runReportSchema);
    doc.set("version", runReportVersion);

    obs::Json totals = obs::Json::object();
    totals.set("makespan_cycles", stats.makespan);
    totals.set("instructions", stats.instructions);
    totals.set("custom_instructions", stats.customInstructions);
    totals.set("fused_custom_instructions",
               stats.fusedCustomInstructions);
    totals.set("snoc_hops", stats.snocHops);
    totals.set("messages", stats.messages);
    doc.set("totals", totals);

    obs::Json tiles = obs::Json::array();
    for (TileId t = 0; t < numTiles; ++t)
        tiles.push(tileJson(t,
                            stats.perTile[static_cast<std::size_t>(t)],
                            stats.makespan));
    doc.set("tiles", tiles);

    obs::Json links = obs::Json::array();
    for (std::size_t l = 0; l < stats.linkBusyCycles.size(); ++l) {
        if (stats.linkBusyCycles[l] == 0)
            continue; // idle links would swamp the document
        obs::Json lj = obs::Json::object();
        lj.set("link", noc::NocModel::linkName(static_cast<int>(l)));
        lj.set("busy_cycles", stats.linkBusyCycles[l]);
        lj.set("utilization",
               stats.linkUtilization(static_cast<int>(l)));
        links.push(lj);
    }
    obs::Json nocj = obs::Json::object();
    nocj.set("links", links);
    doc.set("noc", nocj);

    if (registry)
        doc.set("stats", registry->toJson(/*skipZero=*/true));
    return doc;
}

void
writeRunReport(const std::string &path, const RunStats &stats,
               const obs::Registry *registry)
{
    obs::writeJsonFile(path, runReport(stats, registry));
}

} // namespace stitch::sim

#include "sim/report.hh"

#include "noc/noc_model.hh"

namespace stitch::sim
{

namespace
{

obs::Json
tileJson(TileId t, const TileStats &ts, Cycles makespan)
{
    obs::Json j = obs::Json::object();
    j.set("tile", static_cast<std::uint64_t>(t));
    j.set("loaded", ts.loaded);
    if (!ts.loaded)
        return j; // stale counters from an unloaded tile say nothing
    j.set("cycles", ts.cycles);
    j.set("utilization", ts.utilization(makespan));
    j.set("instructions", ts.instructions);
    j.set("custom_instructions", ts.customInstructions);
    j.set("fused_custom_instructions", ts.fusedCustomInstructions);
    j.set("muls", ts.muls);
    j.set("branches_taken", ts.branchesTaken);
    j.set("imiss_stall_cycles", ts.imissStallCycles);
    j.set("dmiss_stall_cycles", ts.dmissStallCycles);
    j.set("spm_stall_cycles", ts.spmStallCycles);
    j.set("send_stall_cycles", ts.sendStallCycles);
    j.set("recv_wait_cycles", ts.recvWaitCycles);
    j.set("msgs_sent", ts.msgsSent);
    j.set("msgs_received", ts.msgsReceived);
    j.set("snoc_hops", ts.snocHops);

    // The derived attribution partition: over a loaded tile these six
    // buckets sum exactly to "cycles" (cpu/core.hh identity).
    obs::Json buckets = obs::Json::object();
    auto b = cycleBuckets(ts);
    for (int i = 0; i < numCycleBuckets; ++i)
        buckets.set(cycleBucketName(static_cast<CycleBucket>(i)),
                    b[static_cast<std::size_t>(i)]);
    j.set("buckets", buckets);
    return j;
}

} // namespace

obs::Json
runReport(const RunStats &stats, const obs::Registry *registry)
{
    obs::Json doc = obs::Json::object();
    doc.set("schema", runReportSchema);
    doc.set("version", runReportVersion);
    doc.set("termination",
            fault::terminationName(stats.termination));

    if (!stats.blockedTiles.empty()) {
        obs::Json blocked = obs::Json::array();
        for (const auto &diag : stats.blockedTiles) {
            obs::Json bj = obs::Json::object();
            bj.set("tile", diag.tile);
            bj.set("waiting_src", diag.waitingSrc);
            bj.set("waiting_tag", diag.waitingTag);
            bj.set("pc", static_cast<std::uint64_t>(diag.pc));
            bj.set("local_time", diag.time);
            blocked.push(bj);
        }
        doc.set("blocked_tiles", blocked);
    }

    if (!stats.faultMessage.empty())
        doc.set("fault_message", stats.faultMessage);

    if (stats.patchFault) {
        obs::Json fj = obs::Json::object();
        fj.set("tile", stats.patchFault->tile);
        fj.set("patch", stats.patchFault->patch);
        fj.set("kind", core::patchKindName(stats.patchFault->kind));
        fj.set("reason", stats.patchFault->reason);
        doc.set("patch_fault", fj);
    }

    if (stats.messagesDropped || stats.messagesDelayed ||
        stats.custBitFlips) {
        obs::Json inj = obs::Json::object();
        inj.set("messages_dropped", stats.messagesDropped);
        inj.set("messages_delayed", stats.messagesDelayed);
        inj.set("cust_bit_flips", stats.custBitFlips);
        doc.set("injected_faults", inj);
    }

    obs::Json totals = obs::Json::object();
    totals.set("makespan_cycles", stats.makespan);
    totals.set("instructions", stats.instructions);
    totals.set("custom_instructions", stats.customInstructions);
    totals.set("fused_custom_instructions",
               stats.fusedCustomInstructions);
    totals.set("snoc_hops", stats.snocHops);
    totals.set("messages", stats.messages);
    doc.set("totals", totals);

    obs::Json tiles = obs::Json::array();
    for (TileId t = 0; t < numTiles; ++t)
        tiles.push(tileJson(t,
                            stats.perTile[static_cast<std::size_t>(t)],
                            stats.makespan));
    doc.set("tiles", tiles);

    if (!stats.hotBlocks.empty()) {
        obs::Json hot = obs::Json::array();
        for (const auto &hb : stats.hotBlocks) {
            obs::Json hj = obs::Json::object();
            hj.set("tile", hb.tile);
            hj.set("pc", static_cast<std::uint64_t>(hb.pc));
            hj.set("length", static_cast<std::uint64_t>(hb.length));
            hj.set("instructions", hb.instructions);
            hot.push(hj);
        }
        doc.set("hot_blocks", hot);
    }

    obs::Json links = obs::Json::array();
    for (std::size_t l = 0; l < stats.linkBusyCycles.size(); ++l) {
        if (stats.linkBusyCycles[l] == 0)
            continue; // idle links would swamp the document
        obs::Json lj = obs::Json::object();
        lj.set("link", noc::NocModel::linkName(static_cast<int>(l)));
        lj.set("busy_cycles", stats.linkBusyCycles[l]);
        lj.set("utilization",
               stats.linkUtilization(static_cast<int>(l)));
        links.push(lj);
    }
    obs::Json nocj = obs::Json::object();
    nocj.set("links", links);
    doc.set("noc", nocj);

    if (registry)
        doc.set("stats", registry->toJson(/*skipZero=*/true));
    return doc;
}

obs::Json
stitchPlanJson(const compiler::StitchPlan &plan)
{
    obs::Json doc = obs::Json::object();
    doc.set("bottleneck_cycles", plan.bottleneckCycles());

    obs::Json placements = obs::Json::array();
    for (std::size_t k = 0; k < plan.placements.size(); ++k) {
        const auto &p = plan.placements[k];
        obs::Json pj = obs::Json::object();
        pj.set("kernel", static_cast<std::uint64_t>(k));
        pj.set("tile", p.tile);
        pj.set("cycles", p.cycles);
        if (!p.accel) {
            pj.set("mode", "software");
        } else {
            switch (p.accel->type) {
              case compiler::AccelTarget::Type::SinglePatch:
                pj.set("mode", "single");
                pj.set("patch", core::patchKindName(p.accel->local));
                break;
              case compiler::AccelTarget::Type::FusedPair:
                pj.set("mode", "fused");
                pj.set("patch", core::patchKindName(p.accel->local));
                pj.set("remote_patch",
                       core::patchKindName(p.accel->remote));
                pj.set("remote_tile", p.remoteTile);
                pj.set("forward_hops", p.forwardHops);
                pj.set("back_hops", p.backHops);
                break;
              case compiler::AccelTarget::Type::Locus:
                pj.set("mode", "locus");
                break;
            }
        }
        placements.push(pj);
    }
    doc.set("placements", placements);

    // The packed crossbar registers pin down the routed sNoC exactly;
    // two plans are the same configuration iff these match.
    obs::Json regs = obs::Json::array();
    for (std::uint32_t r : plan.snoc.packRegisters())
        regs.push(static_cast<std::uint64_t>(r));
    doc.set("snoc_registers", regs);
    return doc;
}

void
writeRunReport(const std::string &path, const RunStats &stats,
               const obs::Registry *registry)
{
    obs::writeJsonFile(path, runReport(stats, registry));
}

} // namespace stitch::sim

/**
 * @file
 * Machine-readable run reports: a versioned JSON document summarizing
 * one System::run() — makespan, per-tile stall/idle breakdowns,
 * message and custom-instruction histograms, NoC link utilization —
 * optionally carrying the full stats-registry dump. Harnesses write it
 * with --report=FILE; downstream tooling keys on schema/version
 * instead of scraping stdout tables.
 */

#ifndef STITCH_SIM_REPORT_HH
#define STITCH_SIM_REPORT_HH

#include <string>

#include "compiler/stitcher.hh"
#include "obs/json.hh"
#include "obs/registry.hh"
#include "sim/system.hh"

namespace stitch::sim
{

inline constexpr const char *runReportSchema = "stitch-run-report";

/**
 * v2 added "termination" plus deadlock/fault diagnostics. v3 adds the
 * full per-tile cycle attribution (MUL/branch counts, SPM and SEND
 * stall cycles, sNoC hops, and the derived "buckets" partition that
 * sums exactly to each tile's cycles) and reserves the top-level
 * "profile" key for the src/prof/ attribution section, which
 * harnesses attach under --profile. v4 adds "hot_blocks" — the top
 * static basic blocks by dynamically retired instructions (omitted
 * when empty) — derived from execution counts every scheduler fills
 * identically, so the section is byte-identical across
 * step/slice/compiled runs.
 */
inline constexpr int runReportVersion = 4;

/**
 * Build the report document for one run. When `registry` is non-null
 * (pass &system.registry()) the component counter tree is embedded
 * under "stats".
 */
obs::Json runReport(const RunStats &stats,
                    const obs::Registry *registry = nullptr);

/** Pretty-print runReport() to `path`; fatal on I/O failure. */
void writeRunReport(const std::string &path, const RunStats &stats,
                    const obs::Registry *registry = nullptr);

/**
 * JSON view of a stitch plan (per-kernel placement, fusion routes,
 * bottleneck cycles). Fault campaigns embed it next to the run
 * report so a degraded scenario's placement is inspectable from
 * artifacts.
 */
obs::Json stitchPlanJson(const compiler::StitchPlan &plan);

} // namespace stitch::sim

#endif // STITCH_SIM_REPORT_HH

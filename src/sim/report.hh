/**
 * @file
 * Machine-readable run reports: a versioned JSON document summarizing
 * one System::run() — makespan, per-tile stall/idle breakdowns,
 * message and custom-instruction histograms, NoC link utilization —
 * optionally carrying the full stats-registry dump. Harnesses write it
 * with --report=FILE; downstream tooling keys on schema/version
 * instead of scraping stdout tables.
 */

#ifndef STITCH_SIM_REPORT_HH
#define STITCH_SIM_REPORT_HH

#include <string>

#include "obs/json.hh"
#include "obs/registry.hh"
#include "sim/system.hh"

namespace stitch::sim
{

inline constexpr const char *runReportSchema = "stitch-run-report";
inline constexpr int runReportVersion = 1;

/**
 * Build the report document for one run. When `registry` is non-null
 * (pass &system.registry()) the component counter tree is embedded
 * under "stats".
 */
obs::Json runReport(const RunStats &stats,
                    const obs::Registry *registry = nullptr);

/** Pretty-print runReport() to `path`; fatal on I/O failure. */
void writeRunReport(const std::string &path, const RunStats &stats,
                    const obs::Registry *registry = nullptr);

} // namespace stitch::sim

#endif // STITCH_SIM_REPORT_HH

#include "sim/system.hh"

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "obs/trace.hh"

namespace stitch::sim
{

System::System(const SystemParams &params)
    : params_(params), noc_(params.noc)
{
    for (TileId t = 0; t < numTiles; ++t) {
        Tile &tile = tiles_[static_cast<std::size_t>(t)];
        tile.memory = std::make_unique<mem::TileMemory>(params_.mem);
        tile.core = std::make_unique<cpu::Core>(t, *tile.memory, this,
                                                this);
        tile.spmPort =
            std::make_unique<cpu::TileSpmPort>(*tile.memory);
        if (params_.accel == AccelMode::Locus)
            tile.locus = std::make_unique<core::LocusSfu>();

        std::string prefix = "tile" + std::to_string(t) + ".";
        registry_.add(prefix + "core", tile.core->stats());
        registry_.add(prefix + "mem", tile.memory->stats());
        registry_.add(prefix + "icache",
                      tile.memory->icache().stats());
        registry_.add(prefix + "dcache",
                      tile.memory->dcache().stats());

        auto &ps = patchStats_[static_cast<std::size_t>(t)];
        auto &pc = patchCounters_[static_cast<std::size_t>(t)];
        pc.custs = &ps.counter("custom_instructions");
        pc.fused = &ps.counter("fused_custom_instructions");
        pc.spmLoads = &ps.counter("spm_loads");
        pc.spmStores = &ps.counter("spm_stores");
        if (params_.accel == AccelMode::Stitch)
            registry_.add(prefix + "patch", ps);
    }
    registry_.add("noc", noc_.stats());
    snocFused_ = &snocStats_.counter("fused_transfers");
    snocHops_ = &snocStats_.counter("hops");
    if (params_.accel == AccelMode::Stitch)
        registry_.add("snoc", snocStats_);
}

void
System::loadProgram(TileId t, const compiler::RewrittenProgram &binary)
{
    STITCH_ASSERT(t >= 0 && t < numTiles);
    Tile &tile = tiles_[static_cast<std::size_t>(t)];
    tile.core->loadProgram(binary.program);
    if (params_.accel == AccelMode::Locus)
        tile.locus->installTable(binary.microTable);
    else if (!binary.microTable.empty())
        fatal("LOCUS binary loaded on a non-LOCUS system");
    tile.loaded = true;
    tile.blocked = false;
    // Same per-run discipline as the core's own counters (see
    // Core::loadProgram): a reloaded tile reports only its new run.
    patchStats_[static_cast<std::size_t>(t)].reset();
}

void
System::setFusionPartner(TileId local, TileId remote)
{
    STITCH_ASSERT(params_.accel == AccelMode::Stitch,
                  "fusion requires the Stitch fabric");
    STITCH_ASSERT(local >= 0 && local < numTiles);
    STITCH_ASSERT(remote >= 0 && remote < numTiles && remote != local);
    tiles_[static_cast<std::size_t>(local)].fusionPartner = remote;
}

void
System::configureSnoc(const core::SnocConfig &snoc)
{
    STITCH_ASSERT(params_.accel == AccelMode::Stitch,
                  "the inter-patch NoC exists only in Stitch mode");
    std::string why;
    if (!snoc.validate(&why))
        fatal("invalid sNoC configuration: ", why);
    // Mirror the compiler's preset into the memory-mapped crossbar
    // configuration registers (paper Section III-B): one store per
    // tile before the application launches.
    auto regs = snoc.packRegisters();
    for (TileId t = 0; t < numTiles; ++t) {
        isa::Assembler a("xbar-preset");
        a.li(isa::reg::t0, static_cast<std::int32_t>(
                               mem::xbarConfigAddr));
        a.li(isa::reg::t1, static_cast<std::int32_t>(
                               regs[static_cast<std::size_t>(t)]));
        a.sw(isa::reg::t1, isa::reg::t0, 0);
        a.halt();
        Tile &tile = tiles_[static_cast<std::size_t>(t)];
        tile.core->loadProgram(a.finish());
        tile.core->runToHalt();
        STITCH_ASSERT(tile.core->xbarConfigReg() ==
                          regs[static_cast<std::size_t>(t)],
                      "crossbar preset did not land");
        tile.loaded = false;
    }
    // Kept so fused-CUST trace events can attribute their routed sNoC
    // hop counts at simulation time.
    snocCfg_ = snoc;
}

void
System::pokeWord(TileId tile, Addr addr, Word value)
{
    STITCH_ASSERT(tile >= 0 && tile < numTiles);
    tiles_[static_cast<std::size_t>(tile)].memory->backing().writeWord(
        addr, value);
}

cpu::Core &
System::coreAt(TileId t)
{
    STITCH_ASSERT(t >= 0 && t < numTiles);
    return *tiles_[static_cast<std::size_t>(t)].core;
}

mem::TileMemory &
System::memoryAt(TileId t)
{
    STITCH_ASSERT(t >= 0 && t < numTiles);
    return *tiles_[static_cast<std::size_t>(t)].memory;
}

core::CustResult
System::executeCustom(TileId t, std::uint64_t blob,
                      const std::array<Word, 4> &in)
{
    Tile &tile = tiles_[static_cast<std::size_t>(t)];

    if (params_.accel == AccelMode::Locus)
        return tile.locus->executeCustom(t, blob, in);
    if (params_.accel == AccelMode::None)
        fatal("CUST executed on the baseline system (tile ", t, ")");

    auto cfg = core::FusedConfig::unpackBlob(blob);
    auto kind = params_.arch.kindOf(t);
    if (cfg.localKind != kind) {
        fatal("tile ", t, " hosts ", core::patchKindName(kind),
              " but the binary expects ",
              core::patchKindName(cfg.localKind));
    }

    core::CustResult res;
    TileId partner = -1;
    if (!cfg.usesRemote) {
        res = core::executeCustom(cfg, in, *tile.spmPort, nullptr);
    } else {
        partner = tile.fusionPartner;
        if (partner < 0)
            fatal("fused CUST on tile ", t,
                  " without a stitched partner");
        auto remoteKind = params_.arch.kindOf(partner);
        if (cfg.remoteKind != remoteKind) {
            fatal("tile ", t, " stitched to ",
                  core::patchKindName(remoteKind),
                  " but binary expects ",
                  core::patchKindName(cfg.remoteKind));
        }
        // The mapper never places LMAU work on the remote patch, so
        // the remote SPM port stays disabled (NullSpmPort enforces).
        res = core::executeCustom(cfg, in, *tile.spmPort, &nullSpm_);
    }

    auto &pc = patchCounters_[static_cast<std::size_t>(t)];
    ++*pc.custs;
    *pc.spmLoads += res.spmLoads;
    *pc.spmStores += res.spmStores;
    if (res.usedRemote) {
        ++*pc.fused;
        ++*snocFused_;
        auto hops = static_cast<std::uint64_t>(
            snocCfg_.fusionHops(t, partner));
        *snocHops_ += hops;
        if (obs::Tracer::enabled()) {
            obs::Tracer::instance().instant(
                obs::Tracer::pidSnoc, t, "fused CUST",
                tile.core->time(),
                {{"remote", static_cast<std::uint64_t>(partner)},
                 {"hops", hops}});
        }
    }
    return res;
}

Cycles
System::send(TileId src, TileId dst, int tag, Word value, Cycles now)
{
    sendSinceLastCheck_ = true;
    return noc_.send(src, dst, tag, value, now);
}

std::optional<std::pair<Word, Cycles>>
System::tryRecv(TileId dst, TileId src, int tag)
{
    return noc_.tryRecv(dst, src, tag);
}

RunStats
System::run(std::uint64_t maxInstructions)
{
    RunStats stats;
    std::uint64_t executed = 0;

    while (true) {
        // Pick the runnable (loaded, not halted, not blocked) core
        // with the smallest local time.
        TileId pick = -1;
        for (TileId t = 0; t < numTiles; ++t) {
            Tile &tile = tiles_[static_cast<std::size_t>(t)];
            if (!tile.loaded || tile.core->halted() || tile.blocked)
                continue;
            if (pick < 0 ||
                tile.core->time() <
                    tiles_[static_cast<std::size_t>(pick)]
                        .core->time())
                pick = t;
        }

        if (pick < 0) {
            // Nothing runnable: either done, or deadlocked.
            bool anyBlocked = false;
            for (auto &tile : tiles_)
                anyBlocked = anyBlocked ||
                             (tile.loaded && tile.blocked);
            if (!anyBlocked)
                break;
            fatal("message-passing deadlock: every active core is "
                  "blocked in RECV");
        }

        Tile &tile = tiles_[static_cast<std::size_t>(pick)];
        sendSinceLastCheck_ = false;
        auto result = tile.core->step();
        ++executed;
        if (executed > maxInstructions)
            fatal("system exceeded ", maxInstructions,
                  " instructions; runaway application?");

        if (result == cpu::StepResult::Blocked)
            tile.blocked = true;
        if (sendSinceLastCheck_) {
            // A message entered the network; blocked receivers may
            // now be able to make progress.
            for (auto &other : tiles_)
                other.blocked = false;
        }
    }

    for (TileId t = 0; t < numTiles; ++t) {
        Tile &tile = tiles_[static_cast<std::size_t>(t)];
        if (!tile.loaded)
            continue;
        TileStats &ts = stats.perTile[static_cast<std::size_t>(t)];
        const StatGroup &cs = tile.core->stats();
        const StatGroup &ps = patchStats_[static_cast<std::size_t>(t)];
        ts.loaded = true;
        ts.cycles = tile.core->time();
        ts.instructions = tile.core->instructionsRetired();
        ts.customInstructions = cs.get("custom_instructions");
        ts.fusedCustomInstructions =
            ps.get("fused_custom_instructions");
        ts.imissStallCycles = cs.get("imiss_stall_cycles");
        ts.dmissStallCycles = cs.get("dmiss_stall_cycles");
        ts.recvWaitCycles = cs.get("recv_wait_cycles");
        ts.msgsSent = cs.get("msgs_sent");
        ts.msgsReceived = cs.get("msgs_received");
        stats.makespan = std::max(stats.makespan, ts.cycles);
        stats.instructions += ts.instructions;
        stats.customInstructions += ts.customInstructions;
        stats.fusedCustomInstructions += ts.fusedCustomInstructions;
    }
    stats.snocHops = snocStats_.get("hops");
    stats.messages = noc_.stats().get("packets");
    stats.linkBusyCycles = noc_.linkBusyCycles();
    return stats;
}

} // namespace stitch::sim

#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

namespace stitch::sim
{

const char *
cycleBucketName(CycleBucket b)
{
    switch (b) {
      case CycleBucket::Issue: return "issue";
      case CycleBucket::CustExecute: return "cust_execute";
      case CycleBucket::CacheMiss: return "cache_miss";
      case CycleBucket::Spm: return "spm";
      case CycleBucket::SendBlocked: return "send_blocked";
      case CycleBucket::RecvBlocked: return "recv_blocked";
    }
    STITCH_PANIC("bad CycleBucket");
}

const std::vector<std::string> &
cycleBucketNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (int b = 0; b < numCycleBuckets; ++b)
            v.push_back(cycleBucketName(static_cast<CycleBucket>(b)));
        return v;
    }();
    return names;
}

std::array<Cycles, numCycleBuckets>
cycleBuckets(const TileStats &ts)
{
    std::array<Cycles, numCycleBuckets> b{};
    // Every retired instruction (CUSTs included) costs one base
    // cycle; MULs add 3 iterations, taken branches 1 bubble. CUST
    // base cycles move to their own bucket.
    b[static_cast<int>(CycleBucket::Issue)] =
        ts.instructions - ts.customInstructions + 3 * ts.muls +
        ts.branchesTaken;
    b[static_cast<int>(CycleBucket::CustExecute)] =
        ts.customInstructions;
    b[static_cast<int>(CycleBucket::CacheMiss)] =
        ts.imissStallCycles + ts.dmissStallCycles;
    b[static_cast<int>(CycleBucket::Spm)] = ts.spmStallCycles;
    b[static_cast<int>(CycleBucket::SendBlocked)] = ts.sendStallCycles;
    b[static_cast<int>(CycleBucket::RecvBlocked)] = ts.recvWaitCycles;
    return b;
}

const char *
schedulerKindName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Step: return "step";
      case SchedulerKind::Slice: return "slice";
      case SchedulerKind::Compiled: return "compiled";
    }
    STITCH_PANIC("bad SchedulerKind");
}

SchedulerKind
schedulerKindFromName(const std::string &name)
{
    if (name == "step")
        return SchedulerKind::Step;
    if (name == "slice")
        return SchedulerKind::Slice;
    if (name == "compiled")
        return SchedulerKind::Compiled;
    throw fault::ConfigError(detail::formatMessage(
        "unknown scheduler '", name,
        "' (expected step, slice or compiled)"));
}

namespace
{

/**
 * Eager parameter validation: a malformed configuration is a typed
 * error at construction, not a mysterious crash mid-run.
 */
void
validateParams(const SystemParams &params)
{
    auto bad = [](auto &&...msg) {
        throw fault::ConfigError(
            detail::formatMessage("invalid SystemParams: ",
                                  std::forward<decltype(msg)>(msg)...));
    };
    auto checkCache = [&](const mem::CacheParams &c, const char *name) {
        if (c.blockBytes == 0 ||
            (c.blockBytes & (c.blockBytes - 1)) != 0)
            bad(name, " block size ", c.blockBytes,
                " is not a power of two");
        if (c.assoc < 1)
            bad(name, " needs at least one way");
        if (c.sizeBytes < c.blockBytes * c.assoc)
            bad(name, " of ", c.sizeBytes,
                " bytes cannot hold one set of ", c.assoc, " ways");
    };
    checkCache(params.mem.icache, "icache");
    checkCache(params.mem.dcache, "dcache");
    if (params.noc.dataFlits < 1)
        bad("a packet needs at least one flit");
    if (params.noc.routerStages < 1)
        bad("routers need at least one pipeline stage");
    params.faults.validate(); // throws ConfigError itself
    if (params.faults.anyHardFault() &&
        params.accel != AccelMode::Stitch)
        bad("patch / sNoC-link faults require the Stitch fabric");
}

} // namespace

System::System(const SystemParams &params)
    : params_(params), noc_(params.noc), injector_(/*deferred*/)
{
    validateParams(params_);
    injector_ = fault::FaultInjector(params_.faults);
    for (TileId t = 0; t < numTiles; ++t) {
        Tile &tile = tiles_[static_cast<std::size_t>(t)];
        tile.memory = std::make_unique<mem::TileMemory>(params_.mem);
        tile.core = std::make_unique<cpu::Core>(t, *tile.memory, this,
                                                this);
        tile.spmPort =
            std::make_unique<cpu::TileSpmPort>(*tile.memory);
        if (params_.accel == AccelMode::Locus)
            tile.locus = std::make_unique<core::LocusSfu>();

        std::string prefix = "tile" + std::to_string(t) + ".";
        registry_.add(prefix + "core", tile.core->stats());
        registry_.add(prefix + "mem", tile.memory->stats());
        registry_.add(prefix + "icache",
                      tile.memory->icache().stats());
        registry_.add(prefix + "dcache",
                      tile.memory->dcache().stats());

        auto &ps = patchStats_[static_cast<std::size_t>(t)];
        auto &pc = patchCounters_[static_cast<std::size_t>(t)];
        pc.custs = &ps.counter("custom_instructions");
        pc.fused = &ps.counter("fused_custom_instructions");
        pc.spmLoads = &ps.counter("spm_loads");
        pc.spmStores = &ps.counter("spm_stores");
        pc.snocHops = &ps.counter("snoc_hops");
        if (params_.accel == AccelMode::Stitch)
            registry_.add(prefix + "patch", ps);

        StatGroup &cstats = tile.core->stats();
        auto &cc = coreCounters_[static_cast<std::size_t>(t)];
        cc.instructions = &cstats.counter("instructions");
        cc.custs = &cstats.counter("custom_instructions");
        cc.muls = &cstats.counter("muls");
        cc.branches = &cstats.counter("branches_taken");
        cc.imiss = &cstats.counter("imiss_stall_cycles");
        cc.dmiss = &cstats.counter("dmiss_stall_cycles");
        cc.spm = &cstats.counter("spm_stall_cycles");
        cc.send = &cstats.counter("send_stall_cycles");
        cc.recv = &cstats.counter("recv_wait_cycles");
    }
    registry_.add("noc", noc_.stats());
    snocFused_ = &snocStats_.counter("fused_transfers");
    snocHops_ = &snocStats_.counter("hops");
    if (params_.accel == AccelMode::Stitch)
        registry_.add("snoc", snocStats_);

    msgsDropped_ = &faultStats_.counter("messages_dropped");
    msgsDelayed_ = &faultStats_.counter("messages_delayed");
    bitFlips_ = &faultStats_.counter("cust_bit_flips");
    if (injector_.active())
        registry_.add("fault", faultStats_);
}

void
System::loadProgram(TileId t, const compiler::RewrittenProgram &binary)
{
    STITCH_ASSERT(t >= 0 && t < numTiles);
    Tile &tile = tiles_[static_cast<std::size_t>(t)];
    tile.core->loadProgram(binary.program);
    if (params_.accel == AccelMode::Locus)
        tile.locus->installTable(binary.microTable);
    else if (!binary.microTable.empty())
        throw fault::BinaryMismatchError(
            "LOCUS binary loaded on a non-LOCUS system");
    tile.loaded = true;
    tile.blocked = false;
    // Same per-run discipline as the core's own counters (see
    // Core::loadProgram): a reloaded tile reports only its new run.
    patchStats_[static_cast<std::size_t>(t)].reset();
}

void
System::setFusionPartner(TileId local, TileId remote)
{
    STITCH_ASSERT(params_.accel == AccelMode::Stitch,
                  "fusion requires the Stitch fabric");
    STITCH_ASSERT(local >= 0 && local < numTiles);
    STITCH_ASSERT(remote >= 0 && remote < numTiles && remote != local);
    tiles_[static_cast<std::size_t>(local)].fusionPartner = remote;
}

void
System::configureSnoc(const core::SnocConfig &snoc)
{
    STITCH_ASSERT(params_.accel == AccelMode::Stitch,
                  "the inter-patch NoC exists only in Stitch mode");
    std::string why;
    if (!snoc.validate(&why))
        throw fault::ConfigError("invalid sNoC configuration: " + why);
    // A preset that routes operands over a failed mesh link cannot
    // work on this hardware: reject it here, where the caller can
    // still re-stitch with the matching ArchHealth, rather than
    // corrupting fused CUSTs mid-run.
    for (const auto &link : params_.faults.snocLinksDown) {
        TileId n = core::neighbourOf(link.tile, link.dir);
        for (const auto &path : snoc.paths()) {
            for (std::size_t i = 0; i + 1 < path.tiles.size(); ++i) {
                TileId a = path.tiles[i];
                TileId b = path.tiles[i + 1];
                if ((a == link.tile && b == n) ||
                    (a == n && b == link.tile))
                    throw fault::ConfigError(detail::formatMessage(
                        "sNoC preset routes a path over failed link ",
                        link.name()));
            }
        }
    }
    // Mirror the compiler's preset into the memory-mapped crossbar
    // configuration registers (paper Section III-B): one store per
    // tile before the application launches.
    auto regs = snoc.packRegisters();
    for (TileId t = 0; t < numTiles; ++t) {
        isa::Assembler a("xbar-preset");
        a.li(isa::reg::t0, static_cast<std::int32_t>(
                               mem::xbarConfigAddr));
        a.li(isa::reg::t1, static_cast<std::int32_t>(
                               regs[static_cast<std::size_t>(t)]));
        a.sw(isa::reg::t1, isa::reg::t0, 0);
        a.halt();
        Tile &tile = tiles_[static_cast<std::size_t>(t)];
        tile.core->loadProgram(a.finish());
        tile.core->runToHalt();
        STITCH_ASSERT(tile.core->xbarConfigReg() ==
                          regs[static_cast<std::size_t>(t)],
                      "crossbar preset did not land");
        tile.loaded = false;
    }
    // Kept so fused-CUST trace events can attribute their routed sNoC
    // hop counts at simulation time.
    snocCfg_ = snoc;
}

void
System::pokeWord(TileId tile, Addr addr, Word value)
{
    STITCH_ASSERT(tile >= 0 && tile < numTiles);
    tiles_[static_cast<std::size_t>(tile)].memory->backing().writeWord(
        addr, value);
}

cpu::Core &
System::coreAt(TileId t)
{
    STITCH_ASSERT(t >= 0 && t < numTiles);
    return *tiles_[static_cast<std::size_t>(t)].core;
}

mem::TileMemory &
System::memoryAt(TileId t)
{
    STITCH_ASSERT(t >= 0 && t < numTiles);
    return *tiles_[static_cast<std::size_t>(t)].memory;
}

core::CustResult
System::executeCustom(TileId t, std::uint64_t blob,
                      const std::array<Word, 4> &in)
{
    Tile &tile = tiles_[static_cast<std::size_t>(t)];

    if (params_.accel == AccelMode::Locus)
        return tile.locus->executeCustom(t, blob, in);
    if (params_.accel == AccelMode::None)
        throw fault::BinaryMismatchError(detail::formatMessage(
            "CUST executed on the baseline system (tile ", t, ")"));

    auto cfg = core::FusedConfig::unpackBlob(blob);
    auto kind = params_.arch.kindOf(t);
    if (cfg.localKind != kind) {
        throw fault::BinaryMismatchError(detail::formatMessage(
            "tile ", t, " hosts ", core::patchKindName(kind),
            " but the binary expects ",
            core::patchKindName(cfg.localKind)));
    }

    // A hard-failed patch raises a structured fault instead of
    // silently corrupting; System::run converts it into
    // Termination::Fault so the harness can re-stitch around the
    // dead patch and fall back to the preserved software body.
    auto diePatch = [&](TileId patch, const char *reason) {
        fault::PatchFault pf;
        pf.tile = t;
        pf.patch = patch;
        pf.kind = params_.arch.kindOf(patch);
        pf.reason = reason;
        throw fault::PatchFaultError(std::move(pf));
    };
    if (injector_.patchDead(t))
        diePatch(t, "local patch failed");

    core::CustResult res;
    TileId partner = -1;
    if (!cfg.usesRemote) {
        res = core::executeCustom(cfg, in, *tile.spmPort, nullptr);
    } else {
        partner = tile.fusionPartner;
        if (partner < 0)
            throw fault::BinaryMismatchError(detail::formatMessage(
                "fused CUST on tile ", t,
                " without a stitched partner"));
        auto remoteKind = params_.arch.kindOf(partner);
        if (cfg.remoteKind != remoteKind) {
            throw fault::BinaryMismatchError(detail::formatMessage(
                "tile ", t, " stitched to ",
                core::patchKindName(remoteKind),
                " but binary expects ",
                core::patchKindName(cfg.remoteKind)));
        }
        if (injector_.patchDead(partner))
            diePatch(partner, "fused partner patch failed");
        // The mapper never places LMAU work on the remote patch, so
        // the remote SPM port stays disabled (NullSpmPort enforces).
        res = core::executeCustom(cfg, in, *tile.spmPort, &nullSpm_);
    }

    // Transient bit flips: the datapath produced a value, but one
    // output bit toggled in flight. The run continues — detecting the
    // corruption is the application's (or validation's) problem,
    // exactly like real silicon.
    if (auto bit = injector_.custFlipBit();
        bit && (res.writeRd0 || res.writeRd1)) {
        if (res.writeRd0)
            res.rd0 ^= Word{1} << *bit;
        else
            res.rd1 ^= Word{1} << *bit;
        ++*bitFlips_;
        if (obs::Tracer::enabled()) {
            obs::Tracer::instance().instant(
                obs::Tracer::pidTiles, t, "FAULT bit-flip",
                tile.core->time(),
                {{"bit", static_cast<std::uint64_t>(*bit)}});
        }
    }

    auto &pc = patchCounters_[static_cast<std::size_t>(t)];
    ++*pc.custs;
    *pc.spmLoads += res.spmLoads;
    *pc.spmStores += res.spmStores;
    if (res.usedRemote) {
        ++*pc.fused;
        ++*snocFused_;
        auto hops = static_cast<std::uint64_t>(
            snocCfg_.fusionHops(t, partner));
        *snocHops_ += hops;
        *pc.snocHops += hops;
        if (obs::Tracer::enabled()) {
            obs::Tracer::instance().instant(
                obs::Tracer::pidSnoc, t, "fused CUST",
                tile.core->time(),
                {{"remote", static_cast<std::uint64_t>(partner)},
                 {"hops", hops}});
        }
    }
    return res;
}

Cycles
System::send(TileId src, TileId dst, int tag, Word value, Cycles now)
{
    if (injector_.active()) {
        if (injector_.dropMessage()) {
            // The packet dies in the network. The sender has already
            // paid its injection overhead and moves on (asynchronous
            // send); only the receiver can notice, as a deadlock the
            // run loop will diagnose.
            ++*msgsDropped_;
            if (obs::Tracer::enabled()) {
                obs::Tracer::instance().instant(
                    obs::Tracer::pidNoc, src, "FAULT pkt dropped",
                    now,
                    {{"dst", static_cast<std::uint64_t>(dst)},
                     {"tag", static_cast<std::uint64_t>(tag)}});
            }
            return noc_.params().nicInject;
        }
        Cycles extra = injector_.messageDelay();
        if (extra > 0)
            ++*msgsDelayed_;
        sentThisStep_.push_back({src, dst, tag});
        return noc_.send(src, dst, tag, value, now, extra);
    }
    sentThisStep_.push_back({src, dst, tag});
    return noc_.send(src, dst, tag, value, now);
}

std::optional<std::pair<Word, Cycles>>
System::tryRecv(TileId dst, TileId src, int tag)
{
    return noc_.tryRecv(dst, src, tag);
}

std::array<Cycles, numCycleBuckets>
System::bucketsNow(TileId t) const
{
    const auto &cc = coreCounters_[static_cast<std::size_t>(t)];
    std::array<Cycles, numCycleBuckets> b{};
    b[static_cast<int>(CycleBucket::Issue)] =
        *cc.instructions - *cc.custs + 3 * *cc.muls + *cc.branches;
    b[static_cast<int>(CycleBucket::CustExecute)] = *cc.custs;
    b[static_cast<int>(CycleBucket::CacheMiss)] = *cc.imiss + *cc.dmiss;
    b[static_cast<int>(CycleBucket::Spm)] = *cc.spm;
    b[static_cast<int>(CycleBucket::SendBlocked)] = *cc.send;
    b[static_cast<int>(CycleBucket::RecvBlocked)] = *cc.recv;
    return b;
}

void
System::sampleStep(TileId t)
{
    auto now = bucketsNow(t);
    auto &last = sampledBuckets_[static_cast<std::size_t>(t)];
    Cycles time = tiles_[static_cast<std::size_t>(t)].core->time();
    auto &sampler = obs::Sampler::instance();
    for (int b = 0; b < numCycleBuckets; ++b) {
        auto i = static_cast<std::size_t>(b);
        if (now[i] != last[i])
            sampler.add(t, time, b, now[i] - last[i]);
    }
    last = now;
}

void
System::noteDeadlock(RunStats &stats)
{
    // Nothing runnable: either done, or deadlocked. A deadlock is a
    // termination with per-tile diagnostics, not an abort — partial
    // stats stay inspectable.
    for (TileId t = 0; t < numTiles; ++t) {
        Tile &tile = tiles_[static_cast<std::size_t>(t)];
        if (!tile.loaded || !tile.blocked)
            continue;
        BlockedTileDiag diag;
        diag.tile = t;
        if (const auto &pending = tile.core->pendingRecv()) {
            diag.waitingSrc = pending->src;
            diag.waitingTag = pending->tag;
        }
        diag.pc = tile.core->pc();
        diag.time = tile.core->time();
        if (obs::Tracer::enabled()) {
            obs::Tracer::instance().instant(
                obs::Tracer::pidTiles, t, "DEADLOCK blocked",
                diag.time,
                {{"src",
                  static_cast<std::uint64_t>(diag.waitingSrc)},
                 {"tag",
                  static_cast<std::uint64_t>(diag.waitingTag)}});
        }
        stats.blockedTiles.push_back(diag);
    }
    if (!stats.blockedTiles.empty())
        stats.termination = fault::Termination::Deadlock;
}

void
System::runStepLoop(RunStats &stats, std::uint64_t maxInstructions)
{
    std::uint64_t executed = 0;
    const bool sampling = obs::Sampler::enabled();
    TileId running = -1;

    auto loop = [&] {
        while (true) {
            // Pick the runnable (loaded, not halted, not blocked)
            // core with the smallest local time.
            TileId pick = -1;
            for (TileId t = 0; t < numTiles; ++t) {
                Tile &tile = tiles_[static_cast<std::size_t>(t)];
                if (!tile.loaded || tile.core->halted() ||
                    tile.blocked)
                    continue;
                if (pick < 0 ||
                    tile.core->time() <
                        tiles_[static_cast<std::size_t>(pick)]
                            .core->time())
                    pick = t;
            }

            if (pick < 0) {
                noteDeadlock(stats);
                return;
            }

            if (executed >= maxInstructions) {
                // The step budget ran out with work remaining:
                // report a bounded, non-fatal termination (exactly
                // maxInstructions steps were attempted).
                stats.termination =
                    fault::Termination::InstructionLimit;
                return;
            }

            // Cooperative wall-clock cancellation: polled at a
            // coarse stride so the deterministic fast path pays one
            // predictable branch per step and no atomic traffic.
            if (params_.abortFlag && (executed & 0xfff) == 0 &&
                params_.abortFlag->load(std::memory_order_relaxed))
                throw fault::DeadlineExceededError(
                    detail::formatMessage(
                        "run aborted by deadline watchdog after ",
                        executed, " instructions"));

            Tile &tile = tiles_[static_cast<std::size_t>(pick)];
            running = pick;
            cpu::StepResult result = tile.core->step();
            ++executed;
            if (sampling)
                sampleStep(pick);

            if (result == cpu::StepResult::Blocked)
                tile.blocked = true;
            // Wake exactly the receivers whose pending RECV matches
            // a message injected this step; everyone else would
            // re-poll, fail, and re-block. Steps without a SEND
            // leave sentThisStep_ empty and skip the pass entirely.
            if (!sentThisStep_.empty()) {
                for (const auto &msg : sentThisStep_) {
                    Tile &rx =
                        tiles_[static_cast<std::size_t>(msg.dst)];
                    if (!rx.blocked)
                        continue;
                    const auto &pending = rx.core->pendingRecv();
                    if (pending && pending->src == msg.src &&
                        pending->tag == msg.tag)
                        rx.blocked = false;
                }
                sentThisStep_.clear();
            }
        }
    };

    // Injected faults surface as exceptions mid-step and become a
    // Termination::Fault outcome; without an injector, only the typed
    // execution faults (wild branch, runaway PC) are run outcomes —
    // anything else indicates real misuse and must propagate.
    if (!injector_.active()) {
        try {
            loop();
        } catch (const fault::ExecutionFaultError &err) {
            stats.termination = fault::Termination::Fault;
            stats.faultMessage = detail::formatMessage(
                "tile ", running, " crashed: ", err.what());
            warn(stats.faultMessage);
        }
        return;
    }
    try {
        loop();
    } catch (const fault::PatchFaultError &err) {
        stats.termination = fault::Termination::Fault;
        stats.patchFault = err.fault();
        stats.faultMessage = err.what();
        warn(err.what());
    } catch (const fault::DeadlineExceededError &) {
        // A watchdog abort is a service-tier outcome, not a hardware
        // fault of this run: let the engine type it as "deadline".
        throw;
    } catch (const FatalError &err) {
        // A core tripped over state an injected fault corrupted
        // (e.g. a flipped CUST output used as an address). With
        // injection active that is a run outcome, not simulator
        // misuse. ExecutionFaultError lands here too, with the same
        // message as the no-injector frame above.
        stats.termination = fault::Termination::Fault;
        stats.faultMessage = detail::formatMessage(
            "tile ", running, " crashed: ", err.what());
        warn(stats.faultMessage);
    }
}

void
System::runSliceLoop(RunStats &stats, std::uint64_t maxInstructions)
{
    std::uint64_t executed = 0;
    const bool sampling = obs::Sampler::enabled();
    // Relaxed run-ahead reorders only tile-private work, which is
    // invisible in every completed run's stats. Fall back to the
    // reference-exact interleaving whenever something can observe
    // the total instruction order: the tracer (event file order),
    // an active fault injector (partial stats at a Fault
    // termination), or a meaningful instruction budget (which
    // attempt is the cutoff). See DESIGN.md §10.
    const bool relaxed = !obs::Tracer::enabled() &&
                         !injector_.active() &&
                         maxInstructions >= runawayInstructionBudget;
    TileId running = -1;

    queue_.clear();
    for (TileId t = 0; t < numTiles; ++t) {
        Tile &tile = tiles_[static_cast<std::size_t>(t)];
        if (tile.loaded && !tile.core->halted() && !tile.blocked)
            queue_.push(t, tile.core->time());
    }

    auto loop = [&] {
        while (!queue_.empty()) {
            if (executed >= maxInstructions) {
                stats.termination =
                    fault::Termination::InstructionLimit;
                return;
            }

            // Deadline watchdog poll (see runStepLoop): once per
            // dispatched slice, never inside Core::runSlice.
            if (params_.abortFlag &&
                params_.abortFlag->load(std::memory_order_relaxed))
                throw fault::DeadlineExceededError(
                    detail::formatMessage(
                        "run aborted by deadline watchdog after ",
                        executed, " instructions"));

            TileId pick = queue_.top();
            running = pick;
            Tile &tile = tiles_[static_cast<std::size_t>(pick)];

            cpu::StepResult result;
            if (sampling) {
                // Single-step dispatch under interval profiling:
                // each step's bucket deltas must land in the window
                // of that step's completion time, so slices collapse
                // to length one and the timeline stays bit-identical
                // to the reference scheduler's.
                result = tile.core->step();
                ++executed;
                sampleStep(pick);
            } else {
                // Run ahead: the top core is the globally minimal
                // (time, id) key, and stays safe to run without
                // rescheduling until it retires a SEND, blocks,
                // halts, exhausts the budget, or its clock passes
                // the next-best queued key. The core stays at the
                // heap top throughout — the slice ends exactly when
                // it stops being the minimum, so afterwards one
                // updateTop() restores the invariant instead of a
                // pop+push round trip.
                Cycles horizonTime = ~Cycles{0};
                TileId horizonTile = numTiles;
                if (queue_.size() > 1) {
                    RunQueue::Entry next = queue_.second();
                    horizonTime = next.time;
                    horizonTile = next.tile;
                }
                result = tile.core->runSlice(maxInstructions,
                                             executed, horizonTime,
                                             horizonTile, relaxed);
            }

            if (result == cpu::StepResult::Blocked) {
                tile.blocked = true;
                queue_.pop();
            } else if (tile.core->halted()) {
                queue_.pop();
            } else {
                queue_.updateTop(tile.core->time());
            }

            // Deliver wake-ups (see runStepLoop); woken receivers
            // re-enter the queue at the time they blocked.
            if (!sentThisStep_.empty()) {
                for (const auto &msg : sentThisStep_) {
                    Tile &rx =
                        tiles_[static_cast<std::size_t>(msg.dst)];
                    if (!rx.blocked)
                        continue;
                    const auto &pending = rx.core->pendingRecv();
                    if (pending && pending->src == msg.src &&
                        pending->tag == msg.tag) {
                        rx.blocked = false;
                        queue_.push(msg.dst, rx.core->time());
                    }
                }
                sentThisStep_.clear();
            }
        }
        noteDeadlock(stats);
    };

    // Same hoisted exception discipline as runStepLoop: the
    // no-injector frame converts only typed execution faults, the
    // injector frame everything fault-induced.
    if (!injector_.active()) {
        try {
            loop();
        } catch (const fault::ExecutionFaultError &err) {
            stats.termination = fault::Termination::Fault;
            stats.faultMessage = detail::formatMessage(
                "tile ", running, " crashed: ", err.what());
            warn(stats.faultMessage);
        }
        return;
    }
    try {
        loop();
    } catch (const fault::PatchFaultError &err) {
        stats.termination = fault::Termination::Fault;
        stats.patchFault = err.fault();
        stats.faultMessage = err.what();
        warn(err.what());
    } catch (const fault::DeadlineExceededError &) {
        // A watchdog abort is a service-tier outcome, not a hardware
        // fault of this run: let the engine type it as "deadline".
        throw;
    } catch (const FatalError &err) {
        stats.termination = fault::Termination::Fault;
        stats.faultMessage = detail::formatMessage(
            "tile ", running, " crashed: ", err.what());
        warn(stats.faultMessage);
    }
}

void
System::runCompiledLoop(RunStats &stats,
                        std::uint64_t maxInstructions)
{
    // Deoptimize wholesale whenever per-instruction order or state is
    // observable: the tracer (event file order), the sampler (bucket
    // deltas per sample window), an active fault injector (exact
    // partial stats at a Fault termination), or a meaningful
    // instruction budget (which attempt is the cutoff). The slice
    // scheduler already handles every one of these byte-exactly, so
    // the compiled path never needs a slow mode of its own.
    if (obs::Tracer::enabled() || obs::Sampler::enabled() ||
        injector_.active() ||
        maxInstructions < runawayInstructionBudget) {
        runSliceLoop(stats, maxInstructions);
        return;
    }

    std::uint64_t executed = 0;
    TileId running = -1;

    queue_.clear();
    for (TileId t = 0; t < numTiles; ++t) {
        Tile &tile = tiles_[static_cast<std::size_t>(t)];
        if (tile.loaded && !tile.core->halted() && !tile.blocked)
            queue_.push(t, tile.core->time());
    }

    auto loop = [&] {
        while (!queue_.empty()) {
            if (executed >= maxInstructions) {
                stats.termination =
                    fault::Termination::InstructionLimit;
                return;
            }

            // Deadline watchdog poll (see runStepLoop): once per
            // dispatched slice, never inside Core::runCompiled.
            if (params_.abortFlag &&
                params_.abortFlag->load(std::memory_order_relaxed))
                throw fault::DeadlineExceededError(
                    detail::formatMessage(
                        "run aborted by deadline watchdog after ",
                        executed, " instructions"));

            TileId pick = queue_.top();
            running = pick;
            Tile &tile = tiles_[static_cast<std::size_t>(pick)];

            Cycles horizonTime = ~Cycles{0};
            TileId horizonTile = numTiles;
            if (queue_.size() > 1) {
                RunQueue::Entry next = queue_.second();
                horizonTime = next.time;
                horizonTile = next.tile;
            }
            cpu::StepResult result = tile.core->runCompiled(
                maxInstructions, executed, horizonTime, horizonTile);

            if (result == cpu::StepResult::Blocked) {
                tile.blocked = true;
                queue_.pop();
            } else if (tile.core->halted()) {
                queue_.pop();
            } else {
                queue_.updateTop(tile.core->time());
            }

            // Deliver wake-ups (see runStepLoop); woken receivers
            // re-enter the queue at the time they blocked.
            if (!sentThisStep_.empty()) {
                for (const auto &msg : sentThisStep_) {
                    Tile &rx =
                        tiles_[static_cast<std::size_t>(msg.dst)];
                    if (!rx.blocked)
                        continue;
                    const auto &pending = rx.core->pendingRecv();
                    if (pending && pending->src == msg.src &&
                        pending->tag == msg.tag) {
                        rx.blocked = false;
                        queue_.push(msg.dst, rx.core->time());
                    }
                }
                sentThisStep_.clear();
            }
        }
        noteDeadlock(stats);
    };

    // The injector is off here by construction; convert the typed
    // execution faults with the same message as the other loops.
    try {
        loop();
    } catch (const fault::ExecutionFaultError &err) {
        stats.termination = fault::Termination::Fault;
        stats.faultMessage = detail::formatMessage(
            "tile ", running, " crashed: ", err.what());
        warn(stats.faultMessage);
    }
}

std::string
System::dumpTraces() const
{
    std::string out;
    for (TileId t = 0; t < numTiles; ++t) {
        const Tile &tile = tiles_[static_cast<std::size_t>(t)];
        if (!tile.loaded || tile.core->traceCount() == 0)
            continue;
        out += detail::formatMessage("=== tile ", t, " (",
                                     tile.core->traceCount(),
                                     " traces) ===\n");
        out += tile.core->dumpJitTraces();
    }
    return out;
}

RunStats
System::run(std::uint64_t maxInstructions)
{
    RunStats stats;
    // Injected-fault counters describe one run, like the per-tile
    // patch counters (handles stay valid; values zero in place).
    faultStats_.reset();
    // A run cut short mid-step can leave stale send records behind;
    // they must not wake anyone in the next run.
    sentThisStep_.clear();

    if (obs::Sampler::enabled()) {
        obs::Sampler::instance().beginRun(cycleBucketNames());
        // Baseline the deltas at the counters' current values (zero
        // after loadProgram, but not if the same program runs twice).
        for (TileId t = 0; t < numTiles; ++t)
            sampledBuckets_[static_cast<std::size_t>(t)] =
                bucketsNow(t);
    }

    switch (params_.scheduler) {
      case SchedulerKind::Step:
        runStepLoop(stats, maxInstructions);
        break;
      case SchedulerKind::Slice:
        runSliceLoop(stats, maxInstructions);
        break;
      case SchedulerKind::Compiled:
        runCompiledLoop(stats, maxInstructions);
        break;
    }

    // A run cut short (deadlock, fault, step budget) may never reach
    // the harness's orderly Tracer::stop(): make the on-disk trace a
    // valid JSON document now, at zero cost to completed runs.
    if (stats.termination != fault::Termination::Completed &&
        obs::Tracer::enabled())
        obs::Tracer::instance().flush();

    collectRunStats(stats);
    return stats;
}

namespace
{

/** Max hot blocks reported per run (RunStats::hotBlocks). */
constexpr std::size_t maxHotBlocks = 8;

/**
 * Static CFG blocks of one tile's program, ranked later across tiles.
 * Leaders: instruction 0, every instruction after a control op, and
 * every static branch/JAL target. JALR has no static target — its
 * destination simply starts at the next leader it falls into.
 */
void
appendTileBlocks(TileId t, const cpu::Core &core,
                 std::vector<HotBlock> &out)
{
    const isa::Program &prog = core.program();
    const auto &code = prog.code();
    const auto &counts = core.executionCounts();
    if (code.empty())
        return;

    std::vector<std::int32_t> wordToIndex(prog.wordCount(), -1);
    for (std::size_t i = 0; i < code.size(); ++i)
        wordToIndex[prog.wordAddrOf(i)] = static_cast<std::int32_t>(i);

    std::vector<bool> leader(code.size(), false);
    leader[0] = true;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const isa::Instr &in = code[i];
        if (isa::isControlOp(in.op) && i + 1 < code.size())
            leader[i + 1] = true;
        std::int64_t target = -1;
        if (in.op == isa::Opcode::Jal)
            target = in.imm;
        else if (isa::isControlOp(in.op) &&
                 in.op != isa::Opcode::Jalr &&
                 in.op != isa::Opcode::Halt)
            target = static_cast<std::int64_t>(prog.wordAddrOf(i)) +
                     in.imm;
        if (target >= 0 &&
            target < static_cast<std::int64_t>(wordToIndex.size())) {
            std::int32_t ti =
                wordToIndex[static_cast<std::size_t>(target)];
            if (ti >= 0)
                leader[static_cast<std::size_t>(ti)] = true;
        }
    }

    for (std::size_t i = 0; i < code.size();) {
        std::size_t end = i + 1;
        while (end < code.size() && !leader[end])
            ++end;
        HotBlock hb;
        hb.tile = t;
        hb.pc = prog.wordAddrOf(i);
        hb.length = static_cast<std::uint32_t>(end - i);
        for (std::size_t k = i; k < end; ++k)
            hb.instructions += counts[k];
        if (hb.instructions > 0)
            out.push_back(hb);
        i = end;
    }
}

} // namespace

void
System::collectRunStats(RunStats &stats)
{
    for (TileId t = 0; t < numTiles; ++t) {
        Tile &tile = tiles_[static_cast<std::size_t>(t)];
        if (!tile.loaded)
            continue;
        TileStats &ts = stats.perTile[static_cast<std::size_t>(t)];
        const StatGroup &cs = tile.core->stats();
        const StatGroup &ps = patchStats_[static_cast<std::size_t>(t)];
        ts.loaded = true;
        ts.cycles = tile.core->time();
        ts.instructions = tile.core->instructionsRetired();
        ts.customInstructions = cs.get("custom_instructions");
        ts.fusedCustomInstructions =
            ps.get("fused_custom_instructions");
        ts.muls = cs.get("muls");
        ts.branchesTaken = cs.get("branches_taken");
        ts.imissStallCycles = cs.get("imiss_stall_cycles");
        ts.dmissStallCycles = cs.get("dmiss_stall_cycles");
        ts.spmStallCycles = cs.get("spm_stall_cycles");
        ts.sendStallCycles = cs.get("send_stall_cycles");
        ts.recvWaitCycles = cs.get("recv_wait_cycles");
        ts.msgsSent = cs.get("msgs_sent");
        ts.msgsReceived = cs.get("msgs_received");
        ts.snocHops = ps.get("snoc_hops");
        stats.makespan = std::max(stats.makespan, ts.cycles);
        stats.instructions += ts.instructions;
        stats.customInstructions += ts.customInstructions;
        stats.fusedCustomInstructions += ts.fusedCustomInstructions;
    }
    // Hot basic blocks (run report "hot_blocks", smoke_app
    // --dump-hot): derived from execution counts every scheduler
    // fills identically, so the section never breaks report parity.
    std::vector<HotBlock> blocks;
    for (TileId t = 0; t < numTiles; ++t) {
        const Tile &tile = tiles_[static_cast<std::size_t>(t)];
        if (tile.loaded)
            appendTileBlocks(t, *tile.core, blocks);
    }
    std::sort(blocks.begin(), blocks.end(),
              [](const HotBlock &a, const HotBlock &b) {
                  if (a.instructions != b.instructions)
                      return a.instructions > b.instructions;
                  if (a.tile != b.tile)
                      return a.tile < b.tile;
                  return a.pc < b.pc;
              });
    if (blocks.size() > maxHotBlocks)
        blocks.resize(maxHotBlocks);
    stats.hotBlocks = std::move(blocks);

    stats.snocHops = snocStats_.get("hops");
    stats.messages = noc_.stats().get("packets");
    stats.linkBusyCycles = noc_.linkBusyCycles();
    stats.messagesDropped = faultStats_.get("messages_dropped");
    stats.messagesDelayed = faultStats_.get("messages_delayed");
    stats.custBitFlips = faultStats_.get("cust_bit_flips");
}

} // namespace stitch::sim

#include "sim/sweep.hh"

#include "common/logging.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"

namespace stitch::sim
{

SweepRunner::SweepRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs)
{
    if (jobs_ > 1 &&
        (obs::Tracer::enabled() || obs::Sampler::enabled())) {
        // The trace and profile sinks are process-wide single
        // streams; interleaving scenarios would corrupt both. Serial
        // keeps them coherent and identical to an untraced --jobs=1.
        warn("sweep forced to --jobs=1: tracing/profiling write to "
             "process-wide sinks");
        jobs_ = 1;
    }
}

} // namespace stitch::sim

/**
 * @file
 * E1 / paper Table I: power-performance of the finger-gesture
 * recognition application (APP1) across architectures.
 *
 * Our cycle counts come from simulating APP1's 16-kernel pipeline;
 * power comes from the RTL-anchored model. The SensorTag and
 * Cortex-A7 rows are the paper's measured references (we cannot
 * re-measure physical boards). Our synthetic gesture workload is
 * smaller than the authors' full application, so absolute ms differ;
 * the comparison column normalizes per-gesture time to the Stitch
 * configuration, which is the shape the table argues about.
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Table I",
                "gesture recognition across architectures (APP1)");

    auto app = apps::app1Gesture();
    double baseCyc =
        appResult(app, apps::AppMode::Baseline).perSampleCycles();
    double noFuseCyc =
        appResult(app, apps::AppMode::StitchNoFusion)
            .perSampleCycles();
    double fullCyc =
        appResult(app, apps::AppMode::Stitch).perSampleCycles();

    double fullMs = power::cyclesToMs(fullCyc);
    double noFuseMs = power::cyclesToMs(noFuseCyc);
    double baseMs = power::cyclesToMs(baseCyc);
    recordMetric("stitch_gesture_ms", fullMs);
    recordMetric("no_fusion_gesture_ms", noFuseMs);
    recordMetric("baseline_gesture_ms", baseMs);
    recordMetric("stitch_vs_baseline_boost", baseMs / fullMs);

    TextTable table({"", "SensorTag", "Cortex-A7", "Stitch w/o fusion",
                     "Stitch"});
    table.addRow({"time/gesture ms (paper)",
                  strformat("%.0f", power::sensorTagRef.gestureMs),
                  strformat("%.1f", power::cortexA7Ref.gestureMs),
                  strformat("%.2f", power::paperNoFusionRef.gestureMs),
                  strformat("%.2f", power::paperStitchRef.gestureMs)});
    table.addRow({"time/gesture ms (measured)", "-", "-",
                  strformat("%.4f", noFuseMs),
                  strformat("%.4f", fullMs)});
    table.addRow(
        {"normalized to Stitch (paper)",
         strformat("%.1fx", power::sensorTagRef.gestureMs /
                                power::paperStitchRef.gestureMs),
         strformat("%.2fx", power::cortexA7Ref.gestureMs /
                                power::paperStitchRef.gestureMs),
         strformat("%.2fx", power::paperNoFusionRef.gestureMs /
                                power::paperStitchRef.gestureMs),
         "1.00x"});
    table.addRow({"normalized to Stitch (measured)", "-", "-",
                  strformat("%.2fx", noFuseMs / fullMs), "1.00x"});
    table.addRow(
        {"power mW",
         strformat("%.2f (paper)", power::sensorTagRef.powerMw),
         strformat("%.0f (paper)", power::cortexA7Ref.powerMw),
         strformat("%.0f", power::stitchNoFusionPowerMw()),
         strformat("%.1f", power::stitchPowerMw())});
    table.addRow({"frequency MHz",
                  strformat("%.0f", power::sensorTagRef.freqMhz),
                  strformat("%.0f", power::cortexA7Ref.freqMhz),
                  "200", "200"});
    table.print();

    std::printf(
        "\nReal-time deadline: %.2f ms per gesture (128 Hz sampling)."
        "\nPaper: only Stitch meets it (7.62 < 7.81 ms); SensorTag "
        "misses by 74x,\nquad-A7 by 1.7x, Stitch w/o fusion by "
        "1.5x.\n",
        power::gestureDeadlineMs);
    std::printf(
        "Measured (scaled workload): Stitch processes a gesture "
        "window in %.4f ms,\n%.2fx faster than the 16-core baseline "
        "(%.4f ms) and %.2fx faster than\nStitch w/o fusion.\n",
        fullMs, baseMs / fullMs, baseMs, noFuseMs / fullMs);
    std::printf(
        "Deviation note: our APP1 balance lets single patches cover "
        "the bottleneck\nkernels, so fusion adds little here "
        "(paper: 1.51x); the fusion win shows in\nAPP2-APP4 "
        "(fig12_app_throughput).\n");
    return 0;
}

/**
 * @file
 * E10 / paper Section III-A: the operation-chain analysis that
 * motivated the patch designs. Hot DFG chains from every kernel run
 * through multi-round LCS mining; the paper reports {AT}: 95.7%,
 * {MA}: 47.8%, {AA}: 34.8%, {AS}: 21.7%, {SA}: 21.7%.
 */

#include "bench/bench_common.hh"
#include "compiler/chains.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Section III-A", "operation-chain mining (LCS)");

    std::vector<compiler::KernelChains> inputs;
    for (const auto &name : fig11Kernels()) {
        const auto &ck = compiledKernel(name);
        inputs.push_back({name, ck.chainStrings});
    }

    auto stats = compiler::mineChains(inputs, 8, 2, 2);
    TextTable table({"round", "chain", "kernels", "occurrence"});
    for (const auto &s : stats)
        table.addRow({strformat("%d", s.round), "{" + s.chain + "}",
                      strformat("%d/%zu", s.kernelsContaining,
                                inputs.size()),
                      strformat("%.1f%%", s.occurrenceRate * 100)});
    table.print();

    // Direct per-chain containment rates for the paper's chains.
    std::printf("\nContainment of the paper's chains (share of "
                "kernels whose hot DFGs contain the substring):\n");
    TextTable direct({"chain", "paper", "measured"});
    const std::pair<const char *, double> paperChains[] = {
        {"AT", 0.957}, {"MA", 0.478}, {"AA", 0.348},
        {"AS", 0.217}, {"SA", 0.217}};
    for (auto [chain, rate] : paperChains) {
        int holds = 0;
        for (const auto &k : inputs) {
            bool found = false;
            for (const auto &c : k.chains)
                found = found || c.find(chain) != std::string::npos;
            holds += found;
        }
        recordMetric(std::string(chain) + "_containment",
                     100.0 * holds /
                         static_cast<double>(inputs.size()));
        direct.addRow(
            {std::string("{") + chain + "}",
             strformat("%.1f%%", rate * 100),
             strformat("%.1f%%", 100.0 * holds /
                                     static_cast<double>(
                                         inputs.size()))});
    }
    direct.print();

    std::printf(
        "\nPaper conclusion reproduced: {AT} dominates (hence every "
        "patch carries an\nAT stage), multiply-accumulate chains "
        "come second (8 {AT-MA} patches), and\nshift chains justify "
        "the 4+4 {AT-AS}/{AT-SA} mix.\n");
    return 0;
}

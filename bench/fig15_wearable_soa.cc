/**
 * @file
 * E9+E12 / paper Figure 15 and the Section VI-D LOCUS@400MHz
 * comparison: throughput, power and performance/watt of Stitch
 * relative to the quad Cortex-A7 of state-of-the-art smartwatches.
 *
 * The A7 reference throughput is derived from the paper's own
 * anchors (Stitch = 2.3X our-style baseline and 1.65X the A7, so
 * A7 ~ 1.394X baseline); its 469 mW is the paper's ODROID
 * measurement.
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Figure 15",
                "Stitch vs quad Cortex-A7 (state-of-the-art "
                "wearables)");

    double powerRatio =
        power::stitchPowerMw() / power::cortexA7Ref.powerMw;

    TextTable table(
        {"app", "throughput vs A7", "power vs A7", "perf/watt vs A7"});
    double sums[2] = {0, 0};
    for (const auto &app : apps::allApps()) {
        double boostVsBase = appBoost(app, apps::AppMode::Stitch);
        double vsA7 = boostVsBase / power::a7VsBaselineThroughput;
        double perfWatt = vsA7 / powerRatio;
        sums[0] += vsA7;
        sums[1] += perfWatt;
        table.addRow({app.name, strformat("%.2f", vsA7),
                      strformat("%.2fx", powerRatio),
                      strformat("%.2f", perfWatt)});
    }
    recordMetric("average/throughput_vs_a7", sums[0] / 4);
    recordMetric("average/perf_per_watt_vs_a7", sums[1] / 4);
    table.addRow({"average", strformat("%.2f", sums[0] / 4),
                  strformat("%.2fx", powerRatio),
                  strformat("%.2f", sums[1] / 4)});
    table.print();

    std::printf(
        "\nPaper: 1.65X average throughput and 6.04X "
        "performance/watt at 140 mW vs\n469 mW. Measured: %.2fX "
        "throughput, %.2fX perf/watt (power ratio %.3f).\n",
        sums[0] / 4, sums[1] / 4, powerRatio);

    // ---- E12: LOCUS at its 400 MHz maximum vs Stitch at 200 MHz.
    std::printf(
        "\nSection VI-D check — LOCUS @ 400 MHz vs Stitch @ 200 "
        "MHz:\n");
    TextTable l({"app", "Stitch/LOCUS@400 perf",
                 "Stitch/LOCUS@400 perf-per-watt"});
    double lsum[2] = {0, 0};
    for (const auto &app : apps::allApps()) {
        double stitch = appBoost(app, apps::AppMode::Stitch);
        double locus400 =
            appBoost(app, apps::AppMode::Locus) * 2.0; // 2x clock
        double perf = stitch / locus400;
        double ppw = (stitch / power::stitchPowerMw()) /
                     (locus400 / power::locusPowerMw(400.0));
        lsum[0] += perf;
        lsum[1] += ppw;
        l.addRow({app.name, strformat("%.2f", perf),
                  strformat("%.2f", ppw)});
    }
    recordMetric("average/vs_locus400_perf", lsum[0] / 4);
    recordMetric("average/vs_locus400_perf_per_watt", lsum[1] / 4);
    l.addRow({"average", strformat("%.2f", lsum[0] / 4),
              strformat("%.2f", lsum[1] / 4)});
    l.print();
    std::printf(
        "Paper: Stitch still wins 1.03X perf and 1.16X perf/watt. "
        "Measured: %.2fX /\n%.2fX — the perf/watt advantage "
        "survives the frequency handicap (our raw\nperf ratio is "
        "below 1 because our LOCUS ISEs are stronger than the "
        "paper's;\nsee EXPERIMENTS.md).\n",
        lsum[0] / 4, lsum[1] / 4);
    return 0;
}

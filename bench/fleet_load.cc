/**
 * @file
 * Fleet-level load bench: an in-process three-shard stitchd fleet
 * (each shard peered with the other two through the shared cache
 * tier) behind a stitchrouter, driven by the stitchload mix — the
 * closed-loop numbers the ROADMAP's fleet decision is gated on.
 *
 * The seeded mix (hot-set duplicates + unique tail) replays through
 * the router's consistent-hash ring, so duplicates land on one shard
 * and hit its cache while the tail spreads across the fleet. Metrics
 * land in the bench trajectory (BENCH_stitch.json) as load_p50_ms /
 * load_p99_ms (up is worse), jobs_s and fleet_hit_rate (down is
 * worse), plus the zero-expected health counters failover_reroutes
 * and untyped_failures (up is worse) — names tools/report_diff
 * already knows how to gate.
 *
 * Same repeat discipline as svc_latency: the whole fleet is rebuilt
 * `kRepeats` times and each latency metric is the best observation
 * (min for latencies, max for throughput) — the repeatable estimator
 * on a loaded host. The hit rate is deterministic across repeats
 * (each shard's serve loop serializes its own duplicates), so any
 * repeat reports it.
 */

#include <array>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hh"
#include "fleet/load.hh"
#include "fleet/router.hh"
#include "svc/engine.hh"
#include "svc/server.hh"

using namespace stitch;
using namespace stitch::bench;

namespace
{

constexpr int kShards = 3;

/** One shard request, answered by the pure server helpers — the
 *  same dispatch the engine-mode serve loop performs. */
obs::Json
shardDispatch(svc::JobEngine &engine, const svc::Server &server,
              const obs::Json &doc)
{
    if (doc.has("cmd")) {
        const std::string cmd = doc.get("cmd").asString();
        if (cmd == "cacheget" || cmd == "cacheput")
            return svc::cacheVerbResponse(engine, doc);
        return svc::introspectionResponse(
            engine, cmd, server.uptimeS(), server.servedCount());
    }
    return svc::handleRequest(engine, doc);
}

/** What one fleet replay measured. */
struct FleetRun
{
    fleet::LoadReport report;
    fleet::RouterStats router;
};

FleetRun
runFleet(const fleet::LoadMix &mix)
{
    // Handler-mode servers bind first (so every peer port is known),
    // then the engines are constructed *with* their peer lists, then
    // the serve loops start — the handlers only dereference the
    // engine pointers at request time.
    std::array<std::unique_ptr<svc::JobEngine>, kShards> engines;
    std::vector<std::unique_ptr<svc::Server>> servers;
    servers.reserve(kShards);
    for (int i = 0; i < kShards; ++i)
        servers.push_back(std::make_unique<svc::Server>(
            [&engines, &servers, i](const obs::Json &doc) {
                return shardDispatch(*engines[i], *servers[i], doc);
            }));

    for (int i = 0; i < kShards; ++i) {
        svc::EngineOptions options;
        options.remoteCache.writeBehind = false; // deterministic
        for (int p = 0; p < kShards; ++p)
            if (p != i)
                options.remoteCache.peers.push_back(
                    "127.0.0.1:" +
                    std::to_string(servers[p]->port()));
        engines[i] =
            std::make_unique<svc::JobEngine>(options);
    }

    std::vector<std::thread> serving;
    for (const auto &server : servers)
        serving.emplace_back([srv = server.get()] { srv->serve(); });

    fleet::RouterOptions routerOptions;
    for (const auto &server : servers)
        routerOptions.shards.push_back(
            "127.0.0.1:" + std::to_string(server->port()));
    fleet::Router router(routerOptions);
    svc::Server front(
        [&router](const obs::Json &doc) { return router.handle(doc); });
    std::thread fronting([&front] { front.serve(); });

    FleetRun run;
    run.report = fleet::runLoad(mix, "127.0.0.1", front.port());
    run.router = router.stats();

    front.stop();
    fronting.join();
    for (auto &server : servers)
        server->stop();
    for (auto &thread : serving)
        thread.join();
    return run;
}

} // namespace

int
main(int argc, char **argv)
{
    initObs(argc, argv);
    printHeader("fleet-load",
                "seeded stitchload mix through a 3-shard router");

    fleet::LoadMix mix;
    mix.seed = 17;
    mix.requests = 48;
    mix.clients = 4;
    mix.hotFraction = 0.6;
    mix.hotSetSize = 6;

    constexpr int kRepeats = 3;
    FleetRun best;
    double bestP50 = 0.0, bestP99 = 0.0, bestJobsS = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
        FleetRun run = runFleet(mix);
        const double p50 =
            static_cast<double>(run.report.latency.quantile(0.5)) /
            1000.0;
        const double p99 =
            static_cast<double>(run.report.latency.quantile(0.99)) /
            1000.0;
        if (rep == 0 || p50 < bestP50)
            bestP50 = p50;
        if (rep == 0 || p99 < bestP99)
            bestP99 = p99;
        bestJobsS = std::max(bestJobsS, run.report.jobsPerSecond());
        if (rep == 0)
            best = std::move(run);
    }

    TextTable table({"shard", "ok"});
    for (const auto &[shard, n] : best.report.shards)
        table.addRow({shard, std::to_string(n)});
    table.print();
    std::printf("\n%llu ok (%llu cached, hit rate %.2f), p50 %.2fms "
                "p99 %.2fms, %.1f jobs/s (best of %d); %llu "
                "reroutes, %llu untyped\n",
                static_cast<unsigned long long>(best.report.ok),
                static_cast<unsigned long long>(best.report.cached),
                best.report.hitRate(), bestP50, bestP99, bestJobsS,
                kRepeats,
                static_cast<unsigned long long>(
                    best.router.failoverReroutes),
                static_cast<unsigned long long>(
                    best.report.untypedFailures));

    recordMetric("load_p50_ms", bestP50);
    recordMetric("load_p99_ms", bestP99);
    recordMetric("jobs_s", bestJobsS);
    recordMetric("fleet_hit_rate", best.report.hitRate());
    recordMetric("failover_reroutes",
                 best.router.failoverReroutes);
    recordMetric("untyped_failures",
                 best.report.untypedFailures);
    return 0;
}

/**
 * @file
 * E6 / paper Table III: accelerator area cost across architectures.
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Table III", "accelerator area cost");

    auto arch = core::StitchArch::standard();
    double noFusion = power::patchesAreaUm2(arch);
    double full = noFusion + power::snocAreaUm2();
    double chip = power::chipAreaMm2() * 1e6;
    recordMetric("stitch_area_um2", full);
    recordMetric("no_fusion_area_um2", noFusion);
    recordMetric("locus_area_um2", power::locusAccelAreaUm2);
    recordMetric("locus_vs_stitch_area", power::locusAccelAreaUm2 /
                                             full);

    TextTable table({"", "LOCUS", "Stitch w/o fusion", "Stitch"});
    table.addRow({"area um^2 (paper)", "1,288,044", "49,872",
                  "168,568"});
    table.addRow({"area um^2 (model)",
                  strformat("%.0f", power::locusAccelAreaUm2),
                  strformat("%.0f", noFusion),
                  strformat("%.0f", full)});
    table.addRow({"share of chip",
                  strformat("%.2f%%",
                            100 * power::locusAccelAreaUm2 / chip),
                  strformat("%.2f%%", 100 * noFusion / chip),
                  strformat("%.2f%%", 100 * full / chip)});
    table.print();

    std::printf(
        "\nPaper: the LOCUS accelerators are 7.64x larger than "
        "Stitch's. Model: %.2fx\n(the Stitch rows accumulate Table "
        "IV per-patch and per-switch areas).\n",
        power::locusAccelAreaUm2 / full);
    return 0;
}

/**
 * @file
 * Robustness campaign: sweep deterministic fault scenarios over one
 * application pipeline and tabulate how the system degrades.
 *
 * For every hard fault (each of the 16 patches dead, each of the 24
 * sNoC mesh links down) the campaign runs the scenario twice:
 *
 *  - "naive": the healthy stitch plan is kept and executed on the
 *    faulty hardware. A plan that routes over a dead link is rejected
 *    up front (ConfigError); a CUST that lands on a dead patch
 *    surfaces as Termination::Fault with a structured PatchFault.
 *  - "re-stitched": stitchApplication is given the ArchHealth mask of
 *    the scenario and degrades around the broken resource (fused ->
 *    single-patch -> software-only). These runs must all complete.
 *
 * Soft faults (message drop / delay, transient CUST bit flips) keep
 * the healthy plan; the table reports how the run ended (a dropped
 * message deadlocks its consumer — visible as blocked-tile
 * diagnostics) and what was injected.
 *
 * Usage: fault_campaign [--app=APP3] [--out=DIR] [--jobs=N]
 * [--scheduler=step|slice] [obs switches]
 * With --out=DIR a run report embedding the degraded stitch plan is
 * written per scenario. Scenarios are independent, so --jobs=N
 * evaluates them over a sim::SweepRunner worker pool; results are
 * merged in scenario order, making the table and every report file
 * byte-identical for any jobs value. Exits non-zero if any
 * re-stitched run fails to complete.
 */

#include <cctype>
#include <filesystem>

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;

namespace
{

struct Scenario
{
    std::string name;
    fault::FaultPlan plan;
    bool hard = false; ///< has a compile-time work-around
};

std::string
slug(const std::string &name)
{
    std::string s = name;
    for (char &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

void
countPlacements(const compiler::StitchPlan &plan, int *fused,
                int *software)
{
    *fused = 0;
    *software = 0;
    for (const auto &p : plan.placements) {
        if (!p.accel)
            ++*software;
        else if (p.accel->type ==
                 compiler::AccelTarget::Type::FusedPair)
            ++*fused;
    }
}

void
writeScenarioReport(const std::string &dir, const std::string &name,
                    const apps::AppRunResult &res)
{
    obs::Json doc = sim::runReport(res.stats);
    doc.set("scenario", name);
    if (res.hasPlan)
        doc.set("stitch_plan", sim::stitchPlanJson(res.plan));
    if (!res.statsDump.isNull())
        doc.set("stats", res.statsDump);
    obs::writeJsonFile(dir + "/" + slug(name) + ".json", doc);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);

    std::string outDir;
    std::string appName = "APP3";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--out=", 0) == 0)
            outDir = arg.substr(6);
        else if (arg.rfind("--app=", 0) == 0)
            appName = arg.substr(6);
    }
    if (!outDir.empty())
        std::filesystem::create_directories(outDir);

    const apps::AppSpec *app = nullptr;
    static const auto all = apps::allApps();
    for (const auto &candidate : all)
        if (candidate.name.rfind(appName, 0) == 0) // prefix match
            app = &candidate;
    if (!app) {
        std::fprintf(stderr, "unknown app '%s'\n", appName.c_str());
        return 1;
    }

    printHeader("Fault campaign",
                strformat("graceful degradation of %s under "
                          "single-fault scenarios",
                          app->name.c_str())
                    .c_str());

    apps::AppRunner runner(4, 12);
    runner.setScheduler(bench::schedulerFlag());

    // The reference: all patches and links healthy.
    auto healthy = runner.run(*app, apps::AppMode::Stitch);
    STITCH_ASSERT(healthy.stats.termination ==
                  fault::Termination::Completed);
    double healthyCycles = healthy.perSampleCycles();
    if (!outDir.empty())
        writeScenarioReport(outDir, "healthy", healthy);

    std::vector<Scenario> scenarios;
    for (TileId t = 0; t < numTiles; ++t)
        scenarios.push_back({strformat("patch%d dead", t),
                             fault::FaultPlan::patchFailure(t), true});
    for (const auto &link : fault::allSnocLinks())
        scenarios.push_back({"link " + link.name() + " down",
                             fault::FaultPlan::linkFailure(link),
                             true});
    scenarios.push_back(
        {"msg drop p=0.01", fault::FaultPlan::messageDrop(0.01, 7),
         false});
    scenarios.push_back(
        {"msg delay p=0.05 +32cy",
         fault::FaultPlan::messageDelay(0.05, 32, 7), false});
    scenarios.push_back(
        {"cust flip p=0.001", fault::FaultPlan::bitFlips(0.001, 7),
         false});

    TextTable table({"scenario", "naive", "re-stitched", "bottleneck",
                     "cyc/sample", "slowdown", "fused", "sw-only",
                     "injected"});
    int fusedH = 0, swH = 0;
    countPlacements(healthy.plan, &fusedH, &swH);
    table.addRow({"healthy", "completed", "-",
                  strformat("%llu",
                            static_cast<unsigned long long>(
                                healthy.plan.bottleneckCycles())),
                  strformat("%.1f", healthyCycles), "1.00",
                  strformat("%d", fusedH), strformat("%d", swH), ""});

    // Evaluate every scenario over the sweep pool. Each worker runs
    // a private RunConfig through the shared (thread-safe) runner;
    // the healthy reference above already compiled every kernel, so
    // workers only stitch, place and simulate. Results come back in
    // scenario order — tabulation and report writing stay serial and
    // deterministic below.
    struct ScenarioOutcome
    {
        std::string naive;  ///< how the healthy-plan run ended
        bool soft = false;  ///< naive run *is* the scenario result
        apps::AppRunResult res; ///< soft: naive run; hard: re-stitch
    };
    sim::SweepRunner sweep(bench::jobsFlag());
    auto outcomes = sweep.map(
        static_cast<int>(scenarios.size()),
        [&](int i) -> ScenarioOutcome {
            const Scenario &scenario =
                scenarios[static_cast<std::size_t>(i)];
            ScenarioOutcome out;
            apps::RunConfig cfg = runner.config();
            cfg.health = fault::ArchHealth::healthy();
            cfg.faults = scenario.plan;
            try {
                // Naive: healthy plan, faulty hardware.
                auto res =
                    runner.run(*app, apps::AppMode::Stitch, cfg);
                out.naive =
                    fault::terminationName(res.stats.termination);
                if (!scenario.hard) {
                    // Soft faults have no compile-time work-around.
                    out.soft = true;
                    out.res = std::move(res);
                    return out;
                }
            } catch (const fault::ConfigError &) {
                out.naive = "rejected";
            }
            // Re-stitched: the stitcher degrades around the fault.
            cfg.health = fault::ArchHealth::fromPlan(scenario.plan);
            out.res = runner.run(*app, apps::AppMode::Stitch, cfg);
            return out;
        });

    int failures = 0;
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const Scenario &scenario = scenarios[i];
        const ScenarioOutcome &out = outcomes[i];
        const apps::AppRunResult &res = out.res;
        bool done =
            res.stats.termination == fault::Termination::Completed;
        double cycles = res.perSampleCycles();
        if (out.soft) {
            std::string injected;
            if (res.stats.messagesDropped)
                injected += strformat(
                    "%llu dropped ",
                    static_cast<unsigned long long>(
                        res.stats.messagesDropped));
            if (res.stats.messagesDelayed)
                injected += strformat(
                    "%llu delayed ",
                    static_cast<unsigned long long>(
                        res.stats.messagesDelayed));
            if (res.stats.custBitFlips)
                injected += strformat(
                    "%llu flips",
                    static_cast<unsigned long long>(
                        res.stats.custBitFlips));
            table.addRow(
                {scenario.name, out.naive, "-",
                 strformat("%llu",
                           static_cast<unsigned long long>(
                               res.plan.bottleneckCycles())),
                 done ? strformat("%.1f", cycles) : "-",
                 done ? strformat("%.2f", cycles / healthyCycles)
                      : "-",
                 "", "", injected});
        } else {
            if (!done)
                ++failures;
            int fused = 0, software = 0;
            countPlacements(res.plan, &fused, &software);
            table.addRow(
                {scenario.name, out.naive,
                 fault::terminationName(res.stats.termination),
                 strformat("%llu",
                           static_cast<unsigned long long>(
                               res.plan.bottleneckCycles())),
                 done ? strformat("%.1f", cycles) : "-",
                 done ? strformat("%.2f", cycles / healthyCycles)
                      : "-",
                 strformat("%d", fused), strformat("%d", software),
                 ""});
        }
        if (!outDir.empty())
            writeScenarioReport(outDir, scenario.name, res);
    }
    table.print();
    recordMetric("scenarios", static_cast<int>(scenarios.size()));
    recordMetric("restitch_failures", failures);
    recordMetric("healthy_cycles_per_sample", healthyCycles);

    std::printf("\n%zu scenarios; every hard fault re-stitched %s.\n",
                scenarios.size(),
                failures == 0 ? "and completed"
                              : "BUT SOME FAILED TO COMPLETE");
    if (failures) {
        std::fprintf(stderr, "%d re-stitched runs did not complete\n",
                     failures);
        return 1;
    }
    return 0;
}

/**
 * @file
 * Robustness campaign: sweep deterministic fault scenarios over one
 * application pipeline and tabulate how the system degrades.
 *
 * For every hard fault (each of the 16 patches dead, each of the 24
 * sNoC mesh links down) the campaign runs the scenario twice:
 *
 *  - "naive": the healthy stitch plan is kept and executed on the
 *    faulty hardware. A plan that routes over a dead link is rejected
 *    up front (ConfigError); a CUST that lands on a dead patch
 *    surfaces as Termination::Fault with a structured PatchFault.
 *  - "re-stitched": stitchApplication is given the ArchHealth mask of
 *    the scenario and degrades around the broken resource (fused ->
 *    single-patch -> software-only). These runs must all complete.
 *
 * Soft faults (message drop / delay, transient CUST bit flips) keep
 * the healthy plan; the table reports how the run ended (a dropped
 * message deadlocks its consumer — visible as blocked-tile
 * diagnostics) and what was injected.
 *
 * The campaign is a client of the simulation job engine (src/svc/):
 * every scenario run is a svc::JobSpec submitted to one JobEngine,
 * and the table is built from the engine's report + derived
 * documents. A naive run that the stitcher rejects comes back as a
 * Failed job with errorKind "config" — the "rejected" cell.
 *
 * Usage: fault_campaign [--app=APP3] [--out=DIR] [--jobs=N]
 * [--scheduler=step|slice] [obs switches]
 * With --out=DIR a run report embedding the degraded stitch plan is
 * written per scenario. Scenarios are independent, so --jobs=N
 * drains them over the engine's worker pool; jobs finish in submit
 * order on the result side, making the table and every report file
 * byte-identical for any jobs value. Exits non-zero if any
 * re-stitched run fails to complete.
 */

#include <cctype>

#include "bench/bench_common.hh"
#include "svc/engine.hh"

using namespace stitch;
using namespace stitch::bench;

namespace
{

struct Scenario
{
    std::string name;
    fault::FaultPlan plan;
    bool hard = false; ///< has a compile-time work-around
    int naiveJob = -1;
    int restitchJob = -1; ///< hard scenarios only
};

std::string
slug(const std::string &name)
{
    std::string s = name;
    for (char &c : s)
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s;
}

void
writeScenarioReport(const std::string &dir, const std::string &name,
                    const svc::JobResult &result)
{
    obs::Json doc = result.report;
    doc.set("scenario", name);
    if (result.derived.has("stitch_plan"))
        doc.set("stitch_plan", result.derived.get("stitch_plan"));
    obs::writeJsonFile(dir + "/" + slug(name) + ".json", doc);
}

bool
completed(const svc::JobResult &result)
{
    return result.status == svc::JobResult::Status::Completed &&
           result.derived.get("termination").asString() ==
               "completed";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);

    const std::string &outDir = bench::commonFlags().out;
    std::string appName = "APP3";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--app=", 0) == 0)
            appName = arg.substr(6);
    }

    const apps::AppSpec *app = nullptr;
    static const auto all = apps::allApps();
    for (const auto &candidate : all)
        if (candidate.name.rfind(appName, 0) == 0) // prefix match
            app = &candidate;
    if (!app) {
        std::fprintf(stderr, "unknown app '%s'\n", appName.c_str());
        return 1;
    }

    printHeader("Fault campaign",
                strformat("graceful degradation of %s under "
                          "single-fault scenarios",
                          app->name.c_str())
                    .c_str());

    svc::EngineOptions engineOptions;
    engineOptions.jobs = bench::jobsFlag();
    svc::JobEngine engine(engineOptions);

    svc::JobSpec base;
    base.app = app->name;
    base.mode = apps::AppMode::Stitch;
    base.scheduler = bench::schedulerFlag();

    // The reference: all patches and links healthy. Run it alone
    // first so its compilation pass warms the shared kernel cache
    // before the scenario fan-out.
    svc::JobSpec healthySpec = base;
    healthySpec.name = "healthy";
    const int healthyJob = engine.submit(healthySpec);
    engine.run();
    const svc::JobResult &healthy = engine.result(healthyJob);
    STITCH_ASSERT(completed(healthy));
    double healthyCycles =
        healthy.derived.get("per_sample_cycles").asDouble();
    if (!outDir.empty())
        writeScenarioReport(outDir, "healthy", healthy);

    std::vector<Scenario> scenarios;
    for (TileId t = 0; t < numTiles; ++t)
        scenarios.push_back({strformat("patch%d dead", t),
                             fault::FaultPlan::patchFailure(t), true,
                             -1, -1});
    for (const auto &link : fault::allSnocLinks())
        scenarios.push_back({"link " + link.name() + " down",
                             fault::FaultPlan::linkFailure(link),
                             true, -1, -1});
    scenarios.push_back({"msg drop p=0.01",
                         fault::FaultPlan::messageDrop(0.01, 7),
                         false, -1, -1});
    scenarios.push_back(
        {"msg delay p=0.05 +32cy",
         fault::FaultPlan::messageDelay(0.05, 32, 7), false, -1, -1});
    scenarios.push_back({"cust flip p=0.001",
                         fault::FaultPlan::bitFlips(0.001, 7), false,
                         -1, -1});

    // Submit every scenario run as one engine job: the naive run
    // (healthy plan on faulty hardware) and, for hard faults, the
    // re-stitched run (health mask derived from the fault plan).
    for (auto &scenario : scenarios) {
        svc::JobSpec naive = base;
        naive.name = scenario.name + " (naive)";
        naive.faults = scenario.plan;
        naive.healthFromFaults = false;
        scenario.naiveJob = engine.submit(naive);
        if (scenario.hard) {
            svc::JobSpec restitch = base;
            restitch.name = scenario.name + " (re-stitched)";
            restitch.faults = scenario.plan;
            restitch.healthFromFaults = true;
            scenario.restitchJob = engine.submit(restitch);
        }
    }
    engine.run();

    TextTable table({"scenario", "naive", "re-stitched", "bottleneck",
                     "cyc/sample", "slowdown", "fused", "sw-only",
                     "injected"});
    table.addRow(
        {"healthy", "completed", "-",
         strformat("%llu",
                   static_cast<unsigned long long>(
                       healthy.derived.get("bottleneck_cycles")
                           .asUint())),
         strformat("%.1f", healthyCycles), "1.00",
         strformat("%llu", static_cast<unsigned long long>(
                               healthy.derived.get("fused").asUint())),
         strformat("%llu",
                   static_cast<unsigned long long>(
                       healthy.derived.get("software").asUint())),
         ""});

    int failures = 0;
    for (const auto &scenario : scenarios) {
        const svc::JobResult &naive = engine.result(scenario.naiveJob);

        // How the healthy-plan run ended: a stitcher rejection is a
        // typed config failure, anything else reports its
        // termination.
        std::string naiveCell;
        if (naive.status == svc::JobResult::Status::Completed)
            naiveCell = naive.derived.get("termination").asString();
        else if (naive.errorKind == "config")
            naiveCell = "rejected";
        else
            naiveCell = "error";

        // Soft scenarios *are* their naive run; hard scenarios
        // tabulate the re-stitched outcome.
        const svc::JobResult &res =
            scenario.hard ? engine.result(scenario.restitchJob)
                          : naive;
        if (res.status != svc::JobResult::Status::Completed) {
            ++failures;
            table.addRow({scenario.name, naiveCell, "error", "-", "-",
                          "-", "-", "-", res.error});
            continue;
        }

        const bool done =
            res.derived.get("termination").asString() == "completed";
        const double cycles =
            res.derived.get("per_sample_cycles").asDouble();
        const std::string bottleneck = strformat(
            "%llu", static_cast<unsigned long long>(
                        res.derived.get("bottleneck_cycles").asUint()));
        if (scenario.hard) {
            if (!done)
                ++failures;
            table.addRow(
                {scenario.name, naiveCell,
                 res.derived.get("termination").asString(),
                 bottleneck, done ? strformat("%.1f", cycles) : "-",
                 done ? strformat("%.2f", cycles / healthyCycles)
                      : "-",
                 strformat("%llu",
                           static_cast<unsigned long long>(
                               res.derived.get("fused").asUint())),
                 strformat("%llu",
                           static_cast<unsigned long long>(
                               res.derived.get("software").asUint())),
                 ""});
        } else {
            std::string injected;
            if (res.report.has("injected_faults")) {
                const obs::Json &inj =
                    res.report.get("injected_faults");
                if (inj.get("messages_dropped").asUint())
                    injected += strformat(
                        "%llu dropped ",
                        static_cast<unsigned long long>(
                            inj.get("messages_dropped").asUint()));
                if (inj.get("messages_delayed").asUint())
                    injected += strformat(
                        "%llu delayed ",
                        static_cast<unsigned long long>(
                            inj.get("messages_delayed").asUint()));
                if (inj.get("cust_bit_flips").asUint())
                    injected += strformat(
                        "%llu flips",
                        static_cast<unsigned long long>(
                            inj.get("cust_bit_flips").asUint()));
            }
            table.addRow(
                {scenario.name, naiveCell, "-", bottleneck,
                 done ? strformat("%.1f", cycles) : "-",
                 done ? strformat("%.2f", cycles / healthyCycles)
                      : "-",
                 "", "", injected});
        }
        if (!outDir.empty())
            writeScenarioReport(outDir, scenario.name, res);
    }
    table.print();
    recordMetric("scenarios", static_cast<int>(scenarios.size()));
    recordMetric("restitch_failures", failures);
    recordMetric("healthy_cycles_per_sample", healthyCycles);

    std::printf("\n%zu scenarios; every hard fault re-stitched %s.\n",
                scenarios.size(),
                failures == 0 ? "and completed"
                              : "BUT SOME FAILED TO COMPLETE");
    if (failures) {
        std::fprintf(stderr, "%d re-stitched runs did not complete\n",
                     failures);
        return 1;
    }
    return 0;
}

/**
 * @file
 * E2 / paper Figure 11: per-kernel speedup of the LOCUS ISE, the best
 * single patch, and the best stitched configuration over the
 * software-only implementation, each kernel running on one core.
 *
 * Paper shape to reproduce: LOCUS < single patch (avg 1.56X) <
 * stitched (fft reaching ~1.99X); astar barely improves.
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Figure 11",
                "normalized kernel speedup vs software-only");

    TextTable table({"kernel", "LOCUS ISE", "single patch",
                     "(best kind)", "stitched", "(best target)"});
    double locusSum = 0, patchSum = 0, stitchSum = 0;
    for (const auto &name : fig11Kernels()) {
        const auto &ck = compiledKernel(name);
        const auto *locus = ck.locusVariant();
        const auto *patch = ck.bestSinglePatch();
        const auto *stitched = ck.bestStitch();
        locusSum += locus->speedup;
        patchSum += patch->speedup;
        stitchSum += stitched->speedup;
        recordMetric(name + "/stitched_speedup", stitched->speedup);
        table.addRow({name, strformat("%.2f", locus->speedup),
                      strformat("%.2f", patch->speedup),
                      patch->target.name(),
                      strformat("%.2f", stitched->speedup),
                      stitched->target.name()});
    }
    auto n = static_cast<double>(fig11Kernels().size());
    recordMetric("average/locus_speedup", locusSum / n);
    recordMetric("average/patch_speedup", patchSum / n);
    recordMetric("average/stitched_speedup", stitchSum / n);
    table.addRow({"geomean-ish avg", strformat("%.2f", locusSum / n),
                  strformat("%.2f", patchSum / n), "",
                  strformat("%.2f", stitchSum / n), ""});
    table.print();

    std::printf(
        "\nPaper: LOCUS-ISE < single patch (avg 1.56X) < stitched; "
        "fft ~1.99X stitched;\nastar shows no significant gain. "
        "Measured averages: LOCUS %.2fX, patch %.2fX,\nstitched "
        "%.2fX.\n",
        locusSum / n, patchSum / n, stitchSum / n);
    return 0;
}

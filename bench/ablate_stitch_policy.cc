/**
 * @file
 * A4: stitching-policy ablation. Paper Algorithm 1 greedily gives
 * the bottleneck kernel its best (usually fused) option; our
 * stitcher's Auto mode also evaluates a singles-only pass and keeps
 * the better plan. This bench quantifies the difference.
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Ablation A4",
                "stitching policy: Algorithm-1 greedy vs "
                "singles-only vs auto");

    TextTable table({"app", "greedy (Alg. 1)", "singles-only",
                     "auto (ours)"});
    double sums[3] = {0, 0, 0};
    const compiler::StitchPolicy policies[] = {
        compiler::StitchPolicy::Greedy,
        compiler::StitchPolicy::SinglesOnly,
        compiler::StitchPolicy::Auto};

    for (const auto &app : apps::allApps()) {
        std::vector<std::string> cells = {app.name};
        for (int p = 0; p < 3; ++p) {
            apps::AppRunner runner(4, 12);
            runner.setPolicy(policies[p]);
            auto base = runner.run(app, apps::AppMode::Baseline);
            auto full = runner.run(app, apps::AppMode::Stitch);
            double boost = base.perSampleCycles() /
                           full.perSampleCycles();
            sums[p] += boost;
            cells.push_back(strformat("%.2f", boost));
        }
        table.addRow(cells);
        std::fflush(stdout);
    }
    recordMetric("average/greedy_boost", sums[0] / 4);
    recordMetric("average/singles_only_boost", sums[1] / 4);
    recordMetric("average/auto_boost", sums[2] / 4);
    table.addRow({"average", strformat("%.2f", sums[0] / 4),
                  strformat("%.2f", sums[1] / 4),
                  strformat("%.2f", sums[2] / 4)});
    table.print();

    std::printf(
        "\nThe literal Algorithm 1 over-commits patch pairs when "
        "many similarly-heavy\nkernels compete (fusing the first "
        "few bottlenecks starves the rest); the\nsingles-only "
        "policy wastes fusion when imbalance is high. Auto takes "
        "the\nbetter of the two per application at compile time.\n");
    return 0;
}

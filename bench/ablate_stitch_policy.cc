/**
 * @file
 * A4: stitching-policy ablation. Paper Algorithm 1 greedily gives
 * the bottleneck kernel its best (usually fused) option; our
 * stitcher's Auto mode also evaluates a singles-only pass and keeps
 * the better plan. This bench quantifies the difference.
 */

#include "bench/bench_common.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Ablation A4",
                "stitching policy: Algorithm-1 greedy vs "
                "singles-only vs auto");

    TextTable table({"app", "greedy (Alg. 1)", "singles-only",
                     "auto (ours)"});
    double sums[3] = {0, 0, 0};
    const compiler::StitchPolicy policies[] = {
        compiler::StitchPolicy::Greedy,
        compiler::StitchPolicy::SinglesOnly,
        compiler::StitchPolicy::Auto};

    // All (app, policy) cells are independent: sweep them over the
    // worker pool through one shared runner, each cell with its
    // policy in a private RunConfig, and tabulate in order.
    apps::AppRunner runner(4, 12);
    runner.setScheduler(bench::schedulerFlag());
    const auto &allApps = apps::allApps();
    const int numCells = static_cast<int>(allApps.size()) * 3;
    sim::SweepRunner sweep(bench::jobsFlag());
    auto boosts = sweep.map(numCells, [&](int i) {
        const auto &app = allApps[static_cast<std::size_t>(i / 3)];
        apps::RunConfig cfg = runner.config();
        cfg.policy = policies[i % 3];
        auto base = runner.run(app, apps::AppMode::Baseline, cfg);
        auto full = runner.run(app, apps::AppMode::Stitch, cfg);
        return base.perSampleCycles() / full.perSampleCycles();
    });
    for (std::size_t a = 0; a < allApps.size(); ++a) {
        std::vector<std::string> cells = {allApps[a].name};
        for (int p = 0; p < 3; ++p) {
            double boost = boosts[a * 3 + static_cast<std::size_t>(p)];
            sums[p] += boost;
            cells.push_back(strformat("%.2f", boost));
        }
        table.addRow(cells);
    }
    recordMetric("average/greedy_boost", sums[0] / 4);
    recordMetric("average/singles_only_boost", sums[1] / 4);
    recordMetric("average/auto_boost", sums[2] / 4);
    table.addRow({"average", strformat("%.2f", sums[0] / 4),
                  strformat("%.2f", sums[1] / 4),
                  strformat("%.2f", sums[2] / 4)});
    table.print();

    std::printf(
        "\nThe literal Algorithm 1 over-commits patch pairs when "
        "many similarly-heavy\nkernels compete (fusing the first "
        "few bottlenecks starves the rest); the\nsingles-only "
        "policy wastes fusion when imbalance is high. Auto takes "
        "the\nbetter of the two per application at compile time.\n");
    return 0;
}

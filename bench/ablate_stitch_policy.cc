/**
 * @file
 * A4: stitching-policy ablation. Paper Algorithm 1 greedily gives
 * the bottleneck kernel its best (usually fused) option; our
 * stitcher's Auto mode also evaluates a singles-only pass and keeps
 * the better plan. This bench quantifies the difference.
 *
 * Runs as a client of the simulation job engine: every (app, policy)
 * cell submits a baseline job and a Stitch job. The baseline spec is
 * the same for all three policies of an app (the baseline ignores the
 * stitch policy), so the engine's single-flight dedup simulates it
 * once per app and serves the other two cells from the cache — 16
 * simulations for 24 submitted jobs.
 */

#include "bench/bench_common.hh"
#include "svc/engine.hh"

using namespace stitch;
using namespace stitch::bench;

int
main(int argc, char **argv)
{
    bench::initObs(argc, argv);
    printHeader("Ablation A4",
                "stitching policy: Algorithm-1 greedy vs "
                "singles-only vs auto");

    TextTable table({"app", "greedy (Alg. 1)", "singles-only",
                     "auto (ours)"});
    double sums[3] = {0, 0, 0};
    const compiler::StitchPolicy policies[] = {
        compiler::StitchPolicy::Greedy,
        compiler::StitchPolicy::SinglesOnly,
        compiler::StitchPolicy::Auto};

    svc::EngineOptions engineOptions;
    engineOptions.jobs = bench::jobsFlag();
    svc::JobEngine engine(engineOptions);

    const auto &allApps = apps::allApps();
    struct Cell
    {
        int baseJob = -1;
        int fullJob = -1;
    };
    std::vector<Cell> cells;
    for (const auto &app : allApps) {
        for (const auto policy : policies) {
            svc::JobSpec base;
            base.app = app.name;
            base.mode = apps::AppMode::Baseline;
            base.scheduler = bench::schedulerFlag();

            svc::JobSpec full = base;
            full.mode = apps::AppMode::Stitch;
            full.policy = policy;

            Cell cell;
            cell.baseJob = engine.submit(base);
            cell.fullJob = engine.submit(full);
            cells.push_back(cell);
        }
    }
    engine.run();

    auto perSample = [&](int job) {
        return engine.result(job)
            .derived.get("per_sample_cycles")
            .asDouble();
    };
    for (std::size_t a = 0; a < allApps.size(); ++a) {
        std::vector<std::string> row = {allApps[a].name};
        for (std::size_t p = 0; p < 3; ++p) {
            const Cell &cell = cells[a * 3 + p];
            double boost =
                perSample(cell.baseJob) / perSample(cell.fullJob);
            sums[p] += boost;
            row.push_back(strformat("%.2f", boost));
        }
        table.addRow(row);
    }
    recordMetric("average/greedy_boost", sums[0] / 4);
    recordMetric("average/singles_only_boost", sums[1] / 4);
    recordMetric("average/auto_boost", sums[2] / 4);
    table.addRow({"average", strformat("%.2f", sums[0] / 4),
                  strformat("%.2f", sums[1] / 4),
                  strformat("%.2f", sums[2] / 4)});
    table.print();

    const obs::Json counters = engine.serviceReportJson();
    const obs::Json &jobStats =
        counters.get("counters").get("svc").get("jobs");
    recordMetric("engine/simulated",
                 jobStats.get("simulated").asUint());
    recordMetric("engine/cache_hits",
                 jobStats.get("cache_hits").asUint());

    std::printf(
        "\nThe literal Algorithm 1 over-commits patch pairs when "
        "many similarly-heavy\nkernels compete (fusing the first "
        "few bottlenecks starves the rest); the\nsingles-only "
        "policy wastes fusion when imbalance is high. Auto takes "
        "the\nbetter of the two per application at compile time.\n");
    return 0;
}
